"""Ablation studies of the design choices DESIGN.md calls out.

The paper attributes its node-level speedup to specific algorithmic
choices (Section 3.1: even-odd decomposition and related sum-
factorization optimizations give "1.5x-2x compared to previous
results"; Section 3.4: degree-3 Chebyshev smoothing, degree-bisection
p-coarsening, single-precision V-cycles).  Each ablation toggles one
choice on the real implementation and reports its effect.
"""

import sys
import time
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))
from common import bifurcation_forest, dg_laplace_setup, emit

from repro.core.sum_factorization import TensorProductKernel
from repro.perf.flops import laplace_flops
from repro.perf.measure import measure_throughput
from repro.solvers import HybridMultigridPreconditioner, conjugate_gradient


def test_ablation_even_odd(benchmark):
    """Even-odd decomposition: Flop counts always halve; wall-clock gains
    appear once the 1D products dominate (large batches / high degree)."""
    rng = np.random.default_rng(0)
    rows = []
    n_cells = 4000
    for k in (2, 3, 5):
        u = rng.standard_normal((n_cells,) + (k + 1,) * 3)
        dense = TensorProductKernel(k, use_even_odd=False)
        eo = TensorProductKernel(k, use_even_odd=True)
        r_dense = measure_throughput(lambda: dense.gradients(u), u.size, repetitions=5)
        r_eo = measure_throughput(lambda: eo.gradients(u), u.size, repetitions=5)
        f_dense = laplace_flops(k, even_odd=False)
        f_eo = laplace_flops(k, even_odd=True)
        rows.append((k, r_dense.best_seconds, r_eo.best_seconds,
                     f_dense.cell / f_eo.cell))
    benchmark(lambda: TensorProductKernel(3, use_even_odd=True).gradients(
        rng.standard_normal((1000, 4, 4, 4))))

    lines = ["Ablation: even-odd decomposition of the 1D kernels",
             "",
             f"{'k':>2} {'dense [ms]':>11} {'even-odd [ms]':>14} {'Flop ratio':>11} {'time ratio':>11}"]
    for k, td, te, fr in rows:
        lines.append(f"{k:>2} {td*1e3:>11.2f} {te*1e3:>14.2f} {fr:>11.2f} {td/te:>11.2f}")
    lines.append("")
    lines.append("(paper: 1.5-2x speedup from Flop-minimizing optimizations on")
    lines.append(" AVX-512.  In NumPy the fold/recombine steps cost extra array")
    lines.append(" passes that outweigh the halved multiplications at these")
    lines.append(" sizes — which is why TensorProductKernel defaults to the")
    lines.append(" dense path and keeps even-odd as a validated option: the")
    lines.append(" optimization is ISA-level, not expressible in vector Python.)")
    emit("ablation_even_odd", "\n".join(lines))

    # the analytic Flop reduction: ~2x for even 1D sizes (odd k), modest
    # for odd sizes (even k) — the parity effect visible in Figure 7
    for k, _, _, fr in rows:
        assert fr > (1.4 if (k + 1) % 2 == 0 else 1.05)
    # wall-clock: NumPy overhead makes even-odd slower here; bound the
    # regression so the option stays usable
    for _, td, te, _ in rows:
        assert te < 8.0 * td


def test_ablation_collocation(benchmark):
    """Change-of-basis cell kernels: 6 tensor sweeps instead of 9 for
    values+gradients (Section 3.1's second Flop optimization)."""
    rng = np.random.default_rng(1)
    rows = []
    for k in (2, 3, 5):
        u = rng.standard_normal((4000,) + (k + 1,) * 3)
        std = TensorProductKernel(k)
        col = TensorProductKernel(k, use_collocation=True)
        r_std = measure_throughput(lambda: std.values_and_gradients(u), u.size,
                                   repetitions=5)
        r_col = measure_throughput(lambda: col.values_and_gradients(u), u.size,
                                   repetitions=5)
        f_std = laplace_flops(k)
        f_col = laplace_flops(k, collocation=True)
        rows.append((k, r_std.best_seconds, r_col.best_seconds,
                     f_std.cell / f_col.cell))
    benchmark(lambda: TensorProductKernel(3, use_collocation=True)
              .values_and_gradients(rng.standard_normal((1000, 4, 4, 4))))

    lines = ["Ablation: change-of-basis (collocation) cell kernels",
             "",
             f"{'k':>2} {'standard [ms]':>14} {'collocation [ms]':>17} {'Flop ratio':>11} {'time ratio':>11}"]
    for k, ts, tc, fr in rows:
        lines.append(f"{k:>2} {ts*1e3:>14.2f} {tc*1e3:>17.2f} {fr:>11.2f} {ts/tc:>11.2f}")
    emit("ablation_collocation", "\n".join(lines))

    # fewer sweeps -> fewer Flops, and (unlike even-odd) the NumPy path
    # stays comparable since sweeps map 1:1 to matmuls (timing noise on a
    # shared machine can still swing individual sizes either way)
    for k, ts, tc, fr in rows:
        assert fr > 1.1
        assert tc < 1.8 * ts


def _solve_with(mg_kwargs, levels=1):
    forest = bifurcation_forest(levels=levels)
    dof, geo, conn, op = dg_laplace_setup(forest, 3, dirichlet=(1, 2, 3))
    mg = HybridMultigridPreconditioner(op, **mg_kwargs)
    b = np.ones(dof.n_dofs)
    t0 = time.perf_counter()
    res = conjugate_gradient(op, b, mg, tol=1e-10, max_iter=80)
    return res, time.perf_counter() - t0, mg


def test_ablation_multigrid_choices(benchmark):
    """Toggle the hybrid-multigrid ingredients one at a time."""
    base, t_base, mg_base = _solve_with({})
    sm1, t_sm1, _ = _solve_with({"smoother_degree": 1})
    sm6, t_sm6, _ = _solve_with({"smoother_degree": 6})
    dp, t_dp, _ = _solve_with({"precision": np.float64})
    direct_p, t_direct, _ = _solve_with({"p_sequence": (3, 1)})
    benchmark(lambda: mg_base.vmult(np.ones(mg_base.dg_op.n_dofs)))

    lines = [
        "Ablation: hybrid multigrid configuration (bifurcation, k=3, tol 1e-10)",
        "",
        f"{'variant':<34} {'CG its':>7} {'solve [s]':>10}",
        f"{'baseline (Cheb-3, SP, bisection)':<34} {base.n_iterations:>7} {t_base:>10.2f}",
        f"{'Chebyshev degree 1':<34} {sm1.n_iterations:>7} {t_sm1:>10.2f}",
        f"{'Chebyshev degree 6':<34} {sm6.n_iterations:>7} {t_sm6:>10.2f}",
        f"{'double-precision V-cycle':<34} {dp.n_iterations:>7} {t_dp:>10.2f}",
        f"{'direct p-drop 3 -> 1':<34} {direct_p.n_iterations:>7} {t_direct:>10.2f}",
    ]
    emit("ablation_multigrid", "\n".join(lines))

    assert base.converged and sm1.converged and sm6.converged
    assert dp.converged and direct_p.converged
    # weaker smoothing costs iterations; stronger smoothing saves them
    assert sm1.n_iterations >= base.n_iterations
    assert sm6.n_iterations <= base.n_iterations
    # SP V-cycle does not change the count materially (Section 3.4)
    assert abs(dp.n_iterations - base.n_iterations) <= 2
    # skipping the intermediate p-level costs at most a few iterations
    assert direct_p.n_iterations <= base.n_iterations + 6


def test_ablation_penalty_factor(benchmark):
    """SIP penalty scaling: too small loses coercivity on sheared
    junction cells; larger factors trade conditioning."""
    from repro.core.dof_handler import DGDofHandler
    from repro.core.operators import DGLaplaceOperator
    from repro.mesh.connectivity import build_connectivity
    from repro.mesh.mapping import GeometryField
    from repro.solvers import JacobiPreconditioner

    forest = bifurcation_forest(levels=0)
    geo = GeometryField(forest, 2)
    conn = build_connectivity(forest)
    dof = DGDofHandler(forest, 2)
    rows = []
    for pf in (0.25, 2.5, 6.0):
        op = DGLaplaceOperator(dof, geo, conn, dirichlet_ids=(1, 2, 3),
                               penalty_factor=pf)
        n = dof.n_dofs
        A = np.empty((n, n))
        for j in range(n):
            e = np.zeros(n)
            e[j] = 1.0
            A[:, j] = op.vmult(e)
        w = np.linalg.eigvalsh(0.5 * (A + A.T))
        rows.append((pf, w.min(), w.max() / max(w.min(), 1e-30)))
    benchmark(lambda: op.vmult(np.ones(dof.n_dofs)))

    lines = ["Ablation: SIP penalty factor on the bifurcation (k=2)",
             "",
             f"{'factor':>7} {'min eigenvalue':>15} {'condition':>12}"]
    for pf, lo, cond in rows:
        lines.append(f"{pf:>7.1f} {lo:>15.3e} {cond:>12.3e}")
    lines.append("")
    lines.append("under-penalization is indefinite on sheared junction cells;")
    lines.append("the default 2.5 is SPD at moderate conditioning cost")
    emit("ablation_penalty", "\n".join(lines))

    assert rows[0][1] < 0  # strongly under-penalized: indefinite
    assert rows[1][1] > 0  # default: SPD
    assert rows[2][1] > 0
    assert rows[2][2] > rows[1][2]  # larger penalty worsens conditioning
