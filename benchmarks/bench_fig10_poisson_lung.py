"""Figure 10: the pressure Poisson solver on the lung geometry (g = 11,
k = 3, tol 1e-10) — harder than the bifurcation: more CG iterations
(21-22 vs 9; deformed patient-specific elements, difficult bifurcation
angles, anisotropy), saturation at a *higher* wall-time, and a V-cycle
whose latency budget at scale is dominated by the AMG coarse solve
(18% / 13% / 26% / 45% across finest / second / intermediate / AMG at
1024 nodes; 3.5e-3 s per BoomerAMG call).

Measured: iteration counts of the real hybrid-MG solve on lung meshes of
two sizes (Python scale, with local upper-airway refinement = hanging
nodes).  Modeled: the paper-size scaling and the level-time breakdown.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))
from common import dg_laplace_setup, emit, lung_test_forest

from repro.parallel.perfmodel import (
    MultigridLevelSpec,
    MultigridSolveModel,
    multigrid_levels_from_preconditioner,
)
from repro.solvers import HybridMultigridPreconditioner, conjugate_gradient

#: Figure 10 problem sizes (refine level -> DoF, k = 3 on the g=11 mesh)
PAPER_SIZES = {0: 22e6, 1: 179e6, 2: 1.4e9, 3: 11.5e9}
NODE_COUNTS = [2**i for i in range(4, 13)]


def solve_lung(generations, refine):
    lm = lung_test_forest(generations=generations, refine=refine)
    dirichlet = tuple([1] + lm.outlet_ids)
    dof, geo, conn, op = dg_laplace_setup(lm.forest, 3, dirichlet=dirichlet)
    mg = HybridMultigridPreconditioner(op)
    b = np.ones(dof.n_dofs)
    res = conjugate_gradient(op, b, mg, tol=1e-10, max_iter=80)
    return dof, conn, mg, res


def test_fig10_poisson_lung(benchmark):
    dof_s, conn_s, mg_s, res_s = solve_lung(2, 0)
    dof_l, conn_l, mg_l, res_l = solve_lung(3, 1)
    assert res_s.converged and res_l.converged
    benchmark(lambda: mg_l.vmult(np.ones(mg_l.dg_op.n_dofs)))

    # model: scale the real lung MG hierarchy to the paper sizes
    base_levels = multigrid_levels_from_preconditioner(mg_l)
    n_its = max(res_s.n_iterations, res_l.n_iterations)
    models = {}
    for l, dofs in PAPER_SIZES.items():
        scale = dofs / dof_l.n_dofs
        models[l] = MultigridSolveModel(
            levels=[
                MultigridLevelSpec(n_dofs=ls.n_dofs * scale, matvecs=ls.matvecs,
                                   degree=ls.degree)
                for ls in base_levels
            ],
            amg_time=3.5e-3,
            face_orientation_overhead=0.25,
        )

    lines = [
        "Figure 10: Poisson solver on the lung geometry, k=3, tol 1e-10",
        "",
        "measured (this reproduction, hanging-node lung meshes):",
        f"{'mesh':>16} {'DoF':>9} {'hanging faces':>14} {'CG its':>7} {'MG levels':>10}",
        f"{'lung g=2':>16} {dof_s.n_dofs:>9} {conn_s.n_hanging_faces:>14} {res_s.n_iterations:>7} {mg_s.n_levels:>10}",
        f"{'lung g=3 + ref':>16} {dof_l.n_dofs:>9} {conn_l.n_hanging_faces:>14} {res_l.n_iterations:>7} {mg_l.n_levels:>10}",
        "",
        "paper: 21-22 CG iterations (vs 9 on the bifurcation)",
        "",
        "modeled scaling on SuperMUC-NG (solve wall-time [s]):",
        f"{'nodes':>6} | " + " ".join(f"l={l} ({PAPER_SIZES[l]/1e6:.0f}M)".rjust(16) for l in PAPER_SIZES),
    ]
    for p in NODE_COUNTS:
        lines.append(
            f"{p:>6} | " + " ".join(
                f"{models[l].solve_time(n_its, p):>16.3e}" for l in PAPER_SIZES
            )
        )
    # level breakdown of the 179M case at 1024 vs 64 nodes
    for p in (64, 1024):
        parts = models[1].vcycle_level_times(p)
        total = sum(parts)
        top = parts[0] / total
        second = parts[1] / total if len(parts) > 2 else 0.0
        amg = parts[-1] / total
        middle = 1.0 - top - second - amg
        lines += [
            "",
            f"V-cycle budget, 179M DoF on {p} nodes "
            f"(paper at 1024: 18%/13%/26%/45%):",
            f"  finest level {top:5.1%} | second {second:5.1%} | "
            f"intermediate {middle:5.1%} | AMG coarse {amg:5.1%}",
        ]
    emit("fig10_poisson_lung", "\n".join(lines))

    # shape (i): iterations stay bounded; the paper's lung case needs
    # 21-22 (vs 9 on the bifurcation) — the geometric difficulty shows as
    # a moderate, size-stable count, not divergence
    assert res_l.n_iterations <= 45
    assert abs(res_l.n_iterations - res_s.n_iterations) <= 12
    # shape (ii): AMG dominates the V-cycle at scale (paper: 45% at 1024)
    parts = models[1].vcycle_level_times(1024)
    assert parts[-1] / sum(parts) > 0.3
    # shape (iii): at small node counts the two finest levels dominate
    parts64 = models[1].vcycle_level_times(64)
    assert (parts64[0] + parts64[1]) / sum(parts64) > 0.5
    # shape (iv): the small case cannot scale below ~0.1 s (paper: the
    # 22M case saturates at 0.1 s/solve)
    t22 = [models[0].solve_time(n_its, p) for p in NODE_COUNTS]
    assert 0.03 < min(t22) < 0.4
