"""Figure 6 (right): CEED benchmark BP3 — throughput per CG iteration of
the continuous-element Laplacian (over-integrated quadrature) versus
problem size, comparing one SuperMUC-NG Skylake node, one Summit V100,
and one Fugaku A64FX node.

We measure the actual BP3 kernel (CG iteration = one CG-space mat-vec +
vector updates) at several local problem sizes, and evaluate the
calibrated machine models across the paper's size range.  Shape claims:
throughput rises with problem size to a bandwidth-limited plateau, and
for small sizes (1e4-1e6 DoF) the latency-lean CPU node beats the
accelerator platforms — the property the paper ties to its
strong-scaling advantage.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))
from common import emit

from repro.core.dof_handler import CGDofHandler
from repro.core.operators import CGLaplaceOperator
from repro.mesh.generators import box
from repro.mesh.mapping import GeometryField
from repro.mesh.octree import Forest
from repro.parallel.machine import FUGAKU_A64FX, SUMMIT_V100, SUPERMUC_NG
from repro.parallel.perfmodel import MatvecScalingModel
from repro.perf.measure import measure_throughput

#: approximate BP3 plateau throughput per CG iteration [DoF/s] at k = 3
#: (Figure 6 right / CEED reports [39, 40])
PAPER_PLATEAU = {"SuperMUC-NG": 1.1e9, "V100": 2.5e9, "A64FX": 1.3e9}
#: problem size where each platform reaches half its plateau
HALF_SATURATION_DOFS = {"SuperMUC-NG": 3e4, "V100": 2e6, "A64FX": 5e5}


def model_bp3_throughput(name: str, n_dofs: float) -> float:
    """Saturating throughput curve calibrated to the CEED data: a
    latency+bandwidth model T(n) = T_sat / (1 + n_half / n)."""
    return PAPER_PLATEAU[name] / (1.0 + HALF_SATURATION_DOFS[name] / n_dofs)


def bp3_cg_iteration(op, x, b):
    """One CG-iteration workload: mat-vec + the 4 vector updates."""
    Ap = op.vmult(x)
    alpha = 0.5
    x2 = x + alpha * Ap
    r = b - Ap
    return x2, r


def run_measurements(degree=3):
    rows = []
    for cells in (2, 4, 6):
        forest = Forest(box(subdivisions=(cells,) * 3, boundary_ids={0: 1}))
        dof = CGDofHandler(forest, degree, dirichlet_ids=(1,))
        geo = GeometryField(forest, degree, n_q_points=degree + 2)  # BP3: over-integration
        op = CGLaplaceOperator(dof, geo)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(dof.n_dofs)
        b = rng.standard_normal(dof.n_dofs)
        res = measure_throughput(lambda: bp3_cg_iteration(op, x, b), dof.n_dofs,
                                 f"BP3 k={degree} n={dof.n_dofs}", repetitions=5)
        rows.append((dof.n_dofs, res.dofs_per_second))
    return rows


def test_fig6_right_bp3(benchmark):
    degree = 3
    measured = run_measurements(degree)
    forest = Forest(box(subdivisions=(4, 4, 4), boundary_ids={0: 1}))
    dof = CGDofHandler(forest, degree, dirichlet_ids=(1,))
    geo = GeometryField(forest, degree, n_q_points=degree + 2)
    op = CGLaplaceOperator(dof, geo)
    x = np.random.default_rng(1).standard_normal(dof.n_dofs)
    benchmark(op.vmult, x)

    sizes = [10**e for e in range(3, 9)]
    lines = [
        "Figure 6 (right): BP3 throughput per CG iteration vs problem size (k=3)",
        "",
        "measured (this reproduction, CG Laplacian + CG vector updates):",
        f"{'n DoF':>10} {'DoF/s':>12}",
    ]
    for n, tp in measured:
        lines.append(f"{n:>10d} {tp:>12.3e}")
    lines += ["", "model (paper platforms):",
              f"{'n DoF':>10} {'Skylake':>12} {'V100':>12} {'A64FX':>12}"]
    for n in sizes:
        lines.append(
            f"{n:>10.0e} {model_bp3_throughput('SuperMUC-NG', n):>12.3e} "
            f"{model_bp3_throughput('V100', n):>12.3e} "
            f"{model_bp3_throughput('A64FX', n):>12.3e}"
        )
    emit("fig6_right_bp3", "\n".join(lines))

    # shape (i): measured throughput grows with problem size
    assert measured[-1][1] > measured[0][1]
    # shape (ii): in the 1e4-1e6 DoF window the Skylake node outruns both
    # accelerator platforms (the paper's key small-size observation)
    for n in (1e4, 1e5, 1e6):
        sky = model_bp3_throughput("SuperMUC-NG", n)
        assert sky > model_bp3_throughput("V100", n)
        assert sky > model_bp3_throughput("A64FX", n)
    # shape (iii): at saturation the 900 GB/s platforms win
    assert model_bp3_throughput("V100", 1e8) > model_bp3_throughput("SuperMUC-NG", 1e8)
