"""Figure 6 (left): throughput of the DG Laplacian mat-vec (double
precision) and of one Chebyshev smoother iteration (single precision,
DG level L and continuous level L-1) for polynomial degrees k = 1..6.

Measured on this machine's NumPy kernels at Python scale; the paper's
SuperMUC-NG values are printed alongside.  The *shape* claims verified:
throughput peaks at moderate degrees (not at k = 1), the SP smoother
iteration outruns the DP mat-vec, and the CG level's throughput is
comparable to the DG level's.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))
from common import dg_laplace_setup, emit, lung_test_forest

from repro.core.dof_handler import CGDofHandler
from repro.core.operators import CGLaplaceOperator
from repro.mesh.mapping import GeometryField
from repro.parallel.perfmodel import SP_SMOOTHER_SPEEDUP, THROUGHPUT_VS_DEGREE
from repro.perf.measure import measure_throughput
from repro.solvers.chebyshev import ChebyshevSmoother
from repro.solvers.multigrid import single_precision_operator

#: Figure 6 (left) readings, SuperMUC-NG node [DoF/s]
PAPER_DP_MATVEC = {1: 0.85e9, 2: 1.25e9, 3: 1.40e9, 4: 1.45e9, 5: 1.40e9, 6: 1.30e9}

DEGREES = (1, 2, 3, 4, 5, 6)


def run_measurements():
    lm = lung_test_forest(generations=3)
    rows = []
    for k in DEGREES:
        dof, geo, conn, op = dg_laplace_setup(lm.forest, k)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(op.n_dofs)
        r_dp = measure_throughput(lambda: op.vmult(x), op.n_dofs,
                                  f"DG mat-vec DP k={k}", repetitions=5, warmup=1)
        # one smoother iteration = one mat-vec + the associated vector
        # updates (Section 5.1); a nonzero iterate forces the residual
        # evaluation the paper's granularity includes
        op_sp = single_precision_operator(op)
        sm = ChebyshevSmoother(op_sp, degree=1)
        x32 = x.astype(np.float32)
        x0_32 = rng.standard_normal(op.n_dofs).astype(np.float32)
        r_sp = measure_throughput(lambda: sm.smooth(x32, x0_32), op.n_dofs,
                                  f"Chebyshev iter SP k={k}", repetitions=5, warmup=1)
        cg_dof = CGDofHandler(lm.forest, k, connectivity=conn, dirichlet_ids=(1,))
        cg_op = single_precision_operator(CGLaplaceOperator(cg_dof, geo))
        sm_cg = ChebyshevSmoother(cg_op, degree=1)
        y32 = rng.standard_normal(cg_op.n_dofs).astype(np.float32)
        y0_32 = rng.standard_normal(cg_op.n_dofs).astype(np.float32)
        r_cg = measure_throughput(lambda: sm_cg.smooth(y32, y0_32), cg_op.n_dofs,
                                  f"CG smoother SP k={k}", repetitions=5, warmup=1)
        rows.append((k, r_dp, r_sp, r_cg))
    return rows


def test_fig6_left_throughput_table(benchmark):
    rows = run_measurements()
    lm = lung_test_forest(generations=3)
    _, _, _, op = dg_laplace_setup(lm.forest, 3)
    x = np.random.default_rng(0).standard_normal(op.n_dofs)
    benchmark(op.vmult, x)

    lines = [
        "Figure 6 (left): throughput of matrix-free operator evaluation",
        f"(measured: this Python reproduction, lung g=3 mesh, {op.dof.n_cells} cells;",
        " paper: one SuperMUC-NG node, lung g=11 mesh)",
        "",
        f"{'k':>2} | {'DP mat-vec [DoF/s]':>20} {'SP smoother(DG)':>16} {'SP smoother(CG)':>16} | {'paper DP':>10} {'SP/DP':>6}",
    ]
    for k, r_dp, r_sp, r_cg in rows:
        lines.append(
            f"{k:>2} | {r_dp.dofs_per_second:>20.3e} {r_sp.dofs_per_second:>16.3e} "
            f"{r_cg.dofs_per_second:>16.3e} | {PAPER_DP_MATVEC[k]:>10.2e} "
            f"{r_sp.dofs_per_second / r_dp.dofs_per_second:>6.2f}"
        )
    emit("fig6_left_throughput", "\n".join(lines))

    # shape claims of Figure 6 (left):
    tp = {k: r.dofs_per_second for k, r, _, _ in rows}
    # (i) higher-order kernels process at least as many DoF/s as k = 1
    assert max(tp[k] for k in (2, 3, 4)) > 0.9 * tp[1]
    # (ii) the SP smoother iteration keeps pace with the DP mat-vec
    # despite doing extra vector updates.  (The paper measures +30% from
    # halved memory traffic; at Python scale the per-call interpreter
    # overhead, not bandwidth, dominates, so parity is the expected
    # analogue of the claim.)
    advantages = [r_sp.dofs_per_second / r_dp.dofs_per_second
                  for _, r_dp, r_sp, _ in rows]
    assert np.median(advantages) > 0.8
    # (iii) the continuous level L-1 smoother reaches comparable throughput
    for k, _, r_sp, r_cg in rows:
        assert r_cg.dofs_per_second > 0.2 * r_sp.dofs_per_second
