"""Figure 7: roofline placement of the DG Laplacian for k = 1..6 on the
deformed lung geometry — ideal vs measured-style memory transfer.

The arithmetic (Flop) counts come from the analytic model of
:mod:`repro.perf.flops` (the paper validates the analogous counts
against LIKWID hardware counters to a few percent); the transfer model
follows Section 5.1's description.  We verify the paper's conclusions:
all relevant degrees are *memory-bandwidth limited* (left of the ridge),
arithmetic intensity grows with the degree, and the measured transfer
exceeds the ideal model by 20-30%, lowering the effective intensity.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))
from common import dg_laplace_setup, emit, lung_test_forest

from repro.parallel.machine import SUPERMUC_NG
from repro.perf.flops import laplace_flops
from repro.perf.memory import arithmetic_intensity, laplace_transfer, measured_transfer
from repro.perf.measure import measure_throughput

DEGREES = (1, 2, 3, 4, 5, 6)


def test_fig7_roofline(benchmark):
    lm = lung_test_forest(generations=3)
    rows = []
    for k in DEGREES:
        dof, geo, conn, op = dg_laplace_setup(lm.forest, k)
        n_cells = dof.n_cells
        f = laplace_flops(k)
        flops_total = f.matvec_total(
            n_cells, conn.n_interior_faces, conn.n_boundary_faces
        )
        ideal = laplace_transfer(k)
        meas = measured_transfer(ideal)
        ai_ideal = arithmetic_intensity(flops_total, ideal.total_bytes(n_cells))
        ai_meas = arithmetic_intensity(flops_total, meas.total_bytes(n_cells))
        x = np.random.default_rng(0).standard_normal(op.n_dofs)
        r = measure_throughput(lambda: op.vmult(x), op.n_dofs, repetitions=5)
        gflops = flops_total / r.best_seconds / 1e9
        # GFlop/s the paper's node would reach at this intensity
        paper_gflops = SUPERMUC_NG.attainable_flops(ai_meas) / 1e9
        rows.append((k, ai_ideal, ai_meas, gflops, paper_gflops))

    lines = [
        "Figure 7: roofline data of the DG Laplacian (deformed lung geometry)",
        f"SuperMUC-NG node: peak {SUPERMUC_NG.peak_flops_dp/1e12:.2f} TFlop/s DP, "
        f"{SUPERMUC_NG.mem_bandwidth/1e9:.0f} GB/s, ridge at "
        f"{SUPERMUC_NG.flop_byte_ridge:.1f} Flop/B",
        "",
        f"{'k':>2} {'AI ideal':>9} {'AI meas.':>9} {'GFlop/s (local)':>16} {'roofline bound (paper node)':>28}",
    ]
    for k, ai_i, ai_m, g, pg in rows:
        lines.append(f"{k:>2} {ai_i:>9.2f} {ai_m:>9.2f} {g:>16.3f} {pg:>28.0f}")
    emit("fig7_roofline", "\n".join(lines))

    # benchmark the k=3 kernel itself
    dof, geo, conn, op = dg_laplace_setup(lm.forest, 3)
    x = np.random.default_rng(1).standard_normal(op.n_dofs)
    benchmark(op.vmult, x)

    # shape (i): all degrees are memory-bound on the paper's node
    for k, ai_i, ai_m, _, _ in rows:
        assert ai_i < SUPERMUC_NG.flop_byte_ridge
    # shape (ii): intensity increases with polynomial degree.  The
    # even-odd decomposition saves relatively more for even point counts,
    # so the trend oscillates with parity (visible in the paper's data
    # too); compare within each parity class and end-to-end.
    ais = {r[0]: r[1] for r in rows}
    assert ais[3] > ais[1] and ais[5] > ais[3]
    assert ais[4] > ais[2] and ais[6] > ais[4]
    assert ais[6] > ais[1]
    # shape (iii): measured transfer lowers the intensity by 20-30%
    for k, ai_i, ai_m, _, _ in rows:
        assert 0.7 < ai_m / ai_i < 0.85
