"""Figure 8: strong-scaling / latency analysis of the matrix-free DG
Laplacian mat-vec (k = 3): lung g = 11 (22M and 179M DoF, adaptive mesh
with hanging nodes) vs generic bifurcation (57M and 457M DoF, uniform).

Real inputs: Morton partitions and ghost-face censuses of the actual
lung and bifurcation meshes (at Python scale) feed the calibrated
SuperMUC-NG model evaluated at the paper's problem sizes.  Shape claims
verified: run time decreases to a saturation slightly below 1e-4 s; the
throughput-vs-time curve shows the cache bump before the latency
collapse; the adaptive lung mesh pays extra communication (higher cut
fraction and mixed orientations) and saturates above the bifurcation.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))
from common import bifurcation_forest, dg_laplace_setup, emit, lung_test_forest

from repro.mesh.connectivity import build_connectivity
from repro.parallel.partition import partition_stats
from repro.parallel.perfmodel import MatvecScalingModel
from repro.perf.measure import measure_throughput

NODE_COUNTS = [2**i for i in range(0, 12)]

CASES = [
    # (label, total dofs at paper scale, orientation overhead)
    ("lung g=11, 22M DoF", 22e6, 0.25),
    ("lung g=11, 179M DoF", 179e6, 0.25),
    ("bifurcation, 57M DoF", 57e6, 0.0),
    ("bifurcation, 457M DoF", 457e6, 0.0),
]


def test_fig8_matvec_scaling(benchmark):
    # ------- real-mesh communication censuses (Python scale) ----------
    lung = lung_test_forest(generations=5)
    lung_conn = build_connectivity(lung.forest)
    bif = bifurcation_forest(levels=1)
    bif_conn = build_connectivity(bif)
    census_lines = ["real-mesh partition census (Python scale):",
                    f"{'mesh':>22} {'ranks':>6} {'cells/rank':>11} {'cut faces':>10} {'max nbrs':>9}"]
    for name, forest, conn in (("lung g=5", lung.forest, lung_conn),
                               ("bifurcation l=1", bif, bif_conn)):
        for p in (4, 16, 64):
            st = partition_stats(forest, conn, p)
            census_lines.append(
                f"{name:>22} {p:>6} {st.max_cells():>11} {st.cut_faces:>10} {st.max_neighbors():>9}"
            )
    lung_cut_frac = partition_stats(lung.forest, lung_conn, 16).cut_faces / lung_conn.n_interior_faces
    bif_cut_frac = partition_stats(bif, bif_conn, 16).cut_faces / bif_conn.n_interior_faces

    # ------- local measured mat-vec (absolute anchor) -------------------
    dof, geo, conn, op = dg_laplace_setup(lung.forest, 3)
    x = np.random.default_rng(0).standard_normal(op.n_dofs)
    local = measure_throughput(lambda: op.vmult(x), op.n_dofs, repetitions=5)
    benchmark(op.vmult, x)

    # ------- modeled scaling at paper sizes ------------------------------
    lines = [
        "Figure 8: strong scaling of the k=3 DG Laplacian mat-vec",
        f"(local measured anchor: {local.dofs_per_second:.3e} DoF/s on "
        f"{op.n_dofs} DoF; model: SuperMUC-NG)",
        "",
    ] + census_lines + [""]
    series = {}
    for label, dofs, overhead in CASES:
        model = MatvecScalingModel(degree=3, face_orientation_overhead=overhead)
        data = model.strong_scaling(dofs, NODE_COUNTS)
        series[label] = data
        lines.append(f"--- {label} ---")
        lines.append(f"{'nodes':>6} {'DoF/rank':>12} {'time [s]':>11} {'DoF/s':>12}")
        for p, t, tp in data:
            lines.append(f"{p:>6} {dofs / (p * 48):>12.3e} {t:>11.3e} {tp:>12.3e}")
        lines.append("")
    emit("fig8_matvec_scaling", "\n".join(lines))

    # shape (i): saturation slightly below 1e-4 s
    for label, data in series.items():
        tmin = min(t for _, t, _ in data)
        assert 1.5e-5 < tmin < 2.5e-4, (label, tmin)
    # shape (ii): the throughput-vs-time curve has a cache bump: max
    # throughput along the line exceeds the 1-node (saturated) value
    for label, data in series.items():
        tps = [tp for _, _, tp in data]
        assert max(tps) > 1.2 * tps[0]
    # shape (iii): pushed to the scaling limit, the *per-node* throughput
    # (parallel efficiency) collapses below 30% of its peak — the
    # paper's "reduces the throughput below 30% of the saturated
    # throughput" at the communication-latency limit
    for label, dofs, overhead in CASES:
        model = MatvecScalingModel(degree=3, face_orientation_overhead=overhead)
        ext = model.strong_scaling(dofs, [2**i for i in range(0, 16)])
        per_node = [tp / p for p, _, tp in ext]
        assert per_node[-1] < 0.3 * max(per_node), label
    # shape (iv): the lung's many-tree mesh contains mixed-orientation
    # faces at the branch junctions (the effect behind the ~25% face-work
    # overhead of Section 5.2; our frame-transported mesher aligns most
    # tube faces, so the fraction is smaller than the paper's mesh)
    assert lung_conn.mixed_orientation_fraction() > 0.005
    assert lung_cut_frac > 0 and bif_cut_frac > 0
    # shape (v): lung saturated throughput is below the bifurcation's
    lung_tp = series["lung g=11, 179M DoF"][0][2]
    bif_tp = series["bifurcation, 457M DoF"][0][2]
    assert lung_tp < bif_tp
