"""Figure 9: combined strong/weak scaling of the pressure Poisson solver
on the generic bifurcation (k = 3, tolerance 1e-10).

Measured part: the *actual* hybrid-multigrid-preconditioned CG solve on
the bifurcation at Python scale — the paper's central solver claim is
the size-independent iteration count (9 CG iterations for all levels
l = 3..6), which we verify directly on two refinement levels.

Modeled part: the per-level DoF counts of l = 3..6 (15M to 7.9G DoF)
drive the calibrated SuperMUC-NG multigrid model: strong scaling is
near-ideal down to ~0.1 s, and weak scaling (8x problem on 8x nodes)
stays flat.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))
from common import bifurcation_forest, dg_laplace_setup, emit

from repro.parallel.perfmodel import (
    MultigridLevelSpec,
    MultigridSolveModel,
    multigrid_levels_from_preconditioner,
)
from repro.solvers import HybridMultigridPreconditioner, conjugate_gradient

#: paper problem sizes of Figure 9 (refinement level -> DoF, k = 3)
PAPER_SIZES = {3: 15.3e6, 4: 123e6, 5: 982e6, 6: 7.9e9}
NODE_COUNTS = [2**i for i in range(4, 13)]


def solve_bifurcation(levels: int):
    forest = bifurcation_forest(levels=levels)
    dof, geo, conn, op = dg_laplace_setup(forest, 3, dirichlet=(1, 2, 3))
    mg = HybridMultigridPreconditioner(op)
    b = np.ones(dof.n_dofs)
    res = conjugate_gradient(op, b, mg, tol=1e-10, max_iter=60)
    return dof, mg, res


def test_fig9_poisson_bifurcation(benchmark):
    # measured iteration counts at two Python-scale sizes
    dof0, mg0, res0 = solve_bifurcation(0)
    dof1, mg1, res1 = solve_bifurcation(1)
    assert res0.converged and res1.converged

    benchmark(lambda: conjugate_gradient(
        dof1 and mg1.dg_op, np.ones(mg1.dg_op.n_dofs), mg1, tol=1e-10, max_iter=60
    ))

    # model at paper sizes: scale the real level structure of the l=1 MG
    lines = [
        "Figure 9: Poisson solver on the generic bifurcation, k=3, tol 1e-10",
        "",
        "measured (this reproduction):",
        f"{'refine':>7} {'DoF':>10} {'CG its':>7} {'MG levels':>10}",
        f"{0:>7} {dof0.n_dofs:>10} {res0.n_iterations:>7} {mg0.n_levels:>10}",
        f"{1:>7} {dof1.n_dofs:>10} {res1.n_iterations:>7} {mg1.n_levels:>10}",
        "",
        "paper: converges in 9 CG iterations for all l = 3..6",
        "",
        "modeled strong/weak scaling on SuperMUC-NG (solve wall-time [s]):",
        f"{'nodes':>6} | " + " ".join(f"l={l} ({PAPER_SIZES[l]/1e6:.0f}M)".rjust(15) for l in PAPER_SIZES),
    ]
    n_its_model = max(res0.n_iterations, res1.n_iterations)
    base_levels = multigrid_levels_from_preconditioner(mg1)
    models = {}
    for l, dofs in PAPER_SIZES.items():
        scale = dofs / dof1.n_dofs
        levels = [
            MultigridLevelSpec(n_dofs=ls.n_dofs * scale, matvecs=ls.matvecs,
                               degree=ls.degree)
            for ls in base_levels
        ]
        models[l] = MultigridSolveModel(levels=levels, amg_time=3e-4)
    rows = {}
    for p in NODE_COUNTS:
        cells = [f"{models[l].solve_time(n_its_model, p):>15.3e}" for l in PAPER_SIZES]
        rows[p] = [models[l].solve_time(n_its_model, p) for l in PAPER_SIZES]
        lines.append(f"{p:>6} | " + " ".join(cells))
    emit("fig9_poisson_bifurcation", "\n".join(lines))

    # shape (i): iteration count independent of the mesh size (paper: 9)
    assert abs(res0.n_iterations - res1.n_iterations) <= 2
    assert res1.n_iterations <= 16
    # shape (ii): strong scaling reaches ~0.1 s for every size
    for l in PAPER_SIZES:
        tmin = min(models[l].solve_time(n_its_model, p) for p in NODE_COUNTS)
        assert tmin < 0.3, l
    # shape (iii): weak scaling flat: 8x dofs on 8x nodes within 50%
    t_small = models[3].solve_time(n_its_model, 64)
    t_big = models[4].solve_time(n_its_model, 512)
    assert t_big < 1.6 * t_small
    # shape (iv): strong scaling near-ideal early on: 4x nodes -> >2.5x faster
    t1 = models[5].solve_time(n_its_model, 64)
    t4 = models[5].solve_time(n_its_model, 256)
    assert t1 / t4 > 2.5
