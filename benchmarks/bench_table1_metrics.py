"""Table 1: the application-oriented performance metrics, including the
"minimal wall-time per liter of tidal volume" whose purpose (Section 4)
is to compare *different ventilation strategies*: conventional
ventilation and high-frequency oscillatory ventilation (HFOV) differ by
an order of magnitude in tidal volume and period, so hours-per-cycle is
meaningless across them while hours-per-liter is invariant (Eq. (8):
N_dt ~ V_T / D^3 depends on the tidal volume, not the period).

Measured: the CFL-driven step-count model evaluated for both strategies
on the same lung discretization; the invariance of h/l is asserted.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))
from common import emit

from repro.lung.performance import (
    estimate_cells,
    estimate_seconds_per_step,
    estimate_time_steps,
    nodes_for_strong_scaling_limit,
)

#: (label, period [s], tidal volume [m^3], inhalation fraction)
STRATEGIES = [
    ("conventional (T=3s, VT=500ml)", 3.0, 500e-6, 1.0 / 3.0),
    ("HFOV (f=5Hz, VT=60ml)", 0.2, 60e-6, 0.5),
]


def test_table1_application_metrics(benchmark):
    g = 7
    n_cells = estimate_cells(g)
    n_nodes = nodes_for_strong_scaling_limit(n_cells)
    sec_per_step = estimate_seconds_per_step(n_cells, n_nodes)
    benchmark(lambda: estimate_time_steps(g))

    lines = [
        "Table 1: application metrics across ventilation strategies (g=7 model)",
        "",
        f"node-level metric:   DoF/s throughput (Figures 6-7)",
        f"scalability metric:  minimal wall-time per step = {sec_per_step:.4f} s "
        f"on {n_nodes} nodes (Figures 8-10)",
        "",
        f"{'strategy':<32} {'N_dt/cycle':>11} {'h/cycle':>8} {'h per liter':>12}",
    ]
    results = []
    for label, period, vt, frac in STRATEGIES:
        n_dt = estimate_time_steps(g, period=period, tidal_volume=vt,
                                   inhalation_fraction=frac)
        h_cycle = n_dt * sec_per_step / 3600.0
        h_per_l = h_cycle / (vt / 1e-3)
        results.append((label, n_dt, h_cycle, h_per_l))
        lines.append(f"{label:<32} {n_dt:>11.2e} {h_cycle:>8.2f} {h_per_l:>12.1f}")
    lines += [
        "",
        "h/cycle differs by the tidal-volume ratio; h/liter is (nearly)",
        "invariant -> it allows comparing ventilation strategies (Eq. (8))",
    ]
    emit("table1_metrics", "\n".join(lines))

    (l1, n1, hc1, hl1), (l2, n2, hc2, hl2) = results
    vt_ratio = 500e-6 / 60e-6
    # hours/cycle scales with the tidal volume (Eq. (8)) ...
    assert 0.4 * vt_ratio < hc1 / hc2 < 2.5 * vt_ratio
    # ... while hours/liter is invariant within a small factor
    assert 0.4 < hl1 / hl2 < 2.5
    # and the step count per cycle is period-independent at fixed V_T:
    n_same_vt = estimate_time_steps(g, period=1.0, tidal_volume=500e-6,
                                    inhalation_fraction=1.0 / 3.0)
    n_ref = estimate_time_steps(g, period=3.0, tidal_volume=500e-6,
                                inhalation_fraction=1.0 / 3.0)
    assert np.isclose(n_same_vt, n_ref, rtol=1e-12)
