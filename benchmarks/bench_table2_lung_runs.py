"""Table 2: performance of the ventilated-lung application runs for
g = 3, 5, 7, 9, 11 resolved generations — nodes, cells, DoF, time steps
per breathing cycle, wall-time per time step, hours per cycle and per
liter of tidal volume.

Measured: a real coupled ventilation run (g = 1 lung, ventilator +
windkessels + dual splitting) at Python scale, including per-step solver
iteration counts and the per-step wall-time.  Modeled: the full Table 2
via the morphometric discretization estimates and the calibrated
SuperMUC-NG model (see repro.lung.performance).  Shape claims: wall-time
per step stays a few times 1e-2 s across all g (the paper's headline:
"around or below 0.1 s per time step"), the number of steps grows with
the resolved depth, and h/cycle grows from O(1) to O(10).
"""

import sys
import time
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))
from common import emit

from repro.lung import LungVentilationSimulation
from repro.lung.performance import PAPER_TABLE2, lung_run_estimate
from repro.ns.solver import SolverSettings
from repro.robustness import RunConfig

GENERATIONS = (3, 5, 7, 9, 11)


def run_coupled_sample(n_steps=6):
    sim = LungVentilationSimulation(RunConfig(
        generations=1,
        degree=2,
        solver=SolverSettings(solver_tolerance=1e-3, cfl=0.4),
    ))
    # warm-up step excluded from timing (multigrid setup etc. done in ctor)
    sim.step()
    t0 = time.perf_counter()
    stats = [sim.step() for _ in range(n_steps)]
    elapsed = time.perf_counter() - t0
    return sim, stats, elapsed / n_steps


def test_table2_lung_runs(benchmark):
    sim, stats, sec_per_step = run_coupled_sample()
    benchmark(sim.step)

    rows = [lung_run_estimate(g) for g in GENERATIONS]
    lines = [
        "Table 2: lung application runs (first breathing cycle)",
        "",
        "measured coupled run (this reproduction, g=1, degree 2, "
        f"{sim.solver.dof_u.n_dofs + sim.solver.dof_p.n_dofs} DoF):",
        f"  wall-time per step: {sec_per_step:.3f} s (Python scale)",
        f"  pressure iterations/step: {np.mean([s.pressure_iterations for s in stats]):.1f}",
        f"  tidal volume delivered so far: {sim.tidal_volume_delivered()*1e6:.1f} ml",
        "",
        "modeled at SuperMUC-NG scale vs the paper:",
        f"{'g':>3} {'nodes':>6} {'#cell':>9} {'#DoF':>9} {'N_dt':>9} "
        f"{'s/step':>8} {'h/cycle':>8} {'h/l':>6} | "
        f"{'paper s/step':>12} {'h/cycle':>8} {'h/l':>5}",
    ]
    for e in rows:
        p = PAPER_TABLE2[e.generations]
        lines.append(
            f"{e.generations:>3} {e.n_nodes:>6} {e.n_cells:>9.1e} {e.n_dofs:>9.1e} "
            f"{e.n_time_steps:>9.1e} {e.seconds_per_step:>8.4f} "
            f"{e.hours_per_cycle:>8.1f} {e.hours_per_liter:>6.1f} | "
            f"{p[4]:>12.4f} {p[5]:>8.1f} {p[6]:>5.0f}"
        )
    emit("table2_lung_runs", "\n".join(lines))

    # shape (i): the coupled Python run works and inhales air
    assert sim.tidal_volume_delivered() > 0
    # shape (ii): modeled wall-time per step stays below 0.1 s for all g
    # (the paper's headline claim) and within 3x of the paper's values
    for e in rows:
        p = PAPER_TABLE2[e.generations]
        assert e.seconds_per_step < 0.1
        assert 1 / 3 < e.seconds_per_step / p[4] < 3
    # shape (iii): time steps per cycle grow with resolved generations
    steps = [e.n_time_steps for e in rows]
    assert all(b > a for a, b in zip(steps, steps[1:]))
    assert steps[-1] / steps[0] > 3
    # shape (iv): h/cycle grows by an order of magnitude from g=3 to g=11
    assert rows[-1].hours_per_cycle > 5 * rows[0].hours_per_cycle
    # shape (v): cell/DoF counts track the paper within ~3x
    for e in rows:
        p = PAPER_TABLE2[e.generations]
        assert 1 / 3 < e.n_cells / p[1] < 3
        assert 1 / 3 < e.n_dofs / p[2] < 3
