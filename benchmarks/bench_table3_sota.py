"""Table 3: minimum wall-time per time step of state-of-the-art
high-order incompressible flow solvers in the strong-scaling limit.

The literature rows are constants from the paper; the reproduction's row
is the modeled strong-scaling limit of one dual-splitting step on the
lung meshes (the same model validated against Table 2).  Shape claim:
the reproduced solver's limit sits at a few times 1e-2 s — below the
0.1 s of Nek5000/NekRS on Mira/Summit/Fugaku and in the range the paper
reports for SuperMUC-NG (0.017 - 0.045 s)."""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))
from common import emit

from repro.lung.performance import estimate_seconds_per_step, lung_run_estimate

#: Table 3 of the paper
PAPER_TABLE3 = [
    ("Offermans et al. [51]", "Mira (Power BQC)", 0.1, 0.1),
    ("CEED MS35 [39]", "Summit (Nvidia V100)", 0.066, 0.1),
    ("CEED MS36 [40]", "Fugaku (Fujitsu A64FX)", 0.1, 0.2),
    ("Krank et al. [41]", "SuperMUC (Intel SB)", 0.05, 0.05),
    ("Arndt et al. [6]", "SuperMUC-NG (Intel Sky)", 0.015, 0.03),
    ("Kronbichler et al. (the paper)", "SuperMUC-NG (Intel Sky)", 0.017, 0.045),
]


def test_table3_state_of_the_art(benchmark):
    ours = [lung_run_estimate(g) for g in (3, 7, 11)]
    t_ours_min = min(e.seconds_per_step for e in ours)
    t_ours_max = max(e.seconds_per_step for e in ours)
    benchmark(lambda: estimate_seconds_per_step(3.5e5, 128))

    lines = [
        "Table 3: min. wall-time per time step, strong-scaling limit",
        "",
        f"{'publication':<34} {'supercomputer':<26} {'min t_wall/step [s]':>20}",
    ]
    for pub, hw, lo, hi in PAPER_TABLE3:
        rng = f"{lo} - {hi}" if lo != hi else f"{lo}"
        lines.append(f"{pub:<34} {hw:<26} {rng:>20}")
    lines.append(
        f"{'this reproduction (modeled)':<34} {'SuperMUC-NG model':<26} "
        f"{f'{t_ours_min:.3f} - {t_ours_max:.3f}':>20}"
    )
    emit("table3_sota", "\n".join(lines))

    # shape (i): our modeled limit undercuts the 0.1 s of the
    # Nek5000/NekRS results (who-wins claim of the paper)
    assert t_ours_max < 0.1
    # shape (ii): it lands within the paper's own 0.017-0.045 s window
    # up to a factor ~2
    assert 0.008 < t_ours_min < 0.04
    assert 0.02 < t_ours_max < 0.09
