"""vmult performance gate — thin shim over ``repro bench --suite vmult``.

The measurements (DG-Laplace vmult, vector-Laplace vmult, and multigrid
setup cost, each in ``legacy`` and ``planned`` execution modes) now live
in :mod:`repro.perf.bench` as the declared ``vmult`` suite of the
benchmark regression harness.  This script keeps the historical entry
point alive for ``scripts/reproduce_all.sh`` and old CI invocations:
same flags, same ``benchmarks/results/vmult_gate.txt`` table, but the
JSON it writes is the schema-versioned ``repro/bench/2`` document with a
machine fingerprint — directly comparable with ``repro bench --compare``.

Usage::

    PYTHONPATH=src python benchmarks/bench_vmult_gate.py
    PYTHONPATH=src python benchmarks/bench_vmult_gate.py --smoke --output /tmp/b.json

or, equivalently::

    PYTHONPATH=src python -m repro bench --suite vmult [--smoke]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import emit  # noqa: E402


def _gate_table(doc: dict) -> str:
    """The historical planned-vs-legacy speedup table, recovered from the
    suite's flat case list (non-double runs carry dtype-suffixed names,
    see :func:`repro.perf.bench.dtype_suffix`)."""
    from repro.perf.bench import dtype_suffix

    sfx = dtype_suffix(doc.get("dtype", "float64"))
    by_name = {c["name"]: c for c in doc["cases"]}
    meshes: list[str] = []
    for c in doc["cases"]:
        mesh = c["name"].split("/", 1)[0]
        # the ensemble-axis scaling cases ride along in the suite but
        # have no legacy/planned pair; keep them out of the gate table
        if mesh not in meshes and f"{mesh}/dg_laplace/legacy{sfx}" in by_name:
            meshes.append(mesh)
    lines = [
        f"{'case':<18s} {'DoF':>8s} {'vmult legacy':>13s} {'planned':>9s} "
        f"{'x':>6s} {'mg-setup x':>11s}"
    ]
    for mesh in meshes:
        leg = by_name[f"{mesh}/dg_laplace/legacy{sfx}"]
        pla = by_name[f"{mesh}/dg_laplace/planned{sfx}"]
        mg_x = (by_name[f"{mesh}/mg_setup/planned{sfx}"]["throughput"]
                / by_name[f"{mesh}/mg_setup/legacy{sfx}"]["throughput"])
        lines.append(
            f"{mesh:<18s} {leg['n_dofs']:>8d} "
            f"{leg['metrics']['best_seconds'] * 1e3:>10.2f} ms "
            f"{pla['metrics']['best_seconds'] * 1e3:>6.2f} ms "
            f"{pla['throughput'] / leg['throughput']:>6.2f} "
            f"{mg_x:>11.2f}"
        )
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="tiny meshes / few repetitions (CI validity check)")
    ap.add_argument("--output", type=Path,
                    default=Path(__file__).resolve().parents[1] / "BENCH_vmult.json")
    ap.add_argument("--degree", type=int, default=3)
    ap.add_argument("--dtype", choices=("float64", "float32"),
                    default="float64",
                    help="compute precision of the measured kernels")
    args = ap.parse_args(argv)

    from repro.perf.bench import run_suite

    doc = run_suite("vmult", smoke=args.smoke, degree=args.degree,
                    dtype=args.dtype)
    args.output.write_text(json.dumps(doc, indent=2) + "\n")
    table_name = "vmult_gate" if args.dtype == "float64" else f"vmult_gate_{args.dtype}"
    emit(table_name, _gate_table(doc))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
