"""vmult performance gate: planned vs. legacy execution of the hot path.

Measures, on the refined box and the bifurcation meshes:

* DG-Laplace vmult throughput (the Figure 6-8 kernel),
* vector-Laplace vmult throughput (3-component viscous operator),
* multigrid *setup* cost — operator diagonal + Jacobi preconditioner +
  Chebyshev smoother construction (the Lanczos eigenvalue estimate) —

each in two execution modes:

* ``legacy``  — ``use_plans = False``: ``np.add.at`` scatters, per-call
  ``optimize=True`` einsum path searches, fresh temporaries, and the
  unit-vector ``diagonal_reference()``;
* ``planned`` — the :mod:`repro.core.plans` layer: precomputed scatter
  plans, cached contraction paths, workspace buffers, and the
  closed-form fast diagonal.

Writes a schema-versioned ``BENCH_vmult.json`` at the repository root
with both numbers and their ratio, seeding the benchmark trajectory with
before/after evidence.  ``--smoke`` shrinks every case to the smallest
meshes and a couple of repetitions so CI can assert "runs and emits
valid JSON" in seconds.

Usage::

    PYTHONPATH=src python benchmarks/bench_vmult_gate.py
    PYTHONPATH=src python benchmarks/bench_vmult_gate.py --smoke --output /tmp/b.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import bifurcation_forest, dg_laplace_setup, emit  # noqa: E402

SCHEMA = "repro/bench-vmult/1"


def box_forest(refinements: int):
    from repro.mesh.generators import box
    from repro.mesh.octree import Forest

    return Forest(
        box(subdivisions=(2, 1, 1), boundary_ids={0: 1})
    ).refine_all(refinements)


def measure_vmult(op, dtype=np.float64, repetitions: int = 10):
    from repro.perf.measure import measure_operator

    return measure_operator(op, repetitions=repetitions, dtype=dtype)


def measure_mg_setup(make_op, use_plans: bool, repetitions: int = 3) -> float:
    """Best wall time of the multigrid setup path on a fresh operator:
    diagonal + Jacobi + Chebyshev/Lanczos construction."""
    from repro.solvers.chebyshev import ChebyshevSmoother
    from repro.solvers.jacobi import JacobiPreconditioner

    best = float("inf")
    for _ in range(repetitions):
        op = make_op()
        op.use_plans = use_plans
        t0 = time.perf_counter()
        jac = JacobiPreconditioner(op)
        ChebyshevSmoother(op, degree=3, jacobi=jac)
        best = min(best, time.perf_counter() - t0)
    return best


def run_case(case_name: str, forest, degree: int, repetitions: int) -> dict:
    from repro.core.dof_handler import DGDofHandler
    from repro.core.operators import VectorDGLaplace

    dof, geo, conn, _ = dg_laplace_setup(forest, degree)
    dof_v = DGDofHandler(forest, degree, n_components=3)

    def make_op():
        return dg_laplace_setup(forest, degree)[3]

    out = {
        "case": case_name,
        "n_cells": forest.n_cells,
        "degree": degree,
        "n_dofs": dof.n_dofs,
    }

    for mode, use_plans in (("legacy", False), ("planned", True)):
        op = make_op()
        op.use_plans = use_plans
        r = measure_vmult(op, repetitions=repetitions)
        vec = VectorDGLaplace(op, dof_v)
        vec.use_plans = use_plans
        rv = measure_vmult(vec, repetitions=max(2, repetitions // 2))
        out[mode] = {
            "dg_laplace_vmult_seconds": r.best_seconds,
            "dg_laplace_dofs_per_second": r.dofs_per_second,
            "dg_laplace_alloc_peak_bytes": r.alloc_peak_bytes,
            "dg_laplace_alloc_net_blocks": r.alloc_net_blocks,
            "vector_laplace_vmult_seconds": rv.best_seconds,
            "vector_laplace_dofs_per_second": rv.dofs_per_second,
            "mg_setup_seconds": measure_mg_setup(
                make_op, use_plans, repetitions=min(3, repetitions)
            ),
        }

    out["speedup"] = {
        "dg_laplace_vmult": (
            out["legacy"]["dg_laplace_vmult_seconds"]
            / out["planned"]["dg_laplace_vmult_seconds"]
        ),
        "vector_laplace_vmult": (
            out["legacy"]["vector_laplace_vmult_seconds"]
            / out["planned"]["vector_laplace_vmult_seconds"]
        ),
        "mg_setup": (
            out["legacy"]["mg_setup_seconds"] / out["planned"]["mg_setup_seconds"]
        ),
    }
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="tiny meshes / few repetitions (CI validity check)")
    ap.add_argument("--output", type=Path,
                    default=Path(__file__).resolve().parents[1] / "BENCH_vmult.json")
    ap.add_argument("--degree", type=int, default=3)
    args = ap.parse_args(argv)

    if args.smoke:
        cases = [
            ("box_r1", box_forest(1), args.degree, 3),
            ("bifurcation_r0", bifurcation_forest(0), args.degree, 3),
        ]
    else:
        cases = [
            ("box_r3", box_forest(3), args.degree, 10),
            ("bifurcation_r1", bifurcation_forest(1), args.degree, 10),
        ]

    results = [
        run_case(name, forest, degree, reps)
        for name, forest, degree, reps in cases
    ]

    doc = {
        "schema": SCHEMA,
        "smoke": bool(args.smoke),
        "degree": args.degree,
        "cases": results,
    }
    args.output.write_text(json.dumps(doc, indent=2) + "\n")

    lines = [
        f"{'case':<18s} {'DoF':>8s} {'vmult legacy':>13s} {'planned':>9s} "
        f"{'x':>6s} {'mg-setup x':>11s}"
    ]
    for c in results:
        lines.append(
            f"{c['case']:<18s} {c['n_dofs']:>8d} "
            f"{c['legacy']['dg_laplace_vmult_seconds'] * 1e3:>10.2f} ms "
            f"{c['planned']['dg_laplace_vmult_seconds'] * 1e3:>6.2f} ms "
            f"{c['speedup']['dg_laplace_vmult']:>6.2f} "
            f"{c['speedup']['mg_setup']:>11.2f}"
        )
    emit("vmult_gate", "\n".join(lines) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
