"""Shared helpers of the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper's
evaluation: it *measures* what can be measured at Python scale (real
operator applications, real multigrid iteration counts, real mesh
partitions) and *models* the SuperMUC-NG-scale numbers with the
calibrated performance model, printing paper-vs-reproduction rows.
Result tables are also written to ``benchmarks/results/``.
"""

from __future__ import annotations

import io
import os
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n===== {name} =====")
    print(text)


def lung_test_forest(generations: int = 3, refine: int = 0, seed: int = 0):
    """A lung-like forest at Python scale (the paper's node-level numbers
    use the g = 11 mesh; we use a smaller tree with the same structure)."""
    from repro.lung import airway_tree_mesh, grow_airway_tree

    lm = airway_tree_mesh(
        grow_airway_tree(generations, seed=seed),
        refine_upper_generations=refine,
        max_refine_generation=1,
    )
    return lm


def bifurcation_forest(levels: int = 0):
    from repro.mesh.generators import bifurcation
    from repro.mesh.octree import Forest

    return Forest(bifurcation()).refine_all(levels)


def dg_laplace_setup(forest, degree, dirichlet=(1,)):
    from repro.core.dof_handler import DGDofHandler
    from repro.core.operators import DGLaplaceOperator
    from repro.mesh.connectivity import build_connectivity
    from repro.mesh.mapping import GeometryField

    geo = GeometryField(forest, degree)
    conn = build_connectivity(forest)
    dof = DGDofHandler(forest, degree)
    op = DGLaplaceOperator(dof, geo, conn, dirichlet_ids=dirichlet)
    return dof, geo, conn, op
