"""Validation example: unsteady Navier-Stokes against the analytic
Beltrami (Ethier-Steinman) solution.

Runs the full dual-splitting solver — explicit convective step, hybrid-
multigrid pressure Poisson solve with the consistent rotational Neumann
boundary condition, implicit viscous step, and the divergence/continuity
penalty step — and reports the velocity error and the second-order
temporal convergence of the scheme (Eq. (1)-(5)).

Run:  python examples/beltrami_flow.py
"""

import numpy as np

from repro.mesh import Forest, box
from repro.ns import (
    BeltramiFlow,
    BoundaryConditions,
    IncompressibleNavierStokesSolver,
    SolverSettings,
    VelocityDirichlet,
)


def run_once(n_steps: int, degree: int = 4, nu: float = 0.1, t_end: float = 0.2):
    mesh = box(subdivisions=(1, 1, 1), boundary_ids={i: 1 for i in range(6)})
    forest = Forest(mesh).refine_all(1)
    flow = BeltramiFlow(nu)
    bcs = BoundaryConditions(
        {1: VelocityDirichlet(lambda x, y, z, t: flow.velocity(x, y, z, t))}
    )
    solver = IncompressibleNavierStokesSolver(
        forest, degree, nu, bcs, SolverSettings(solver_tolerance=1e-8)
    )
    solver.initialize(flow.velocity)
    for _ in range(n_steps):
        solver.step(t_end / n_steps)
    err = solver.velocity_error_l2(flow.velocity, solver.scheme.t)
    its = np.mean([s.pressure_iterations for s in solver.scheme.statistics])
    return err, its, solver


def main() -> None:
    print("Beltrami flow, k=4 velocity / k=3 pressure, nu=0.1, T=0.2")
    print(f"{'steps':>6} {'dt':>9} {'velocity L2 error':>18} {'rate':>6} {'p-iters':>8}")
    prev = None
    for n_steps in (8, 16, 32):
        err, its, solver = run_once(n_steps)
        rate = f"{np.log2(prev / err):.2f}" if prev else "   -"
        print(f"{n_steps:>6} {0.2 / n_steps:>9.4f} {err:>18.3e} {rate:>6} {its:>8.1f}")
        prev = err
    print(f"\nfinal divergence (max |div u|): {solver.max_divergence():.3e}")
    print("the >= 2nd-order decay demonstrates the J=2 dual splitting with")
    print("the consistent pressure Neumann boundary condition")


if __name__ == "__main__":
    main()
