"""Gas wash-in through a bifurcating airway — the transport extension.

Couples the incompressible flow solver with the passive-scalar gas
transport (Section 2.2 names O2/CO2 transport as the follow-up the flow
performance work enables): pressure-driven flow through the generic
bifurcation carries fresh gas (c = 1) from the trachea inlet into both
daughter branches; the example reports the concentration front arriving
at the two outlets.

Run:  python examples/gas_washin.py
"""

import numpy as np

from repro.mesh import Forest, bifurcation
from repro.ns import (
    BoundaryConditions,
    IncompressibleNavierStokesSolver,
    PressureDirichlet,
    SolverSettings,
)
from repro.ns.scalar_transport import ScalarTransportSolver


def main() -> None:
    mesh = bifurcation(radius=1.0, parent_length=4.0, child_length=4.0)
    forest = Forest(mesh)
    bcs = BoundaryConditions({
        1: PressureDirichlet(2.0),
        2: PressureDirichlet(0.0),
        3: PressureDirichlet(0.0),
    })
    flow = IncompressibleNavierStokesSolver(
        forest, 2, viscosity=0.5,
        bcs=bcs, settings=SolverSettings(solver_tolerance=1e-6, cfl=0.3,
                                         dt_max=0.05),
    )
    flow.initialize()
    print(f"bifurcation mesh: {forest.n_cells} cells; developing the flow ...")
    while flow.scheme.t < 2.0 - 1e-10:
        flow.step(min(0.05, 2.0 - flow.scheme.t))
    q_in = -flow.flow_rate(1)
    print(f"steady inflow: {q_in:.4f} m^3/s "
          f"(outlets: {flow.flow_rate(2):.4f} + {flow.flow_rate(3):.4f})\n")

    transport = ScalarTransportSolver(
        forest, 2, diffusivity=0.02, connectivity=flow.conn,
        geometry=flow.geo_u, dof_u=flow.dof_u, inflow_values={1: 1.0},
    )
    transport.set_initial(0.0)

    print(f"{'t':>6} {'mean c':>8} {'c at outlet 2':>14} {'c at outlet 3':>14}")
    # rescale the (slow, strongly viscous) flow field to unit peak speed:
    # the wash-in demo cares about the flow *pattern*, and this keeps the
    # transit time O(10) so the example runs in seconds
    from repro.ns.postprocess import FlowDiagnostics

    diag = FlowDiagnostics(flow.dof_u, flow.geo_u)
    u = flow.velocity / diag.max_velocity(flow.velocity)
    dt = 0.025  # explicit advection-diffusion limit at the junction cells
    from repro.core.operators.base import FaceKernels

    fk = FaceKernels(flow.geo_u.kernel)

    def outlet_mean_c(bid):
        c = transport.dof_c.cell_view(transport.c)
        total, area = 0.0, 0.0
        for batch, fm in zip(flow.conn.boundary, flow.divergence.bdry_metrics):
            if batch.boundary_id != bid:
                continue
            tr = flow.geo_u.kernel.face_nodal_trace(c[batch.cells], batch.face)
            cq = fk.to_quad(tr)
            total += float((cq * fm.jxw).sum())
            area += float(fm.jxw.sum())
        return total / area

    for step in range(1, 801):
        transport.step(dt, u)
        if step % 160 == 0:
            print(f"{step * dt:>6.2f} {transport.mean_concentration(flow.geo_u):>8.3f} "
                  f"{outlet_mean_c(2):>14.3f} {outlet_mean_c(3):>14.3f}")

    print("\nthe fresh-gas front fills the parent and reaches both daughters —")
    print("the wash-in dynamics that O2/CO2 prediction builds on")


if __name__ == "__main__":
    main()
