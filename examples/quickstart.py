"""Quickstart: matrix-free DG Poisson solve with the hybrid multigrid.

Solves -lap(u) = f on the unit cube with a manufactured solution, using
the symmetric interior penalty DG discretization (degree 3), the hybrid
geometric-polynomial-algebraic multigrid preconditioner (single-
precision V-cycle), and double-precision conjugate gradients — the
Figure 9/10 solver of the paper in ~40 lines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.dof_handler import DGDofHandler
from repro.core.operators import DGLaplaceOperator, InverseMassOperator
from repro.mesh import Forest, GeometryField, box, build_connectivity
from repro.solvers import HybridMultigridPreconditioner, conjugate_gradient


def main() -> None:
    # mesh: unit cube, 2 uniform octree refinements (512 cells)
    mesh = box(subdivisions=(1, 1, 1), boundary_ids={i: 1 for i in range(6)})
    forest = Forest(mesh).refine_all(2)

    degree = 3
    geometry = GeometryField(forest, degree)
    connectivity = build_connectivity(forest)
    dofs = DGDofHandler(forest, degree)
    print(f"mesh: {forest.n_cells} cells, {dofs.n_dofs} DoF (k={degree})")

    op = DGLaplaceOperator(dofs, geometry, connectivity, dirichlet_ids=(1,))

    exact = lambda x, y, z: np.sin(np.pi * x) * np.sin(np.pi * y) * np.sin(np.pi * z)
    rhs = op.assemble_rhs(
        f=lambda x, y, z: 3 * np.pi**2 * exact(x, y, z),
        dirichlet=lambda x, y, z: 0.0 * x,
    )

    mg = HybridMultigridPreconditioner(op)
    print("multigrid hierarchy:")
    print(mg.describe())

    result = conjugate_gradient(op, rhs, mg, tol=1e-10)
    print(f"\nCG converged in {result.n_iterations} iterations "
          f"(residual reduction rate {result.reduction_rate:.3f})")

    # L2 error against the manufactured solution
    cm = geometry.cell_metrics()
    uq = geometry.kernel.values(dofs.cell_view(result.x))
    eq = exact(cm.points[:, 0], cm.points[:, 1], cm.points[:, 2])
    err = np.sqrt(np.sum((uq - eq) ** 2 * cm.jxw))
    print(f"L2 error vs manufactured solution: {err:.3e}")


if __name__ == "__main__":
    main()
