"""Strong-scaling study: the Figure 8-10 methodology end to end.

1. builds the lung mesh and measures the *real* Morton-partition ghost
   census at increasing rank counts,
2. solves the pressure Poisson problem with the hybrid multigrid and
   reports the measured iteration count,
3. feeds both into the calibrated SuperMUC-NG model to print the
   strong-scaling table of the solve at the paper's problem size.

Run:  python examples/strong_scaling_study.py
"""

import numpy as np

from repro.core.dof_handler import DGDofHandler
from repro.core.operators import DGLaplaceOperator
from repro.lung import airway_tree_mesh, grow_airway_tree
from repro.mesh import GeometryField, build_connectivity
from repro.parallel import (
    MultigridLevelSpec,
    MultigridSolveModel,
    multigrid_levels_from_preconditioner,
    partition_stats,
)
from repro.solvers import HybridMultigridPreconditioner, conjugate_gradient


def main() -> None:
    lm = airway_tree_mesh(grow_airway_tree(3, seed=0), refine_upper_generations=1,
                          max_refine_generation=1)
    forest = lm.forest
    conn = build_connectivity(forest)
    print(f"lung g=3 mesh: {forest.n_cells} cells, "
          f"{conn.n_hanging_faces} hanging faces, "
          f"{conn.mixed_orientation_fraction():.1%} mixed-orientation faces\n")

    print("Morton partition census (real mesh):")
    print(f"{'ranks':>6} {'max cells':>10} {'cut faces':>10} {'max neighbors':>14}")
    for p in (2, 8, 32, 128):
        st = partition_stats(forest, conn, p)
        print(f"{p:>6} {st.max_cells():>10} {st.cut_faces:>10} {st.max_neighbors():>14}")

    degree = 3
    geo = GeometryField(forest, degree)
    dof = DGDofHandler(forest, degree)
    op = DGLaplaceOperator(dof, geo, conn, dirichlet_ids=tuple([1] + lm.outlet_ids))
    mg = HybridMultigridPreconditioner(op)
    res = conjugate_gradient(op, np.ones(dof.n_dofs), mg, tol=1e-10, max_iter=60)
    print(f"\npressure Poisson solve: {dof.n_dofs} DoF, "
          f"{res.n_iterations} CG iterations at tol 1e-10 "
          f"(paper lung g=11: 21-22)")

    # model the paper-size problem with the measured hierarchy + iterations
    target_dofs = 22e6  # the g=11, l=0 case of Figure 10
    scale = target_dofs / dof.n_dofs
    levels = [
        MultigridLevelSpec(n_dofs=ls.n_dofs * scale, matvecs=ls.matvecs, degree=ls.degree)
        for ls in multigrid_levels_from_preconditioner(mg)
    ]
    model = MultigridSolveModel(levels=levels, amg_time=3.5e-3,
                                face_orientation_overhead=0.25)
    print(f"\nmodeled solve time at {target_dofs:.0e} DoF on SuperMUC-NG:")
    print(f"{'nodes':>6} {'t_solve [s]':>12}")
    for p in (16, 64, 256, 1024):
        print(f"{p:>6} {model.solve_time(res.n_iterations, p):>12.3e}")
    print("\n(the saturation near 0.1 s reproduces Figure 10's finding that")
    print(" the 22M-DoF lung case cannot scale below ~0.1 s per solve)")


if __name__ == "__main__":
    main()
