"""Taylor-Green vortex on the periodic torus — the classical benchmark
of the ExaDG under-resolved-turbulence lineage (Fehn et al. 2018), made
possible by the translational periodic boundary support.

The vortex transitions to turbulence; with implicit-LES DG (+ the
divergence/continuity penalty stabilization) the kinetic energy decays
monotonically and the enstrophy rises towards the transition peak even
at strongly under-resolved Python-scale resolution.

Run:  python examples/taylor_green.py
"""

import numpy as np

from repro.mesh import Forest, box
from repro.ns import (
    BoundaryConditions,
    FlowDiagnostics,
    IncompressibleNavierStokesSolver,
    SolverSettings,
    TaylorGreenVortex3D,
)


def main() -> None:
    L = np.pi  # the classical domain is (2 pi L)^3 with L = 1; use a
    # [0, 2 pi]^3 box so the velocity is exactly periodic
    mesh = box(
        lower=(0, 0, 0), upper=(2 * np.pi, 2 * np.pi, 2 * np.pi),
        subdivisions=(2, 2, 2),
        boundary_ids={0: 10, 1: 11, 2: 20, 3: 21, 4: 30, 5: 31},
    )
    forest = Forest(mesh)
    two_pi = 2 * np.pi
    periodic = [
        (10, 11, (two_pi, 0, 0)),
        (20, 21, (0, two_pi, 0)),
        (30, 31, (0, 0, two_pi)),
    ]
    Re = 100.0
    nu = 1.0 / Re
    solver = IncompressibleNavierStokesSolver(
        forest, 3, nu, BoundaryConditions({}),
        SolverSettings(solver_tolerance=1e-6, cfl=0.25),
        periodic=periodic,
    )
    tgv = TaylorGreenVortex3D(V0=1.0, L=1.0)
    solver.initialize(lambda x, y, z, t: tgv.velocity(x, y, z))
    diag = FlowDiagnostics(solver.dof_u, solver.geo_u)

    print(f"Taylor-Green vortex, Re = {Re:.0f}, fully periodic "
          f"[0, 2pi]^3, {forest.n_cells} cells, k = 3 "
          f"({solver.dof_u.n_dofs} velocity DoF)")
    print(f"{'t':>6} {'kinetic energy':>15} {'enstrophy':>10} {'-dE/dt vs 2 nu Z':>18}")
    e_prev, t_prev = diag.kinetic_energy(solver.velocity), 0.0
    print(f"{0.0:>6.2f} {e_prev:>15.6f} {diag.enstrophy(solver.velocity):>10.4f}")
    t_end = 5.0
    next_report = 1.0
    while solver.scheme.t < t_end - 1e-10:
        solver.step()
        if solver.scheme.t >= next_report - 1e-10:
            e = diag.kinetic_energy(solver.velocity)
            z = diag.enstrophy(solver.velocity)
            dedt = -(e - e_prev) / (solver.scheme.t - t_prev)
            print(f"{solver.scheme.t:>6.2f} {e:>15.6f} {z:>10.4f} "
                  f"{dedt:>9.5f} vs {2 * nu * z:>7.5f}")
            e_prev, t_prev = e, solver.scheme.t
            next_report += 1.0

    print("\nenergy decays monotonically; the dissipation rate tracks")
    print("2 nu * enstrophy (exact for divergence-free fields) plus the")
    print("numerical dissipation of the implicit-LES discretization")


if __name__ == "__main__":
    main()
