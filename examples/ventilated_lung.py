"""The paper's application: airflow in a mechanically ventilated lung.

Builds a morphometric airway tree, meshes it hex-only (square-duct
branches, conforming junctions), attaches the pressure-controlled
ventilator (PEEP + dp with endotracheal-tube drop) at the trachea and
RC windkessel compartments at every terminal airway, and advances the
incompressible Navier-Stokes solver with CFL-adaptive dual splitting —
a scaled-down version of the Table 2 runs.

Writes the mesh (with generation numbers) to ventilated_lung.vtk.

Run:  python examples/ventilated_lung.py [generations]
"""

import sys

import numpy as np

from repro.lung import LungVentilationSimulation
from repro.lung.morphometry import CMH2O
from repro.mesh.vtk import write_vtk
from repro.ns.solver import SolverSettings
from repro.robustness import RunConfig


def main(generations: int = 2) -> None:
    sim = LungVentilationSimulation(RunConfig(
        generations=generations,
        degree=2,
        solver=SolverSettings(solver_tolerance=1e-3, cfl=0.4),
    ))
    lung = sim.lung
    print(f"lung model: g = {generations} generations, "
          f"{lung.tree.n_airways} airways, {lung.n_outlets} terminal outlets")
    print(f"mesh: {lung.forest.n_cells} cells, "
          f"{sim.solver.dof_u.n_dofs + sim.solver.dof_p.n_dofs} DoF")
    print(f"ventilator: PEEP {sim.ventilator.settings.peep / CMH2O:.0f} cmH2O, "
          f"dp {sim.ventilator.dp / CMH2O:.0f} cmH2O, period "
          f"{sim.ventilator.settings.period:.0f} s (I:E = 1:2)")
    wk = sim.windkessels.compartments[0]
    print(f"windkessel per outlet: R = {wk.resistance:.3g} Pa s/m^3, "
          f"C = {wk.compliance:.3g} m^3/Pa\n")

    print(f"{'step':>5} {'t [s]':>8} {'dt [s]':>9} {'inflow [l/s]':>13} "
          f"{'V_T [ml]':>9} {'p-iters':>8}")
    n_steps = 25
    for i in range(n_steps):
        st = sim.step()
        if i % 5 == 4 or i == 0:
            print(f"{i + 1:>5} {sim.time:>8.4f} {st.dt:>9.2e} "
                  f"{sim._inlet_flow * 1e3:>13.3f} "
                  f"{sim.tidal_volume_delivered() * 1e6:>9.2f} "
                  f"{st.pressure_iterations:>8}")

    print(f"\nafter {n_steps} steps: delivered volume "
          f"{sim.tidal_volume_delivered() * 1e6:.1f} ml "
          f"(target {sim.ventilator.settings.tidal_volume_target * 1e6:.0f} ml "
          f"per full inhalation)")
    out = write_vtk(
        "ventilated_lung.vtk",
        lung.forest,
        cell_data={
            "generation": np.array(
                [lung.branch_generation[lung.forest.coarse.cell_branch[leaf.tree]]
                 for leaf in lung.forest.leaves],
                dtype=float,
            )
        },
    )
    print(f"mesh written to {out} (view in ParaView)")


if __name__ == "__main__":
    g = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    main(g)
