"""Oscillatory duct flow — the pulsatile regime of ventilation.

Drives a square duct with an oscillating pressure difference (the
frequency regime of quiet breathing) and compares the quasi-steady flow
amplitude and the phase lag against the low-Womersley-number expansion:
for alpha^2 = omega a^2 / nu << 1 the flow follows the Poiseuille value
of the instantaneous pressure gradient with a phase lag
~ arctan(alpha^2 C) — the physics behind the windkessel time constants
of the lung model.

Run:  python examples/womersley_duct.py
"""

import numpy as np

from repro.mesh import Forest, box
from repro.ns import (
    BoundaryConditions,
    IncompressibleNavierStokesSolver,
    PressureDirichlet,
    SolverSettings,
    poiseuille_square_duct_flow_rate,
)


def main() -> None:
    a = 0.5  # duct half-width
    L = 2.0
    nu = 1.0
    omega = 2 * np.pi  # forcing frequency
    alpha2 = omega * a * a / nu
    dp0 = 1.0

    mesh = box(lower=(-a, -a, 0.0), upper=(a, a, L),
               subdivisions=(2, 2, 3), boundary_ids={4: 1, 5: 2})
    forest = Forest(mesh).refine_all(1)
    bcs = BoundaryConditions({
        1: PressureDirichlet(lambda x, y, z, t: np.full_like(
            np.asarray(x, float), dp0 * np.sin(omega * t))),
        2: PressureDirichlet(0.0),
    })
    solver = IncompressibleNavierStokesSolver(
        forest, 2, nu, bcs, SolverSettings(solver_tolerance=1e-8, cfl=0.3,
                                           dt_max=0.01),
    )
    solver.initialize()
    print(f"square duct 2a={2*a}, L={L}, nu={nu}, omega={omega:.2f} "
          f"(Womersley alpha^2 = {alpha2:.2f})")

    # run two forcing periods, record the outlet flow
    times, flows = [], []
    t_end = 2.0
    while solver.scheme.t < t_end - 1e-10:
        solver.step(min(0.01, t_end - solver.scheme.t))
        times.append(solver.scheme.t)
        flows.append(solver.flow_rate(2))
    times = np.array(times)
    flows = np.array(flows)

    # fit amplitude/phase on the second period
    mask = times > 1.0
    tt, qq = times[mask], flows[mask]
    A = np.stack([np.sin(omega * tt), np.cos(omega * tt)], axis=1)
    coef, *_ = np.linalg.lstsq(A, qq, rcond=None)
    amp = float(np.hypot(*coef))
    phase = float(np.arctan2(-coef[1], coef[0]))

    q_poiseuille = poiseuille_square_duct_flow_rate(dp0 / L, a, nu)
    print(f"\nfitted flow amplitude : {amp:.4e} m^3/s")
    print(f"quasi-steady Poiseuille: {q_poiseuille:.4e} m^3/s "
          f"(ratio {amp / q_poiseuille:.3f})")
    print(f"phase lag              : {np.degrees(phase):.1f} deg "
          f"(low-alpha limit: ~{np.degrees(np.arctan(alpha2 / 8)):.1f} deg scale)")
    print("\nat alpha^2 = O(1) the amplitude stays near the quasi-steady value")
    print("with a small phase lag — the regime assumed by the Poiseuille-based")
    print("windkessel resistances of the lung model (Section 5.3)")


if __name__ == "__main__":
    main()
