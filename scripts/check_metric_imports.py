#!/usr/bin/env python3
"""Enforce the module-level metric-handle pattern.

The metric registry's disabled fast path only stays allocation-free if
instrumented modules create their handles once at import time and the
hot loops touch pre-bound module globals.  A function-level
``from ..telemetry.metrics import ...`` (or ``import repro.telemetry
.metrics``) inside solver code defeats that: every call re-runs the
import machinery and a registry lookup inside the hot loop.

This checker walks ``src/repro`` and flags any import of the metrics
module that is nested inside a function or method.  ``repro/cli.py`` is
allowlisted — its deferred imports exist so ``repro --help`` does not
load the solver stack, and command entry points run once per process,
not per time step.

Exit status: 0 when clean, 1 with one ``path:line`` diagnostic per
violation otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: files whose function-level imports are deliberate (startup latency,
#: not hot loops)
ALLOWLIST = {"cli.py"}


def _is_metrics_import(node: ast.stmt) -> bool:
    if isinstance(node, ast.Import):
        return any(a.name.endswith("telemetry.metrics") for a in node.names)
    if isinstance(node, ast.ImportFrom):
        mod = node.module or ""
        if mod.endswith("telemetry.metrics") or mod == "metrics":
            return True
        # `from ..telemetry import METRICS` / `from .telemetry import ...`
        if mod.endswith("telemetry") or mod == "telemetry":
            return any(
                a.name in ("METRICS", "metrics", "MetricRegistry")
                for a in node.names
            )
    return False


def check_file(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    problems: list[str] = []

    class Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.depth = 0

        def _visit_func(self, node) -> None:
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1

        visit_FunctionDef = _visit_func
        visit_AsyncFunctionDef = _visit_func
        visit_Lambda = _visit_func

        def _check(self, node) -> None:
            if self.depth > 0 and _is_metrics_import(node):
                problems.append(
                    f"{path}:{node.lineno}: metrics imported inside a "
                    "function — bind a module-level handle at import time "
                    "instead (see repro.telemetry.metrics)"
                )
            self.generic_visit(node)

        visit_Import = _check
        visit_ImportFrom = _check

    Visitor().visit(tree)
    return problems


def main(argv: list[str] | None = None) -> int:
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent / "src" / "repro"
    problems: list[str] = []
    for path in sorted(root.rglob("*.py")):
        if path.name in ALLOWLIST:
            continue
        problems.extend(check_file(path))
    for p in problems:
        print(p)
    if problems:
        print(f"{len(problems)} call-time metrics import(s) found",
              file=sys.stderr)
        return 1
    print(f"metric-handle check OK ({root})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
