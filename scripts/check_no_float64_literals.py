#!/usr/bin/env python3
"""Forbid hard-coded double-precision dtypes in the kernel layer.

The end-to-end single-precision compute path only works if the kernel
layer (the operators and the plan/workspace machinery) derives every
allocation and cast dtype from its *input* — via
``repro.core.backend.kernel_dtype``/``resolve_dtype`` or
``np.empty(..., dtype=u.dtype)`` — never from a ``np.float64`` or
``dtype=float`` literal.  One such literal silently promotes every
downstream temporary back to double and erases the memory-bandwidth win
the paper's Section 3.4 mixed-precision strategy is built on.

This checker walks ``src/repro/core/operators`` plus
``src/repro/core/plans.py`` and flags

* any ``np.float64`` / ``numpy.float64`` attribute reference, and
* any ``dtype=float`` / ``dtype="float64"`` keyword argument,

in those files.  Setup-only code that legitimately needs double (e.g.
assembling factorizations) belongs outside the checked kernel set or
should go through :data:`repro.core.backend.DEFAULT_DTYPE`.

Exit status: 0 when clean, 1 with one ``path:line`` diagnostic per
violation otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: kernel-layer files/directories (relative to src/repro) where
#: double-precision literals are forbidden
CHECKED = ("core/operators", "core/plans.py")


def _is_float64_attribute(node: ast.AST) -> bool:
    """``np.float64`` / ``numpy.float64`` (any alias ending there)."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "float64"
        and isinstance(node.value, ast.Name)
    )


def _is_double_literal(node: ast.AST) -> bool:
    """A value that pins a dtype to double: ``float`` (the builtin) or
    the string ``"float64"``/``"f8"``."""
    if isinstance(node, ast.Name) and node.id == "float":
        return True
    if isinstance(node, ast.Constant) and node.value in ("float64", "f8", ">f8", "<f8"):
        return True
    return _is_float64_attribute(node)


def check_file(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    problems: list[str] = []

    class Visitor(ast.NodeVisitor):
        def visit_Attribute(self, node: ast.Attribute) -> None:
            if _is_float64_attribute(node):
                problems.append(
                    f"{path}:{node.lineno}: np.float64 literal in kernel "
                    "code — derive the dtype from the input (kernel_dtype) "
                    "or use repro.core.backend.DEFAULT_DTYPE"
                )
            self.generic_visit(node)

        def visit_keyword(self, node: ast.keyword) -> None:
            if node.arg == "dtype" and _is_double_literal(node.value):
                problems.append(
                    f"{path}:{node.lineno}: hard-coded double-precision "
                    "dtype= in kernel code — derive it from the input "
                    "dtype instead"
                )
            self.generic_visit(node)

    Visitor().visit(tree)
    return problems


def main(argv: list[str] | None = None) -> int:
    root = (
        Path(argv[0])
        if argv
        else Path(__file__).resolve().parent.parent / "src" / "repro"
    )
    problems: list[str] = []
    checked = 0
    for rel in CHECKED:
        target = root / rel
        paths = sorted(target.rglob("*.py")) if target.is_dir() else [target]
        for path in paths:
            if not path.exists():
                print(f"error: {path} does not exist", file=sys.stderr)
                return 2
            problems.extend(check_file(path))
            checked += 1
    for p in problems:
        print(p)
    if problems:
        print(f"{len(problems)} double-precision literal(s) found",
              file=sys.stderr)
        return 1
    print(f"no-float64-literal check OK ({checked} kernel files under {root})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
