#!/usr/bin/env bash
# Full reproduction pass: test suite, every table/figure benchmark, and
# all runnable examples.  Outputs land in benchmarks/results/ and
# reproduce_outputs/.
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p reproduce_outputs

echo "== 1/3 test suite =="
python -m pytest tests/ | tee reproduce_outputs/tests.txt

echo "== 2/3 benchmarks (tables & figures) =="
python -m pytest benchmarks/ --benchmark-only | tee reproduce_outputs/benchmarks.txt

echo "== 3/3 examples =="
for ex in quickstart beltrami_flow ventilated_lung strong_scaling_study \
          womersley_duct gas_washin taylor_green; do
  echo "--- examples/$ex.py ---"
  python "examples/$ex.py" | tee "reproduce_outputs/example_$ex.txt"
done

echo
echo "done; see benchmarks/results/ and reproduce_outputs/"
