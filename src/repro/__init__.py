"""repro: a Python reproduction of "A Next-Generation Discontinuous
Galerkin Fluid Dynamics Solver with Application to High-Resolution Lung
Airflow Simulations" (Kronbichler et al., SC '21).

Subpackages
-----------
core      matrix-free sum-factorized DG operator evaluation
mesh      unstructured hex meshes, forest-of-octrees refinement, mappings
lung      airway-tree morphometry, hex mesh generation, ventilation models
solvers   CG, Chebyshev/Jacobi smoothers, AMG, hybrid multigrid
timeint   BDF dual-splitting scheme with adaptive CFL time stepping
ns        the incompressible Navier-Stokes solver and analytic solutions
parallel  Morton partitioning, ghost exchange, machine/performance models
perf      Flop and memory-transfer models, throughput measurement
"""

__version__ = "1.0.0"
