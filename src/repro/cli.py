"""Command-line interface: ``python -m repro <command>``.

Small drivers over the library for the workflows a user reaches for
first — a Poisson solve with the hybrid multigrid, the analytic
Navier-Stokes validation, a ventilated-lung run, the scaling model, and
airway-mesh generation with VTK export.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys

import numpy as np

# mirrors repro.perf.attribution.MACHINES (kept literal so building the
# parser does not import the solver stack; a test asserts they agree)
_MACHINE_NAMES = ("local", "supermuc-ng", "summit-v100", "fugaku-a64fx")


def _float_list(text: str) -> list[float]:
    """argparse type for comma-separated float lists ("1.0,1.5,2.0")."""
    try:
        return [float(v) for v in text.split(",") if v.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated floats, got {text!r}"
        ) from None


@contextlib.contextmanager
def _metrics_session(path: str | None, command: str):
    """Enable the global metric registry for the lifetime of a command
    and export its state to ``path`` on the way out (including error
    exits — a failed run's metrics are exactly the interesting ones).
    Yields a list the command may append per-worker snapshot documents
    to (``pool.collect_worker_metrics()``); they are folded into the
    export so worker-side series — phase seconds, ghost-wait spins —
    land in the one file the run produces.  A no-op when no
    ``--metrics-file`` was given."""
    worker_docs: list[dict] = []
    if not path:
        yield worker_docs
        return
    from .telemetry import METRICS, export_metrics
    from .telemetry.metrics import merge_snapshots, snapshot_doc

    METRICS.reset()
    METRICS.enable()
    try:
        yield worker_docs
    finally:
        METRICS.disable()
        source: dict = snapshot_doc(METRICS)
        meta = {"command": command}
        if worker_docs:
            source = merge_snapshots([source, *worker_docs])
            meta["aggregated_workers"] = len(worker_docs)
        out = export_metrics(source, path, meta=meta)
        print(f"metrics written to {out}")


def _write_timeline_trace(ctx, path, quiet=False):
    """Export a distributed-solver context's merged worker timeline as
    Chrome trace-event JSON and return the analysis document (the same
    numbers ``repro trace`` recomputes from the file)."""
    from .telemetry import analyze_timeline, render_timeline, write_chrome_trace

    events = ctx.timeline_events()
    rank_bytes = ctx.rank_exchange_bytes()
    analysis = analyze_timeline(
        events, rank_bytes=rank_bytes,
        dropped_events=ctx.pool.timeline_dropped,
    )
    meta = {
        "rank_exchange_bytes": {str(k): v for k, v in rank_bytes.items()},
        "clock_offsets_s": {str(k): v
                            for k, v in ctx.pool.clock_offsets.items()},
        "clock_rtts_s": {str(k): v for k, v in ctx.pool.clock_rtts.items()},
        "dropped_events": ctx.pool.timeline_dropped,
    }
    out = write_chrome_trace(path, events, meta=meta)
    if not quiet:
        print(f"timeline trace written to {out} ({len(events)} events; "
              f"load in Perfetto or chrome://tracing)")
        print(render_timeline(analysis))
    return analysis


def cmd_poisson(args) -> int:
    from .core.dof_handler import DGDofHandler
    from .core.operators import DGLaplaceOperator
    from .mesh import Forest, GeometryField, box, build_connectivity
    from .solvers import HybridMultigridPreconditioner, conjugate_gradient

    mesh = box(subdivisions=(1, 1, 1), boundary_ids={i: 1 for i in range(6)})
    forest = Forest(mesh).refine_all(args.refinements)
    geo = GeometryField(forest, args.degree)
    conn = build_connectivity(forest)
    dof = DGDofHandler(forest, args.degree)
    op = DGLaplaceOperator(dof, geo, conn, dirichlet_ids=(1,))
    if not args.json:
        print(f"Poisson: {forest.n_cells} cells, {dof.n_dofs} DoF, k={args.degree}")
    mg = HybridMultigridPreconditioner(op)
    if not args.json:
        print(mg.describe())
    b = op.assemble_rhs(f=lambda x, y, z: np.ones_like(x),
                        dirichlet=lambda x, y, z: 0.0 * x)
    workers = getattr(args, "workers", 0) or 0
    trace_path = getattr(args, "trace_timeline", None)
    if trace_path and not workers:
        print("error: --trace-timeline requires --workers >= 2",
              file=sys.stderr)
        return 2
    if workers:
        from .parallel import DistributedSolverContext

        with DistributedSolverContext(
            op, mg, n_workers=workers, trace_timeline=bool(trace_path)
        ) as ctx:
            if not args.json:
                c = ctx.census
                print(f"distributed: {workers} workers, "
                      f"{c.n_messages} messages/round, "
                      f"{c.bytes_total} ghost bytes")
            res = conjugate_gradient(ctx.operator, b, mg,
                                     tol=args.tolerance, name="poisson")
            if trace_path:
                _write_timeline_trace(ctx, trace_path,
                                      quiet=args.json)
    else:
        res = conjugate_gradient(op, b, mg, tol=args.tolerance, name="poisson")
    if args.json:
        from .perf.measure import measure_operator

        perf = measure_operator(op, name="dg_laplace_vmult", repetitions=5)
        print(json.dumps({
            "command": "poisson",
            "n_cells": forest.n_cells,
            "n_dofs": dof.n_dofs,
            "degree": args.degree,
            "tolerance": args.tolerance,
            "converged": res.converged,
            "failure_reason": res.failure_reason,
            "n_iterations": res.n_iterations,
            "reduction_rate": res.reduction_rate,
            "residuals": res.residuals,
            "vmult_best_seconds": perf.best_seconds,
            "vmult_dofs_per_second": perf.dofs_per_second,
            "vmult_alloc_peak_bytes": perf.alloc_peak_bytes,
            "vmult_alloc_net_blocks": perf.alloc_net_blocks,
        }))
    else:
        tail = "" if res.converged else f" [{res.failure_reason}]"
        print(f"converged: {res.converged} in {res.n_iterations} iterations "
              f"(reduction rate {res.reduction_rate:.3f}){tail}")
    return 0 if res.converged else 1


def cmd_lung(args) -> int:
    from .robustness import RunConfig
    from .telemetry import TRACER

    if args.trace:
        TRACER.reset()
        TRACER.enable()
    try:
        cfg = RunConfig.from_args(args)
    except (OSError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    if args.resume and not cfg.robustness.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir (or a config file "
              "with robustness.checkpoint_dir set)", file=sys.stderr)
        return 2
    with _metrics_session(args.metrics_file, "lung") as worker_docs:
        return _lung_run(args, cfg, worker_docs)


def _lung_run(args, cfg, worker_docs=None) -> int:
    import os

    from .lung import LungVentilationSimulation
    from .robustness import CheckpointManager, StepFailure
    from .telemetry import (
        METRICS,
        TRACER,
        RunLogWriter,
        aggregate_steps,
        render_breakdown,
        render_counters,
        render_span_tree,
    )

    def harvest_worker_metrics():
        # fold the workers' registries into the session export; tolerate
        # a pool that already died (the master's own series still export)
        if dist_ctx is None or worker_docs is None or not METRICS.enabled:
            return
        try:
            worker_docs.append(dist_ctx.pool.collect_worker_metrics())
        except (OSError, RuntimeError):
            pass

    sim = LungVentilationSimulation(cfg)
    manager = CheckpointManager.from_settings(cfg.robustness)
    if args.resume:
        try:
            resumed_from = manager.resume(sim, target=args.resume)
        except (FileNotFoundError, ValueError) as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        print(f"resumed from {resumed_from} (t={sim.time:.6f}s)")
    n_dofs = sim.solver.dof_u.n_dofs + sim.solver.dof_p.n_dofs
    print(f"lung g={cfg.generations}: {sim.lung.forest.n_cells} cells, "
          f"{sim.lung.n_outlets} outlets, {n_dofs} DoF")
    writer = None
    if args.log_file:
        writer = RunLogWriter(args.log_file, meta={
            "command": "lung",
            "generations": cfg.generations,
            "degree": cfg.degree,
            "seed": cfg.seed,
            "n_cells": sim.lung.forest.n_cells,
            "n_dofs": n_dofs,
            "steps": args.steps,
        })
    dist_ctx = sim.solver.distributed_context
    if dist_ctx is not None and METRICS.enabled:
        # workers fork with metrics disabled; switch their registries on
        # so the session export can fold the worker-side series in
        dist_ctx.pool.enable_worker_metrics()
    stats = []
    for i in range(args.steps):
        try:
            st = sim.step()
        except StepFailure as e:
            print(f"error: {e}", file=sys.stderr)
            if manager is not None:
                path = manager.save(sim)
                print(f"pre-failure state checkpointed to {path}",
                      file=sys.stderr)
            if writer is not None:
                writer.write_summary(TRACER if args.trace else None)
                writer.close()
            harvest_worker_metrics()
            sim.close()
            return 1
        stats.append(st)
        if writer is not None:
            extra = {
                "inflow_m3_s": sim._inlet_flow,
                "tidal_volume_ml": sim.tidal_volume_delivered() * 1e6,
                "recovery_events": len(sim.recovery_log),
            }
            if dist_ctx is not None:
                # cumulative per-rank phase seconds; repro monitor
                # renders the per-worker breakdown from the last record
                extra["worker_phases"] = dist_ctx.worker_phase_totals()
            writer.write_step(st, extra=extra)
        if manager is not None:
            manager.maybe_save(sim)
        if args.crash_after_step is not None and i + 1 >= args.crash_after_step:
            # deterministic crash injection for kill/resume testing: exit
            # without any cleanup, as a kill -9 would
            print(f"simulated crash after step {i + 1}")
            sys.stdout.flush()
            sys.stderr.flush()
            os._exit(137)
        if (i + 1) % max(1, args.steps // 5) == 0:
            print(f"  step {i + 1:4d}: t={sim.time:.5f}s dt={st.dt:.2e} "
                  f"inflow={sim._inlet_flow * 1e3:.3f} l/s "
                  f"V={sim.tidal_volume_delivered() * 1e6:.2f} ml")
    if sim.recovery_log:
        retries = sum(1 for e in sim.recovery_log if e.kind == "step_retry")
        print(f"recovery: {retries} step retries "
              f"({len(sim.recovery_log)} events total)")
    trace_path = getattr(args, "trace_timeline", None)
    timeline_analysis = None
    if trace_path:
        if dist_ctx is None:
            print("warning: --trace-timeline needs --workers >= 2; "
                  "no trace recorded", file=sys.stderr)
        else:
            timeline_analysis = _write_timeline_trace(dist_ctx, trace_path)
    if writer is not None:
        summary_extra = (
            {"timeline": timeline_analysis}
            if timeline_analysis is not None else None
        )
        writer.write_summary(TRACER if args.trace else None,
                             extra=summary_extra)
        writer.close()
        print(f"run log written to {writer.path}")
    if args.trace:
        print()
        print(render_breakdown(aggregate_steps(stats)))
        print()
        print("span profile:")
        print(render_span_tree(TRACER))
        counters = render_counters(TRACER)
        if counters:
            print(counters)
        TRACER.disable()
    if args.vtk:
        from .mesh.vtk import write_vtk

        path = write_vtk(args.vtk, sim.lung.forest)
        print(f"mesh written to {path}")
    harvest_worker_metrics()
    sim.close()
    return 0


def cmd_ensemble(args) -> int:
    from .robustness import RunConfig
    from .telemetry import TRACER

    if args.trace:
        TRACER.reset()
        TRACER.enable()
    try:
        cfg = RunConfig.from_args(args)
    except (OSError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    with _metrics_session(args.metrics_file, "ensemble"):
        return _ensemble_run(args, cfg)


def _member_configs(args, base):
    """Expand the per-member sweep flags into one RunConfig per member.

    Each comma-separated list must have length 1 (shared by all
    members) or exactly the ensemble size; ``--members`` defaults to
    the longest list."""
    import dataclasses

    flags = {
        "windkessel_resistance_scale": "--resistance-scales",
        "windkessel_compliance_scale": "--compliance-scales",
        "dp_initial": "--dp-initials",
    }
    sweeps: dict[str, list[float]] = {}
    if args.resistance_scales:
        sweeps["windkessel_resistance_scale"] = args.resistance_scales
    if args.compliance_scales:
        sweeps["windkessel_compliance_scale"] = args.compliance_scales
    if args.dp_initials:
        sweeps["dp_initial"] = args.dp_initials
    n_members = args.members or max(
        (len(v) for v in sweeps.values()), default=1
    )
    for name, values in sweeps.items():
        if len(values) not in (1, n_members):
            raise ValueError(
                f"{flags[name]} has {len(values)} values for "
                f"{n_members} members (need 1 or {n_members})"
            )
    configs = []
    for e in range(n_members):
        pick = {k: (v[0] if len(v) == 1 else v[e]) for k, v in sweeps.items()}
        vent = base.ventilation
        if "dp_initial" in pick:
            vent = dataclasses.replace(vent, dp_initial=pick.pop("dp_initial"))
        configs.append(dataclasses.replace(base, ventilation=vent, **pick))
    return configs


def _ensemble_run(args, cfg) -> int:
    from .lung import EnsembleLungSimulation
    from .robustness import StepFailure
    from .telemetry import (
        TRACER,
        RunLogWriter,
        aggregate_steps,
        render_breakdown,
        render_span_tree,
    )

    try:
        configs = _member_configs(args, cfg)
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    sim = EnsembleLungSimulation(configs)
    n_dofs = sim.solver.dof_u.n_dofs + sim.solver.dof_p.n_dofs
    print(f"ensemble lung g={cfg.generations}: {sim.n_members} members, "
          f"{sim.lung.forest.n_cells} cells, {sim.lung.n_outlets} outlets, "
          f"{n_dofs} DoF per member ({sim.n_members * n_dofs} total)")
    writer = None
    if args.log_file:
        writer = RunLogWriter(args.log_file, meta={
            "command": "ensemble",
            "members": sim.n_members,
            "generations": cfg.generations,
            "degree": cfg.degree,
            "seed": cfg.seed,
            "n_cells": sim.lung.forest.n_cells,
            "n_dofs": n_dofs,
            "steps": args.steps,
        })
    stats = []
    for i in range(args.steps):
        try:
            st = sim.step()
        except StepFailure as e:
            print(f"error: {e}", file=sys.stderr)
            if writer is not None:
                writer.write_summary(TRACER if args.trace else None)
                writer.close()
            return 1
        stats.append(st)
        if writer is not None:
            writer.write_step(st, extra={
                "member_cfl": st.member_cfl,
                "member_pressure_iterations": st.member_pressure_iterations,
                "inflow_m3_s": [float(q) for q in sim._inlet_flow],
                "tidal_volume_ml":
                    [v * 1e6 for v in sim.tidal_volume_delivered()],
            })
        if (i + 1) % max(1, args.steps // 5) == 0:
            tv = sim.tidal_volume_delivered() * 1e6
            print(f"  step {i + 1:4d}: t={sim.time:.5f}s dt={st.dt:.2e} "
                  f"V=[{', '.join(f'{v:.2f}' for v in tv)}] ml")
    print()
    print(f"{'member':>7} {'R-scale':>8} {'C-scale':>8} {'dp [Pa]':>9} "
          f"{'V [ml]':>9}")
    for rec in sim.member_records():
        c = rec.config
        print(f"{rec.member:>7} {c.windkessel_resistance_scale:>8.3f} "
              f"{c.windkessel_compliance_scale:>8.3f} {rec.dp:>9.1f} "
              f"{rec.tidal_volume * 1e6:>9.3f}")
    if writer is not None:
        writer.write_summary(TRACER if args.trace else None)
        writer.close()
        print(f"run log written to {writer.path}")
    if args.trace:
        print()
        print(render_breakdown(aggregate_steps(stats)))
        print()
        print("span profile:")
        print(render_span_tree(TRACER))
        TRACER.disable()
    return 0


def cmd_report(args) -> int:
    from .perf.attribution import MACHINES, render_roofline
    from .telemetry import (
        aggregate_steps,
        read_run_log,
        render_breakdown,
        render_robustness,
    )

    if args.html:
        from .telemetry import write_html_dashboard

        output = args.output or str(args.run_log) + ".html"
        try:
            path = write_html_dashboard(
                args.run_log, output, metrics_paths=args.metrics or ()
            )
        except (OSError, ValueError) as e:
            print(f"error: {e}", file=sys.stderr)
            return 1
        print(f"dashboard written to {path}")
        return 0

    try:
        header, steps, summary = read_run_log(args.run_log)
    except (OSError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    meta = ", ".join(
        f"{k}={v}" for k, v in header.items() if k not in ("type", "schema")
    )
    print(f"run log: {args.run_log}" + (f" ({meta})" if meta else ""))
    if not steps:
        print("no step records (empty or truncated run)")
        return 1
    print()
    print(render_breakdown(aggregate_steps(steps)))
    if summary is not None:
        if summary.get("timeline"):
            from .telemetry import render_timeline

            print()
            print(render_timeline(summary["timeline"]))
        robustness = render_robustness(summary.get("counters") or {})
        if robustness:
            print()
            print(robustness)
        if summary.get("spans"):
            roofline = render_roofline(
                summary, machine=MACHINES[args.machine]
            )
            if "(no annotated spans" not in roofline:
                print()
                print(roofline)
        if summary.get("counters"):
            print()
            print("counters:")
            for name in sorted(summary["counters"]):
                print(f"  {name:<42s} {summary['counters'][name]:>12d}")
    return 0


def cmd_trace(args) -> int:
    """Analyze a Chrome trace written by ``--trace-timeline``: recompute
    the per-round overlap-efficiency / imbalance / critical-path numbers
    from the event stream (bit-exact — the slices carry full-precision
    timestamps in their ``args``)."""
    from .perf.attribution import MACHINES, render_exchange
    from .telemetry import analyze_timeline, load_chrome_trace, render_timeline

    try:
        events, meta = load_chrome_trace(args.trace_file)
    except (OSError, ValueError, KeyError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    if not events:
        print("error: trace contains no timeline events", file=sys.stderr)
        return 1
    analysis = analyze_timeline(
        events,
        rank_bytes=meta.get("rank_exchange_bytes"),
        dropped_events=int(meta.get("dropped_events", 0)),
    )
    if args.json:
        print(json.dumps(analysis))
        return 0
    print(f"trace: {args.trace_file}")
    if meta.get("clock_rtts_s"):
        tol = max(meta["clock_rtts_s"].values()) / 2.0
        print(f"clock-offset tolerance: {tol * 1e6:.1f} us "
              f"(half the worst handshake round-trip)")
    print(render_timeline(analysis))
    exchange = render_exchange(analysis, MACHINES[args.machine])
    if exchange:
        print()
        print(exchange)
    return 0


def cmd_roofline(args) -> int:
    """Run instrumented workloads and report achieved rates against the
    analytic roofline work models (Figure 7 at reproduction scale)."""
    from .perf.attribution import MACHINES, render_roofline, roofline_doc
    from .telemetry import TRACER, read_run_log

    machine = MACHINES[args.machine]
    meta: dict = {"command": "roofline", "machine": args.machine}

    if args.from_log:
        try:
            _, _, summary = read_run_log(args.from_log)
        except (OSError, ValueError) as e:
            print(f"error: {e}", file=sys.stderr)
            return 1
        if summary is None or not summary.get("spans"):
            print(f"error: {args.from_log} has no traced summary record "
                  "(rerun with --trace --log-file)", file=sys.stderr)
            return 1
        source: object = summary
        meta["from_log"] = str(args.from_log)
    else:
        from .core.dof_handler import DGDofHandler
        from .core.operators import DGLaplaceOperator
        from .lung import LungVentilationSimulation
        from .mesh import Forest, GeometryField, box, build_connectivity
        from .robustness import RunConfig

        from .solvers.multigrid import operator_to_dtype

        TRACER.reset()
        TRACER.enable()
        try:
            # workload 1: the Figure 6-8 kernel — DG Laplace vmult,
            # cast to the requested compute dtype (fp32 halves the
            # streamed bytes, roughly doubling arithmetic intensity)
            mesh = box(subdivisions=(2, 1, 1), boundary_ids={0: 1})
            forest = Forest(mesh).refine_all(args.refinements)
            geo = GeometryField(forest, args.degree)
            conn = build_connectivity(forest)
            dof = DGDofHandler(forest, args.degree)
            op = operator_to_dtype(
                DGLaplaceOperator(dof, geo, conn, dirichlet_ids=(1,)),
                args.dtype,
            )
            x = np.random.default_rng(0).standard_normal(op.n_dofs)
            x = x.astype(args.dtype)
            op.vmult(x)  # warm-up: plan construction outside the timing
            for _ in range(args.repetitions):
                op.vmult(x)
            # workload 2: one full coupled lung time step
            sim = LungVentilationSimulation(
                RunConfig(generations=args.generations, degree=2, seed=0,
                          compute_dtype=args.dtype)
            )
            for _ in range(args.steps):
                sim.step()
            source = TRACER
            meta.update({
                "dtype": args.dtype,
                "laplace": {"n_dofs": op.n_dofs, "degree": args.degree,
                            "repetitions": args.repetitions},
                "lung": {"generations": args.generations,
                         "steps": args.steps},
            })
        finally:
            TRACER.disable()

    if args.json:
        doc = roofline_doc(source, machine=machine, meta=meta)
        if args.output:
            with open(args.output, "w") as f:
                json.dump(doc, f, indent=2)
                f.write("\n")
            print(f"roofline report written to {args.output}")
        else:
            print(json.dumps(doc))
    else:
        print(render_roofline(source, machine=machine))
    return 0


def cmd_bench(args) -> int:
    with _metrics_session(args.metrics_file, "bench"):
        return _bench_run(args)


def _bench_run(args) -> int:
    """Run a declared benchmark suite; optionally gate against a
    baseline document."""
    from .perf.bench import (
        SUITES,
        compare_bench,
        load_bench,
        render_bench,
        render_compare,
        run_suite,
    )

    if args.list_suites:
        for name in sorted(SUITES):
            print(name)
        return 0

    if args.input:
        try:
            doc = load_bench(args.input)
        except (OSError, ValueError) as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
    else:
        try:
            doc = run_suite(args.suite, smoke=args.smoke, degree=args.degree,
                            case_filter=args.cases, dtype=args.dtype)
        except ValueError as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        output = args.output or f"BENCH_{args.suite}.json"
        with open(output, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(render_bench(doc))
        print(f"benchmark document written to {output}")

    if not args.compare:
        return 0
    try:
        baseline = load_bench(args.compare)
    except (OSError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    report = compare_bench(doc, baseline, max_regression=args.max_regression)
    print()
    print(render_compare(report))
    if not report["ok"]:
        if args.warn_only:
            print("warning: throughput regressions detected "
                  "(--warn-only: not failing)")
            return 0
        return 1
    return 0


def cmd_monitor(args) -> int:
    from .telemetry import monitor_file

    return monitor_file(args.run_log, follow=args.follow,
                        interval=args.interval)


def cmd_metrics(args) -> int:
    """Render, aggregate, or re-export metric snapshot files."""
    from .telemetry.metrics import (
        doc_to_prometheus,
        load_metrics,
        merge_snapshots,
        render_metrics_table,
    )

    try:
        docs = [load_metrics(p) for p in args.files]
    except (OSError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    try:
        doc = docs[0] if len(docs) == 1 else merge_snapshots(docs)
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1

    if args.action == "render":
        print(render_metrics_table(doc))
        return 0
    if args.action == "aggregate":
        # always a full merge, so one worker's file normalizes the same
        # way as many (meta records the worker count)
        doc = merge_snapshots(docs)
        text = json.dumps(doc, indent=2, allow_nan=True) + "\n"
    else:  # export: Prometheus textfile
        text = doc_to_prometheus(doc)
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
        print(f"metrics written to {args.output}")
    else:
        print(text, end="")
    return 0


def _parse_int_list(text: str) -> tuple[int, ...]:
    try:
        values = tuple(int(v) for v in text.split(",") if v.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a comma-separated int list: {text!r}")
    if not values:
        raise argparse.ArgumentTypeError("empty list")
    return values


def cmd_verify(args) -> int:
    with _metrics_session(args.metrics_file, "verify"):
        return _verify_run(args)


def _verify_run(args) -> int:
    from .verification import (
        beltrami_temporal_gate,
        compare_golden,
        compute_golden_metrics,
        load_golden,
        ns_temporal_ladder,
        poisson_spatial_ladder,
        rate_table_doc,
        render_rate_table,
        womersley_temporal_ladder,
        write_golden,
        write_rate_log,
    )

    # --- golden-snapshot mode -------------------------------------------
    if args.golden:
        if args.update_golden:
            metrics = compute_golden_metrics()
            path = write_golden(args.golden, metrics)
            print(f"golden snapshot written to {path}")
            return 0
        try:
            golden = load_golden(args.golden)
        except (OSError, ValueError) as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        mismatches = compare_golden(compute_golden_metrics(), golden)
        if mismatches:
            print(f"golden regression FAILED ({len(mismatches)} mismatches):")
            for m in mismatches:
                print(f"  - {m}")
            return 1
        print("golden regression passed")
        return 0

    # --- rate-ladder mode -----------------------------------------------
    studies = []
    if args.ladder in ("spatial", "all"):
        for degree in args.degrees:
            studies.append(
                poisson_spatial_ladder(degree=degree, levels=args.levels)
            )
    step_kw = {"steps": args.steps} if args.steps else {}
    if args.ladder in ("temporal", "all"):
        if args.nu is None:
            # the calibrated gate configuration (see TESTING.md)
            studies.append(beltrami_temporal_gate(**step_kw))
        else:
            from .ns.analytic import BeltramiFlow

            studies.append(
                ns_temporal_ladder(BeltramiFlow(nu=args.nu), nu=args.nu,
                                   **step_kw)
            )
    if args.ladder in ("womersley", "all"):
        studies.append(womersley_temporal_ladder(**step_kw))

    doc = rate_table_doc(studies, tolerance=args.rate_tolerance,
                         meta={"command": "verify", "ladder": args.ladder})
    table = render_rate_table(studies, tolerance=args.rate_tolerance)
    if args.json:
        print(json.dumps(doc))
    else:
        print(table)
    if args.markdown:
        with open(args.markdown, "w") as f:
            f.write(table + "\n")
        print(f"markdown rate table written to {args.markdown}")
    if args.log_file:
        write_rate_log(args.log_file, studies,
                       tolerance=args.rate_tolerance,
                       meta={"command": "verify", "ladder": args.ladder})
        print(f"rate log written to {args.log_file}")
    return 0 if doc["all_passed"] else 1


def cmd_mesh(args) -> int:
    from .lung import airway_tree_mesh, grow_airway_tree
    from .mesh import build_connectivity
    from .mesh.vtk import write_vtk

    tree = grow_airway_tree(args.generations, seed=args.seed)
    lm = airway_tree_mesh(tree, refine_upper_generations=args.refine_upper)
    conn = build_connectivity(lm.forest)
    print(f"airway tree: {tree.n_airways} airways, "
          f"{len(tree.terminal_airways())} terminals")
    print(f"mesh: {lm.forest.n_cells} cells, "
          f"{conn.n_interior_faces} interior faces "
          f"({conn.n_hanging_faces} hanging), "
          f"{conn.n_boundary_faces} boundary faces")
    if args.vtk:
        path = write_vtk(args.vtk, lm.forest)
        print(f"written to {path}")
    return 0


def cmd_scaling(args) -> int:
    from .parallel import MatvecScalingModel

    model = MatvecScalingModel(degree=args.degree)
    print(f"strong scaling of the k={args.degree} mat-vec, "
          f"{args.dofs:.2e} DoF (SuperMUC-NG model):")
    print(f"{'nodes':>7} {'time [s]':>11} {'GDoF/s':>9}")
    for p, t, tp in model.strong_scaling(args.dofs, [2**i for i in range(0, 13)]):
        print(f"{p:>7} {t:>11.3e} {tp / 1e9:>9.2f}")
    return 0


def cmd_calibrate(args) -> int:
    from .perf import calibrate_local_machine

    m = calibrate_local_machine(degree=args.degree)
    if args.json:
        print(json.dumps({
            "command": "calibrate",
            "degree": args.degree,
            "machine": m.name,
            "matvec_dofs_per_s_k3": m.matvec_dofs_per_s_k3,
        }))
    else:
        print(f"local machine anchor: {m.matvec_dofs_per_s_k3:.3e} DoF/s "
              f"(k={args.degree} DG Laplacian mat-vec, best of 5)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Matrix-free high-order DG flow solver (SC'21 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("poisson", help="hybrid-multigrid Poisson solve")
    p.add_argument("--degree", type=int, default=3)
    p.add_argument("--refinements", type=int, default=2)
    p.add_argument("--tolerance", type=float, default=1e-10)
    p.add_argument("--workers", type=int, default=0,
                   help="run the CG mat-vec on a shared-memory worker pool "
                        "(>= 2; 0 = serial). fp64 results are bitwise "
                        "identical to the serial solve")
    p.add_argument("--trace-timeline", type=str, default=None, metavar="FILE",
                   help="with --workers: record per-rank timeline events "
                        "and write a Chrome trace-event JSON here "
                        "(Perfetto / chrome://tracing)")
    p.add_argument("--json", action="store_true",
                   help="emit one machine-readable JSON object instead of text")
    p.set_defaults(fn=cmd_poisson)

    p = sub.add_parser("lung", help="coupled ventilated-lung simulation")
    p.add_argument("--config", type=str, default=None,
                   help="JSON RunConfig file providing the run description; "
                        "explicit flags override it")
    p.add_argument("--generations", type=int, default=None,
                   help="airway-tree generations (default 1)")
    p.add_argument("--degree", type=int, default=None,
                   help="polynomial degree (default 2)")
    p.add_argument("--steps", type=int, default=10)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--tolerance", type=float, default=None,
                   help="relative solver tolerance (default 1e-3)")
    p.add_argument("--compute-dtype", choices=("float64", "float32"),
                   default=None,
                   help="forward-solve precision (default float64; the "
                        "pressure outer CG and checkpoints stay double)")
    p.add_argument("--workers", type=int, default=None,
                   help="shared-memory worker processes for the pressure "
                        "mat-vec (>= 2; default serial). fp64 steps are "
                        "bitwise identical to the serial run")
    p.add_argument("--vtk", type=str, default=None)
    p.add_argument("--trace", action="store_true",
                   help="enable the telemetry tracer and print the "
                        "per-sub-step wall-time breakdown and span profile")
    p.add_argument("--trace-timeline", type=str, default=None, metavar="FILE",
                   help="with --workers: record per-rank worker timeline "
                        "events and write a Chrome trace-event JSON here "
                        "(analyze with 'repro trace'; the run-log summary "
                        "gains a 'Distributed timeline' section)")
    p.add_argument("--log-file", type=str, default=None,
                   help="write a schema-versioned JSONL run log "
                        "(one record per time step)")
    p.add_argument("--checkpoint-dir", type=str, default=None,
                   help="directory for rotated auto-checkpoints")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   help="checkpoint every N steps (with --checkpoint-dir)")
    p.add_argument("--checkpoint-every-seconds", type=float, default=None,
                   help="checkpoint every T simulated seconds")
    p.add_argument("--checkpoint-keep", type=int, default=None,
                   help="number of rotated checkpoints to retain (default 3)")
    p.add_argument("--resume", type=str, default=None, metavar="latest|PATH",
                   help="resume from a checkpoint before stepping "
                        "('latest' or an explicit file)")
    p.add_argument("--max-step-retries", type=int, default=None,
                   help="divergence-recovery retry budget per step (default 3)")
    p.add_argument("--crash-after-step", type=int, default=None,
                   help=argparse.SUPPRESS)
    p.add_argument("--metrics-file", type=str, default=None,
                   help="enable the solver-health metric registry and "
                        "export it here (.prom for the Prometheus "
                        "textfile, anything else for JSON)")
    p.set_defaults(fn=cmd_lung)

    p = sub.add_parser(
        "ensemble",
        help="batched ensemble of ventilated-lung runs (one solver setup, "
             "N parameter sets advanced together on the ensemble axis)",
    )
    p.add_argument("--config", type=str, default=None,
                   help="JSON RunConfig file for the shared base run; "
                        "explicit flags override it")
    p.add_argument("--members", type=int, default=None,
                   help="ensemble size (default: longest sweep list, or 1)")
    p.add_argument("--resistance-scales", type=_float_list, default=None,
                   metavar="S0,S1,...",
                   help="per-member windkessel resistance scales "
                        "(1 value = shared, else one per member)")
    p.add_argument("--compliance-scales", type=_float_list, default=None,
                   metavar="S0,S1,...",
                   help="per-member windkessel compliance scales")
    p.add_argument("--dp-initials", type=_float_list, default=None,
                   metavar="P0,P1,...",
                   help="per-member initial ventilator driving pressures [Pa]")
    p.add_argument("--generations", type=int, default=None,
                   help="airway-tree generations (default 1)")
    p.add_argument("--degree", type=int, default=None,
                   help="polynomial degree (default 2)")
    p.add_argument("--steps", type=int, default=10)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--tolerance", type=float, default=None,
                   help="relative solver tolerance (default 1e-3)")
    p.add_argument("--compute-dtype", choices=("float64", "float32"),
                   default=None,
                   help="forward-solve precision (default float64)")
    p.add_argument("--trace", action="store_true",
                   help="enable the telemetry tracer and print the "
                        "per-sub-step wall-time breakdown and span profile")
    p.add_argument("--log-file", type=str, default=None,
                   help="write a schema-versioned JSONL run log with "
                        "per-member extras")
    p.add_argument("--metrics-file", type=str, default=None,
                   help="enable the solver-health metric registry "
                        "(member-labelled ensemble gauges) and export here")
    p.set_defaults(fn=cmd_ensemble)

    p = sub.add_parser("report", help="aggregate a JSONL run log")
    p.add_argument("run_log", type=str,
                   help="path to a run log written with --log-file")
    p.add_argument("--machine", choices=sorted(_MACHINE_NAMES),
                   default="local",
                   help="machine model for the roofline section "
                        "(default: local)")
    p.add_argument("--html", action="store_true",
                   help="render a self-contained HTML dashboard instead "
                        "of the text report")
    p.add_argument("--output", type=str, default=None,
                   help="with --html: dashboard path "
                        "(default: <run_log>.html)")
    p.add_argument("--metrics", type=str, nargs="*", default=None,
                   help="with --html: metric snapshot file(s) for the "
                        "catalog section (merged when several)")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser(
        "trace",
        help="analyze a --trace-timeline Chrome trace: per-round overlap "
             "efficiency, load imbalance, critical path, and per-rank "
             "exchange bandwidth",
    )
    p.add_argument("trace_file", type=str,
                   help="Chrome trace-event JSON written by --trace-timeline")
    p.add_argument("--machine", choices=sorted(_MACHINE_NAMES),
                   default="local",
                   help="machine model for the exchange-bandwidth rows "
                        "(default: local)")
    p.add_argument("--json", action="store_true",
                   help="emit the repro/timeline/1 analysis document "
                        "instead of text")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "roofline",
        help="achieved GFlop/s, GB/s, and %%-of-model per instrumented "
             "kernel (runs a DG Laplace vmult and a lung step, or reads "
             "a traced run log)",
    )
    p.add_argument("--json", action="store_true",
                   help="emit the schema-versioned JSON document")
    p.add_argument("--output", type=str, default=None,
                   help="with --json: write the document here instead of "
                        "stdout")
    p.add_argument("--machine", choices=sorted(_MACHINE_NAMES),
                   default="local",
                   help="roofline machine model (default: local)")
    p.add_argument("--from-log", type=str, default=None,
                   help="attribute the summary spans of an existing "
                        "traced run log instead of running workloads")
    p.add_argument("--degree", type=int, default=3,
                   help="polynomial degree of the Laplace workload")
    p.add_argument("--refinements", type=int, default=1,
                   help="box refinements of the Laplace workload")
    p.add_argument("--repetitions", type=int, default=5,
                   help="timed vmult applications")
    p.add_argument("--generations", type=int, default=1,
                   help="airway generations of the lung workload")
    p.add_argument("--steps", type=int, default=1,
                   help="lung time steps to trace")
    p.add_argument("--dtype", choices=("float64", "float32"),
                   default="float64",
                   help="compute precision of the measured workloads "
                        "(default: float64)")
    p.set_defaults(fn=cmd_roofline)

    p = sub.add_parser(
        "bench",
        help="run a declared benchmark suite and optionally gate "
             "against a baseline document",
    )
    p.add_argument("--suite", type=str, default="ops",
                   help="suite to run (see --list-suites; default: ops)")
    p.add_argument("--smoke", action="store_true",
                   help="tiny meshes / few repetitions (CI validity check)")
    p.add_argument("--degree", type=int, default=3)
    p.add_argument("--dtype", choices=("float64", "float32"),
                   default="float64",
                   help="compute precision of the measured kernels; "
                        "float32 cases get an @float32 name suffix so "
                        "both precisions coexist in one baseline "
                        "(default: float64)")
    p.add_argument("--output", type=str, default=None,
                   help="output path (default: BENCH_<suite>.json)")
    p.add_argument("--cases", type=str, default=None,
                   help="only run cases whose name contains this substring")
    p.add_argument("--input", type=str, default=None,
                   help="compare an existing benchmark document instead "
                        "of running the suite")
    p.add_argument("--compare", type=str, default=None,
                   help="baseline benchmark JSON to gate against")
    p.add_argument("--max-regression", type=float, default=0.15,
                   help="allowed fractional throughput drop (default 0.15)")
    p.add_argument("--warn-only", action="store_true",
                   help="report regressions but exit 0 (shared runners)")
    p.add_argument("--list-suites", action="store_true",
                   help="print the declared suite names and exit")
    p.add_argument("--metrics-file", type=str, default=None,
                   help="enable the solver-health metric registry and "
                        "export it here")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "metrics",
        help="render, aggregate, or re-export metric snapshot files",
    )
    p.add_argument("action", choices=("render", "aggregate", "export"),
                   help="render a summary table, aggregate per-worker "
                        "snapshots into one JSON document, or export "
                        "the Prometheus textfile")
    p.add_argument("files", nargs="+",
                   help="metric snapshot file(s) written with "
                        "--metrics-file (merged when several)")
    p.add_argument("--output", type=str, default=None,
                   help="write the result here instead of stdout")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser(
        "monitor",
        help="summarize an in-flight run from its JSONL run log "
             "(step rate, ETA, CFL, iterations, recovery activity)",
    )
    p.add_argument("run_log", type=str,
                   help="path to a run log written with --log-file")
    p.add_argument("--follow", action="store_true",
                   help="poll until the summary footer appears")
    p.add_argument("--interval", type=float, default=2.0,
                   help="polling interval in seconds (with --follow)")
    p.set_defaults(fn=cmd_monitor)

    p = sub.add_parser(
        "verify",
        help="convergence-rate gates and golden regression snapshots",
    )
    p.add_argument("--ladder", choices=("spatial", "temporal", "womersley", "all"),
                   default="spatial",
                   help="which refinement ladder(s) to run (default: spatial)")
    p.add_argument("--degrees", type=_parse_int_list, default=(2,),
                   help="comma-separated polynomial degrees for the spatial "
                        "ladder (default: 2)")
    p.add_argument("--levels", type=_parse_int_list, default=(1, 2, 3),
                   help="comma-separated refinement levels for the spatial "
                        "ladder (default: 1,2,3)")
    p.add_argument("--steps", type=_parse_int_list, default=None,
                   help="comma-separated step counts for the temporal ladders "
                        "(default: the ladder's own)")
    p.add_argument("--nu", type=float, default=None,
                   help="viscosity for a custom temporal Beltrami ladder "
                        "(default: the calibrated gate configuration)")
    p.add_argument("--rate-tolerance", type=float, default=0.4,
                   help="allowed deficit of fitted vs expected rate")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable rate-table document")
    p.add_argument("--markdown", type=str, default=None,
                   help="also write the Markdown rate table to this file")
    p.add_argument("--log-file", type=str, default=None,
                   help="write a schema-versioned JSONL rate log")
    p.add_argument("--golden", type=str, default=None,
                   help="compare small-case metrics against this golden "
                        "snapshot instead of running ladders")
    p.add_argument("--update-golden", action="store_true",
                   help="with --golden: regenerate the snapshot file")
    p.add_argument("--metrics-file", type=str, default=None,
                   help="enable the solver-health metric registry and "
                        "export it here")
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser("mesh", help="generate an airway mesh")
    p.add_argument("--generations", type=int, default=3)
    p.add_argument("--refine-upper", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--vtk", type=str, default=None)
    p.set_defaults(fn=cmd_mesh)

    p = sub.add_parser("scaling", help="evaluate the scaling model")
    p.add_argument("--degree", type=int, default=3)
    p.add_argument("--dofs", type=float, default=179e6)
    p.set_defaults(fn=cmd_scaling)

    p = sub.add_parser("calibrate", help="measure this machine's throughput")
    p.add_argument("--degree", type=int, default=3)
    p.add_argument("--json", action="store_true",
                   help="emit one machine-readable JSON object instead of text")
    p.set_defaults(fn=cmd_calibrate)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout piped into a pager/head that exited early: not an error,
        # but suppress the flush-on-exit traceback too
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
