"""Command-line interface: ``python -m repro <command>``.

Small drivers over the library for the workflows a user reaches for
first — a Poisson solve with the hybrid multigrid, the analytic
Navier-Stokes validation, a ventilated-lung run, the scaling model, and
airway-mesh generation with VTK export.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np


def cmd_poisson(args) -> int:
    from .core.dof_handler import DGDofHandler
    from .core.operators import DGLaplaceOperator
    from .mesh import Forest, GeometryField, box, build_connectivity
    from .solvers import HybridMultigridPreconditioner, conjugate_gradient

    mesh = box(subdivisions=(1, 1, 1), boundary_ids={i: 1 for i in range(6)})
    forest = Forest(mesh).refine_all(args.refinements)
    geo = GeometryField(forest, args.degree)
    conn = build_connectivity(forest)
    dof = DGDofHandler(forest, args.degree)
    op = DGLaplaceOperator(dof, geo, conn, dirichlet_ids=(1,))
    if not args.json:
        print(f"Poisson: {forest.n_cells} cells, {dof.n_dofs} DoF, k={args.degree}")
    mg = HybridMultigridPreconditioner(op)
    if not args.json:
        print(mg.describe())
    b = op.assemble_rhs(f=lambda x, y, z: np.ones_like(x),
                        dirichlet=lambda x, y, z: 0.0 * x)
    res = conjugate_gradient(op, b, mg, tol=args.tolerance, name="poisson")
    if args.json:
        from .perf.measure import measure_operator

        perf = measure_operator(op, name="dg_laplace_vmult", repetitions=5)
        print(json.dumps({
            "command": "poisson",
            "n_cells": forest.n_cells,
            "n_dofs": dof.n_dofs,
            "degree": args.degree,
            "tolerance": args.tolerance,
            "converged": res.converged,
            "n_iterations": res.n_iterations,
            "reduction_rate": res.reduction_rate,
            "residuals": res.residuals,
            "vmult_best_seconds": perf.best_seconds,
            "vmult_dofs_per_second": perf.dofs_per_second,
            "vmult_alloc_peak_bytes": perf.alloc_peak_bytes,
            "vmult_alloc_net_blocks": perf.alloc_net_blocks,
        }))
    else:
        print(f"converged: {res.converged} in {res.n_iterations} iterations "
              f"(reduction rate {res.reduction_rate:.3f})")
    return 0 if res.converged else 1


def cmd_lung(args) -> int:
    from .lung import LungVentilationSimulation
    from .ns.solver import SolverSettings
    from .telemetry import (
        TRACER,
        RunLogWriter,
        aggregate_steps,
        render_breakdown,
        render_counters,
        render_span_tree,
    )

    if args.trace:
        TRACER.reset()
        TRACER.enable()
    sim = LungVentilationSimulation(
        generations=args.generations,
        degree=args.degree,
        solver_settings=SolverSettings(solver_tolerance=1e-3),
        seed=args.seed,
    )
    n_dofs = sim.solver.dof_u.n_dofs + sim.solver.dof_p.n_dofs
    print(f"lung g={args.generations}: {sim.lung.forest.n_cells} cells, "
          f"{sim.lung.n_outlets} outlets, {n_dofs} DoF")
    writer = None
    if args.log_file:
        writer = RunLogWriter(args.log_file, meta={
            "command": "lung",
            "generations": args.generations,
            "degree": args.degree,
            "seed": args.seed,
            "n_cells": sim.lung.forest.n_cells,
            "n_dofs": n_dofs,
        })
    stats = []
    for i in range(args.steps):
        st = sim.step()
        stats.append(st)
        if writer is not None:
            writer.write_step(st, extra={
                "inflow_m3_s": sim._inlet_flow,
                "tidal_volume_ml": sim.tidal_volume_delivered() * 1e6,
            })
        if (i + 1) % max(1, args.steps // 5) == 0:
            print(f"  step {i + 1:4d}: t={sim.time:.5f}s dt={st.dt:.2e} "
                  f"inflow={sim._inlet_flow * 1e3:.3f} l/s "
                  f"V={sim.tidal_volume_delivered() * 1e6:.2f} ml")
    if writer is not None:
        writer.write_summary(TRACER if args.trace else None)
        writer.close()
        print(f"run log written to {writer.path}")
    if args.trace:
        print()
        print(render_breakdown(aggregate_steps(stats)))
        print()
        print("span profile:")
        print(render_span_tree(TRACER))
        counters = render_counters(TRACER)
        if counters:
            print(counters)
        TRACER.disable()
    if args.vtk:
        from .mesh.vtk import write_vtk

        path = write_vtk(args.vtk, sim.lung.forest)
        print(f"mesh written to {path}")
    return 0


def cmd_report(args) -> int:
    from .telemetry import aggregate_steps, read_run_log, render_breakdown

    try:
        header, steps, summary = read_run_log(args.run_log)
    except (OSError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    meta = ", ".join(
        f"{k}={v}" for k, v in header.items() if k not in ("type", "schema")
    )
    print(f"run log: {args.run_log}" + (f" ({meta})" if meta else ""))
    if not steps:
        print("no step records (empty or truncated run)")
        return 1
    print()
    print(render_breakdown(aggregate_steps(steps)))
    if summary is not None and summary.get("counters"):
        print()
        print("counters:")
        for name in sorted(summary["counters"]):
            print(f"  {name:<42s} {summary['counters'][name]:>12d}")
    return 0


def cmd_mesh(args) -> int:
    from .lung import airway_tree_mesh, grow_airway_tree
    from .mesh import build_connectivity
    from .mesh.vtk import write_vtk

    tree = grow_airway_tree(args.generations, seed=args.seed)
    lm = airway_tree_mesh(tree, refine_upper_generations=args.refine_upper)
    conn = build_connectivity(lm.forest)
    print(f"airway tree: {tree.n_airways} airways, "
          f"{len(tree.terminal_airways())} terminals")
    print(f"mesh: {lm.forest.n_cells} cells, "
          f"{conn.n_interior_faces} interior faces "
          f"({conn.n_hanging_faces} hanging), "
          f"{conn.n_boundary_faces} boundary faces")
    if args.vtk:
        path = write_vtk(args.vtk, lm.forest)
        print(f"written to {path}")
    return 0


def cmd_scaling(args) -> int:
    from .parallel import MatvecScalingModel

    model = MatvecScalingModel(degree=args.degree)
    print(f"strong scaling of the k={args.degree} mat-vec, "
          f"{args.dofs:.2e} DoF (SuperMUC-NG model):")
    print(f"{'nodes':>7} {'time [s]':>11} {'GDoF/s':>9}")
    for p, t, tp in model.strong_scaling(args.dofs, [2**i for i in range(0, 13)]):
        print(f"{p:>7} {t:>11.3e} {tp / 1e9:>9.2f}")
    return 0


def cmd_calibrate(args) -> int:
    from .perf import calibrate_local_machine

    m = calibrate_local_machine(degree=args.degree)
    if args.json:
        print(json.dumps({
            "command": "calibrate",
            "degree": args.degree,
            "machine": m.name,
            "matvec_dofs_per_s_k3": m.matvec_dofs_per_s_k3,
        }))
    else:
        print(f"local machine anchor: {m.matvec_dofs_per_s_k3:.3e} DoF/s "
              f"(k={args.degree} DG Laplacian mat-vec, best of 5)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Matrix-free high-order DG flow solver (SC'21 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("poisson", help="hybrid-multigrid Poisson solve")
    p.add_argument("--degree", type=int, default=3)
    p.add_argument("--refinements", type=int, default=2)
    p.add_argument("--tolerance", type=float, default=1e-10)
    p.add_argument("--json", action="store_true",
                   help="emit one machine-readable JSON object instead of text")
    p.set_defaults(fn=cmd_poisson)

    p = sub.add_parser("lung", help="coupled ventilated-lung simulation")
    p.add_argument("--generations", type=int, default=1)
    p.add_argument("--degree", type=int, default=2)
    p.add_argument("--steps", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--vtk", type=str, default=None)
    p.add_argument("--trace", action="store_true",
                   help="enable the telemetry tracer and print the "
                        "per-sub-step wall-time breakdown and span profile")
    p.add_argument("--log-file", type=str, default=None,
                   help="write a schema-versioned JSONL run log "
                        "(one record per time step)")
    p.set_defaults(fn=cmd_lung)

    p = sub.add_parser("report", help="aggregate a JSONL run log")
    p.add_argument("run_log", type=str,
                   help="path to a run log written with --log-file")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("mesh", help="generate an airway mesh")
    p.add_argument("--generations", type=int, default=3)
    p.add_argument("--refine-upper", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--vtk", type=str, default=None)
    p.set_defaults(fn=cmd_mesh)

    p = sub.add_parser("scaling", help="evaluate the scaling model")
    p.add_argument("--degree", type=int, default=3)
    p.add_argument("--dofs", type=float, default=179e6)
    p.set_defaults(fn=cmd_scaling)

    p = sub.add_parser("calibrate", help="measure this machine's throughput")
    p.add_argument("--degree", type=int, default=3)
    p.add_argument("--json", action="store_true",
                   help="emit one machine-readable JSON object instead of text")
    p.set_defaults(fn=cmd_calibrate)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
