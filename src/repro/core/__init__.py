"""Core matrix-free evaluation machinery: quadrature, tensor-product bases,
sum-factorization kernels, the even-odd Flop optimization, the SIMD-lane
abstraction, and the matrix-free PDE operators built from them."""

from .quadrature import QuadratureRule, gauss, gauss_lobatto
from .basis import (
    LagrangeBasis1D,
    ShapeMatrices,
    shape_matrices,
    embedding_matrix,
    subinterval_matrix,
    change_of_basis_matrix,
)
from .even_odd import EvenOddMatrix
from .plans import FlatScatterPlan, ScatterPlan, Workspace, contract
from .sum_factorization import TensorProductKernel, apply_1d
from .lanes import LaneBatch, batch_cells, unbatch_cells, n_lane_batches

__all__ = [
    "QuadratureRule",
    "gauss",
    "gauss_lobatto",
    "LagrangeBasis1D",
    "ShapeMatrices",
    "shape_matrices",
    "embedding_matrix",
    "subinterval_matrix",
    "change_of_basis_matrix",
    "EvenOddMatrix",
    "ScatterPlan",
    "FlatScatterPlan",
    "Workspace",
    "contract",
    "TensorProductKernel",
    "apply_1d",
    "LaneBatch",
    "batch_cells",
    "unbatch_cells",
    "n_lane_batches",
]
