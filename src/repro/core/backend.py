"""Array-backend shim and compute-dtype policy for the kernel layer.

Every hot kernel in :mod:`repro.core` ultimately reduces to dense
``matmul``/``einsum`` contractions plus fancy-indexed scatter/gather.
None of that is numpy-specific — CuPy and torch expose the same
``xp``-style namespace — so the kernel layer binds its array module
through this registry instead of importing :mod:`numpy` by name for the
array math.  The default (and, in this repository, only built-in)
backend is numpy; a GPU port registers a module with the same surface
and flips the active backend without forking any operator code::

    from repro.core import backend
    backend.register_backend("cupy", cupy)   # duck-typed xp namespace
    backend.use_backend("cupy")

Alongside the namespace the module owns the *dtype policy*:

``default_dtype()`` / ``set_compute_dtype(dt)``
    The process-wide compute precision.  ``DGDofHandler.zeros()``,
    ``Workspace`` allocations and friends resolve their dtype here when
    the caller does not pass one, which is how ``RunConfig.compute_dtype``
    reaches code that never sees the config object.

``kernel_dtype(input_dtype)``
    The precision a kernel computes in for a given input: float32 stays
    float32 (the whole point of the single-precision path — tabulated
    1D factors are cast once and cached, never promoted), everything
    else computes in float64.  Integer and half inputs are *promoted*
    to float64 rather than truncated.

``resolve_dtype(spec)``
    Normalizes ``"float32" | "float64" | np.dtype | None`` to a numpy
    dtype (``None`` → the active default).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "ArrayBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "use_backend",
    "active_backend",
    "xp",
    "DEFAULT_DTYPE",
    "SUPPORTED_DTYPES",
    "resolve_dtype",
    "default_dtype",
    "set_compute_dtype",
    "compute_dtype_scope",
    "kernel_dtype",
    "precision_bytes",
]

#: process-default compute precision (double, matching the seed repo)
DEFAULT_DTYPE = np.dtype("float64")

#: dtypes the compute path is validated for
SUPPORTED_DTYPES = (np.dtype("float32"), np.dtype("float64"))

_FLOAT32 = np.dtype("float32")
_FLOAT64 = np.dtype("float64")


@dataclass(frozen=True)
class ArrayBackend:
    """A named array namespace the kernel layer can run on.

    ``xp`` is any module exposing the numpy surface the kernels use
    (``empty``/``zeros``/``einsum``/``matmul``/``moveaxis``/``add.at``
    …).  ``asarray``/``to_numpy`` cross the host boundary; for numpy
    both are the identity.
    """

    name: str
    xp: Any
    #: convert a host (numpy) array into this backend's array type
    from_numpy: Any = field(default=None, repr=False)
    #: convert one of this backend's arrays back to numpy
    to_numpy: Any = field(default=None, repr=False)

    def asarray(self, a, dtype=None):
        if self.from_numpy is not None:
            a = self.from_numpy(a)
        return self.xp.asarray(a, dtype=dtype) if dtype is not None else self.xp.asarray(a)


_REGISTRY: dict[str, ArrayBackend] = {}
_ACTIVE: str = "numpy"


def register_backend(name: str, xp_module, *, from_numpy=None, to_numpy=None) -> ArrayBackend:
    """Register (or replace) a backend under ``name`` and return it."""
    backend = ArrayBackend(name=name, xp=xp_module,
                           from_numpy=from_numpy, to_numpy=to_numpy)
    _REGISTRY[name] = backend
    return backend


def get_backend(name: str) -> ArrayBackend:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown array backend {name!r} "
            f"(registered: {sorted(_REGISTRY)})"
        ) from None


def available_backends() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def use_backend(name: str) -> ArrayBackend:
    """Make ``name`` the active backend; returns it."""
    global _ACTIVE
    backend = get_backend(name)  # validate before switching
    _ACTIVE = name
    return backend


def active_backend() -> ArrayBackend:
    return _REGISTRY[_ACTIVE]


def xp():
    """The active backend's array namespace (numpy by default).

    Hot loops bind this once per call, not per element — a dict lookup
    plus attribute access, measured in nanoseconds.
    """
    return _REGISTRY[_ACTIVE].xp


# numpy is always present and always the fallback
register_backend("numpy", np)


# --------------------------------------------------------------------------
# dtype policy

_compute_dtype = DEFAULT_DTYPE


def resolve_dtype(spec) -> np.dtype:
    """Normalize a dtype spec (``"float32"``, ``np.float32``, ``None``…)
    to a supported numpy dtype.  ``None`` resolves to the active
    compute default."""
    if spec is None:
        return _compute_dtype
    dt = np.dtype(spec)
    if dt not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported compute dtype {dt} "
            f"(supported: {[d.name for d in SUPPORTED_DTYPES]})"
        )
    return dt


def default_dtype() -> np.dtype:
    """The active process-wide compute precision."""
    return _compute_dtype


def set_compute_dtype(spec) -> np.dtype:
    """Set the process-wide compute precision; returns the *previous*
    dtype so callers can restore it."""
    global _compute_dtype
    previous = _compute_dtype
    _compute_dtype = resolve_dtype(spec)
    return previous


@contextlib.contextmanager
def compute_dtype_scope(spec):
    """Temporarily switch the default compute dtype (tests, benches)."""
    previous = set_compute_dtype(spec)
    try:
        yield _compute_dtype
    finally:
        set_compute_dtype(previous)


def kernel_dtype(input_dtype) -> np.dtype:
    """The dtype a kernel computes in for a given input dtype: float32
    inputs stay float32, everything else computes in float64."""
    return _FLOAT32 if np.dtype(input_dtype) == _FLOAT32 else _FLOAT64


def precision_bytes(dtype=None) -> int:
    """Bytes per value at ``dtype`` (default: the operator default) —
    the knob the analytic transfer/roofline models scale with."""
    return int(np.dtype(DEFAULT_DTYPE if dtype is None else dtype).itemsize)
