"""One-dimensional Lagrange bases and the matrices used by sum factorization.

A scalar tensor-product shape function on the unit cube is
``phi_{ijk}(x, y, z) = l_i(x) l_j(y) l_k(z)`` with 1D Lagrange polynomials
``l_i`` on a set of nodal points (Gauss–Lobatto by default).  All matrices
needed by the matrix-free kernels couple only in one dimension:

* ``interp``  — N_ij = l_j(q_i): values of basis functions at quadrature
  points (the 1D factor of the operator ``I_e`` in Eq. (7) of the paper),
* ``grad``    — D_ij = l'_j(q_i): reference-coordinate derivatives,
* ``face values / gradients`` at the interval end points 0 and 1,
* embedding matrices between polynomial degrees (p-multigrid transfer)
  and between an interval and its two halves (h-multigrid transfer).

The *change of basis* optimization of Section 3.1 (Kronbichler & Kormann
2019) transforms nodal coefficients into a Lagrange basis collocated at
the quadrature points, making the interpolation matrix the identity; it is
realised by :func:`change_of_basis_matrix`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from .backend import default_dtype
from .quadrature import QuadratureRule, gauss, gauss_lobatto


def lagrange_values(nodes: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Evaluate all Lagrange polynomials on ``nodes`` at points ``x``.

    Returns shape ``(len(x), len(nodes))`` with entry ``[q, j] = l_j(x_q)``.
    Uses the stable barycentric formulation.
    """
    nodes = np.asarray(nodes, dtype=float)
    x = np.atleast_1d(np.asarray(x, dtype=float))
    n = nodes.size
    # barycentric weights
    diff = nodes[:, None] - nodes[None, :]
    np.fill_diagonal(diff, 1.0)
    wbar = 1.0 / diff.prod(axis=1)
    out = np.empty((x.size, n))
    for q, xq in enumerate(x):
        d = xq - nodes
        near = np.nonzero(np.abs(d) < 1e-14)[0]
        if near.size:
            row = np.zeros(n)
            row[near[0]] = 1.0
        else:
            t = wbar / d
            row = t / t.sum()
        out[q] = row
    return out


def lagrange_derivatives(nodes: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Evaluate first derivatives of the Lagrange polynomials at ``x``.

    Returns shape ``(len(x), len(nodes))``.  Away from nodes the product
    rule gives ``l_j'(x) = l_j(x) * sum_{k != j} 1 / (x - x_k)``; at a node
    the exact nodal differentiation matrix built from barycentric weights
    is used (both expressions are exact for polynomials, so no accuracy is
    lost by branching).
    """
    nodes = np.asarray(nodes, dtype=float)
    x = np.atleast_1d(np.asarray(x, dtype=float))
    n = nodes.size
    diff = nodes[:, None] - nodes[None, :]
    np.fill_diagonal(diff, 1.0)
    wbar = 1.0 / diff.prod(axis=1)

    # Nodal differentiation matrix D_ij = l'_j(node_i)
    D = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            if i != j:
                D[i, j] = (wbar[j] / wbar[i]) / (nodes[i] - nodes[j])
    np.fill_diagonal(D, -D.sum(axis=1))

    out = np.empty((x.size, n))
    # Snap to the exact nodal branch whenever x is within 1e-12 of a node:
    # the barycentric product-rule form loses all digits to cancellation
    # when one of the 1/(x - x_k) terms blows up.
    for q, xq in enumerate(x):
        d = xq - nodes
        near = np.nonzero(np.abs(d) < 1e-12)[0]
        if near.size:
            out[q] = D[near[0]]
        else:
            inv = 1.0 / d
            t = wbar * inv
            l_at_x = t / t.sum()
            out[q] = l_at_x * (inv.sum() - inv)
    return out


@dataclass(frozen=True)
class LagrangeBasis1D:
    """Lagrange basis of degree ``degree`` on prescribed 1D nodes in [0, 1]."""

    degree: int
    nodes: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.degree < 0:
            raise ValueError("polynomial degree must be non-negative")
        nodes = self.nodes
        if nodes is None:
            if self.degree == 0:
                nodes = np.array([0.5])
            else:
                nodes = gauss_lobatto(self.degree + 1).points
        nodes = np.asarray(nodes, dtype=float)
        if nodes.size != self.degree + 1:
            raise ValueError(
                f"degree {self.degree} needs {self.degree + 1} nodes, got {nodes.size}"
            )
        object.__setattr__(self, "nodes", nodes)

    @property
    def n(self) -> int:
        return self.degree + 1

    def values(self, x: np.ndarray) -> np.ndarray:
        """Shape ``(len(x), n)``: basis values at ``x``."""
        return lagrange_values(self.nodes, x)

    def derivatives(self, x: np.ndarray) -> np.ndarray:
        """Shape ``(len(x), n)``: basis derivatives at ``x``."""
        return lagrange_derivatives(self.nodes, x)


@dataclass(frozen=True)
class ShapeMatrices:
    """All 1D matrices consumed by the sum-factorization kernels.

    Attributes
    ----------
    interp:     ``(n_q, n)``  basis values at quadrature points.
    grad:       ``(n_q, n)``  basis derivatives at quadrature points.
    face_value: ``(2, n)``    basis values at interval ends {0, 1}.
    face_grad:  ``(2, n)``    basis derivatives at interval ends.
    quadrature: the 1D rule the matrices were built for.
    basis:      the underlying 1D Lagrange basis.
    """

    interp: np.ndarray
    grad: np.ndarray
    face_value: np.ndarray
    face_grad: np.ndarray
    quadrature: QuadratureRule
    basis: LagrangeBasis1D


@lru_cache(maxsize=128)
def shape_matrices(degree: int, n_q_points: int | None = None,
                   nodes: str = "gauss_lobatto") -> ShapeMatrices:
    """Build (and cache) the 1D shape matrices for a given degree.

    Parameters
    ----------
    degree:
        Polynomial degree ``k`` of the 1D basis.
    n_q_points:
        Number of Gauss points; default ``k + 1`` (the paper's standard
        choice; the convective term may use ``k + (k + 2) // 2`` for
        over-integration).
    nodes:
        ``"gauss_lobatto"`` (default nodal points) or ``"gauss"`` for a
        basis collocated at Gauss quadrature points (the post
        change-of-basis representation).
    """
    if n_q_points is None:
        n_q_points = degree + 1
    if nodes == "gauss_lobatto":
        basis = LagrangeBasis1D(degree)
    elif nodes == "gauss":
        basis = LagrangeBasis1D(degree, nodes=gauss(degree + 1).points)
    else:
        raise ValueError(f"unknown node family {nodes!r}")
    rule = gauss(n_q_points)
    ends = np.array([0.0, 1.0])
    return ShapeMatrices(
        interp=basis.values(rule.points),
        grad=basis.derivatives(rule.points),
        face_value=basis.values(ends),
        face_grad=basis.derivatives(ends),
        quadrature=rule,
        basis=basis,
    )


@lru_cache(maxsize=128)
def _cast_shape_matrices(degree: int, n_q_points: int | None, nodes: str,
                         dtype_name: str) -> ShapeMatrices:
    sm = shape_matrices(degree, n_q_points, nodes)
    dt = np.dtype(dtype_name)
    return ShapeMatrices(
        interp=sm.interp.astype(dt),
        grad=sm.grad.astype(dt),
        face_value=sm.face_value.astype(dt),
        face_grad=sm.face_grad.astype(dt),
        quadrature=sm.quadrature,
        basis=sm.basis,
    )


def shape_matrices_for_dtype(degree: int, n_q_points: int | None = None,
                             nodes: str = "gauss_lobatto",
                             dtype=None) -> ShapeMatrices:
    """Shape matrices cast to a compute dtype (default: the configured
    compute dtype from :mod:`repro.core.backend`).

    Tabulation always happens in double precision — barycentric weights
    and nodal differentiation are ill-conditioned in float32 — and the
    finished factors are cast *once* and cached.  This is how the
    single-precision path gets float32 1D factors without ever
    re-deriving them in reduced precision, and without the float64
    masters silently promoting float32 cell data.
    """
    dt = np.dtype(dtype) if dtype is not None else default_dtype()
    if dt == np.float64:
        return shape_matrices(degree, n_q_points, nodes)
    return _cast_shape_matrices(degree, n_q_points, nodes, dt.name)


def change_of_basis_matrix(degree: int) -> np.ndarray:
    """Matrix mapping Gauss–Lobatto nodal coefficients to coefficients of
    the Lagrange basis collocated at the ``degree + 1`` Gauss points.

    After this transform the interpolation matrix to quadrature points is
    the identity, saving one tensor contraction per direction — the
    "change of basis" Flop optimization of Section 3.1.
    """
    gl = LagrangeBasis1D(degree)
    return gl.values(gauss(degree + 1).points)


def embedding_matrix(coarse_degree: int, fine_degree: int) -> np.ndarray:
    """Polynomial embedding P^{coarse} -> P^{fine} on [0, 1].

    Shape ``(fine_degree + 1, coarse_degree + 1)``; used by the
    p-multigrid prolongation (degree bisection in the hybrid multigrid).
    """
    if fine_degree < coarse_degree:
        raise ValueError("fine degree must be >= coarse degree")
    coarse = LagrangeBasis1D(coarse_degree)
    fine = LagrangeBasis1D(fine_degree)
    return coarse.values(fine.nodes)


def subinterval_matrix(degree: int, child: int) -> np.ndarray:
    """Embedding of P^degree on [0,1] into P^degree on one half interval.

    ``child = 0`` maps to [0, 1/2], ``child = 1`` to [1/2, 1].  Evaluating
    parent basis functions at the child's nodes yields the 1D factor of
    the h-multigrid prolongation (global-coarsening transfer).
    """
    if child not in (0, 1):
        raise ValueError("child must be 0 or 1")
    basis = LagrangeBasis1D(degree)
    child_nodes = 0.5 * basis.nodes + 0.5 * child
    return basis.values(child_nodes)


def mass_matrix_1d(degree: int, n_q_points: int | None = None) -> np.ndarray:
    """Exact 1D mass matrix of the Gauss–Lobatto Lagrange basis on [0,1]."""
    sm = shape_matrices(degree, n_q_points or degree + 1)
    W = sm.quadrature.weights
    return sm.interp.T @ (W[:, None] * sm.interp)
