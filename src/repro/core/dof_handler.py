"""Degree-of-freedom handlers for DG and continuous (CG) spaces.

*DG* unknowns are cell-local: the global vector is simply the cell-major
concatenation of ``(k+1)^3`` tensors (times components), so gather and
scatter are reshapes — the property that makes DG mass inversion and
cell-wise vectorization cheap.

*CG* unknowns are shared between cells.  Nodes are identified by
quantized physical positions on the *trilinear* leaf geometry (the same
deterministic geometry used for face matching), which unifies nodes
across conforming faces/edges/vertices including across octrees.  On 2:1
hanging faces the fine-side nodes are *constrained* to the interpolation
of the coarse face through the 1D embedding matrices; constraint chains
are resolved by substitution.  The resulting space is exactly the
conforming auxiliary space of the hybrid multigrid algorithm
(Section 3.4), where hanging-node constraints must be handled in the
smoother diagonal, the transfer, and the operator application.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..mesh.connectivity import MeshConnectivity, orient_face_array
from ..mesh.octree import Forest
from .backend import resolve_dtype
from .basis import LagrangeBasis1D
from .plans import FlatScatterPlan
from .sum_factorization import TensorProductKernel


class DGDofHandler:
    """Cell-local numbering of a (vector-valued) DG space of degree k."""

    def __init__(self, forest: Forest, degree: int, n_components: int = 1) -> None:
        self.forest = forest
        self.degree = degree
        self.n_components = n_components
        self.n1 = degree + 1
        self.n_cells = forest.n_cells

    @property
    def dofs_per_cell(self) -> int:
        return self.n_components * self.n1**3

    @property
    def n_dofs(self) -> int:
        return self.n_cells * self.dofs_per_cell

    def zeros(self, dtype=None) -> np.ndarray:
        """A zero global vector at ``dtype`` (default: the configured
        compute dtype, see :func:`repro.core.backend.set_compute_dtype`)."""
        return np.zeros(self.n_dofs, dtype=resolve_dtype(dtype))

    def cell_view(self, vec: np.ndarray) -> np.ndarray:
        """View a flat global vector as cell tensors:
        scalar -> (N, n, n, n); vector -> (N, c, n, n, n).

        An ensemble-stacked vector ``(E, ndof)`` views as
        ``(E, N, [c,] n, n, n)`` — the cell axis stays adjacent to the
        tensor axes so the sum-factorization folds are unchanged.
        """
        n = self.n1
        lead = vec.shape[:-1]
        if self.n_components == 1:
            return vec.reshape(lead + (self.n_cells, n, n, n))
        return vec.reshape(lead + (self.n_cells, self.n_components, n, n, n))

    def flat(self, cells: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`cell_view`: cell tensors back to the flat
        global vector, preserving any ensemble axes in front."""
        n_trail = 5 if self.n_components > 1 else 4
        lead = cells.shape[:-n_trail]
        return cells.reshape(lead + (-1,))


class CGDofHandler:
    """Continuous Lagrange space of degree k on a (2:1 balanced) forest,
    with hanging-node and strong Dirichlet constraints.

    The *unconstrained* ("master") dofs form the solution space; the
    rectangular operator ``C`` (n_global x n_master) expands a master
    vector to all nodal values (constrained nodes get interpolated
    values).  An operator in the CG space is applied as ``C^T A_loc C``.
    """

    def __init__(
        self,
        forest: Forest,
        degree: int,
        connectivity: MeshConnectivity | None = None,
        dirichlet_ids: tuple[int, ...] = (),
    ) -> None:
        from ..mesh.connectivity import build_connectivity

        if degree < 1:
            raise ValueError("continuous elements need degree >= 1")
        self.forest = forest
        self.degree = degree
        self.n1 = degree + 1
        self.n_cells = forest.n_cells
        self.connectivity = connectivity or build_connectivity(forest)
        self.dirichlet_ids = tuple(dirichlet_ids)
        self._kernel = TensorProductKernel(degree)
        self._number_dofs()
        self._build_constraints()

    # ------------------------------------------------------------------
    def _nodal_points_trilinear(self) -> np.ndarray:
        """(N, n^3, 3) physical nodal points via the trilinear geometry."""
        basis = LagrangeBasis1D(self.degree)
        nodes = basis.nodes
        zz, yy, xx = np.meshgrid(nodes, nodes, nodes, indexing="ij")
        ref = np.stack([xx.ravel(), yy.ravel(), zz.ravel()], axis=1)
        forest = self.forest
        out = np.empty((self.n_cells, ref.shape[0], 3))
        for c, leaf in enumerate(forest.leaves):
            pts = forest.coarse.map_trilinear(leaf.tree, leaf.ref_points(ref))
            out[c] = pts
        return out

    def _number_dofs(self) -> None:
        pts = self._nodal_points_trilinear()
        v = self.forest.coarse.vertices
        extent = float(np.max(v.max(axis=0) - v.min(axis=0))) if len(v) else 1.0
        tol = max(extent, 1e-12) * 1e-9
        keys = np.round(pts.reshape(-1, 3) / tol).astype(np.int64)
        _, uniq_idx, inverse = np.unique(
            keys, axis=0, return_index=True, return_inverse=True
        )
        n = self.n1
        self.n_global = int(inverse.max()) + 1 if inverse.size else 0
        self.cell_to_global = inverse.reshape(self.n_cells, n, n, n)

    # ------------------------------------------------------------------
    def _build_constraints(self) -> None:
        n = self.n1
        kern = self._kernel
        basis = kern.shape.basis
        raw: dict[int, list[tuple[int, float]]] = {}

        # hanging-node constraints from 2:1 interior batches
        for batch in self.connectivity.interior:
            if not batch.is_hanging:
                continue
            sa, sb = batch.subface
            # 1D embeddings: value of coarse basis at the fine node mapped
            # into the coarse half-interval
            Ba = basis.values(0.5 * basis.nodes + 0.5 * sa)  # (n, n)
            Bb = basis.values(0.5 * basis.nodes + 0.5 * sb)
            for cm, cp in zip(batch.cells_m, batch.cells_p):
                fine_ids = self._face_trace_ids(int(cm), batch.face_m)
                coarse_ids = self._face_trace_ids(int(cp), batch.face_p)
                coarse_in_minus = orient_face_array(coarse_ids, batch.orientation)
                for ia in range(n):
                    for ib in range(n):
                        slave = int(fine_ids[ia, ib])
                        entries = []
                        for ja in range(n):
                            wa = Ba[ia, ja]
                            if abs(wa) < 1e-14:
                                continue
                            for jb in range(n):
                                w = wa * Bb[ib, jb]
                                if abs(w) < 1e-14:
                                    continue
                                entries.append((int(coarse_in_minus[ja, jb]), w))
                        # identity constraints (node coincides with a coarse
                        # node and was unified by the hashing) are dropped
                        if len(entries) == 1 and entries[0][0] == slave:
                            continue
                        raw[slave] = entries

        # strong Dirichlet constraints (constrained to zero)
        for batch in self.connectivity.boundary:
            if batch.boundary_id not in self.dirichlet_ids:
                continue
            for c in batch.cells:
                ids = self._face_trace_ids(int(c), batch.face)
                for dof in ids.ravel():
                    raw[int(dof)] = []

        # resolve constraint chains (a master that is itself constrained)
        resolved: dict[int, list[tuple[int, float]]] = {}

        def resolve(dof: int, depth: int = 0) -> list[tuple[int, float]]:
            if depth > 8:  # pragma: no cover - 2:1 meshes terminate quickly
                raise RuntimeError("constraint chain too deep")
            if dof in resolved:
                return resolved[dof]
            if dof not in raw:
                return [(dof, 1.0)]
            acc: dict[int, float] = {}
            for master, w in raw[dof]:
                for m2, w2 in resolve(master, depth + 1):
                    acc[m2] = acc.get(m2, 0.0) + w * w2
            out = [(m, w) for m, w in acc.items() if abs(w) > 1e-13]
            resolved[dof] = out
            return out

        for dof in list(raw):
            resolve(dof)
        self.constraints = resolved

        constrained = set(resolved)
        self.is_constrained = np.zeros(self.n_global, dtype=bool)
        for dof in constrained:
            self.is_constrained[dof] = True
        masters = np.nonzero(~self.is_constrained)[0]
        self.master_of = -np.ones(self.n_global, dtype=np.int64)
        self.master_of[masters] = np.arange(len(masters))
        self.n_dofs = int(len(masters))

        # expansion matrix C: global <- master
        rows, cols, vals = [], [], []
        for g in masters:
            rows.append(g)
            cols.append(self.master_of[g])
            vals.append(1.0)
        for slave, entries in resolved.items():
            for master, w in entries:
                if self.is_constrained[master]:  # pragma: no cover - resolved
                    raise RuntimeError("unresolved constraint chain")
                rows.append(slave)
                cols.append(self.master_of[master])
                vals.append(w)
        self.C = sp.csr_matrix(
            (vals, (rows, cols)), shape=(self.n_global, self.n_dofs)
        )
        self.Ct = self.C.T.tocsr()

    def _face_trace_ids(self, cell: int, face: int) -> np.ndarray:
        """(n, n) global ids of the nodal face lattice of a cell."""
        return self._kernel.face_nodal_trace(self.cell_to_global[cell], face)

    # ------------------------------------------------------------------
    def zeros(self, dtype=None) -> np.ndarray:
        """A zero global vector at ``dtype`` (default: the configured
        compute dtype, see :func:`repro.core.backend.set_compute_dtype`)."""
        return np.zeros(self.n_dofs, dtype=resolve_dtype(dtype))

    def expand(self, x_master: np.ndarray) -> np.ndarray:
        """Master vector -> all nodal values (constraints applied).
        Ensemble input ``(E, n_dofs)`` maps to ``(E, n_global)``."""
        if x_master.ndim == 2:
            return (self.C @ x_master.T).T
        return self.C @ x_master

    def restrict_add(self, r_global: np.ndarray) -> np.ndarray:
        """Distribute nodal residuals back to masters (C^T)."""
        if r_global.ndim == 2:
            return (self.Ct @ r_global.T).T
        return self.Ct @ r_global

    def gather_cells(self, x_master: np.ndarray) -> np.ndarray:
        """Master vector -> cell tensors (N, n, n, n); ensemble input
        gathers to (E, N, n, n, n)."""
        expanded = self.expand(x_master)
        if expanded.ndim == 2:
            return expanded[:, self.cell_to_global]
        return expanded[self.cell_to_global]

    @property
    def flat_scatter_plan(self) -> FlatScatterPlan:
        """Planned cell-to-global scatter (built lazily, dtype-agnostic,
        shared by float64 operators and their float32 clones)."""
        plan = self.__dict__.get("_flat_scatter_plan")
        if plan is None:
            plan = FlatScatterPlan(self.cell_to_global, self.n_global)
            self.__dict__["_flat_scatter_plan"] = plan
        return plan

    def scatter_add_cells(self, cell_data: np.ndarray) -> np.ndarray:
        """Accumulate cell tensors into a master-space residual vector.
        Ensemble input (E, N, n, n, n) accumulates member-wise."""
        axis = 1 if cell_data.ndim == 5 else 0
        r_global = self.flat_scatter_plan.scatter(
            cell_data, dtype=cell_data.dtype, axis=axis
        )
        return self.restrict_add(r_global)

    def nodal_points(self) -> np.ndarray:
        """(n_global, 3) trilinear position of every global node."""
        pts = self._nodal_points_trilinear().reshape(-1, 3)
        out = np.empty((self.n_global, 3))
        out[self.cell_to_global.ravel()] = pts
        return out
