"""Even–odd decomposition of 1D kernel matrices.

For symmetric node and quadrature point sets, the 1D interpolation matrix
``N`` satisfies ``N[m-1-i, n-1-j] = N[i, j]`` (*even* type) and the
differentiation matrix ``D`` satisfies ``D[m-1-i, n-1-j] = -D[i, j]``
(*odd* type).  Splitting the input vector into its even and odd parts with
respect to reversal lets each matrix–vector product be computed with two
half-sized products — the Flop-halving optimization of Section 3.1
(Kronbichler & Kormann, ACM TOMS 2019) that contributes to the reported
1.5–2x speedup over prior DG implementations.

Given ``v`` of length n, write ``v = v_e + v_o`` with ``J v_e = v_e`` and
``J v_o = -v_o`` (J = index reversal).  Because ``J M J = s M`` with
``s = +1`` (even) or ``-1`` (odd), ``M v_e`` is s-symmetric and ``M v_o``
is (-s)-symmetric, so only the top halves need computing:

    w[i]       = (Me ve)[i] + (Mo vo)[i]
    w[m-1-i]   = s ((Me ve)[i] - (Mo vo)[i])

with folded half matrices Me, Mo.  Multiply-add count drops from ``m n``
to ``2 ceil(m/2) ceil(n/2)`` per 1D product.
"""

from __future__ import annotations

import numpy as np

from .backend import kernel_dtype


class EvenOddMatrix:
    """A 1D kernel matrix stored in even–odd factored form.

    Parameters
    ----------
    M:
        Dense ``(m, n)`` matrix with reversal symmetry.
    kind:
        ``"even"`` for ``J M J = +M`` (interpolation matrices) or
        ``"odd"`` for ``J M J = -M`` (differentiation matrices).
    check:
        Verify the symmetry holds to ``1e-10`` and raise otherwise.
    """

    def __init__(self, M: np.ndarray, kind: str, check: bool = True) -> None:
        M = np.asarray(M, dtype=float)
        if M.ndim != 2:
            raise ValueError("M must be a 2D matrix")
        if kind not in ("even", "odd"):
            raise ValueError(f"kind must be 'even' or 'odd', got {kind!r}")
        self.M = M
        self.kind = kind
        self.sign = 1.0 if kind == "even" else -1.0
        m, n = M.shape
        if check:
            err = np.abs(M[::-1, ::-1] - self.sign * M).max()
            if err > 1e-10:
                raise ValueError(
                    f"matrix lacks {kind} reversal symmetry (violation {err:.2e})"
                )
        self.m, self.n = m, n
        self.m_half = (m + 1) // 2  # rows computed directly
        self.n_lo = (n + 1) // 2  # folded input length (middle counted once)
        # Folded half matrices.  Columns j < n//2 are folded with their
        # mirror; an odd-n middle column is kept as-is in Me and zero in Mo.
        top = M[: self.m_half]
        self.Me = top[:, : self.n_lo].copy()
        self.Mo = top[:, : self.n_lo].copy()
        for j in range(n // 2):
            self.Me[:, j] = top[:, j] + top[:, n - 1 - j]
            self.Mo[:, j] = top[:, j] - top[:, n - 1 - j]
        if n % 2 == 1:
            mid = n // 2
            self.Me[:, mid] = top[:, mid]
            self.Mo[:, mid] = 0.0
        # dtype-matched copies of (Me, Mo): float32 inputs must hit
        # float32 factors or the matmul silently promotes every sweep.
        self._factor_cache: dict[np.dtype, tuple[np.ndarray, np.ndarray]] = {
            self.M.dtype: (self.Me, self.Mo)
        }

    def _factors(self, dtype: np.dtype) -> tuple[np.ndarray, np.ndarray]:
        cached = self._factor_cache.get(dtype)
        if cached is None:
            cached = (self.Me.astype(dtype), self.Mo.astype(dtype))
            self._factor_cache[dtype] = cached
        return cached

    # ------------------------------------------------------------------
    def matvec(self, v: np.ndarray) -> np.ndarray:
        """Apply to vectors along the last axis of ``v`` (batched).

        The output dtype follows the kernel dtype policy: float32 in →
        float32 out (dtype-matched factor copies, no hidden promotion);
        anything else computes in float64."""
        dt = kernel_dtype(v.dtype)
        Me, Mo = self._factors(dt)
        n = self.n
        half = n // 2
        rev = v[..., ::-1]
        ve = 0.5 * (v[..., : self.n_lo] + rev[..., : self.n_lo])
        vo = 0.5 * (v[..., : self.n_lo] - rev[..., : self.n_lo])
        if n % 2 == 1:
            ve = ve.copy()
            ve[..., half] = v[..., half]
            # vo middle is zero and multiplies a zero column; leave as-is.
        we = ve @ Me.T
        wo = vo @ Mo.T
        m = self.m
        out = np.empty(v.shape[:-1] + (m,), dtype=dt)
        out[..., : self.m_half] = we + wo
        mirror = self.sign * (we - wo)
        out[..., m - 1 : m - 1 - (m // 2) : -1] = mirror[..., : m // 2]
        return out

    def apply(self, u: np.ndarray, dim: int) -> np.ndarray:
        """Apply along tensor dimension ``dim`` of ``u`` (dim 0 = last axis),
        matching the contract of :func:`repro.core.sum_factorization.apply_1d`."""
        axis = u.ndim - 1 - dim
        if axis == u.ndim - 1:
            return self.matvec(u)
        moved = np.moveaxis(u, axis, -1)
        return np.moveaxis(self.matvec(moved), -1, axis)

    # ------------------------------------------------------------------
    def mults_per_vector(self) -> int:
        """Multiplications per 1D product in factored form."""
        return 2 * self.m_half * self.n_lo

    def mults_dense(self) -> int:
        """Multiplications of the plain dense product."""
        return self.m * self.n

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"EvenOddMatrix({self.m}x{self.n}, kind={self.kind})"
