"""Cross-element SIMD-style lane abstraction (Section 3.2).

The paper vectorizes arithmetic *across* cells and faces via C++ wrapper
classes around AVX-512 intrinsics (8 doubles / 16 floats per register).
In this reproduction the role of the vector register is played by the
leading axis of NumPy arrays, but the *batching semantics* — grouping
cells into fixed-width lanes, padding the last incomplete batch, tracking
partially filled lanes for oddly-oriented faces, and converting between
array-of-struct (per-cell) and struct-of-array (per-lane) layouts — are
modelled faithfully because they determine the granularity limits of
strong scaling discussed in the paper (2 DP SIMD batches of cells per
process as the scaling floor).

:class:`LaneBatch` mirrors ``dealii::VectorizedArray``: it supports the
basic arithmetic operators, broadcasts scalars, and offers
gather/scatter by index.  :func:`batch_cells` / :func:`unbatch_cells`
perform the SoA <-> AoS conversions used at the gather/scatter stages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Lane widths of the architectures discussed in the paper (doubles per
#: 512-bit register on Skylake AVX-512 / A64FX SVE; 32 threads as the
#: effective width used in the V100 comparison is not lane-based).
LANES_DP = 8
LANES_SP = 16


@dataclass
class LaneBatch:
    """A fixed-width batch of values, one lane per cell/face.

    ``data`` has shape ``(lanes, ...)``; ``n_filled <= lanes`` lanes carry
    real data, the rest are padding (kept at the value of the last filled
    lane so arithmetic never produces NaN/Inf, as deal.II does).
    """

    data: np.ndarray
    n_filled: int

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data)
        if not 0 < self.n_filled <= self.data.shape[0]:
            raise ValueError(
                f"n_filled={self.n_filled} out of range for {self.data.shape[0]} lanes"
            )

    @property
    def lanes(self) -> int:
        return self.data.shape[0]

    @property
    def fill_fraction(self) -> float:
        """Fraction of useful lanes — the quantity behind the ~25% face
        overhead the paper reports for mixed-orientation lung meshes."""
        return self.n_filled / self.lanes

    # -- arithmetic (elementwise across all lanes, like SIMD) -----------
    def _wrap(self, data: np.ndarray) -> "LaneBatch":
        return LaneBatch(data, self.n_filled)

    def _other(self, other):
        return other.data if isinstance(other, LaneBatch) else other

    def __add__(self, other):
        return self._wrap(self.data + self._other(other))

    __radd__ = __add__

    def __sub__(self, other):
        return self._wrap(self.data - self._other(other))

    def __rsub__(self, other):
        return self._wrap(self._other(other) - self.data)

    def __mul__(self, other):
        return self._wrap(self.data * self._other(other))

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._wrap(self.data / self._other(other))

    def __rtruediv__(self, other):
        return self._wrap(self._other(other) / self.data)

    def __neg__(self):
        return self._wrap(-self.data)

    def sqrt(self) -> "LaneBatch":
        return self._wrap(np.sqrt(self.data))

    def abs(self) -> "LaneBatch":
        return self._wrap(np.abs(self.data))

    # -- memory movement -------------------------------------------------
    @staticmethod
    def broadcast(value, lanes: int = LANES_DP) -> "LaneBatch":
        """Replicate a scalar (or per-lane-shaped array) into all lanes."""
        value = np.asarray(value)
        return LaneBatch(np.broadcast_to(value, (lanes,) + value.shape).copy(), lanes)

    @staticmethod
    def gather(source: np.ndarray, indices: np.ndarray) -> "LaneBatch":
        """Gather ``source[indices[l]]`` into lane ``l`` (AoS -> SoA).

        ``indices`` shorter than the lane width leaves padding lanes
        duplicating the last entry.
        """
        indices = np.asarray(indices)
        n = indices.shape[0]
        lanes = max(LANES_DP, n) if n <= LANES_DP else n
        padded = np.concatenate([indices, np.repeat(indices[-1:], lanes - n)])
        return LaneBatch(source[padded], n)

    def scatter(self, target: np.ndarray, indices: np.ndarray) -> None:
        """Scatter filled lanes back: ``target[indices[l]] = lane l``."""
        indices = np.asarray(indices)
        target[indices[: self.n_filled]] = self.data[: self.n_filled]

    def scatter_add(self, target: np.ndarray, indices: np.ndarray) -> None:
        """Accumulate filled lanes: ``target[indices[l]] += lane l``."""
        from .plans import ScatterPlan

        indices = np.asarray(indices)
        plan = ScatterPlan(indices[: self.n_filled], target.shape[0])
        plan.add(target, self.data[: self.n_filled])


def n_lane_batches(n_items: int, lanes: int = LANES_DP) -> int:
    """Number of SIMD batches covering ``n_items`` cells/faces."""
    return -(-n_items // lanes)


def batch_cells(cell_data: np.ndarray, lanes: int = LANES_DP) -> list[LaneBatch]:
    """Split per-cell data (leading axis = cells) into lane batches.

    The AoS -> SoA conversion at the gather stage: each batch is a
    ``(lanes, ...)`` array; the final batch is padded by replicating its
    last cell.
    """
    n = cell_data.shape[0]
    out: list[LaneBatch] = []
    for start in range(0, n, lanes):
        chunk = cell_data[start : start + lanes]
        filled = chunk.shape[0]
        if filled < lanes:
            pad = np.repeat(chunk[-1:], lanes - filled, axis=0)
            chunk = np.concatenate([chunk, pad], axis=0)
        out.append(LaneBatch(chunk.copy(), filled))
    return out


def unbatch_cells(batches: list[LaneBatch]) -> np.ndarray:
    """Inverse of :func:`batch_cells` (SoA -> AoS), dropping padding."""
    return np.concatenate([b.data[: b.n_filled] for b in batches], axis=0)


def simd_fill_statistics(batch_sizes: list[int], lanes: int = LANES_DP) -> float:
    """Average lane utilization for a sequence of batch fill counts.

    Used by the performance model to account for the partially filled
    lanes of mixed-orientation face batches (Section 5.2, ~25% overhead
    on the g=11 lung mesh).
    """
    if not batch_sizes:
        return 1.0
    useful = float(sum(batch_sizes))
    issued = float(len(batch_sizes) * lanes)
    return useful / issued
