"""Matrix-free PDE operators built on the sum-factorization kernels."""

from .base import FaceKernels, MatrixFreeOperator, physical_gradient
from .mass import InverseMassOperator, MassOperator
from .laplace import CGLaplaceOperator, DGLaplaceOperator
from .vector_laplace import HelmholtzOperator, VectorDGLaplace
from .grad_div import DivergenceOperator, GradientOperator
from .convective import ConvectiveOperator
from .penalty import DivergenceContinuityPenalty, PenaltyStepOperator

__all__ = [
    "FaceKernels",
    "MatrixFreeOperator",
    "physical_gradient",
    "InverseMassOperator",
    "MassOperator",
    "CGLaplaceOperator",
    "DGLaplaceOperator",
    "HelmholtzOperator",
    "VectorDGLaplace",
    "DivergenceOperator",
    "GradientOperator",
    "ConvectiveOperator",
    "DivergenceContinuityPenalty",
    "PenaltyStepOperator",
]
