"""Shared machinery of the matrix-free operators (Eq. (7)).

Every DG operator is a sum of cell contributions
``G_e^T I_e^T D_e I_e G_e`` and face contributions
``G_f^T I_f^T D_f I_f G_f``.  :class:`FaceKernels` supplies the ``I_f``
part: evaluation of value and reference-gradient traces of a cell field
at the (minus-frame) face quadrature points — handling neighbor
orientation and 2:1 sub-face interpolation — together with the exact
adjoints used for ``I_f^T``.

Conventions: all quantities on a face batch live in the *minus* frame;
the plus side's reference-gradient components remain indexed by the plus
cell's reference dimensions (so the plus ``J^{-T}`` applies directly).
"""

from __future__ import annotations

import functools
import warnings

import numpy as np

from ...mesh.connectivity import Orientation, orient_face_array, orient_to_plus
from ...telemetry import TRACER
from ..backend import DEFAULT_DTYPE, kernel_dtype
from ..plans import POLICY, Workspace, cached_scatter_plan, contract
from ..sum_factorization import TensorProductKernel, apply_1d_2d


def tangential_dims(face: int) -> tuple[int, int]:
    """Reference dimensions (a, b) of the face frame: higher dim first."""
    d = face // 2
    rem = [dd for dd in (2, 1, 0) if dd != d]
    return rem[0], rem[1]


class FaceKernels:
    """Value/gradient face traces and their adjoints for one kernel."""

    def __init__(self, kernel: TensorProductKernel) -> None:
        self.kern = kernel

    # -- evaluation ------------------------------------------------------
    def nodal_traces(self, u_cells: np.ndarray, face: int, ws=None):
        """Nodal face value and 3-component reference gradient.

        ``u_cells``: (F, ..., n, n, n) -> val (F, ..., n, n) and
        grad (F, ..., 3, n, n) with the component axis indexing the
        *cell's own* reference dimensions.  ``ws`` (a
        :class:`repro.core.plans.Workspace`) assembles the gradient stack
        in a reusable buffer instead of a fresh allocation.
        """
        kern = self.kern
        t_val = kern.face_nodal_trace(u_cells, face)
        t_nd = kern.face_nodal_normal_derivative(u_cells, face)
        d = face // 2
        a_dim, b_dim = tangential_dims(face)
        dt = kernel_dtype(t_val.dtype)
        D = kern.nodal_diff_matrix(dt)
        if ws is None:
            g = [None, None, None]
            g[d] = t_nd
            g[a_dim] = apply_1d_2d(D, t_val, 1)
            g[b_dim] = apply_1d_2d(D, t_val, 0)
            return t_val, np.stack(g, axis=-3)
        grad = ws.take(
            "fk.traces", t_val.shape[:-2] + (3,) + t_val.shape[-2:], dt
        )
        grad[..., d, :, :] = t_nd
        apply_1d_2d(D, t_val, 1, out=grad[..., a_dim, :, :])
        apply_1d_2d(D, t_val, 0, out=grad[..., b_dim, :, :])
        return t_val, grad

    def to_quad(
        self,
        t: np.ndarray,
        orientation: Orientation | None = None,
        subface: tuple[int, int] | None = None,
    ) -> np.ndarray:
        """Nodal face data (own frame) -> minus-frame quadrature values."""
        if orientation is not None and not orientation.is_identity:
            t = orient_face_array(t, orientation)
        return self.kern.face_nodal_to_quad(t, subface)

    def eval_side(
        self,
        u_cells: np.ndarray,
        face: int,
        orientation: Orientation | None = None,
        subface: tuple[int, int] | None = None,
        ws=None,
    ):
        """Evaluate one side of a face batch at the minus quadrature points.

        Returns (values (F, ..., q, q), ref_grad (F, ..., 3, q, q)).
        """
        t_val, t_grad = self.nodal_traces(u_cells, face, ws)
        return (
            self.to_quad(t_val, orientation, subface),
            self.to_quad(t_grad, orientation, subface),
        )

    # -- integration (adjoints) -------------------------------------------
    def from_quad(
        self,
        q: np.ndarray,
        orientation: Orientation | None = None,
        subface: tuple[int, int] | None = None,
    ) -> np.ndarray:
        """Adjoint of :meth:`to_quad`."""
        t = self.kern.face_quad_to_nodal_t(q, subface)
        if orientation is not None and not orientation.is_identity:
            t = orient_to_plus(t, orientation)
        return t

    def integrate_side(
        self,
        face: int,
        q_val: np.ndarray | None,
        q_grad: np.ndarray | None,
        orientation: Orientation | None = None,
        subface: tuple[int, int] | None = None,
    ) -> np.ndarray:
        """Adjoint of :meth:`eval_side`: accumulate quadrature-space
        coefficients of test-function values (``q_val``) and reference
        gradients (``q_grad``, own-frame components) into cell tensors."""
        kern = self.kern
        d = face // 2
        a_dim, b_dim = tangential_dims(face)
        ref = q_val if q_val is not None else q_grad
        D = kern.nodal_diff_matrix(kernel_dtype(ref.dtype))
        nodal_plane = None
        normal_part = None
        if q_val is not None:
            nodal_plane = self.from_quad(q_val, orientation, subface)
        if q_grad is not None:
            g = self.from_quad(q_grad, orientation, subface)
            # contiguous copies: the tangential sweeps then run as single
            # folded GEMMs instead of strided per-face matmul stacks
            ga = np.ascontiguousarray(g[..., a_dim, :, :])
            gb = np.ascontiguousarray(g[..., b_dim, :, :])
            gd = g[..., d, :, :]
            tang = apply_1d_2d(D.T, ga, 1) + apply_1d_2d(D.T, gb, 0)
            nodal_plane = tang if nodal_plane is None else nodal_plane + tang
            normal_part = gd
        out = kern.expand_nodal_trace(nodal_plane, face)
        if normal_part is not None:
            out = out + kern.expand_nodal_normal_derivative(normal_part, face)
        return out


def physical_gradient(
    jinv_t: np.ndarray,
    ref_grad: np.ndarray,
    planned: bool = True,
    out: np.ndarray | None = None,
    ensemble: bool = False,
) -> np.ndarray:
    """Apply J^{-T} per quadrature point.

    jinv_t: (F, 3, 3, q, q); ref_grad: (F, 3, q, q) for scalar fields or
    (F, C, 3, q, q) for vector fields (component axis at -4).
    ``ensemble=True`` expects one extra leading ensemble axis on
    ``ref_grad`` — (E, F, 3, q, q) / (E, F, C, 3, q, q) — folded into
    the same metric contraction (the flag is explicit because an
    ensemble scalar field and an unbatched vector field share a rank).
    ``planned=False`` selects the legacy per-call path search (kept for
    the before/after benchmark gate).
    """
    if ensemble:
        if ref_grad.ndim == 5:
            if planned:
                return contract("fijab,efjab->efiab", jinv_t, ref_grad, out=out)
            return np.einsum(
                "fijab,efjab->efiab", jinv_t, ref_grad, optimize=True
            )
        if ref_grad.ndim == 6:
            if planned:
                return contract("fijab,efcjab->efciab", jinv_t, ref_grad, out=out)
            return np.einsum(
                "fijab,efcjab->efciab", jinv_t, ref_grad, optimize=True
            )
        raise ValueError(f"unsupported ensemble ref_grad rank {ref_grad.ndim}")
    if ref_grad.ndim == 4:
        if planned:
            return contract("fijab,fjab->fiab", jinv_t, ref_grad, out=out)
        return np.einsum("fijab,fjab->fiab", jinv_t, ref_grad, optimize=True)
    if ref_grad.ndim == 5:
        if planned:
            return contract("fijab,fcjab->fciab", jinv_t, ref_grad, out=out)
        return np.einsum("fijab,fcjab->fciab", jinv_t, ref_grad, optimize=True)
    raise ValueError(f"unsupported ref_grad rank {ref_grad.ndim}")


def _instrument_entry(raw):
    """Wrap an operator-application entry point with telemetry.

    When the tracer is enabled, one application records the
    ``vmult.<ClassName>`` counter, opens a ``vmult[<ClassName>]`` span,
    and annotates it with the operator's analytic own-work model
    (flops / bytes / dofs) so the roofline attribution can compute
    achieved GFlop/s and GB/s per kernel.  When disabled the wrapper is
    a single attribute check in front of the raw method.
    """

    @functools.wraps(raw)
    def wrapped(self, x, *args, **kwargs):
        if not TRACER.enabled:
            return raw(self, x, *args, **kwargs)
        name = type(self).__name__
        TRACER.incr("vmult." + name)
        with TRACER.span("vmult[" + name + "]"):
            wm = self.work_model()
            # an ensemble-stacked state does E members' worth of work in
            # one application — scale the own-work annotation accordingly
            scale = float(x.shape[0]) if getattr(x, "ndim", 1) == 2 else 1.0
            TRACER.annotate(
                scale * wm["flops"], scale * wm["bytes"], scale * wm["dofs"]
            )
            return raw(self, x, *args, **kwargs)

    wrapped.__instrumented__ = True
    return wrapped


class _UsePlansAttribute:
    """``use_plans`` as a view of the global execution policy.

    Reading ``op.use_plans`` returns the instance override if one was
    set, else :data:`repro.core.plans.POLICY` ``.use_plans``.  Assigning
    it is deprecated (kept for one release) — use
    :func:`repro.core.plans.plan_execution` instead.  The override is
    stored under the same ``"use_plans"`` key in the instance dict, so
    code that stashes/restores it via ``op.__dict__`` keeps working.
    """

    def __get__(self, obj, objtype=None):
        if obj is None:
            return POLICY.use_plans
        return obj.__dict__.get("use_plans", POLICY.use_plans)

    def __set__(self, obj, value) -> None:
        warnings.warn(
            "setting op.use_plans is deprecated; use "
            "repro.core.plans.plan_execution(use_plans=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        obj.__dict__["use_plans"] = bool(value)

    def __delete__(self, obj) -> None:
        obj.__dict__.pop("use_plans", None)


class MatrixFreeOperator:
    """Minimal linear-operator interface shared by all operators.

    Every operator carries a lazily created plan cache (scatter plans,
    contraction paths, reusable workspaces).  Execution strategy is a
    process-wide policy: :func:`repro.core.plans.plan_execution`
    (``use_plans=False``) reverts to the legacy unplanned path —
    ``np.add.at`` scatters and per-call einsum path searches — which the
    equivalence tests and the vmult benchmark gate use as the reference.
    ``op.use_plans`` reads the policy (instance assignment is deprecated
    but honored for one release).
    Shallow clones (e.g. the float32 operators inside the multigrid
    V-cycle) may share the cache: scatter plans are dtype-agnostic and
    workspace buffers are keyed by dtype.

    Subclasses are instrumented automatically: the outermost application
    entry point each class defines itself (``apply`` when present — the
    nonlinear/affine operators route ``vmult`` through it — else
    ``vmult``) is wrapped with the span + work-model telemetry of
    :func:`_instrument_entry`.  Operators composed of other instrumented
    operators (Helmholtz, the vector Laplacian, the penalty step) report
    only their *own* work; the inner operators annotate their nested
    spans themselves.
    """

    dtype = DEFAULT_DTYPE
    use_plans = _UsePlansAttribute()

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        for entry in ("apply", "vmult"):
            fn = cls.__dict__.get(entry)
            if fn is not None and not getattr(fn, "__instrumented__", False):
                setattr(cls, entry, _instrument_entry(fn))
                break

    @property
    def plan_cache(self) -> dict:
        cache = self.__dict__.get("_plan_cache")
        if cache is None:
            cache = {}
            self.__dict__["_plan_cache"] = cache
        return cache

    def workspace(self) -> Workspace:
        cache = self.plan_cache
        ws = cache.get("workspace")
        if ws is None:
            ws = Workspace()
            cache["workspace"] = ws
        return ws

    def _scatter_add(self, out: np.ndarray, indices: np.ndarray,
                     contrib: np.ndarray, key, axis: int = 0) -> None:
        """Planned ``out[indices] += contrib`` along ``axis``; ``key``
        identifies the index set in the plan cache.  ``axis=1`` serves
        ensemble-stacked cell tensors ``(E, N, ...)``."""
        if not self.use_plans:
            if axis == 0:
                np.add.at(out, indices, contrib)
            else:
                np.add.at(out, (slice(None), indices), contrib)
            return
        plan = cached_scatter_plan(
            self.plan_cache, ("scatter", key), indices, out.shape[axis]
        )
        plan.add(out, contrib, axis=axis)

    def _contract(self, subscripts: str, *operands, out: np.ndarray | None = None):
        """Cached-plan einsum; falls back to the legacy per-call
        ``optimize=True`` search when ``use_plans`` is off."""
        if self.use_plans:
            return contract(subscripts, *operands, out=out)
        return np.einsum(subscripts, *operands, optimize=True, out=out)

    @property
    def precision_bytes(self) -> int:
        """Bytes per value at the operator's compute dtype — the knob the
        analytic transfer models scale with (a float32 clone reports half
        the bytes of its float64 master, doubling the modelled AI)."""
        return int(np.dtype(self.dtype).itemsize)

    def work_model(self) -> dict:
        """Cached analytic own-work model of one application:
        ``{"flops", "bytes", "dofs"}`` (see :mod:`repro.perf.flops` /
        :mod:`repro.perf.memory`).  Keyed by compute dtype because
        shallow dtype clones share the plan cache but move half the
        bytes."""
        cache = self.plan_cache
        key = ("work_model", np.dtype(self.dtype).str)
        wm = cache.get(key)
        if wm is None:
            wm = cache[key] = self._build_work_model()
        return wm

    def _build_work_model(self) -> dict:
        """Default: a pure vector-stream model (read the source, write +
        read-for-update the destination; no Flop estimate).  Operators
        with analytic Flop/transfer counts override this."""
        n = float(self.n_dofs)
        return {"flops": 0.0, "bytes": 3.0 * self.precision_bytes * n, "dofs": n}

    @property
    def n_dofs(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def vmult(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def diagonal(self) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.vmult(x)
