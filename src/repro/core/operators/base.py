"""Shared machinery of the matrix-free operators (Eq. (7)).

Every DG operator is a sum of cell contributions
``G_e^T I_e^T D_e I_e G_e`` and face contributions
``G_f^T I_f^T D_f I_f G_f``.  :class:`FaceKernels` supplies the ``I_f``
part: evaluation of value and reference-gradient traces of a cell field
at the (minus-frame) face quadrature points — handling neighbor
orientation and 2:1 sub-face interpolation — together with the exact
adjoints used for ``I_f^T``.

Conventions: all quantities on a face batch live in the *minus* frame;
the plus side's reference-gradient components remain indexed by the plus
cell's reference dimensions (so the plus ``J^{-T}`` applies directly).
"""

from __future__ import annotations

import numpy as np

from ...mesh.connectivity import Orientation, orient_face_array, orient_to_plus
from ...telemetry import TRACER
from ..sum_factorization import TensorProductKernel, apply_1d_2d


def tangential_dims(face: int) -> tuple[int, int]:
    """Reference dimensions (a, b) of the face frame: higher dim first."""
    d = face // 2
    rem = [dd for dd in (2, 1, 0) if dd != d]
    return rem[0], rem[1]


class FaceKernels:
    """Value/gradient face traces and their adjoints for one kernel."""

    def __init__(self, kernel: TensorProductKernel) -> None:
        self.kern = kernel

    # -- evaluation ------------------------------------------------------
    def nodal_traces(self, u_cells: np.ndarray, face: int):
        """Nodal face value and 3-component reference gradient.

        ``u_cells``: (F, ..., n, n, n) -> val (F, ..., n, n) and
        grad (F, ..., 3, n, n) with the component axis indexing the
        *cell's own* reference dimensions.
        """
        kern = self.kern
        t_val = kern.face_nodal_trace(u_cells, face)
        t_nd = kern.face_nodal_normal_derivative(u_cells, face)
        d = face // 2
        a_dim, b_dim = tangential_dims(face)
        D = kern.nodal_diff
        g = [None, None, None]
        g[d] = t_nd
        g[a_dim] = apply_1d_2d(D, t_val, 1)
        g[b_dim] = apply_1d_2d(D, t_val, 0)
        return t_val, np.stack(g, axis=-3)

    def to_quad(
        self,
        t: np.ndarray,
        orientation: Orientation | None = None,
        subface: tuple[int, int] | None = None,
    ) -> np.ndarray:
        """Nodal face data (own frame) -> minus-frame quadrature values."""
        if orientation is not None and not orientation.is_identity:
            t = orient_face_array(t, orientation)
        return self.kern.face_nodal_to_quad(t, subface)

    def eval_side(
        self,
        u_cells: np.ndarray,
        face: int,
        orientation: Orientation | None = None,
        subface: tuple[int, int] | None = None,
    ):
        """Evaluate one side of a face batch at the minus quadrature points.

        Returns (values (F, ..., q, q), ref_grad (F, ..., 3, q, q)).
        """
        t_val, t_grad = self.nodal_traces(u_cells, face)
        return (
            self.to_quad(t_val, orientation, subface),
            self.to_quad(t_grad, orientation, subface),
        )

    # -- integration (adjoints) -------------------------------------------
    def from_quad(
        self,
        q: np.ndarray,
        orientation: Orientation | None = None,
        subface: tuple[int, int] | None = None,
    ) -> np.ndarray:
        """Adjoint of :meth:`to_quad`."""
        t = self.kern.face_quad_to_nodal_t(q, subface)
        if orientation is not None and not orientation.is_identity:
            t = orient_to_plus(t, orientation)
        return t

    def integrate_side(
        self,
        face: int,
        q_val: np.ndarray | None,
        q_grad: np.ndarray | None,
        orientation: Orientation | None = None,
        subface: tuple[int, int] | None = None,
    ) -> np.ndarray:
        """Adjoint of :meth:`eval_side`: accumulate quadrature-space
        coefficients of test-function values (``q_val``) and reference
        gradients (``q_grad``, own-frame components) into cell tensors."""
        kern = self.kern
        d = face // 2
        a_dim, b_dim = tangential_dims(face)
        D = kern.nodal_diff
        nodal_plane = None
        normal_part = None
        if q_val is not None:
            nodal_plane = self.from_quad(q_val, orientation, subface)
        if q_grad is not None:
            g = self.from_quad(q_grad, orientation, subface)
            ga = g[..., a_dim, :, :]
            gb = g[..., b_dim, :, :]
            gd = g[..., d, :, :]
            tang = apply_1d_2d(D.T, ga, 1) + apply_1d_2d(D.T, gb, 0)
            nodal_plane = tang if nodal_plane is None else nodal_plane + tang
            normal_part = gd
        out = kern.expand_nodal_trace(nodal_plane, face)
        if normal_part is not None:
            out = out + kern.expand_nodal_normal_derivative(normal_part, face)
        return out


def physical_gradient(jinv_t: np.ndarray, ref_grad: np.ndarray) -> np.ndarray:
    """Apply J^{-T} per quadrature point.

    jinv_t: (F, 3, 3, q, q); ref_grad: (F, 3, q, q) for scalar fields or
    (F, C, 3, q, q) for vector fields (component axis at -4).
    """
    if ref_grad.ndim == 4:
        return np.einsum("fijab,fjab->fiab", jinv_t, ref_grad, optimize=True)
    if ref_grad.ndim == 5:
        return np.einsum("fijab,fcjab->fciab", jinv_t, ref_grad, optimize=True)
    raise ValueError(f"unsupported ref_grad rank {ref_grad.ndim}")


class MatrixFreeOperator:
    """Minimal linear-operator interface shared by all operators."""

    dtype = np.float64

    def _count_vmult(self) -> None:
        """Telemetry: count one application of this operator under
        ``vmult.<ClassName>``; a single attribute check when disabled."""
        if TRACER.enabled:
            TRACER.incr("vmult." + type(self).__name__)

    @property
    def n_dofs(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def vmult(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def diagonal(self) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.vmult(x)
