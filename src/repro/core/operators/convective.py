"""Nonlinear convective operator ``div(u (x) u)`` with the local
Lax–Friedrichs flux (Section 2.3), evaluated explicitly in the splitting
scheme (Eq. (1)).

Over-integration: aliasing from the quadratic nonlinearity is tamed by
evaluating on ``k + 2`` Gauss points per direction (Fehn et al. 2018),
so the operator carries its own :class:`GeometryField` at the higher
quadrature.

Flux: ``F*(u_m, u_p) = {u (x) u} n + lambda/2 (u_m - u_p)`` with
``lambda = max(|u_m . n|, |u_p . n|)``.  Boundary data: mirrored
``u_p = -u_m + 2 g`` on velocity-Dirichlet boundaries (energy-stable),
``u_p = u_m`` on pressure/outflow boundaries.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

from ...mesh.connectivity import MeshConnectivity
from ...mesh.mapping import GeometryField
from ..dof_handler import DGDofHandler
from .base import FaceKernels, MatrixFreeOperator

if TYPE_CHECKING:  # pragma: no cover - avoid circular import at runtime
    from ...ns.bc import BoundaryConditions


class ConvectiveOperator(MatrixFreeOperator):
    def __init__(
        self,
        dof_u: DGDofHandler,
        geometry_over: GeometryField,
        connectivity: MeshConnectivity,
        bcs: "BoundaryConditions",
    ) -> None:
        if geometry_over.kernel.n_q_points < dof_u.degree + 2:
            raise ValueError("convective term expects over-integration (>= k+2 points)")
        self.dof = dof_u
        self.kern = geometry_over.kernel
        self.fk = FaceKernels(self.kern)
        self.geo = geometry_over
        self.conn = connectivity
        self.bcs = bcs
        self.cell_metrics = geometry_over.cell_metrics()
        self.face_metrics, self.bdry_metrics = geometry_over.all_face_metrics(connectivity)
        present = {b.boundary_id for b in connectivity.boundary}
        self.velocity_dirichlet = set(bcs.velocity_dirichlet_ids(present))

    @property
    def n_dofs(self) -> int:
        return self.dof.n_dofs

    def _face_vals(self, u, batch, ensemble: bool = False):
        kern = self.kern
        um = u[:, batch.cells_m] if ensemble else u[batch.cells_m]
        up = u[:, batch.cells_p] if ensemble else u[batch.cells_p]
        tm = kern.face_nodal_trace(um, batch.face_m)
        tp = kern.face_nodal_trace(up, batch.face_p)
        vm = self.fk.to_quad(tm)
        vp = self.fk.to_quad(tp, batch.orientation, batch.subface)
        return vm, vp

    def _lax_friedrichs(self, vm, vp, normal):
        """Numerical flux (F, 3, a, b) in the minus normal direction
        (one extra leading axis for ensemble-stacked traces)."""
        sub = "fiab,efiab->efab" if vm.ndim == 5 else "fiab,fiab->fab"
        un_m = self._contract(sub, normal, vm)
        un_p = self._contract(sub, normal, vp)
        lam = np.maximum(np.abs(un_m), np.abs(un_p))
        central = 0.5 * (
            vm * un_m[..., None, :, :] + vp * un_p[..., None, :, :]
        )
        return central + 0.5 * lam[..., None, :, :] * (vm - vp)

    def apply(self, u_flat: np.ndarray, t: float = 0.0) -> np.ndarray:
        if u_flat.ndim == 2:
            # ensemble-stacked states; E=1 keeps the unbatched bitstream
            if u_flat.shape[0] == 1:
                return self._apply_impl(u_flat[0], t, ensemble=False)[None]
            return self._apply_impl(u_flat, t, ensemble=True)
        return self._apply_impl(u_flat, t, ensemble=False)

    def _apply_impl(self, u_flat: np.ndarray, t: float, ensemble: bool) -> np.ndarray:
        u = self.dof.cell_view(u_flat)
        kern = self.kern
        cm = self.cell_metrics
        ax = 1 if ensemble else 0
        # cell term: -int (u (x) u) : grad(v)
        uq = kern.values(u)  # (N, 3, q, q, q) / (E, N, 3, q, q, q)
        # F[i, j] = u_i u_j; ref-grad coefficient of v_i:
        #   rg_i[l] = -sum_j F[i,j] jinv_t[j,l] * jxw
        if ensemble:
            Fu = self._contract("ecizyx,ecjzyx->ecijzyx", uq, uq)
            rg = -self._contract("ecijzyx,cjlzyx->ecilzyx", Fu, cm.jinv_t)
        else:
            Fu = self._contract("cizyx,cjzyx->cijzyx", uq, uq)
            rg = -self._contract("cijzyx,cjlzyx->cilzyx", Fu, cm.jinv_t)
        rg = rg * cm.jxw[:, None, None]
        out = np.stack(
            [kern.integrate_gradients(rg[..., i, :, :, :, :]) for i in range(3)],
            axis=-4,
        )
        # interior faces
        for ib, (batch, fm) in enumerate(zip(self.conn.interior, self.face_metrics)):
            vm, vp = self._face_vals(u, batch, ensemble)
            flux = self._lax_friedrichs(vm, vp, fm.normal) * fm.jxw[:, None]
            contrib_m = self.fk.integrate_side(batch.face_m, flux, None)
            contrib_p = self.fk.integrate_side(
                batch.face_p, -flux, None, batch.orientation, batch.subface
            )
            self._scatter_add(out, batch.cells_m, contrib_m, ("int", ib, "m"), axis=ax)
            self._scatter_add(out, batch.cells_p, contrib_p, ("int", ib, "p"), axis=ax)
        # boundary faces
        for ib, (batch, fm) in enumerate(zip(self.conn.boundary, self.bdry_metrics)):
            uc = u[:, batch.cells] if ensemble else u[batch.cells]
            tm = self.kern.face_nodal_trace(uc, batch.face)
            vm = self.fk.to_quad(tm)
            if batch.boundary_id in self.velocity_dirichlet:
                pts = fm.points
                g = np.asarray(
                    self.bcs.velocity_value(
                        batch.boundary_id, pts[:, 0], pts[:, 1], pts[:, 2], t
                    ),
                    dtype=vm.dtype,
                )
                # component axis behind the face axis: (.., 3, F, a, b)
                # -> (.., F, 3, a, b); member-independent data broadcasts
                g = np.moveaxis(g, -4, -3)
                vp = -vm + 2.0 * g
            else:
                vp = vm
            flux = self._lax_friedrichs(vm, vp, fm.normal) * fm.jxw[:, None]
            contrib = self.fk.integrate_side(batch.face, flux, None)
            self._scatter_add(out, batch.cells, contrib, ("bdy", ib), axis=ax)
        return self.dof.flat(out)

    def vmult(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - nonlinear
        raise NotImplementedError("convective operator is nonlinear; use apply()")

    def diagonal(self) -> np.ndarray:  # pragma: no cover - explicit operator
        raise NotImplementedError

    def max_reference_velocity(self, u_flat: np.ndarray):
        """max_q |J^{-1} u| over the mesh — the inverse local transport
        time scale entering the adaptive CFL condition (Eq. (6)).

        Ensemble-stacked input ``(E, ndof)`` returns a per-member
        ``(E,)`` array (members share dt; the per-member CFL that this
        feeds is recorded in the step statistics).
        """
        u = self.dof.cell_view(u_flat)
        uq = self.kern.values(u)
        cm = self.cell_metrics
        # J^{-1} u: ref-space velocity = (jinv)[l,i] u_i; jinv_t[i,l] = jinv[l,i]
        if u_flat.ndim == 2:
            if u_flat.shape[0] == 1:  # keep the unbatched bitstream
                return np.array([self.max_reference_velocity(u_flat[0])])
            uref = self._contract("cilzyx,ecizyx->eclzyx", cm.jinv_t, uq)
            speed = np.sqrt((uref**2).sum(axis=2))
            return speed.reshape(speed.shape[0], -1).max(axis=1)
        uref = self._contract("cilzyx,cizyx->clzyx", cm.jinv_t, uq)
        return float(np.sqrt((uref**2).sum(axis=1)).max())
