"""Mixed-space pressure gradient G and velocity divergence D operators.

Both use **central numerical fluxes** (Section 2.3) and couple the
velocity space of degree ``k`` with the pressure space of degree
``k - 1``; both spaces are integrated at the velocity quadrature (k+1
Gauss points), which is exact for all terms.

Boundary treatment (dual splitting, Fehn et al. 2017):

* Divergence flux on velocity-Dirichlet boundaries uses the *prescribed*
  velocity ``g`` — this is how the ventilation forcing enters the
  pressure Poisson right-hand side; elsewhere the interior trace.
* Gradient flux on pressure-Dirichlet boundaries uses the prescribed
  pressure ``g_p`` (PEEP + dp at the trachea, windkessel pressures at
  terminal airways); elsewhere the interior trace.

With matching homogeneous data the two operators are negative
transposes of each other, which tests assert.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

from ...mesh.connectivity import MeshConnectivity
from ...mesh.mapping import GeometryField
from ..dof_handler import DGDofHandler
from ..sum_factorization import TensorProductKernel
from .base import FaceKernels, MatrixFreeOperator

if TYPE_CHECKING:  # pragma: no cover - avoid circular import at runtime
    from ...ns.bc import BoundaryConditions


class _MixedSpaceOperator(MatrixFreeOperator):
    def __init__(
        self,
        dof_u: DGDofHandler,
        dof_p: DGDofHandler,
        geometry: GeometryField,
        connectivity: MeshConnectivity,
        bcs: "BoundaryConditions",
    ) -> None:
        if dof_u.degree != geometry.degree:
            raise ValueError("geometry must be built at the velocity degree")
        if dof_p.degree != dof_u.degree - 1:
            raise ValueError("pressure degree must be velocity degree - 1")
        self.dof_u = dof_u
        self.dof_p = dof_p
        self.kern_u = geometry.kernel
        self.kern_p = TensorProductKernel(dof_p.degree, geometry.kernel.n_q_points)
        self.fk_u = FaceKernels(self.kern_u)
        self.fk_p = FaceKernels(self.kern_p)
        self.geo = geometry
        self.conn = connectivity
        self.bcs = bcs
        self.cell_metrics = geometry.cell_metrics()
        self.face_metrics, self.bdry_metrics = geometry.all_face_metrics(connectivity)
        present = {b.boundary_id for b in connectivity.boundary}
        self.velocity_dirichlet = set(bcs.velocity_dirichlet_ids(present))
        self.pressure_dirichlet = set(bcs.pressure_dirichlet_ids(present))

    def _face_values(self, fk, cells_view, batch, ensemble: bool = False):
        """Value traces of both sides at minus-frame quad points."""
        kern = fk.kern
        cm = cells_view[:, batch.cells_m] if ensemble else cells_view[batch.cells_m]
        cp = cells_view[:, batch.cells_p] if ensemble else cells_view[batch.cells_p]
        tm = kern.face_nodal_trace(cm, batch.face_m)
        tp = kern.face_nodal_trace(cp, batch.face_p)
        vm = fk.to_quad(tm)
        vp = fk.to_quad(tp, batch.orientation, batch.subface)
        return vm, vp


class DivergenceOperator(_MixedSpaceOperator):
    """q -> (div u, q): maps a velocity vector to a pressure-space vector."""

    @property
    def n_dofs(self) -> int:
        return self.dof_p.n_dofs

    def apply(
        self,
        u_flat: np.ndarray,
        t: float = 0.0,
        interior_trace_everywhere: bool = False,
    ) -> np.ndarray:
        """``interior_trace_everywhere=True`` evaluates the boundary flux
        from the field's own trace — the form entering the pressure
        Poisson right-hand side of the dual splitting, where all boundary
        physics is carried by the consistent pressure Neumann data."""
        if u_flat.ndim == 2:
            # ensemble-stacked states; E=1 keeps the unbatched bitstream
            if u_flat.shape[0] == 1:
                return self._apply_impl(
                    u_flat[0], t, interior_trace_everywhere, ensemble=False
                )[None]
            return self._apply_impl(
                u_flat, t, interior_trace_everywhere, ensemble=True
            )
        return self._apply_impl(u_flat, t, interior_trace_everywhere, ensemble=False)

    def _apply_impl(
        self,
        u_flat: np.ndarray,
        t: float,
        interior_trace_everywhere: bool,
        ensemble: bool,
    ) -> np.ndarray:
        u = self.dof_u.cell_view(u_flat)  # (N, 3, n, n, n)
        kern_u, kern_p = self.kern_u, self.kern_p
        cm = self.cell_metrics
        ax = 1 if ensemble else 0
        # cell term: -int grad(q) . u
        uq = kern_u.values(u)  # (N, 3, q, q, q)
        if ensemble:
            rg = -self._contract("cilzyx,ecizyx->eclzyx", cm.jinv_t, uq)
        else:
            rg = -self._contract("cilzyx,cizyx->clzyx", cm.jinv_t, uq)
        out = kern_p.integrate_gradients(rg * cm.jxw[:, None])
        # interior faces: central flux
        for ib, (batch, fm) in enumerate(zip(self.conn.interior, self.face_metrics)):
            um, up = self._face_values(self.fk_u, u, batch, ensemble)
            sub = "fiab,efiab->efab" if ensemble else "fiab,fiab->fab"
            un = self._contract(sub, fm.normal, 0.5 * (um + up))
            w = fm.jxw
            rv_m = un * w
            contrib_m = self.fk_p.integrate_side(batch.face_m, rv_m, None)
            contrib_p = self.fk_p.integrate_side(
                batch.face_p, -rv_m, None, batch.orientation, batch.subface
            )
            self._scatter_add(out, batch.cells_m, contrib_m, ("int", ib, "m"), axis=ax)
            self._scatter_add(out, batch.cells_p, contrib_p, ("int", ib, "p"), axis=ax)
        # boundary faces
        for ib, (batch, fm) in enumerate(zip(self.conn.boundary, self.bdry_metrics)):
            if batch.boundary_id in self.velocity_dirichlet and not interior_trace_everywhere:
                pts = fm.points
                g = np.asarray(
                    self.bcs.velocity_value(
                        batch.boundary_id, pts[:, 0], pts[:, 1], pts[:, 2], t
                    ),
                    dtype=u.dtype,
                )
                # (.., 3, F, a, b) -> (.., F, 3, a, b)
                ustar = np.moveaxis(g, -4, -3)
                if ensemble and ustar.ndim == 4:
                    # member-independent data: shared across the batch
                    ustar = np.broadcast_to(
                        ustar, u.shape[:1] + ustar.shape
                    )
            else:
                uc = u[:, batch.cells] if ensemble else u[batch.cells]
                tm = self.kern_u.face_nodal_trace(uc, batch.face)
                ustar = self.fk_u.to_quad(tm)
            sub = "fiab,efiab->efab" if ensemble else "fiab,fiab->fab"
            un = self._contract(sub, fm.normal, ustar)
            contrib = self.fk_p.integrate_side(batch.face, un * fm.jxw, None)
            self._scatter_add(out, batch.cells, contrib, ("bdy", ib), axis=ax)
        return self.dof_p.flat(out)

    def vmult(self, u_flat: np.ndarray) -> np.ndarray:
        """Homogeneous-data (linear) application: velocity-Dirichlet
        boundary data treated as zero."""
        from ...ns.bc import BoundaryConditions, VelocityDirichlet

        saved = self.bcs
        self.bcs = BoundaryConditions(
            {bid: VelocityDirichlet.no_slip() for bid in self.velocity_dirichlet}
        )
        try:
            return self.apply(u_flat)
        finally:
            self.bcs = saved


class GradientOperator(_MixedSpaceOperator):
    """v -> (grad p, v): maps a pressure vector to a velocity-space vector."""

    @property
    def n_dofs(self) -> int:
        return self.dof_u.n_dofs

    def apply(self, p_flat: np.ndarray, t: float = 0.0) -> np.ndarray:
        if p_flat.ndim == 2:
            # ensemble-stacked states; E=1 keeps the unbatched bitstream
            if p_flat.shape[0] == 1:
                return self._apply_impl(p_flat[0], t, ensemble=False)[None]
            return self._apply_impl(p_flat, t, ensemble=True)
        return self._apply_impl(p_flat, t, ensemble=False)

    def _apply_impl(self, p_flat: np.ndarray, t: float, ensemble: bool) -> np.ndarray:
        p = self.dof_p.cell_view(p_flat)  # (N, n_p, n_p, n_p)
        kern_u, kern_p = self.kern_u, self.kern_p
        cm = self.cell_metrics
        ax = 1 if ensemble else 0
        # cell term: -int p div(v) -> ref-grad coefficients of each v_i
        pq = kern_p.values(p)  # (N, q, q, q)
        coeff = -(pq * cm.jxw)
        if ensemble:
            rg = self._contract("cilzyx,eczyx->ecilzyx", cm.jinv_t, coeff)
        else:
            rg = self._contract("cilzyx,czyx->cilzyx", cm.jinv_t, coeff)
        out = np.stack(
            [kern_u.integrate_gradients(rg[..., i, :, :, :, :]) for i in range(3)],
            axis=-4,
        )
        # interior faces: central flux {p} n . [v]
        for ib, (batch, fm) in enumerate(zip(self.conn.interior, self.face_metrics)):
            pm, pp = self._face_values(self.fk_p, p, batch, ensemble)
            pavg = 0.5 * (pm + pp)
            w = fm.jxw
            rv_m = (pavg * w)[..., None, :, :] * fm.normal  # (F, 3, a, b)
            contrib_m = self.fk_u.integrate_side(batch.face_m, rv_m, None)
            contrib_p = self.fk_u.integrate_side(
                batch.face_p, -rv_m, None, batch.orientation, batch.subface
            )
            self._scatter_add(out, batch.cells_m, contrib_m, ("int", ib, "m"), axis=ax)
            self._scatter_add(out, batch.cells_p, contrib_p, ("int", ib, "p"), axis=ax)
        # boundary faces
        for ib, (batch, fm) in enumerate(zip(self.conn.boundary, self.bdry_metrics)):
            pc = p[:, batch.cells] if ensemble else p[batch.cells]
            tm = self.kern_p.face_nodal_trace(pc, batch.face)
            pm = self.fk_p.to_quad(tm)
            if batch.boundary_id in self.pressure_dirichlet:
                pts = fm.points
                pstar = np.asarray(
                    self.bcs.pressure_value(
                        batch.boundary_id, pts[:, 0], pts[:, 1], pts[:, 2], t
                    ),
                    dtype=pm.dtype,
                )
                if ensemble and pstar.ndim == 3:
                    # member-independent data: shared across the batch
                    pstar = np.broadcast_to(pstar, p.shape[:1] + pstar.shape)
            else:
                pstar = pm
            rv = (pstar * fm.jxw)[..., None, :, :] * fm.normal
            contrib = self.fk_u.integrate_side(batch.face, rv, None)
            self._scatter_add(out, batch.cells, contrib, ("bdy", ib), axis=ax)
        return self.dof_u.flat(out)

    def vmult(self, p_flat: np.ndarray) -> np.ndarray:
        """Homogeneous-data application (pressure-Dirichlet data = 0)."""
        from ...ns.bc import BoundaryConditions, PressureDirichlet

        saved = self.bcs
        self.bcs = BoundaryConditions(
            {bid: PressureDirichlet(0.0) for bid in self.pressure_dirichlet}
        )
        try:
            return self.apply(p_flat)
        finally:
            self.bcs = saved
