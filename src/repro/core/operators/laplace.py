"""Matrix-free Laplacians: symmetric interior penalty DG and continuous FE.

``DGLaplaceOperator`` realizes Eq. (7) of the paper — the operator whose
throughput is benchmarked in Figures 6-8 and which (negated) forms the
pressure Poisson matrix of the splitting scheme.  ``CGLaplaceOperator``
is the conforming auxiliary-space operator of the two finest multigrid
levels (Section 3.4), including hanging-node constraints.

Weak Dirichlet data (SIP/Nitsche) and Neumann data enter through
:meth:`DGLaplaceOperator.assemble_rhs`.

Execution plans (see :mod:`repro.core.plans`): every instance owns a
lazily built cache of scatter plans, einsum contraction plans, and
workspace buffers, threaded through the whole hot path.  Running under
``repro.core.plans.plan_execution(use_plans=False)`` restores the legacy
execution
(``np.add.at`` scatters, per-call einsum path searches, fresh
temporaries and the unit-vector diagonal) — the reference the
equivalence tests and the ``bench_vmult_gate`` before/after numbers are
measured against.
"""

from __future__ import annotations

import numpy as np

from ...mesh.connectivity import MeshConnectivity
from ...mesh.mapping import GeometryField
from ..dof_handler import CGDofHandler, DGDofHandler
from ..plans import contract
from .base import FaceKernels, MatrixFreeOperator, physical_gradient, tangential_dims


class DGLaplaceOperator(MatrixFreeOperator):
    """Symmetric interior penalty discretization of ``-div(grad u)``.

    Parameters
    ----------
    dof, geometry, connectivity:
        Space, metric terms, and face batches of the same forest.
    dirichlet_ids:
        Boundary indicators with (weak) Dirichlet conditions; all other
        boundary faces are natural (Neumann).
    penalty_factor:
        Multiplies the standard SIP penalty ``(k+1)^2 A_f / V``.  The
        default 2.5 keeps the bilinear form coercive on the strongly
        sheared cells of tube-junction meshes (factor 1 suffices on
        affine meshes but loses definiteness at the lung bifurcations).
    """

    def __init__(
        self,
        dof: DGDofHandler,
        geometry: GeometryField,
        connectivity: MeshConnectivity,
        dirichlet_ids: tuple[int, ...] = (),
        penalty_factor: float = 2.5,
    ) -> None:
        self.dof = dof
        self.geo = geometry
        self.conn = connectivity
        self.kern = geometry.kernel
        self.fk = FaceKernels(self.kern)
        self.dirichlet_ids = tuple(dirichlet_ids)
        self.cell_metrics = geometry.cell_metrics()
        self.face_metrics, self.bdry_metrics = geometry.all_face_metrics(connectivity)
        k = dof.degree
        self.tau = [penalty_factor * (k + 1) ** 2 * fm.penalty for fm in self.face_metrics]
        self.tau_b = [penalty_factor * (k + 1) ** 2 * fm.penalty for fm in self.bdry_metrics]

    # ------------------------------------------------------------------
    @property
    def n_dofs(self) -> int:
        return self.dof.n_dofs

    def _build_work_model(self) -> dict:
        """Analytic Flop count (Section 5.1 / Figure 7) and ideal
        transfer model of one SIP mat-vec on this mesh."""
        from ...perf.flops import laplace_flops
        from ...perf.memory import laplace_transfer

        fl = laplace_flops(
            self.dof.degree,
            self.kern.n_q_points,
            even_odd=self.kern.use_even_odd,
            collocation=self.kern.use_collocation,
        )
        tr = laplace_transfer(self.dof.degree, self.kern.n_q_points,
                              precision_bytes=self.precision_bytes)
        return {
            "flops": float(
                fl.matvec_total(
                    self.dof.n_cells,
                    self.conn.n_interior_faces,
                    self.conn.n_boundary_faces,
                )
            ),
            "bytes": float(tr.total_bytes(self.dof.n_cells)),
            "dofs": float(self.n_dofs),
        }

    def _cell_term(self, u: np.ndarray, ensemble: bool = False) -> np.ndarray:
        sub = "cijzyx,ecjzyx->ecizyx" if ensemble else "cijzyx,cjzyx->cizyx"
        if not self.use_plans:
            g = self.kern.gradients(u)
            Dg = np.einsum(sub, self.cell_metrics.laplace_d, g, optimize=True)
            return self.kern.integrate_gradients(Dg)
        ws = self.workspace()
        g = self.kern.gradients(u, ws)
        D = self.cell_metrics.laplace_d
        Dg = contract(
            sub, D, g,
            out=ws.take("lap.Dg", g.shape, np.result_type(D.dtype, g.dtype)),
        )
        # fresh output: the result escapes to the caller, workspace
        # buffers only ever hold intermediates
        out = np.empty(u.shape, dtype=Dg.dtype)
        return self.kern.integrate_gradients(Dg, ws, out=out)

    def _face_flux(self, fm, tau, vm, Gm, vp, Gp):
        """SIP numerical flux in quadrature space (minus frame).

        Returns the value/physical-gradient coefficient fields for both
        test sides: (rv_m, rgphys_m, rv_p, rgphys_p).  The gradient
        coefficient is the *same* field ``-0.5 [u] w n`` on both sides,
        so one array is computed and returned twice (callers only read).
        Ensemble-stacked traces (rank 5 gradients) fold into the same
        contractions with one extra leading axis.
        """
        n = fm.normal
        jump = vm - vp
        sub = "fiab,efiab->efab" if Gm.ndim == 5 else "fiab,fiab->fab"
        dn_m = self._contract(sub, n, Gm)
        dn_p = self._contract(sub, n, Gp)
        avg_dn = 0.5 * (dn_m + dn_p)
        w = fm.jxw
        rv_m = (-avg_dn + tau[:, None, None] * jump) * w
        rv_p = (avg_dn - tau[:, None, None] * jump) * w
        rg = ((-0.5) * jump * w)[..., None, :, :] * n
        return rv_m, rg, rv_p, rg

    def _to_ref_grad(self, jinv_t, rg_phys):
        """Physical-gradient test coefficients -> reference components:
        contribution r.(J^{-T} grad v) = (J^{-1} r).grad v."""
        if rg_phys.ndim == 5:
            return self._contract("fijab,efiab->efjab", jinv_t, rg_phys)
        return self._contract("fijab,fiab->fjab", jinv_t, rg_phys)

    def vmult(self, x: np.ndarray) -> np.ndarray:
        if x.ndim == 2:
            # ensemble-stacked states (E, ndof); E=1 runs the unbatched
            # path so it stays bitwise-identical to a flat vmult
            if x.shape[0] == 1:
                return self._vmult_impl(x[0], ensemble=False)[None]
            return self._vmult_impl(x, ensemble=True)
        return self._vmult_impl(x, ensemble=False)

    def _vmult_impl(self, x: np.ndarray, ensemble: bool) -> np.ndarray:
        u = self.dof.cell_view(x)
        out = self._cell_term(u, ensemble)
        fk = self.fk
        ws = self.workspace() if self.use_plans else None
        ax = 1 if ensemble else 0
        for ib, (batch, fm, tau) in enumerate(
            zip(self.conn.interior, self.face_metrics, self.tau)
        ):
            um = u[:, batch.cells_m] if ensemble else u[batch.cells_m]
            up = u[:, batch.cells_p] if ensemble else u[batch.cells_p]
            vm, gm = fk.eval_side(um, batch.face_m, ws=ws)
            vp, gp = fk.eval_side(
                up, batch.face_p, batch.orientation, batch.subface, ws=ws
            )
            Gm = physical_gradient(
                fm.minus.jinv_t, gm, planned=self.use_plans, ensemble=ensemble
            )
            Gp = physical_gradient(
                fm.plus.jinv_t, gp, planned=self.use_plans, ensemble=ensemble
            )
            rv_m, rg_m, rv_p, rg_p = self._face_flux(fm, tau, vm, Gm, vp, Gp)
            contrib_m = fk.integrate_side(
                batch.face_m, rv_m, self._to_ref_grad(fm.minus.jinv_t_c, rg_m)
            )
            contrib_p = fk.integrate_side(
                batch.face_p,
                rv_p,
                self._to_ref_grad(fm.plus.jinv_t_c, rg_p),
                batch.orientation,
                batch.subface,
            )
            self._scatter_add(out, batch.cells_m, contrib_m, ("int", ib, "m"), axis=ax)
            self._scatter_add(out, batch.cells_p, contrib_p, ("int", ib, "p"), axis=ax)
        for ib, (batch, fm, tau) in enumerate(
            zip(self.conn.boundary, self.bdry_metrics, self.tau_b)
        ):
            if batch.boundary_id not in self.dirichlet_ids:
                continue  # natural (Neumann) boundary: no operator term
            um = u[:, batch.cells] if ensemble else u[batch.cells]
            vm, gm = fk.eval_side(um, batch.face, ws=ws)
            Gm = physical_gradient(
                fm.minus.jinv_t, gm, planned=self.use_plans, ensemble=ensemble
            )
            n = fm.normal
            sub = "fiab,efiab->efab" if ensemble else "fiab,fiab->fab"
            dn_m = self._contract(sub, n, Gm)
            w = fm.jxw
            rv = (-dn_m + 2.0 * tau[:, None, None] * vm) * w
            rg_phys = (-vm * w)[..., None, :, :] * n
            contrib = fk.integrate_side(
                batch.face, rv, self._to_ref_grad(fm.minus.jinv_t_c, rg_phys)
            )
            self._scatter_add(out, batch.cells, contrib, ("bdy", ib), axis=ax)
        return self.dof.flat(out)

    # ------------------------------------------------------------------
    def assemble_rhs(
        self,
        f=None,
        dirichlet=None,
        neumann=None,
    ) -> np.ndarray:
        """Right-hand side for ``A u = b``: volume source ``f(x, y, z)``,
        weak Dirichlet data ``dirichlet(x, y, z)`` on ``dirichlet_ids``
        faces (or a dict mapping boundary id to a callable), Neumann data
        ``neumann(x, y, z)`` (= grad u . n) elsewhere.

        Boundary callables may return ensemble-stacked ``(E, F, a, b)``
        data (per-member windkessel pressures, say); the assembled
        vector is then ``(E, ndof)``, with unbatched data broadcast
        across the members.  ``E = 1`` keeps the unbatched bitstream.
        """
        # evaluate the boundary data first: an ensemble-stacked return
        # from any callable promotes the whole right-hand side to (E, .)
        face_data: list[tuple] = []
        n_members: int | None = None
        for ib, (batch, fm, tau) in enumerate(
            zip(self.conn.boundary, self.bdry_metrics, self.tau_b)
        ):
            p = fm.points
            if batch.boundary_id in self.dirichlet_ids:
                if dirichlet is None:
                    continue
                g_fn = (
                    dirichlet.get(batch.boundary_id)
                    if isinstance(dirichlet, dict)
                    else dirichlet
                )
                if g_fn is None:
                    continue
                g = np.asarray(g_fn(p[:, 0], p[:, 1], p[:, 2]))
                kind = "dirichlet"
            else:
                if neumann is None:
                    continue
                g = np.asarray(neumann(p[:, 0], p[:, 1], p[:, 2]))
                kind = "neumann"
            if g.ndim == 4:
                if n_members is not None and g.shape[0] != n_members:
                    raise ValueError(
                        "inconsistent ensemble sizes in boundary data: "
                        f"{g.shape[0]} vs {n_members}"
                    )
                n_members = g.shape[0]
            face_data.append((ib, batch, fm, tau, kind, g))
        if n_members == 1:
            # E = 1 keeps the unbatched bitstream: assemble flat, re-wrap
            face_data = [
                (ib, b, fm, tau, kind, g[0] if g.ndim == 4 else g)
                for ib, b, fm, tau, kind, g in face_data
            ]
        ensemble = n_members is not None and n_members > 1
        lead = (n_members,) if ensemble else ()
        ax = 1 if ensemble else 0
        out = np.zeros(lead + (self.dof.n_cells,) + (self.kern.n_dofs_1d,) * 3)
        if f is not None:
            pts = self.cell_metrics.points
            fv = f(pts[:, 0], pts[:, 1], pts[:, 2]) * self.cell_metrics.jxw
            out += self.kern.integrate_values(fv)
        fk = self.fk
        for ib, batch, fm, tau, kind, g in face_data:
            if ensemble and g.ndim == 3:
                # member-independent data: shared across the batch
                g = np.broadcast_to(g, lead + g.shape)
            if kind == "dirichlet":
                w = fm.jxw
                rv = 2.0 * tau[:, None, None] * g * w
                rg_phys = (-g * w)[..., None, :, :] * fm.normal
                contrib = fk.integrate_side(
                    batch.face, rv, self._to_ref_grad(fm.minus.jinv_t_c, rg_phys)
                )
            else:
                contrib = fk.integrate_side(batch.face, g * fm.jxw, None)
            self._scatter_add(out, batch.cells, contrib, ("bdy", ib), axis=ax)
        flat = self.dof.flat(out)
        if n_members == 1:
            return flat[None]
        return flat

    # ------------------------------------------------------------------
    def diagonal(self) -> np.ndarray:
        """Exact operator diagonal.

        Planned path: closed-form tensor evaluation — the cell part by
        the squared-1D-factor einsum trick (as
        :meth:`CGLaplaceOperator.diagonal`), the face self-couplings by
        precomputed trace-product tensors per (face, orientation,
        subface) signature — a handful of einsums instead of the
        ``(k+1)^3`` full operator applications of
        :meth:`diagonal_reference`."""
        if not self.use_plans:
            return self.diagonal_reference()
        diag = self._cell_diagonal()
        self._add_face_diagonal(diag)
        return self.dof.flat(diag)

    def diagonal_reference(self) -> np.ndarray:
        """Legacy unit-vector diagonal: apply the cell term and the
        cell-local part of the face terms to every local basis vector.
        Kept as the reference implementation for the fast path."""
        n = self.kern.n_dofs_1d
        N = self.dof.n_cells
        diag = np.zeros((N, n, n, n))
        for iz in range(n):
            for iy in range(n):
                for ix in range(n):
                    e = np.zeros((N, n, n, n))
                    e[:, iz, iy, ix] = 1.0
                    y = self._cell_term(e)
                    y = y + self._face_self_term(e)
                    diag[:, iz, iy, ix] = y[:, iz, iy, ix]
        return self.dof.flat(diag)

    def _cell_diagonal(self) -> np.ndarray:
        """diag of the cell term via squared 1D shape-function factors."""
        kern = self.kern
        Ng = kern.shape.interp
        Dg = kern.shape.grad
        D = self.cell_metrics.laplace_d  # (c, i, j, q, q, q)
        ldiag = np.zeros((self.dof.n_cells,) + (kern.n_dofs_1d,) * 3)
        for a in range(3):
            for b in range(3):
                fx = (Dg if a == 0 else Ng) * (Dg if b == 0 else Ng)
                fy = (Dg if a == 1 else Ng) * (Dg if b == 1 else Ng)
                fz = (Dg if a == 2 else Ng) * (Dg if b == 2 else Ng)
                ldiag += contract("czyx,zZ,yY,xX->cZYX", D[:, a, b], fz, fy, fx)
        return ldiag

    def _face_trace_products(self, face, orientation, subface):
        """Precompute, per (face, orientation, subface) signature, the
        quadrature products of own-frame nodal trace sheets:

        ``RR[qa,qb,ja,jb]``  = phi_{ja,jb}(q)^2,
        ``RRa[qa,qb,ja,jb]`` = phi_{ja,jb}(q) (d_a phi_{ja,jb})(q),
        ``RRb`` analogously for the second tangential direction —
        with the quadrature axes in the *minus* frame (orientation and
        2:1 subface interpolation included), built numerically by pushing
        the n^2 unit sheets through the face-evaluation kernel."""
        code = None if orientation is None else orientation.code
        sf = None if subface is None else tuple(subface)
        key = ("facediag", face, code, sf)
        cached = self.plan_cache.get(key)
        if cached is None:
            kern = self.kern
            n = kern.n_dofs_1d
            eye = np.eye(n * n).reshape(n * n, n, n)
            R = self.fk.to_quad(eye, orientation, subface)  # (n^2, qa, qb)
            qa, qb = R.shape[-2], R.shape[-1]
            R = np.ascontiguousarray(
                np.moveaxis(R.reshape(n, n, qa, qb), (0, 1), (2, 3))
            )  # (qa, qb, ja, jb)
            D = kern.nodal_diff
            Ra = np.einsum("abkj,kJ->abJj", R, D)
            Rb = np.einsum("abjk,kJ->abjJ", R, D)
            cached = (R * R, R * Ra, R * Rb)
            self.plan_cache[key] = cached
        return cached

    def _face_diag_contrib(self, fm, tau, jinv_t, face, orientation, subface,
                           sign: float, scale: float) -> np.ndarray:
        """Diagonal of one side's self-coupling over one face batch:

        ``scale * int_f w (tau phi^2 + sign * phi n.grad(phi))``

        with ``n`` the minus-side outward normal and ``phi`` ranging over
        this side's basis functions (sign = -1 minus side / Dirichlet
        boundary, +1 plus side; scale = 2 on Dirichlet boundaries)."""
        RR, RRa, RRb = self._face_trace_products(face, orientation, subface)
        d, s = divmod(face, 2)
        a_dim, b_dim = tangential_dims(face)
        w = fm.jxw  # (F, qa, qb)
        # c_j = sum_i n_i jinv_t[i, j]: normal derivative coefficients in
        # this side's own reference components
        c = self._contract("fiab,fijab->fjab", fm.normal, jinv_t)
        T_tau = self._contract("fab,abxy->fxy", tau[:, None, None] * w, RR)
        T_d = self._contract("fab,abxy->fxy", w * c[:, d], RR)
        T_a = self._contract("fab,abxy->fxy", w * c[:, a_dim], RRa)
        T_b = self._contract("fab,abxy->fxy", w * c[:, b_dim], RRb)
        f_v = self.kern.shape.face_value[s]  # (n,) value trace weights
        f_g = self.kern.shape.face_grad[s]  # (n,) normal-derivative weights
        vv = f_v * f_v
        vg = f_v * f_g
        tang = T_tau + sign * (T_a + T_b)
        per = (
            vv[None, :, None, None] * tang[:, None]
            + (sign * vg)[None, :, None, None] * T_d[:, None]
        )
        per *= scale
        # axes (F, i_d, ja, jb) -> cell layout (F, z, y, x): the
        # tangential dims (a_dim > b_dim) are already in descending
        # order, the normal-dim axis slots in at position 3 - d
        return np.moveaxis(per, 1, 3 - d)

    def _add_face_diagonal(self, diag: np.ndarray) -> None:
        """Accumulate the face self-coupling diagonals into ``diag``."""
        for ib, (batch, fm, tau) in enumerate(
            zip(self.conn.interior, self.face_metrics, self.tau)
        ):
            dm = self._face_diag_contrib(
                fm, tau, fm.minus.jinv_t, batch.face_m, None, None,
                sign=-1.0, scale=1.0,
            )
            self._scatter_add(diag, batch.cells_m, dm, ("int", ib, "m"))
            dp = self._face_diag_contrib(
                fm, tau, fm.plus.jinv_t, batch.face_p,
                batch.orientation, batch.subface, sign=+1.0, scale=1.0,
            )
            self._scatter_add(diag, batch.cells_p, dp, ("int", ib, "p"))
        for ib, (batch, fm, tau) in enumerate(
            zip(self.conn.boundary, self.bdry_metrics, self.tau_b)
        ):
            if batch.boundary_id not in self.dirichlet_ids:
                continue
            db = self._face_diag_contrib(
                fm, tau, fm.minus.jinv_t, batch.face, None, None,
                sign=-1.0, scale=2.0,
            )
            self._scatter_add(diag, batch.cells, db, ("bdy", ib))

    def _face_self_term(self, u: np.ndarray) -> np.ndarray:
        """Face contributions keeping only the block-diagonal (same-cell)
        couplings — the part entering the operator diagonal."""
        fk = self.fk
        out = np.zeros_like(u)
        for batch, fm, tau in zip(self.conn.interior, self.face_metrics, self.tau):
            # minus-to-minus: treat the neighbor trace as zero
            um = u[batch.cells_m]
            vm, gm = fk.eval_side(um, batch.face_m)
            Gm = physical_gradient(fm.minus.jinv_t, gm, planned=self.use_plans)
            zeros_v = np.zeros_like(vm)
            zeros_G = np.zeros_like(Gm)
            rv_m, rg_m, _, _ = self._face_flux(fm, tau, vm, Gm, zeros_v, zeros_G)
            contrib_m = fk.integrate_side(
                batch.face_m, rv_m, self._to_ref_grad(fm.minus.jinv_t_c, rg_m)
            )
            np.add.at(out, batch.cells_m, contrib_m)
            # plus-to-plus
            up = u[batch.cells_p]
            vp, gp = fk.eval_side(up, batch.face_p, batch.orientation, batch.subface)
            Gp = physical_gradient(fm.plus.jinv_t, gp, planned=self.use_plans)
            _, _, rv_p, rg_p = self._face_flux(fm, tau, zeros_v, zeros_G, vp, Gp)
            contrib_p = fk.integrate_side(
                batch.face_p,
                rv_p,
                self._to_ref_grad(fm.plus.jinv_t_c, rg_p),
                batch.orientation,
                batch.subface,
            )
            np.add.at(out, batch.cells_p, contrib_p)
        for batch, fm, tau in zip(self.conn.boundary, self.bdry_metrics, self.tau_b):
            if batch.boundary_id not in self.dirichlet_ids:
                continue
            um = u[batch.cells]
            vm, gm = fk.eval_side(um, batch.face)
            Gm = physical_gradient(fm.minus.jinv_t, gm, planned=self.use_plans)
            dn_m = self._contract("fiab,fiab->fab", fm.normal, Gm)
            w = fm.jxw
            rv = (-dn_m + 2.0 * tau[:, None, None] * vm) * w
            rg_phys = (-vm * w)[:, None] * fm.normal
            contrib = fk.integrate_side(
                batch.face, rv, self._to_ref_grad(fm.minus.jinv_t_c, rg_phys)
            )
            np.add.at(out, batch.cells, contrib)
        return out


class CGLaplaceOperator(MatrixFreeOperator):
    """Continuous finite element Laplacian with hanging-node constraints
    and strong Dirichlet conditions (via the constraint machinery of
    :class:`~repro.core.dof_handler.CGDofHandler`)."""

    def __init__(self, dof: CGDofHandler, geometry: GeometryField) -> None:
        if geometry.degree != dof.degree:
            raise ValueError("geometry kernel degree must match the dof space")
        self.dof = dof
        self.kern = geometry.kernel
        self.cell_metrics = geometry.cell_metrics()

    @property
    def n_dofs(self) -> int:
        return self.dof.n_dofs

    def _build_work_model(self) -> dict:
        """Cell-only Flop count; transfer = global vectors + cell metric
        (gather/scatter indirection is extra memory, not Flops)."""
        from ...perf.flops import cg_laplace_flops

        nq = self.kern.n_q_points
        fl = cg_laplace_flops(
            self.dof.degree, nq, even_odd=self.kern.use_even_odd
        )
        pb = self.precision_bytes
        vec_bytes = 3.0 * pb * self.n_dofs
        metric_bytes = 6.0 * nq**3 * pb * self.dof.n_cells
        return {
            "flops": float(fl.matvec_total(self.dof.n_cells, 0, 0)),
            "bytes": vec_bytes + metric_bytes,
            "dofs": float(self.n_dofs),
        }

    def vmult(self, x: np.ndarray) -> np.ndarray:
        if x.ndim == 2 and x.shape[0] == 1:
            return self._vmult_impl(x[0], ensemble=False)[None]
        return self._vmult_impl(x, ensemble=x.ndim == 2)

    def _vmult_impl(self, x: np.ndarray, ensemble: bool) -> np.ndarray:
        u = self.dof.gather_cells(x)
        sub = "cijzyx,ecjzyx->ecizyx" if ensemble else "cijzyx,cjzyx->cizyx"
        if not self.use_plans:
            g = self.kern.gradients(u)
            Dg = np.einsum(sub, self.cell_metrics.laplace_d, g, optimize=True)
            return self.dof.scatter_add_cells(self.kern.integrate_gradients(Dg))
        ws = self.workspace()
        g = self.kern.gradients(u, ws)
        D = self.cell_metrics.laplace_d
        Dg = contract(
            sub, D, g,
            out=ws.take("lap.Dg", g.shape, np.result_type(D.dtype, g.dtype)),
        )
        r = self.kern.integrate_gradients(Dg, ws)
        # scatter_add_cells reduces into a fresh global vector, so the
        # workspace-owned cell residual never escapes
        return self.dof.scatter_add_cells(r)

    def diagonal(self) -> np.ndarray:
        """Jacobi diagonal: local cell diagonals accumulated with squared
        constraint weights (the standard matrix-free approximation)."""
        kern = self.kern
        Ng = kern.shape.interp
        Dg = kern.shape.grad
        D = self.cell_metrics.laplace_d  # (c, i, j, q, q, q)
        ldiag = np.zeros((self.dof.n_cells,) + (kern.n_dofs_1d,) * 3)
        # diag_i = sum_q (d_a phi_i)(q) D[a,b](q) (d_b phi_i)(q)
        for a in range(3):
            for b in range(3):
                fx = (Dg if a == 0 else Ng) * (Dg if b == 0 else Ng)
                fy = (Dg if a == 1 else Ng) * (Dg if b == 1 else Ng)
                fz = (Dg if a == 2 else Ng) * (Dg if b == 2 else Ng)
                ldiag += contract("czyx,zZ,yY,xX->cZYX", D[:, a, b], fz, fy, fx)
        dg = self.dof.flat_scatter_plan.scatter(ldiag, dtype=ldiag.dtype)
        C2 = self.dof.C.copy()
        C2.data = C2.data**2
        return C2.T @ dg
