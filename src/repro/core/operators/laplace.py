"""Matrix-free Laplacians: symmetric interior penalty DG and continuous FE.

``DGLaplaceOperator`` realizes Eq. (7) of the paper — the operator whose
throughput is benchmarked in Figures 6-8 and which (negated) forms the
pressure Poisson matrix of the splitting scheme.  ``CGLaplaceOperator``
is the conforming auxiliary-space operator of the two finest multigrid
levels (Section 3.4), including hanging-node constraints.

Weak Dirichlet data (SIP/Nitsche) and Neumann data enter through
:meth:`DGLaplaceOperator.assemble_rhs`.
"""

from __future__ import annotations

import numpy as np

from ...mesh.connectivity import MeshConnectivity
from ...mesh.mapping import GeometryField
from ..dof_handler import CGDofHandler, DGDofHandler
from .base import FaceKernels, MatrixFreeOperator, physical_gradient


class DGLaplaceOperator(MatrixFreeOperator):
    """Symmetric interior penalty discretization of ``-div(grad u)``.

    Parameters
    ----------
    dof, geometry, connectivity:
        Space, metric terms, and face batches of the same forest.
    dirichlet_ids:
        Boundary indicators with (weak) Dirichlet conditions; all other
        boundary faces are natural (Neumann).
    penalty_factor:
        Multiplies the standard SIP penalty ``(k+1)^2 A_f / V``.  The
        default 2.5 keeps the bilinear form coercive on the strongly
        sheared cells of tube-junction meshes (factor 1 suffices on
        affine meshes but loses definiteness at the lung bifurcations).
    """

    def __init__(
        self,
        dof: DGDofHandler,
        geometry: GeometryField,
        connectivity: MeshConnectivity,
        dirichlet_ids: tuple[int, ...] = (),
        penalty_factor: float = 2.5,
    ) -> None:
        self.dof = dof
        self.geo = geometry
        self.conn = connectivity
        self.kern = geometry.kernel
        self.fk = FaceKernels(self.kern)
        self.dirichlet_ids = tuple(dirichlet_ids)
        self.cell_metrics = geometry.cell_metrics()
        self.face_metrics, self.bdry_metrics = geometry.all_face_metrics(connectivity)
        k = dof.degree
        self.tau = [penalty_factor * (k + 1) ** 2 * fm.penalty for fm in self.face_metrics]
        self.tau_b = [penalty_factor * (k + 1) ** 2 * fm.penalty for fm in self.bdry_metrics]

    # ------------------------------------------------------------------
    @property
    def n_dofs(self) -> int:
        return self.dof.n_dofs

    def _cell_term(self, u: np.ndarray) -> np.ndarray:
        g = self.kern.gradients(u)
        Dg = np.einsum("cijzyx,cjzyx->cizyx", self.cell_metrics.laplace_d, g, optimize=True)
        return self.kern.integrate_gradients(Dg)

    def _face_flux(self, fm, tau, vm, Gm, vp, Gp):
        """SIP numerical flux in quadrature space (minus frame).

        Returns the value/physical-gradient coefficient fields for both
        test sides: (rv_m, rgphys_m, rv_p, rgphys_p).
        """
        n = fm.normal
        jump = vm - vp
        dn_m = np.einsum("fiab,fiab->fab", n, Gm, optimize=True)
        dn_p = np.einsum("fiab,fiab->fab", n, Gp, optimize=True)
        avg_dn = 0.5 * (dn_m + dn_p)
        w = fm.jxw
        rv_m = (-avg_dn + tau[:, None, None] * jump) * w
        rv_p = (avg_dn - tau[:, None, None] * jump) * w
        half_jump_w = (-0.5) * jump * w
        rg_m = half_jump_w[:, None] * n
        rg_p = half_jump_w[:, None] * n
        return rv_m, rg_m, rv_p, rg_p

    def _to_ref_grad(self, jinv_t, rg_phys):
        """Physical-gradient test coefficients -> reference components:
        contribution r.(J^{-T} grad v) = (J^{-1} r).grad v."""
        return np.einsum("fijab,fiab->fjab", jinv_t, rg_phys, optimize=True)

    def vmult(self, x: np.ndarray) -> np.ndarray:
        self._count_vmult()
        u = self.dof.cell_view(x)
        out = self._cell_term(u)
        fk = self.fk
        for batch, fm, tau in zip(self.conn.interior, self.face_metrics, self.tau):
            um = u[batch.cells_m]
            up = u[batch.cells_p]
            vm, gm = fk.eval_side(um, batch.face_m)
            vp, gp = fk.eval_side(up, batch.face_p, batch.orientation, batch.subface)
            Gm = physical_gradient(fm.minus.jinv_t, gm)
            Gp = physical_gradient(fm.plus.jinv_t, gp)
            rv_m, rg_m, rv_p, rg_p = self._face_flux(fm, tau, vm, Gm, vp, Gp)
            contrib_m = fk.integrate_side(
                batch.face_m, rv_m, self._to_ref_grad(fm.minus.jinv_t, rg_m)
            )
            contrib_p = fk.integrate_side(
                batch.face_p,
                rv_p,
                self._to_ref_grad(fm.plus.jinv_t, rg_p),
                batch.orientation,
                batch.subface,
            )
            np.add.at(out, batch.cells_m, contrib_m)
            np.add.at(out, batch.cells_p, contrib_p)
        for batch, fm, tau in zip(self.conn.boundary, self.bdry_metrics, self.tau_b):
            if batch.boundary_id not in self.dirichlet_ids:
                continue  # natural (Neumann) boundary: no operator term
            um = u[batch.cells]
            vm, gm = fk.eval_side(um, batch.face)
            Gm = physical_gradient(fm.minus.jinv_t, gm)
            n = fm.normal
            dn_m = np.einsum("fiab,fiab->fab", n, Gm, optimize=True)
            w = fm.jxw
            rv = (-dn_m + 2.0 * tau[:, None, None] * vm) * w
            rg_phys = (-vm * w)[:, None] * n
            contrib = fk.integrate_side(
                batch.face, rv, self._to_ref_grad(fm.minus.jinv_t, rg_phys)
            )
            np.add.at(out, batch.cells, contrib)
        return self.dof.flat(out)

    # ------------------------------------------------------------------
    def assemble_rhs(
        self,
        f=None,
        dirichlet=None,
        neumann=None,
    ) -> np.ndarray:
        """Right-hand side for ``A u = b``: volume source ``f(x, y, z)``,
        weak Dirichlet data ``dirichlet(x, y, z)`` on ``dirichlet_ids``
        faces (or a dict mapping boundary id to a callable), Neumann data
        ``neumann(x, y, z)`` (= grad u . n) elsewhere.
        """
        out = np.zeros((self.dof.n_cells,) + (self.kern.n_dofs_1d,) * 3)
        if f is not None:
            pts = self.cell_metrics.points
            fv = f(pts[:, 0], pts[:, 1], pts[:, 2]) * self.cell_metrics.jxw
            out += self.kern.integrate_values(fv)
        fk = self.fk
        for batch, fm, tau in zip(self.conn.boundary, self.bdry_metrics, self.tau_b):
            p = fm.points
            if batch.boundary_id in self.dirichlet_ids:
                if dirichlet is None:
                    continue
                g_fn = (
                    dirichlet.get(batch.boundary_id)
                    if isinstance(dirichlet, dict)
                    else dirichlet
                )
                if g_fn is None:
                    continue
                g = g_fn(p[:, 0], p[:, 1], p[:, 2])
                w = fm.jxw
                rv = 2.0 * tau[:, None, None] * g * w
                rg_phys = (-g * w)[:, None] * fm.normal
                contrib = fk.integrate_side(
                    batch.face, rv, self._to_ref_grad(fm.minus.jinv_t, rg_phys)
                )
            else:
                if neumann is None:
                    continue
                h = neumann(p[:, 0], p[:, 1], p[:, 2])
                contrib = fk.integrate_side(batch.face, h * fm.jxw, None)
            np.add.at(out, batch.cells, contrib)
        return self.dof.flat(out)

    # ------------------------------------------------------------------
    def diagonal(self) -> np.ndarray:
        """Exact operator diagonal, computed by applying the cell and the
        *cell-local part* of the face terms to local unit vectors."""
        n = self.kern.n_dofs_1d
        N = self.dof.n_cells
        diag = np.zeros((N, n, n, n))
        zero = np.zeros((1, n, n, n))
        for iz in range(n):
            for iy in range(n):
                for ix in range(n):
                    e = np.zeros((N, n, n, n))
                    e[:, iz, iy, ix] = 1.0
                    y = self._cell_term(e)
                    y += self._face_self_term(e)
                    diag[:, iz, iy, ix] = y[:, iz, iy, ix]
        return self.dof.flat(diag)

    def _face_self_term(self, u: np.ndarray) -> np.ndarray:
        """Face contributions keeping only the block-diagonal (same-cell)
        couplings — the part entering the operator diagonal."""
        fk = self.fk
        out = np.zeros_like(u)
        for batch, fm, tau in zip(self.conn.interior, self.face_metrics, self.tau):
            # minus-to-minus: treat the neighbor trace as zero
            um = u[batch.cells_m]
            vm, gm = fk.eval_side(um, batch.face_m)
            Gm = physical_gradient(fm.minus.jinv_t, gm)
            zeros_v = np.zeros_like(vm)
            zeros_G = np.zeros_like(Gm)
            rv_m, rg_m, _, _ = self._face_flux(fm, tau, vm, Gm, zeros_v, zeros_G)
            contrib_m = fk.integrate_side(
                batch.face_m, rv_m, self._to_ref_grad(fm.minus.jinv_t, rg_m)
            )
            np.add.at(out, batch.cells_m, contrib_m)
            # plus-to-plus
            up = u[batch.cells_p]
            vp, gp = fk.eval_side(up, batch.face_p, batch.orientation, batch.subface)
            Gp = physical_gradient(fm.plus.jinv_t, gp)
            _, _, rv_p, rg_p = self._face_flux(fm, tau, zeros_v, zeros_G, vp, Gp)
            contrib_p = fk.integrate_side(
                batch.face_p,
                rv_p,
                self._to_ref_grad(fm.plus.jinv_t, rg_p),
                batch.orientation,
                batch.subface,
            )
            np.add.at(out, batch.cells_p, contrib_p)
        for batch, fm, tau in zip(self.conn.boundary, self.bdry_metrics, self.tau_b):
            if batch.boundary_id not in self.dirichlet_ids:
                continue
            um = u[batch.cells]
            vm, gm = fk.eval_side(um, batch.face)
            Gm = physical_gradient(fm.minus.jinv_t, gm)
            dn_m = np.einsum("fiab,fiab->fab", fm.normal, Gm, optimize=True)
            w = fm.jxw
            rv = (-dn_m + 2.0 * tau[:, None, None] * vm) * w
            rg_phys = (-vm * w)[:, None] * fm.normal
            contrib = fk.integrate_side(
                batch.face, rv, self._to_ref_grad(fm.minus.jinv_t, rg_phys)
            )
            np.add.at(out, batch.cells, contrib)
        return out


class CGLaplaceOperator(MatrixFreeOperator):
    """Continuous finite element Laplacian with hanging-node constraints
    and strong Dirichlet conditions (via the constraint machinery of
    :class:`~repro.core.dof_handler.CGDofHandler`)."""

    def __init__(self, dof: CGDofHandler, geometry: GeometryField) -> None:
        if geometry.degree != dof.degree:
            raise ValueError("geometry kernel degree must match the dof space")
        self.dof = dof
        self.kern = geometry.kernel
        self.cell_metrics = geometry.cell_metrics()

    @property
    def n_dofs(self) -> int:
        return self.dof.n_dofs

    def vmult(self, x: np.ndarray) -> np.ndarray:
        self._count_vmult()
        u = self.dof.gather_cells(x)
        g = self.kern.gradients(u)
        Dg = np.einsum("cijzyx,cjzyx->cizyx", self.cell_metrics.laplace_d, g, optimize=True)
        return self.dof.scatter_add_cells(self.kern.integrate_gradients(Dg))

    def diagonal(self) -> np.ndarray:
        """Jacobi diagonal: local cell diagonals accumulated with squared
        constraint weights (the standard matrix-free approximation)."""
        kern = self.kern
        Ng = kern.shape.interp
        Dg = kern.shape.grad
        D = self.cell_metrics.laplace_d  # (c, i, j, q, q, q)
        mats = {0: Ng, 1: Dg}
        ldiag = np.zeros((self.dof.n_cells,) + (kern.n_dofs_1d,) * 3)
        # diag_i = sum_q (d_a phi_i)(q) D[a,b](q) (d_b phi_i)(q)
        for a in range(3):
            for b in range(3):
                fx = (Dg if a == 0 else Ng) * (Dg if b == 0 else Ng)
                fy = (Dg if a == 1 else Ng) * (Dg if b == 1 else Ng)
                fz = (Dg if a == 2 else Ng) * (Dg if b == 2 else Ng)
                ldiag += np.einsum(
                    "czyx,zZ,yY,xX->cZYX", D[:, a, b], fz, fy, fx, optimize=True
                )
        dg = np.zeros(self.dof.n_global)
        np.add.at(dg, self.dof.cell_to_global.ravel(), ldiag.ravel())
        C2 = self.dof.C.copy()
        C2.data = C2.data**2
        return C2.T @ dg
