"""(Inverse) mass operators — cell-local, no numerical fluxes.

With a nodal basis, Gauss quadrature of ``k+1`` points per direction, and
the change-of-basis matrix ``S`` (values of the nodal basis at the
quadrature points, square and invertible), the element mass matrix
factorizes as ``M_e = S^T W_e S`` with the diagonal ``W_e = diag(JxW)``.
Its inverse ``M_e^{-1} = S^{-1} W_e^{-1} S^{-T}`` is applied with two
tensorized triads of 1D products plus a pointwise division — the "fast
inversion of the mass operator of L^2-conforming DG methods" that the
penalty-based stabilization of the paper is designed to exploit, and the
preconditioner of the non-Poisson sub-steps of the splitting scheme.
"""

from __future__ import annotations

import numpy as np

from ...mesh.mapping import GeometryField
from ..dof_handler import DGDofHandler
from ..plans import contract
from ..sum_factorization import apply_1d
from .base import MatrixFreeOperator


class MassOperator(MatrixFreeOperator):
    """y = M x for a (vector-valued) DG space on deformed cells."""

    def __init__(self, dof: DGDofHandler, geometry: GeometryField) -> None:
        if geometry.degree != dof.degree:
            raise ValueError("geometry kernel degree must match the dof space")
        self.dof = dof
        self.kern = geometry.kernel
        self.jxw = geometry.cell_metrics().jxw

    @property
    def n_dofs(self) -> int:
        return self.dof.n_dofs

    def _build_work_model(self) -> dict:
        from ...perf.flops import mass_flops

        per_cell = mass_flops(
            self.dof.degree,
            self.kern.n_q_points,
            even_odd=self.kern.use_even_odd,
            n_components=self.dof.n_components,
        )
        nq = self.kern.n_q_points
        pb = self.precision_bytes
        return {
            "flops": float(per_cell * self.dof.n_cells),
            "bytes": 3.0 * pb * self.n_dofs + pb * nq**3 * self.dof.n_cells,
            "dofs": float(self.n_dofs),
        }

    def vmult(self, x: np.ndarray) -> np.ndarray:
        u = self.dof.cell_view(x)
        if not self.use_plans:
            q = self.kern.values(u)
            if self.dof.n_components == 1:
                q = q * self.jxw
            else:
                q = q * self.jxw[:, None]
            return self.dof.flat(self.kern.integrate_values(q))
        ws = self.workspace()
        q = self.kern.values(u, ws)
        if self.dof.n_components == 1:
            q *= self.jxw
        else:
            q *= self.jxw[:, None]
        out = np.empty(u.shape, dtype=q.dtype)
        return self.dof.flat(self.kern.integrate_values(q, ws, out=out))

    def diagonal(self) -> np.ndarray:
        """Matrix-free diagonal via squared 1D interpolation factors."""
        kern = self.kern
        N2 = kern.shape.interp**2  # (nq, n)
        diag = contract("czyx,zZ,yY,xX->cZYX", self.jxw, N2, N2, N2)
        if self.dof.n_components > 1:
            diag = np.repeat(diag[:, None], self.dof.n_components, axis=1)
        return self.dof.flat(diag)


class InverseMassOperator(MatrixFreeOperator):
    """y = M^{-1} x via the collocation factorization (exact)."""

    def __init__(self, dof: DGDofHandler, geometry: GeometryField) -> None:
        if geometry.kernel.n_q_points != dof.degree + 1:
            raise ValueError(
                "exact inverse mass needs n_q == k+1 (collocation square S)"
            )
        self.dof = dof
        self.kern = geometry.kernel
        self.jxw = geometry.cell_metrics().jxw
        S = self.kern.shape.interp
        self.Sinv = np.linalg.inv(S)

    @property
    def n_dofs(self) -> int:
        return self.dof.n_dofs

    def _build_work_model(self) -> dict:
        from ...perf.flops import inverse_mass_flops

        per_cell = inverse_mass_flops(
            self.dof.degree, n_components=self.dof.n_components
        )
        n1 = self.dof.n1
        pb = self.precision_bytes
        return {
            "flops": float(per_cell * self.dof.n_cells),
            "bytes": 3.0 * pb * self.n_dofs + pb * n1**3 * self.dof.n_cells,
            "dofs": float(self.n_dofs),
        }

    def _apply_matrix_3d(self, M: np.ndarray, u: np.ndarray) -> np.ndarray:
        for dim in range(3):
            u = apply_1d(M, u, dim)
        return u

    def vmult(self, x: np.ndarray) -> np.ndarray:
        u = self.dof.cell_view(x)
        t = self._apply_matrix_3d(self.Sinv.T, u)
        if self.dof.n_components == 1:
            t = t / self.jxw
        else:
            t = t / self.jxw[:, None]
        y = self._apply_matrix_3d(self.Sinv, t)
        return self.dof.flat(y)

    def diagonal(self) -> np.ndarray:  # pragma: no cover - not used as smoother
        raise NotImplementedError("inverse mass is itself the preconditioner")
