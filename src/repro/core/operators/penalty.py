"""Divergence and continuity penalty operator A_pen (Eq. (5)).

Following Fehn et al. (2018), the stabilization that equips the L^2
space with H(div)-like robustness combines

* a **divergence penalty** per element,
  ``sum_e int tau_div (div u)(div v)``, and
* a **continuity penalty** per interior face,
  ``sum_f int tau_c [u . n][v . n]``,

with velocity-scaled parameters ``tau_div,e = zeta_div |u|_e h_e /
(k + 1)`` and ``tau_c,f = zeta_c |u|_f`` recomputed each time step from
the current solution (``|u|_e``: mean speed, ``h_e = V_e^{1/3}``).  The
penalty step solves ``(M + dt A_pen) u = M u_hat`` by inverse-mass
preconditioned CG — the mass operator the whole stabilization design
exploits (Section 2.3).
"""

from __future__ import annotations

import numpy as np

from ...mesh.connectivity import MeshConnectivity
from ...mesh.mapping import GeometryField
from ..dof_handler import DGDofHandler
from .base import FaceKernels, MatrixFreeOperator
from .mass import MassOperator


class DivergenceContinuityPenalty(MatrixFreeOperator):
    def __init__(
        self,
        dof_u: DGDofHandler,
        geometry: GeometryField,
        connectivity: MeshConnectivity,
        zeta_div: float = 1.0,
        zeta_cont: float = 1.0,
    ) -> None:
        self.dof = dof_u
        self.kern = geometry.kernel
        self.fk = FaceKernels(self.kern)
        self.conn = connectivity
        self.cell_metrics = geometry.cell_metrics()
        self.face_metrics, _ = geometry.all_face_metrics(connectivity)
        self.zeta_div = zeta_div
        self.zeta_cont = zeta_cont
        vols = self.cell_metrics.jxw.reshape(dof_u.n_cells, -1).sum(axis=1)
        self.h_cell = vols ** (1.0 / 3.0)
        self.tau_div = np.zeros(dof_u.n_cells)
        self.tau_cont = [np.zeros(b.n_faces) for b in connectivity.interior]
        self._mass_weight = self.cell_metrics.jxw

    @property
    def n_dofs(self) -> int:
        return self.dof.n_dofs

    def update_parameters(self, u_flat: np.ndarray) -> None:
        """Recompute tau from the current velocity (called once per time
        step before the penalty solve).  Ensemble-stacked input yields
        per-member ``tau_div`` (E, N) / ``tau_cont`` (E, F) fields."""
        if u_flat.ndim == 2 and u_flat.shape[0] == 1:
            return self.update_parameters(u_flat[0])
        u = self.dof.cell_view(u_flat)
        uq = self.kern.values(u)
        speed = np.sqrt((uq**2).sum(axis=-4))
        vols = self._mass_weight.reshape(self.dof.n_cells, -1).sum(axis=1)
        sp = speed * self._mass_weight
        mean_speed = sp.reshape(sp.shape[:-3] + (-1,)).sum(axis=-1) / vols
        k = self.dof.degree
        self.tau_div = self.zeta_div * mean_speed * self.h_cell / (k + 1)
        self.tau_cont = [
            self.zeta_cont
            * 0.5
            * (mean_speed[..., b.cells_m] + mean_speed[..., b.cells_p])
            for b in self.conn.interior
        ]

    def vmult(self, x: np.ndarray) -> np.ndarray:
        if x.ndim == 2:
            # ensemble-stacked states; E=1 keeps the unbatched bitstream
            if x.shape[0] == 1:
                return self._vmult_impl(x[0], ensemble=False)[None]
            return self._vmult_impl(x, ensemble=True)
        return self._vmult_impl(x, ensemble=False)

    def _vmult_impl(self, x: np.ndarray, ensemble: bool) -> np.ndarray:
        u = self.dof.cell_view(x)
        kern = self.kern
        cm = self.cell_metrics
        ax = 1 if ensemble else 0
        # divergence penalty: tau_div (div u)(div v)
        grads = np.stack(
            [kern.gradients(u[..., i, :, :, :]) for i in range(3)], axis=-4
        )
        if ensemble:
            div = self._contract("cilzyx,ecilzyx->eczyx", cm.jinv_t, grads)
        else:
            div = self._contract("cilzyx,cilzyx->czyx", cm.jinv_t, grads)
        coeff = div * cm.jxw * self.tau_div[..., None, None, None]
        if ensemble:
            rg = self._contract("cilzyx,eczyx->ecilzyx", cm.jinv_t, coeff)
        else:
            rg = self._contract("cilzyx,czyx->cilzyx", cm.jinv_t, coeff)
        out = np.stack(
            [kern.integrate_gradients(rg[..., i, :, :, :, :]) for i in range(3)],
            axis=-4,
        )
        # continuity penalty: tau_c [u.n][v.n]
        for ib, (batch, fm, tau) in enumerate(
            zip(self.conn.interior, self.face_metrics, self.tau_cont)
        ):
            um = u[:, batch.cells_m] if ensemble else u[batch.cells_m]
            up = u[:, batch.cells_p] if ensemble else u[batch.cells_p]
            tm = kern.face_nodal_trace(um, batch.face_m)
            tp = kern.face_nodal_trace(up, batch.face_p)
            vm = self.fk.to_quad(tm)
            vp = self.fk.to_quad(tp, batch.orientation, batch.subface)
            sub = "fiab,efiab->efab" if ensemble else "fiab,fiab->fab"
            jump_n = self._contract(sub, fm.normal, vm - vp)
            q = tau[..., None, None] * jump_n * fm.jxw
            rv = q[..., None, :, :] * fm.normal
            contrib_m = self.fk.integrate_side(batch.face_m, rv, None)
            contrib_p = self.fk.integrate_side(
                batch.face_p, -rv, None, batch.orientation, batch.subface
            )
            self._scatter_add(out, batch.cells_m, contrib_m, ("int", ib, "m"), axis=ax)
            self._scatter_add(out, batch.cells_p, contrib_p, ("int", ib, "p"), axis=ax)
        return self.dof.flat(out)

    def diagonal(self) -> np.ndarray:  # pragma: no cover - inv-mass preconditioned
        raise NotImplementedError


class PenaltyStepOperator(MatrixFreeOperator):
    """``M + dt * A_pen`` of the penalty step (Eq. (5))."""

    def __init__(self, mass: MassOperator, penalty: DivergenceContinuityPenalty) -> None:
        self.mass = mass
        self.penalty = penalty
        self.dt = 1.0

    def set_dt(self, dt: float) -> None:
        self.dt = float(dt)

    @property
    def n_dofs(self) -> int:
        return self.mass.n_dofs

    def _build_work_model(self) -> dict:
        # own work: the scale-and-add of the nested mass/penalty results
        n = float(self.n_dofs)
        return {"flops": 2.0 * n, "bytes": 3.0 * self.precision_bytes * n, "dofs": n}

    def vmult(self, x: np.ndarray) -> np.ndarray:
        return self.mass.vmult(x) + self.dt * self.penalty.vmult(x)

    def diagonal(self) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError
