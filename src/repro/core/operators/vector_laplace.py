"""Vector-valued viscous operator and the Helmholtz operator of the
viscous step (Eq. (4)).

The paper discretizes the viscous term ``-nu lap(u)`` with the interior
penalty method applied to the Laplace form, which acts componentwise —
so the vector operator reuses the scalar SIP machinery exactly
(one kernel sweep per velocity component over the same cached metric
data, matching how ExaDG vectorizes components)."""

from __future__ import annotations

import numpy as np

from ..dof_handler import DGDofHandler
from .base import MatrixFreeOperator
from .laplace import DGLaplaceOperator
from .mass import MassOperator


class VectorDGLaplace(MatrixFreeOperator):
    """Componentwise SIP Laplacian for a 3-component DG velocity."""

    def __init__(self, scalar_op: DGLaplaceOperator, vector_dof: DGDofHandler) -> None:
        if vector_dof.n_components != 3:
            raise ValueError("velocity space must have 3 components")
        if vector_dof.degree != scalar_op.dof.degree:
            raise ValueError("scalar operator degree must match the vector space")
        self.scalar = scalar_op
        self.dof = vector_dof

    @property
    def n_dofs(self) -> int:
        return self.dof.n_dofs

    def _build_work_model(self) -> dict:
        # own work is only the component staging/result copies; the
        # scalar Laplacian annotates its own nested spans
        n = float(self.n_dofs)
        return {"flops": 0.0, "bytes": 4.0 * self.precision_bytes * n, "dofs": n}

    def vmult(self, x: np.ndarray) -> np.ndarray:
        u = self.dof.cell_view(x)  # (N, 3, n, n, n) / ensemble (E, N, 3, n, n, n)
        out = np.empty_like(u)
        comp_sel = (
            (slice(None), slice(None)) if u.ndim == 6 else (slice(None),)
        )
        if not self.use_plans:
            for c in range(3):
                yc = self.scalar.vmult(
                    self.scalar.dof.flat(
                        np.ascontiguousarray(u[comp_sel + (c,)])
                    )
                )
                out[comp_sel + (c,)] = self.scalar.dof.cell_view(yc)
            return self.dof.flat(out)
        # one reusable contiguous staging buffer instead of a fresh
        # ascontiguousarray copy per component per application
        ws = self.workspace()
        comp_shape = u.shape[:-4] + u.shape[-3:]
        comp = ws.take("veclap.comp", comp_shape, u.dtype)
        for c in range(3):
            np.copyto(comp, u[comp_sel + (c,)])
            yc = self.scalar.vmult(self.scalar.dof.flat(comp))
            out[comp_sel + (c,)] = self.scalar.dof.cell_view(yc)
        return self.dof.flat(out)

    def diagonal(self) -> np.ndarray:
        d = self.scalar.dof.cell_view(self.scalar.diagonal())
        return self.dof.flat(np.repeat(d[:, None], 3, axis=1))

    def assemble_rhs(self, dirichlet_components=None, neumann_components=None) -> np.ndarray:
        """Inhomogeneous weak boundary data, one callable per component
        (each ``f(x, y, z) -> array``); None entries are zero."""
        out = np.zeros((self.dof.n_cells, 3) + (self.dof.n1,) * 3)
        for c in range(3):
            g = dirichlet_components[c] if dirichlet_components else None
            h = neumann_components[c] if neumann_components else None
            if g is None and h is None:
                continue
            rc = self.scalar.assemble_rhs(dirichlet=g, neumann=h)
            out[:, c] = self.scalar.dof.cell_view(rc)
        return self.dof.flat(out)


class HelmholtzOperator(MatrixFreeOperator):
    """``gamma0/dt * M + nu * L`` — the viscous-step matrix (Eq. (4)),
    preconditioned in the solver by the inverse mass operator."""

    def __init__(
        self,
        mass: MassOperator,
        laplace: VectorDGLaplace,
        nu: float,
        boundary_rhs_fn=None,
    ) -> None:
        if mass.n_dofs != laplace.n_dofs:
            raise ValueError("mass and Laplace operators must share the space")
        self.mass = mass
        self.laplace = laplace
        self.nu = float(nu)
        self.mass_factor = 1.0
        self._boundary_rhs_fn = boundary_rhs_fn

    def boundary_rhs(self, t: float) -> np.ndarray:
        """Weak (Nitsche) Dirichlet data contribution, scaled by nu.

        ``boundary_rhs_fn(t)`` returns the unscaled vector-Laplace rhs
        (see :meth:`VectorDGLaplace.assemble_rhs`); zero when absent."""
        if self._boundary_rhs_fn is None:
            return 0.0
        return self.nu * self._boundary_rhs_fn(t)

    def set_time_factor(self, gamma0_over_dt: float) -> None:
        self.mass_factor = float(gamma0_over_dt)

    @property
    def n_dofs(self) -> int:
        return self.mass.n_dofs

    def _build_work_model(self) -> dict:
        # own work: the two scalings and the axpy combining the nested
        # (self-annotating) mass and Laplace applications
        n = float(self.n_dofs)
        return {"flops": 3.0 * n, "bytes": 5.0 * self.precision_bytes * n, "dofs": n}

    def vmult(self, x: np.ndarray) -> np.ndarray:
        y = self.mass.vmult(x)
        y *= self.mass_factor
        L = self.laplace.vmult(x)
        L *= self.nu
        y += L
        return y

    def diagonal(self) -> np.ndarray:
        return self.mass_factor * self.mass.diagonal() + self.nu * self.laplace.diagonal()
