"""Precomputed execution plans for the matrix-free hot path.

Kronbichler & Kormann (2017) attribute the memory-bandwidth-limited
throughput of matrix-free operator evaluation to one discipline: do all
index computation and data-movement planning *once*, so the per-
application loop is nothing but streaming arithmetic.  This module is
the NumPy rendition of that discipline, shared by every operator in
:mod:`repro.core.operators`:

* :class:`ScatterPlan` — a precomputed destination-index plan replacing
  ``np.add.at(out, cells, contrib)``.  ``ufunc.at`` is unbuffered and
  typically 10-50x slower than indexed assignment; within one face batch
  every cell appears at most once (the batch key fixes the local face
  number and subface), so the scatter is a plain fancy ``+=``.  Index
  sets *with* duplicates fall back to an argsort + ``np.add.reduceat``
  segment sum planned once.
* :class:`FlatScatterPlan` — the duplicate-heavy flat variant used for
  continuous (CG) assembly, where one global node receives up to eight
  cell contributions.  Sorting and segment boundaries are precomputed;
  the dtype of the contribution is preserved (unlike ``np.bincount``),
  which the float32 multigrid levels rely on.
* :func:`contract` — an einsum dispatcher with a global plan cache.
  Contractions with at most two operands and a small contracted extent
  (the ``J^{-T} g`` style metric applications, contracting a length-3
  component axis) run fastest through the *direct* C einsum loop;
  routing them through ``optimize=True``/``einsum_path`` pays a
  tensordot round trip with transposed copies that costs several times
  the arithmetic.  Multi-operand contractions (the closed-form diagonal
  formulas) do benefit from a precomputed ``np.einsum_path``.  The
  dispatch is decided once per (subscripts, shapes) signature and
  cached — deterministically, from the contraction structure, so runs
  are reproducible.
* :class:`Workspace` — a keyed arena of preallocated scratch buffers so
  steady-state operator applications (the inner loop of Chebyshev
  smoothing and CG, hitting identical shapes thousands of times) perform
  no large allocations.  Buffers are keyed by (tag, shape, dtype), so a
  float32 clone of an operator (see
  :func:`repro.solvers.multigrid.single_precision_operator`) transparently
  gets its own set.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

import numpy as np

from .backend import DEFAULT_DTYPE, active_backend


@dataclass
class ExecutionPolicy:
    """Process-wide execution policy of the plan layer.

    ``use_plans`` selects planned execution (cached scatter plans and
    einsum paths) versus the legacy per-call path (``np.add.at``
    scatters, per-call ``optimize=True`` einsum searches).  Operators
    consult this policy unless an instance-level override was set (the
    deprecated ``op.use_plans = ...`` assignment, kept for one release).
    """

    use_plans: bool = True


#: The single process-wide policy consulted by every operator.
POLICY = ExecutionPolicy()


@contextlib.contextmanager
def plan_execution(use_plans: bool):
    """Temporarily switch the global execution policy.

    The supported way to run the legacy unplanned path (benchmarks,
    equivalence tests)::

        with plan_execution(use_plans=False):
            op.vmult(x)
    """
    prev = POLICY.use_plans
    POLICY.use_plans = bool(use_plans)
    try:
        yield POLICY
    finally:
        POLICY.use_plans = prev

#: Contracted-extent threshold below which a 1- or 2-operand einsum is
#: dispatched to the direct C loop instead of a precomputed path (the
#: path would route through tensordot/BLAS whose packing copies dominate
#: at these sizes).
DIRECT_CONTRACTION_LIMIT = 8

_PATH_CACHE: dict = {}


def _contraction_strategy(subscripts: str, operands) -> object:
    """Deterministic plan for one einsum signature: ``False`` for the
    direct C loop, or a precomputed ``np.einsum_path`` path list."""
    if len(operands) <= 1:
        return False
    if "->" in subscripts:
        lhs = subscripts.split("->")[0]
    else:
        lhs = subscripts
    inputs = lhs.split(",")
    if len(operands) == 2:
        # extent of the contracted index space
        dims: dict[str, int] = {}
        for labels, op in zip(inputs, operands):
            for ax, ch in enumerate(labels):
                dims[ch] = op.shape[ax]
        out_labels = (
            subscripts.split("->")[1]
            if "->" in subscripts
            else "".join(sorted(c for c in set(lhs) if lhs.count(c) == 1))
        )
        contracted = set(lhs) - set(out_labels) - {","}
        extent = 1
        for ch in contracted:
            extent *= dims[ch]
        if extent <= DIRECT_CONTRACTION_LIMIT:
            return False
    path, _ = np.einsum_path(subscripts, *operands, optimize="optimal")
    return path


def contract(subscripts: str, *operands, out: np.ndarray | None = None):
    """``np.einsum`` with a cached, deterministic contraction plan.

    The plan (direct C loop vs. precomputed path) is decided on first use
    per (subscripts, operand shapes) and reused for every later call —
    no per-application path search.
    """
    key = (subscripts, tuple(op.shape for op in operands))
    strategy = _PATH_CACHE.get(key)
    if strategy is None:
        strategy = _contraction_strategy(subscripts, operands)
        _PATH_CACHE[key] = strategy
    xp = active_backend().xp
    return xp.einsum(subscripts, *operands, out=out, optimize=strategy)


class ScatterPlan:
    """Precomputed scatter-add ``out[indices] += contrib`` along axis 0.

    When the planned index set has no duplicates — true for every face
    batch, whose key fixes (face_m, face_p, orientation, subface) so a
    cell can appear at most once — the scatter is an indexed ``+=``.
    Otherwise an argsort order and ``np.add.reduceat`` segment starts are
    precomputed once and every application folds duplicates first.
    """

    __slots__ = ("indices", "n_rows", "is_unique", "order", "segments", "targets")

    def __init__(self, indices: np.ndarray, n_rows: int) -> None:
        idx = np.ascontiguousarray(np.asarray(indices, dtype=np.intp))
        if idx.ndim != 1:
            raise ValueError("ScatterPlan needs a 1D index array")
        if idx.size and (idx.min() < 0 or idx.max() >= n_rows):
            raise ValueError("scatter indices out of range")
        self.indices = idx
        self.n_rows = int(n_rows)
        if idx.size == 0:
            self.is_unique = True
            self.order = self.segments = self.targets = None
            return
        order = np.argsort(idx, kind="stable")
        sorted_idx = idx[order]
        new_segment = np.empty(idx.size, dtype=bool)
        new_segment[0] = True
        np.not_equal(sorted_idx[1:], sorted_idx[:-1], out=new_segment[1:])
        if new_segment.all():
            self.is_unique = True
            self.order = self.segments = self.targets = None
        else:
            self.is_unique = False
            self.order = order
            self.segments = np.flatnonzero(new_segment)
            self.targets = sorted_idx[self.segments]

    def add(self, out: np.ndarray, contrib: np.ndarray, axis: int = 0) -> np.ndarray:
        """Accumulate ``contrib`` slices into ``out`` along ``axis``.

        ``axis=0`` is the classic ``out[indices] += contrib``; ``axis=1``
        serves ensemble-stacked states ``(E, N, ...)`` where the cell
        axis sits behind the ensemble axis.
        """
        if self.indices.size == 0:
            return out
        if axis == 0:
            if self.is_unique:
                out[self.indices] += contrib
            else:
                folded = np.add.reduceat(contrib[self.order], self.segments, axis=0)
                out[self.targets] += folded
        elif axis == 1:
            if self.is_unique:
                out[:, self.indices] += contrib
            else:
                folded = np.add.reduceat(
                    contrib[:, self.order], self.segments, axis=1
                )
                out[:, self.targets] += folded
        else:
            raise ValueError(f"unsupported scatter axis {axis}")
        return out


class FlatScatterPlan:
    """Planned scatter-add into a flat vector with many duplicates.

    The CG assembly pattern: ``cell_to_global`` maps every local node of
    every cell to a global node, and up to eight cells contribute to one
    node.  The argsort order and segment starts are computed once; each
    application is one gather, one ``reduceat``, one indexed ``+=`` —
    preserving the contribution dtype (``np.bincount`` would force
    float64, breaking the float32 V-cycle levels).
    """

    __slots__ = ("n_rows", "order", "segments", "targets", "size")

    def __init__(self, indices: np.ndarray, n_rows: int) -> None:
        idx = np.asarray(indices, dtype=np.intp).ravel()
        if idx.size and (idx.min() < 0 or idx.max() >= n_rows):
            raise ValueError("scatter indices out of range")
        self.n_rows = int(n_rows)
        self.size = idx.size
        if idx.size == 0:
            self.order = self.segments = self.targets = None
            return
        order = np.argsort(idx, kind="stable")
        sorted_idx = idx[order]
        new_segment = np.empty(idx.size, dtype=bool)
        new_segment[0] = True
        np.not_equal(sorted_idx[1:], sorted_idx[:-1], out=new_segment[1:])
        self.order = order
        self.segments = np.flatnonzero(new_segment)
        self.targets = sorted_idx[self.segments]

    def scatter_add(self, out: np.ndarray, values: np.ndarray,
                    axis: int = 0) -> np.ndarray:
        """``out[indices[e]] += values.ravel()[e]`` for all entries.

        ``axis=1`` treats the leading axis of ``values`` (and ``out``)
        as an ensemble axis: each member's trailing entries are folded
        independently with the same precomputed plan.
        """
        if self.size == 0:
            return out
        if axis == 0:
            v = np.asarray(values).reshape(-1)
            folded = np.add.reduceat(v[self.order], self.segments)
            out[self.targets] += folded
        elif axis == 1:
            v = np.asarray(values)
            v = v.reshape(v.shape[0], -1)
            folded = np.add.reduceat(v[:, self.order], self.segments, axis=1)
            out[:, self.targets] += folded
        else:
            raise ValueError(f"unsupported scatter axis {axis}")
        return out

    def scatter(self, values: np.ndarray, dtype=None,
                axis: int = 0) -> np.ndarray:
        """Fresh accumulation vector of length ``n_rows`` (``axis=1``:
        one row per leading-axis member of ``values``)."""
        v = np.asarray(values)
        if axis == 0:
            out = np.zeros(self.n_rows, dtype=dtype or v.dtype)
        else:
            out = np.zeros((v.shape[0], self.n_rows), dtype=dtype or v.dtype)
        return self.scatter_add(out, v, axis=axis)


class Workspace:
    """Keyed arena of reusable scratch arrays.

    ``take(tag, shape, dtype)`` returns a preallocated buffer (contents
    undefined) for the given key, allocating it on first use.  Callers
    must consume a buffer before requesting the same tag again; distinct
    tags never alias.  Because the key includes dtype, float64 and
    float32 operator applications sharing one workspace keep separate
    buffers.
    """

    __slots__ = ("_arrays",)

    def __init__(self) -> None:
        self._arrays: dict = {}

    def take(self, tag: str, shape: tuple, dtype=DEFAULT_DTYPE) -> np.ndarray:
        key = (tag, tuple(shape), np.dtype(dtype).str)
        arr = self._arrays.get(key)
        if arr is None:
            arr = active_backend().xp.empty(shape, dtype=dtype)
            self._arrays[key] = arr
        return arr

    def zeros(self, tag: str, shape: tuple, dtype=DEFAULT_DTYPE) -> np.ndarray:
        arr = self.take(tag, shape, dtype)
        arr[...] = 0
        return arr

    @property
    def n_buffers(self) -> int:
        return len(self._arrays)

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for a in self._arrays.values())


def cached_scatter_plan(cache: dict, key, indices, n_rows: int) -> ScatterPlan:
    """Fetch or build a :class:`ScatterPlan` in a per-object cache."""
    plan = cache.get(key)
    if plan is None:
        plan = ScatterPlan(indices, n_rows)
        cache[key] = plan
    return plan
