"""One-dimensional quadrature rules on the reference interval [0, 1].

The matrix-free evaluation of DG operators (Section 3.1 of the paper)
integrates cell and face terms by Gaussian quadrature whose points, in
combination with the tensor-product structure of the basis, enable sum
factorization.  Two families are provided:

* :func:`gauss` — Gauss–Legendre rules, exact for polynomials of degree
  ``2 n - 1``; used for all volume and face integrals.
* :func:`gauss_lobatto` — Gauss–Lobatto rules including the interval end
  points; used as *nodal points* of the Lagrange bases so that face values
  of the solution live on a subset of the node lattice.

deal.II convention: the reference cell is the unit cube, so all 1D rules
are mapped to [0, 1].
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np


@dataclass(frozen=True)
class QuadratureRule:
    """A 1D quadrature rule ``sum_i w_i f(x_i)`` on [0, 1].

    Attributes
    ----------
    points:
        Quadrature points in ascending order, shape ``(n,)``.
    weights:
        Positive quadrature weights summing to 1, shape ``(n,)``.
    """

    points: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", np.asarray(self.points, dtype=float))
        object.__setattr__(self, "weights", np.asarray(self.weights, dtype=float))
        if self.points.ndim != 1 or self.points.shape != self.weights.shape:
            raise ValueError("points and weights must be 1D arrays of equal length")

    @property
    def n_points(self) -> int:
        return self.points.shape[0]

    def integrate(self, f) -> float:
        """Integrate a callable over [0, 1]."""
        return float(np.dot(self.weights, f(self.points)))


@lru_cache(maxsize=64)
def gauss(n_points: int) -> QuadratureRule:
    """Gauss–Legendre rule with ``n_points`` points on [0, 1].

    Exact for polynomials of degree ``2 * n_points - 1``.
    """
    if n_points < 1:
        raise ValueError(f"need at least one quadrature point, got {n_points}")
    x, w = np.polynomial.legendre.leggauss(n_points)
    return QuadratureRule(points=0.5 * (x + 1.0), weights=0.5 * w)


@lru_cache(maxsize=64)
def gauss_lobatto(n_points: int) -> QuadratureRule:
    """Gauss–Lobatto–Legendre rule with ``n_points`` points on [0, 1].

    Includes both end points; exact for degree ``2 * n_points - 3``.
    The interior points are the roots of ``P'_{n-1}``, the derivative of
    the Legendre polynomial, computed via the eigenvalues of the Jacobi
    matrix of the Jacobi(1,1) polynomials.
    """
    if n_points < 2:
        raise ValueError(f"Gauss-Lobatto needs >= 2 points, got {n_points}")
    if n_points == 2:
        return QuadratureRule(points=np.array([0.0, 1.0]), weights=np.array([0.5, 0.5]))
    m = n_points - 2
    # Interior nodes: roots of Jacobi(1,1) polynomial of degree m, i.e.
    # eigenvalues of its symmetric tridiagonal recurrence matrix.
    k = np.arange(1, m)
    # Jacobi(1,1) recurrence: beta_k = k(k+2) / ((2k+1)(2k+3))
    beta = np.sqrt(k * (k + 2.0) / ((2.0 * k + 1.0) * (2.0 * k + 3.0)))
    if m == 1:
        interior = np.array([0.0])
    else:
        T = np.diag(beta, 1) + np.diag(beta, -1)
        interior = np.linalg.eigvalsh(T)
    x = np.concatenate(([-1.0], np.sort(interior), [1.0]))
    # Weights on [-1, 1]: w_i = 2 / (n(n-1) P_{n-1}(x_i)^2)
    n = n_points
    P = np.polynomial.legendre.Legendre.basis(n - 1)(x)
    w = 2.0 / (n * (n - 1) * P**2)
    return QuadratureRule(points=0.5 * (x + 1.0), weights=0.5 * w)


def tensor_points(rule: QuadratureRule, dim: int) -> np.ndarray:
    """Tensor-product quadrature points in ``dim`` dimensions.

    Returns an array of shape ``(n**dim, dim)`` in lexicographic ordering
    with the *first* coordinate fastest, matching the dof/quad layout used
    by the sum-factorization kernels (x fastest, z slowest).
    """
    n = rule.n_points
    grids = np.meshgrid(*([rule.points] * dim), indexing="ij")
    # indexing="ij" makes the first axis the x index; we want x fastest in
    # the flattened ordering, so reverse axes before reshaping.
    pts = np.stack([g.transpose(*reversed(range(dim))).ravel() for g in grids], axis=-1)
    return pts


def tensor_weights(rule: QuadratureRule, dim: int) -> np.ndarray:
    """Tensor-product quadrature weights, flattened with x fastest."""
    w = rule.weights
    out = w
    for _ in range(dim - 1):
        out = np.multiply.outer(w, out)
    return out.ravel()
