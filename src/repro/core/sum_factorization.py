"""Sum-factorized tensor-product kernels (Section 3.1, Eq. (7)).

A DG solution on a hexahedral element of degree ``k`` has
``(k+1)^3`` coefficients stored as a 3D tensor.  Interpolating it to the
``n_q^3`` quadrature points costs ``O(n^4)`` per element instead of the
naive ``O(n^6)`` by applying the 1D interpolation matrix along one tensor
dimension at a time — *sum factorization*.  Everything the matrix-free
operators in :mod:`repro.core.operators` do is composed of the primitives
in this module.

Data layout (the Python analogue of cross-element SIMD vectorization):
all element data is batched as ``u[c, iz, iy, ix]`` — the leading cell
axis plays the role of the AVX-512 lanes of the paper, and NumPy executes
each 1D contraction as one large matrix product over all cells at once.

Dimension convention: dimension ``d = 0`` is x (the *last*, fastest array
axis), ``d = 1`` is y, ``d = 2`` is z.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .backend import kernel_dtype
from .basis import ShapeMatrices, shape_matrices
from .even_odd import EvenOddMatrix

_F64 = np.dtype(np.float64)

#: cached ``kron(M, I_n0)`` factors for the middle-axis GEMM path.  The
#: key is content-based (shape, dtype, bytes, n0) so transient views of
#: the same matrix — ``M.T``, ``fv[None, :]`` — hit the cache; hashing
#: the few hundred bytes of a 1D shape matrix costs far less than the
#: ``np.kron`` rebuild it avoids.
_kron_cache: dict = {}

#: largest trailing extent for which the middle-axis contraction is
#: folded into one GEMM against ``kron(M, I)``.  The fused product does
#: ``n0``-fold redundant Flops, but replaces thousands of ``(k+1)^2``
#: stacked products with a single BLAS call — a large net win for every
#: realistic quadrature size.
_KRON_MAX_TRAIL = 8


def _kron_identity(M: np.ndarray, n0: int) -> np.ndarray:
    key = (M.shape, M.dtype.char, M.tobytes(), n0)
    KM = _kron_cache.get(key)
    if KM is None:
        KM = np.kron(M, np.eye(n0, dtype=M.dtype))
        if len(_kron_cache) < 512:  # backstop against unbounded growth
            _kron_cache[key] = KM
    return KM


def apply_1d(
    M: np.ndarray, u: np.ndarray, dim: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Contract matrix ``M`` with tensor ``u`` along tensor dimension ``dim``.

    ``u`` has shape ``(..., n_2, n_1, n_0)`` (trailing three axes are the
    tensor axes, anything before is batch).  The result replaces the size
    of dimension ``dim`` by ``M.shape[0]``:

        out[..., i_dim'] = sum_j M[i_dim', j] u[..., j ...]

    ``out``, when given, receives the result (its dtype must match the
    promoted result dtype so no rounding changes sneak in).

    Contiguous inputs take shape-folded GEMM paths: the whole batch is
    reshaped so BLAS sees one large product (dim 0) or a short stack of
    wide products (dims 1-2) instead of thousands of ``(k+1) x (k+1)``
    matrices — this is where single precision actually buys bandwidth,
    since sgemm streams half the bytes of dgemm.
    """
    axis = u.ndim - 1 - dim
    m, n = M.shape
    if u.flags.c_contiguous:
        # a strided ``out`` cannot alias the GEMM buffer; compute fresh
        # and copy — still far cheaper than the per-slice matmul stack
        fold = out if out is not None and out.flags.c_contiguous else None
        if dim == 0:
            # one GEMM over every remaining axis
            res2d = np.matmul(
                u.reshape(-1, n), M.T,
                out=None if fold is None else fold.reshape(-1, m),
            )
            res = res2d.reshape(u.shape[:-1] + (m,)) if fold is None else fold
        else:
            lead = u.shape[: axis]
            trail = u.shape[axis + 1:]
            tr = int(np.prod(trail))
            if dim == 1 and tr <= _KRON_MAX_TRAIL:
                # fold the (n1, n0) block and contract against kron(M, I)
                # in one GEMM — n0-fold redundant Flops, but a single
                # sgemm/dgemm instead of a stack of (k+1)^2 products
                K = _kron_identity(M, tr)
                res2 = np.matmul(
                    u.reshape(-1, n * tr), K.T,
                    out=None if fold is None else fold.reshape(-1, m * tr),
                )
                res = res2.reshape(lead + (m,) + trail) if fold is None else fold
            else:
                # (lead..., n, trail...) -> stack of (n, prod(trail))
                # right-hand sides; results land in the natural layout
                u3 = u.reshape(-1, n, tr)
                res3 = np.matmul(
                    M, u3, out=None if fold is None else fold.reshape(-1, m, tr)
                )
                res = res3.reshape(lead + (m,) + trail) if fold is None else fold
        if out is None or fold is not None:
            return res
        out[...] = res
        return out
    moved = np.moveaxis(u, axis, -1)
    if out is None:
        res = moved @ M.T
        return np.moveaxis(res, -1, axis)
    np.matmul(moved, M.T, out=np.moveaxis(out, axis, -1))
    return out


@dataclass(frozen=True)
class TensorProductKernel:
    """Bundle of 1D shape matrices + batched 3D evaluation primitives.

    Parameters
    ----------
    degree:
        Polynomial degree ``k`` of the scalar space.
    n_q_points:
        1D Gauss points per direction (default ``k + 1``).
    use_even_odd:
        Apply 1D matrices through their even–odd decomposition, the
        Flop-halving optimization of Kronbichler & Kormann (2019).  The
        result is bit-for-bit a different rounding but mathematically
        identical; tests assert agreement to machine precision.
    use_collocation:
        The *change-of-basis* optimization of Section 3.1: transform the
        nodal coefficients once into the Lagrange basis collocated at the
        quadrature points, after which the interpolation matrix is the
        identity and gradients need one collocation-derivative sweep per
        direction — 6 tensor sweeps for values+gradients instead of 9.
        Requires ``n_q_points == degree + 1``; cell kernels only (face
        traces stay in the nodal basis).
    """

    degree: int
    n_q_points: int = 0
    use_even_odd: bool = False
    use_collocation: bool = False

    def __post_init__(self) -> None:
        nq = self.n_q_points or self.degree + 1
        object.__setattr__(self, "n_q_points", nq)
        sm = shape_matrices(self.degree, nq)
        object.__setattr__(self, "_sm", sm)
        # dtype-matched copies of every 1D factor, keyed (name, dtype).
        # The float64 masters live here too; float32 copies are cast once
        # on first use so single-precision sweeps never touch a float64
        # matrix (which would silently promote the whole contraction).
        object.__setattr__(self, "_mat_cache", {
            ("interp", _F64): sm.interp,
            ("grad", _F64): sm.grad,
            ("interp_t", _F64): np.ascontiguousarray(sm.interp.T),
            ("grad_t", _F64): np.ascontiguousarray(sm.grad.T),
            ("face_value", _F64): sm.face_value,
            ("face_grad", _F64): sm.face_grad,
        })
        if self.use_even_odd:
            object.__setattr__(self, "_interp_eo", EvenOddMatrix(sm.interp, "even"))
            object.__setattr__(self, "_grad_eo", EvenOddMatrix(sm.grad, "odd"))
            object.__setattr__(
                self, "_interp_t_eo", EvenOddMatrix(sm.interp.T, "even")
            )
            object.__setattr__(self, "_grad_t_eo", EvenOddMatrix(sm.grad.T, "odd"))
        if self.use_collocation:
            if nq != self.degree + 1:
                raise ValueError(
                    "the change-of-basis path needs n_q == degree + 1 "
                    "(square, invertible transform)"
                )
            # S: nodal (Gauss-Lobatto) coefficients -> values at Gauss
            # points == coefficients in the collocation basis
            sm_co = shape_matrices(self.degree, nq, nodes="gauss")
            object.__setattr__(self, "_co_grad", sm_co.grad)
            self._mat_cache[("co_grad", _F64)] = sm_co.grad
            self._mat_cache[("co_grad_t", _F64)] = np.ascontiguousarray(sm_co.grad.T)

    # -- 1D matrices ---------------------------------------------------
    @property
    def shape(self) -> ShapeMatrices:
        return self._sm  # type: ignore[attr-defined]

    @property
    def n_dofs_1d(self) -> int:
        return self.degree + 1

    @property
    def n_dofs_cell(self) -> int:
        return (self.degree + 1) ** 3

    @property
    def n_q_cell(self) -> int:
        return self.n_q_points**3

    @property
    def quadrature_weights(self) -> np.ndarray:
        """Tensor-product quadrature weights, shape (n_q, n_q, n_q)."""
        w = self.shape.quadrature.weights
        return w[:, None, None] * w[None, :, None] * w[None, None, :]

    # -- internal dispatch ----------------------------------------------
    def _mat(self, name: str, dtype: np.dtype) -> np.ndarray:
        """The 1D factor ``name`` cast to ``dtype`` (cached per kernel)."""
        cache = self._mat_cache  # type: ignore[attr-defined]
        key = (name, dtype)
        M = cache.get(key)
        if M is None:
            base = cache.get((name, _F64))
            if base is None:
                if name != "nodal_diff":
                    raise KeyError(name)
                basis = self.shape.basis
                base = basis.derivatives(basis.nodes)
                cache[(name, _F64)] = base
            M = np.ascontiguousarray(base, dtype=dtype)
            cache[key] = M
        return M

    def _apply(self, which: str, u: np.ndarray, dim: int) -> np.ndarray:
        if self.use_even_odd:
            eo: EvenOddMatrix = getattr(self, f"_{which}_eo")
            return eo.apply(u, dim)
        return apply_1d(self._mat(which, kernel_dtype(u.dtype)), u, dim)

    # -- cell kernels (operator I_e and I_e^T of Eq. (7)) ---------------
    def _ws_dtype(self, u: np.ndarray) -> np.dtype:
        """Compute dtype of a sweep: float32 inputs stay float32 (the
        1D factors are fetched as dtype-matched copies), everything else
        computes in float64."""
        return kernel_dtype(u.dtype)

    def values(self, u: np.ndarray, ws=None) -> np.ndarray:
        """Interpolate nodal coefficients to quadrature-point values.

        ``u``: ``(..., n, n, n)`` -> ``(..., n_q, n_q, n_q)``.

        ``ws`` (a :class:`repro.core.plans.Workspace`) routes every sweep
        through preallocated buffers; the returned array is workspace-
        owned and must be consumed before the next ``ws``-based call.
        """
        if ws is None or self.use_even_odd:
            v = self._apply("interp", u, 0)
            v = self._apply("interp", v, 1)
            return self._apply("interp", v, 2)
        lead, n, nq = u.shape[:-3], self.n_dofs_1d, self.n_q_points
        dt = self._ws_dtype(u)
        M = self._mat("interp", dt)
        v = apply_1d(M, u, 0, out=ws.take("tpk.val.0", lead + (n, n, nq), dt))
        v = apply_1d(M, v, 1, out=ws.take("tpk.val.1", lead + (n, nq, nq), dt))
        return apply_1d(M, v, 2, out=ws.take("tpk.val.2", lead + (nq, nq, nq), dt))

    def gradients(self, u: np.ndarray, ws=None) -> np.ndarray:
        """Reference-coordinate gradients at quadrature points.

        ``u``: ``(..., n, n, n)`` -> ``(..., 3, n_q, n_q, n_q)`` where the
        new axis indexes d/dx̂_0, d/dx̂_1, d/dx̂_2.  See :meth:`values`
        for the ``ws`` contract.
        """
        if self.use_collocation:
            return self.values_and_gradients(u, ws)[1]
        if ws is None or self.use_even_odd:
            # shared partial interpolations to save work (collocation reuse)
            ux = self._apply("interp", u, 0)
            uxy = self._apply("interp", ux, 1)
            g0 = self._apply("interp", self._apply("grad", self._apply("interp", u, 1), 0), 2)
            g1 = self._apply("interp", self._apply("grad", ux, 1), 2)
            g2 = self._apply("grad", uxy, 2)
            return np.stack([g0, g1, g2], axis=-4)
        lead, n, nq = u.shape[:-3], self.n_dofs_1d, self.n_q_points
        dt = self._ws_dtype(u)
        M, G = self._mat("interp", dt), self._mat("grad", dt)
        out = ws.take("tpk.grad.out", lead + (3, nq, nq, nq), dt)
        ux = apply_1d(M, u, 0, out=ws.take("tpk.grad.ux", lead + (n, n, nq), dt))
        uxy = apply_1d(M, ux, 1, out=ws.take("tpk.grad.uxy", lead + (n, nq, nq), dt))
        uy = apply_1d(M, u, 1, out=ws.take("tpk.grad.uy", lead + (n, nq, n), dt))
        t = ws.take("tpk.grad.t", lead + (n, nq, nq), dt)
        apply_1d(M, apply_1d(G, uy, 0, out=t), 2, out=out[..., 0, :, :, :])
        apply_1d(M, apply_1d(G, ux, 1, out=t), 2, out=out[..., 1, :, :, :])
        apply_1d(G, uxy, 2, out=out[..., 2, :, :, :])
        return out

    def values_and_gradients(
        self, u: np.ndarray, ws=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Both values and reference gradients, sharing intermediates."""
        if self.use_collocation:
            # change of basis: 3 transform sweeps, then one collocation-
            # derivative sweep per direction (6 total instead of 9)
            D = self._mat("co_grad", self._ws_dtype(u))
            vals = self.values(u, ws)
            if ws is None:
                g0 = apply_1d(D, vals, 0)
                g1 = apply_1d(D, vals, 1)
                g2 = apply_1d(D, vals, 2)
                return vals, np.stack([g0, g1, g2], axis=-4)
            g = ws.take("tpk.vg.grad", vals.shape[:-3] + (3,) + vals.shape[-3:],
                        self._ws_dtype(vals))
            apply_1d(D, vals, 0, out=g[..., 0, :, :, :])
            apply_1d(D, vals, 1, out=g[..., 1, :, :, :])
            apply_1d(D, vals, 2, out=g[..., 2, :, :, :])
            return vals, g
        if ws is None or self.use_even_odd:
            ux = self._apply("interp", u, 0)
            uxy = self._apply("interp", ux, 1)
            vals = self._apply("interp", uxy, 2)
            g0 = self._apply("interp", self._apply("grad", self._apply("interp", u, 1), 0), 2)
            g1 = self._apply("interp", self._apply("grad", ux, 1), 2)
            g2 = self._apply("grad", uxy, 2)
            return vals, np.stack([g0, g1, g2], axis=-4)
        lead, n, nq = u.shape[:-3], self.n_dofs_1d, self.n_q_points
        dt = self._ws_dtype(u)
        M, G = self._mat("interp", dt), self._mat("grad", dt)
        g = ws.take("tpk.vg.grad", lead + (3, nq, nq, nq), dt)
        ux = apply_1d(M, u, 0, out=ws.take("tpk.grad.ux", lead + (n, n, nq), dt))
        uxy = apply_1d(M, ux, 1, out=ws.take("tpk.grad.uxy", lead + (n, nq, nq), dt))
        vals = apply_1d(M, uxy, 2, out=ws.take("tpk.vg.vals", lead + (nq, nq, nq), dt))
        uy = apply_1d(M, u, 1, out=ws.take("tpk.grad.uy", lead + (n, nq, n), dt))
        t = ws.take("tpk.grad.t", lead + (n, nq, nq), dt)
        apply_1d(M, apply_1d(G, uy, 0, out=t), 2, out=g[..., 0, :, :, :])
        apply_1d(M, apply_1d(G, ux, 1, out=t), 2, out=g[..., 1, :, :, :])
        apply_1d(G, uxy, 2, out=g[..., 2, :, :, :])
        return vals, g

    def integrate_values(self, q: np.ndarray, ws=None,
                         out: np.ndarray | None = None) -> np.ndarray:
        """Test against values: transpose of :meth:`values`.

        ``q``: quadrature data ``(..., n_q, n_q, n_q)`` (already multiplied
        by JxW etc.) -> nodal residual contributions ``(..., n, n, n)``.
        ``out`` (optional, with ``ws``) receives the final sweep so the
        result is caller-owned rather than workspace-owned.
        """
        if ws is None or self.use_even_odd:
            v = self._apply("interp_t", q, 0)
            v = self._apply("interp_t", v, 1)
            res = self._apply("interp_t", v, 2)
            if out is not None:
                np.copyto(out, res)
                return out
            return res
        lead, n, nq = q.shape[:-3], self.n_dofs_1d, self.n_q_points
        dt = self._ws_dtype(q)
        Mt = self._mat("interp_t", dt)
        v = apply_1d(Mt, q, 0, out=ws.take("tpk.iv.0", lead + (nq, nq, n), dt))
        v = apply_1d(Mt, v, 1, out=ws.take("tpk.iv.1", lead + (nq, n, n), dt))
        if out is None:
            out = ws.take("tpk.iv.2", lead + (n, n, n), dt)
        return apply_1d(Mt, v, 2, out=out)

    def integrate_gradients(self, q: np.ndarray, ws=None,
                            out: np.ndarray | None = None) -> np.ndarray:
        """Test against gradients: transpose of :meth:`gradients`.

        ``q``: ``(..., 3, n_q, n_q, n_q)`` -> ``(..., n, n, n)``; see
        :meth:`integrate_values` for the ``ws``/``out`` contract.
        """
        q0 = q[..., 0, :, :, :]
        q1 = q[..., 1, :, :, :]
        q2 = q[..., 2, :, :, :]
        if self.use_collocation:
            Dt = self._mat("co_grad_t", self._ws_dtype(q))
            if ws is None:
                acc = apply_1d(Dt, q0, 0) + apply_1d(Dt, q1, 1) + apply_1d(Dt, q2, 2)
                res = self.integrate_values(acc)
                if out is not None:
                    np.copyto(out, res)
                    return out
                return res
            dt = self._ws_dtype(q)
            acc = apply_1d(Dt, q0, 0, out=ws.take("tpk.ig.acc", q0.shape, dt))
            t = ws.take("tpk.ig.t", q0.shape, dt)
            acc += apply_1d(Dt, q1, 1, out=t)
            acc += apply_1d(Dt, q2, 2, out=t)
            return self.integrate_values(acc, ws, out=out)
        if ws is None or self.use_even_odd:
            r = self._apply("interp_t", self._apply("interp_t", self._apply("grad_t", q0, 0), 1), 2)
            r += self._apply("interp_t", self._apply("grad_t", self._apply("interp_t", q1, 0), 1), 2)
            r += self._apply("grad_t", self._apply("interp_t", self._apply("interp_t", q2, 0), 1), 2)
            if out is not None:
                np.copyto(out, r)
                return out
            return r
        lead, n, nq = q0.shape[:-3], self.n_dofs_1d, self.n_q_points
        dt = self._ws_dtype(q)
        Mt, Gt = self._mat("interp_t", dt), self._mat("grad_t", dt)
        b0 = ws.take("tpk.ig.0", lead + (nq, nq, n), dt)
        b1 = ws.take("tpk.ig.1", lead + (nq, n, n), dt)
        if out is None:
            out = ws.take("tpk.ig.out", lead + (n, n, n), dt)
        t = ws.take("tpk.ig.tmp", lead + (n, n, n), dt)
        apply_1d(Mt, apply_1d(Mt, apply_1d(Gt, q0, 0, out=b0), 1, out=b1), 2, out=out)
        out += apply_1d(Mt, apply_1d(Gt, apply_1d(Mt, q1, 0, out=b0), 1, out=b1), 2, out=t)
        out += apply_1d(Gt, apply_1d(Mt, apply_1d(Mt, q2, 0, out=b0), 1, out=b1), 2, out=t)
        return out

    def integrate_values_and_gradients(
        self, qv: np.ndarray, qg: np.ndarray
    ) -> np.ndarray:
        """Combined transpose of :meth:`values_and_gradients`."""
        return self.integrate_values(qv) + self.integrate_gradients(qg)

    # -- nodal-lattice kernels (geometry precomputation) ----------------
    @property
    def nodal_diff(self) -> np.ndarray:
        """1D differentiation matrix at the nodal points themselves."""
        return self._mat("nodal_diff", _F64)

    def nodal_diff_matrix(self, dtype=None) -> np.ndarray:
        """:attr:`nodal_diff` cast to ``dtype`` (cached); float32 callers
        use this so the trace kernels do not promote."""
        return self._mat("nodal_diff", _F64 if dtype is None else np.dtype(dtype))

    def nodal_gradients(self, u: np.ndarray) -> np.ndarray:
        """Reference gradients evaluated at the nodal lattice (not the
        quadrature points): ``(..., n, n, n) -> (..., 3, n, n, n)``.

        Used to differentiate the precomputed polynomial geometry
        (Heltai et al. 2021) when building metric terms.
        """
        D = self._mat("nodal_diff", kernel_dtype(u.dtype))
        return np.stack(
            [apply_1d(D, u, 0), apply_1d(D, u, 1), apply_1d(D, u, 2)], axis=-4
        )

    def face_nodal_trace(self, u: np.ndarray, face: int) -> np.ndarray:
        """Restrict nodal coefficients to the 2D nodal lattice of a face.

        Gauss-Lobatto nodes include the end points, so the trace is a pure
        slice: ``(..., n, n, n) -> (..., n, n)`` in (a, b) face frame.
        """
        d, s = divmod(face, 2)
        idx = 0 if s == 0 else self.n_dofs_1d - 1
        axis = u.ndim - 1 - d
        return np.take(u, idx, axis=axis)

    def face_nodal_normal_derivative(self, u: np.ndarray, face: int) -> np.ndarray:
        """d/dx̂_d of the solution, evaluated at the 2D nodal lattice of
        the face: ``(..., n, n, n) -> (..., n, n)``."""
        d, s = divmod(face, 2)
        fg = self._mat("face_grad", kernel_dtype(u.dtype))[s]
        traced = apply_1d(fg[None, :], u, d)
        return np.squeeze(traced, axis=traced.ndim - 1 - d)

    def subface_interp_matrix(self, child: int) -> np.ndarray:
        """1D matrix interpolating face-nodal data to the quadrature
        points of one half ``child in {0, 1}`` of the interval — the
        sub-face interpolation used on 2:1 hanging faces (Section 3.4)."""
        basis = self.shape.basis
        q = self.shape.quadrature.points
        return basis.values(0.5 * q + 0.5 * child)

    def _subface_mat(self, child: int, dtype: np.dtype,
                     transpose: bool = False) -> np.ndarray:
        """Cached, dtype-matched copy of :meth:`subface_interp_matrix`
        (hanging faces sit on the hot vmult path, so no per-call
        tabulation and no float64 promotion of float32 traces)."""
        cache = self._mat_cache  # type: ignore[attr-defined]
        key = ("subface_t" if transpose else "subface", child, dtype)
        M = cache.get(key)
        if M is None:
            base = self.subface_interp_matrix(child)
            if transpose:
                base = base.T
            M = np.ascontiguousarray(base, dtype=dtype)
            cache[key] = M
        return M

    def face_nodal_to_quad(
        self, t: np.ndarray, subface: tuple[int, int] | None = None
    ) -> np.ndarray:
        """Interpolate a nodal 2D face tensor (a, b axes last) to the face
        quadrature points, optionally restricted to subface ``(sa, sb)``."""
        if subface is None:
            return self._face_interp(t)
        dt = kernel_dtype(t.dtype)
        t = apply_1d_2d(self._subface_mat(subface[1], dt), t, 0)
        return apply_1d_2d(self._subface_mat(subface[0], dt), t, 1)

    def face_quad_to_nodal_t(
        self, q: np.ndarray, subface: tuple[int, int] | None = None
    ) -> np.ndarray:
        """Transpose of :meth:`face_nodal_to_quad`: integrate quadrature
        data against the face-nodal basis."""
        if subface is None:
            return self._face_interp_t(q)
        dt = kernel_dtype(q.dtype)
        q = apply_1d_2d(self._subface_mat(subface[1], dt, transpose=True), q, 0)
        return apply_1d_2d(self._subface_mat(subface[0], dt, transpose=True), q, 1)

    def expand_nodal_trace(self, t: np.ndarray, face: int) -> np.ndarray:
        """Transpose of :meth:`face_nodal_trace`: scatter a nodal 2D face
        tensor into a full (zero-padded) cell tensor."""
        d, s = divmod(face, 2)
        n = self.n_dofs_1d
        insert_at = t.ndim + 1 - 1 - d
        out_shape = list(t.shape)
        out_shape.insert(insert_at, n)
        out = np.zeros(out_shape, dtype=t.dtype)
        idx = [slice(None)] * out.ndim
        idx[insert_at] = 0 if s == 0 else n - 1
        out[tuple(idx)] = t
        return out

    def expand_nodal_normal_derivative(self, t: np.ndarray, face: int) -> np.ndarray:
        """Transpose of :meth:`face_nodal_normal_derivative`."""
        d, s = divmod(face, 2)
        fvec = self._mat("face_grad", kernel_dtype(t.dtype))[s]
        return self._expand_face(t, fvec, d)

    # -- face kernels (operator I_f of Eq. (7)) --------------------------
    def face_values(self, u: np.ndarray, face: int) -> np.ndarray:
        """Restrict nodal coefficients to one of the 6 hex faces and
        interpolate to the face quadrature points.

        ``face`` encodes (normal dimension d, side s) as ``face = 2 d + s``
        with ``s = 0`` the low and ``s = 1`` the high side.  The result has
        shape ``(..., n_q, n_q)`` whose two axes are the remaining tensor
        dimensions in descending order (e.g. face normal to x keeps
        ``(z, y)``).
        """
        d, s = divmod(face, 2)
        fv = self._mat("face_value", kernel_dtype(u.dtype))[s]
        traced = apply_1d(fv[None, :], u, d)
        traced = np.squeeze(traced, axis=traced.ndim - 1 - d)
        return self._face_interp(traced)

    def face_normal_derivative(self, u: np.ndarray, face: int) -> np.ndarray:
        """Reference-coordinate normal derivative d/dx̂_d on a face,
        interpolated to the face quadrature points."""
        d, s = divmod(face, 2)
        fg = self._mat("face_grad", kernel_dtype(u.dtype))[s]
        traced = apply_1d(fg[None, :], u, d)
        traced = np.squeeze(traced, axis=traced.ndim - 1 - d)
        return self._face_interp(traced)

    def face_integrate_values(self, q: np.ndarray, face: int) -> np.ndarray:
        """Transpose of :meth:`face_values`: scatter face-quadrature data
        back into cell nodal contributions ``(..., n, n, n)``."""
        d, s = divmod(face, 2)
        fv = self._mat("face_value", kernel_dtype(q.dtype))[s]
        nodal2d = self._face_interp_t(q)
        return self._expand_face(nodal2d, fv, d)

    def face_integrate_normal_derivative(self, q: np.ndarray, face: int) -> np.ndarray:
        """Transpose of :meth:`face_normal_derivative`."""
        d, s = divmod(face, 2)
        fg = self._mat("face_grad", kernel_dtype(q.dtype))[s]
        nodal2d = self._face_interp_t(q)
        return self._expand_face(nodal2d, fg, d)

    # -- helpers ---------------------------------------------------------
    def _mat2d(self, name: str, dtype: np.dtype) -> np.ndarray:
        """``kron(M, M)`` of the 1D factor ``name``: applies ``M`` along
        both face axes in a single GEMM (cached per kernel and dtype)."""
        cache = self._mat_cache  # type: ignore[attr-defined]
        key = (name + "@2d", dtype)
        K = cache.get(key)
        if K is None:
            M = self._mat(name, dtype)
            K = np.kron(M, M)
            cache[key] = K
        return K

    def _face_interp(self, t: np.ndarray) -> np.ndarray:
        """Interpolate a 2D nodal face tensor to face quadrature points."""
        dt = kernel_dtype(t.dtype)
        if t.flags.c_contiguous:
            K = self._mat2d("interp", dt)
            qq, nn = K.shape
            q = int(round(qq**0.5))
            res = np.matmul(t.reshape(-1, nn), K.T)
            return res.reshape(t.shape[:-2] + (q, q))
        M = self._mat("interp", dt)
        t = apply_1d_2d(M, t, 0)
        return apply_1d_2d(M, t, 1)

    def _face_interp_t(self, q: np.ndarray) -> np.ndarray:
        dt = kernel_dtype(q.dtype)
        if q.flags.c_contiguous:
            K = self._mat2d("interp_t", dt)
            nn, qq = K.shape
            n = int(round(nn**0.5))
            res = np.matmul(q.reshape(-1, qq), K.T)
            return res.reshape(q.shape[:-2] + (n, n))
        Mt = self._mat("interp_t", dt)
        q = apply_1d_2d(Mt, q, 0)
        return apply_1d_2d(Mt, q, 1)

    def _expand_face(self, nodal2d: np.ndarray, fvec: np.ndarray, d: int) -> np.ndarray:
        """Tensor a 2D face contribution with the 1D trace vector along the
        normal dimension ``d``, producing a full 3D cell tensor."""
        # Cell tensor axes are (..., z, y, x).  A face normal to dimension d
        # removes array axis (ndim-1-d) of the 3D tensor; re-insert there.
        insert_at = nodal2d.ndim + 1 - 1 - d  # ndim after insertion is +1
        expanded = np.expand_dims(nodal2d, axis=insert_at)
        shape_vec = [1] * expanded.ndim
        shape_vec[insert_at] = fvec.size
        return expanded * fvec.reshape(shape_vec)


def apply_1d_2d(
    M: np.ndarray, t: np.ndarray, dim: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Apply a 1D matrix along dimension ``dim`` of a (batched) 2D tensor
    ``t`` of shape ``(..., n_1, n_0)`` (dim 0 = last axis).

    Same shape-folded GEMM strategy as :func:`apply_1d` — face batches
    are small, so avoiding the per-face matmul dispatch matters even
    more here."""
    axis = t.ndim - 1 - dim
    m, n = M.shape
    if t.flags.c_contiguous:
        fold = out if out is not None and out.flags.c_contiguous else None
        if dim == 0:
            res2d = np.matmul(
                t.reshape(-1, n), M.T,
                out=None if fold is None else fold.reshape(-1, m),
            )
            res = res2d.reshape(t.shape[:-1] + (m,)) if fold is None else fold
        else:
            n0 = t.shape[-1]
            if n0 <= _KRON_MAX_TRAIL:
                K = _kron_identity(M, n0)
                res2 = np.matmul(
                    t.reshape(-1, n * n0), K.T,
                    out=None if fold is None else fold.reshape(-1, m * n0),
                )
                res = res2.reshape(t.shape[:-2] + (m, n0)) if fold is None else fold
            else:
                t3 = t.reshape(-1, n, n0)
                res3 = np.matmul(
                    M, t3, out=None if fold is None else fold.reshape(-1, m, n0)
                )
                res = res3.reshape(t.shape[:-2] + (m, n0)) if fold is None else fold
        if out is None or fold is not None:
            return res
        out[...] = res
        return out
    moved = np.moveaxis(t, axis, -1)
    if out is None:
        return np.moveaxis(moved @ M.T, -1, axis)
    np.matmul(moved, M.T, out=np.moveaxis(out, axis, -1))
    return out
