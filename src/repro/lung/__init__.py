"""The lung application substrate: airway morphometry, tree growth, hex
mesh generation, windkessel outlet models, the mechanical ventilator,
and the coupled ventilation simulation (Sections 3.3 and 5.3)."""

from .morphometry import (
    AIR_DENSITY,
    AIR_DYNAMIC_VISCOSITY,
    AIR_KINEMATIC_VISCOSITY,
    CMH2O,
    LITER,
    airway_dimensions,
    n_airways,
    poiseuille_resistance,
    truncated_tree_resistance,
)
from .tree import Airway, AirwayTree, grow_airway_tree
from .airway_mesh import INLET_ID, OUTLET_ID_START, LungMesh, airway_tree_mesh
from .windkessel import Compartment, WindkesselBank
from .ventilator import (
    PressureControlledVentilator,
    TubusModel,
    VentilationSettings,
    expected_tidal_volume,
)
from .simulation import CycleRecord, LungVentilationSimulation
from .ensemble import EnsembleLungSimulation, MemberRecord

__all__ = [
    "AIR_DENSITY",
    "AIR_DYNAMIC_VISCOSITY",
    "AIR_KINEMATIC_VISCOSITY",
    "CMH2O",
    "LITER",
    "airway_dimensions",
    "n_airways",
    "poiseuille_resistance",
    "truncated_tree_resistance",
    "Airway",
    "AirwayTree",
    "grow_airway_tree",
    "INLET_ID",
    "OUTLET_ID_START",
    "LungMesh",
    "airway_tree_mesh",
    "Compartment",
    "WindkesselBank",
    "PressureControlledVentilator",
    "TubusModel",
    "VentilationSettings",
    "expected_tidal_volume",
    "CycleRecord",
    "LungVentilationSimulation",
    "EnsembleLungSimulation",
    "MemberRecord",
]
