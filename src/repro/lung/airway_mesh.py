"""Hex-only mesh generation for airway trees (Section 3.3, Figure 4).

Maps an :class:`~repro.lung.tree.AirwayTree` onto the square-duct
tube-tree mesher: the *major* daughter of every bifurcation continues
the parent tube (transition section), the *minor* daughter attaches as a
side branch; terminal airways receive one boundary indicator each so the
windkessel bank can impose per-outlet pressures.  Upper airways are then
refined locally through the forest-of-octrees (Figure 4 (c)), balancing
element sizes across generations and resolving the complex flow patterns
of the upper airways under mechanical ventilation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mesh.octree import Forest
from ..mesh.tube_tree import BranchSpec, tube_tree_mesh
from .tree import AirwayTree

#: boundary indicator of the tracheal inlet
INLET_ID = 1
#: terminal outlets get OUTLET_ID_START, OUTLET_ID_START + 1, ...
OUTLET_ID_START = 2


@dataclass
class LungMesh:
    """The meshed airway tree plus its bookkeeping."""

    forest: Forest
    tree: AirwayTree
    outlet_ids: list[int]  # boundary id per terminal airway (same order)
    branch_generation: np.ndarray  # generation of each branch

    @property
    def n_outlets(self) -> int:
        return len(self.outlet_ids)


def airway_tree_mesh(
    tree: AirwayTree,
    refine_upper_generations: int = 0,
    max_refine_generation: int = 2,
    n_axial_min: int = 2,
) -> LungMesh:
    """Mesh a grown airway tree.

    Parameters
    ----------
    refine_upper_generations:
        Octree refinement levels applied to cells of branches with
        generation <= ``max_refine_generation`` (the paper's local
        refinement of large airways; produces 2:1 hanging faces at the
        generation boundary).
    n_axial_min:
        Lower bound on axial cells per branch (side branches need >= 2).
    """
    specs: list[BranchSpec] = []
    outlet_ids: list[int] = []
    next_outlet = OUTLET_ID_START
    gen_of_spec: list[int] = []
    for a in tree.airways:
        if a.parent == -1:
            parent_spec = -1
            side = False
        else:
            parent = tree.airways[a.parent]
            parent_spec = a.parent
            # the first child of each parent is the major daughter
            side = parent.children.index(a.index) > 0
        outlet = 0
        if a.is_terminal:
            outlet = next_outlet
            next_outlet += 1
            outlet_ids.append(outlet)
        h = 0.5 * np.sqrt(np.pi) * a.radius
        n_ax = max(n_axial_min, int(round(a.length / (2 * h))))
        specs.append(
            BranchSpec(
                parent=parent_spec,
                direction=tuple(a.direction),
                length=a.length,
                radius=a.radius,
                outlet_id=outlet,
                side_branch=side,
                n_axial=n_ax,
            )
        )
        gen_of_spec.append(a.generation)
    mesh = tube_tree_mesh(specs, inlet_id=INLET_ID)
    cell_branch = mesh.cell_branch  # type: ignore[attr-defined]
    branch_generation = np.asarray(gen_of_spec)
    forest = Forest(mesh)
    for _ in range(refine_upper_generations):
        upper = [
            leaf
            for leaf in forest.leaves
            if branch_generation[cell_branch[leaf.tree]] <= max_refine_generation
        ]
        forest = forest.refine(upper).balance()
    return LungMesh(
        forest=forest,
        tree=tree,
        outlet_ids=outlet_ids,
        branch_generation=branch_generation,
    )
