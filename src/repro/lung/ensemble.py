"""Batched ensemble lung-ventilation runs: one mesh, one operator
stack, one multigrid hierarchy — N parameter sets advanced together.

The matrix-free hot path carries a leading ensemble axis (state vectors
are ``(E, ndof)``), so every sum-factorization GEMM, scatter, smoother
sweep, and CG iteration serves all members in a single BLAS call.  At
Python scale this is where the batching payoff lives: the per-call
dispatch overhead that dominates small unbatched runs is amortized over
``E`` members (see ``BENCH_vmult.json``'s ``ensemble`` suite for the
measured DoF/s scaling).

Members share the mesh, discretization, solver settings, and time step
(the fastest member sets the shared CFL step); they differ in the
*physics parameters* a patient-variability study sweeps:

* windkessel compartment R/C (``RunConfig.windkessel_resistance_scale``
  / ``windkessel_compliance_scale``),
* the ventilator protocol (``RunConfig.ventilation``: PEEP, driving
  pressure, period, I:E ratio, tidal-volume target).

Per-member physics enters through the pressure-Dirichlet boundary
callables, which return ensemble-stacked ``(E, F, a, b)`` arrays; the
operators broadcast member-independent data and keep ``E = 1`` on the
unbatched bitstream.  Per-member telemetry (CFL, pressure iterations,
windkessel state) is recorded on the step statistics and exported
through member-labelled metrics gauges.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..ns.bc import BoundaryConditions, PressureDirichlet
from ..ns.solver import IncompressibleNavierStokesSolver
from ..robustness.config import RunConfig
from ..telemetry import TRACER
from ..telemetry.metrics import METRICS
from .airway_mesh import INLET_ID, LungMesh, airway_tree_mesh
from .simulation import CycleRecord
from .tree import grow_airway_tree
from .ventilator import PressureControlledVentilator
from .windkessel import WindkesselBank

#: RunConfig fields allowed to differ between ensemble members — the
#: rest (mesh, discretization, solver, dtype) must be shared so the
#: members can ride one operator/multigrid setup
MEMBER_VARIABLE_FIELDS = frozenset(
    {"ventilation", "windkessel_resistance_scale", "windkessel_compliance_scale"}
)

_MEMBER_CFL = METRICS.gauge(
    "repro_ensemble_member_cfl",
    "realized CFL number of each ensemble member (members share dt)",
    labels=("member",),
)
_MEMBER_INLET_FLOW = METRICS.gauge(
    "repro_ensemble_inlet_flow_m3_per_s",
    "tracheal inlet flow rate per ensemble member (inward positive)",
    labels=("member",),
)
_MEMBER_TIDAL = METRICS.gauge(
    "repro_ensemble_tidal_volume_m3",
    "volume stored across all windkessel compartments per member",
    labels=("member",),
)
_MEMBER_P_ITER = METRICS.gauge(
    "repro_ensemble_pressure_iterations",
    "pressure-CG iterations until each member's convergence mask closed",
    labels=("member",),
)


@dataclass
class MemberRecord:
    """End-of-run summary of one ensemble member."""

    member: int
    config: RunConfig
    tidal_volume: float
    dp: float
    cycles: list[CycleRecord]


def _check_shared_fields(configs: Sequence[RunConfig]) -> None:
    base = configs[0].to_dict()
    for m, cfg in enumerate(configs[1:], start=1):
        d = cfg.to_dict()
        for key, value in base.items():
            if key in MEMBER_VARIABLE_FIELDS:
                continue
            if d[key] != value:
                raise ValueError(
                    f"ensemble member {m} differs from member 0 in the "
                    f"shared field {key!r} ({d[key]!r} vs {value!r}); only "
                    f"{sorted(MEMBER_VARIABLE_FIELDS)} may vary across "
                    "members"
                )


class EnsembleLungSimulation:
    """N ventilated-lung parameter sets on one solver setup.

    Parameters
    ----------
    configs:
        One :class:`~repro.robustness.RunConfig` per member.  All
        mesh/discretization/solver fields must agree; members may vary
        the ventilation protocol and the windkessel R/C scales.
    lung_mesh:
        Optional pre-built mesh overriding the tree growth described by
        the shared config fields.
    """

    def __init__(
        self,
        configs: Sequence[RunConfig],
        *,
        lung_mesh: LungMesh | None = None,
    ) -> None:
        configs = list(configs)
        if not configs:
            raise ValueError("need at least one ensemble member")
        _check_shared_fields(configs)
        self.configs = configs
        self.n_members = E = len(configs)
        base = configs[0]

        if lung_mesh is None:
            tree = grow_airway_tree(
                base.generations, scale=base.scale, seed=base.seed
            )
            lung_mesh = airway_tree_mesh(
                tree, refine_upper_generations=base.refine_upper_generations
            )
        self.lung = lung_mesh
        self.ventilators = [
            PressureControlledVentilator(c.ventilation) for c in configs
        ]
        self.windkessels = [
            WindkesselBank(
                terminal_generation=lung_mesh.tree.n_generations,
                n_outlets=lung_mesh.n_outlets,
                peep=vent.settings.peep,
                resistance_scale=c.windkessel_resistance_scale,
                compliance_scale=c.windkessel_compliance_scale,
            )
            for c, vent in zip(configs, self.ventilators)
        ]
        self._inlet_flow = np.zeros(E)

        def _stacked(x, values):
            """Per-member scalars -> (E, *x.shape) boundary data.  A
            single-member ensemble returns the flat field so E = 1 rides
            the unbatched operator bitstream."""
            vals = np.asarray(values, dtype=float)
            if E == 1:
                return np.full_like(np.asarray(x, dtype=float), vals[0])
            shape = np.shape(x)
            return np.broadcast_to(
                vals.reshape((E,) + (1,) * len(shape)), (E,) + shape
            )

        conditions: dict[int, object] = {
            INLET_ID: PressureDirichlet(
                lambda x, y, z, t: _stacked(
                    x,
                    [
                        vent.tracheal_pressure(t, q)
                        for vent, q in zip(self.ventilators, self._inlet_flow)
                    ],
                )
            )
        }
        for o, bid in enumerate(lung_mesh.outlet_ids):
            conditions[bid] = PressureDirichlet(
                lambda x, y, z, t, _o=o: _stacked(
                    x, [bank.outlet_pressure(_o) for bank in self.windkessels]
                )
            )
        self.bcs = BoundaryConditions(conditions)  # walls default to no-slip
        settings = base.solver
        if not np.isfinite(settings.dt_max):
            # the flow starts from rest: bound the startup step by a small
            # fraction of the fastest member's breathing period
            settings.dt_max = min(
                v.settings.period for v in self.ventilators
            ) / 500.0
        self.solver = IncompressibleNavierStokesSolver(
            lung_mesh.forest,
            base.degree,
            base.viscosity,
            self.bcs,
            settings,
            robustness=base.robustness,
            compute_dtype=base.compute_dtype,
        )
        u0 = np.zeros(
            (E, self.solver.dof_u.n_dofs), dtype=self.solver.compute_dtype
        )
        self.solver.initialize(u0)
        self.cycle_records: list[list[CycleRecord]] = [[] for _ in range(E)]
        self._cycle_inhaled = np.zeros(E)
        self._steps_this_cycle = np.zeros(E, dtype=int)
        self._current_cycle = np.zeros(E, dtype=int)

    # ------------------------------------------------------------------
    @property
    def time(self) -> float:
        return self.solver.scheme.t

    @property
    def recovery_log(self):
        return self.solver.recovery_log

    def step(self, dt: float | None = None):
        """One coupled time step for all members; returns the solver
        statistics (per-member CFL and pressure iterations included)."""
        was_inhaling = np.array(
            [v.is_inhaling(self.time) for v in self.ventilators]
        )
        stats = self.solver.step(dt)
        t0 = time.perf_counter()
        with TRACER.span("coupling"):
            # outlet flows per member: (n_outlets, E), outward positive
            flows = np.stack(
                [
                    np.atleast_1d(self.solver.flow_rate(bid))
                    for bid in self.lung.outlet_ids
                ]
            )
            for e, bank in enumerate(self.windkessels):
                bank.advance(flows[:, e], stats.dt)
            # inlet flow: inward positive for the tubus model
            self._inlet_flow = -np.atleast_1d(self.solver.flow_rate(INLET_ID))
        if METRICS.enabled:
            member_cfl = stats.member_cfl or [stats.cfl] * self.n_members
            member_its = stats.member_pressure_iterations or [
                stats.pressure_iterations
            ] * self.n_members
            for e in range(self.n_members):
                key = str(e)
                _MEMBER_CFL.labels(key).set(member_cfl[e])
                _MEMBER_INLET_FLOW.labels(key).set(self._inlet_flow[e])
                _MEMBER_TIDAL.labels(key).set(self.windkessels[e].total_volume())
                _MEMBER_P_ITER.labels(key).set(member_its[e])
        elapsed = time.perf_counter() - t0
        stats.wall_time += elapsed
        if TRACER.enabled:
            stats.substep_seconds["coupling"] = elapsed
        self._cycle_inhaled += (
            was_inhaling * np.maximum(self._inlet_flow, 0.0) * stats.dt
        )
        self._steps_this_cycle += 1
        # per-member cycle rollover (protocol periods may differ)
        for e, vent in enumerate(self.ventilators):
            cycle = int(self.time / vent.settings.period)
            if cycle > self._current_cycle[e]:
                vent.end_of_cycle(self._cycle_inhaled[e])
                self.cycle_records[e].append(
                    CycleRecord(
                        cycle=int(self._current_cycle[e]),
                        tidal_volume=float(self._cycle_inhaled[e]),
                        dp=vent.dp_history[-2],
                        n_steps=int(self._steps_this_cycle[e]),
                    )
                )
                self._cycle_inhaled[e] = 0.0
                self._steps_this_cycle[e] = 0
                self._current_cycle[e] = cycle
        return stats

    def run(
        self,
        t_end: float,
        *,
        max_steps: int = 10**7,
        dt_initial: float | None = None,
        checkpoints=None,
    ):
        """Advance all members to ``t_end``; the shared driver signature
        (see :meth:`repro.ns.solver.IncompressibleNavierStokesSolver.run`)."""
        stats = []
        if dt_initial is not None and not self.solver.scheme.dt_history:
            stats.append(self.step(min(dt_initial, t_end - self.time)))
            if checkpoints is not None:
                checkpoints.maybe_save(self)
        while self.time < t_end - 1e-12 and len(stats) < max_steps:
            stats.append(self.step())
            if checkpoints is not None:
                checkpoints.maybe_save(self)
        return stats

    # ------------------------------------------------------------------
    def member_velocity(self, e: int) -> np.ndarray:
        """Flat velocity vector of member ``e``."""
        return np.asarray(self.solver.velocity[e])

    def member_pressure(self, e: int):
        p = self.solver.pressure
        return None if p is None else np.asarray(p[e])

    def tidal_volume_delivered(self) -> np.ndarray:
        """Per-member compartment volume, shape ``(E,)``."""
        return np.array([bank.total_volume() for bank in self.windkessels])

    def member_records(self) -> list[MemberRecord]:
        """End-of-run per-member summaries."""
        return [
            MemberRecord(
                member=e,
                config=self.configs[e],
                tidal_volume=float(self.windkessels[e].total_volume()),
                dp=self.ventilators[e].dp,
                cycles=list(self.cycle_records[e]),
            )
            for e in range(self.n_members)
        ]
