"""Airway-tree morphometry of the adult human lung.

Dimensions follow Weibel's symmetric model (Weibel 1963) as tabulated
for dosimetry modeling by Ménache et al. (2008) — the same source the
paper uses to compute the analytic resistance of the *non-resolved*
airway generations (g to 25) behind each terminal outlet.

Generation 0 is the trachea.  The classic regular-dichotomy scalings

    d_g ~ d_0 * 2^{-g/3},   L_g ~ L_0 * 2^{-g/3}

hold well through the conducting zone (to ~g = 16) and are used beyond
the tabulated range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: (diameter [m], length [m]) per Weibel generation for an adult lung,
#: after Ménache et al. (2008) / Weibel (1963), FRC-scaled.
WEIBEL_DIAMETER_LENGTH = {
    0: (0.01800, 0.12000),
    1: (0.01220, 0.04760),
    2: (0.00830, 0.01900),
    3: (0.00560, 0.00760),
    4: (0.00450, 0.01270),
    5: (0.00350, 0.01070),
    6: (0.00280, 0.00900),
    7: (0.00230, 0.00760),
    8: (0.00186, 0.00640),
    9: (0.00154, 0.00540),
    10: (0.00130, 0.00460),
    11: (0.00109, 0.00390),
    12: (0.00095, 0.00330),
    13: (0.00082, 0.00270),
    14: (0.00074, 0.00230),
    15: (0.00066, 0.00200),
    16: (0.00060, 0.00165),
    17: (0.00054, 0.00141),
    18: (0.00050, 0.00117),
    19: (0.00047, 0.00099),
    20: (0.00045, 0.00083),
    21: (0.00043, 0.00070),
    22: (0.00041, 0.00059),
    23: (0.00041, 0.00050),
}

#: Air at body conditions (Section 5.3)
AIR_DENSITY = 1.2  # kg/m^3
AIR_KINEMATIC_VISCOSITY = 1.7e-5  # m^2/s
AIR_DYNAMIC_VISCOSITY = AIR_DENSITY * AIR_KINEMATIC_VISCOSITY  # Pa s

#: Unit conversions used by the ventilation model
CMH2O = 98.0665  # Pa
LITER = 1e-3  # m^3

#: Branching-angle statistics of the adult morphology (Tawhai et al. 2000)
MAJOR_BRANCH_ANGLE_DEG = 20.0
MINOR_BRANCH_ANGLE_DEG = 42.0
#: Diameter ratios of major/minor daughters (Tawhai/Horsfield asymmetry)
MAJOR_DIAMETER_RATIO = 0.86
MINOR_DIAMETER_RATIO = 0.68


@dataclass(frozen=True)
class AirwayDimensions:
    generation: int
    diameter: float
    length: float

    @property
    def radius(self) -> float:
        return 0.5 * self.diameter


def airway_dimensions(generation: int) -> AirwayDimensions:
    """Weibel-model dimensions; beyond the table, regular-dichotomy
    scaling ``2^{-1/3}`` per generation is applied."""
    if generation < 0:
        raise ValueError("generation must be >= 0")
    if generation in WEIBEL_DIAMETER_LENGTH:
        d, length = WEIBEL_DIAMETER_LENGTH[generation]
    else:
        last = max(WEIBEL_DIAMETER_LENGTH)
        d0, l0 = WEIBEL_DIAMETER_LENGTH[last]
        scale = 2.0 ** (-(generation - last) / 3.0)
        d, length = d0 * scale, l0 * scale
    return AirwayDimensions(generation, d, length)


def n_airways(generation: int) -> int:
    """Number of airways in a generation of the symmetric Weibel model."""
    return 2**generation


def poiseuille_resistance(diameter: float, length: float,
                          mu: float = AIR_DYNAMIC_VISCOSITY) -> float:
    """Laminar (Poiseuille) resistance ``128 mu L / (pi d^4)`` in
    Pa s / m^3 — the assumption the paper uses for the truncated tree."""
    if diameter <= 0 or length <= 0:
        raise ValueError("diameter and length must be positive")
    return 128.0 * mu * length / (np.pi * diameter**4)


def truncated_tree_resistance(
    from_generation: int,
    to_generation: int = 25,
    mu: float = AIR_DYNAMIC_VISCOSITY,
) -> float:
    """Analytic resistance of one *subtree* rooted at a single airway of
    ``from_generation``, resolving all airways down to ``to_generation``
    (Section 5.3: "the resistance of the remaining airway tree (from
    generation g to 25) is calculated analytically, exploiting the
    assumption of laminar Poiseuille flow").

    Within the symmetric model the ``2^{g - from}`` airways of deeper
    generation g sit in parallel, and the generations in series:
    ``R = sum_g R_single(g) / 2^{g - from}``.
    """
    if to_generation < from_generation:
        raise ValueError("to_generation must be >= from_generation")
    total = 0.0
    for g in range(from_generation, to_generation + 1):
        dims = airway_dimensions(g)
        r_single = poiseuille_resistance(dims.diameter, dims.length, mu)
        total += r_single / (2 ** (g - from_generation))
    return total
