"""Application-level performance model for the lung runs (Table 2).

Combines the morphometric discretization estimates with the calibrated
machine/multigrid models to regenerate the rows of Table 2: for each
number of resolved generations g, the number of cells, DoF, time steps
per breathing cycle, the strong-scaling-limit wall-time per step, and
the derived wall-hours per cycle and per liter of tidal volume (Eq. (8)
and Table 1's application metrics).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..parallel.machine import SUPERMUC_NG, MachineModel
from ..parallel.perfmodel import (
    MatvecScalingModel,
    MultigridLevelSpec,
    MultigridSolveModel,
)
from .morphometry import airway_dimensions, n_airways

#: Table 2 of the paper (for comparison columns)
PAPER_TABLE2 = {
    # g: (nodes, cells, dofs, n_steps, s/step, h/cycle, h/l)
    3: (2, 2.0e3, 4.4e5, 1.8e5, 0.0174, 0.9, 1.9),
    5: (16, 1.8e4, 3.6e6, 5.2e5, 0.0232, 3.4, 7.3),
    7: (32, 4.2e4, 9.2e6, 1.0e6, 0.0229, 6.4, 14),
    9: (128, 2.1e5, 4.5e7, 1.6e6, 0.0419, 19, 43),
    11: (128, 3.5e5, 7.7e7, 2.0e6, 0.0451, 25, 57),
}


@dataclass
class LungRunEstimate:
    generations: int
    n_nodes: int
    n_cells: float
    n_dofs: float
    n_time_steps: float
    seconds_per_step: float
    hours_per_cycle: float
    hours_per_liter: float


def estimate_cells(generations: int, cells_per_diameter: int = 4,
                   paper_like: bool = True, upper_refine_factor: float = 4.0,
                   refine_below_generation: int = 4) -> float:
    """Cell count of a hex mesh resolving all airways to generation g.

    Each airway of generation j contributes ``cross_cells x n_axial``
    cells with ``n_axial ~ L_j / (d_j / 2)``; the paper's meshes use 12
    cells per cross-section and *locally refine the large airways*
    (Figure 4 (c)) — modeled by ``upper_refine_factor`` on generations
    <= ``refine_below_generation``.  Calibration anchors: 2.0e3 cells at
    g = 3 up to 3.5e5 at g = 11 (Table 2).
    """
    cross = 12 if paper_like else 4
    total = 0.0
    for j in range(generations + 1):
        dims = airway_dimensions(j)
        n_ax = max(2.0, dims.length / (0.5 * dims.diameter))
        cells = n_airways(j) * cross * n_ax
        if paper_like and j <= refine_below_generation:
            cells *= upper_refine_factor
        total += cells
    return total


def estimate_time_steps(
    generations: int,
    degree: int = 3,
    cfl: float = 0.4,
    period: float = 3.0,
    tidal_volume: float = 0.5e-3,
    inhalation_fraction: float = 1.0 / 3.0,
    area_branching_ratio: float = 1.5,
) -> float:
    """Time steps per breathing cycle from the CFL condition (Eq. (6)).

    The peak velocity in generation j follows from the tidal flow
    through its accumulated cross-section, ``U_j = Q_peak / A_j``; the
    mesh size is ``h_j ~ d_j / 4`` (a few cells per diameter); the most
    restrictive generation sets dt.  Twice the mean inspiratory flow
    approximates the peak of the sinusoid-like cycle.

    In a perfectly symmetric Weibel tree ``2^j d_j^3`` is constant and
    dt would not depend on the truncation depth; the paper's hybrid
    patient-specific/Horsfield-type tree is *asymmetric* (1005 terminals
    at g = 11 instead of 2048), so the effective number of parallel
    airways grows with ``area_branching_ratio < 2`` per generation —
    which reproduces the growth of N_dt in Table 2 (1.8e5 at g = 3 to
    2.0e6 at g = 11).
    """
    q_peak = 2.0 * tidal_volume / (period * inhalation_fraction)
    dt_min = np.inf
    for j in range(generations + 1):
        dims = airway_dimensions(j)
        area = area_branching_ratio**j * np.pi * dims.radius**2
        u = q_peak / area
        h = dims.diameter / 4.0
        dt_min = min(dt_min, cfl / degree**1.5 * h / u)
    return period / dt_min


def nodes_for_strong_scaling_limit(n_cells: float,
                                   machine: MachineModel = SUPERMUC_NG,
                                   simd_cells_per_core: float = 4.0,
                                   simd_width: int = 8) -> int:
    """Node count at the strong-scaling limit: 2-8 SIMD cells of 8 lanes
    per core (Table 2's caption)."""
    cores = n_cells / (simd_cells_per_core * simd_width)
    nodes = max(1.0, cores / machine.n_cores)
    return int(2 ** round(np.log2(nodes)))


def _pressure_multigrid_model(n_dofs: float, degree: int,
                              machine: MachineModel,
                              lung_like: bool = True) -> MultigridSolveModel:
    levels = [
        MultigridLevelSpec(n_dofs=n_dofs, matvecs=8, degree=degree),
        MultigridLevelSpec(n_dofs=n_dofs / 2.5, matvecs=8, degree=degree),
        MultigridLevelSpec(n_dofs=n_dofs / 15, matvecs=8, degree=1),
    ]
    return MultigridSolveModel(
        levels=levels,
        machine=machine,
        amg_time=1.5e-3 if lung_like else 3e-4,
        face_orientation_overhead=0.25 if lung_like else 0.0,
    )


def estimate_seconds_per_step(
    n_cells: float,
    n_nodes: int,
    degree: int = 3,
    pressure_iterations: float = 7.0,
    machine: MachineModel = SUPERMUC_NG,
) -> float:
    """Wall-time of one dual-splitting step at the strong-scaling limit.

    The pressure Poisson solve (relaxed 1e-3 tolerance thanks to the
    extrapolated initial guess; ~3x cheaper than the 1e-10 solves of
    Figure 10) dominates; the explicit sub-steps and the mass-
    preconditioned viscous/penalty CG contribute a handful of
    velocity-space operator applications (3 components each).
    """
    dofs_p = n_cells * (degree + 1) ** 3  # scalar pressure-like space
    dofs_u = 3 * dofs_p
    mg = _pressure_multigrid_model(dofs_p, degree, machine)
    t_pressure = mg.solve_time(int(round(pressure_iterations)), n_nodes)
    mv = MatvecScalingModel(machine=machine, degree=degree,
                            face_orientation_overhead=0.25)
    # convective eval + 2 sub-solves x ~4 apps + projections: ~12 u-applies
    t_velocity = 12.0 * mv.time(dofs_u, n_nodes)
    return t_pressure + t_velocity


def lung_run_estimate(
    generations: int,
    degree: int = 3,
    machine: MachineModel = SUPERMUC_NG,
    period: float = 3.0,
    tidal_volume: float = 0.5e-3,
) -> LungRunEstimate:
    n_cells = estimate_cells(generations)
    n_dofs = n_cells * ((degree + 1) ** 3 * 3 + degree**3)
    n_steps = estimate_time_steps(generations, degree)
    n_nodes = nodes_for_strong_scaling_limit(n_cells, machine)
    spstep = estimate_seconds_per_step(n_cells, n_nodes, degree, machine=machine)
    hours_cycle = n_steps * spstep / 3600.0
    return LungRunEstimate(
        generations=generations,
        n_nodes=n_nodes,
        n_cells=n_cells,
        n_dofs=n_dofs,
        n_time_steps=n_steps,
        seconds_per_step=spstep,
        hours_per_cycle=hours_cycle,
        hours_per_liter=hours_cycle / (tidal_volume / 1e-3),
    )
