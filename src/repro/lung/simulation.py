"""Coupled lung-ventilation simulation (Section 5.3).

Assembles the pieces of the application runs of Table 2: a meshed
airway tree, the pressure-controlled ventilator at the tracheal inlet
(PEEP + dp with tubus drop), windkessel compartments at every terminal
outlet, no-slip walls, and the incompressible Navier–Stokes solver with
CFL-adaptive dual splitting.

Coupling is staggered and explicit: after each flow step the outlet flow
rates update the compartment volumes (hence next step's outlet
pressures) and the inlet flow updates the tubus pressure drop; at every
cycle end the tidal-volume controller adjusts dp.

Construction takes a single :class:`~repro.robustness.RunConfig` (the
scattered keyword arguments of earlier versions were removed after a
deprecation period — build a config and pass ``config=...``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..ns.bc import BoundaryConditions, PressureDirichlet
from ..ns.solver import IncompressibleNavierStokesSolver
from ..robustness.config import RunConfig
from ..telemetry import TRACER
from ..telemetry.metrics import METRICS
from .airway_mesh import INLET_ID, LungMesh, airway_tree_mesh
from .tree import grow_airway_tree
from .ventilator import PressureControlledVentilator
from .windkessel import WindkesselBank

# ventilation-coupling health gauges, sampled once per coupled step
_WK_FLOW = METRICS.gauge(
    "repro_windkessel_flow_m3_per_s",
    "outlet flow rate into each windkessel compartment (outward positive)",
    labels=("outlet",),
)
_WK_VOLUME = METRICS.gauge(
    "repro_windkessel_volume_m3",
    "volume stored in each windkessel compartment",
    labels=("outlet",),
)
_WK_PRESSURE = METRICS.gauge(
    "repro_windkessel_pressure_pa",
    "outlet pressure (PEEP + compartment pressure) per windkessel",
    labels=("outlet",),
)
_INLET_FLOW = METRICS.gauge(
    "repro_inlet_flow_m3_per_s",
    "tracheal inlet flow rate (inward positive, the tubus model sign)",
)
_TIDAL_VOLUME = METRICS.gauge(
    "repro_tidal_volume_m3",
    "total volume stored across all windkessel compartments",
)

@dataclass
class CycleRecord:
    cycle: int
    tidal_volume: float
    dp: float
    n_steps: int


class LungVentilationSimulation:
    """End-to-end mechanically ventilated lung model.

    Parameters
    ----------
    config:
        A :class:`~repro.robustness.RunConfig` describing the full run
        (mesh generation, discretization, solver, ventilation protocol,
        windkessel R/C scaling, and fault-tolerance policy).
    lung_mesh:
        Optional pre-built mesh overriding the tree growth described by
        the config (kept out of ``RunConfig`` because meshes are not
        JSON-serializable).
    """

    def __init__(
        self,
        config: RunConfig | None = None,
        *,
        lung_mesh: LungMesh | None = None,
    ) -> None:
        if config is None:
            config = RunConfig()
        elif not isinstance(config, RunConfig):
            raise TypeError(
                "LungVentilationSimulation takes a repro.robustness.RunConfig "
                f"(got {type(config).__name__}); the legacy keyword-argument "
                "shim was removed — build a RunConfig instead"
            )
        self.config = config

        if lung_mesh is None:
            tree = grow_airway_tree(
                config.generations, scale=config.scale, seed=config.seed
            )
            lung_mesh = airway_tree_mesh(
                tree, refine_upper_generations=config.refine_upper_generations
            )
        self.lung = lung_mesh
        self.ventilator = PressureControlledVentilator(config.ventilation)
        self.windkessels = WindkesselBank(
            terminal_generation=lung_mesh.tree.n_generations,
            n_outlets=lung_mesh.n_outlets,
            peep=self.ventilator.settings.peep,
            resistance_scale=config.windkessel_resistance_scale,
            compliance_scale=config.windkessel_compliance_scale,
        )
        self._inlet_flow = 0.0

        conditions: dict[int, object] = {
            INLET_ID: PressureDirichlet(
                lambda x, y, z, t: np.full_like(
                    np.asarray(x, dtype=float),
                    self.ventilator.tracheal_pressure(t, self._inlet_flow),
                )
            )
        }
        for o, bid in enumerate(lung_mesh.outlet_ids):
            conditions[bid] = PressureDirichlet(
                lambda x, y, z, t, _o=o: np.full_like(
                    np.asarray(x, dtype=float), self.windkessels.outlet_pressure(_o)
                )
            )
        self.bcs = BoundaryConditions(conditions)  # walls default to no-slip
        settings = config.solver
        if not np.isfinite(settings.dt_max):
            # the flow starts from rest: bound the startup step by a small
            # fraction of the breathing period
            settings.dt_max = self.ventilator.settings.period / 500.0
        self.solver = IncompressibleNavierStokesSolver(
            lung_mesh.forest,
            config.degree,
            config.viscosity,
            self.bcs,
            settings,
            robustness=config.robustness,
            compute_dtype=config.compute_dtype,
        )
        self.solver.initialize()
        if config.workers >= 2:
            self.solver.distribute_pressure(
                config.workers, trace_timeline=config.trace_timeline
            )
        self.cycle_records: list[CycleRecord] = []
        self._cycle_inhaled = 0.0
        self._steps_this_cycle = 0
        self._current_cycle = 0

    # ------------------------------------------------------------------
    @property
    def time(self) -> float:
        return self.solver.scheme.t

    @property
    def recovery_log(self):
        """Structured :class:`~repro.robustness.RecoveryEvent` history of
        step retries and solver fallbacks during this run."""
        return self.solver.recovery_log

    def step(self, dt: float | None = None):
        """One coupled time step; returns the solver statistics."""
        was_inhaling = self.ventilator.is_inhaling(self.time)
        stats = self.solver.step(dt)
        t0 = time.perf_counter()
        with TRACER.span("coupling"):
            # outlet flows (outward = into the compartments)
            flows = [self.solver.flow_rate(bid) for bid in self.lung.outlet_ids]
            self.windkessels.advance(flows, stats.dt)
            # inlet flow: inward positive for the tubus model
            self._inlet_flow = -self.solver.flow_rate(INLET_ID)
        if METRICS.enabled:
            # dynamic labels allocate (str(o)) — keep behind the guard
            for o, q in enumerate(flows):
                key = str(o)
                _WK_FLOW.labels(key).set(q)
                _WK_VOLUME.labels(key).set(self.windkessels.compartments[o].volume)
                _WK_PRESSURE.labels(key).set(self.windkessels.outlet_pressure(o))
            _INLET_FLOW.set(self._inlet_flow)
            _TIDAL_VOLUME.set(self.windkessels.total_volume())
        # the coupling stage is part of this step's cost
        elapsed = time.perf_counter() - t0
        stats.wall_time += elapsed
        if TRACER.enabled:
            stats.substep_seconds["coupling"] = elapsed
        if was_inhaling:
            self._cycle_inhaled += max(self._inlet_flow, 0.0) * stats.dt
        self._steps_this_cycle += 1
        # cycle rollover
        cycle = int(self.time / self.ventilator.settings.period)
        if cycle > self._current_cycle:
            self.ventilator.end_of_cycle(self._cycle_inhaled)
            self.cycle_records.append(
                CycleRecord(
                    cycle=self._current_cycle,
                    tidal_volume=self._cycle_inhaled,
                    dp=self.ventilator.dp_history[-2],
                    n_steps=self._steps_this_cycle,
                )
            )
            self._cycle_inhaled = 0.0
            self._steps_this_cycle = 0
            self._current_cycle = cycle
        return stats

    def run(
        self,
        t_end: float,
        *,
        max_steps: int = 10**7,
        dt_initial: float | None = None,
        checkpoints=None,
    ):
        """Advance to ``t_end``; the shared driver signature (see
        :meth:`repro.ns.solver.IncompressibleNavierStokesSolver.run`).
        ``dt_initial`` seeds the first step when no history exists yet;
        ``checkpoints`` (an optional
        :class:`~repro.robustness.CheckpointManager`) is polled after
        every step so interval policies see the simulated time."""
        stats = []
        if dt_initial is not None and not self.solver.scheme.dt_history:
            stats.append(self.step(min(dt_initial, t_end - self.time)))
            if checkpoints is not None:
                checkpoints.maybe_save(self)
        while self.time < t_end - 1e-12 and len(stats) < max_steps:
            stats.append(self.step())
            if checkpoints is not None:
                checkpoints.maybe_save(self)
        return stats

    def close(self) -> None:
        """Release distributed-execution resources (worker processes and
        shared-memory segments).  Safe to call on a serial run, and
        idempotent; the pool also registers an ``atexit`` fallback."""
        self.solver.undistribute_pressure()

    def tidal_volume_delivered(self) -> float:
        """Volume stored in the compartments — the tidal volume during
        the inhalation phase."""
        return self.windkessels.total_volume()
