"""Airway-tree data structure and the recursive tree-growth algorithm.

Substitution note (DESIGN.md): the paper segments the trachea and first
three generations from CT images and grows the rest with a
volume-filling algorithm (Tawhai et al. 2000).  We have no CT data, so
*all* generations are generated morphometrically: Weibel dimensions per
generation (see :mod:`repro.lung.morphometry`), Tawhai-like branching
angles with major/minor daughter asymmetry, and lobe-directed growth
into five lung-lobe target regions.  The downstream code paths (hex
meshing, boundary conditions, windkessel outlets) are identical to a
CT-based centerline tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .morphometry import (
    MAJOR_BRANCH_ANGLE_DEG,
    MINOR_BRANCH_ANGLE_DEG,
    airway_dimensions,
)


@dataclass
class Airway:
    """One conducting airway branch (a centerline segment)."""

    index: int
    parent: int  # -1 for the trachea
    generation: int
    start: np.ndarray
    direction: np.ndarray  # unit vector
    length: float
    diameter: float
    children: list[int] = field(default_factory=list)

    @property
    def end(self) -> np.ndarray:
        return self.start + self.length * self.direction

    @property
    def radius(self) -> float:
        return 0.5 * self.diameter

    @property
    def is_terminal(self) -> bool:
        return not self.children


#: Approximate directions of the five lobes of an adult lung (in a frame
#: with +z pointing caudally from the trachea, +x to the patient's left)
_LOBE_TARGETS = np.array(
    [
        [+0.75, +0.25, 0.45],  # left upper
        [+0.65, -0.20, 0.95],  # left lower
        [-0.70, +0.30, 0.35],  # right upper
        [-0.80, -0.15, 0.60],  # right middle
        [-0.55, -0.25, 1.00],  # right lower
    ]
)


class AirwayTree:
    """A grown airway tree of ``generations`` Weibel generations."""

    def __init__(self, airways: list[Airway]) -> None:
        self.airways = airways

    @property
    def n_airways(self) -> int:
        return len(self.airways)

    @property
    def n_generations(self) -> int:
        return max(a.generation for a in self.airways)

    @property
    def trachea(self) -> Airway:
        return self.airways[0]

    def terminal_airways(self) -> list[Airway]:
        """The peripheral airways — the model-complexity metric the paper
        reports (1005 terminals for g = 11)."""
        return [a for a in self.airways if a.is_terminal]

    def children_of(self, index: int) -> list[Airway]:
        return [self.airways[c] for c in self.airways[index].children]

    def total_cross_section(self, generation: int) -> float:
        """Accumulated cross-section area of a generation — increases with
        g, which is why low/intermediate generations limit the CFL step."""
        return sum(
            np.pi * a.radius**2 for a in self.airways if a.generation == generation
        )

    def bounding_box(self):
        pts = np.array([a.start for a in self.airways] + [a.end for a in self.airways])
        return pts.min(axis=0), pts.max(axis=0)


def _rotate_towards(direction: np.ndarray, target: np.ndarray, angle_deg: float) -> np.ndarray:
    """Rotate ``direction`` by ``angle_deg`` within the plane spanned with
    ``target`` (falls back to an arbitrary orthogonal plane)."""
    d = direction / np.linalg.norm(direction)
    t = target - np.dot(target, d) * d
    norm = np.linalg.norm(t)
    if norm < 1e-12:
        helper = np.array([1.0, 0.0, 0.0])
        if abs(np.dot(helper, d)) > 0.9:
            helper = np.array([0.0, 1.0, 0.0])
        t = np.cross(d, helper)
        norm = np.linalg.norm(t)
    t = t / norm
    ang = np.radians(angle_deg)
    return np.cos(ang) * d + np.sin(ang) * t


def grow_airway_tree(
    generations: int,
    scale: float = 1.0,
    seed: int = 0,
    angle_jitter_deg: float = 5.0,
) -> AirwayTree:
    """Grow a morphology-based airway tree of the given number of Weibel
    generations (Figure 3 shows g = 5, 7, 9, 11).

    The trachea points caudally (+z); each bifurcation produces a *major*
    daughter (small branching angle, continues towards the subtree's lobe
    target) and a *minor* daughter (large angle, bends towards the
    nearest under-served lobe).  Dimensions come from the Weibel table;
    mild random jitter mimics anatomical variability without CT data.
    """
    if generations < 1:
        raise ValueError("need at least one generation")
    rng = np.random.default_rng(seed)
    dims0 = airway_dimensions(0)
    airways: list[Airway] = [
        Airway(
            index=0,
            parent=-1,
            generation=0,
            start=np.zeros(3),
            direction=np.array([0.0, 0.0, 1.0]),
            length=dims0.length * scale * 0.6,  # intubated: sub-laryngeal part
            diameter=dims0.diameter * scale,
        )
    ]
    lobe_targets = _LOBE_TARGETS * dims0.length * 4.0 * scale

    def lobe_for(point: np.ndarray, gen: int) -> np.ndarray:
        d2 = ((lobe_targets - point) ** 2).sum(axis=1)
        return lobe_targets[np.argmin(d2) if gen > 1 else (0 if point[0] >= 0 else 2)]

    frontier = [0]
    for g in range(1, generations + 1):
        dims = airway_dimensions(g)
        new_frontier = []
        for parent_idx in frontier:
            parent = airways[parent_idx]
            p_end = parent.end
            target = lobe_for(p_end, g)
            to_target = target - p_end
            jitter = lambda: rng.uniform(-angle_jitter_deg, angle_jitter_deg)
            d_major = _rotate_towards(
                parent.direction, to_target, MAJOR_BRANCH_ANGLE_DEG + jitter()
            )
            d_minor = _rotate_towards(
                parent.direction, -to_target, MINOR_BRANCH_ANGLE_DEG + jitter()
            )
            for d in (d_major, d_minor):
                idx = len(airways)
                airways.append(
                    Airway(
                        index=idx,
                        parent=parent_idx,
                        generation=g,
                        start=p_end.copy(),
                        direction=d / np.linalg.norm(d),
                        length=dims.length * scale * rng.uniform(0.9, 1.1),
                        diameter=dims.diameter * scale,
                    )
                )
                parent.children.append(idx)
                new_frontier.append(idx)
        frontier = new_frontier
    return AirwayTree(airways)
