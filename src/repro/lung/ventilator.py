"""Pressure-controlled mechanical ventilator with tidal-volume control
and endotracheal-tube (tubus) pressure drop.

Section 5.3: "a pressure of PEEP + dp is provided at the tracheal inlet
during inhalation and PEEP during exhalation, with the positive
end-expiratory pressure (PEEP) being 8 cmH2O. The breathing period is
T = 3 s with an inhalation-to-exhalation time ratio of 1:2. ... a
discrete controller dynamically adjusts the pressure dp from one
breathing cycle to the next in order to reach the desired tidal volume
of V_T = 500 ml. The pressure drop over the tubus ... is regarded
according to [Guttmann et al. 1993]."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .morphometry import CMH2O, LITER


@dataclass
class TubusModel:
    """Rohrer-type endotracheal tube pressure drop
    ``dP = K1 Q + K2 Q |Q|`` (Guttmann et al. 1993; coefficients of an
    8 mm ID adult tube)."""

    k1: float = 4.6 * CMH2O / LITER  # 4.6 cmH2O/(l/s) -> Pa s/m^3
    k2: float = 2.9 * CMH2O / LITER**2  # 2.9 cmH2O/(l/s)^2 -> Pa s^2/m^6

    def pressure_drop(self, flow: float) -> float:
        return self.k1 * flow + self.k2 * flow * abs(flow)


@dataclass
class VentilationSettings:
    peep: float = 8.0 * CMH2O  # Pa
    dp_initial: float = 8.0 * CMH2O  # driving pressure guess
    period: float = 3.0  # s
    ie_ratio: float = 0.5  # inhalation : exhalation = 1 : 2
    tidal_volume_target: float = 500.0e-3 * LITER  # 500 ml in m^3
    controller_gain: float = 0.8
    rise_time: float = 0.05  # linear pressure ramp at phase switches [s]


class PressureControlledVentilator:
    """Square-wave pressure source + discrete cycle-to-cycle controller.

    ``tracheal_pressure(t, flow)`` is the boundary pressure the 3D model
    sees (ventilator pressure minus the tubus drop).  After every
    breathing cycle, call :meth:`end_of_cycle` with the measured tidal
    volume so the controller can adjust ``dp``.
    """

    def __init__(self, settings: VentilationSettings | None = None,
                 tubus: TubusModel | None = None) -> None:
        self.settings = settings or VentilationSettings()
        self.tubus = tubus or TubusModel()
        self.dp = self.settings.dp_initial
        self.dp_history: list[float] = [self.dp]
        self.tidal_history: list[float] = []

    @property
    def inhalation_time(self) -> float:
        s = self.settings
        return s.period * s.ie_ratio / (1.0 + s.ie_ratio)

    def is_inhaling(self, t: float) -> bool:
        return (t % self.settings.period) < self.inhalation_time

    def ventilator_pressure(self, t: float) -> float:
        """Square wave with a linear rise/fall ramp (real ventilators ramp
        the pressure over tens of milliseconds, which also spares the CFD
        an impulsive start)."""
        s = self.settings
        tau = t % s.period
        rise = max(s.rise_time, 1e-12)
        if tau < self.inhalation_time:
            ramp = min(tau / rise, 1.0)
            return s.peep + self.dp * ramp
        fall = min((tau - self.inhalation_time) / rise, 1.0)
        return s.peep + self.dp * (1.0 - fall)

    def tracheal_pressure(self, t: float, flow: float = 0.0) -> float:
        """Pressure at the tracheal end of the tube.  ``flow`` is the
        instantaneous flow into the patient (positive during
        inhalation)."""
        return self.ventilator_pressure(t) - self.tubus.pressure_drop(flow)

    def end_of_cycle(self, measured_tidal_volume: float) -> float:
        """Discrete controller update: proportional adjustment of dp
        towards the target tidal volume.  Returns the new dp."""
        s = self.settings
        self.tidal_history.append(float(measured_tidal_volume))
        if measured_tidal_volume > 0:
            error_ratio = s.tidal_volume_target / measured_tidal_volume
            # damped multiplicative update
            factor = error_ratio**s.controller_gain
            factor = float(np.clip(factor, 0.5, 2.0))
            self.dp *= factor
        else:
            self.dp *= 1.5
        self.dp = float(np.clip(self.dp, 0.5 * CMH2O, 50 * CMH2O))
        self.dp_history.append(self.dp)
        return self.dp


def expected_tidal_volume(dp: float, compliance: float, resistance: float,
                          t_inhale: float) -> float:
    """First-order RC prediction of the tidal volume delivered by a
    square pressure wave: ``V_T = dp C (1 - exp(-t_I / (R C)))`` — used
    by tests and by the controller's convergence analysis."""
    tau = resistance * compliance
    return dp * compliance * (1.0 - np.exp(-t_inhale / tau))
