"""Single-compartment (RC windkessel) terminal-airway models.

Section 5.3: "The pressure boundary conditions at the terminal airways
are governed by appended linear single-compartment models according to
[Bates 2009] to consider resistive and compliant effects of the
remaining, non-resolved airways and tissue components below the outlets."

Each resolved terminal airway of generation g carries one compartment:

* resistance ``R = R_subtree(g+1..25) + R_tissue``, with the subtree part
  computed analytically from Poiseuille flow through the Weibel
  dimensions (:func:`repro.lung.morphometry.truncated_tree_resistance`)
  and the tissue part modelled as 20% (West & Luks) of the total
  respiratory resistance of 0.15 kPa s/l (Pape et al.), distributed over
  the outlets;
* compliance ``C_outlet = C_total / N_outlets`` from the overall
  respiratory compliance ``C = 100 ml/cmH2O``.

The compartment pressure seen by the 3D domain at outlet ``o`` is

    p_o(t) = R_o Q_o(t) + V_o(t) / C_o,      dV_o/dt = Q_o,

integrated with the same (explicit) step as the flow solver.
"""

from __future__ import annotations

from dataclasses import dataclass


from .morphometry import CMH2O, LITER, truncated_tree_resistance

#: total respiratory system properties (Section 5.3)
TOTAL_RESISTANCE = 0.15e3 / LITER  # 0.15 kPa s / l -> Pa s / m^3
TISSUE_FRACTION = 0.2
TOTAL_COMPLIANCE = 100.0e-3 * LITER / CMH2O  # 100 ml/cmH2O -> m^3/Pa


@dataclass
class Compartment:
    """One RC terminal-airway compartment."""

    resistance: float  # Pa s / m^3
    compliance: float  # m^3 / Pa
    volume: float = 0.0  # stored volume above FRC [m^3]
    flow: float = 0.0  # last flow into the compartment [m^3/s]

    def pressure(self) -> float:
        """Airway-opening pressure of the compartment (relative)."""
        return self.resistance * self.flow + self.volume / self.compliance

    def advance(self, flow: float, dt: float) -> None:
        """Integrate dV/dt = Q with the measured outlet flow."""
        self.flow = float(flow)
        self.volume += self.flow * dt


class WindkesselBank:
    """All terminal compartments of a lung model with ``n_outlets``
    terminals resolved down to generation ``g``."""

    def __init__(
        self,
        terminal_generation: int,
        n_outlets: int,
        peep: float = 0.0,
        total_resistance: float = TOTAL_RESISTANCE,
        tissue_fraction: float = TISSUE_FRACTION,
        total_compliance: float = TOTAL_COMPLIANCE,
        resistance_scale: float = 1.0,
        compliance_scale: float = 1.0,
    ) -> None:
        """``resistance_scale``/``compliance_scale`` multiply the
        morphometry-derived per-compartment R and C — the patient-
        variability knobs ensemble runs sweep (stiff lung: compliance
        scale < 1; obstructed airways: resistance scale > 1)."""
        if n_outlets < 1:
            raise ValueError("need at least one outlet")
        if resistance_scale <= 0 or compliance_scale <= 0:
            raise ValueError("windkessel R/C scales must be positive")
        self.terminal_generation = terminal_generation
        self.peep = float(peep)
        r_subtree = truncated_tree_resistance(terminal_generation + 1, 25)
        # tissue resistance: fraction of the total, shared by parallel
        # outlets -> per-outlet value is N x the lumped value
        r_tissue = tissue_fraction * total_resistance * n_outlets
        c_outlet = total_compliance / n_outlets
        self.compartments = [
            Compartment(
                resistance=resistance_scale * (r_subtree + r_tissue),
                compliance=compliance_scale * c_outlet,
            )
            for _ in range(n_outlets)
        ]

    @property
    def n_outlets(self) -> int:
        return len(self.compartments)

    def outlet_pressure(self, outlet: int) -> float:
        """Absolute (PEEP-referenced) pressure imposed at outlet ``o``."""
        return self.peep + self.compartments[outlet].pressure()

    def advance(self, flows, dt: float) -> None:
        if len(flows) != self.n_outlets:
            raise ValueError("one flow per outlet required")
        for comp, q in zip(self.compartments, flows):
            comp.advance(q, dt)

    def total_volume(self) -> float:
        """Volume stored beyond FRC — the tidal volume when summed over a
        full inhalation."""
        return float(sum(c.volume for c in self.compartments))

    def equivalent_resistance(self) -> float:
        """Lumped resistance of all compartments in parallel."""
        return 1.0 / sum(1.0 / c.resistance for c in self.compartments)

    def equivalent_compliance(self) -> float:
        return float(sum(c.compliance for c in self.compartments))

    def time_constant(self) -> float:
        """RC time constant of the lumped respiratory system."""
        return self.equivalent_resistance() * self.equivalent_compliance()
