"""Meshing: unstructured hex coarse meshes, forest-of-octree refinement,
geometric face connectivity (incl. 2:1 hanging faces and orientations),
high-order mappings and metric terms, and mesh generators."""

from .hexmesh import HexMesh, merge_meshes, trilinear, trilinear_jacobian
from .octree import CellId, Forest
from .connectivity import (
    MeshConnectivity,
    FaceBatch,
    BoundaryBatch,
    Orientation,
    build_connectivity,
    orient_face_array,
    orient_to_plus,
)
from .mapping import GeometryField, CellMetrics, FaceMetrics
from .generators import box, unit_cube, cylinder, bifurcation
from .tube_tree import BranchSpec, tube_tree_mesh
from .morton import morton_key, forest_order, partition_contiguous

__all__ = [
    "HexMesh",
    "merge_meshes",
    "trilinear",
    "trilinear_jacobian",
    "CellId",
    "Forest",
    "MeshConnectivity",
    "FaceBatch",
    "BoundaryBatch",
    "Orientation",
    "build_connectivity",
    "orient_face_array",
    "orient_to_plus",
    "GeometryField",
    "CellMetrics",
    "FaceMetrics",
    "box",
    "unit_cube",
    "cylinder",
    "bifurcation",
    "BranchSpec",
    "tube_tree_mesh",
    "morton_key",
    "forest_order",
    "partition_contiguous",
]
