"""Leaf-face connectivity of a forest: conforming pairs, 2:1 hanging
faces, orientations, and boundary faces.

Faces are matched *geometrically*: the four corner points of every leaf
face (trilinear coarse-cell geometry, which is evaluated identically from
both sides of a shared face up to rounding) are quantized and hashed.
This handles arbitrary relative orientations of coarse cells — the case
the paper highlights as costing ~25% extra face work on the lung mesh due
to partially filled SIMD lanes — without p4est's transform tables.

Face frames.  Face ``f = 2 d + s`` of a cell has local coordinates
``(a, b)`` running along the two tangential reference dimensions in
*descending* order (normal x keeps (z, y), normal y keeps (z, x), normal
z keeps (y, x)); this matches the array layout of
:meth:`repro.core.sum_factorization.TensorProductKernel.face_values`.

An :class:`Orientation` maps the *minus* side's face coordinates to the
*plus* side's: ``(a', b') = T(a, b)`` — one of the 8 symmetries of the
square, encoded by ``(swap, flip_a, flip_b)`` as

    (t, u) = (b, a) if swap else (a, b);  a' = t ^ flip_a;  b' = u ^ flip_b.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .hexmesh import face_corner_vertices
from .octree import CellId, Forest


@dataclass(frozen=True)
class Orientation:
    swap: bool = False
    flip_a: bool = False
    flip_b: bool = False

    @property
    def code(self) -> int:
        return 4 * self.swap + 2 * self.flip_a + self.flip_b

    def apply_coords(self, a, b):
        """Map minus-frame coordinates in [0, 1]^2 to plus-frame."""
        t, u = (b, a) if self.swap else (a, b)
        ap = 1.0 - t if self.flip_a else t
        bp = 1.0 - u if self.flip_b else u
        return ap, bp

    def inverse(self) -> "Orientation":
        if not self.swap:
            return self
        return Orientation(True, self.flip_b, self.flip_a)

    @property
    def is_identity(self) -> bool:
        return not (self.swap or self.flip_a or self.flip_b)


IDENTITY = Orientation()


def orient_face_array(arr: np.ndarray, o: Orientation) -> np.ndarray:
    """Re-express plus-side face data in the minus-side frame.

    ``arr`` has the plus side's face layout on its last two axes; the
    result ``out`` satisfies ``out[.., ia, ib] = value at the minus-frame
    lattice point (ia, ib)``, assuming a reversal-symmetric point set
    (Gauss or Gauss–Lobatto) so coordinate flips become index reversals.
    """
    if o.swap:
        arr = np.swapaxes(arr, -1, -2)
        fa, fb = o.flip_b, o.flip_a
    else:
        fa, fb = o.flip_a, o.flip_b
    if fa:
        arr = arr[..., ::-1, :]
    if fb:
        arr = arr[..., ::-1]
    return arr


def orient_to_plus(arr: np.ndarray, o: Orientation) -> np.ndarray:
    """Transform minus-frame face data into the plus-side frame (the
    inverse of :func:`orient_face_array`), used when scattering
    integrated face contributions back to the neighbor cell."""
    return orient_face_array(arr, o.inverse())


# ---------------------------------------------------------------------------
@dataclass
class FaceBatch:
    """A batch of interior faces sharing local face numbers, orientation,
    and (for hanging faces) the subface position — the unit of vectorized
    face-loop work (one batch maps to full SIMD lanes in the paper).

    ``cells_m`` is the *integration* side: for conforming faces an
    arbitrary choice; for 2:1 faces always the **fine** cell, so the
    coarse neighbor's data is sub-face interpolated (Section 3.4).
    ``subface = None`` marks conforming batches; otherwise ``(sa, sb)``
    locates the fine face inside the coarse face *in the minus frame*.
    """

    face_m: int
    face_p: int
    orientation: Orientation
    subface: tuple[int, int] | None
    cells_m: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    cells_p: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))

    @property
    def n_faces(self) -> int:
        return len(self.cells_m)

    @property
    def is_hanging(self) -> bool:
        return self.subface is not None


@dataclass
class BoundaryBatch:
    """Boundary faces sharing a local face number and boundary id."""

    face: int
    boundary_id: int
    cells: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))

    @property
    def n_faces(self) -> int:
        return len(self.cells)


@dataclass
class MeshConnectivity:
    interior: list[FaceBatch]
    boundary: list[BoundaryBatch]

    @property
    def n_interior_faces(self) -> int:
        return sum(b.n_faces for b in self.interior)

    @property
    def n_boundary_faces(self) -> int:
        return sum(b.n_faces for b in self.boundary)

    @property
    def n_hanging_faces(self) -> int:
        return sum(b.n_faces for b in self.interior if b.is_hanging)

    def mixed_orientation_fraction(self) -> float:
        """Fraction of interior faces with non-identity orientation — the
        quantity behind the partially-filled-SIMD-lane overhead reported
        in Section 5.2."""
        total = self.n_interior_faces
        if total == 0:
            return 0.0
        mixed = sum(
            b.n_faces
            for b in self.interior
            if not b.orientation.is_identity or b.is_hanging
        )
        return mixed / total


# ---------------------------------------------------------------------------
def _quantize(points: np.ndarray, tol: float) -> list[tuple[int, int, int]]:
    q = np.round(points / tol).astype(np.int64)
    return [tuple(int(v) for v in row) for row in q]


def _face_corner_points(forest: Forest, index: int, face: int) -> np.ndarray:
    """(2, 2, 3) physical trilinear corners of a leaf face in (a, b) frame."""
    corners8 = forest.cell_corner_points(index)  # (8, 3) lexicographic
    return corners8[face_corner_vertices(face)]


def _match_tol(forest: Forest) -> float:
    v = forest.coarse.vertices
    if len(v) == 0:
        return 1e-9
    extent = float(np.max(v.max(axis=0) - v.min(axis=0)))
    return max(extent, 1.0e-12) * 1e-9


def _ancestor_face_on_boundary(cell: CellId, face: int, la: int) -> CellId | None:
    """The ancestor of ``cell`` at level ``la`` if ``face`` of the cell
    lies on that ancestor's boundary in the same direction, else None."""
    d, s = divmod(face, 2)
    shift = cell.level - la
    coord = (cell.i, cell.j, cell.k)[d]
    within = coord - ((coord >> shift) << shift)
    if s == 0 and within != 0:
        return None
    if s == 1 and within != (1 << shift) - 1:
        return None
    return CellId(cell.tree, la, cell.i >> shift, cell.j >> shift, cell.k >> shift)


def _orientation_from_corners(km: list, kp: list) -> Orientation:
    """Derive the dihedral map from minus corner keys to plus corner keys.

    ``km``, ``kp`` are 2x2 nested lists of hashable corner keys in the
    two frames; returns T with kp[T(a,b)] == km[a][b].
    """
    pos_p = {kp[a][b]: (a, b) for a in range(2) for b in range(2)}
    try:
        img00 = pos_p[km[0][0]]
        img10 = pos_p[km[1][0]]
    except KeyError as exc:  # pragma: no cover - matching guaranteed by caller
        raise ValueError("faces do not share corners") from exc
    # Moving along a in the minus frame moves along b' in the plus frame?
    swap = img10[0] == img00[0]
    flip_a = bool(img00[0])
    flip_b = bool(img00[1])
    o = Orientation(swap, flip_a, flip_b)
    # verify on all four corners (catches degenerate geometry)
    for a in range(2):
        for b in range(2):
            ap, bp = o.apply_coords(float(a), float(b))
            if kp[int(round(ap))][int(round(bp))] != km[a][b]:
                raise ValueError("inconsistent face corner correspondence")
    return o


def _corner_keys_2x2(points: np.ndarray, tol: float) -> list:
    flat = _quantize(points.reshape(4, 3), tol)
    return [[flat[0], flat[1]], [flat[2], flat[3]]]


def _ancestor_face_corner_points(
    forest: Forest, cell: CellId, face: int, ancestor: CellId
) -> np.ndarray:
    """(2,2,3) physical corners of the ancestor's face (same direction)."""
    ref = ancestor.ref_corners()[face_corner_vertices(face)]
    return forest.coarse.map_trilinear(cell.tree, ref.reshape(4, 3)).reshape(2, 2, 3)


def _build_face_index(forest: Forest, tol: float):
    """Hash every leaf face by its quantized corner set."""
    face_map: dict[frozenset, list[tuple[int, int]]] = {}
    corner_cache: dict[tuple[int, int], list] = {}
    for c in range(forest.n_cells):
        corners8 = forest.cell_corner_points(c)
        keys8 = _quantize(corners8, tol)
        for f in range(6):
            idx = face_corner_vertices(f)
            k2x2 = [[keys8[idx[a][b]] for b in range(2)] for a in range(2)]
            corner_cache[(c, f)] = k2x2
            key = frozenset(k2x2[0] + k2x2[1])
            face_map.setdefault(key, []).append((c, f))
    return face_map, corner_cache


def find_unbalanced_cells(forest: Forest) -> list[CellId]:
    """Cells violating the 2:1 face balance: returns the *coarse* cells
    that must be refined."""
    tol = _match_tol(forest)
    face_map, _ = _build_face_index(forest, tol)
    unmatched: dict[frozenset, tuple[int, int]] = {
        key: entries[0] for key, entries in face_map.items() if len(entries) == 1
    }
    violators: set[CellId] = set()
    for key, (c, f) in unmatched.items():
        cell = forest.leaves[c]
        for la in range(cell.level - 1, -1, -1):
            anc = _ancestor_face_on_boundary(cell, f, la)
            if anc is None:
                break
            pts = _ancestor_face_corner_points(forest, cell, f, anc)
            anc_key = frozenset(_quantize(pts.reshape(4, 3), tol))
            hit = unmatched.get(anc_key)
            if hit is not None and hit != (c, f):
                cc, _ = hit
                if forest.leaves[cc].level == la and cell.level - la >= 2:
                    violators.add(forest.leaves[cc])
                break
    return sorted(violators)


def build_connectivity(
    forest: Forest,
    periodic: list[tuple[int, int, tuple[float, float, float]]] | None = None,
) -> MeshConnectivity:
    """Match all leaf faces of a (2:1 balanced) forest into vectorizable
    batches of conforming, hanging, and boundary faces.

    ``periodic`` declares translational periodicity: each entry
    ``(id_a, id_b, translation)`` pairs every boundary face with
    indicator ``id_a`` to the ``id_b`` face whose corners equal its own
    shifted by ``translation``.  Matched pairs become ordinary interior
    faces (orientation-aware), so every operator supports periodicity
    without changes; the mesh must be uniformly refined across periodic
    boundaries (no 2:1 hanging periodic faces).
    """
    tol = _match_tol(forest)
    face_map, corner_cache = _build_face_index(forest, tol)

    interior: dict[tuple, FaceBatch] = {}
    boundary: dict[tuple, BoundaryBatch] = {}
    matched: set[tuple[int, int]] = set()

    def add_interior(cm, fm, cp, fp, orientation, subface):
        key = (fm, fp, orientation.code, subface)
        batch = interior.get(key)
        if batch is None:
            batch = FaceBatch(fm, fp, orientation, subface, [], [])  # type: ignore[arg-type]
            interior[key] = batch
        batch.cells_m.append(cm)  # type: ignore[union-attr]
        batch.cells_p.append(cp)  # type: ignore[union-attr]

    # conforming pairs -----------------------------------------------------
    for key, entries in face_map.items():
        if len(entries) == 2:
            (cm, fm), (cp, fp) = entries
            lm = forest.leaves[cm].level
            lp = forest.leaves[cp].level
            if lm != lp:  # pragma: no cover - same corners forces same level
                raise RuntimeError("matched faces at different levels")
            o = _orientation_from_corners(corner_cache[(cm, fm)], corner_cache[(cp, fp)])
            add_interior(cm, fm, cp, fp, o, None)
            matched.add((cm, fm))
            matched.add((cp, fp))
        elif len(entries) > 2:  # pragma: no cover - defensive
            raise RuntimeError(f"face shared by {len(entries)} cells")

    # hanging (2:1) pairs ----------------------------------------------------
    unmatched = {
        key: entries[0]
        for key, entries in face_map.items()
        if len(entries) == 1 and entries[0] not in matched
    }
    for key, (c, f) in list(unmatched.items()):
        if (c, f) in matched:
            continue
        cell = forest.leaves[c]
        if cell.level == 0:
            continue
        # probe every ancestor level so 4:1 (unbalanced) situations are
        # detected and reported instead of silently misclassified
        hit = None
        anc_keys_2x2 = None
        la_hit = None
        for la in range(cell.level - 1, -1, -1):
            anc = _ancestor_face_on_boundary(cell, f, la)
            if anc is None:
                break
            pts = _ancestor_face_corner_points(forest, cell, f, anc)
            keys = _corner_keys_2x2(pts.reshape(4, 3), tol)
            cand = unmatched.get(frozenset(keys[0] + keys[1]))
            if cand is not None and cand != (c, f):
                hit, anc_keys_2x2, la_hit = cand, keys, la
                break
        if hit is None:
            continue
        cp, fp = hit
        if forest.leaves[cp].level != la_hit or cell.level - la_hit >= 2:
            raise RuntimeError("mesh is not 2:1 balanced; call Forest.balance()")
        # orientation: ancestor/fine frame (minus) -> coarse neighbor (plus)
        o = _orientation_from_corners(anc_keys_2x2, corner_cache[(cp, fp)])
        # subface position of the fine cell inside the ancestor face, in
        # the minus (fine) frame
        d, s = divmod(f, 2)
        rem = [dd for dd in (2, 1, 0) if dd != d]  # (high, low)
        anchor = (cell.i, cell.j, cell.k)
        sa = anchor[rem[0]] & 1
        sb = anchor[rem[1]] & 1
        add_interior(c, f, cp, fp, o, (sa, sb))
        matched.add((c, f))
        matched.add((cp, fp))

    # boundary faces -----------------------------------------------------------
    for key, (c, f) in unmatched.items():
        if (c, f) in matched:
            continue
        cell = forest.leaves[c]
        anc = _ancestor_face_on_boundary(cell, f, 0)
        if anc is None:
            raise RuntimeError(
                f"face {f} of {cell} is neither matched nor on the domain boundary"
            )
        root_face_vertices = forest.coarse.face_vertices(cell.tree, f).ravel()
        bid = forest.coarse.boundary_id_of(root_face_vertices)
        bkey = (f, bid)
        batch = boundary.get(bkey)
        if batch is None:
            batch = BoundaryBatch(f, bid, [])  # type: ignore[arg-type]
            boundary[bkey] = batch
        batch.cells.append(c)  # type: ignore[union-attr]

    # periodic pairing: translated geometric matching of boundary faces ---
    if periodic:
        # collect remaining boundary faces per indicator with their keys
        remaining: dict[int, list[tuple[int, int]]] = {}
        for key, (c, f) in unmatched.items():
            if (c, f) in matched:
                continue
            cell = forest.leaves[c]
            anc = _ancestor_face_on_boundary(cell, f, 0)
            if anc is None:
                continue
            bid = forest.coarse.boundary_id_of(
                forest.coarse.face_vertices(cell.tree, f).ravel()
            )
            remaining.setdefault(bid, []).append((c, f))
        for id_a, id_b, translation in periodic:
            t = np.asarray(translation, dtype=float)
            targets: dict[frozenset, tuple[int, int, list]] = {}
            for (c, f) in remaining.get(id_b, []):
                pts = _face_corner_points(forest, c, f)
                k2x2 = _corner_keys_2x2(pts.reshape(4, 3), tol)
                targets[frozenset(k2x2[0] + k2x2[1])] = (c, f, k2x2)
            for (c, f) in remaining.get(id_a, []):
                pts = _face_corner_points(forest, c, f) + t
                k2x2_m = _corner_keys_2x2(pts.reshape(4, 3), tol)
                hit = targets.get(frozenset(k2x2_m[0] + k2x2_m[1]))
                if hit is None:
                    raise RuntimeError(
                        f"periodic face of boundary {id_a} has no partner on "
                        f"{id_b} under translation {translation} (is the mesh "
                        "uniformly refined across the periodic boundary?)"
                    )
                cp, fp, k2x2_p = hit
                if forest.leaves[c].level != forest.leaves[cp].level:
                    raise RuntimeError(
                        "periodic faces must pair at equal refinement levels"
                    )
                o = _orientation_from_corners(k2x2_m, k2x2_p)
                add_interior(c, f, cp, fp, o, None)
                matched.add((c, f))
                matched.add((cp, fp))
        # drop the now-matched faces from the boundary batches
        for bkey in list(boundary):
            batch = boundary[bkey]
            kept = [cc for cc in batch.cells if (cc, batch.face) not in matched]  # type: ignore[union-attr]
            if kept:
                batch.cells = kept  # type: ignore[assignment]
            else:
                del boundary[bkey]

    ibatches = []
    for batch in interior.values():
        batch.cells_m = np.asarray(batch.cells_m, dtype=np.int64)
        batch.cells_p = np.asarray(batch.cells_p, dtype=np.int64)
        ibatches.append(batch)
    bbatches = []
    for batch in boundary.values():
        batch.cells = np.asarray(batch.cells, dtype=np.int64)
        bbatches.append(batch)
    ibatches.sort(key=lambda b: (b.face_m, b.face_p, b.orientation.code, b.subface or (-1, -1)))
    bbatches.sort(key=lambda b: (b.face, b.boundary_id))
    return MeshConnectivity(ibatches, bbatches)
