"""Coarse-mesh generators: boxes, discs, cylinders, and the generic
bifurcation of Figure 9.

Boundary indicators follow a single convention used throughout the
package:

* ``0`` — solid wall (default),
* ``1`` — inlet,
* ``2, 3, ...`` — outlets (one id per outlet).
"""

from __future__ import annotations

import numpy as np

from .hexmesh import HexMesh
from .transfinite import CylinderGeometry


def box(
    lower=(0.0, 0.0, 0.0),
    upper=(1.0, 1.0, 1.0),
    subdivisions=(1, 1, 1),
    boundary_ids: dict[int, int] | None = None,
) -> HexMesh:
    """Axis-aligned box split into ``nx x ny x nz`` hex cells.

    ``boundary_ids`` maps box side ``f = 2 d + s`` (same encoding as local
    faces) to a boundary indicator; unspecified sides get 0.
    """
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    n = np.asarray(subdivisions, dtype=int)
    if np.any(n < 1):
        raise ValueError("subdivisions must be >= 1")
    xs = [np.linspace(lower[d], upper[d], n[d] + 1) for d in range(3)]
    nvx, nvy, nvz = n + 1

    def vid(i, j, k):
        return i + nvx * (j + nvy * k)

    vertices = np.empty((nvx * nvy * nvz, 3))
    for k in range(nvz):
        for j in range(nvy):
            for i in range(nvx):
                vertices[vid(i, j, k)] = (xs[0][i], xs[1][j], xs[2][k])
    cells = []
    for k in range(n[2]):
        for j in range(n[1]):
            for i in range(n[0]):
                cells.append(
                    [
                        vid(i + a, j + b, k + c)
                        for c in range(2)
                        for b in range(2)
                        for a in range(2)
                    ]
                )
    mesh = HexMesh(vertices, np.asarray(cells))
    if boundary_ids:
        bmap = {}
        for side, bid in boundary_ids.items():
            d, s = divmod(side, 2)
            for c in range(mesh.n_cells):
                # cell index decomposition
                ci = c % n[0]
                cj = (c // n[0]) % n[1]
                ck = c // (n[0] * n[1])
                pos = (ci, cj, ck)[d]
                if (s == 0 and pos == 0) or (s == 1 and pos == n[d] - 1):
                    quad = frozenset(int(v) for v in mesh.face_vertices(c, side).ravel())
                    bmap[quad] = bid
        mesh.boundary_ids.update(bmap)
    return mesh


def unit_cube(subdivisions: int = 1) -> HexMesh:
    return box(subdivisions=(subdivisions,) * 3)


# ---------------------------------------------------------------------------
# Disc cross-sections.  The paper's airway cylinders use 12 elements per
# cross-section: a 2x2 inner square block surrounded by a ring of 8 cells
# whose outer edges approximate the circle (smoothed by the transfinite
# radial mapping).
# ---------------------------------------------------------------------------
def disc_cross_section(radius: float = 1.0, inner_fraction: float = 0.5):
    """2D layout of the 12-cell disc: returns ``(points, quads, ring_mask)``.

    ``points``: (n, 2) coordinates; ``quads``: (12, 4) vertex indices in
    lexicographic 2D order (v = vx + 2 vy); ``ring_mask``: which quads
    touch the circle with their *high-y-like* outer edge.  Outer-edge
    information is returned via a list of (quad index, local 2D edge) so
    the cylinder builder can attach the transfinite surface mapping.
    """
    a = inner_fraction * radius / np.sqrt(2.0)  # half-width of inner square
    # inner 3x3 lattice of the 2x2 block
    pts = []
    for j in range(3):
        for i in range(3):
            pts.append((-a + i * a, -a + j * a))
    inner_id = lambda i, j: i + 3 * j  # noqa: E731
    # outer circle points at the 8 directions matching the inner lattice
    ring_order = [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2), (1, 2), (0, 2), (0, 1)]
    outer_ids = {}
    for (i, j) in ring_order:
        px, py = pts[inner_id(i, j)]
        theta = np.arctan2(py, px)
        outer_ids[(i, j)] = len(pts)
        pts.append((radius * np.cos(theta), radius * np.sin(theta)))
    quads = []
    # 4 inner quads
    for j in range(2):
        for i in range(2):
            quads.append(
                [
                    inner_id(i, j),
                    inner_id(i + 1, j),
                    inner_id(i, j + 1),
                    inner_id(i + 1, j + 1),
                ]
            )
    # 8 ring quads between consecutive ring_order points.  Local 2D y (bit
    # 1 of the vertex index) points outward; local x runs *clockwise* so
    # the (x, y) frame stays right-handed (positive Jacobian after the
    # axial sweep).
    outer_edges = []
    for r in range(8):
        (i0, j0) = ring_order[r]
        (i1, j1) = ring_order[(r + 1) % 8]
        quad = [
            inner_id(i1, j1),
            inner_id(i0, j0),
            outer_ids[(i1, j1)],
            outer_ids[(i0, j0)],
        ]
        quads.append(quad)
        outer_edges.append((4 + r, "high_y"))
    return np.asarray(pts), np.asarray(quads), outer_edges


def cylinder(
    radius: float = 1.0,
    length: float = 4.0,
    n_axial: int = 4,
    inlet_id: int = 1,
    outlet_id: int = 2,
    start=(0.0, 0.0, 0.0),
    axis=(0.0, 0.0, 1.0),
    smooth: bool = True,
    taper_radius: float | None = None,
) -> HexMesh:
    """Swept 12-cell disc cylinder along ``axis`` with ``n_axial`` slices.

    With ``smooth=True`` a transfinite radial mapping is attached so the
    ring cells' outer faces lie exactly on the (possibly tapered)
    analytic cylinder surface.
    """
    start = np.asarray(start, dtype=float)
    axis = np.asarray(axis, dtype=float)
    axis = axis / np.linalg.norm(axis)
    r_end = radius if taper_radius is None else taper_radius
    # orthonormal frame
    helper = np.array([1.0, 0.0, 0.0])
    if abs(np.dot(helper, axis)) > 0.9:
        helper = np.array([0.0, 1.0, 0.0])
    e1 = np.cross(axis, helper)
    e1 /= np.linalg.norm(e1)
    e2 = np.cross(axis, e1)

    pts2d, quads2d, outer_edges = disc_cross_section(1.0)
    n2d = len(pts2d)
    vertices = []
    for s in range(n_axial + 1):
        t = s / n_axial
        r_here = (1 - t) * radius + t * r_end
        origin = start + t * length * axis
        for (px, py) in pts2d:
            vertices.append(origin + r_here * (px * e1 + py * e2))
    vertices = np.asarray(vertices)

    cells = []
    surface_cells = []  # (cell index, local face on surface)
    for s in range(n_axial):
        base0, base1 = s * n2d, (s + 1) * n2d
        for qi, quad in enumerate(quads2d):
            # local ordering: x ~ 2D x, y ~ 2D y, z ~ axial
            cell = [base0 + quad[0], base0 + quad[1], base0 + quad[2], base0 + quad[3],
                    base1 + quad[0], base1 + quad[1], base1 + quad[2], base1 + quad[3]]
            cells.append(cell)
            if qi >= 4:
                # ring cell: outer edge is high local y -> local face 3
                surface_cells.append((len(cells) - 1, 3))
    mesh = HexMesh(vertices, np.asarray(cells))

    # boundary indicators: inlet = first slice (-z faces), outlet = last
    bmap = {}
    for c in range(mesh.n_cells):
        s = c // 12
        if s == 0:
            quad = frozenset(int(v) for v in mesh.face_vertices(c, 4).ravel())
            bmap[quad] = inlet_id
        if s == n_axial - 1:
            quad = frozenset(int(v) for v in mesh.face_vertices(c, 5).ravel())
            bmap[quad] = outlet_id
    mesh.boundary_ids.update(bmap)

    if smooth:
        geo = CylinderGeometry(
            mesh,
            surface_faces={c: f for (c, f) in surface_cells},
            axis_start=start,
            axis_direction=axis,
            length=length,
            radius_start=radius,
            radius_end=r_end,
        )
        mesh.geometry = geo
    return mesh


def bifurcation(
    radius: float = 1.0,
    parent_length: float = 4.0,
    child_length: float = 4.0,
    opening_angle_deg: float = 60.0,
    cells_per_diameter: int = 2,
    child_radius_ratio: float = 0.79,
) -> HexMesh:
    """The generic bifurcation of Figure 9: one tube splitting into two
    outlet tubes with the given opening angle, built by the square-duct
    tube-tree mesher shared with the lung meshes.

    The default ``child_radius_ratio = 0.79 ~ 2^{-1/3}`` follows the
    Weibel-model area-preserving branching used by the lung model.
    """
    from .tube_tree import BranchSpec, tube_tree_mesh

    half = np.radians(opening_angle_deg / 2.0)
    rc = radius * child_radius_ratio
    d1 = np.array([np.sin(half), 0.0, np.cos(half)])
    d2 = np.array([-np.sin(half), 0.0, np.cos(half)])
    branches = [
        BranchSpec(parent=-1, direction=(0, 0, 1), length=parent_length,
                   radius=radius, outlet_id=0),
        BranchSpec(parent=0, direction=tuple(d1), length=child_length,
                   radius=rc, outlet_id=2),
        BranchSpec(parent=0, direction=tuple(d2), length=child_length,
                   radius=rc, outlet_id=3, side_branch=True),
    ]
    return tube_tree_mesh(branches, inlet_id=1)
