"""Unstructured coarse hexahedral meshes (Section 3.3).

The paper's meshes are hex-only: an unstructured *coarse* mesh whose
cells act as the root trees of a forest of octrees (p4est style), with
structured refinement inside each tree.  :class:`HexMesh` stores the
coarse topology; :mod:`repro.mesh.octree` adds the refinement forest.

Vertex ordering inside a cell is lexicographic: local vertex
``v = vx + 2 vy + 4 vz`` sits at reference-cube corner
``(vx, vy, vz) in {0, 1}^3``.  Local face ``f = 2 d + s`` is normal to
reference dimension ``d`` on the low (``s = 0``) or high (``s = 1``)
side, matching :mod:`repro.core.sum_factorization`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

#: Local vertex indices of face ``f = 2 d + s`` in the face's own (a, b)
#: frame, where ``a`` runs along the *higher* remaining dimension and
#: ``b`` along the lower one (the array-axis order of face data produced
#: by the sum-factorization kernels).  Entry [f][a][b] is a local vertex.
_FACE_CORNERS: list[list[list[int]]] = []
for _d in range(3):
    for _s in range(2):
        rem = [dd for dd in (2, 1, 0) if dd != _d]  # (high, low)
        table = [[0, 0], [0, 0]]
        for _a in range(2):
            for _b in range(2):
                coords = [0, 0, 0]
                coords[_d] = _s
                coords[rem[0]] = _a
                coords[rem[1]] = _b
                table[_a][_b] = coords[0] + 2 * coords[1] + 4 * coords[2]
        _FACE_CORNERS.append(table)


def face_corner_vertices(face: int) -> np.ndarray:
    """Local vertex indices of a face as a (2, 2) array in (a, b) frame."""
    return np.asarray(_FACE_CORNERS[face])


@dataclass
class HexMesh:
    """An unstructured mesh of hexahedral cells.

    Attributes
    ----------
    vertices:
        ``(n_vertices, 3)`` physical coordinates.
    cells:
        ``(n_cells, 8)`` vertex indices in lexicographic local order.
    boundary_ids:
        Maps a frozenset of 4 vertex ids (a boundary quad) to an integer
        boundary indicator used by boundary conditions.  Faces not listed
        default to indicator 0.
    geometry:
        Optional smooth geometry description: a callable
        ``geometry(tree_index, ref_points) -> physical_points`` taking
        reference coordinates in the unit cube of one coarse cell.  When
        absent, trilinear interpolation of the corner vertices is used.
        The lung meshes attach transfinite cylinder mappings here.
    """

    vertices: np.ndarray
    cells: np.ndarray
    boundary_ids: dict = field(default_factory=dict)
    geometry: Callable | None = None

    def __post_init__(self) -> None:
        self.vertices = np.asarray(self.vertices, dtype=float)
        self.cells = np.asarray(self.cells, dtype=np.int64)
        if self.vertices.ndim != 2 or self.vertices.shape[1] != 3:
            raise ValueError("vertices must have shape (n, 3)")
        if self.cells.ndim != 2 or self.cells.shape[1] != 8:
            raise ValueError("cells must have shape (n, 8)")
        if self.cells.size and self.cells.max() >= len(self.vertices):
            raise ValueError("cell refers to non-existent vertex")

    @property
    def n_cells(self) -> int:
        return self.cells.shape[0]

    @property
    def n_vertices(self) -> int:
        return self.vertices.shape[0]

    # ------------------------------------------------------------------
    def cell_corners(self, c: int) -> np.ndarray:
        """(8, 3) corner coordinates of cell ``c`` in lexicographic order."""
        return self.vertices[self.cells[c]]

    def map_trilinear(self, c: int, ref: np.ndarray) -> np.ndarray:
        """Trilinear map of reference points ``(m, 3)`` in cell ``c``."""
        return trilinear(self.cell_corners(c), ref)

    def map_geometry(self, c: int, ref: np.ndarray) -> np.ndarray:
        """Smooth geometry map (falls back to trilinear)."""
        if self.geometry is None:
            return self.map_trilinear(c, ref)
        return self.geometry(c, ref)

    def face_vertices(self, c: int, face: int) -> np.ndarray:
        """(2, 2) global vertex ids of a local face in (a, b) frame."""
        return self.cells[c][face_corner_vertices(face)]

    def boundary_id_of(self, vertex_ids) -> int:
        return self.boundary_ids.get(frozenset(int(v) for v in vertex_ids), 0)

    def cell_volume_estimate(self, c: int) -> float:
        """Volume of the trilinear cell by 2-point Gauss quadrature."""
        from ..core.quadrature import gauss, tensor_points, tensor_weights

        rule = gauss(2)
        pts = tensor_points(rule, 3)
        w = tensor_weights(rule, 3)
        J = trilinear_jacobian(self.cell_corners(c), pts)
        return float(np.dot(w, np.abs(np.linalg.det(J))))


def trilinear(corners: np.ndarray, ref: np.ndarray) -> np.ndarray:
    """Trilinear interpolation of 8 corners (lexicographic) at ``ref``.

    ``corners``: (8, 3) or batched (..., 8, 3); ``ref``: (m, 3) in [0,1]^3.
    Returns (..., m, 3).
    """
    ref = np.atleast_2d(ref)
    x, y, z = ref[:, 0], ref[:, 1], ref[:, 2]
    w = np.empty((ref.shape[0], 8))
    for v in range(8):
        vx, vy, vz = v & 1, (v >> 1) & 1, (v >> 2) & 1
        w[:, v] = (
            (vx * x + (1 - vx) * (1 - x))
            * (vy * y + (1 - vy) * (1 - y))
            * (vz * z + (1 - vz) * (1 - z))
        )
    return np.einsum("mv,...vd->...md", w, np.asarray(corners))


def trilinear_jacobian(corners: np.ndarray, ref: np.ndarray) -> np.ndarray:
    """Jacobian dX/dref of the trilinear map, shape (m, 3, 3);
    ``J[m, i, j] = dX_i / dref_j``."""
    ref = np.atleast_2d(ref)
    x, y, z = ref[:, 0], ref[:, 1], ref[:, 2]
    corners = np.asarray(corners)
    J = np.zeros((ref.shape[0], 3, 3))
    for v in range(8):
        vx, vy, vz = v & 1, (v >> 1) & 1, (v >> 2) & 1
        fx = vx * x + (1 - vx) * (1 - x)
        fy = vy * y + (1 - vy) * (1 - y)
        fz = vz * z + (1 - vz) * (1 - z)
        dfx = np.full_like(x, 2.0 * vx - 1.0)
        dfy = np.full_like(y, 2.0 * vy - 1.0)
        dfz = np.full_like(z, 2.0 * vz - 1.0)
        J += corners[v][None, :, None] * np.stack(
            [dfx * fy * fz, fx * dfy * fz, fx * fy * dfz], axis=-1
        )[:, None, :]
    return J


def merge_meshes(meshes: list[HexMesh], tol: float = 1e-9) -> HexMesh:
    """Merge several hex meshes, unifying vertices that coincide within
    ``tol`` — the operation that joins the independent airway-cylinder
    meshes at the bifurcation transition sections (Figure 4 (b))."""
    all_vertices = np.concatenate([m.vertices for m in meshes], axis=0)
    key = np.round(all_vertices / tol).astype(np.int64)
    _, unique_idx, inverse = np.unique(key, axis=0, return_index=True, return_inverse=True)
    new_vertices = all_vertices[unique_idx]
    cells = []
    offset = 0
    boundary_ids: dict = {}
    for m in meshes:
        cells.append(inverse[m.cells + offset])
        for quad, bid in m.boundary_ids.items():
            new_quad = frozenset(int(inverse[v + offset]) for v in quad)
            boundary_ids[new_quad] = bid
        offset += m.n_vertices
    return HexMesh(new_vertices, np.concatenate(cells, axis=0), boundary_ids)
