"""High-order polynomial geometry representation and metric terms.

Following Heltai et al. (2021) and Section 3.3 of the paper, the analytic
geometry (transfinite cylinder mappings, deformations) is sampled *once*
at the Gauss–Lobatto lattice of every leaf cell and stored as a
polynomial geometry field; all metric terms (Jacobians, inverse
transposes, JxW, face normals) are then derived from this field with the
same sum-factorization kernels used by the operators.

Layouts
-------
* nodal geometry  ``X[c, i, nz, ny, nx]``  (i = physical component)
* cell Jacobian   ``J[c, i, j, qz, qy, qx]`` = dX_i/dref_j at cell
  quadrature points
* face arrays     ``(n_faces, ..., qa, qb)`` with the face lattice on the
  trailing axes so orientation transforms apply uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.sum_factorization import TensorProductKernel
from .connectivity import FaceBatch, BoundaryBatch, MeshConnectivity, orient_face_array
from .octree import Forest


def _invert_3x3(J: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Determinant and inverse of a field of 3x3 matrices with the matrix
    axes at positions 1, 2: ``J[..., i, j, ...]`` of shape
    ``(N, 3, 3, *rest)``.  Returns ``(det (N, *rest), inv (N, 3, 3, *rest))``.
    """
    a = J
    det = (
        a[:, 0, 0] * (a[:, 1, 1] * a[:, 2, 2] - a[:, 1, 2] * a[:, 2, 1])
        - a[:, 0, 1] * (a[:, 1, 0] * a[:, 2, 2] - a[:, 1, 2] * a[:, 2, 0])
        + a[:, 0, 2] * (a[:, 1, 0] * a[:, 2, 1] - a[:, 1, 1] * a[:, 2, 0])
    )
    inv = np.empty_like(a)
    inv[:, 0, 0] = a[:, 1, 1] * a[:, 2, 2] - a[:, 1, 2] * a[:, 2, 1]
    inv[:, 0, 1] = a[:, 0, 2] * a[:, 2, 1] - a[:, 0, 1] * a[:, 2, 2]
    inv[:, 0, 2] = a[:, 0, 1] * a[:, 1, 2] - a[:, 0, 2] * a[:, 1, 1]
    inv[:, 1, 0] = a[:, 1, 2] * a[:, 2, 0] - a[:, 1, 0] * a[:, 2, 2]
    inv[:, 1, 1] = a[:, 0, 0] * a[:, 2, 2] - a[:, 0, 2] * a[:, 2, 0]
    inv[:, 1, 2] = a[:, 0, 2] * a[:, 1, 0] - a[:, 0, 0] * a[:, 1, 2]
    inv[:, 2, 0] = a[:, 1, 0] * a[:, 2, 1] - a[:, 1, 1] * a[:, 2, 0]
    inv[:, 2, 1] = a[:, 0, 1] * a[:, 2, 0] - a[:, 0, 0] * a[:, 2, 1]
    inv[:, 2, 2] = a[:, 0, 0] * a[:, 1, 1] - a[:, 0, 1] * a[:, 1, 0]
    inv /= det[:, None, None]
    return det, inv


@dataclass
class CellMetrics:
    """Per-cell quadrature-point metric data (the D_e factors of Eq. (7)).

    Attributes
    ----------
    jxw:       (N, nq, nq, nq)        quadrature weight x |det J|
    jinv_t:    (N, 3, 3, nq, nq, nq)  J^{-T}: phys grad = jinv_t @ ref grad
    laplace_d: (N, 3, 3, nq, nq, nq)  J^{-1} J^{-T} |det J| w — the
               symmetric 3x3 block applied between I_e and I_e^T for the
               Laplacian.
    points:    (N, 3, nq, nq, nq)     physical quadrature points
    det_j:     (N, nq, nq, nq)        Jacobian determinant (sign retained)
    """

    jxw: np.ndarray
    jinv_t: np.ndarray
    laplace_d: np.ndarray
    points: np.ndarray
    det_j: np.ndarray


@dataclass
class FaceSideData:
    """Metric data of one side of a face batch, at the (minus-frame) face
    quadrature points.

    jinv_t: (F, 3, 3, qa, qb) of that side's cell (plus side already
            orientation-transformed into the minus frame).
    """

    jinv_t: np.ndarray
    _jinv_t_c: np.ndarray | None = None

    @property
    def jinv_t_c(self) -> np.ndarray:
        """C-contiguous copy of :attr:`jinv_t` (cached).  ``jinv_t`` is a
        transposed view whose layout favors the ``J^{-T} g`` einsum; the
        adjoint contraction (``J^{-1} r``, test-function side) runs ~30%
        faster on the contiguous layout."""
        if self._jinv_t_c is None:
            self._jinv_t_c = np.ascontiguousarray(self.jinv_t)
        return self._jinv_t_c


@dataclass
class FaceMetrics:
    """Geometric data of one interior :class:`FaceBatch` (minus frame).

    normal:  (F, 3, qa, qb)  outward unit normal of the minus cell
    jxw:     (F, qa, qb)     surface element x quadrature weight
    minus/plus: per-side J^{-T} data
    penalty: (F,)            SIP penalty scale max(A_f/V_m, A_f/V_p)
    points:  (F, 3, qa, qb)  physical quadrature points
    """

    normal: np.ndarray
    jxw: np.ndarray
    minus: FaceSideData
    plus: FaceSideData | None
    penalty: np.ndarray
    points: np.ndarray


class GeometryField:
    """Nodal polynomial geometry of all leaves + metric factories."""

    def __init__(self, forest: Forest, degree: int, n_q_points: int | None = None,
                 use_collocation: bool = False):
        self.forest = forest
        self.degree = degree
        self.kernel = TensorProductKernel(
            degree, n_q_points or degree + 1, use_collocation=use_collocation
        )
        n = degree + 1
        nodes = self.kernel.shape.basis.nodes
        # reference lattice with x fastest, matching (z, y, x) array layout
        zz, yy, xx = np.meshgrid(nodes, nodes, nodes, indexing="ij")
        ref = np.stack([xx.ravel(), yy.ravel(), zz.ravel()], axis=1)
        X = np.empty((forest.n_cells, 3, n, n, n))
        coarse = forest.coarse
        for c, leaf in enumerate(forest.leaves):
            pts = coarse.map_geometry(leaf.tree, leaf.ref_points(ref))
            X[c] = pts.T.reshape(3, n, n, n)
        self.X = X
        # scale reference derivatives: X is sampled on the *leaf* lattice,
        # so kernel gradients are already w.r.t. leaf reference coords.
        self._cell_metrics: CellMetrics | None = None

    @property
    def n_cells(self) -> int:
        return self.forest.n_cells

    # ------------------------------------------------------------------
    def cell_metrics(self) -> CellMetrics:
        """Compute (and cache) all cell quadrature metric data."""
        if self._cell_metrics is not None:
            return self._cell_metrics
        kern = self.kernel
        nq = kern.n_q_points
        N = self.n_cells
        # J[c, i, j, q...]: gradients of each physical component
        vals, grads = kern.values_and_gradients(self.X)
        # grads has shape (N, 3phys, 3ref, nq, nq, nq) because the X
        # component axis rides along as a batch axis before the new ref axis
        J = grads
        det, Jinv = _invert_3x3(J.reshape(N, 3, 3, -1))
        det = det.reshape(N, nq, nq, nq)
        Jinv = Jinv.reshape(N, 3, 3, nq, nq, nq)
        if np.any(det <= 0):
            bad = int(np.sum(np.any(det.reshape(N, -1) <= 0, axis=1)))
            raise ValueError(f"{bad} cells have non-positive Jacobian")
        w = kern.quadrature_weights  # (nq, nq, nq)
        jxw = np.abs(det) * w
        jinv_t = np.swapaxes(Jinv, 1, 2)
        laplace_d = np.einsum("cij...,ckj...->cik...", Jinv, Jinv) * jxw[:, None, None]
        self._cell_metrics = CellMetrics(
            jxw=jxw, jinv_t=jinv_t, laplace_d=laplace_d, points=vals, det_j=det
        )
        return self._cell_metrics

    # ------------------------------------------------------------------
    def _nodal_jacobian(self, cells: np.ndarray) -> np.ndarray:
        """J at the nodal lattice of the given cells: (F, 3, 3, n, n, n)."""
        return self.kernel.nodal_gradients(self.X[cells])

    def _cell_volumes(self) -> np.ndarray:
        cm = self.cell_metrics()
        return cm.jxw.reshape(self.n_cells, -1).sum(axis=1)

    def _side_face_data(
        self,
        cells: np.ndarray,
        face: int,
        orientation=None,
        subface=None,
    ):
        """Nodal face traces of X and J for one side, oriented into the
        minus frame and interpolated to the minus quadrature points.

        Returns (points (F,3,qa,qb), J (F,3,3,qa,qb)).
        """
        kern = self.kernel
        Xc = self.X[cells]  # (F, 3, n, n, n)
        Jc = self._nodal_jacobian(cells)  # (F, 3, 3, n, n, n)
        tX = kern.face_nodal_trace(Xc, face)  # (F, 3, n, n)
        tJ = kern.face_nodal_trace(Jc, face)  # (F, 3, 3, n, n)
        if orientation is not None and not orientation.is_identity:
            # the stored orientation maps minus coords to plus coords, which
            # is exactly what re-indexing a plus array into minus layout needs
            tX = orient_face_array(tX, orientation)
            tJ = orient_face_array(tJ, orientation)
        qX = kern.face_nodal_to_quad(tX, subface)
        qJ = kern.face_nodal_to_quad(tJ, subface)
        return qX, qJ

    def face_metrics(self, batch: FaceBatch) -> FaceMetrics:
        """Metric data of an interior face batch (minus integration frame)."""
        kern = self.kernel
        d_m, s_m = divmod(batch.face_m, 2)
        qX, qJ_m = self._side_face_data(batch.cells_m, batch.face_m)
        F = len(batch.cells_m)
        nq = kern.n_q_points
        _, Jinv_m = _invert_3x3(qJ_m.reshape(F, 3, 3, -1))
        jinv_t_m = np.swapaxes(Jinv_m, 1, 2).reshape(F, 3, 3, nq, nq)

        # surface element: cross product of the two tangent columns of J,
        # tangential dims in (a, b) face-frame order (higher dim first)
        rem = [dd for dd in (2, 1, 0) if dd != d_m]
        t_a = qJ_m[:, :, rem[0]]  # (F, 3, qa, qb)
        t_b = qJ_m[:, :, rem[1]]
        sv = np.cross(t_a, t_b, axis=1)
        area = np.linalg.norm(sv, axis=1)
        normal = sv / area[:, None]
        # orient outward: the outward direction is J^{-T} applied to the
        # outward reference normal +-e_d
        ref_n = np.zeros(3)
        ref_n[d_m] = 1.0 if s_m == 1 else -1.0
        sign = np.sign(
            np.einsum("fi...,fi...->f...", normal, np.einsum("fij...,j->fi...", jinv_t_m, ref_n))
        )
        normal = normal * sign[:, None]

        # The minus side is always a full face of the (fine) minus cell, so
        # the surface element computed from its Jacobian needs no subface
        # area factor.
        w1 = kern.shape.quadrature.weights
        wface = w1[:, None] * w1[None, :]
        jxw = area * wface[None, :, :]

        plus = None
        if batch.cells_p is not None:
            qXp, qJ_p = self._side_face_data(
                batch.cells_p, batch.face_p, batch.orientation, batch.subface
            )
            _, Jinv_p = _invert_3x3(qJ_p.reshape(F, 3, 3, -1))
            jinv_t_p = np.swapaxes(Jinv_p, 1, 2).reshape(F, 3, 3, nq, nq)
            plus = FaceSideData(jinv_t=jinv_t_p)

        # SIP penalty scale: area / volume of each adjacent cell
        vols = self._cell_volumes()
        areas = jxw.reshape(F, -1).sum(axis=1)
        pen = areas / vols[batch.cells_m]
        if batch.cells_p is not None:
            area_plus = areas if batch.subface is None else 4.0 * areas
            pen = np.maximum(pen, area_plus / vols[batch.cells_p])
        return FaceMetrics(
            normal=normal, jxw=jxw, minus=FaceSideData(jinv_t=jinv_t_m),
            plus=plus, penalty=pen, points=qX,
        )

    def boundary_metrics(self, batch: BoundaryBatch) -> FaceMetrics:
        """Metric data of a boundary batch (treated as minus side only)."""
        kern = self.kernel
        d_m, s_m = divmod(batch.face, 2)
        qX, qJ_m = self._side_face_data(batch.cells, batch.face)
        F = len(batch.cells)
        nq = kern.n_q_points
        _, Jinv_m = _invert_3x3(qJ_m.reshape(F, 3, 3, -1))
        jinv_t_m = np.swapaxes(Jinv_m, 1, 2).reshape(F, 3, 3, nq, nq)
        rem = [dd for dd in (2, 1, 0) if dd != d_m]
        t_a = qJ_m[:, :, rem[0]]
        t_b = qJ_m[:, :, rem[1]]
        sv = np.cross(t_a, t_b, axis=1)
        area = np.linalg.norm(sv, axis=1)
        normal = sv / area[:, None]
        ref_n = np.zeros(3)
        ref_n[d_m] = 1.0 if s_m == 1 else -1.0
        sign = np.sign(
            np.einsum("fi...,fi...->f...", normal, np.einsum("fij...,j->fi...", jinv_t_m, ref_n))
        )
        normal = normal * sign[:, None]
        w1 = kern.shape.quadrature.weights
        jxw = area * (w1[:, None] * w1[None, :])[None]
        vols = self._cell_volumes()
        areas = jxw.reshape(F, -1).sum(axis=1)
        pen = areas / vols[batch.cells]
        return FaceMetrics(
            normal=normal, jxw=jxw, minus=FaceSideData(jinv_t=jinv_t_m),
            plus=None, penalty=pen, points=qX,
        )

    def all_face_metrics(self, conn: MeshConnectivity):
        """Precompute metrics of every interior and boundary batch."""
        interior = [self.face_metrics(b) for b in conn.interior]
        boundary = [self.boundary_metrics(b) for b in conn.boundary]
        return interior, boundary
