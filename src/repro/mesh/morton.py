"""Morton (Z-order) space-filling-curve keys.

p4est orders the leaves of each octree along the Morton curve and
concatenates trees; partitioning into MPI ranks cuts this 1D ordering
into contiguous chunks.  We reproduce the same ordering for the simulated
distributed runtime (:mod:`repro.parallel.partition`) because the curve
determines the ghost-surface (communication) volume of each partition —
an input to the strong-scaling model of Figures 8-10.
"""

from __future__ import annotations

import numpy as np

_MAX_LEVEL = 20


def _part1by2(x: np.ndarray) -> np.ndarray:
    """Spread the bits of x so they occupy every third position."""
    x = x.astype(np.uint64) & np.uint64(0x1FFFFF)  # 21 bits
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def morton_key(i: np.ndarray, j: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Interleave three integer coordinates into a Morton key (vectorized)."""
    i = np.asarray(i, dtype=np.uint64)
    j = np.asarray(j, dtype=np.uint64)
    k = np.asarray(k, dtype=np.uint64)
    return _part1by2(i) | (_part1by2(j) << np.uint64(1)) | (_part1by2(k) << np.uint64(2))


def forest_order(tree: np.ndarray, level: np.ndarray, anchors: np.ndarray,
                 max_level: int | None = None) -> np.ndarray:
    """Argsort of forest leaves in p4est order: by tree, then by the Morton
    key of the anchor scaled to a common finest lattice.

    ``anchors``: (n, 3) integer anchor coordinates at each leaf's level.
    """
    tree = np.asarray(tree, dtype=np.int64)
    level = np.asarray(level, dtype=np.int64)
    anchors = np.asarray(anchors, dtype=np.int64)
    L = int(max_level if max_level is not None else (level.max() if level.size else 0))
    scale = (1 << (L - level)).astype(np.uint64)
    key = morton_key(
        anchors[:, 0].astype(np.uint64) * scale,
        anchors[:, 1].astype(np.uint64) * scale,
        anchors[:, 2].astype(np.uint64) * scale,
    )
    # lexicographic (tree, key): numpy lexsort uses last key as primary
    return np.lexsort((key, tree))


def partition_contiguous(weights: np.ndarray, n_parts: int) -> np.ndarray:
    """Cut a weighted 1D sequence into ``n_parts`` contiguous chunks with
    near-equal weight (the p4est partition step).  Returns the part index
    of each item."""
    weights = np.asarray(weights, dtype=float)
    n = weights.size
    if n_parts <= 0:
        raise ValueError("n_parts must be positive")
    total = weights.sum()
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    cum = np.cumsum(weights) - 0.5 * weights
    part = np.minimum((cum / total * n_parts).astype(np.int64), n_parts - 1)
    return part
