"""Forest-of-octrees refinement over an unstructured coarse hex mesh.

Mirrors the p4est concept used by the paper (Section 3.3): every coarse
cell is the root of an octree; leaves are identified by
``(tree, level, i, j, k)`` with the integer anchor measured in units of
``2^-level`` of the tree.  The forest supports

* local refinement (:meth:`Forest.refine`) and uniform refinement,
* 2:1 balancing across faces, including across tree boundaries
  (:meth:`Forest.balance`),
* *global coarsening* (:meth:`Forest.global_coarsening_level`): towards
  the next coarser multigrid level every cell is coarsened if possible —
  the new deal.II algorithm the paper introduces for locally refined
  meshes, which promises better load balancing than local smoothing.

Neighbor detection is deferred to :mod:`repro.mesh.connectivity`, which
matches leaf faces geometrically (quantized trilinear corner positions),
handling arbitrary coarse-cell orientations without explicit transform
tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hexmesh import HexMesh
from .morton import forest_order


@dataclass(frozen=True, order=True)
class CellId:
    """Identifier of one octree cell: anchor (i, j, k) in units 2^-level."""

    tree: int
    level: int
    i: int
    j: int
    k: int

    def __post_init__(self) -> None:
        top = 1 << self.level
        if not (0 <= self.i < top and 0 <= self.j < top and 0 <= self.k < top):
            raise ValueError(f"anchor outside tree: {self}")

    @property
    def anchor(self) -> tuple[int, int, int]:
        return (self.i, self.j, self.k)

    def children(self) -> list["CellId"]:
        """The 8 children in lexicographic (x fastest) order."""
        t, l = self.tree, self.level + 1
        i, j, k = 2 * self.i, 2 * self.j, 2 * self.k
        return [
            CellId(t, l, i + (c & 1), j + ((c >> 1) & 1), k + ((c >> 2) & 1))
            for c in range(8)
        ]

    def parent(self) -> "CellId":
        if self.level == 0:
            raise ValueError("root cell has no parent")
        return CellId(self.tree, self.level - 1, self.i // 2, self.j // 2, self.k // 2)

    def child_index(self) -> int:
        """Which of its parent's 8 children this cell is."""
        return (self.i & 1) + 2 * (self.j & 1) + 4 * (self.k & 1)

    def ref_corners(self) -> np.ndarray:
        """(8, 3) corner coordinates in the tree's reference cube."""
        h = 1.0 / (1 << self.level)
        base = np.array([self.i, self.j, self.k], dtype=float) * h
        out = np.empty((8, 3))
        for v in range(8):
            out[v] = base + h * np.array([v & 1, (v >> 1) & 1, (v >> 2) & 1])
        return out

    def ref_points(self, unit_points: np.ndarray) -> np.ndarray:
        """Map points of the leaf's unit cube into the tree's unit cube."""
        h = 1.0 / (1 << self.level)
        base = np.array([self.i, self.j, self.k], dtype=float) * h
        return base + h * np.asarray(unit_points)


class Forest:
    """A forest of octrees over a coarse :class:`HexMesh`.

    Leaves are kept in p4est order (tree-major, Morton within the tree);
    the integer index of a leaf in :attr:`leaves` is its *cell index* used
    throughout dof handlers and operators.
    """

    def __init__(self, coarse: HexMesh, leaves=None) -> None:
        self.coarse = coarse
        if leaves is None:
            leaves = [CellId(t, 0, 0, 0, 0) for t in range(coarse.n_cells)]
        self.leaves: list[CellId] = self._sorted(list(leaves))
        self._leaf_set = set(self.leaves)
        self._index = {c: i for i, c in enumerate(self.leaves)}

    # -- bookkeeping -----------------------------------------------------
    @staticmethod
    def _sorted(leaves: list[CellId]) -> list[CellId]:
        if not leaves:
            return leaves
        tree = np.array([c.tree for c in leaves])
        level = np.array([c.level for c in leaves])
        anchors = np.array([[c.i, c.j, c.k] for c in leaves])
        order = forest_order(tree, level, anchors)
        return [leaves[int(q)] for q in order]

    @property
    def n_cells(self) -> int:
        return len(self.leaves)

    @property
    def max_level(self) -> int:
        return max((c.level for c in self.leaves), default=0)

    @property
    def min_level(self) -> int:
        return min((c.level for c in self.leaves), default=0)

    def is_leaf(self, cell: CellId) -> bool:
        return cell in self._leaf_set

    def index_of(self, cell: CellId) -> int:
        try:
            return self._index[cell]
        except KeyError as exc:
            raise KeyError(f"{cell} is not a leaf") from exc

    # -- refinement ------------------------------------------------------
    def refine(self, cells) -> "Forest":
        """Return a new forest with the given leaves replaced by their
        children.  ``cells`` may contain :class:`CellId` or leaf indices."""
        to_refine = {self._as_cellid(c) for c in cells}
        missing = to_refine - self._leaf_set
        if missing:
            raise KeyError(f"cannot refine non-leaf cells: {sorted(missing)[:3]}")
        new_leaves = []
        for leaf in self.leaves:
            if leaf in to_refine:
                new_leaves.extend(leaf.children())
            else:
                new_leaves.append(leaf)
        return Forest(self.coarse, new_leaves)

    def refine_all(self, times: int = 1) -> "Forest":
        f = self
        for _ in range(times):
            f = f.refine(list(f.leaves))
        return f

    def coarsen(self, parents) -> "Forest":
        """Replace complete sibling groups by their parent.  ``parents`` is
        an iterable of parent :class:`CellId`; raises if any child of a
        requested parent is not a leaf."""
        parents = {p for p in parents}
        removed = set()
        for p in parents:
            kids = p.children()
            if not all(k in self._leaf_set for k in kids):
                raise KeyError(f"not all children of {p} are leaves")
            removed.update(kids)
        new_leaves = [c for c in self.leaves if c not in removed]
        new_leaves.extend(parents)
        return Forest(self.coarse, new_leaves)

    def _as_cellid(self, c) -> CellId:
        if isinstance(c, CellId):
            return c
        return self.leaves[int(c)]

    # -- 2:1 balance -------------------------------------------------------
    def balance(self) -> "Forest":
        """Enforce the 2:1 face-balance condition (at most one level of
        difference between face neighbors), refining coarser cells until
        no violation remains."""
        from .connectivity import find_unbalanced_cells

        forest = self
        for _ in range(64):  # level differences shrink every sweep
            violators = find_unbalanced_cells(forest)
            if not violators:
                return forest
            forest = forest.refine(violators)
        raise RuntimeError("2:1 balancing did not converge")  # pragma: no cover

    # -- global coarsening (multigrid hierarchy) ---------------------------
    def global_coarsening_level(self) -> tuple["Forest", dict[CellId, list[CellId]]]:
        """One step of the global-coarsening algorithm (Section 3.4):
        every cell is coarsened if all 8 siblings are leaves; level-0
        cells and partial sibling groups stay.  Returns the coarser forest
        and the parent -> children map for the transfer operator (cells
        that stayed map to a single-entry list of themselves)."""
        by_parent: dict[CellId, list[CellId]] = {}
        for leaf in self.leaves:
            if leaf.level == 0:
                continue
            by_parent.setdefault(leaf.parent(), []).append(leaf)
        coarsenable = {
            p for p, kids in by_parent.items() if len(kids) == 8
        }
        new_leaves: list[CellId] = []
        transfer: dict[CellId, list[CellId]] = {}
        emitted = set()
        for leaf in self.leaves:
            if leaf.level > 0 and leaf.parent() in coarsenable:
                p = leaf.parent()
                if p not in emitted:
                    emitted.add(p)
                    new_leaves.append(p)
                    transfer[p] = p.children()
            else:
                new_leaves.append(leaf)
                transfer[leaf] = [leaf]
        coarse_forest = Forest(self.coarse, new_leaves)
        # Keep the coarse level 2:1 balanced as well; if balancing refines
        # cells back, drop them from coarsening (rare; simple retry).
        balanced = coarse_forest.balance()
        if balanced.n_cells != coarse_forest.n_cells:
            back = set(balanced.leaves)
            transfer = {}
            for leaf in balanced.leaves:
                if leaf in self._leaf_set:
                    transfer[leaf] = [leaf]
                else:
                    transfer[leaf] = leaf.children()
            # verify all children are fine-level leaves
            for p, kids in transfer.items():
                if kids != [p] and not all(k in self._leaf_set for k in kids):
                    # cannot represent -> give up coarsening this cell
                    raise RuntimeError(
                        "global coarsening produced an inconsistent level"
                    )  # pragma: no cover
            coarse_forest = balanced
        return coarse_forest, transfer

    def coarsening_hierarchy(self) -> list["Forest"]:
        """Full multigrid hierarchy from this (finest) forest down to the
        coarse mesh: repeatedly apply global coarsening until no cell can
        be coarsened.  Returns [finest, ..., coarsest]."""
        levels = [self]
        while levels[-1].max_level > 0:
            coarser, _ = levels[-1].global_coarsening_level()
            if coarser.n_cells == levels[-1].n_cells:
                break
            levels.append(coarser)
        return levels

    # -- geometry ----------------------------------------------------------
    def cell_corner_points(self, index: int) -> np.ndarray:
        """(8, 3) trilinear physical corners of leaf ``index`` (matching
        purposes; smooth geometry is handled by the mapping module)."""
        leaf = self.leaves[index]
        ref = leaf.ref_corners()
        return self.coarse.map_trilinear(leaf.tree, ref)

    def leaf_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized (tree, level, anchor) arrays of all leaves."""
        tree = np.array([c.tree for c in self.leaves], dtype=np.int64)
        level = np.array([c.level for c in self.leaves], dtype=np.int64)
        anchors = np.array([[c.i, c.j, c.k] for c in self.leaves], dtype=np.int64)
        return tree, level, anchors

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Forest({self.coarse.n_cells} trees, {self.n_cells} leaves, "
            f"levels {self.min_level}..{self.max_level})"
        )
