"""Hex-mesh quality metrics.

Section 3.3 designs the airway mesher around "high mesh quality with
good cross-section to length ratios" and Section 5.2 explains the lung
case's weaker multigrid convergence by "more strongly deformed elements
... difficult angles ... more anisotropy in the axial to radial element
lengths".  This module quantifies exactly those properties per cell so
mesh generators and tests can enforce them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hexmesh import trilinear_jacobian
from .octree import Forest

#: reference-cube corners in lexicographic order
_CORNERS_REF = np.array(
    [[v & 1, (v >> 1) & 1, (v >> 2) & 1] for v in range(8)], dtype=float
)


@dataclass
class MeshQualityReport:
    """Per-cell quality arrays plus summary accessors.

    scaled_jacobian: min over corners of det(J) normalized by the edge-
                     length product — 1 for a cube, <= 0 for inverted.
    aspect_ratio:    longest / shortest averaged edge per direction.
    skewness:        max deviation of face-direction angles from
                     orthogonality, in [0, 1) (0 = orthogonal).
    """

    scaled_jacobian: np.ndarray
    aspect_ratio: np.ndarray
    skewness: np.ndarray

    @property
    def n_cells(self) -> int:
        return self.scaled_jacobian.size

    @property
    def worst_scaled_jacobian(self) -> float:
        return float(self.scaled_jacobian.min())

    @property
    def max_aspect_ratio(self) -> float:
        return float(self.aspect_ratio.max())

    @property
    def max_skewness(self) -> float:
        return float(self.skewness.max())

    def all_valid(self) -> bool:
        return bool(np.all(self.scaled_jacobian > 0))

    def summary(self) -> str:
        sj = self.scaled_jacobian
        return (
            f"{self.n_cells} cells | scaled Jacobian min {sj.min():.3f} "
            f"median {np.median(sj):.3f} | aspect ratio max "
            f"{self.aspect_ratio.max():.2f} | skewness max "
            f"{self.skewness.max():.3f}"
        )


def _cell_quality(corners: np.ndarray) -> tuple[float, float, float]:
    J = trilinear_jacobian(corners, _CORNERS_REF)  # (8, 3, 3)
    dets = np.linalg.det(J)
    # normalize each corner's det by the local edge-length product
    norms = np.linalg.norm(J, axis=1)  # column norms: (8, 3)
    scale = norms.prod(axis=1)
    scaled = float((dets / np.where(scale > 0, scale, 1.0)).min())
    # averaged edge length per reference direction
    mean_edges = np.abs(np.linalg.norm(J, axis=1)).mean(axis=0)
    aspect = float(mean_edges.max() / max(mean_edges.min(), 1e-300))
    # skewness: worst |cos| between distinct Jacobian columns at corners
    cols = J / np.maximum(norms[:, None, :], 1e-300)
    cosines = []
    for a in range(3):
        for b in range(a + 1, 3):
            cosines.append(np.abs(np.einsum("ki,ki->k", cols[:, :, a], cols[:, :, b])))
    skew = float(np.max(cosines))
    return scaled, aspect, skew


def mesh_quality(forest: Forest) -> MeshQualityReport:
    """Quality metrics of every leaf cell (trilinear corner geometry)."""
    n = forest.n_cells
    sj = np.empty(n)
    ar = np.empty(n)
    sk = np.empty(n)
    for c in range(n):
        sj[c], ar[c], sk[c] = _cell_quality(forest.cell_corner_points(c))
    return MeshQualityReport(scaled_jacobian=sj, aspect_ratio=ar, skewness=sk)
