"""Transfinite (Gordon–Hall) radial blending onto analytic surfaces.

Section 3.3: "an idealized cylindrical airway geometry is realized by a
transfinite mapping in radial direction."  Cells whose outer face lies on
an analytic surface are deformed so that face sits exactly on the
surface, blending the correction linearly towards the opposite face:

    X(ref) = X_tri(ref) + b(ref) * (S(X_outer(ref)) - X_outer(ref))

with ``X_tri`` the trilinear map, ``X_outer`` its restriction to the
outer face (evaluated at the same tangential coordinates), ``S`` the
surface projection, and ``b`` the blend coordinate (0 on the inner face,
1 on the surface face).  The correction vanishes on all faces shared
with non-surface cells, so the deformed mesh stays watertight.

The analytic geometry is later resampled onto the high-order polynomial
lattice of every leaf cell (Heltai et al. 2021) by
:mod:`repro.mesh.mapping`, exactly as the paper precomputes auxiliary
mapping points at startup.
"""

from __future__ import annotations

import numpy as np

from .hexmesh import HexMesh, trilinear


class SurfaceBlendGeometry:
    """Geometry callable deforming selected cells onto a projected surface.

    Parameters
    ----------
    mesh:
        The coarse mesh whose trilinear geometry is corrected.
    surface_faces:
        Maps tree (coarse cell) index to the local face ``2 d + s`` lying
        on the surface.  Trees not listed stay trilinear.
    """

    def __init__(self, mesh: HexMesh, surface_faces: dict[int, int]) -> None:
        self.mesh = mesh
        self.surface_faces = dict(surface_faces)

    def project(self, points: np.ndarray) -> np.ndarray:
        """Project physical points onto the analytic surface."""
        raise NotImplementedError

    def __call__(self, tree: int, ref: np.ndarray) -> np.ndarray:
        ref = np.atleast_2d(np.asarray(ref, dtype=float))
        corners = self.mesh.cell_corners(tree)
        base = trilinear(corners, ref)
        face = self.surface_faces.get(tree)
        if face is None:
            return base
        d, s = divmod(face, 2)
        blend = ref[:, d] if s == 1 else 1.0 - ref[:, d]
        outer_ref = ref.copy()
        outer_ref[:, d] = float(s)
        outer = trilinear(corners, outer_ref)
        correction = self.project(outer) - outer
        return base + blend[:, None] * correction


class CylinderGeometry(SurfaceBlendGeometry):
    """Projection onto a (linearly tapered) cylinder surface.

    The cylinder runs from ``axis_start`` along ``axis_direction`` for
    ``length``, with radius interpolating from ``radius_start`` to
    ``radius_end``.
    """

    def __init__(
        self,
        mesh: HexMesh,
        surface_faces: dict[int, int],
        axis_start,
        axis_direction,
        length: float,
        radius_start: float,
        radius_end: float | None = None,
    ) -> None:
        super().__init__(mesh, surface_faces)
        self.axis_start = np.asarray(axis_start, dtype=float)
        a = np.asarray(axis_direction, dtype=float)
        self.axis_direction = a / np.linalg.norm(a)
        self.length = float(length)
        self.radius_start = float(radius_start)
        self.radius_end = float(radius_end if radius_end is not None else radius_start)

    def project(self, points: np.ndarray) -> np.ndarray:
        rel = points - self.axis_start
        t = rel @ self.axis_direction
        tc = np.clip(t / self.length, 0.0, 1.0)
        radius = (1.0 - tc) * self.radius_start + tc * self.radius_end
        center = self.axis_start + t[:, None] * self.axis_direction
        v = points - center
        norm = np.linalg.norm(v, axis=1)
        norm = np.where(norm < 1e-300, 1.0, norm)
        return center + (radius / norm)[:, None] * v
