"""Hex-only square-duct tube-tree mesher.

Builds a watertight, conforming all-hex mesh for a tree of tube branches
— the substrate of the airway meshes of Section 3.3.  Every branch is a
swept square duct with a 2x2-cell cross-section; junctions connect
children to their parent either as

* a **continuation**: the child's first vertex slice *is* the parent's
  last slice (the major daughter continues the parent lumen, possibly
  tilted and tapered), or
* a **side branch**: the child's first slice is a 3x3 vertex patch on the
  parent's lateral surface spanning the last two axial segments (the
  minor daughter leaves sideways; its first cell layer morphs the patch
  into the child's own cross-section).

Both constructions share vertices exactly, so the geometric face matcher
in :mod:`repro.mesh.connectivity` produces a conforming mesh.  Higher
cross-section resolution is obtained through octree refinement
(:class:`repro.mesh.octree.Forest`), mirroring the paper's local
refinement of the upper airways.

Substitution note (documented in DESIGN.md): the paper uses 12-element
disc cross-sections circularized by a transfinite radial map; we use
square ducts whose side is chosen area-equivalent to the anatomical
airway diameter, and exercise the transfinite cylinder mapping through
the standalone :func:`repro.mesh.generators.cylinder` geometry instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .hexmesh import HexMesh


@dataclass
class BranchSpec:
    """One branch of a tube tree.

    Attributes
    ----------
    parent:
        Index of the parent branch in the spec list, or -1 for the root.
    direction:
        Axis direction of the branch (normalized internally).
    length:
        Branch length from its attachment point.
    radius:
        Equivalent circular radius; the square duct side is
        ``sqrt(pi) * radius`` so the cross-section area matches.
    outlet_id:
        Boundary indicator of the terminal face; use 0 for internal
        branches that have children (their end face is consumed by the
        continuation child, or capped as wall when only side children).
    side_branch:
        Attach to the parent's side instead of continuing its end.
    n_axial:
        Number of axial cells; default targets unit aspect ratio.
    """

    parent: int
    direction: tuple
    length: float
    radius: float
    outlet_id: int = 0
    side_branch: bool = False
    n_axial: int | None = None
    # filled by the mesher:
    start: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]

    @property
    def half_side(self) -> float:
        return 0.5 * np.sqrt(np.pi) * self.radius


def _frame(axis: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Right-handed orthonormal (e1, e2) with e1 x e2 = axis."""
    helper = np.array([1.0, 0.0, 0.0])
    if abs(np.dot(helper, axis)) > 0.9:
        helper = np.array([0.0, 1.0, 0.0])
    e2 = np.cross(axis, helper)
    e2 /= np.linalg.norm(e2)
    e1 = np.cross(e2, axis)
    return e1, e2


def _slice_lattice(center: np.ndarray, e1: np.ndarray, e2: np.ndarray, h: float) -> np.ndarray:
    """(9, 3) vertex lattice of one 3x3 slice, index v = i + 3 j."""
    out = np.empty((9, 3))
    for j in range(3):
        for i in range(3):
            out[i + 3 * j] = center + (i - 1) * h * e1 + (j - 1) * h * e2
    return out


class _TubeBuilder:
    """Accumulates vertices/cells; one instance builds the whole tree."""

    def __init__(self) -> None:
        self.vertices: list[np.ndarray] = []
        self.cells: list[list[int]] = []
        self.boundary_quads: dict[frozenset, int] = {}
        self.cell_branch: list[int] = []

    def add_vertices(self, pts: np.ndarray) -> np.ndarray:
        base = len(self.vertices)
        self.vertices.extend(pts)
        return np.arange(base, base + len(pts))

    def add_layer(self, ids0: np.ndarray, ids1: np.ndarray, branch: int) -> list[int]:
        """Create the 4 hex cells between two 3x3 slices (index i + 3 j);
        local z runs from slice 0 to slice 1."""
        created = []
        for cj in range(2):
            for ci in range(2):
                cell = []
                for vz in range(2):
                    ids = ids0 if vz == 0 else ids1
                    for vy in range(2):
                        for vx in range(2):
                            cell.append(int(ids[(ci + vx) + 3 * (cj + vy)]))
                self.cells.append(cell)
                self.cell_branch.append(branch)
                created.append(len(self.cells) - 1)
        return created

    def mark_boundary(self, cell: int, face: int, bid: int) -> None:
        from .hexmesh import face_corner_vertices

        quad = frozenset(self.cells[cell][v] for v in face_corner_vertices(face).ravel())
        self.boundary_quads[quad] = bid


def tube_tree_mesh(branches: list[BranchSpec], inlet_id: int = 1) -> HexMesh:
    """Mesh a tree of :class:`BranchSpec` into a conforming hex mesh.

    The first branch must be the root (``parent = -1``); parents must
    precede children; at most one continuation child and at most four
    side children per parent.
    """
    if not branches or branches[0].parent != -1:
        raise ValueError("first branch must be the root with parent = -1")
    # branches that receive a side child need straight (un-blended)
    # trailing segments for the attachment patch
    receives_side = [False] * len(branches)
    for spec in branches:
        if spec.parent >= 0 and spec.side_branch:
            receives_side[spec.parent] = True
    _N_BLEND = 2  # rotation layers of a side branch
    _STRAIGHT_TAIL = 2  # straight end segments under an attachment patch
    builder = _TubeBuilder()
    # per-branch bookkeeping for junction construction
    slices: list[list[np.ndarray]] = [None] * len(branches)  # type: ignore[list-item]
    frames: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = [None] * len(branches)  # type: ignore[list-item]
    end_frames: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = [None] * len(branches)  # type: ignore[list-item]
    has_continuation = [False] * len(branches)
    used_sides: list[set] = [set() for _ in branches]
    end_cells: list[list[int]] = [None] * len(branches)  # type: ignore[list-item]
    all_cells_of: list[list[int]] = [[] for _ in branches]

    for b, spec in enumerate(branches):
        axis = np.asarray(spec.direction, dtype=float)
        axis = axis / np.linalg.norm(axis)
        e1, e2 = _frame(axis)
        h = spec.half_side
        n_ax = spec.n_axial or max(1, int(round(spec.length / (2 * h))))
        n_min = 1
        if receives_side[b]:
            n_min = _STRAIGHT_TAIL
        if spec.side_branch:
            n_min = 1 + _N_BLEND + (_STRAIGHT_TAIL if receives_side[b] else 0)
        n_ax = max(n_ax, n_min)
        if spec.parent >= 0 and spec.parent >= b:
            raise ValueError("parents must precede children")

        if spec.parent == -1:
            start = np.zeros(3) if spec.start is None else np.asarray(spec.start, float)
            first_ids = builder.add_vertices(_slice_lattice(start, e1, e2, h))
            t0 = 0.0
        elif not spec.side_branch:
            parent = branches[spec.parent]
            if has_continuation[spec.parent]:
                raise ValueError(f"branch {spec.parent} already has a continuation child")
            has_continuation[spec.parent] = True
            first_ids = slices[spec.parent][-1]
            # parallel-transport the parent's end frame onto the child axis
            # (an arbitrary frame would twist the first cell layer)
            pe1, pe2, parent_axis = end_frames[spec.parent]
            e1 = pe1 - np.dot(pe1, axis) * axis
            e1 /= np.linalg.norm(e1)
            e2 = np.cross(axis, e1)
            start = builder.vertices[int(first_ids[4])].copy()
            t0 = 0.0
        else:
            parent = branches[spec.parent]
            pslices = slices[spec.parent]
            if len(pslices) < 3:
                raise ValueError("side branch needs a parent with >= 2 axial cells")
            pe1, pe2, paxis = end_frames[spec.parent]
            # choose the lateral side (+-e1, +-e2) most aligned with the child
            sides = [(pe1, "i", 2), (-pe1, "i", 0), (pe2, "j", 2), (-pe2, "j", 0)]
            scores = [np.dot(axis, s[0]) for s in sides]
            order = np.argsort(scores)[::-1]
            chosen = None
            for oi in order:
                tag = (sides[oi][1], sides[oi][2])
                if tag not in used_sides[spec.parent]:
                    chosen = sides[oi]
                    used_sides[spec.parent].add(tag)
                    break
            if chosen is None:
                raise ValueError("no free lateral side on parent for side branch")
            normal, ax_name, idx_fixed = chosen
            # 3x3 patch over the last two axial segments of the parent
            patch = np.empty(9, dtype=np.int64)
            for srow in range(3):  # along parent axis -> child lattice j
                pslice = pslices[-3 + srow]
                for t in range(3):  # transverse -> child lattice i
                    if ax_name == "i":
                        vid = pslice[idx_fixed + 3 * t]
                    else:
                        vid = pslice[t + 3 * idx_fixed]
                    patch[t + 3 * srow] = vid
            # Align the child's (e1, e2) frame with the patch axes; if the
            # patch frame is left-handed w.r.t. the outward axis (depends
            # on which side was chosen), transpose the patch lattice.
            v_i = builder.vertices[int(patch[5])] - builder.vertices[int(patch[3])]
            v_j = builder.vertices[int(patch[7])] - builder.vertices[int(patch[1])]
            if np.linalg.det(np.stack([v_i, v_j, axis])) < 0:
                patch = patch.reshape(3, 3).T.ravel()
                v_i, v_j = v_j, v_i
            first_ids = patch
            # attachment center = patch middle vertex
            start = builder.vertices[int(patch[4])].copy()
            t0 = 0.0
            e1 = v_i - np.dot(v_i, axis) * axis
            e1 /= np.linalg.norm(e1)
            e2 = np.cross(axis, e1)
            # geometric outward normal of the (possibly sheared) patch
            normal = np.cross(v_i, v_j)
            normal /= np.linalg.norm(normal)
        spec.start = np.asarray(start, dtype=float)
        frames[b] = (e1, e2, axis)

        # Slice construction.  Side branches leave the parent surface in
        # two stages: the first slice is an anisotropically *shrunken
        # copy of the actual attachment patch* (which may be sheared or
        # twisted where it overlaps the parent's own transition layers)
        # displaced along the outward normal, so the strong contraction
        # cannot fold the first layer; subsequent slices rotate gradually
        # into the branch axis with a parallel-transported cross-section
        # frame (a single-layer rotation at ~50-degree minor-daughter
        # angles folds cells).
        dz = spec.length / n_ax
        branch_slices = [first_ids]
        prev_ids = first_ids

        def emit_slice(pts: np.ndarray) -> None:
            nonlocal prev_ids
            ids = builder.add_vertices(pts)
            cells = builder.add_layer(prev_ids, ids, b)
            all_cells_of[b].extend(cells)
            branch_slices.append(ids)
            prev_ids = ids

        if spec.side_branch:
            u_i = v_i / np.linalg.norm(v_i)
            u_j = v_j / np.linalg.norm(v_j)
            patch_pts = np.array([builder.vertices[int(v)] for v in first_ids])
            dev = patch_pts - patch_pts[4]
            alpha_i = 2.0 * h / np.linalg.norm(v_i)
            alpha_j = 2.0 * h / np.linalg.norm(v_j)
            patch_span = 0.5 * max(np.linalg.norm(v_i), np.linalg.norm(v_j))
            dz1 = max(dz, 0.7 * patch_span)
            c1 = patch_pts[4] + dz1 * normal
            ci = dev @ u_i
            cj = dev @ u_j
            cn = dev @ normal
            slice1_pts = (
                c1[None, :]
                + alpha_i * ci[:, None] * u_i[None, :]
                + alpha_j * cj[:, None] * u_j[None, :]
                + min(alpha_i, alpha_j) * cn[:, None] * normal[None, :]
            )
            emit_slice(slice1_pts)
            f1 = u_i.copy()
            f2 = u_j.copy()
            center = c1.copy()
            n_blend = _N_BLEND
            # rotation layers need a thickness proportional to the tube
            # half-width: short anatomical branches (L/d ~ 1.3 at low
            # generations) would otherwise fold while turning
            dz_rot = max(dz, 0.8 * h)
            for s in range(2, n_ax + 1):
                frac = min((s - 1) / n_blend, 1.0)
                d = (1.0 - frac) * normal + frac * axis
                d = d / np.linalg.norm(d)
                center = center + (dz_rot if s - 1 <= n_blend else dz) * d
                f1 = f1 - np.dot(f1, d) * d
                f1 = f1 / np.linalg.norm(f1)
                f2 = np.cross(d, f1)
                emit_slice(_slice_lattice(center, f1, f2, h))
            d1_end, d2_end = f1, f2
        else:
            for s in range(1, n_ax + 1):
                emit_slice(
                    _slice_lattice(spec.start + (t0 + s * dz) * axis, e1, e2, h)
                )
            d1_end, d2_end = e1, e2
        slices[b] = branch_slices
        end_cells[b] = all_cells_of[b][-4:]
        axis_end = np.cross(d1_end, d2_end)
        end_frames[b] = (d1_end, d2_end, axis_end / np.linalg.norm(axis_end))

    # boundary indicators -------------------------------------------------
    # inlet: the root's first layer's z-low faces
    for cell in all_cells_of[0][:4]:
        builder.mark_boundary(cell, 4, inlet_id)
    # outlets: terminal branches' last layer z-high faces
    children_of: dict[int, list[int]] = {}
    for b, spec in enumerate(branches):
        if spec.parent >= 0:
            children_of.setdefault(spec.parent, []).append(b)
    for b, spec in enumerate(branches):
        if spec.outlet_id > 0:
            if has_continuation[b]:
                raise ValueError(f"branch {b} has outlet_id but also a continuation child")
            for cell in end_cells[b]:
                builder.mark_boundary(cell, 5, spec.outlet_id)

    mesh = HexMesh(
        np.asarray(builder.vertices),
        np.asarray(builder.cells),
        builder.boundary_quads,
    )
    mesh.cell_branch = np.asarray(builder.cell_branch)  # type: ignore[attr-defined]
    return mesh
