"""Minimal legacy-VTK writer for hex meshes and cell data — lets the
lung meshes and flow fields be inspected in ParaView (the kind of
visualization behind Figures 1, 3, 4)."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .octree import Forest

#: lexicographic (deal.II) local vertex order -> VTK_HEXAHEDRON order
_VTK_ORDER = [0, 1, 3, 2, 4, 5, 7, 6]


def write_vtk(path, forest: Forest, cell_data: dict | None = None) -> Path:
    """Write the leaf cells of a forest as a legacy VTK unstructured grid.

    ``cell_data`` maps field names to per-leaf-cell scalar arrays.
    """
    path = Path(path)
    n_cells = forest.n_cells
    points = np.concatenate(
        [forest.cell_corner_points(c) for c in range(n_cells)], axis=0
    )
    lines = [
        "# vtk DataFile Version 3.0",
        "repro hex mesh",
        "ASCII",
        "DATASET UNSTRUCTURED_GRID",
        f"POINTS {len(points)} double",
    ]
    lines += [" ".join(f"{x:.10g}" for x in p) for p in points]
    lines.append(f"CELLS {n_cells} {n_cells * 9}")
    for c in range(n_cells):
        base = 8 * c
        ids = " ".join(str(base + v) for v in _VTK_ORDER)
        lines.append(f"8 {ids}")
    lines.append(f"CELL_TYPES {n_cells}")
    lines += ["12"] * n_cells  # VTK_HEXAHEDRON
    if cell_data:
        lines.append(f"CELL_DATA {n_cells}")
        for name, values in cell_data.items():
            values = np.asarray(values, dtype=float)
            if values.shape != (n_cells,):
                raise ValueError(f"cell data {name!r} must have one value per cell")
            lines.append(f"SCALARS {name} double 1")
            lines.append("LOOKUP_TABLE default")
            lines += [f"{v:.10g}" for v in values]
    path.write_text("\n".join(lines) + "\n")
    return path
