"""Incompressible Navier-Stokes solver: boundary conditions, the
operator-assembling solver facade, and analytic validation solutions."""

from .bc import BoundaryConditions, PressureDirichlet, VelocityDirichlet
from .solver import IncompressibleNavierStokesSolver, SolverSettings
from .analytic import (
    BeltramiFlow,
    StokesDecayFlow,
    TaylorGreenVortex3D,
    WomersleyPipeFlow,
    poiseuille_square_duct_flow_rate,
)
from .postprocess import FlowDiagnostics, sample_centerline
from .scalar_transport import ScalarAdvectionOperator, ScalarTransportSolver

__all__ = [
    "BoundaryConditions",
    "PressureDirichlet",
    "VelocityDirichlet",
    "IncompressibleNavierStokesSolver",
    "SolverSettings",
    "BeltramiFlow",
    "StokesDecayFlow",
    "TaylorGreenVortex3D",
    "WomersleyPipeFlow",
    "poiseuille_square_duct_flow_rate",
    "FlowDiagnostics",
    "sample_centerline",
    "ScalarAdvectionOperator",
    "ScalarTransportSolver",
]
