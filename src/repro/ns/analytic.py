"""Analytic solutions of the incompressible Navier–Stokes equations used
to validate the solver (convergence orders of the splitting scheme and
the DG discretization)."""

from __future__ import annotations

import numpy as np


class BeltramiFlow:
    """Ethier–Steinman (1994) exact unsteady 3D solution.

    u decays as exp(-nu d^2 t); the nonlinear convective term is exactly
    balanced by the pressure gradient, making it a complete test of all
    five sub-steps.
    """

    def __init__(self, nu: float, a: float = np.pi / 4, d: float = np.pi / 2) -> None:
        self.nu = nu
        self.a = a
        self.d = d

    def velocity(self, x, y, z, t):
        a, d = self.a, self.d
        f = np.exp(-self.nu * d * d * t)
        u = -a * (np.exp(a * x) * np.sin(a * y + d * z) + np.exp(a * z) * np.cos(a * x + d * y)) * f
        v = -a * (np.exp(a * y) * np.sin(a * z + d * x) + np.exp(a * x) * np.cos(a * y + d * z)) * f
        w = -a * (np.exp(a * z) * np.sin(a * x + d * y) + np.exp(a * y) * np.cos(a * z + d * x)) * f
        return np.stack([u, v, w])

    def pressure(self, x, y, z, t):
        a, d = self.a, self.d
        f2 = np.exp(-2 * self.nu * d * d * t)
        return (
            -(a**2)
            / 2.0
            * (
                np.exp(2 * a * x)
                + np.exp(2 * a * y)
                + np.exp(2 * a * z)
                + 2 * np.sin(a * x + d * y) * np.cos(a * z + d * x) * np.exp(a * (y + z))
                + 2 * np.sin(a * y + d * z) * np.cos(a * x + d * y) * np.exp(a * (z + x))
                + 2 * np.sin(a * z + d * x) * np.cos(a * y + d * z) * np.exp(a * (x + y))
            )
            * f2
        )


class TaylorGreenVortex3D:
    """The classical Taylor–Green vortex initial condition (the standard
    LES benchmark; no closed-form solution for t > 0 at finite Re, so it
    is used as an initial condition and for energy-decay sanity checks)."""

    def __init__(self, V0: float = 1.0, L: float = 1.0) -> None:
        self.V0 = V0
        self.L = L

    def velocity(self, x, y, z, t=0.0):
        V0, L = self.V0, self.L
        u = V0 * np.sin(x / L) * np.cos(y / L) * np.cos(z / L)
        v = -V0 * np.cos(x / L) * np.sin(y / L) * np.cos(z / L)
        w = np.zeros_like(z)
        return np.stack([u, v, w])


class StokesDecayFlow:
    """Rigorous unsteady Stokes-limit solution on the unit cube:
    ``u = (sin(pi y), 0, 0) exp(-nu pi^2 t)`` with the matching body
    force making it an exact Navier–Stokes solution (convection vanishes
    because u is a shear flow: (u . grad) u = 0), p = 0."""

    def __init__(self, nu: float) -> None:
        self.nu = nu

    def velocity(self, x, y, z, t):
        f = np.exp(-self.nu * np.pi**2 * t)
        return np.stack([np.sin(np.pi * y) * f, 0 * y, 0 * z])

    def body_force(self, x, y, z, t):
        # du/dt - nu lap u = (-nu pi^2 + nu pi^2) u = 0: no force needed
        return np.stack([0 * x, 0 * y, 0 * z])


class WomersleyPipeFlow:
    """Womersley (1955) pulsatile laminar flow in a rigid circular pipe —
    the canonical oscillatory-flow profile of airway and vascular fluid
    mechanics, parameterized by the Womersley number
    ``alpha = R sqrt(omega / nu)``.

    The flow is driven by the oscillating axial pressure gradient
    ``-dp/dz = A cos(omega t)``, presented here as the body force
    ``f = (0, 0, A cos(omega t))`` with ``p = 0`` so that the axial
    velocity

    ``u_z(r, t) = Re{ (A / (i omega)) [1 - J0(beta r)/J0(beta R)]
    e^{i omega t} }``,  ``beta = sqrt(-i omega / nu)``,

    is an *exact* solution of the incompressible Navier-Stokes equations
    (the convective term vanishes identically for a unidirectional,
    axially uniform field).  The pipe axis is the z-axis through
    ``center``; no-slip holds at ``r = R``.
    """

    def __init__(
        self,
        radius: float,
        nu: float,
        omega: float,
        amplitude: float = 1.0,
        center: tuple[float, float] = (0.0, 0.0),
    ) -> None:
        if radius <= 0 or nu <= 0 or omega <= 0:
            raise ValueError("radius, nu, and omega must all be positive")
        self.radius = float(radius)
        self.nu = float(nu)
        self.omega = float(omega)
        self.amplitude = float(amplitude)
        self.center = (float(center[0]), float(center[1]))
        # beta^2 = -i omega / nu; the principal root has arg(-i) = -pi/2
        self.beta = np.sqrt(self.omega / self.nu) * np.exp(-1j * np.pi / 4)

    @property
    def alpha(self) -> float:
        """Womersley number R sqrt(omega / nu)."""
        return self.radius * np.sqrt(self.omega / self.nu)

    def _profile(self, r: np.ndarray) -> np.ndarray:
        """Complex amplitude u_hat(r) of the axial velocity."""
        from scipy.special import jv

        q = jv(0, self.beta * r) / jv(0, self.beta * self.radius)
        return (self.amplitude / (1j * self.omega)) * (1.0 - q)

    def axial_velocity(self, r, t):
        """u_z at radius ``r`` and time ``t`` (real field)."""
        r = np.asarray(r, dtype=float)
        return np.real(self._profile(r) * np.exp(1j * self.omega * t))

    def velocity(self, x, y, z, t):
        r = np.hypot(
            np.asarray(x, float) - self.center[0],
            np.asarray(y, float) - self.center[1],
        )
        uz = self.axial_velocity(r, t)
        return np.stack([np.zeros_like(uz), np.zeros_like(uz), uz])

    def pressure(self, x, y, z, t):
        # the driving gradient is modeled as a body force; p = 0
        return np.zeros_like(np.asarray(x, dtype=float))

    def body_force(self, x, y, z, t):
        f = np.full_like(
            np.asarray(x, dtype=float),
            self.amplitude * np.cos(self.omega * t),
        )
        return np.stack([np.zeros_like(f), np.zeros_like(f), f])

    def flow_rate(self, t) -> float:
        """Exact volumetric flow rate ``int u_z dA`` at time ``t``
        (uses ``int_0^R J0(beta r) r dr = (R / beta) J1(beta R)``)."""
        from scipy.special import jv

        bR = self.beta * self.radius
        area = np.pi * self.radius**2
        hat = (self.amplitude / (1j * self.omega)) * (
            area - 2.0 * np.pi * self.radius / self.beta * jv(1, bR) / jv(0, bR)
        )
        return float(np.real(hat * np.exp(1j * self.omega * t)))


def poiseuille_square_duct_flow_rate(
    dpdx: float, half_width: float, viscosity: float, n_terms: int = 25
) -> float:
    """Exact flow rate of laminar flow through a square duct of side
    ``2 * half_width`` under pressure gradient ``dpdx`` (series solution,
    e.g. White, Viscous Fluid Flows) — validates pressure-driven duct
    flow and calibrates the windkessel resistances of the lung model."""
    a = half_width
    mu = viscosity
    s = 0.0
    for i in range(n_terms):
        n = 2 * i + 1
        s += np.tanh(n * np.pi / 2.0) / n**5
    Q = (4.0 * a**4 * abs(dpdx) / (3.0 * mu)) * (1.0 - (192.0 / np.pi**5) * s)
    return float(Q)
