"""Analytic solutions of the incompressible Navier–Stokes equations used
to validate the solver (convergence orders of the splitting scheme and
the DG discretization)."""

from __future__ import annotations

import numpy as np


class BeltramiFlow:
    """Ethier–Steinman (1994) exact unsteady 3D solution.

    u decays as exp(-nu d^2 t); the nonlinear convective term is exactly
    balanced by the pressure gradient, making it a complete test of all
    five sub-steps.
    """

    def __init__(self, nu: float, a: float = np.pi / 4, d: float = np.pi / 2) -> None:
        self.nu = nu
        self.a = a
        self.d = d

    def velocity(self, x, y, z, t):
        a, d = self.a, self.d
        f = np.exp(-self.nu * d * d * t)
        u = -a * (np.exp(a * x) * np.sin(a * y + d * z) + np.exp(a * z) * np.cos(a * x + d * y)) * f
        v = -a * (np.exp(a * y) * np.sin(a * z + d * x) + np.exp(a * x) * np.cos(a * y + d * z)) * f
        w = -a * (np.exp(a * z) * np.sin(a * x + d * y) + np.exp(a * y) * np.cos(a * z + d * x)) * f
        return np.stack([u, v, w])

    def pressure(self, x, y, z, t):
        a, d = self.a, self.d
        f2 = np.exp(-2 * self.nu * d * d * t)
        return (
            -(a**2)
            / 2.0
            * (
                np.exp(2 * a * x)
                + np.exp(2 * a * y)
                + np.exp(2 * a * z)
                + 2 * np.sin(a * x + d * y) * np.cos(a * z + d * x) * np.exp(a * (y + z))
                + 2 * np.sin(a * y + d * z) * np.cos(a * x + d * y) * np.exp(a * (z + x))
                + 2 * np.sin(a * z + d * x) * np.cos(a * y + d * z) * np.exp(a * (x + y))
            )
            * f2
        )


class TaylorGreenVortex3D:
    """The classical Taylor–Green vortex initial condition (the standard
    LES benchmark; no closed-form solution for t > 0 at finite Re, so it
    is used as an initial condition and for energy-decay sanity checks)."""

    def __init__(self, V0: float = 1.0, L: float = 1.0) -> None:
        self.V0 = V0
        self.L = L

    def velocity(self, x, y, z, t=0.0):
        V0, L = self.V0, self.L
        u = V0 * np.sin(x / L) * np.cos(y / L) * np.cos(z / L)
        v = -V0 * np.cos(x / L) * np.sin(y / L) * np.cos(z / L)
        w = np.zeros_like(z)
        return np.stack([u, v, w])


class StokesDecayFlow:
    """Rigorous unsteady Stokes-limit solution on the unit cube:
    ``u = (sin(pi y), 0, 0) exp(-nu pi^2 t)`` with the matching body
    force making it an exact Navier–Stokes solution (convection vanishes
    because u is a shear flow: (u . grad) u = 0), p = 0."""

    def __init__(self, nu: float) -> None:
        self.nu = nu

    def velocity(self, x, y, z, t):
        f = np.exp(-self.nu * np.pi**2 * t)
        return np.stack([np.sin(np.pi * y) * f, 0 * y, 0 * z])

    def body_force(self, x, y, z, t):
        # du/dt - nu lap u = (-nu pi^2 + nu pi^2) u = 0: no force needed
        return np.stack([0 * x, 0 * y, 0 * z])


def poiseuille_square_duct_flow_rate(
    dpdx: float, half_width: float, viscosity: float, n_terms: int = 25
) -> float:
    """Exact flow rate of laminar flow through a square duct of side
    ``2 * half_width`` under pressure gradient ``dpdx`` (series solution,
    e.g. White, Viscous Fluid Flows) — validates pressure-driven duct
    flow and calibrates the windkessel resistances of the lung model."""
    a = half_width
    mu = viscosity
    s = 0.0
    for i in range(n_terms):
        n = 2 * i + 1
        s += np.tanh(n * np.pi / 2.0) / n**5
    Q = (4.0 * a**4 * abs(dpdx) / (3.0 * mu)) * (1.0 - (192.0 / np.pi**5) * s)
    return float(Q)
