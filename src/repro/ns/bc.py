"""Boundary-condition containers for the incompressible flow solver.

Two physical kinds appear in the lung application (Section 5.3):

* **Velocity Dirichlet** (no-slip walls, prescribed inflow): ``g(x, t)``;
  the pressure sees these boundaries as Neumann.
* **Pressure Dirichlet** (ventilator inlet PEEP + dp, windkessel
  outlets): ``g_p(x, t)``; the velocity sees them as natural
  (do-nothing) boundaries.

Callables receive coordinate arrays ``x, y, z`` (any broadcastable
shape) and the time ``t``; velocity data returns a tuple/stack of three
component arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass
class VelocityDirichlet:
    """u = g on this boundary; g(x, y, z, t) -> (3, ...) array."""

    g: Callable

    @staticmethod
    def no_slip() -> "VelocityDirichlet":
        return VelocityDirichlet(lambda x, y, z, t: np.stack([0 * x, 0 * y, 0 * z]))


@dataclass
class PressureDirichlet:
    """p = g_p on this boundary (velocity: do-nothing);
    g_p(x, y, z, t) -> scalar array.  ``g_p`` may be a plain float."""

    g: Callable | float

    def value(self, x, y, z, t):
        if callable(self.g):
            return self.g(x, y, z, t)
        return np.full_like(np.asarray(x, dtype=float), float(self.g))


class BoundaryConditions:
    """Maps boundary indicators to conditions; unlisted ids default to
    no-slip walls."""

    def __init__(self, conditions: dict[int, object] | None = None) -> None:
        self.conditions: dict[int, object] = dict(conditions or {})

    def set(self, boundary_id: int, condition) -> None:
        self.conditions[boundary_id] = condition

    def get(self, boundary_id: int):
        return self.conditions.get(boundary_id, VelocityDirichlet.no_slip())

    def velocity_dirichlet_ids(self, present_ids) -> tuple[int, ...]:
        return tuple(
            bid for bid in present_ids if isinstance(self.get(bid), VelocityDirichlet)
        )

    def pressure_dirichlet_ids(self, present_ids) -> tuple[int, ...]:
        return tuple(
            bid for bid in present_ids if isinstance(self.get(bid), PressureDirichlet)
        )

    def velocity_value(self, boundary_id: int, x, y, z, t) -> np.ndarray:
        bc = self.get(boundary_id)
        if not isinstance(bc, VelocityDirichlet):
            raise KeyError(f"boundary {boundary_id} has no velocity Dirichlet data")
        return np.asarray(bc.g(x, y, z, t))

    def pressure_value(self, boundary_id: int, x, y, z, t) -> np.ndarray:
        bc = self.get(boundary_id)
        if not isinstance(bc, PressureDirichlet):
            raise KeyError(f"boundary {boundary_id} has no pressure Dirichlet data")
        return np.asarray(bc.value(x, y, z, t))
