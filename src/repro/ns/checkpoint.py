"""Checkpoint / restart of flow and ventilation simulations.

The Table-2 runs take millions of time steps over wall-hours; any
production deployment restarts from checkpoints.  The state needed for a
*bit-identical* continuation of the dual splitting scheme is the BDF
history (velocities, their convective evaluations, pressures, step
sizes) plus the coupled 0D models (windkessel volumes/flows, ventilator
controller state); everything else is rebuilt from the mesh definition.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

FORMAT_VERSION = 1


def save_scheme_state(path, scheme) -> Path:
    """Serialize a :class:`~repro.timeint.dual_splitting.DualSplittingScheme`."""
    path = Path(path)
    payload = {
        "version": np.array(FORMAT_VERSION),
        "t": np.array(scheme.t),
        "order": np.array(scheme.order),
        "dt_history": np.asarray(scheme.dt_history, dtype=float),
        "n_u": np.array(len(scheme.u_history)),
        "n_p": np.array(len(scheme.p_history)),
    }
    for i, u in enumerate(scheme.u_history):
        payload[f"u_{i}"] = u
    for i, c in enumerate(scheme.conv_history):
        payload[f"conv_{i}"] = c
    for i, p in enumerate(scheme.p_history):
        payload[f"p_{i}"] = p
    np.savez_compressed(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_scheme_state(path, scheme) -> None:
    """Restore a scheme in place; the scheme must be built over the same
    discretization (sizes are validated)."""
    with np.load(Path(path)) as data:
        version = int(data["version"])
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        n_u = int(data["n_u"])
        n_p = int(data["n_p"])
        u_hist = [data[f"u_{i}"] for i in range(n_u)]
        conv_hist = [data[f"conv_{i}"] for i in range(n_u)]
        p_hist = [data[f"p_{i}"] for i in range(n_p)]
        t = float(data["t"])
        dt_hist = [float(v) for v in data["dt_history"]]
    expected = scheme.ops.mass.n_dofs
    for u in u_hist:
        if u.shape != (expected,):
            raise ValueError(
                f"checkpoint velocity size {u.shape} does not match the "
                f"discretization ({expected} DoF)"
            )
    scheme.t = t
    scheme.u_history = u_hist
    scheme.conv_history = conv_hist
    scheme.p_history = p_hist
    scheme.dt_history = dt_hist


def save_lung_state(path, sim) -> Path:
    """Serialize a :class:`~repro.lung.simulation.LungVentilationSimulation`
    (flow state + windkessels + ventilator controller)."""
    path = Path(path)
    scheme = sim.solver.scheme
    payload = {
        "version": np.array(FORMAT_VERSION),
        "t": np.array(scheme.t),
        "dt_history": np.asarray(scheme.dt_history, dtype=float),
        "n_u": np.array(len(scheme.u_history)),
        "n_p": np.array(len(scheme.p_history)),
        "wk_volumes": np.array([c.volume for c in sim.windkessels.compartments]),
        "wk_flows": np.array([c.flow for c in sim.windkessels.compartments]),
        "vent_dp": np.array(sim.ventilator.dp),
        "vent_dp_history": np.asarray(sim.ventilator.dp_history, dtype=float),
        "vent_tidal_history": np.asarray(sim.ventilator.tidal_history, dtype=float),
        "inlet_flow": np.array(sim._inlet_flow),
        "cycle_inhaled": np.array(sim._cycle_inhaled),
        "steps_this_cycle": np.array(sim._steps_this_cycle),
        "current_cycle": np.array(sim._current_cycle),
    }
    for i, u in enumerate(scheme.u_history):
        payload[f"u_{i}"] = u
    for i, c in enumerate(scheme.conv_history):
        payload[f"conv_{i}"] = c
    for i, p in enumerate(scheme.p_history):
        payload[f"p_{i}"] = p
    np.savez_compressed(path, **payload)
    return path


def load_lung_state(path, sim) -> None:
    """Restore a lung simulation in place (same mesh/settings)."""
    scheme = sim.solver.scheme
    with np.load(Path(path)) as data:
        if int(data["version"]) != FORMAT_VERSION:
            raise ValueError("unsupported checkpoint version")
        n_u = int(data["n_u"])
        n_p = int(data["n_p"])
        if int(data["wk_volumes"].size) != sim.windkessels.n_outlets:
            raise ValueError("checkpoint outlet count does not match the model")
        scheme.t = float(data["t"])
        scheme.dt_history = [float(v) for v in data["dt_history"]]
        scheme.u_history = [data[f"u_{i}"] for i in range(n_u)]
        scheme.conv_history = [data[f"conv_{i}"] for i in range(n_u)]
        scheme.p_history = [data[f"p_{i}"] for i in range(n_p)]
        for c, v, q in zip(sim.windkessels.compartments,
                           data["wk_volumes"], data["wk_flows"]):
            c.volume = float(v)
            c.flow = float(q)
        sim.ventilator.dp = float(data["vent_dp"])
        sim.ventilator.dp_history = [float(v) for v in data["vent_dp_history"]]
        sim.ventilator.tidal_history = [float(v) for v in data["vent_tidal_history"]]
        sim._inlet_flow = float(data["inlet_flow"])
        sim._cycle_inhaled = float(data["cycle_inhaled"])
        sim._steps_this_cycle = int(data["steps_this_cycle"])
        sim._current_cycle = int(data["current_cycle"])
