"""Checkpoint / restart of flow and ventilation simulations.

The Table-2 runs take millions of time steps over wall-hours; any
production deployment restarts from checkpoints.  The state needed for a
*bit-identical* continuation of the dual splitting scheme is the BDF
history (velocities, their convective evaluations, pressures, step
sizes) plus the coupled 0D models (windkessel volumes/flows, ventilator
controller state); everything else is rebuilt from the mesh definition.

Format version 2 additionally embeds the run's configuration
(:class:`repro.robustness.RunConfig` as JSON) so a resume can detect
configuration drift — restoring a state into a simulation built with
different solver settings silently changes the trajectory, which is
exactly the class of bug a long checkpointed run cannot afford.
Version-1 files (no embedded config) still load.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import numpy as np

FORMAT_VERSION = 2

#: format versions this module can read
SUPPORTED_VERSIONS = (1, 2)


class CheckpointConfigDrift(UserWarning):
    """The configuration stored in a checkpoint differs from the
    simulation it is being restored into."""


def _written_path(path: Path) -> Path:
    """The file :func:`np.savez_compressed` actually wrote: numpy
    appends ``.npz`` unless the *name* already ends with it (a suffixed
    path like ``state.ckpt`` becomes ``state.ckpt.npz``)."""
    path = Path(path)
    return path if path.name.endswith(".npz") else path.with_name(path.name + ".npz")


def _config_dict(config) -> dict | None:
    if config is None:
        return None
    to_dict = getattr(config, "to_dict", None)
    return to_dict() if callable(to_dict) else dict(config)


def _config_payload(config) -> dict:
    d = _config_dict(config)
    return {} if d is None else {"config_json": np.array(json.dumps(d))}


def _stored_config(data) -> dict | None:
    if "config_json" in getattr(data, "files", ()):
        return json.loads(str(data["config_json"].item()))
    return None


def _check_version(data) -> int:
    version = int(data["version"])
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported checkpoint version {version} "
            f"(supported: {SUPPORTED_VERSIONS})"
        )
    return version


def _check_config_drift(stored: dict | None, current, mode: str) -> None:
    """Compare the checkpoint's embedded config against the target
    simulation's; ``mode`` is "ignore", "warn" (default), or "raise"."""
    if mode not in ("ignore", "warn", "raise"):
        raise ValueError(f"invalid config_drift mode {mode!r}")
    current = _config_dict(current)
    if mode == "ignore" or stored is None or current is None:
        return
    diffs = _dict_diff(stored, current)
    if not diffs:
        return
    message = (
        "checkpoint configuration differs from the running simulation: "
        + "; ".join(diffs)
    )
    if mode == "raise":
        raise ValueError(message)
    warnings.warn(message, CheckpointConfigDrift, stacklevel=3)


def _dict_diff(a: dict, b: dict, prefix: str = "") -> list[str]:
    out = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if isinstance(va, dict) and isinstance(vb, dict):
            out += _dict_diff(va, vb, f"{prefix}{key}.")
        elif va != vb:
            out.append(f"{prefix}{key}: checkpoint={va!r} current={vb!r}")
    return out


def _history_payload(scheme) -> dict:
    """BDF history arrays, always stored in double precision.

    A float32 state upcasts to float64 *exactly*, and the loader casts
    back to the scheme's ``state_dtype``, so a save/load round trip is
    bit-identical at either compute precision while the on-disk format
    stays precision-independent (a float32 run can resume a float64
    checkpoint and vice versa)."""
    payload: dict = {}
    for i, u in enumerate(scheme.u_history):
        payload[f"u_{i}"] = np.asarray(u, dtype=np.float64)
    for i, c in enumerate(scheme.conv_history):
        payload[f"conv_{i}"] = np.asarray(c, dtype=np.float64)
    for i, p in enumerate(scheme.p_history):
        payload[f"p_{i}"] = np.asarray(p, dtype=np.float64)
    return payload


def _load_history(data, scheme, n_u: int, n_p: int) -> tuple[list, list, list]:
    """History fields cast to the target scheme's state dtype (see
    :func:`_history_payload`; version-1/2 files are float64 already)."""
    dt = np.dtype(getattr(scheme, "state_dtype", np.float64))
    u_hist = [data[f"u_{i}"].astype(dt, copy=False) for i in range(n_u)]
    conv_hist = [data[f"conv_{i}"].astype(dt, copy=False) for i in range(n_u)]
    p_hist = [data[f"p_{i}"].astype(dt, copy=False) for i in range(n_p)]
    return u_hist, conv_hist, p_hist


def save_scheme_state(path, scheme, config=None) -> Path:
    """Serialize a :class:`~repro.timeint.dual_splitting.DualSplittingScheme`.

    ``config`` (anything with ``to_dict()``, normally a
    :class:`~repro.robustness.RunConfig`) is embedded for drift
    detection on resume.  Returns the path numpy actually wrote."""
    path = Path(path)
    payload = {
        "version": np.array(FORMAT_VERSION),
        "t": np.array(scheme.t),
        "order": np.array(scheme.order),
        "dt_history": np.asarray(scheme.dt_history, dtype=float),
        "n_u": np.array(len(scheme.u_history)),
        "n_p": np.array(len(scheme.p_history)),
        **_config_payload(config),
        **_history_payload(scheme),
    }
    np.savez_compressed(path, **payload)
    return _written_path(path)


def load_scheme_state(path, scheme, config_drift: str = "warn") -> dict | None:
    """Restore a scheme in place; the scheme must be built over the same
    discretization (sizes are validated).  Returns the checkpoint's
    embedded config dict (``None`` for version-1 files)."""
    with np.load(Path(path)) as data:
        _check_version(data)
        stored_config = _stored_config(data)
        n_u = int(data["n_u"])
        n_p = int(data["n_p"])
        u_hist, conv_hist, p_hist = _load_history(data, scheme, n_u, n_p)
        t = float(data["t"])
        dt_hist = [float(v) for v in data["dt_history"]]
    expected = scheme.ops.mass.n_dofs
    for u in u_hist:
        if u.shape != (expected,):
            raise ValueError(
                f"checkpoint velocity size {u.shape} does not match the "
                f"discretization ({expected} DoF)"
            )
    scheme.t = t
    scheme.u_history = u_hist
    scheme.conv_history = conv_hist
    scheme.p_history = p_hist
    scheme.dt_history = dt_hist
    return stored_config


def save_lung_state(path, sim, config=None) -> Path:
    """Serialize a :class:`~repro.lung.simulation.LungVentilationSimulation`
    (flow state + windkessels + ventilator controller).  The simulation's
    own :class:`~repro.robustness.RunConfig` is embedded unless an
    explicit ``config`` overrides it.  Returns the path numpy actually
    wrote (``.npz`` appended when missing)."""
    path = Path(path)
    if config is None:
        config = getattr(sim, "config", None)
    scheme = sim.solver.scheme
    payload = {
        "version": np.array(FORMAT_VERSION),
        "t": np.array(scheme.t),
        "dt_history": np.asarray(scheme.dt_history, dtype=float),
        "n_u": np.array(len(scheme.u_history)),
        "n_p": np.array(len(scheme.p_history)),
        "wk_volumes": np.array([c.volume for c in sim.windkessels.compartments]),
        "wk_flows": np.array([c.flow for c in sim.windkessels.compartments]),
        "vent_dp": np.array(sim.ventilator.dp),
        "vent_dp_history": np.asarray(sim.ventilator.dp_history, dtype=float),
        "vent_tidal_history": np.asarray(sim.ventilator.tidal_history, dtype=float),
        "inlet_flow": np.array(sim._inlet_flow),
        "cycle_inhaled": np.array(sim._cycle_inhaled),
        "steps_this_cycle": np.array(sim._steps_this_cycle),
        "current_cycle": np.array(sim._current_cycle),
        **_config_payload(config),
        **_history_payload(scheme),
    }
    np.savez_compressed(path, **payload)
    return _written_path(path)


def load_lung_state(path, sim, config_drift: str = "warn") -> dict | None:
    """Restore a lung simulation in place (same mesh/settings).

    ``config_drift`` controls the reaction when the checkpoint's
    embedded config differs from ``sim.config``: "warn" (default,
    emits :class:`CheckpointConfigDrift`), "raise", or "ignore".
    Returns the embedded config dict (``None`` for version-1 files)."""
    scheme = sim.solver.scheme
    with np.load(Path(path)) as data:
        _check_version(data)
        stored_config = _stored_config(data)
        n_u = int(data["n_u"])
        n_p = int(data["n_p"])
        if int(data["wk_volumes"].size) != sim.windkessels.n_outlets:
            raise ValueError("checkpoint outlet count does not match the model")
        _check_config_drift(stored_config, getattr(sim, "config", None), config_drift)
        scheme.t = float(data["t"])
        scheme.dt_history = [float(v) for v in data["dt_history"]]
        (scheme.u_history, scheme.conv_history,
         scheme.p_history) = _load_history(data, scheme, n_u, n_p)
        for c, v, q in zip(sim.windkessels.compartments,
                           data["wk_volumes"], data["wk_flows"]):
            c.volume = float(v)
            c.flow = float(q)
        sim.ventilator.dp = float(data["vent_dp"])
        sim.ventilator.dp_history = [float(v) for v in data["vent_dp_history"]]
        sim.ventilator.tidal_history = [float(v) for v in data["vent_tidal_history"]]
        sim._inlet_flow = float(data["inlet_flow"])
        sim._cycle_inhaled = float(data["cycle_inhaled"])
        sim._steps_this_cycle = int(data["steps_this_cycle"])
        sim._current_cycle = int(data["current_cycle"])
    return stored_config
