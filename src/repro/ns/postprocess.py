"""Flow post-processing: integral quantities and probes.

The turbulence context of the paper (under-resolved LES of transitional
airway flow) is monitored through integral quantities: kinetic energy,
enstrophy (dissipation proxy), divergence norms, and boundary fluxes.
"""

from __future__ import annotations

import numpy as np

from ..core.dof_handler import DGDofHandler
from ..mesh.mapping import GeometryField


class FlowDiagnostics:
    """Integral diagnostics of a DG velocity field."""

    def __init__(self, dof_u: DGDofHandler, geometry: GeometryField) -> None:
        if dof_u.n_components != 3:
            raise ValueError("velocity space must have 3 components")
        self.dof = dof_u
        self.geo = geometry
        self.kern = geometry.kernel
        self.cm = geometry.cell_metrics()

    # ------------------------------------------------------------------
    def _values(self, u_flat: np.ndarray) -> np.ndarray:
        u = self.dof.cell_view(u_flat)
        return self.kern.values(u)  # (N, 3, q, q, q)

    def _phys_gradients(self, u_flat: np.ndarray) -> np.ndarray:
        u = self.dof.cell_view(u_flat)
        g = np.stack([self.kern.gradients(u[:, i]) for i in range(3)], axis=1)
        return np.einsum("clmzyx,cimzyx->cilzyx", self.cm.jinv_t, g, optimize=True)

    # ------------------------------------------------------------------
    def volume(self) -> float:
        return float(self.cm.jxw.sum())

    def kinetic_energy(self, u_flat: np.ndarray) -> float:
        """E_k = 1/(2|Omega|) int |u|^2 (volume-specific, rho = 1)."""
        uq = self._values(u_flat)
        return float(0.5 * ((uq**2).sum(axis=1) * self.cm.jxw).sum() / self.volume())

    def enstrophy(self, u_flat: np.ndarray) -> float:
        """1/(2|Omega|) int |curl u|^2 — the viscous-dissipation proxy of
        Taylor-Green-type analyses (epsilon = 2 nu * enstrophy for
        divergence-free fields)."""
        G = self._phys_gradients(u_flat)
        curl = np.stack(
            [
                G[:, 2, 1] - G[:, 1, 2],
                G[:, 0, 2] - G[:, 2, 0],
                G[:, 1, 0] - G[:, 0, 1],
            ],
            axis=1,
        )
        return float(0.5 * ((curl**2).sum(axis=1) * self.cm.jxw).sum() / self.volume())

    def divergence_l2(self, u_flat: np.ndarray) -> float:
        G = self._phys_gradients(u_flat)
        div = np.einsum("ciizyx->czyx", G)
        return float(np.sqrt((div**2 * self.cm.jxw).sum()))

    def max_velocity(self, u_flat: np.ndarray) -> float:
        uq = self._values(u_flat)
        return float(np.sqrt((uq**2).sum(axis=1)).max())

    def momentum(self, u_flat: np.ndarray) -> np.ndarray:
        """int u dx, one value per component."""
        uq = self._values(u_flat)
        return np.einsum("cizyx,czyx->i", uq, self.cm.jxw, optimize=True)


def sample_centerline(dof_u: DGDofHandler, geometry: GeometryField,
                      u_flat: np.ndarray, points: np.ndarray,
                      tol_cells: float = 1e-9) -> np.ndarray:
    """Probe the velocity at arbitrary physical points (nearest owning
    cell found by reference-coordinate inversion via Newton on the
    trilinear map; points outside every cell get NaN)."""
    from ..core.basis import LagrangeBasis1D
    from ..mesh.hexmesh import trilinear, trilinear_jacobian

    forest = geometry.forest
    basis = LagrangeBasis1D(dof_u.degree)
    u = dof_u.cell_view(u_flat)
    out = np.full((len(points), 3), np.nan)
    for ip, p in enumerate(np.atleast_2d(points)):
        for c in range(forest.n_cells):
            corners = forest.cell_corner_points(c)
            lo, hi = corners.min(axis=0), corners.max(axis=0)
            pad = 0.25 * (hi - lo) + tol_cells
            if np.any(p < lo - pad) or np.any(p > hi + pad):
                continue
            # Newton for the reference coordinates
            ref = np.full(3, 0.5)
            ok = False
            for _ in range(30):
                r = trilinear(corners, ref[None])[0] - p
                if np.linalg.norm(r) < 1e-12 * (np.linalg.norm(hi - lo) + 1e-30):
                    ok = True
                    break
                J = trilinear_jacobian(corners, ref[None])[0]
                ref = ref - np.linalg.solve(J, r)
            if not ok or np.any(ref < -1e-9) or np.any(ref > 1 + 1e-9):
                continue
            lx = basis.values(np.clip(ref[0:1], 0, 1))[0]
            ly = basis.values(np.clip(ref[1:2], 0, 1))[0]
            lz = basis.values(np.clip(ref[2:3], 0, 1))[0]
            out[ip] = np.einsum("izyx,z,y,x->i", u[c], lz, ly, lx)
            break
    return out
