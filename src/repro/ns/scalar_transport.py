"""Passive-scalar (gas) transport on a frozen velocity field.

Section 2.2: "Of high relevance is also the transport of oxygen and
carbon dioxide ... developments and performance improvements enabling
scale-resolving flow simulations are also a prerequisite for accurately
predicting the transport of particles (air pollution, pharmaceuticals)
in the respiratory system."  This module implements that extension: a
DG advection-diffusion solver for a scalar concentration,

    dc/dt + div(u c) - D lap(c) = 0,

with upwind advective fluxes, SIP diffusion, weak Dirichlet inflow data
(e.g. the O2 fraction delivered by the ventilator), and explicit
strong-stability-preserving RK time stepping preconditioned by the fast
mass inverse — the same matrix-free machinery as the flow solver.
"""

from __future__ import annotations

import numpy as np

from ..core.dof_handler import DGDofHandler
from ..core.operators.base import FaceKernels
from ..core.plans import cached_scatter_plan, contract
from ..core.operators.laplace import DGLaplaceOperator
from ..core.operators.mass import InverseMassOperator
from ..mesh.connectivity import MeshConnectivity
from ..mesh.mapping import GeometryField


class ScalarAdvectionOperator:
    """Weak form of ``div(u c)`` with upwind numerical fluxes.

    The advecting velocity is a DG field frozen per transport step (the
    usual operator-splitting between flow and transport); its traces are
    evaluated with the same face kernels as the convective operator.
    """

    def __init__(
        self,
        dof_c: DGDofHandler,
        dof_u: DGDofHandler,
        geometry: GeometryField,
        connectivity: MeshConnectivity,
        inflow_values: dict[int, float] | None = None,
        outflow_ids: tuple[int, ...] = (),
    ) -> None:
        if dof_c.degree != geometry.degree:
            raise ValueError("geometry must match the scalar space degree")
        if dof_u.degree != dof_c.degree:
            raise ValueError(
                "the transport operator evaluates u and c at the same "
                "quadrature; use equal degrees (interpolate u if needed)"
            )
        self.dof_c = dof_c
        self.dof_u = dof_u
        self.kern = geometry.kernel
        self.fk = FaceKernels(self.kern)
        self.conn = connectivity
        self.cell_metrics = geometry.cell_metrics()
        self.face_metrics, self.bdry_metrics = geometry.all_face_metrics(connectivity)
        #: boundary id -> prescribed inflow concentration
        self.inflow_values = dict(inflow_values or {})
        self.outflow_ids = set(outflow_ids)
        self._plan_cache: dict = {}

    @property
    def n_dofs(self) -> int:
        return self.dof_c.n_dofs

    def _upwind(self, cm_, cp_, un):
        """Upwind flux value (u.n) c* in the minus frame."""
        return np.where(un >= 0, un * cm_, un * cp_)

    def apply(self, c_flat: np.ndarray, u_flat: np.ndarray) -> np.ndarray:
        c = self.dof_c.cell_view(c_flat)
        u = self.dof_u.cell_view(u_flat)
        kern = self.kern
        cmx = self.cell_metrics
        # cell term: -int c u . grad(v)
        cq = kern.values(c)
        uq = kern.values(u)
        coeff = -(cq * cmx.jxw)
        rg = contract("cilzyx,cizyx,czyx->clzyx", cmx.jinv_t, uq, coeff)
        out = kern.integrate_gradients(rg)
        # interior faces: upwind
        for ib, (batch, fm) in enumerate(zip(self.conn.interior, self.face_metrics)):
            tm = kern.face_nodal_trace(c[batch.cells_m], batch.face_m)
            tp = kern.face_nodal_trace(c[batch.cells_p], batch.face_p)
            cm_ = self.fk.to_quad(tm)
            cp_ = self.fk.to_quad(tp, batch.orientation, batch.subface)
            tum = kern.face_nodal_trace(u[batch.cells_m], batch.face_m)
            tup = kern.face_nodal_trace(u[batch.cells_p], batch.face_p)
            um = self.fk.to_quad(tum)
            up = self.fk.to_quad(tup, batch.orientation, batch.subface)
            un = contract("fiab,fiab->fab", fm.normal, 0.5 * (um + up))
            flux = self._upwind(cm_, cp_, un) * fm.jxw
            contrib_m = self.fk.integrate_side(batch.face_m, flux, None)
            contrib_p = self.fk.integrate_side(
                batch.face_p, -flux, None, batch.orientation, batch.subface
            )
            cached_scatter_plan(
                self._plan_cache, ("int", ib, "m"), batch.cells_m, out.shape[0]
            ).add(out, contrib_m)
            cached_scatter_plan(
                self._plan_cache, ("int", ib, "p"), batch.cells_p, out.shape[0]
            ).add(out, contrib_p)
        # boundary faces: inflow data where u.n < 0, free outflow otherwise
        for ib, (batch, fm) in enumerate(zip(self.conn.boundary, self.bdry_metrics)):
            tm = kern.face_nodal_trace(c[batch.cells], batch.face)
            cm_ = self.fk.to_quad(tm)
            tum = kern.face_nodal_trace(u[batch.cells], batch.face)
            um = self.fk.to_quad(tum)
            un = contract("fiab,fiab->fab", fm.normal, um)
            c_in = self.inflow_values.get(batch.boundary_id, None)
            if c_in is None:
                cp_ = cm_  # wall / free boundary: use interior value
            else:
                cp_ = np.full_like(cm_, float(c_in))
            flux = self._upwind(cm_, cp_, un) * fm.jxw
            contrib = self.fk.integrate_side(batch.face, flux, None)
            cached_scatter_plan(
                self._plan_cache, ("bdy", ib), batch.cells, out.shape[0]
            ).add(out, contrib)
        return self.dof_c.flat(out)


class ScalarTransportSolver:
    """Explicit SSP-RK2 advection-diffusion of a passive scalar."""

    def __init__(
        self,
        forest,
        degree: int,
        diffusivity: float,
        connectivity: MeshConnectivity,
        geometry: GeometryField,
        dof_u: DGDofHandler,
        inflow_values: dict[int, float] | None = None,
        dirichlet_ids: tuple[int, ...] = (),
    ) -> None:
        self.dof_c = DGDofHandler(forest, degree)
        self.diffusivity = float(diffusivity)
        self.advection = ScalarAdvectionOperator(
            self.dof_c, dof_u, geometry, connectivity, inflow_values
        )
        self.diffusion = DGLaplaceOperator(
            self.dof_c, geometry, connectivity, dirichlet_ids=dirichlet_ids
        )
        self.inv_mass = InverseMassOperator(self.dof_c, geometry)
        self._diffusion_rhs = None
        if dirichlet_ids and inflow_values:
            self._diffusion_rhs = self.diffusion.assemble_rhs(
                dirichlet={
                    bid: (lambda x, y, z, _v=v: np.full_like(np.asarray(x, float), _v))
                    for bid, v in inflow_values.items()
                    if bid in dirichlet_ids
                }
            )
        self.c = self.dof_c.zeros()

    def set_initial(self, value: float) -> None:
        self.c = np.full(self.dof_c.n_dofs, float(value))

    def _rhs(self, c: np.ndarray, u: np.ndarray) -> np.ndarray:
        r = -self.advection.apply(c, u) - self.diffusivity * self.diffusion.vmult(c)
        if self._diffusion_rhs is not None:
            r = r + self.diffusivity * self._diffusion_rhs
        return self.inv_mass.vmult(r)

    def step(self, dt: float, u_flat: np.ndarray) -> None:
        """One SSP-RK2 (Heun) step on the frozen velocity ``u_flat``."""
        c0 = self.c
        k1 = self._rhs(c0, u_flat)
        c1 = c0 + dt * k1
        k2 = self._rhs(c1, u_flat)
        self.c = c0 + 0.5 * dt * (k1 + k2)

    def mean_concentration(self, geometry: GeometryField) -> float:
        cm = geometry.cell_metrics()
        cq = geometry.kernel.values(self.dof_c.cell_view(self.c))
        return float((cq * cm.jxw).sum() / cm.jxw.sum())
