"""The incompressible Navier–Stokes solver: assembles all matrix-free
operators over one forest and drives the dual splitting scheme with
CFL-adaptive time steps — the solver whose wall-time per time step is
the headline metric of the paper (Tables 2-3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.backend import resolve_dtype
from ..core.dof_handler import DGDofHandler
from ..core.plans import cached_scatter_plan, contract
from ..core.operators import (
    ConvectiveOperator,
    DGLaplaceOperator,
    DivergenceContinuityPenalty,
    DivergenceOperator,
    GradientOperator,
    HelmholtzOperator,
    InverseMassOperator,
    MassOperator,
    PenaltyStepOperator,
    VectorDGLaplace,
)
from ..mesh.connectivity import build_connectivity
from ..mesh.mapping import GeometryField
from ..mesh.octree import Forest
from ..robustness.recovery import (
    FallbackTier,
    PressureFallbackChain,
    RecoveryEvent,
    recoverable_step,
)
from ..solvers.jacobi import JacobiPreconditioner
from ..solvers.multigrid import HybridMultigridPreconditioner, operator_to_dtype
from ..telemetry.metrics import METRICS
from ..timeint.cfl import CFLController
from ..timeint.dual_splitting import DualSplittingScheme, SplittingOperators
from .bc import BoundaryConditions

# physics health probes sampled once per time step while the metric
# registry is enabled (each probe is at most one reduction or one
# cell-local gradient evaluation — far below a single solve)
_STEPS = METRICS.counter("repro_steps_total", "completed time steps")
_SIM_TIME = METRICS.gauge("repro_sim_time_seconds", "simulated time")
_STEP_DT = METRICS.gauge("repro_step_dt_seconds", "current time-step size")
_STEP_WALL = METRICS.histogram(
    "repro_step_wall_seconds", "wall time per time step",
    buckets=(0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0),
)
_CFL_REALIZED = METRICS.histogram(
    "repro_cfl_realized", "realized CFL number per step (inverse Eq. (6))",
    buckets=(0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.7, 1.0, 2.0),
)
_DIVERGENCE_L2 = METRICS.gauge(
    "repro_divergence_l2",
    "L2 norm of div(u) over the domain — the quantity the penalty step "
    "controls",
)
_KINETIC_ENERGY = METRICS.gauge(
    "repro_kinetic_energy",
    "DoF-vector kinetic-energy proxy 0.5 u.u (the same scale the "
    "energy-blowup validation of repro.robustness monitors)",
)
_PRESSURE_RESIDUAL = METRICS.gauge(
    "repro_pressure_final_residual",
    "final relative residual of the latest pressure Poisson solve",
)


@dataclass
class SolverSettings:
    """Numerical parameters of the flow solver (paper's defaults)."""

    cfl: float = 0.4
    dt_max: float = float("inf")  # cap for the CFL-adaptive step; also the
    # startup step when the flow starts from rest (u = 0 has no CFL scale)
    time_order: int = 2
    solver_tolerance: float = 1e-3  # application-run tolerance (Section 5.3)
    zeta_div: float = 1.0
    zeta_cont: float = 1.0
    use_multigrid: bool = True
    smoother_degree: int = 3
    max_solver_iterations: int = 500


class IncompressibleNavierStokesSolver:
    """Velocity degree ``k`` (>= 2), pressure degree ``k - 1``."""

    def __init__(
        self,
        forest: Forest,
        degree: int,
        viscosity: float,
        bcs: BoundaryConditions,
        settings: SolverSettings | None = None,
        body_force=None,
        periodic=None,
        robustness=None,
        compute_dtype=None,
    ) -> None:
        """``periodic`` forwards translational periodicity declarations to
        :func:`repro.mesh.connectivity.build_connectivity`; periodic runs
        use the Jacobi-preconditioned pressure solve (the conforming
        auxiliary space of the hybrid multigrid is not periodic).

        ``robustness`` (a :class:`repro.robustness.RobustnessSettings`)
        enables the fault-tolerant stepping harness: per-step divergence
        validation with rollback/retry, and the deterministic pressure
        fallback chain mixed-precision MG -> double-precision MG ->
        Jacobi-CG with a raised iteration cap.

        ``compute_dtype`` (``float64``/``float32``; default the global
        compute dtype, see :func:`repro.core.backend.set_compute_dtype`)
        selects the precision of the forward solve.  Operators are
        always *assembled* in double; in single precision the scheme
        drives dtype-cast clones, while the pressure Poisson outer CG,
        the fallback chain's double tier, and checkpoints keep double
        precision (Section 3.4 mixed precision)."""
        if degree < 2:
            raise ValueError("mixed-order (k, k-1) spaces need k >= 2")
        self.forest = forest
        self.degree = degree
        self.nu = float(viscosity)
        self.bcs = bcs
        self.compute_dtype = resolve_dtype(compute_dtype)
        self.settings = settings or SolverSettings()
        if periodic and self.settings.use_multigrid:
            self.settings.use_multigrid = False

        self.conn = build_connectivity(forest, periodic=periodic)
        self._plan_cache: dict = {}
        self.geo_u = GeometryField(forest, degree)
        self.geo_over = GeometryField(forest, degree, n_q_points=degree + 2)
        self.geo_p = GeometryField(forest, degree - 1)
        self.dof_u = DGDofHandler(forest, degree, n_components=3)
        self.dof_u_scalar = DGDofHandler(forest, degree)
        self.dof_p = DGDofHandler(forest, degree - 1)

        present = {b.boundary_id for b in self.conn.boundary}
        self.velocity_dirichlet = bcs.velocity_dirichlet_ids(present)
        self.pressure_dirichlet = bcs.pressure_dirichlet_ids(present)

        # -- operators ------------------------------------------------------
        self.mass_u = MassOperator(self.dof_u, self.geo_u)
        self.inv_mass_u = InverseMassOperator(self.dof_u, self.geo_u)
        scalar_laplace = DGLaplaceOperator(
            self.dof_u_scalar, self.geo_u, self.conn,
            dirichlet_ids=self.velocity_dirichlet,
        )
        self.vector_laplace = VectorDGLaplace(scalar_laplace, self.dof_u)
        self.helmholtz = HelmholtzOperator(
            self.mass_u, self.vector_laplace, self.nu,
            boundary_rhs_fn=self._viscous_boundary_rhs,
        )
        self.convective = ConvectiveOperator(self.dof_u, self.geo_over, self.conn, bcs)
        self.divergence = DivergenceOperator(
            self.dof_u, self.dof_p, self.geo_u, self.conn, bcs
        )
        self.gradient = GradientOperator(
            self.dof_u, self.dof_p, self.geo_u, self.conn, bcs
        )
        self.penalty = DivergenceContinuityPenalty(
            self.dof_u, self.geo_u, self.conn,
            zeta_div=self.settings.zeta_div, zeta_cont=self.settings.zeta_cont,
        )
        self.penalty_step = PenaltyStepOperator(self.mass_u, self.penalty)
        self.pressure_poisson = DGLaplaceOperator(
            self.dof_p, self.geo_p, self.conn,
            dirichlet_ids=self.pressure_dirichlet,
        )
        if self.settings.use_multigrid and degree - 1 >= 1:
            self.pressure_pre = HybridMultigridPreconditioner(
                self.pressure_poisson, smoother_degree=self.settings.smoother_degree
            )
        else:
            self.pressure_pre = JacobiPreconditioner(self.pressure_poisson)

        self.robustness = robustness
        self.recovery_log: list[RecoveryEvent] = []
        self.pressure_fallback = None
        if robustness is not None and robustness.enable_fallback:
            self.pressure_fallback = self._build_pressure_fallback(robustness)

        self._body_force_fn = body_force
        tol = self.settings.solver_tolerance
        # forward-path operators at the configured compute dtype (a
        # float64 run gets the originals back unchanged); the double
        # masters stay on `self` for assembly, diagnostics, and the
        # fallback chain.  The pressure Poisson operator stays double:
        # its preconditioner handles the single-precision V-cycle while
        # the outer iteration accumulates in double (Section 3.4).
        cast = lambda op: operator_to_dtype(op, self.compute_dtype)  # noqa: E731
        self.scheme = DualSplittingScheme(
            SplittingOperators(
                mass=cast(self.mass_u),
                inverse_mass=cast(self.inv_mass_u),
                convective=cast(self.convective),
                divergence=cast(self.divergence),
                gradient=cast(self.gradient),
                helmholtz=cast(self.helmholtz),
                penalty_step=cast(self.penalty_step),
                pressure_poisson=self.pressure_poisson,
                pressure_preconditioner=self.pressure_pre,
                body_force=self._assembled_body_force if body_force else None,
                pressure_neumann_rhs=(
                    self._pressure_neumann_rhs if self.velocity_dirichlet else None
                ),
                pressure_dirichlet_rhs=(
                    self._pressure_dirichlet_rhs if self.pressure_dirichlet else None
                ),
            ),
            order=self.settings.time_order,
            pressure_tol=tol,
            viscous_tol=tol,
            penalty_tol=tol,
            pressure_has_dirichlet=bool(self.pressure_dirichlet),
            max_solver_iterations=self.settings.max_solver_iterations,
            pressure_fallback=self.pressure_fallback,
            state_dtype=self.compute_dtype,
        )
        self.cfl = CFLController(
            cfl=self.settings.cfl, degree=degree, dt_max=self.settings.dt_max
        )
        self._dist_ctx = None

    # -- distributed execution ---------------------------------------------
    @property
    def distributed_context(self):
        """The live :class:`~repro.parallel.DistributedSolverContext`,
        or ``None`` while the pressure solve runs serially — callers
        drain its merged worker timeline / phase totals from here."""
        return self._dist_ctx

    def distribute_pressure(self, n_workers: int,
                            distribute_single_precision: bool = False,
                            trace_timeline: bool = False):
        """Run the pressure-Poisson mat-vec on a shared-memory worker
        pool (:class:`repro.parallel.DistributedSolverContext`).

        The outer CG stays in double precision on the master; only its
        ``vmult`` fans out, so a distributed fp64 step is bitwise
        identical to the serial one.  The fallback chain keeps driving
        the serial master operator — a worker crash surfaces as a
        :class:`repro.parallel.WorkerCrash`, not as a silently slower
        solve.  Returns the context; call :meth:`undistribute_pressure`
        (or close the context) when done."""
        from ..parallel.runtime import DistributedSolverContext

        if self._dist_ctx is not None:
            raise RuntimeError("pressure solve is already distributed")
        pre = self.pressure_pre
        if not isinstance(pre, HybridMultigridPreconditioner):
            pre = None
        self._dist_ctx = DistributedSolverContext(
            self.pressure_poisson, pre, n_workers=n_workers,
            distribute_single_precision=distribute_single_precision,
            trace_timeline=trace_timeline,
        )
        self.scheme.ops.pressure_poisson = self._dist_ctx.operator
        return self._dist_ctx

    def undistribute_pressure(self) -> None:
        """Restore the serial pressure operator and close the pool."""
        if self._dist_ctx is None:
            return
        self.scheme.ops.pressure_poisson = self.pressure_poisson
        ctx, self._dist_ctx = self._dist_ctx, None
        ctx.close()

    def _build_pressure_fallback(self, robustness) -> PressureFallbackChain:
        """The documented escalation order for the pressure solve.

        Tier 0 is the configured preconditioner (normally the
        mixed-precision hybrid multigrid); the double-precision V-cycle
        and the Jacobi-CG rescue tier are built lazily on first
        activation."""
        op = self.pressure_poisson
        tiers = []
        if isinstance(self.pressure_pre, HybridMultigridPreconditioner):
            tiers.append(FallbackTier("mg_mixed", lambda: self.pressure_pre))
            tiers.append(
                FallbackTier(
                    "mg_double",
                    lambda: HybridMultigridPreconditioner(
                        op,
                        smoother_degree=self.settings.smoother_degree,
                        precision=np.float64,
                    ),
                )
            )
        else:
            tiers.append(FallbackTier("jacobi", lambda: self.pressure_pre))
        tiers.append(
            FallbackTier(
                "jacobi_cg",
                lambda: JacobiPreconditioner(op),
                max_iter_scale=robustness.fallback_max_iter_scale,
            )
        )
        return PressureFallbackChain(tiers)

    # ------------------------------------------------------------------
    def compute_vorticity(self, u_flat: np.ndarray) -> np.ndarray:
        """L2 projection of curl(u) into the velocity space (cell-local,
        inverted by the fast mass inverse) — needed by the consistent
        pressure Neumann boundary condition."""
        u = self.dof_u.cell_view(u_flat)
        kern = self.geo_u.kernel
        cm = self.geo_u.cell_metrics()
        grads = np.stack([kern.gradients(u[:, i]) for i in range(3)], axis=1)
        # physical gradient: dU_i/dx_l = sum_m jinv_t[l, m] * ghat[i, m]
        G = contract("clmzyx,cimzyx->cilzyx", cm.jinv_t, grads)
        curl = np.stack(
            [
                G[:, 2, 1] - G[:, 1, 2],
                G[:, 0, 2] - G[:, 2, 0],
                G[:, 1, 0] - G[:, 0, 1],
            ],
            axis=1,
        )
        rhs = np.stack(
            [kern.integrate_values(curl[:, i] * cm.jxw) for i in range(3)], axis=1
        )
        return self.inv_mass_u.vmult(self.dof_u.flat(rhs))

    def _pressure_dirichlet_rhs(self, t: float) -> np.ndarray:
        """Weak Dirichlet data of the pressure Poisson operator."""
        per_id = {
            bid: (lambda x, y, z, _bid=bid: self.bcs.pressure_value(_bid, x, y, z, t))
            for bid in self.pressure_dirichlet
        }
        return self.pressure_poisson.assemble_rhs(dirichlet=per_id)

    def _pressure_neumann_rhs(self, t_new, u_history, t_history, coeffs, dt):
        """Consistent pressure Neumann data on velocity-Dirichlet faces:
        ``dp/dn = -n . (dg/dt + sum_i beta_i [conv(u_i) + nu curl(omega_i)])``.

        ``dg/dt`` is approximated by the same BDF formula as the velocity
        time derivative; the convective and rotational terms are
        extrapolated from the history fields (Fehn et al. 2017).

        Ensemble-stacked histories assemble member by member (boundary-
        face work only, far below the solves); ``E = 1`` keeps the
        unbatched bitstream."""
        from ..core.operators.base import FaceKernels, physical_gradient

        if u_history and getattr(u_history[0], "ndim", 1) == 2:
            members = [
                self._pressure_neumann_rhs(
                    t_new, [u[e] for u in u_history], t_history, coeffs, dt
                )
                for e in range(u_history[0].shape[0])
            ]
            return np.stack(members)

        fk_u = FaceKernels(self.geo_u.kernel)
        fk_p = self.divergence.fk_p
        order = len(u_history)
        omegas = [self.compute_vorticity(u) for u in u_history]
        out = np.zeros((self.dof_p.n_cells,) + (self.dof_p.n1,) * 3)
        for ib, (batch, fm) in enumerate(
            zip(self.conn.boundary, self.divergence.bdry_metrics)
        ):
            if batch.boundary_id not in self.velocity_dirichlet:
                continue
            pts = fm.points
            n = fm.normal
            bc = self.bcs.get(batch.boundary_id)
            # dg/dt by the BDF derivative at t_new
            g_new = np.moveaxis(
                np.asarray(bc.g(pts[:, 0], pts[:, 1], pts[:, 2], t_new)), 0, 1
            )
            dgdt = coeffs.gamma0 * g_new
            for i in range(order):
                g_i = np.moveaxis(
                    np.asarray(bc.g(pts[:, 0], pts[:, 1], pts[:, 2], t_history[i])),
                    0,
                    1,
                )
                dgdt = dgdt - coeffs.alpha[i] * g_i
            dgdt = dgdt / dt
            total = dgdt
            for i in range(order):
                beta = coeffs.beta[i]
                u = self.dof_u.cell_view(u_history[i])[batch.cells]
                om = self.dof_u.cell_view(omegas[i])[batch.cells]
                uv, ug = fk_u.eval_side(u, batch.face)
                Gu = physical_gradient(fm.minus.jinv_t, ug)
                conv = contract("fjab,fijab->fiab", uv, Gu)
                divu = contract("fiiab->fab", Gu)
                conv = conv + divu[:, None] * uv
                ov, og = fk_u.eval_side(om, batch.face)
                Go = physical_gradient(fm.minus.jinv_t, og)
                curl_om = np.stack(
                    [
                        Go[:, 2, 1] - Go[:, 1, 2],
                        Go[:, 0, 2] - Go[:, 2, 0],
                        Go[:, 1, 0] - Go[:, 0, 1],
                    ],
                    axis=1,
                )
                total = total + beta * (conv + self.nu * curl_om)
            h = -contract("fiab,fiab->fab", n, total)
            contrib = fk_p.integrate_side(batch.face, h * fm.jxw, None)
            cached_scatter_plan(
                self._plan_cache, ("pnbc", ib), batch.cells, out.shape[0]
            ).add(out, contrib)
        return self.dof_p.flat(out)

    def _viscous_boundary_rhs(self, t: float):
        """Weak velocity-Dirichlet data of the viscous step."""
        comps = []
        for i in range(3):
            per_id = {}
            for bid in self.velocity_dirichlet:
                bc = self.bcs.get(bid)
                per_id[bid] = (
                    lambda x, y, z, _bc=bc, _i=i: np.asarray(_bc.g(x, y, z, t))[_i]
                )
            comps.append(per_id)
        return self.vector_laplace.assemble_rhs(dirichlet_components=comps)

    def _assembled_body_force(self, t: float) -> np.ndarray:
        """integral(f . v) assembled into the velocity space."""
        cm = self.geo_u.cell_metrics()
        pts = cm.points
        f = np.asarray(self._body_force_fn(pts[:, 0], pts[:, 1], pts[:, 2], t))
        f = np.moveaxis(f, 0, 1)  # (N, 3, q, q, q)
        out = np.stack(
            [
                self.geo_u.kernel.integrate_values(f[:, i] * cm.jxw)
                for i in range(3)
            ],
            axis=1,
        )
        return self.dof_u.flat(out)

    # ------------------------------------------------------------------
    def interpolate_velocity(self, fn, t: float = 0.0) -> np.ndarray:
        """Nodal interpolation of ``fn(x, y, z, t) -> (3, ...)``."""
        n = self.degree + 1
        nodes = self.geo_u.kernel.shape.basis.nodes
        zz, yy, xx = np.meshgrid(nodes, nodes, nodes, indexing="ij")
        ref = np.stack([xx.ravel(), yy.ravel(), zz.ravel()], axis=1)
        out = np.empty((self.forest.n_cells, 3, n, n, n))
        for c, leaf in enumerate(self.forest.leaves):
            pts = self.forest.coarse.map_geometry(leaf.tree, leaf.ref_points(ref))
            vals = np.asarray(fn(pts[:, 0], pts[:, 1], pts[:, 2], t))
            out[c] = vals.reshape(3, n, n, n)
        return self.dof_u.flat(out)

    def initialize(self, u0=None, t0: float = 0.0) -> None:
        if u0 is None:
            u = self.dof_u.zeros(dtype=self.compute_dtype)
        elif callable(u0):
            u = self.interpolate_velocity(u0, t0)
        else:
            u = np.asarray(u0, dtype=self.compute_dtype)
        self.scheme.initialize(u, t0)

    def _stamp_cfl(self, stats, vmax):
        """Record the realized CFL number on the step statistics: the
        inverse of Eq. (6), ``CFL = dt * k^1.5 * max|J^{-1} u|``.

        ``vmax`` is a per-member ``(E,)`` array for ensemble states;
        members share dt, so the headline ``cfl`` is the batch maximum
        while ``member_cfl`` records each member's realized number."""
        scale = stats.dt * self.degree**1.5
        if np.ndim(vmax) == 1:
            stats.member_cfl = [scale * float(v) for v in np.asarray(vmax)]
            stats.cfl = max(stats.member_cfl)
        else:
            stats.cfl = scale * vmax
        if METRICS.enabled:
            self._sample_health(stats)
        return stats

    def _sample_health(self, stats) -> None:
        """Record per-step physics-health metrics (registry enabled
        only; ``step`` and ``run`` both pass through here).  Divergence
        is the one probe that is not free — one gradient evaluation per
        step — which is why the whole sampler is gated."""
        _STEPS.inc()
        _SIM_TIME.set(stats.t)
        _STEP_DT.set(stats.dt)
        _STEP_WALL.observe(stats.wall_time)
        _CFL_REALIZED.observe(stats.cfl)
        u = self.scheme.velocity
        ke = 0.5 * float(u @ u) if u.ndim == 1 else 0.5 * float(np.vdot(u, u))
        _KINETIC_ENERGY.set(ke)
        _DIVERGENCE_L2.set(self.divergence_l2())
        _PRESSURE_RESIDUAL.set(stats.pressure_residual)

    def _advance(self, dt: float):
        """One scheme step, through the recovery harness when the
        solver carries a robustness policy (a diverged step rolls back
        and retries with a backed-off ``dt``; the realized step size is
        whatever the successful attempt used)."""
        if self.robustness is not None and self.robustness.max_step_retries > 0:
            return recoverable_step(
                self.scheme, dt, self.robustness, events=self.recovery_log
            )
        return self.scheme.step(dt)

    def step(self, dt: float | None = None):
        vmax = self.convective.max_reference_velocity(self.scheme.velocity)
        if dt is None:
            prev = self.scheme.dt_history[0] if self.scheme.dt_history else None
            # ensemble members share dt: the fastest member sets the CFL
            dt = self.cfl.step_size(float(np.max(vmax)), prev)
        # stamp the realized CFL for fixed dt too, so telemetry and the
        # verification ladders can flag stability-limit violations
        return self._stamp_cfl(self._advance(dt), vmax)

    def run(
        self,
        t_end: float,
        *,
        max_steps: int = 10**7,
        dt_initial: float | None = None,
        checkpoints=None,
    ):
        """Advance to ``t_end`` with adaptive steps; returns the list of
        per-step statistics.

        This is the shared driver signature (keyword-only after
        ``t_end``) also implemented by
        :meth:`repro.lung.simulation.LungVentilationSimulation.run` and
        :meth:`repro.lung.ensemble.EnsembleLungSimulation.run`:
        ``dt_initial`` seeds the first step when no history exists yet,
        and ``checkpoints`` (an optional
        :class:`~repro.robustness.CheckpointManager`) is polled after
        every step so interval policies see the simulated time."""
        stats = []
        if dt_initial is not None and not self.scheme.dt_history:
            stats.append(self.step(min(dt_initial, t_end - self.scheme.t)))
            if checkpoints is not None:
                checkpoints.maybe_save(self)
        while self.scheme.t < t_end - 1e-14 and len(stats) < max_steps:
            vmax = self.convective.max_reference_velocity(self.scheme.velocity)
            prev = self.scheme.dt_history[0] if self.scheme.dt_history else None
            dt = self.cfl.step_size(float(np.max(vmax)), prev)
            dt = min(dt, t_end - self.scheme.t)
            stats.append(self._stamp_cfl(self._advance(dt), vmax))
            if checkpoints is not None:
                checkpoints.maybe_save(self)
        return stats

    # -- post-processing ---------------------------------------------------
    @property
    def velocity(self) -> np.ndarray:
        return self.scheme.velocity

    @property
    def pressure(self):
        return self.scheme.pressure

    def velocity_error_l2(self, exact, t: float) -> float:
        """L2 error of the velocity against ``exact(x, y, z, t) -> (3, ...)``."""
        cm = self.geo_u.cell_metrics()
        uq = np.stack(
            [
                self.geo_u.kernel.values(self.dof_u.cell_view(self.velocity)[:, i])
                for i in range(3)
            ],
            axis=1,
        )
        ex = np.asarray(exact(cm.points[:, 0], cm.points[:, 1], cm.points[:, 2], t))
        ex = np.moveaxis(ex, 0, 1)
        return float(np.sqrt(np.sum((uq - ex) ** 2 * cm.jxw[:, None])))

    def _divergence_field(self) -> np.ndarray:
        """div(u) at quadrature points; ensemble states get a leading
        member axis."""
        u = self.dof_u.cell_view(self.velocity)
        kern = self.geo_u.kernel
        cm = self.geo_u.cell_metrics()
        grads = np.stack(
            [kern.gradients(u[..., i, :, :, :]) for i in range(3)], axis=-5
        )
        if u.ndim == 6:
            return contract("cilzyx,ecilzyx->eczyx", cm.jinv_t, grads)
        return contract("cilzyx,cilzyx->czyx", cm.jinv_t, grads)

    def max_divergence(self) -> float:
        """max |div u| at quadrature points — the quantity the penalty
        step controls (the batch maximum for ensemble states)."""
        return float(np.abs(self._divergence_field()).max())

    def divergence_l2(self) -> float:
        """``||div u||_L2`` over the domain — the integral counterpart
        of :meth:`max_divergence`, smoother under mesh refinement and
        the quantity the health metrics track per step.  Ensemble states
        report the root-sum-square over all members."""
        div = self._divergence_field()
        cm = self.geo_u.cell_metrics()
        return float(np.sqrt(np.sum(div**2 * cm.jxw)))

    def flow_rate(self, boundary_id: int):
        """Volumetric flow rate through a boundary (outward positive).

        Returns a float; ensemble states yield a per-member ``(E,)``
        array (``E = 1`` evaluates on the unbatched bitstream)."""
        return self._flow_rate_of(self.velocity, boundary_id)

    def _flow_rate_of(self, u_flat: np.ndarray, boundary_id: int):
        if u_flat.ndim == 2 and u_flat.shape[0] == 1:
            return np.array([self._flow_rate_of(u_flat[0], boundary_id)])
        u = self.dof_u.cell_view(u_flat)
        ensemble = u.ndim == 6
        total = 0.0
        from ..core.operators.base import FaceKernels

        fk = FaceKernels(self.geo_u.kernel)
        for batch, fm in zip(self.conn.boundary, self.divergence.bdry_metrics):
            if batch.boundary_id != boundary_id:
                continue
            uc = u[:, batch.cells] if ensemble else u[batch.cells]
            tm = self.geo_u.kernel.face_nodal_trace(uc, batch.face)
            vm = fk.to_quad(tm)
            sub = "fiab,efiab->efab" if ensemble else "fiab,fiab->fab"
            un = contract(sub, fm.normal, vm)
            if ensemble:
                total = total + (un * fm.jxw).sum(axis=(-3, -2, -1))
            else:
                total += float((un * fm.jxw).sum())
        return total
