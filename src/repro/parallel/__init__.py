"""Distributed runtime: Morton partitioning with real ghost-face
censuses, machine models of the paper's platforms, the calibrated
strong/weak-scaling performance model, and a real shared-memory
multi-process worker pool with overlapped ghost exchange
(:mod:`repro.parallel.runtime`)."""

from .machine import FUGAKU_A64FX, LOCAL_PYTHON, SUMMIT_V100, SUPERMUC_NG, MachineModel
from .partition import (
    PartitionStats,
    SimulatedGhostExchange,
    partition_forest,
    partition_stats,
)
from .distributed import DistributedDGLaplace, ExchangeCensus
from .perfmodel import (
    SP_SMOOTHER_SPEEDUP,
    THROUGHPUT_VS_DEGREE,
    MatvecScalingModel,
    MultigridLevelSpec,
    MultigridSolveModel,
    multigrid_levels_from_preconditioner,
)
from .runtime import (
    CRASH_EXIT_CODE,
    DistributedOperator,
    DistributedSolverContext,
    InProcessGhostRuntime,
    PartitionPlan,
    RankLocalOperator,
    WorkerCrash,
    WorkerPool,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "DistributedOperator",
    "DistributedSolverContext",
    "InProcessGhostRuntime",
    "PartitionPlan",
    "RankLocalOperator",
    "WorkerCrash",
    "WorkerPool",
    "MachineModel",
    "SUPERMUC_NG",
    "SUMMIT_V100",
    "FUGAKU_A64FX",
    "LOCAL_PYTHON",
    "PartitionStats",
    "SimulatedGhostExchange",
    "partition_forest",
    "partition_stats",
    "DistributedDGLaplace",
    "ExchangeCensus",
    "MatvecScalingModel",
    "MultigridLevelSpec",
    "MultigridSolveModel",
    "multigrid_levels_from_preconditioner",
    "THROUGHPUT_VS_DEGREE",
    "SP_SMOOTHER_SPEEDUP",
]
