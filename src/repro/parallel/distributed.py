"""Simulated distributed execution of the DG Laplacian mat-vec.

The paper's MPI parallelization (Section 3.2) partitions cells along the
Morton curve, exchanges ghost-face data with nearest neighbors via
non-blocking messages, and overlaps the exchange with cell work.  This
module *executes* that protocol in-process: each rank only ever reads
the solution entries of its own cells plus the received ghost sheets,
and the per-rank results scatter-add into the global vector.  Tests
assert bit-level-close agreement with the monolithic operator — the
strongest possible check that the communication pattern (what is shipped
per cut face) is sufficient and correct.

Shipped per cut face and direction: the neighbor's nodal *value trace*
and nodal *normal-derivative trace* (2 x (k+1)^2 values) — everything
the SIP flux needs, since tangential derivatives are recomputed from the
value trace on the receiving side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.operators.base import FaceKernels
from ..core.operators.laplace import DGLaplaceOperator
from ..core.plans import cached_scatter_plan, contract
from ..core.sum_factorization import apply_1d_2d
from .partition import partition_forest


@dataclass
class ExchangeCensus:
    """Message accounting of one mat-vec (per exchange round)."""

    n_messages: int = 0
    n_sheets: int = 0
    bytes_total: int = 0
    pairs: set = field(default_factory=set)


class DistributedDGLaplace:
    """Rank-partitioned evaluation of an existing
    :class:`~repro.core.operators.laplace.DGLaplaceOperator`."""

    def __init__(self, op: DGLaplaceOperator, n_ranks: int,
                 weights=None) -> None:
        self.op = op
        self.n_ranks = n_ranks
        self.ranks = partition_forest(op.geo.forest, n_ranks, weights)
        self.kern = op.kern
        self.fk = FaceKernels(op.kern)
        n1 = op.kern.n_dofs_1d
        self._sheet_bytes = 2 * n1 * n1 * 8
        # the partition is fixed, so the local/cut split of every face
        # batch — and the scatter destinations of the local bulk — are
        # computed once here instead of on every mat-vec
        self._local: list[np.ndarray] = []
        self._cut: list[np.ndarray] = []
        for batch in op.conn.interior:
            rm = self.ranks[batch.cells_m]
            rp = self.ranks[batch.cells_p]
            self._local.append(np.nonzero(rm == rp)[0])
            self._cut.append(np.nonzero(rm != rp)[0])
        self._plan_cache: dict = {}

    # ------------------------------------------------------------------
    def _exchange(self, u_cells: np.ndarray) -> tuple[dict, ExchangeCensus]:
        """Ghost exchange: for every cut face, the owner of each side
        packs its value + normal-derivative nodal traces for the other
        side.  Keys: (batch index, entry index, 'm'|'p') identify the
        *sender's* side."""
        census = ExchangeCensus()
        buffers: dict = {}
        for ib, batch in enumerate(self.op.conn.interior):
            cut = self._cut[ib]
            if cut.size == 0:
                continue
            rm = self.ranks[batch.cells_m]
            rp = self.ranks[batch.cells_p]
            kern = self.kern
            tm_v = kern.face_nodal_trace(u_cells[batch.cells_m[cut]], batch.face_m)
            tm_g = kern.face_nodal_normal_derivative(
                u_cells[batch.cells_m[cut]], batch.face_m
            )
            tp_v = kern.face_nodal_trace(u_cells[batch.cells_p[cut]], batch.face_p)
            tp_g = kern.face_nodal_normal_derivative(
                u_cells[batch.cells_p[cut]], batch.face_p
            )
            for j, e in enumerate(cut):
                buffers[(ib, int(e), "m")] = (tm_v[j], tm_g[j])
                buffers[(ib, int(e), "p")] = (tp_v[j], tp_g[j])
                census.n_sheets += 2
                census.bytes_total += 2 * self._sheet_bytes
                census.pairs.add((int(rm[e]), int(rp[e])))
                census.pairs.add((int(rp[e]), int(rm[e])))
        census.n_messages = len(census.pairs)
        return buffers, census

    @staticmethod
    def _grad3_from_sheets(kern, value_sheet, nder_sheet, face):
        """Rebuild the 3-component reference-gradient nodal trace from the
        two shipped sheets (tangential derivatives from the value trace)."""
        d = face // 2
        rem = [dd for dd in (2, 1, 0) if dd != d]
        D = kern.nodal_diff
        g = [None, None, None]
        g[d] = nder_sheet
        g[rem[0]] = apply_1d_2d(D, value_sheet, 1)
        g[rem[1]] = apply_1d_2d(D, value_sheet, 0)
        return np.stack(g, axis=-3)

    # ------------------------------------------------------------------
    def vmult(self, x: np.ndarray) -> tuple[np.ndarray, ExchangeCensus]:
        """Distributed mat-vec: returns (result, exchange census)."""
        op = self.op
        u = op.dof.cell_view(x)
        buffers, census = self._exchange(u)
        out = np.zeros_like(u)
        fk = self.fk
        kern = self.kern

        # cell terms: each rank handles its own cells (here: all at once,
        # ownership is disjoint so this is exactly the union of rank work)
        out += op._cell_term(u)

        for ib, (batch, fm, tau) in enumerate(
            zip(op.conn.interior, op.face_metrics, op.tau)
        ):
            local = self._local[ib]
            cut = self._cut[ib]

            if local.size:
                um = u[batch.cells_m[local]]
                up = u[batch.cells_p[local]]
                vm, gm = fk.eval_side(um, batch.face_m)
                vp, gp = fk.eval_side(up, batch.face_p, batch.orientation, batch.subface)
                self._accumulate(out, batch, fm, tau, local, vm, gm, vp, gp,
                                 minus=True, plus=True, key=("local", ib))

            for e in cut:
                # minus owner: local minus traces + buffered plus sheets
                um = u[batch.cells_m[e : e + 1]]
                vm_t, gm_t = fk.nodal_traces(um, batch.face_m)
                pv, pg = buffers[(ib, int(e), "p")]
                pg3 = self._grad3_from_sheets(kern, pv[None], pg[None], batch.face_p)
                vm = fk.to_quad(vm_t)
                gm = fk.to_quad(gm_t)
                vp = fk.to_quad(pv[None], batch.orientation, batch.subface)
                gp = fk.to_quad(pg3, batch.orientation, batch.subface)
                idx = np.array([e])
                self._accumulate(out, batch, fm, tau, idx, vm, gm, vp, gp,
                                 minus=True, plus=False)
                # plus owner: local plus traces + buffered minus sheets
                upc = u[batch.cells_p[e : e + 1]]
                vp2, gp2 = fk.eval_side(upc, batch.face_p, batch.orientation, batch.subface)
                mv, mg = buffers[(ib, int(e), "m")]
                mg3 = self._grad3_from_sheets(kern, mv[None], mg[None], batch.face_m)
                vm2 = fk.to_quad(mv[None])
                gm2 = fk.to_quad(mg3)
                self._accumulate(out, batch, fm, tau, idx, vm2, gm2, vp2, gp2,
                                 minus=False, plus=True)

        # boundary terms are rank-local by construction
        out += self._boundary_terms(u)
        return op.dof.flat(out), census

    def _accumulate(self, out, batch, fm, tau, idx, vm, gm, vp, gp,
                    minus: bool, plus: bool, key=None) -> None:
        from ..core.operators.base import physical_gradient

        op = self.op
        fm_m = fm.minus.jinv_t[idx]
        fm_p = fm.plus.jinv_t[idx]
        sub = _SubMetrics(fm, idx)
        Gm = physical_gradient(fm_m, gm)
        Gp = physical_gradient(fm_p, gp)
        rv_m, rg_m, rv_p, rg_p = op._face_flux(sub, tau[idx], vm, Gm, vp, Gp)
        if minus:
            contrib_m = self.fk.integrate_side(
                batch.face_m, rv_m,
                contract("fijab,fiab->fjab", fm_m, rg_m),
            )
            self._scatter(out, batch.cells_m[idx], contrib_m,
                          None if key is None else key + ("m",))
        if plus:
            contrib_p = self.fk.integrate_side(
                batch.face_p, rv_p,
                contract("fijab,fiab->fjab", fm_p, rg_p),
                batch.orientation, batch.subface,
            )
            self._scatter(out, batch.cells_p[idx], contrib_p,
                          None if key is None else key + ("p",))

    def _scatter(self, out, cells, contrib, key) -> None:
        """Planned scatter for the precomputed (per-batch) destinations;
        single cut faces accumulate directly (one row is trivially
        unique)."""
        if key is None:
            out[cells] += contrib
            return
        plan = cached_scatter_plan(self._plan_cache, key, cells, out.shape[0])
        plan.add(out, contrib)

    def _boundary_terms(self, u: np.ndarray) -> np.ndarray:
        from ..core.operators.base import physical_gradient

        op = self.op
        out = np.zeros_like(u)
        fk = self.fk
        for ib, (batch, fm, tau) in enumerate(
            zip(op.conn.boundary, op.bdry_metrics, op.tau_b)
        ):
            if batch.boundary_id not in op.dirichlet_ids:
                continue
            um = u[batch.cells]
            vm, gm = fk.eval_side(um, batch.face)
            Gm = physical_gradient(fm.minus.jinv_t, gm)
            dn_m = contract("fiab,fiab->fab", fm.normal, Gm)
            w = fm.jxw
            rv = (-dn_m + 2.0 * tau[:, None, None] * vm) * w
            rg_phys = (-vm * w)[:, None] * fm.normal
            contrib = fk.integrate_side(
                batch.face, rv, op._to_ref_grad(fm.minus.jinv_t, rg_phys)
            )
            self._scatter(out, batch.cells, contrib, ("bdy", ib))
        return out


class _SubMetrics:
    """View of a FaceMetrics restricted to selected face entries, with
    the attributes _face_flux reads."""

    def __init__(self, fm, idx) -> None:
        self.normal = fm.normal[idx]
        self.jxw = fm.jxw[idx]
