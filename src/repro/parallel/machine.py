"""Machine models of the hardware discussed in the paper.

The node-level and network parameters below parameterize the analytic
performance model (:mod:`repro.parallel.perfmodel`) that substitutes the
SuperMUC-NG measurements: SuperMUC-NG Skylake nodes (the paper's
platform, Figures 6-10 and Tables 2-3), one Summit V100 GPU and one
Fujitsu A64FX node (the CEED BP3 comparison of Figure 6 right).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineModel:
    """Roofline-style node model + network parameters."""

    name: str
    peak_flops_dp: float  # Flop/s per node (double precision)
    mem_bandwidth: float  # B/s per node (STREAM-like)
    cache_per_core: float  # B of L2+L3 per core (cache-regime boost)
    n_cores: int
    network_latency: float  # alpha [s] per message
    network_bandwidth: float  # beta [B/s] per node
    #: empirical throughput ceiling of a highly tuned matrix-free DG
    #: operator in DoF/s per node at k = 3 (saturated regime); anchors
    #: the model to the absolute numbers reported in the paper
    matvec_dofs_per_s_k3: float = 1.4e9

    @property
    def flop_byte_ridge(self) -> float:
        """Arithmetic intensity at the roofline ridge point."""
        return self.peak_flops_dp / self.mem_bandwidth

    def attainable_flops(self, arithmetic_intensity: float) -> float:
        """Classical roofline: min(peak, AI * bandwidth)."""
        return min(self.peak_flops_dp, arithmetic_intensity * self.mem_bandwidth)


#: SuperMUC-NG node: 2 x 24-core Intel Xeon Platinum 8174 (Skylake) at a
#: fixed 2.3 GHz; AVX-512 with 2 FMA units: 32 DP Flop/cycle/core.
#: 1 MB L2 + 1.375 MB L3 per core (Section 5.1's cache-effect analysis).
SUPERMUC_NG = MachineModel(
    name="SuperMUC-NG (2x24 Skylake 8174)",
    peak_flops_dp=48 * 2.3e9 * 32,
    mem_bandwidth=205e9,  # measured STREAM (256 GB/s nominal)
    cache_per_core=2.375e6,
    n_cores=48,
    network_latency=1.7e-6,  # OmniPath MPI latency
    network_bandwidth=12.5e9,
    matvec_dofs_per_s_k3=1.4e9,  # Figure 6 (left), k = 3 DP
)

#: One Nvidia V100 of Summit (CEED BP3 results of [39])
SUMMIT_V100 = MachineModel(
    name="Summit (1 x V100)",
    peak_flops_dp=7.8e12,
    mem_bandwidth=900e9,
    cache_per_core=6e6 / 80,
    n_cores=80,  # SMs
    network_latency=3.0e-6,  # incl. kernel-launch/host latency
    network_bandwidth=25e9,
    matvec_dofs_per_s_k3=2.4e9,
)

#: One Fujitsu A64FX node of Fugaku (CEED BP3 results of [40])
FUGAKU_A64FX = MachineModel(
    name="Fugaku (1 x A64FX)",
    peak_flops_dp=48 * 2.2e9 * 32,
    mem_bandwidth=900e9,  # HBM2 (1024 GB/s nominal)
    cache_per_core=8e6 / 12,
    n_cores=48,
    network_latency=1.5e-6,
    network_bandwidth=6.8e9,
    matvec_dofs_per_s_k3=1.7e9,
)

#: The Python/NumPy "node" this reproduction actually runs on; the
#: absolute throughput anchor is measured at import time by benchmarks
#: that need it (see repro.perf.measure.calibrate_local_machine).
LOCAL_PYTHON = MachineModel(
    name="local NumPy (this reproduction)",
    peak_flops_dp=5e10,
    mem_bandwidth=2e10,
    cache_per_core=3e7,
    n_cores=1,
    network_latency=1e-6,
    network_bandwidth=1e10,
    matvec_dofs_per_s_k3=1e7,
)
