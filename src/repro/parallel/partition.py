"""Morton-curve mesh partitioning and ghost-layer bookkeeping.

The forests are already ordered along the per-tree Morton curve
(p4est ordering, :mod:`repro.mesh.morton`), so partitioning into P ranks
is a contiguous weighted cut of the leaf sequence — the same
"difficult problem of partitioning a partly adapted mesh with many
trees" the paper attributes the lung mesh's extra communication cost to.

:class:`PartitionStats` extracts, from the *real* connectivity, the
quantities the strong-scaling performance model consumes: cells and DoFs
per rank, cut faces, per-rank neighbor counts, and message volumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mesh.connectivity import MeshConnectivity
from ..mesh.morton import partition_contiguous
from ..mesh.octree import Forest


@dataclass
class PartitionStats:
    n_ranks: int
    cells_per_rank: np.ndarray  # (P,)
    cut_faces: int  # faces crossing rank boundaries (both dirs once)
    neighbors_per_rank: np.ndarray  # (P,) distinct neighbor ranks
    cut_faces_per_rank: np.ndarray  # (P,) faces with a remote neighbor

    def max_cells(self) -> int:
        return int(self.cells_per_rank.max())

    def max_neighbors(self) -> int:
        return int(self.neighbors_per_rank.max()) if self.n_ranks > 1 else 0

    def max_cut_faces(self) -> int:
        return int(self.cut_faces_per_rank.max()) if self.n_ranks > 1 else 0

    def message_bytes_per_rank(self, degree: int, n_components: int = 1,
                               precision_bytes: int = 8) -> float:
        """Ghost-face payload of the busiest rank: one face sheet of
        (k+1)^2 values per component and cut face."""
        sheet = (degree + 1) ** 2 * n_components * precision_bytes
        return float(self.max_cut_faces() * sheet)


def partition_forest(forest: Forest, n_ranks: int,
                     weights: np.ndarray | None = None) -> np.ndarray:
    """Rank of every leaf cell (contiguous Morton cut)."""
    if weights is None:
        weights = np.ones(forest.n_cells)
    return partition_contiguous(weights, n_ranks)


def partition_stats(forest: Forest, conn: MeshConnectivity, n_ranks: int,
                    weights: np.ndarray | None = None) -> PartitionStats:
    ranks = partition_forest(forest, n_ranks, weights)
    cells_per_rank = np.bincount(ranks, minlength=n_ranks)
    cut = 0
    cut_per_rank = np.zeros(n_ranks, dtype=np.int64)
    neighbor_sets: list[set] = [set() for _ in range(n_ranks)]
    for batch in conn.interior:
        rm = ranks[batch.cells_m]
        rp = ranks[batch.cells_p]
        remote = rm != rp
        cut += int(remote.sum())
        for a, b in zip(rm[remote], rp[remote]):
            cut_per_rank[a] += 1
            cut_per_rank[b] += 1
            neighbor_sets[a].add(int(b))
            neighbor_sets[b].add(int(a))
    neighbors = np.array([len(s) for s in neighbor_sets], dtype=np.int64)
    return PartitionStats(
        n_ranks=n_ranks,
        cells_per_rank=cells_per_rank,
        cut_faces=cut,
        neighbors_per_rank=neighbors,
        cut_faces_per_rank=cut_per_rank,
    )


class SimulatedGhostExchange:
    """A functional stand-in for the MPI nearest-neighbor exchange.

    Partitions a DG vector by rank, fills per-rank send buffers with the
    face sheets of cut faces, 'transfers' them, and lets tests verify
    that the buffered data reproduces the remote traces exactly — the
    same non-blocking pattern the solver overlaps with cell work.  It
    also reports the message census consumed by the performance model.
    """

    def __init__(self, forest: Forest, conn: MeshConnectivity, n_ranks: int,
                 degree: int) -> None:
        self.ranks = partition_forest(forest, n_ranks)
        self.conn = conn
        self.degree = degree
        self.n_ranks = n_ranks
        # (batch index, face entry index) of every cut face
        self.cut_entries: list[tuple[int, np.ndarray]] = []
        for ib, batch in enumerate(conn.interior):
            remote = self.ranks[batch.cells_m] != self.ranks[batch.cells_p]
            if remote.any():
                self.cut_entries.append((ib, np.nonzero(remote)[0]))

    def n_messages(self) -> int:
        """Total point-to-point messages of one exchange (pairwise,
        counting each direction)."""
        pairs = set()
        for ib, idx in self.cut_entries:
            batch = self.conn.interior[ib]
            for e in idx:
                a = int(self.ranks[batch.cells_m[e]])
                b = int(self.ranks[batch.cells_p[e]])
                pairs.add((a, b))
                pairs.add((b, a))
        return len(pairs)

    def exchange(self, u_cells: np.ndarray, kernel) -> dict:
        """Gather the plus-side nodal face traces of all cut faces into
        'receive buffers' keyed by (batch index, entry index)."""
        buffers = {}
        for ib, idx in self.cut_entries:
            batch = self.conn.interior[ib]
            traces = kernel.face_nodal_trace(
                u_cells[batch.cells_p[idx]], batch.face_p
            )
            for j, e in enumerate(idx):
                buffers[(ib, int(e))] = traces[j]
        return buffers
