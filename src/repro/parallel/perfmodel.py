"""Analytic strong/weak-scaling performance model.

This module substitutes the SuperMUC-NG measurements of Figures 8-10 and
Tables 2-3 (repro band: the node-level SIMD core and the 6480-node
machine are not reproducible in Python).  It combines

* the *real* mesh partitions (Morton cuts, ghost-face counts from the
  actual connectivity, :mod:`repro.parallel.partition`),
* a node model with the throughput table of Figure 6 (left), a
  cache-regime boost (the double-bump of Figure 8), and
* an alpha-beta network model with a tree-reduction term for the
  "vertical" multigrid communication (restriction/coarse-solve/
  prolongation, Section 5.2).

All constants are calibrated against the numbers printed in the paper
(Fig. 6: 1.4e9 DoF/s at k = 3; Fig. 8: matvec latency floor slightly
below 1e-4 s; Fig. 10: 3.5e-3 s per BoomerAMG call, 21-22 CG iterations
on the lung vs 9 on the bifurcation; Table 2 wall-times).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .machine import SUPERMUC_NG, MachineModel

#: DP mat-vec throughput per node vs degree on SuperMUC-NG, Figure 6 left
#: (DoF/s); the k = 3 entry equals machine.matvec_dofs_per_s_k3.
THROUGHPUT_VS_DEGREE = {1: 0.60, 2: 0.90, 3: 1.00, 4: 1.04, 5: 1.00, 6: 0.93}

#: single-precision Chebyshev-iteration throughput advantage (Section 5.1:
#: "around 30% higher than the double-precision matrix-vector product")
SP_SMOOTHER_SPEEDUP = 1.3


@dataclass
class MatvecScalingModel:
    """Wall-time model of one matrix-free operator evaluation."""

    machine: MachineModel = SUPERMUC_NG
    degree: int = 3
    #: bytes of working set per DoF (vectors + metric data, Fig. 7 model)
    bytes_per_dof: float = 40.0
    #: peak cache-regime speedup of the Figure-8 bump
    cache_boost: float = 2.0
    #: latency per message round (software + network, calibrated to the
    #: ~1e-4 s saturation of Figure 8)
    alpha_msg: float = 2.5e-6
    #: messages per exchange when no real partition stats are given
    default_neighbors: int = 20
    #: extra face work on meshes with mixed orientations (Section 5.2
    #: reports ~25% of face work for the g = 11 lung)
    face_orientation_overhead: float = 0.0

    def saturated_throughput(self) -> float:
        rel = THROUGHPUT_VS_DEGREE.get(self.degree, 1.0)
        t = self.machine.matvec_dofs_per_s_k3 * rel
        # faces are roughly 40% of the work; partially filled lanes on
        # mixed-orientation faces inflate that share
        return t / (1.0 + 0.4 * self.face_orientation_overhead)

    def throughput_per_node(self, dofs_per_node: float) -> float:
        """DoF/s of one node including the cache regime (Figure 8 right)."""
        sat = self.saturated_throughput()
        cache = self.machine.cache_per_core * self.machine.n_cores
        ws = dofs_per_node * self.bytes_per_dof
        if ws <= 0:
            return sat
        # smooth boost when the working set drops below the L2+L3 capacity
        x = np.log2(max(cache / ws, 1e-12))
        boost = 1.0 + (self.cache_boost - 1.0) / (1.0 + np.exp(-2.0 * x))
        return sat * boost

    def comm_time(self, n_nodes: int, dofs_per_node: float,
                  n_neighbors: float | None = None,
                  message_bytes: float | None = None) -> float:
        if n_nodes <= 1:
            return 0.0
        nb = self.default_neighbors if n_neighbors is None else n_neighbors
        if message_bytes is None:
            # ghost surface ~ 6 (dofs/node)^{2/3} values of 8 bytes
            message_bytes = 6.0 * dofs_per_node ** (2.0 / 3.0) * 8.0
        latency = self.alpha_msg * (nb + np.log2(max(n_nodes, 2)))
        return latency + message_bytes / self.machine.network_bandwidth

    def time(self, total_dofs: float, n_nodes: int,
             n_neighbors: float | None = None,
             message_bytes: float | None = None) -> float:
        dpn = total_dofs / n_nodes
        t_work = dpn / self.throughput_per_node(dpn)
        t_comm = self.comm_time(n_nodes, dpn, n_neighbors, message_bytes)
        # non-blocking exchange overlaps with cell work; the un-overlapped
        # part is the latency-dominated tail
        return max(t_work, t_comm) + 0.3 * t_comm

    def throughput(self, total_dofs: float, n_nodes: int, **kw) -> float:
        return total_dofs / self.time(total_dofs, n_nodes, **kw)

    def strong_scaling(self, total_dofs: float, node_counts) -> list[tuple[int, float, float]]:
        """[(nodes, time, throughput)] along a strong-scaling line."""
        out = []
        for p in node_counts:
            t = self.time(total_dofs, p)
            out.append((int(p), t, total_dofs / t))
        return out


@dataclass
class MultigridLevelSpec:
    """One level of the hybrid V-cycle as the model sees it."""

    n_dofs: float
    matvecs: int  # operator applications per V-cycle on this level
    degree: int
    single_precision: bool = True


@dataclass
class MultigridSolveModel:
    """Wall-time of the multigrid-preconditioned CG pressure solve.

    ``levels`` run fine -> coarse (excluding AMG).  Per V-cycle each
    level performs its matvecs (smoothing + residual + transfer
    equivalents) at the node throughput, plus one "vertical" latency term
    per level (restrict + prolongate act like a reduction/broadcast).
    The coarse AMG solve contributes a per-call latency measured as
    3.5e-3 s for the g = 11 lung (Section 5.2) and much less for
    structured coarse meshes.
    """

    levels: list[MultigridLevelSpec]
    machine: MachineModel = SUPERMUC_NG
    amg_time: float = 3.5e-3
    cg_fine_matvecs: int = 2  # fine operator + preconditioned residual work
    min_dofs_per_node: float = 200.0  # granularity floor (Section 3.4)
    face_orientation_overhead: float = 0.0

    def _level_model(self, lev: MultigridLevelSpec) -> MatvecScalingModel:
        m = MatvecScalingModel(
            machine=self.machine,
            degree=max(lev.degree, 1),
            face_orientation_overhead=self.face_orientation_overhead,
        )
        return m

    def level_nodes(self, lev: MultigridLevelSpec, n_nodes: int) -> int:
        """Coarse levels run on subsets of processes to respect the
        minimal granularity (Sundar et al.)."""
        max_nodes = max(1, int(lev.n_dofs / self.min_dofs_per_node / self.machine.n_cores))
        return max(1, min(n_nodes, max_nodes))

    def vcycle_time(self, n_nodes: int) -> float:
        total = 0.0
        for lev in self.levels:
            model = self._level_model(lev)
            p = self.level_nodes(lev, n_nodes)
            t_once = model.time(lev.n_dofs, p)
            if lev.single_precision:
                t_once /= SP_SMOOTHER_SPEEDUP
            total += lev.matvecs * t_once
            # vertical transfer latency (tree reduction + broadcast)
            total += 2.0 * model.alpha_msg * np.log2(max(n_nodes, 2))
        total += self.amg_time
        return total

    def vcycle_level_times(self, n_nodes: int) -> list[float]:
        """Per-level time contributions (for the Fig. 10 breakdown)."""
        out = []
        for lev in self.levels:
            model = self._level_model(lev)
            p = self.level_nodes(lev, n_nodes)
            t_once = model.time(lev.n_dofs, p)
            if lev.single_precision:
                t_once /= SP_SMOOTHER_SPEEDUP
            out.append(
                lev.matvecs * t_once
                + 2.0 * model.alpha_msg * np.log2(max(n_nodes, 2))
            )
        out.append(self.amg_time)
        return out

    def solve_time(self, n_iterations: int, n_nodes: int) -> float:
        fine = self.levels[0]
        fine_model = MatvecScalingModel(
            machine=self.machine, degree=fine.degree,
            face_orientation_overhead=self.face_orientation_overhead,
        )
        t_fine = self.cg_fine_matvecs * fine_model.time(fine.n_dofs, n_nodes)
        return n_iterations * (self.vcycle_time(n_nodes) + t_fine)

    def strong_scaling(self, n_iterations: int, node_counts) -> list[tuple[int, float]]:
        return [(int(p), self.solve_time(n_iterations, p)) for p in node_counts]


def multigrid_levels_from_preconditioner(mg, scale: float = 1.0) -> list[MultigridLevelSpec]:
    """Extract model level specs from an actual
    :class:`~repro.solvers.multigrid.HybridMultigridPreconditioner`
    (optionally scaling DoF counts up to paper-size problems)."""
    out = []
    for lev in mg.levels[:-1]:  # last stored level is the AMG space
        degree = getattr(getattr(lev.operator, "dof", None), "degree", 1)
        out.append(
            MultigridLevelSpec(
                n_dofs=lev.n_dofs * scale,
                matvecs=2 * lev.smoother.degree + 2,  # pre+post smoothing,
                # residual, transfer-equivalent
                degree=degree,
            )
        )
    return out
