"""Real shared-memory multi-process execution of the DG operators.

This module promotes :mod:`repro.parallel` from a *simulation* of the
paper's MPI layer (Section 3.2) to actual parallel execution: a
persistent pool of worker processes, each owning a contiguous Morton
range of cells, evaluates the SIP Laplacian mat-vec with a real ghost
exchange through ``multiprocessing.shared_memory`` buffers.  The
protocol per mat-vec mirrors Kronbichler & Kormann's overlap strategy:

1. **pack** — each worker copies the owned cells its neighbors need
   into per-destination outboxes (one shared-memory segment per ordered
   rank pair),
2. **post** — the worker publishes its round number in a shared
   sequence array (the "message has been sent" flag),
3. **interior** — cell terms, fully-owned face batches, and owned
   boundary faces are evaluated while neighbor data is (potentially)
   still in flight,
4. **wait/unpack** — the worker spins until every source neighbor has
   posted the current round, gathers the inboxes into a ghost-cell
   array, and evaluates the cut faces,
5. **accumulate** — all buffered contributions are added in the exact
   order of the monolithic operator, and the owned slice of the result
   vector is written to the shared output buffer.

Bitwise reproducibility (the contract the parallel test battery
enforces): every kernel in the vmult path is either elementwise, a
small-extent einsum evaluated term-by-term per entry, or a
sum-factorized GEMM whose fold rows each belong to a single cell/face
entry — in float64, evaluating a *row subset* produces
bitwise-identical rows as long as the fold has >= 2 rows, which
:func:`_padded` guarantees by duplicating the single entry of 1-face
subsets (dgemm falls into a differently-rounded gemv path at one row).
Within one face batch and side a cell appears at most once, so the
owner's split of a batch into fully-owned and cut entries accumulates
each output element with exactly the same addends, in the same order,
as the monolithic
:meth:`~repro.core.operators.laplace.DGLaplaceOperator._vmult_impl`.
Distributed fp64 results are therefore bit-identical to single-process
runs, not merely close.  float32 is different: OpenBLAS sgemm
row-blocking makes subset rows round differently from full-batch rows
(~1e-7 relative), so the fp32 contract is tolerance (1e-5), not bits —
and :class:`DistributedSolverContext` keeps the fp32 fine-level
smoother serial by default to preserve the fp64 bitwise contract of
the outer iteration.

Limits: Linux-only (``fork`` start method and ``/dev/shm``); one
outstanding mat-vec at a time (the solvers are sequential in their
operator applications anyway); workers inherit the registered operators
copy-on-write at :meth:`WorkerPool.start`, so register every operator
before starting the pool.
"""

from __future__ import annotations

import atexit
import itertools
import os
import time
from dataclasses import dataclass, field
from multiprocessing import get_context, get_all_start_methods
from multiprocessing import shared_memory

import numpy as np

from ..core.operators.base import MatrixFreeOperator, physical_gradient
from ..core.plans import contract
from ..telemetry import TRACER
from ..telemetry.metrics import METRICS, merge_snapshots, snapshot_doc
from ..telemetry.timeline import PHASE_ID, TimelineRing, merge_timeline
from .distributed import ExchangeCensus
from .partition import partition_forest

_POOL_VMULTS = METRICS.counter(
    "repro_parallel_pool_vmults_total",
    "distributed mat-vecs dispatched by the worker pool",
    labels=("operator",),
)
_POOL_CRASHES = METRICS.counter(
    "repro_parallel_worker_crashes_total",
    "worker failures detected by the pool",
)
_WORKER_VMULTS = METRICS.counter(
    "repro_parallel_worker_vmults_total",
    "mat-vec shares executed by this worker process",
)
_WORKER_PHASE_SECONDS = METRICS.counter(
    "repro_parallel_worker_phase_seconds_total",
    "wall time of this worker's vmult shares by protocol phase",
    labels=("phase",),
)
_WORKER_WAIT_SPINS = METRICS.histogram(
    "repro_parallel_ghost_wait_spins",
    "spin iterations in the ghost-exchange wait loop per source rank "
    "(a growing tail is the leading indicator of 'ghost exchange "
    "stalled waiting for rank N')",
    buckets=(0.0, 1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6),
    labels=("src",),
)

#: exit code of an injected worker crash — the same code the hidden
#: ``repro lung --crash-after-step`` fault hook uses
CRASH_EXIT_CODE = 137

_PHASES = ("pack", "post", "interior", "wait", "cut", "accumulate")

# timeline-event ids hoisted to module constants (the recording sites
# sit on the allocation-free hot path)
_PACK_ID = PHASE_ID["pack"]
_POST_ID = PHASE_ID["post"]
_INTERIOR_ID = PHASE_ID["interior"]
_WAIT_ID = PHASE_ID["wait"]
_CUT_ID = PHASE_ID["cut"]
_ACCUM_ID = PHASE_ID["accumulate"]
_SEND_ID = PHASE_ID["send"]
_UNPACK_ID = PHASE_ID["unpack"]

#: worker->master clock-offset handshake probes at pool startup; the
#: best (lowest-RTT) sample wins and half its RTT bounds the offset
#: error (the "clock-offset tolerance" TESTING.md documents)
_CLOCK_PROBES = 7


class WorkerCrash(RuntimeError):
    """A worker process died (or errored) during a pool operation.

    The pool tears itself down before raising: every worker is
    terminated and every shared-memory segment is unlinked, so a caller
    catching this exception holds no leaked ``/dev/shm`` handles.
    """

    def __init__(self, rank: int, message: str, exitcode=None) -> None:
        super().__init__(message)
        self.rank = rank
        self.exitcode = exitcode


# ----------------------------------------------------------------------
# partition plan
# ----------------------------------------------------------------------

@dataclass
class _RankPlan:
    """Everything one worker needs to know about its share."""

    rank: int
    lo: int  # owned cells are the Morton-contiguous range [lo, hi)
    hi: int
    #: per interior batch: entry indices where this rank owns both cells
    loc: list = field(default_factory=list)
    #: per interior batch: (entries, far-ghost slots) where only the
    #: minus cell is owned (the plus cell arrives via the exchange)
    cut_m: list = field(default_factory=list)
    #: per interior batch: (entries, far-ghost slots) where only the
    #: plus cell is owned
    cut_p: list = field(default_factory=list)
    #: per boundary batch: entry indices whose cell this rank owns
    bdry: list = field(default_factory=list)
    #: sorted global ids of the ghost cells this rank receives
    ghosts: np.ndarray | None = None
    #: source rank -> slots into ``ghosts`` its payload fills
    recv: dict = field(default_factory=dict)
    #: destination rank -> owned-local cell indices to pack for it
    send: dict = field(default_factory=dict)

    @property
    def n_cells(self) -> int:
        return self.hi - self.lo


class PartitionPlan:
    """Morton partition of an operator's mesh plus the derived ghost
    exchange: who owns which cells, which face-batch entries each rank
    computes (fully-owned vs. cut), and the per-rank-pair payloads.

    The cut-entry census is computed identically to
    :class:`~repro.parallel.partition.SimulatedGhostExchange`, and
    :meth:`census` reports messages/sheets/bytes with the same
    conventions as
    :class:`~repro.parallel.distributed.DistributedDGLaplace` — the
    parity the parallel test battery asserts.
    """

    def __init__(self, op, n_workers: int, weights=None) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        conn = op.conn
        self.n_workers = int(n_workers)
        self.ranks = partition_forest(op.geo.forest, n_workers, weights=weights)
        if np.any(np.diff(self.ranks) < 0):
            raise ValueError("partition_forest must assign Morton-contiguous ranks")
        self.n1 = op.kern.n_dofs_1d
        self.npc = self.n1 ** 3
        self.n_cells = op.dof.n_cells
        self.n_dofs = op.dof.n_dofs
        self._sheet_bytes = 2 * self.n1 * self.n1 * 8
        ids = np.arange(n_workers)
        lo = np.searchsorted(self.ranks, ids, side="left")
        hi = np.searchsorted(self.ranks, ids, side="right")
        plans = [_RankPlan(rank=r, lo=int(lo[r]), hi=int(hi[r]))
                 for r in range(n_workers)]

        self.cut_entries: list[tuple[int, np.ndarray]] = []
        self.pairs: set[tuple[int, int]] = set()
        self.n_cut_faces = 0
        ghost_far: list[list] = [[] for _ in range(n_workers)]  # (kind, ib, cells)
        for ib, batch in enumerate(conn.interior):
            rm = self.ranks[batch.cells_m]
            rp = self.ranks[batch.cells_p]
            cut = np.nonzero(rm != rp)[0]
            if cut.size:
                self.cut_entries.append((ib, cut))
                self.n_cut_faces += int(cut.size)
                for s, d in zip(rm[cut], rp[cut]):
                    self.pairs.add((int(s), int(d)))
                    self.pairs.add((int(d), int(s)))
            for rp_ in plans:
                r = rp_.rank
                em = rm == r
                ep = rp == r
                rp_.loc.append(np.nonzero(em & ep)[0])
                cm = np.nonzero(em & ~ep)[0]
                cp = np.nonzero(ep & ~em)[0]
                rp_.cut_m.append((cm, batch.cells_p[cm]))
                rp_.cut_p.append((cp, batch.cells_m[cp]))
                if cm.size:
                    ghost_far[r].append(batch.cells_p[cm])
                if cp.size:
                    ghost_far[r].append(batch.cells_m[cp])
        for ib, batch in enumerate(conn.boundary):
            rb = self.ranks[batch.cells]
            for rp_ in plans:
                rp_.bdry.append(np.nonzero(rb == rp_.rank)[0])

        for rp_ in plans:
            r = rp_.rank
            ghosts = (np.unique(np.concatenate(ghost_far[r]))
                      if ghost_far[r] else np.empty(0, dtype=np.intp))
            rp_.ghosts = ghosts
            # far-cell arrays -> slots into the ghost array
            rp_.cut_m = [(idx, np.searchsorted(ghosts, far))
                         for idx, far in rp_.cut_m]
            rp_.cut_p = [(idx, np.searchsorted(ghosts, far))
                         for idx, far in rp_.cut_p]
            # split the ghosts by owner (ownership ranges are contiguous)
            for s in range(n_workers):
                if s == r:
                    continue
                mask = (ghosts >= lo[s]) & (ghosts < hi[s])
                if mask.any():
                    rp_.recv[s] = np.nonzero(mask)[0]
        for rp_ in plans:
            for s, slots in rp_.recv.items():
                # what r receives from s is what s packs for r
                plans[s].send[rp_.rank] = rp_.ghosts[slots] - plans[s].lo
        self.rank_plans = plans

    def census(self) -> ExchangeCensus:
        """Message accounting with the :class:`DistributedDGLaplace`
        conventions: one message per ordered neighbor pair, two trace
        sheets (value + normal derivative) per cut face and direction."""
        return ExchangeCensus(
            n_messages=len(self.pairs),
            n_sheets=2 * self.n_cut_faces,
            bytes_total=2 * self.n_cut_faces * self._sheet_bytes,
            pairs=set(self.pairs),
        )

    def payload_bytes(self, itemsize: int = 8) -> int:
        """Bytes actually shipped per exchange round by this runtime
        (full nodal ghost-cell tensors, unlike the minimal trace sheets
        of the census model)."""
        total = sum(int(rp.ghosts.size) for rp in self.rank_plans)
        return total * self.npc * itemsize

    def rank_exchange_bytes(self, itemsize: int = 8) -> dict:
        """Per-rank bytes moved per exchange round,
        ``{rank: {"send": ..., "recv": ...}}`` — the denominator data of
        the per-rank achieved-bandwidth rows in the timeline analysis
        (:func:`repro.telemetry.timeline.analyze_timeline`)."""
        cell = self.npc * itemsize
        return {
            rp.rank: {
                "send": sum(int(idx.size) for idx in rp.send.values()) * cell,
                "recv": int(rp.ghosts.size) * cell,
            }
            for rp in self.rank_plans
        }


# ----------------------------------------------------------------------
# rank-local operator
# ----------------------------------------------------------------------

def _padded(idx: np.ndarray, batch_size: int) -> tuple[np.ndarray, int]:
    """Pad a 1-entry face subset to 2 entries by duplicating it.

    The face-trace kernels fold one GEMM row per face; a single-row
    product takes BLAS's gemv-like path whose rounding differs from the
    >= 2-row kernels, so a 1-face subset of a larger batch would break
    the bitwise contract.  Duplicating the entry restores a >= 2-row
    product — whose per-row results are independent of the other rows —
    and the caller drops the duplicate.  A batch that has only one face
    *in total* is evaluated unpadded, reproducing the monolithic
    single-row path exactly.
    """
    if idx.size == 1 and batch_size > 1:
        return np.concatenate([idx, idx]), 1
    return idx, int(idx.size)


class _FaceWork:
    """Precomputed subset of one interior face batch: the metric rows,
    penalties, and cell indices of the entries this rank evaluates."""

    __slots__ = ("ib", "face_m", "face_p", "orientation", "subface",
                 "normal", "jxw", "tau", "jt_m", "jt_p", "jtc_m", "jtc_p",
                 "m_local", "p_local", "m_slots", "p_slots", "take")

    def __init__(self, ib, batch, fm, tau, idx, lo,
                 m_owned, p_owned, m_slots=None, p_slots=None):
        self.ib = ib
        self.face_m = batch.face_m
        self.face_p = batch.face_p
        self.orientation = batch.orientation
        self.subface = batch.subface
        pidx, self.take = _padded(idx, batch.cells_m.size)
        pad = pidx.size != idx.size
        self.normal = fm.normal[pidx]
        self.jxw = fm.jxw[pidx]
        self.tau = tau[pidx]
        self.jt_m = fm.minus.jinv_t[pidx]
        self.jt_p = fm.plus.jinv_t[pidx]
        self.jtc_m = np.ascontiguousarray(fm.minus.jinv_t_c[pidx])
        self.jtc_p = np.ascontiguousarray(fm.plus.jinv_t_c[pidx])
        # padded gather indices; scatters use the first ``take`` entries
        self.m_local = batch.cells_m[pidx] - lo if m_owned else None
        self.p_local = batch.cells_p[pidx] - lo if p_owned else None
        self.m_slots = (None if m_slots is None
                        else (np.concatenate([m_slots, m_slots]) if pad
                              else m_slots))
        self.p_slots = (None if p_slots is None
                        else (np.concatenate([p_slots, p_slots]) if pad
                              else p_slots))


class _BdryWork:
    """Owned subset of one (Dirichlet) boundary face batch."""

    __slots__ = ("ib", "face", "normal", "jxw", "tau", "jt", "jtc",
                 "cells", "take")

    def __init__(self, ib, batch, fm, tau, idx, lo):
        self.ib = ib
        self.face = batch.face
        pidx, self.take = _padded(idx, batch.cells.size)
        self.normal = fm.normal[pidx]
        self.jxw = fm.jxw[pidx]
        self.tau = tau[pidx]
        self.jt = fm.minus.jinv_t[pidx]
        self.jtc = np.ascontiguousarray(fm.minus.jinv_t_c[pidx])
        self.cells = batch.cells[pidx] - lo


class RankLocalOperator:
    """One rank's owner-computes share of a
    :class:`~repro.core.operators.laplace.DGLaplaceOperator` mat-vec.

    Contributions are buffered, then accumulated in the canonical
    monolithic order (cell term; per interior batch minus then plus
    side; boundary batches last) so the owned output slice is bitwise
    identical to the corresponding slice of a single-process ``vmult``.
    """

    def __init__(self, op, plan: PartitionPlan, rank: int) -> None:
        self.op = op
        self.plan = plan
        self.rank = rank
        self.fk = op.fk
        rp = plan.rank_plans[rank]
        self.lo, self.hi = rp.lo, rp.hi
        self.rank_plan = rp
        self._laplace_d = op.cell_metrics.laplace_d[rp.lo:rp.hi]
        self._loc_work: list[_FaceWork] = []
        self._cut_work: list[_FaceWork] = []
        for ib, (batch, fm, tau) in enumerate(
            zip(op.conn.interior, op.face_metrics, op.tau)
        ):
            idx = rp.loc[ib]
            if idx.size:
                self._loc_work.append(_FaceWork(
                    ib, batch, fm, tau, idx, rp.lo,
                    m_owned=True, p_owned=True,
                ))
            idx, slots = rp.cut_m[ib]
            if idx.size:
                self._cut_work.append(_FaceWork(
                    ib, batch, fm, tau, idx, rp.lo,
                    m_owned=True, p_owned=False, p_slots=slots,
                ))
            idx, slots = rp.cut_p[ib]
            if idx.size:
                self._cut_work.append(_FaceWork(
                    ib, batch, fm, tau, idx, rp.lo,
                    m_owned=False, p_owned=True, m_slots=slots,
                ))
        self._bdry_work: list[_BdryWork] = []
        for ib, (batch, fm, tau) in enumerate(
            zip(op.conn.boundary, op.bdry_metrics, op.tau_b)
        ):
            if batch.boundary_id not in op.dirichlet_ids:
                continue
            idx = rp.bdry[ib]
            if idx.size:
                self._bdry_work.append(_BdryWork(ib, batch, fm, tau, idx, rp.lo))

    # -- phases --------------------------------------------------------
    def _cell_term(self, u: np.ndarray, ensemble: bool) -> np.ndarray:
        if self._laplace_d.shape[0] == 0:
            dt = np.result_type(self._laplace_d.dtype, u.dtype)
            return np.zeros(u.shape, dtype=dt)
        sub = "cijzyx,ecjzyx->ecizyx" if ensemble else "cijzyx,cjzyx->cizyx"
        g = self.op.kern.gradients(u)
        if self.op.use_plans:
            Dg = contract(sub, self._laplace_d, g)
        else:
            Dg = np.einsum(sub, self._laplace_d, g, optimize=True)
        return self.op.kern.integrate_gradients(Dg)

    def _face_terms(self, w: _FaceWork, u, ug, ensemble: bool):
        """Evaluate one face-work item; yields the owned-side buffered
        contributions as ``(sort_key, local_cells, contrib)``."""
        op, fk = self.op, self.fk
        um = (u[..., w.m_local, :, :, :] if w.m_local is not None
              else ug[..., w.m_slots, :, :, :])
        up = (u[..., w.p_local, :, :, :] if w.p_local is not None
              else ug[..., w.p_slots, :, :, :])
        vm, gm = fk.eval_side(um, w.face_m)
        vp, gp = fk.eval_side(up, w.face_p, w.orientation, w.subface)
        Gm = physical_gradient(w.jt_m, gm, planned=op.use_plans, ensemble=ensemble)
        Gp = physical_gradient(w.jt_p, gp, planned=op.use_plans, ensemble=ensemble)
        rv_m, rg_m, rv_p, rg_p = op._face_flux(w, w.tau, vm, Gm, vp, Gp)
        cut = ((slice(None), slice(None, w.take)) if ensemble
               else slice(None, w.take))
        out = []
        if w.m_local is not None:
            contrib = fk.integrate_side(
                w.face_m, rv_m, op._to_ref_grad(w.jtc_m, rg_m)
            )
            out.append(((0, w.ib, 0), w.m_local[:w.take], contrib[cut]))
        if w.p_local is not None:
            contrib = fk.integrate_side(
                w.face_p, rv_p, op._to_ref_grad(w.jtc_p, rg_p),
                w.orientation, w.subface,
            )
            out.append(((0, w.ib, 1), w.p_local[:w.take], contrib[cut]))
        return out

    def _bdry_terms(self, w: _BdryWork, u, ensemble: bool):
        op, fk = self.op, self.fk
        um = u[..., w.cells, :, :, :]
        vm, gm = fk.eval_side(um, w.face)
        Gm = physical_gradient(w.jt, gm, planned=op.use_plans, ensemble=ensemble)
        sub = "fiab,efiab->efab" if ensemble else "fiab,fiab->fab"
        dn_m = op._contract(sub, w.normal, Gm)
        jxw = w.jxw
        rv = (-dn_m + 2.0 * w.tau[:, None, None] * vm) * jxw
        rg_phys = (-vm * jxw)[..., None, :, :] * w.normal
        contrib = fk.integrate_side(w.face, rv, op._to_ref_grad(w.jtc, rg_phys))
        cut = ((slice(None), slice(None, w.take)) if ensemble
               else slice(None, w.take))
        return ((1, w.ib, 0), w.cells[:w.take], contrib[cut])

    def interior_contribs(self, u: np.ndarray, ensemble: bool):
        """Cell term plus every contribution that needs no ghost data
        (fully-owned interior faces, owned boundary faces)."""
        base = self._cell_term(u, ensemble)
        pend = []
        for w in self._loc_work:
            pend.extend(self._face_terms(w, u, None, ensemble))
        for w in self._bdry_work:
            pend.append(self._bdry_terms(w, u, ensemble))
        return base, pend

    def cut_contribs(self, u: np.ndarray, ug: np.ndarray, ensemble: bool):
        """Owned-side contributions of the partition-crossing faces."""
        pend = []
        for w in self._cut_work:
            pend.extend(self._face_terms(w, u, ug, ensemble))
        return pend

    def accumulate(self, base, pend, ensemble: bool):
        """Fold the buffered contributions into ``base`` in canonical
        order: interior batches ascending, minus before plus side,
        boundary batches last — the monolithic accumulation order.
        (Within one batch and side the owned cell sets of the local and
        cut subsets are disjoint, so their relative order is
        immaterial per output element.)"""
        for _key, cells, contrib in sorted(pend, key=lambda t: t[0]):
            if ensemble:
                base[:, cells] += contrib
            else:
                base[cells] += contrib
        return base

    def pack(self, u: np.ndarray, dst: int) -> np.ndarray:
        """Ghost-cell payload (owned nodal tensors) for rank ``dst``."""
        return u[..., self.rank_plan.send[dst], :, :, :]

    def apply(self, u: np.ndarray, ug, ensemble: bool) -> np.ndarray:
        """Full owned share in one call (test/serial entry point)."""
        base, pend = self.interior_contribs(u, ensemble)
        if ug is not None:
            pend.extend(self.cut_contribs(u, ug, ensemble))
        return self.accumulate(base, pend, ensemble)


class InProcessGhostRuntime:
    """All ranks evaluated sequentially in one process.

    The reference implementation of the runtime protocol: the parallel
    correctness battery checks it bitwise against the monolithic
    operator, and the multi-process pool against it.
    """

    def __init__(self, op, n_workers: int, weights=None) -> None:
        self.op = op
        self.plan = PartitionPlan(op, n_workers, weights=weights)
        self.locals = [RankLocalOperator(op, self.plan, r)
                       for r in range(self.plan.n_workers)]

    def vmult(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim == 2 and x.shape[0] == 1:
            return self.vmult(x[0])[None]
        ensemble = x.ndim == 2
        plan = self.plan
        n1 = plan.n1
        u_all = x.reshape(x.shape[:-1] + (plan.n_cells, n1, n1, n1))
        mailbox = {}
        for rlo in self.locals:
            u = u_all[..., rlo.lo:rlo.hi, :, :, :]
            for dst in rlo.rank_plan.send:
                mailbox[(rlo.rank, dst)] = rlo.pack(u, dst)
        y = None
        for rlo in self.locals:
            rp = rlo.rank_plan
            u = u_all[..., rlo.lo:rlo.hi, :, :, :]
            ug = np.empty(x.shape[:-1] + (rp.ghosts.size, n1, n1, n1),
                          dtype=x.dtype)
            for src, slots in rp.recv.items():
                ug[..., slots, :, :, :] = mailbox[(src, rlo.rank)]
            y_own = rlo.apply(u, ug, ensemble)
            if y is None:
                y = np.empty(x.shape[:-1] + (plan.n_dofs,), dtype=y_own.dtype)
            npc = plan.npc
            y[..., rlo.lo * npc:rlo.hi * npc] = \
                y_own.reshape(y_own.shape[:-4] + (-1,))
        return y


# ----------------------------------------------------------------------
# worker pool
# ----------------------------------------------------------------------

_pool_ids = itertools.count()


def _shm_create(name: str, nbytes: int) -> shared_memory.SharedMemory:
    return shared_memory.SharedMemory(name=name, create=True,
                                      size=max(1, int(nbytes)))


class _Session:
    """Master-side record of one (dtype, ensemble-lead) buffer set."""

    __slots__ = ("sid", "xdt", "ydt", "lead", "x", "y")

    def __init__(self, sid, xdt, ydt, lead, x, y):
        self.sid = sid
        self.xdt = xdt
        self.ydt = ydt
        self.lead = lead
        self.x = x
        self.y = y


class WorkerPool:
    """Persistent pool of worker processes sharing one partition plan.

    Register every operator (by tag) before :meth:`start`; the workers
    inherit them copy-on-write through ``fork``.  One mat-vec round:
    the master writes the input vector into a shared buffer, broadcasts
    a command over per-worker pipes, and the workers run the
    pack/post/interior/wait/cut protocol against shared-memory inboxes
    before writing their owned output slices.

    Cleanup invariant: :meth:`close` (also registered via ``atexit``
    and triggered by any detected worker failure) terminates the
    workers and **unlinks every shared-memory segment** — a healthy or
    crashed pool never leaks ``/dev/shm`` handles.
    """

    def __init__(self, n_workers: int, *, weights=None,
                 timeout: float = 300.0, trace_timeline: bool = False,
                 timeline_capacity: int = 65536) -> None:
        if n_workers < 2:
            raise ValueError("WorkerPool needs >= 2 workers; use the "
                             "operator directly for serial execution")
        if "fork" not in get_all_start_methods():
            raise RuntimeError("WorkerPool requires the fork start method")
        self.n_workers = int(n_workers)
        self.timeout = float(timeout)
        self._weights = weights
        self._ops: dict[str, object] = {}
        self._plan: PartitionPlan | None = None
        self._procs: list = []
        self._pipes: list = []
        self._segments: list[shared_memory.SharedMemory] = []
        self._sessions: dict[tuple, _Session] = {}
        self._next_sid = 0
        self._round = 0
        self._closed = False
        self._seq = None
        self.last_timings: list[dict] = []
        #: cumulative per-rank phase seconds over the pool's lifetime
        #: (always maintained — it is 7 float adds per round)
        self.phase_totals: list[dict] = [dict() for _ in range(self.n_workers)]
        self.trace_timeline = bool(trace_timeline)
        self.timeline_capacity = int(timeline_capacity)
        self._tl_rings: list[TimelineRing] = []
        self._tl_cursors: list[int] = []
        self._tl_chunks: dict[int, list] = {}
        self.timeline_dropped = 0
        #: per-rank worker-clock minus master-clock offsets (handshake
        #: estimate; subtracted when merging timelines) and the half-RTT
        #: uncertainty of each estimate
        self.clock_offsets: dict[int, float] = {}
        self.clock_rtts: dict[int, float] = {}
        self.shm_prefix = f"repro{os.getpid()}p{next(_pool_ids)}"

    # -- lifecycle -----------------------------------------------------
    def register(self, tag: str, op) -> None:
        if self._procs:
            raise RuntimeError("register() must be called before start()")
        if self._ops:
            first = next(iter(self._ops.values()))
            if op.conn is not first.conn or op.dof.n_cells != first.dof.n_cells:
                raise ValueError(
                    "all registered operators must share one mesh/connectivity"
                )
        self._ops[tag] = op

    def start(self) -> "WorkerPool":
        if self._procs:
            raise RuntimeError("pool already started")
        if not self._ops:
            raise RuntimeError("no operators registered")
        first = next(iter(self._ops.values()))
        self._plan = PartitionPlan(first, self.n_workers, weights=self._weights)
        seq = _shm_create(f"{self.shm_prefix}-seq", 8 * self.n_workers)
        self._segments.append(seq)
        self._seq = np.ndarray((self.n_workers,), dtype=np.int64, buffer=seq.buf)
        self._seq[:] = 0
        if self.trace_timeline:
            nbytes = TimelineRing.nbytes(self.timeline_capacity)
            for r in range(self.n_workers):
                seg = _shm_create(f"{self.shm_prefix}-tl{r}", nbytes)
                self._segments.append(seg)
                ring = TimelineRing(seg.buf)
                ring.clear()
                self._tl_rings.append(ring)
                self._tl_cursors.append(0)
                self._tl_chunks[r] = []
        ctx = get_context("fork")
        for r in range(self.n_workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(r, child, self._ops, self._plan, self.shm_prefix,
                      self.trace_timeline),
                name=f"repro-worker-{r}",
                daemon=True,
            )
            proc.start()
            child.close()
            self._procs.append(proc)
            self._pipes.append(parent)
        atexit.register(self.close)
        if self.trace_timeline:
            self._clock_sync()
        return self

    def _clock_sync(self, probes: int = _CLOCK_PROBES) -> None:
        """Ping-pong each worker and keep the lowest-RTT sample: the
        offset estimate is ``t_worker - midpoint(send, recv)`` and its
        error is bounded by half that RTT.  (With ``fork`` on Linux all
        processes share ``CLOCK_MONOTONIC``, so the offsets are pure
        handshake noise — the handshake exists so the merge logic is
        already correct for transports whose clocks genuinely differ.)"""
        for r in range(self.n_workers):
            best_rtt = float("inf")
            offset = 0.0
            for _ in range(probes):
                t0 = time.perf_counter()
                reply = self._command(r, ("clock",))
                t1 = time.perf_counter()
                rtt = t1 - t0
                if rtt < best_rtt:
                    best_rtt = rtt
                    offset = reply[2] - 0.5 * (t0 + t1)
            self.clock_offsets[r] = offset
            self.clock_rtts[r] = best_rtt

    @property
    def plan(self) -> PartitionPlan:
        if self._plan is None:
            raise RuntimeError("pool not started")
        return self._plan

    def census(self) -> ExchangeCensus:
        return self.plan.census()

    def __enter__(self) -> "WorkerPool":
        if not self._procs:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- mat-vec -------------------------------------------------------
    def vmult(self, tag: str, x: np.ndarray) -> np.ndarray:
        if self._closed:
            raise RuntimeError("pool is closed")
        op = self._ops[tag]
        x = np.asarray(x)
        if x.ndim == 2 and x.shape[0] == 1:
            # E = 1 runs the unbatched path, mirroring the monolithic
            # operator's bitwise-stable ensemble routing
            return self.vmult(tag, x[0])[None]
        lead = x.shape[0] if x.ndim == 2 else 0
        ydt = np.result_type(np.dtype(op.dtype), x.dtype)
        sess = self._session(x.dtype, ydt, lead)
        sess.x[...] = x
        self._round += 1
        _POOL_VMULTS.labels(tag).inc()
        self._broadcast(("vmult", tag, self._round, sess.sid,
                         sess.xdt.name, sess.ydt.name, lead))
        self._gather_done()
        for r, t in enumerate(self.last_timings):
            if t:
                tot = self.phase_totals[r]
                for phase, sec in t.items():
                    tot[phase] = tot.get(phase, 0.0) + sec
        if self._tl_rings:
            self._drain_timeline()
        if TRACER.enabled:
            self._tracer_attach()
        return np.array(sess.y, copy=True)

    def _drain_timeline(self) -> None:
        """Copy the events each worker recorded since the last drain out
        of its ring (the workers are quiescent between rounds, so the
        single-writer rings are safe to read)."""
        for r, ring in enumerate(self._tl_rings):
            events, cursor, dropped = ring.drain(self._tl_cursors[r])
            self._tl_cursors[r] = cursor
            self.timeline_dropped += dropped
            if events.size:
                self._tl_chunks[r].append(events)

    def _tracer_attach(self) -> None:
        """Attach this round's worker timings as rank-tagged sub-spans
        under the currently open tracer span.

        The per-rank nodes run *concurrently*, so the ``workers`` node
        carries the round's wall footprint (the max over ranks) while
        its rank children carry each rank's full phase breakdown —
        exclusive time of the ``workers`` node is therefore not
        meaningful, but the enclosing solver span stays consistent."""
        timings = [t for t in self.last_timings if t]
        if not timings:
            return
        node = TRACER._stack[-1].child("workers")
        node.count += 1
        node.total += max(sum(t.values()) for t in timings)
        for r, t in enumerate(self.last_timings):
            if not t:
                continue
            rn = node.child(f"rank{r}")
            rn.count += 1
            rn.total += sum(t.values())
            for phase in _PHASES:
                if phase in t:
                    pn = rn.child(phase)
                    pn.count += 1
                    pn.total += t[phase]

    # -- timeline ------------------------------------------------------
    def timeline_events(self) -> list[dict]:
        """The merged global timeline (master clock, rebased to t=0) of
        everything drained so far; see
        :func:`repro.telemetry.timeline.merge_timeline`."""
        return merge_timeline(self._tl_chunks, self.clock_offsets)

    def worker_phase_totals(self) -> dict:
        """Cumulative per-rank phase seconds,
        ``{"0": {"pack": ..., ...}, ...}`` (JSON-friendly string keys) —
        what run logs embed so ``repro monitor`` can render a
        per-worker phase breakdown mid-flight."""
        return {str(r): dict(tot)
                for r, tot in enumerate(self.phase_totals) if tot}

    def rank_exchange_bytes(self) -> dict:
        """Per-rank exchange payload bytes per round for the registered
        fine operator's dtype."""
        op = next(iter(self._ops.values()))
        itemsize = np.dtype(op.dtype).itemsize
        return self.plan.rank_exchange_bytes(itemsize)

    def _session(self, xdt, ydt, lead: int) -> _Session:
        xdt = np.dtype(xdt)
        ydt = np.dtype(ydt)
        key = (xdt.name, ydt.name, lead)
        sess = self._sessions.get(key)
        if sess is not None:
            return sess
        sid = self._next_sid
        self._next_sid += 1
        plan = self.plan
        shape = (lead, plan.n_dofs) if lead else (plan.n_dofs,)
        names = _session_names(self.shm_prefix, sid, plan, lead)
        xseg = _shm_create(names["x"], int(np.prod(shape)) * xdt.itemsize)
        yseg = _shm_create(names["y"], int(np.prod(shape)) * ydt.itemsize)
        self._segments += [xseg, yseg]
        for (s, d), (name, shp) in names["out"].items():
            seg = _shm_create(name, int(np.prod(shp)) * xdt.itemsize)
            self._segments.append(seg)
        sess = _Session(
            sid, xdt, ydt, lead,
            np.ndarray(shape, dtype=xdt, buffer=xseg.buf),
            np.ndarray(shape, dtype=ydt, buffer=yseg.buf),
        )
        self._sessions[key] = sess
        return sess

    # -- fault handling ------------------------------------------------
    def _broadcast(self, msg) -> None:
        for r, pipe in enumerate(self._pipes):
            try:
                pipe.send(msg)
            except (BrokenPipeError, OSError):
                self._fail(WorkerCrash(
                    r, f"worker {r} pipe is broken (worker died?)",
                    self._procs[r].exitcode,
                ))

    def _gather_done(self) -> None:
        self.last_timings = [None] * self.n_workers
        pending = set(range(self.n_workers))
        deadline = time.monotonic() + self.timeout
        while pending:
            for r in sorted(pending):
                pipe, proc = self._pipes[r], self._procs[r]
                got = False
                try:
                    got = pipe.poll(0.002)
                    if got:
                        reply = pipe.recv()
                except (EOFError, OSError):
                    proc.join(timeout=5.0)  # harvest the exit code
                    self._fail(WorkerCrash(
                        r, f"worker {r} hung up mid-solve", proc.exitcode))
                if got:
                    if reply[0] == "error":
                        self._fail(WorkerCrash(
                            r, f"worker {r} failed: {reply[1]}"))
                    self.last_timings[r] = reply[2]
                    pending.discard(r)
                elif not proc.is_alive():
                    self._fail(WorkerCrash(
                        r,
                        f"worker {r} died mid-solve "
                        f"(exit code {proc.exitcode})",
                        proc.exitcode,
                    ))
            if time.monotonic() > deadline:
                self._fail(WorkerCrash(-1, "pool timed out waiting for workers"))

    def _fail(self, exc: WorkerCrash):
        _POOL_CRASHES.inc()
        self._teardown(graceful=False)
        raise exc

    def inject_crash(self, rank: int, when: str = "after_post") -> None:
        """Arm a fault in one worker: its next vmult share calls
        ``os._exit(137)`` at the requested protocol point (the
        ``--crash-after-step`` pattern, one layer down)."""
        if when not in ("before_post", "after_post"):
            raise ValueError(f"unknown crash point {when!r}")
        self._command(rank, ("crash", when))

    # -- worker metrics ------------------------------------------------
    def enable_worker_metrics(self) -> None:
        """Reset and enable the metric registries inside every worker."""
        for r in range(self.n_workers):
            self._command(r, ("metrics_on",))

    def collect_worker_metrics(self) -> dict:
        """Merged snapshot of the per-worker registries (associative
        :func:`~repro.telemetry.metrics.merge_snapshots` reduction)."""
        docs = [self._command(r, ("metrics_doc",))[1]
                for r in range(self.n_workers)]
        return merge_snapshots(docs)

    def _command(self, rank: int, msg):
        try:
            self._pipes[rank].send(msg)
            return self._pipes[rank].recv()
        except (BrokenPipeError, EOFError, OSError):
            self._fail(WorkerCrash(
                rank, f"worker {rank} unreachable",
                self._procs[rank].exitcode,
            ))

    # -- shutdown ------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and unlink every shared-memory segment."""
        self._teardown(graceful=True)

    def _teardown(self, graceful: bool) -> None:
        if self._closed:
            return
        self._closed = True
        if graceful:
            for pipe in self._pipes:
                try:
                    pipe.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            for proc in self._procs:
                proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for pipe in self._pipes:
            try:
                pipe.close()
            except OSError:
                pass
        for seg in self._segments:
            try:
                seg.close()
            except OSError:
                pass
            try:
                seg.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()
        self._sessions.clear()
        try:
            atexit.unregister(self.close)
        except Exception:
            pass


def _session_names(prefix: str, sid: int, plan: PartitionPlan, lead: int):
    """Deterministic segment names shared by master and workers."""
    out = {}
    for rp in plan.rank_plans:
        for dst, idx in rp.send.items():
            shape = ((lead,) if lead else ()) + (idx.size,) + (plan.n1,) * 3
            out[(rp.rank, dst)] = (f"{prefix}-s{sid}-ob{rp.rank}to{dst}", shape)
    return {"x": f"{prefix}-s{sid}-x", "y": f"{prefix}-s{sid}-y", "out": out}


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------

class _WorkerState:
    def __init__(self, rank, ops, plan, prefix, trace=False):
        self.rank = rank
        self.plan = plan
        self.prefix = prefix
        self.locals = {tag: RankLocalOperator(op, plan, rank)
                       for tag, op in ops.items()}
        seq_seg = shared_memory.SharedMemory(name=f"{prefix}-seq")
        self._segs = [seq_seg]
        self.seq = np.ndarray((plan.n_workers,), dtype=np.int64,
                              buffer=seq_seg.buf)
        self.ring: TimelineRing | None = None
        if trace:
            tl_seg = shared_memory.SharedMemory(name=f"{prefix}-tl{rank}")
            self._segs.append(tl_seg)
            self.ring = TimelineRing(tl_seg.buf)
        self.sessions: dict[int, dict] = {}
        self.crash: str | None = None

    def attach_session(self, sid, xdt, ydt, lead):
        sess = self.sessions.get(sid)
        if sess is not None:
            return sess
        plan = self.plan
        xdt, ydt = np.dtype(xdt), np.dtype(ydt)
        shape = (lead, plan.n_dofs) if lead else (plan.n_dofs,)
        names = _session_names(self.prefix, sid, plan, lead)
        xseg = shared_memory.SharedMemory(name=names["x"])
        yseg = shared_memory.SharedMemory(name=names["y"])
        self._segs += [xseg, yseg]
        rp = plan.rank_plans[self.rank]
        out, inbox = {}, {}
        for (s, d), (name, shp) in names["out"].items():
            if s != self.rank and d != self.rank:
                continue
            seg = shared_memory.SharedMemory(name=name)
            self._segs.append(seg)
            arr = np.ndarray(shp, dtype=xdt, buffer=seg.buf)
            if s == self.rank:
                out[d] = arr
            else:
                inbox[s] = arr
        assert set(out) == set(rp.send) and set(inbox) == set(rp.recv)
        sess = {
            "x": np.ndarray(shape, dtype=xdt, buffer=xseg.buf),
            "y": np.ndarray(shape, dtype=ydt, buffer=yseg.buf),
            "out": out,
            "inbox": inbox,
            "lead": lead,
        }
        self.sessions[sid] = sess
        return sess

    def release(self):
        for seg in self._segs:
            try:
                seg.close()
            except OSError:
                pass


def _worker_vmult(state: _WorkerState, tag, rnd, sess) -> dict:
    rlo = state.locals[tag]
    rp = rlo.rank_plan
    plan = state.plan
    lead = sess["lead"]
    ensemble = lead >= 2
    n1 = plan.n1
    ring = state.ring
    times = {}
    t0 = time.perf_counter()
    x = sess["x"]
    sl = slice(rp.lo * plan.npc, rp.hi * plan.npc)
    u = x[..., sl].reshape(x.shape[:-1] + (rp.n_cells, n1, n1, n1))
    for dst in rp.send:
        if ring is not None:
            ts = time.perf_counter()
            sess["out"][dst][...] = rlo.pack(u, dst)
            ring.record(rnd, _SEND_ID, ts, time.perf_counter(), peer=dst)
        else:
            sess["out"][dst][...] = rlo.pack(u, dst)
    if state.crash == "before_post":
        os._exit(CRASH_EXIT_CODE)
    tp = time.perf_counter()
    times["pack"] = tp - t0
    # post: publish this round so neighbors may read the outboxes
    state.seq[state.rank] = rnd
    if state.crash == "after_post":
        os._exit(CRASH_EXIT_CODE)
    t1 = time.perf_counter()
    times["post"] = t1 - tp
    # interior work overlaps the (conceptual) message flight time
    base, pend = rlo.interior_contribs(u, ensemble)
    t2 = time.perf_counter()
    times["interior"] = t2 - t1
    deadline = time.monotonic() + 120.0
    for src in rp.recv:
        spins = 0
        while state.seq[src] < rnd:
            spins += 1
            time.sleep(0 if spins < 1000 else 5e-5)
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"ghost exchange stalled waiting for rank {src}"
                )
        if METRICS.enabled:
            _WORKER_WAIT_SPINS.labels(str(src)).observe(spins)
    t3 = time.perf_counter()
    times["wait"] = t3 - t2
    ug = np.empty(x.shape[:-1] + (rp.ghosts.size, n1, n1, n1), dtype=x.dtype)
    for src, slots in rp.recv.items():
        if ring is not None:
            ts = time.perf_counter()
            ug[..., slots, :, :, :] = sess["inbox"][src]
            ring.record(rnd, _UNPACK_ID, ts, time.perf_counter(), peer=src)
        else:
            ug[..., slots, :, :, :] = sess["inbox"][src]
    pend.extend(rlo.cut_contribs(u, ug, ensemble))
    t4 = time.perf_counter()
    times["cut"] = t4 - t3
    y_own = rlo.accumulate(base, pend, ensemble)
    sess["y"][..., sl] = y_own.reshape(y_own.shape[:-4] + (-1,))
    t5 = time.perf_counter()
    times["accumulate"] = t5 - t4
    # completeness: the six phases are contiguous perf_counter
    # intervals, so they must telescope to the round wall time
    wall = t5 - t0
    if abs(sum(times.values()) - wall) > 1e-9 + 1e-6 * wall:
        raise RuntimeError(
            f"phase accounting incomplete: phases sum to "
            f"{sum(times.values()):.9f} s but the round took {wall:.9f} s"
        )
    if ring is not None:
        ring.record(rnd, _PACK_ID, t0, tp)
        ring.record(rnd, _POST_ID, tp, t1)
        ring.record(rnd, _INTERIOR_ID, t1, t2)
        ring.record(rnd, _WAIT_ID, t2, t3)
        ring.record(rnd, _CUT_ID, t3, t4)
        ring.record(rnd, _ACCUM_ID, t4, t5)
    if METRICS.enabled:
        _WORKER_VMULTS.inc()
        for phase in _PHASES:
            _WORKER_PHASE_SECONDS.labels(phase).inc(times[phase])
    return times


def _worker_main(rank, pipe, ops, plan, prefix, trace=False) -> None:
    state = _WorkerState(rank, ops, plan, prefix, trace)
    # Forked siblings inherit each other's parent-side pipe fds, so a
    # dead master does not deliver EOF here.  Poll with a timeout and
    # watch for re-parenting (getppid changes when the master dies) so
    # orphaned workers always exit and release their shm segments.
    master_pid = os.getppid()
    try:
        while True:
            try:
                if not pipe.poll(1.0):
                    if os.getppid() != master_pid:
                        break
                    continue
                msg = pipe.recv()
            except (EOFError, KeyboardInterrupt):
                break
            kind = msg[0]
            if kind == "stop":
                break
            try:
                if kind == "vmult":
                    _, tag, rnd, sid, xdt, ydt, lead = msg
                    sess = state.attach_session(sid, xdt, ydt, lead)
                    times = _worker_vmult(state, tag, rnd, sess)
                    pipe.send(("done", rank, times))
                elif kind == "crash":
                    state.crash = msg[1]
                    pipe.send(("ok", rank))
                elif kind == "clock":
                    pipe.send(("clock", rank, time.perf_counter()))
                elif kind == "metrics_on":
                    METRICS.reset()
                    METRICS.enable()
                    pipe.send(("ok", rank))
                elif kind == "metrics_doc":
                    pipe.send(("doc", snapshot_doc(
                        METRICS, meta={"worker": rank})))
                else:
                    pipe.send(("error", f"unknown command {kind!r}"))
            except Exception as exc:  # noqa: BLE001 - reported to master
                try:
                    pipe.send(("error", f"{type(exc).__name__}: {exc}"))
                except (BrokenPipeError, OSError):
                    break
    finally:
        state.release()
        try:
            pipe.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# solver integration
# ----------------------------------------------------------------------

class DistributedOperator(MatrixFreeOperator):
    """Drop-in operator front: ``vmult`` dispatches to the pool, while
    setup-time queries (diagonal, work model) delegate to the serial
    operator on the master — they run once, not per iteration."""

    def __init__(self, pool: WorkerPool, tag: str, op) -> None:
        self.pool = pool
        self.tag = tag
        self.serial_op = op
        self.dtype = op.dtype
        self.conn = op.conn
        self.dof = op.dof

    @property
    def n_dofs(self) -> int:
        return self.serial_op.n_dofs

    def vmult(self, x: np.ndarray) -> np.ndarray:
        return self.pool.vmult(self.tag, x)

    def diagonal(self) -> np.ndarray:
        return self.serial_op.diagonal()

    def _build_work_model(self) -> dict:
        return dict(self.serial_op.work_model())


class DistributedSolverContext:
    """Thread a worker pool through an operator and (optionally) its
    multigrid preconditioner.

    ``ctx.operator`` replaces the fp64 operator in the outer Krylov
    iteration.  The distributed fp64 mat-vec is bitwise identical to
    the serial one (canonical accumulation order + padded face-batch
    subsets), so CG iterates — and therefore ``repro poisson
    --workers N`` — reproduce the single-process run exactly.

    When a
    :class:`~repro.solvers.multigrid.HybridMultigridPreconditioner` is
    given and ``distribute_single_precision=True``, its finest (DG)
    level — operator and Chebyshev smoother — is swapped to
    pool-backed fronts as well.  This is *off* by default: BLAS sgemm
    row-blocking makes fp32 face-batch subsets round differently from
    the full batch (~1e-7 relative), so distributing the fp32 smoother
    would perturb the preconditioner and break the fp64 bitwise
    contract of the outer iteration.  The Chebyshev eigenvalue
    estimates and the Jacobi diagonal were computed at preconditioner
    construction and are kept either way.  Exiting the context
    restores the serial objects and closes the pool.
    """

    def __init__(self, op, preconditioner=None, n_workers: int = 2,
                 weights=None, distribute_single_precision: bool = False,
                 trace_timeline: bool = False) -> None:
        self.pool = WorkerPool(n_workers, weights=weights,
                               trace_timeline=trace_timeline)
        self.pool.register("fine", op)
        self._mg = None
        self._saved = None
        mg = preconditioner
        swap_sp = (distribute_single_precision and mg is not None
                   and getattr(mg, "levels", None))
        if swap_sp:
            self.pool.register("fine_sp", mg.levels[0].operator)
        self.pool.start()
        self.operator = DistributedOperator(self.pool, "fine", op)
        if swap_sp:
            lev = mg.levels[0]
            self._mg = mg
            self._saved = (lev.operator, lev.smoother.op)
            fine_sp = DistributedOperator(self.pool, "fine_sp", lev.operator)
            lev.operator = fine_sp
            lev.smoother.op = fine_sp
        self.census = self.pool.census()

    def timeline_events(self) -> list[dict]:
        """Merged master-clock timeline drained from the pool so far."""
        return self.pool.timeline_events()

    def rank_exchange_bytes(self) -> dict:
        return self.pool.rank_exchange_bytes()

    def worker_phase_totals(self) -> dict:
        return self.pool.worker_phase_totals()

    def close(self) -> None:
        if self._mg is not None:
            lev = self._mg.levels[0]
            lev.operator, lev.smoother.op = self._saved
            self._mg = None
        self.pool.close()

    def __enter__(self) -> "DistributedSolverContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
