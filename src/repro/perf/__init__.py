"""Performance accounting: analytic Flop counts of the sum-factorized
kernels, the memory-transfer model of Figure 7, and the throughput
measurement harness."""

from .flops import (
    OperatorFlops,
    cg_laplace_flops,
    chebyshev_iteration_flops,
    flops_apply_1d,
    laplace_flops,
    mults_1d,
)
from .memory import (
    TransferModel,
    arithmetic_intensity,
    laplace_transfer,
    measured_transfer,
)
from .measure import (
    ThroughputResult,
    calibrate_local_machine,
    measure_operator,
    measure_throughput,
)

__all__ = [
    "OperatorFlops",
    "laplace_flops",
    "cg_laplace_flops",
    "chebyshev_iteration_flops",
    "flops_apply_1d",
    "mults_1d",
    "TransferModel",
    "laplace_transfer",
    "measured_transfer",
    "arithmetic_intensity",
    "ThroughputResult",
    "measure_throughput",
    "measure_operator",
    "calibrate_local_machine",
]
