"""Performance accounting: analytic Flop counts of the sum-factorized
kernels, the memory-transfer model of Figure 7, the throughput
measurement harness, span-level roofline attribution, and the benchmark
regression suites behind ``repro bench``."""

from .attribution import (
    MACHINES,
    ROOFLINE_SCHEMA,
    KernelAttribution,
    collect_attribution,
    render_roofline,
    roofline_doc,
    subtree_attribution,
)
from .bench import (
    BENCH_SCHEMA,
    SUITES,
    compare_bench,
    load_bench,
    machine_fingerprint,
    migrate_bench_doc,
    render_bench,
    render_compare,
    run_suite,
)
from .flops import (
    OperatorFlops,
    cg_laplace_flops,
    chebyshev_iteration_flops,
    flops_apply_1d,
    inverse_mass_flops,
    laplace_flops,
    mass_flops,
    mults_1d,
)
from .memory import (
    TransferModel,
    arithmetic_intensity,
    laplace_transfer,
    measured_transfer,
)
from .measure import (
    ThroughputResult,
    calibrate_local_machine,
    measure_operator,
    measure_throughput,
)

__all__ = [
    "OperatorFlops",
    "laplace_flops",
    "cg_laplace_flops",
    "chebyshev_iteration_flops",
    "flops_apply_1d",
    "inverse_mass_flops",
    "mass_flops",
    "mults_1d",
    "TransferModel",
    "laplace_transfer",
    "measured_transfer",
    "arithmetic_intensity",
    "ThroughputResult",
    "measure_throughput",
    "measure_operator",
    "calibrate_local_machine",
    "MACHINES",
    "ROOFLINE_SCHEMA",
    "KernelAttribution",
    "collect_attribution",
    "render_roofline",
    "roofline_doc",
    "subtree_attribution",
    "BENCH_SCHEMA",
    "SUITES",
    "compare_bench",
    "load_bench",
    "machine_fingerprint",
    "migrate_bench_doc",
    "render_bench",
    "render_compare",
    "run_suite",
]
