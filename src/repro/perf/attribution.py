"""Span-level work attribution and roofline reporting (Figure 7 / Table 1).

The instrumented solve stack annotates its tracing spans with analytic
own-work tallies (Flops from :mod:`repro.perf.flops`, ideal transfers
from :mod:`repro.perf.memory`, DoFs processed).  This module joins those
tallies with the measured span times into per-kernel *attribution rows*:
achieved GFlop/s, achieved GB/s, arithmetic intensity, DoF throughput,
and the fraction of the machine's roofline model each kernel reaches.

Conventions
-----------
* A span's work annotation covers only its **own** work — nested
  instrumented kernels annotate their own spans — so achieved rates are
  computed against the span's *exclusive* time.
* Rows are aggregated by span name across the whole tree (the same
  kernel appears under many parents: CG iterations, multigrid levels,
  different sub-steps).
* Sub-step rows (:func:`subtree_attribution`) instead sum the work of a
  whole subtree against its *inclusive* time — the Table-2 view of where
  the modelled work went.

Input may be a live :class:`~repro.telemetry.tracer.Tracer`, a
:class:`~repro.telemetry.tracer.SpanNode`, or the ``spans`` section of a
run-log summary written by :class:`~repro.telemetry.sinks.RunLogWriter`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parallel.machine import (
    FUGAKU_A64FX,
    LOCAL_PYTHON,
    SUMMIT_V100,
    SUPERMUC_NG,
    MachineModel,
)
from ..telemetry.tracer import SpanNode

#: Schema tag of the JSON document written by :func:`roofline_doc`.
ROOFLINE_SCHEMA = "repro/roofline/1"

#: Machine models selectable by name on the CLI.
MACHINES: dict[str, MachineModel] = {
    "local": LOCAL_PYTHON,
    "supermuc-ng": SUPERMUC_NG,
    "summit-v100": SUMMIT_V100,
    "fugaku-a64fx": FUGAKU_A64FX,
}


@dataclass(frozen=True)
class KernelAttribution:
    """One instrumented kernel: measured time joined with modelled work."""

    name: str
    calls: int
    seconds: float  # exclusive seconds across all occurrences
    inclusive_seconds: float
    flops: float
    bytes: float
    dofs: float

    @property
    def gflops_per_s(self) -> float:
        return self.flops / self.seconds / 1e9 if self.seconds > 0 else 0.0

    @property
    def gbytes_per_s(self) -> float:
        return self.bytes / self.seconds / 1e9 if self.seconds > 0 else 0.0

    @property
    def intensity(self) -> float:
        """Arithmetic intensity of the work model [Flop/B]."""
        return self.flops / self.bytes if self.bytes > 0 else 0.0

    @property
    def dofs_per_s(self) -> float:
        return self.dofs / self.seconds if self.seconds > 0 else 0.0

    def model_seconds(self, machine: MachineModel) -> float:
        """Roofline lower bound on the kernel's time: the slower of the
        compute and memory limits."""
        return max(
            self.flops / machine.peak_flops_dp,
            self.bytes / machine.mem_bandwidth,
        )

    def fraction_of_model(self, machine: MachineModel) -> float:
        """Achieved fraction of the roofline model (1.0 = at model)."""
        if self.seconds <= 0:
            return 0.0
        return self.model_seconds(machine) / self.seconds

    def to_dict(self, machine: MachineModel | None = None) -> dict:
        d = {
            "name": self.name,
            "calls": self.calls,
            "seconds": self.seconds,
            "inclusive_seconds": self.inclusive_seconds,
            "flops": self.flops,
            "bytes": self.bytes,
            "dofs": self.dofs,
            "gflops_per_s": self.gflops_per_s,
            "gbytes_per_s": self.gbytes_per_s,
            "intensity": self.intensity,
            "dofs_per_s": self.dofs_per_s,
        }
        if machine is not None:
            d["model_seconds"] = self.model_seconds(machine)
            d["fraction_of_model"] = self.fraction_of_model(machine)
        return d


def as_span_root(source) -> SpanNode:
    """Normalize attribution input to a root :class:`SpanNode`.

    Accepts a :class:`Tracer` (anything with a ``root`` SpanNode), a
    SpanNode, a run-log summary dict (``{"spans": {...}, ...}``), or a
    bare name -> span-dict mapping.
    """
    root = getattr(source, "root", source)
    if isinstance(root, SpanNode):
        return root
    if isinstance(source, dict):
        spans = source.get("spans", source)
        node = SpanNode("root")
        for name, d in spans.items():
            node.children[name] = SpanNode.from_dict(name, d)
        return node
    raise TypeError(f"cannot attribute spans from {type(source).__name__}")


def collect_attribution(source) -> list[KernelAttribution]:
    """Per-kernel rows: annotated spans aggregated by name across the
    tree, ordered by exclusive time (most expensive first)."""
    root = as_span_root(source)
    agg: dict[str, list] = {}
    for _, node in root.walk():
        if node is root or not node.has_work:
            continue
        a = agg.setdefault(node.name, [0, 0.0, 0.0, 0.0, 0.0, 0.0])
        a[0] += node.count
        a[1] += node.exclusive
        a[2] += node.total
        a[3] += node.flops
        a[4] += node.bytes
        a[5] += node.dofs
    rows = [
        KernelAttribution(name, int(a[0]), a[1], a[2], a[3], a[4], a[5])
        for name, a in agg.items()
    ]
    rows.sort(key=lambda r: r.seconds, reverse=True)
    return rows


def subtree_attribution(source, names=None) -> list[KernelAttribution]:
    """Sub-step rows: whole-subtree work against inclusive time, for the
    top-level children of ``root`` (or the named descendants)."""
    root = as_span_root(source)
    if names is None:
        nodes = list(root.children.values())
    else:
        nodes = []
        for _, node in root.walk():
            if node is not root and node.name in names:
                nodes.append(node)
    rows = []
    for node in nodes:
        f, b, d = node.subtree_work()
        if f == 0.0 and b == 0.0 and d == 0.0:
            continue
        rows.append(
            KernelAttribution(
                node.name, node.count, node.total, node.total, f, b, d
            )
        )
    rows.sort(key=lambda r: r.seconds, reverse=True)
    return rows


def roofline_doc(source, machine: MachineModel = LOCAL_PYTHON,
                 meta: dict | None = None) -> dict:
    """Schema-versioned JSON roofline report of one instrumented run."""
    kernels = collect_attribution(source)
    doc = {
        "schema": ROOFLINE_SCHEMA,
        "machine": {
            "name": machine.name,
            "peak_flops_dp": machine.peak_flops_dp,
            "mem_bandwidth": machine.mem_bandwidth,
            "flop_byte_ridge": machine.flop_byte_ridge,
        },
        "kernels": [k.to_dict(machine) for k in kernels],
    }
    substeps = subtree_attribution(source)
    if substeps:
        doc["substeps"] = [s.to_dict(machine) for s in substeps]
    if meta:
        doc["meta"] = meta
    return doc


def _render_rows(rows: list[KernelAttribution], machine: MachineModel,
                 seconds_label: str) -> list[str]:
    lines = [
        f"{'kernel':<32s} {'calls':>7s} {seconds_label:>10s} {'GFlop/s':>9s} "
        f"{'GB/s':>8s} {'AI[F/B]':>8s} {'MDoF/s':>8s} {'%model':>7s}",
    ]
    for r in rows:
        lines.append(
            f"{r.name:<32s} {r.calls:>7d} {r.seconds:>10.4f} "
            f"{r.gflops_per_s:>9.4f} {r.gbytes_per_s:>8.4f} "
            f"{r.intensity:>8.2f} {r.dofs_per_s / 1e6:>8.3f} "
            f"{r.fraction_of_model(machine):>7.2%}"
        )
    return lines


def exchange_attribution(timeline_analysis: dict) -> list[KernelAttribution]:
    """Per-rank achieved-bandwidth rows for the distributed ghost
    exchange, from a ``repro/timeline/1`` analysis document
    (:func:`repro.telemetry.timeline.analyze_timeline` with
    ``rank_bytes``).

    ``seconds`` is the rank's communication-facing time (pack + post +
    wait + unpack) and ``bytes`` the payload it shipped and received, so
    ``gbytes_per_s`` is the achieved exchange bandwidth and ``%model``
    compares it against the machine's memory bandwidth — the shared-
    memory transport's roofline."""
    totals = timeline_analysis.get("totals") or {}
    per_rank = totals.get("per_rank") or {}
    rows = []
    for r in sorted(per_rank, key=int):
        info = per_rank[r]
        if "exchange_bytes_total" not in info:
            continue
        secs = float(info.get("exchange_seconds", 0.0))
        rows.append(
            KernelAttribution(
                name=f"ghost_exchange[rank{r}]",
                calls=int(info.get("rounds", 0)),
                seconds=secs,
                inclusive_seconds=secs,
                flops=0.0,
                bytes=float(info["exchange_bytes_total"]),
                dofs=0.0,
            )
        )
    return rows


def render_exchange(timeline_analysis: dict,
                    machine: MachineModel = LOCAL_PYTHON) -> str:
    """Table of the per-rank exchange bandwidth rows (empty string when
    the analysis carries no byte accounting)."""
    rows = exchange_attribution(timeline_analysis)
    if not rows:
        return ""
    lines = [
        f"per-rank ghost-exchange bandwidth — machine: {machine.name} "
        f"(bw {machine.mem_bandwidth / 1e9:.3g} GB/s)",
    ]
    lines += _render_rows(rows, machine, "comm [s]")
    return "\n".join(lines)


def render_roofline(source, machine: MachineModel = LOCAL_PYTHON,
                    title: str = "roofline attribution") -> str:
    """Markdown-ish table of the per-kernel attribution (achieved rates
    vs the analytic work model on the given machine)."""
    kernels = collect_attribution(source)
    lines = [
        f"{title} — machine: {machine.name} "
        f"(peak {machine.peak_flops_dp / 1e9:.3g} GFlop/s, "
        f"bw {machine.mem_bandwidth / 1e9:.3g} GB/s, "
        f"ridge {machine.flop_byte_ridge:.2f} F/B)",
    ]
    if not kernels:
        lines.append("(no annotated spans — run with tracing enabled)")
        return "\n".join(lines)
    lines += _render_rows(kernels, machine, "excl [s]")
    substeps = subtree_attribution(source)
    if substeps:
        lines.append("")
        lines.append("sub-step subtree attribution (inclusive):")
        lines += _render_rows(substeps, machine, "incl [s]")
    return "\n".join(lines)
