"""Benchmark regression harness behind ``repro bench``.

Declared *suites* of performance cases (DG Laplace vmult, vector
Laplace, a multigrid V-cycle, a full lung time step, and the legacy
planned-vs-legacy vmult gate) run under one schema-versioned document
format::

    {
      "schema": "repro/bench/2",
      "suite": "ops",
      "smoke": false,
      "degree": 3,
      "fingerprint": {...},           # CPU, numpy/BLAS, git SHA, time
      "cases": [
        {"name": "box_r2/dg_laplace/planned",
         "n_dofs": 32768,
         "throughput": 2.8e6,         # canonical higher-is-better metric
         "throughput_units": "dofs/s",
         "meta": {...},
         "metrics": {"best_seconds": ..., "dofs_per_second": ..., ...}},
        ...
      ]
    }

:func:`compare_bench` joins two documents by case name and flags every
case whose throughput dropped by more than ``max_regression`` — the CI
perf gate (ASV-style continuous benchmarking at reproduction scale).
:func:`migrate_bench_doc` lifts the PR 2 ``repro/bench-vmult/1``
documents into this schema so the committed trajectory is preserved.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path

import numpy as np

BENCH_SCHEMA = "repro/bench/2"
_OLD_VMULT_SCHEMA = "repro/bench-vmult/1"


# ---------------------------------------------------------------------------
# machine fingerprint
# ---------------------------------------------------------------------------

def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _blas_name() -> str:
    try:
        cfg = np.show_config(mode="dicts")
        return cfg["Build Dependencies"]["blas"]["name"]
    except (TypeError, KeyError, AttributeError):
        pass
    try:  # older numpy: parse the first configured BLAS section
        from numpy.distutils.system_info import get_info  # type: ignore

        info = get_info("blas_opt")
        return ",".join(info.get("libraries", [])) or "unknown"
    except Exception:
        return "unknown"


def machine_fingerprint() -> dict:
    """Identify the machine and software stack a benchmark ran on."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor() or platform.machine(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "blas": _blas_name(),
        "git_sha": _git_sha(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


# ---------------------------------------------------------------------------
# case helpers
# ---------------------------------------------------------------------------

def _case(name: str, n_dofs: int, throughput: float, units: str,
          metrics: dict, meta: dict | None = None,
          dtype: str = "float64") -> dict:
    return {
        "name": name,
        "dtype": dtype,
        "n_dofs": int(n_dofs),
        "throughput": float(throughput),
        "throughput_units": units,
        "meta": meta or {},
        "metrics": metrics,
    }


def _throughput_case(name: str, result, meta: dict | None = None,
                     dtype: str = "float64") -> dict:
    """Case record from a :class:`~repro.perf.measure.ThroughputResult`."""
    metrics = {
        "best_seconds": result.best_seconds,
        "mean_seconds": result.mean_seconds,
        "std_seconds": result.std_seconds,
        "dofs_per_second": result.dofs_per_second,
        "repetitions": result.repetitions,
    }
    if result.alloc_peak_bytes is not None:
        metrics["alloc_peak_bytes"] = result.alloc_peak_bytes
        metrics["alloc_net_blocks"] = result.alloc_net_blocks
    return _case(name, result.n_dofs, result.dofs_per_second, "dofs/s",
                 metrics, meta, dtype)


def dtype_suffix(dtype) -> str:
    """Case-name suffix for a compute dtype: empty for the historical
    float64 cases (so old baselines keep matching by name), ``@float32``
    etc. otherwise."""
    ds = str(np.dtype(dtype))
    return "" if ds == "float64" else f"@{ds}"


def _box_forest(refinements: int):
    from ..mesh.generators import box
    from ..mesh.octree import Forest

    return Forest(
        box(subdivisions=(2, 1, 1), boundary_ids={0: 1})
    ).refine_all(refinements)


def _bifurcation_forest(levels: int):
    from ..mesh.generators import bifurcation
    from ..mesh.octree import Forest

    return Forest(bifurcation()).refine_all(levels)


def _dg_laplace(forest, degree: int):
    from ..core.dof_handler import DGDofHandler
    from ..core.operators import DGLaplaceOperator
    from ..mesh.connectivity import build_connectivity
    from ..mesh.mapping import GeometryField

    geo = GeometryField(forest, degree)
    conn = build_connectivity(forest)
    dof = DGDofHandler(forest, degree)
    return dof, geo, conn, DGLaplaceOperator(dof, geo, conn, dirichlet_ids=(1,))


def _always(_name: str) -> bool:
    return True


# ---------------------------------------------------------------------------
# suites
# ---------------------------------------------------------------------------

def _suite_ops(smoke: bool, degree: int, select=_always,
               dtype: str = "float64") -> list[dict]:
    """Achieved-throughput suite on the planned execution path: the
    Figure 6-8 kernels plus one full coupled lung step."""
    from ..core.dof_handler import DGDofHandler
    from ..core.operators import VectorDGLaplace
    from ..solvers.multigrid import operator_to_dtype
    from .measure import measure_operator, measure_throughput

    ds = str(np.dtype(dtype))
    sfx = dtype_suffix(ds)
    refinements = 1 if smoke else 2
    reps = 3 if smoke else 10
    mesh_name = f"box_r{refinements}"
    forest = _box_forest(refinements)
    dof, geo, conn, op = _dg_laplace(forest, degree)
    meta = {"mesh": mesh_name, "n_cells": forest.n_cells, "degree": degree}
    cases: list[dict] = []

    name = f"{mesh_name}/dg_laplace_vmult{sfx}"
    if select(name):
        r = measure_operator(operator_to_dtype(op, ds), name=name,
                             repetitions=reps, dtype=ds)
        cases.append(_throughput_case(name, r, meta, ds))

    name = f"{mesh_name}/vector_laplace_vmult{sfx}"
    if select(name):
        dof_v = DGDofHandler(forest, degree, n_components=3)
        vec = VectorDGLaplace(op, dof_v)
        r = measure_operator(operator_to_dtype(vec, ds), name=name,
                             repetitions=max(2, reps // 2), dtype=ds)
        cases.append(_throughput_case(name, r, meta, ds))

    name = f"{mesh_name}/mg_vcycle{sfx}"
    if select(name):
        from ..solvers import HybridMultigridPreconditioner

        # the hybrid MG always smooths in single precision internally;
        # the dtype axis varies the residual vector handed to it
        mg = HybridMultigridPreconditioner(op)
        rng = np.random.default_rng(0)
        b = rng.standard_normal(op.n_dofs).astype(ds)
        r = measure_throughput(
            lambda: mg.vmult(b), n_dofs=op.n_dofs, name=name,
            repetitions=max(2, reps // 2),
        )
        cases.append(_throughput_case(name, r, meta, ds))

    name = f"lung_g1/step{sfx}"
    if select(name):
        cases.append(_lung_step_case(name, smoke, ds))
    return cases


def _lung_step_case(name: str, smoke: bool, dtype: str = "float64") -> dict:
    from ..lung import LungVentilationSimulation
    from ..robustness import RunConfig

    cfg = RunConfig(generations=1, degree=2, seed=0, compute_dtype=dtype)
    sim = LungVentilationSimulation(cfg)
    n_dofs = sim.solver.dof_u.n_dofs + sim.solver.dof_p.n_dofs
    sim.step()  # warm-up: plan caches, preconditioner setup
    n_steps = 2 if smoke else 5
    seconds = []
    for _ in range(n_steps):
        t0 = time.perf_counter()
        sim.step()
        seconds.append(time.perf_counter() - t0)
    best = min(seconds)
    return _case(
        name,
        n_dofs,
        n_dofs / best,
        "dofs/s",
        {
            "best_seconds": best,
            "mean_seconds": sum(seconds) / len(seconds),
            "dofs_per_second": n_dofs / best,
            "repetitions": n_steps,
        },
        {"generations": 1, "degree": 2, "n_cells": sim.lung.forest.n_cells},
        dtype,
    )


def _suite_vmult(smoke: bool, degree: int, select=_always,
                 dtype: str = "float64") -> list[dict]:
    """The PR 2 planned-vs-legacy gate on the new schema (DG/vector
    Laplace vmult and the multigrid setup path in both execution modes)
    plus the ensemble-axis scaling cases: one batched ``(E, n)`` vmult
    against ``E`` sequential single-member calls."""
    from ..core.dof_handler import DGDofHandler
    from ..core.operators import VectorDGLaplace
    from ..core.plans import plan_execution
    from ..solvers.multigrid import operator_to_dtype
    from .measure import measure_operator, measure_throughput

    ds = str(np.dtype(dtype))
    sfx = dtype_suffix(ds)
    if smoke:
        meshes = [("box_r1", _box_forest(1), 3),
                  ("bifurcation_r0", _bifurcation_forest(0), 3)]
    else:
        meshes = [("box_r3", _box_forest(3), 10),
                  ("bifurcation_r1", _bifurcation_forest(1), 10)]

    cases: list[dict] = []
    for mesh_name, forest, reps in meshes:
        dof, geo, conn, _ = _dg_laplace(forest, degree)
        dof_v = DGDofHandler(forest, degree, n_components=3)
        meta = {"mesh": mesh_name, "n_cells": forest.n_cells, "degree": degree}

        def make_op():
            return _dg_laplace(forest, degree)[3]

        for mode, use_plans in (("legacy", False), ("planned", True)):
            m = dict(meta, mode=mode)

            name = f"{mesh_name}/dg_laplace/{mode}{sfx}"
            if select(name):
                with plan_execution(use_plans):
                    r = measure_operator(operator_to_dtype(make_op(), ds),
                                         name=name, repetitions=reps, dtype=ds)
                cases.append(_throughput_case(name, r, m, ds))

            name = f"{mesh_name}/vector_laplace/{mode}{sfx}"
            if select(name):
                vec = VectorDGLaplace(make_op(), dof_v)
                with plan_execution(use_plans):
                    r = measure_operator(operator_to_dtype(vec, ds), name=name,
                                         repetitions=max(2, reps // 2),
                                         dtype=ds)
                cases.append(_throughput_case(name, r, m, ds))

            name = f"{mesh_name}/mg_setup/{mode}{sfx}"
            if select(name):
                sec = _measure_mg_setup(make_op, use_plans,
                                        repetitions=min(3, reps), dtype=ds)
                cases.append(_case(
                    name, dof.n_dofs, 1.0 / sec, "setups/s",
                    {"best_seconds": sec}, m, ds,
                ))

    # ensemble-axis scaling: a single batched (E, n) vmult amortizes the
    # per-call dispatch/scatter overhead over all members; the
    # sequential_e8 reference is 8 single-member calls.  Pinned to the
    # small box_r1 mesh — the strong-scaling-limit regime (small
    # per-member problem, overhead-dominated) the ensemble axis targets;
    # at cache-exceeding sizes the batched path is memory-bound and the
    # axis buys nothing.
    reps = meshes[0][2]
    mesh_name, forest = "box_r1", _box_forest(1)
    _, _, _, op = _dg_laplace(forest, degree)
    op = operator_to_dtype(op, ds)
    e_meta = {"mesh": mesh_name, "n_cells": forest.n_cells, "degree": degree}
    rng = np.random.default_rng(0)
    for members in (1, 2, 4, 8):
        name = f"{mesh_name}/dg_laplace/ensemble_e{members}{sfx}"
        if select(name):
            x = rng.standard_normal((members, op.n_dofs)).astype(ds)
            r = measure_throughput(
                lambda: op.vmult(x), n_dofs=members * op.n_dofs,
                name=name, repetitions=reps,
            )
            cases.append(_throughput_case(
                name, r, dict(e_meta, mode="ensemble", members=members), ds))
    name = f"{mesh_name}/dg_laplace/sequential_e8{sfx}"
    if select(name):
        x = rng.standard_normal((8, op.n_dofs)).astype(ds)

        def run_sequential():
            for e in range(8):
                op.vmult(x[e])

        r = measure_throughput(
            run_sequential, n_dofs=8 * op.n_dofs, name=name, repetitions=reps,
        )
        cases.append(_throughput_case(
            name, r, dict(e_meta, mode="sequential", members=8), ds))
    return cases


def _measure_mg_setup(make_op, use_plans: bool, repetitions: int = 3,
                      dtype: str = "float64") -> float:
    """Best wall time of the multigrid setup path on a fresh operator:
    diagonal + Jacobi + Chebyshev/Lanczos construction."""
    from ..core.plans import plan_execution
    from ..solvers.chebyshev import ChebyshevSmoother
    from ..solvers.jacobi import JacobiPreconditioner
    from ..solvers.multigrid import operator_to_dtype

    best = float("inf")
    for _ in range(repetitions):
        op = operator_to_dtype(make_op(), dtype)
        with plan_execution(use_plans):
            t0 = time.perf_counter()
            jac = JacobiPreconditioner(op, dtype=np.dtype(dtype))
            ChebyshevSmoother(op, degree=3, jacobi=jac)
            best = min(best, time.perf_counter() - t0)
    return best


def _suite_ensemble(smoke: bool, degree: int, select=_always,
                    dtype: str = "float64") -> list[dict]:
    """Full coupled lung steps on the ensemble axis: E=4 members batched
    through one solver setup versus the same members as independent
    sequential simulations.  The throughput metric is aggregate DoF/s
    (members x DoF per step time), so the two cases are directly
    comparable."""
    from ..lung import EnsembleLungSimulation, LungVentilationSimulation
    from ..robustness import RunConfig

    ds = str(np.dtype(dtype))
    sfx = dtype_suffix(ds)
    members = 4
    n_steps = 2 if smoke else 5
    cfg = RunConfig(generations=1, degree=2, seed=0, compute_dtype=ds)
    meta = {"generations": 1, "degree": 2, "members": members}
    cases: list[dict] = []

    name = f"lung_g1/ensemble_step_e{members}{sfx}"
    if select(name):
        sim = EnsembleLungSimulation([cfg] * members)
        n_dofs = sim.solver.dof_u.n_dofs + sim.solver.dof_p.n_dofs
        sim.step()  # warm-up: plan caches, preconditioner setup
        seconds = []
        for _ in range(n_steps):
            t0 = time.perf_counter()
            sim.step()
            seconds.append(time.perf_counter() - t0)
        best = min(seconds)
        cases.append(_case(
            name, members * n_dofs, members * n_dofs / best, "dofs/s",
            {
                "best_seconds": best,
                "mean_seconds": sum(seconds) / len(seconds),
                "dofs_per_second": members * n_dofs / best,
                "repetitions": n_steps,
            },
            dict(meta, mode="ensemble", n_cells=sim.lung.forest.n_cells),
            ds,
        ))

    name = f"lung_g1/sequential_step_e{members}{sfx}"
    if select(name):
        sims = [LungVentilationSimulation(cfg) for _ in range(members)]
        n_dofs = sims[0].solver.dof_u.n_dofs + sims[0].solver.dof_p.n_dofs
        for s in sims:
            s.step()  # warm-up
        seconds = []
        for _ in range(n_steps):
            t0 = time.perf_counter()
            for s in sims:
                s.step()
            seconds.append(time.perf_counter() - t0)
        best = min(seconds)
        cases.append(_case(
            name, members * n_dofs, members * n_dofs / best, "dofs/s",
            {
                "best_seconds": best,
                "mean_seconds": sum(seconds) / len(seconds),
                "dofs_per_second": members * n_dofs / best,
                "repetitions": n_steps,
            },
            dict(meta, mode="sequential",
                 n_cells=sims[0].lung.forest.n_cells),
            ds,
        ))
    return cases


def _suite_scaling(smoke: bool, degree: int, select=_always,
                   dtype: str = "float64") -> list[dict]:
    """Measured multi-worker vmult wall-times next to the calibrated
    :class:`~repro.parallel.MatvecScalingModel` predictions — the PR
    that turns the performance model from fiction into a tested
    contract.

    One serial baseline plus 2- and 4-worker
    :class:`~repro.parallel.WorkerPool` runs on the compute-bound box
    mesh.  The model's node throughput is calibrated from the measured
    serial time (``matvec_dofs_per_s_k3`` of a LOCAL_PYTHON variant),
    so its multi-worker predictions isolate exactly the partition /
    communication / overlap terms the real runtime implements; each
    case's ``meta`` records prediction, measured speedup, and
    ``available_cores`` (oversubscribed pools cannot beat 1x, which the
    smoke gate accounts for)."""
    import dataclasses

    from ..parallel import LOCAL_PYTHON, MatvecScalingModel, partition_stats
    from ..parallel.runtime import WorkerPool
    from ..solvers.multigrid import operator_to_dtype

    ds = str(np.dtype(dtype))
    sfx = dtype_suffix(ds)
    # the full suite needs a workload large enough that one vmult
    # dominates the ~ms pool dispatch round-trip (compute-bound regime)
    refinements = 1 if smoke else 3
    reps = 3 if smoke else 10
    mesh_name = f"box_r{refinements}"
    forest = _box_forest(refinements)
    dof, geo, conn, op64 = _dg_laplace(forest, degree)
    op = operator_to_dtype(op64, ds)
    rng = np.random.default_rng(0)
    x = rng.standard_normal(op.n_dofs).astype(ds)
    try:
        avail = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        avail = os.cpu_count() or 1

    op.vmult(x)  # warm the plan caches before timing
    t_serial = min(
        _timed(lambda: op.vmult(x)) for _ in range(reps)
    )
    machine = dataclasses.replace(
        LOCAL_PYTHON, matvec_dofs_per_s_k3=op.n_dofs / t_serial
    )
    model = MatvecScalingModel(machine=machine, degree=degree)
    # re-anchor so the 1-worker prediction reproduces the measured
    # serial time exactly (time() is linear in 1/matvec_dofs_per_s_k3,
    # and the cache-boost factor depends only on the working set)
    machine = dataclasses.replace(
        machine,
        matvec_dofs_per_s_k3=(machine.matvec_dofs_per_s_k3
                              * model.time(op.n_dofs, 1) / t_serial),
    )
    model = MatvecScalingModel(machine=machine, degree=degree)
    meta = {
        "mesh": mesh_name, "n_cells": forest.n_cells, "degree": degree,
        "available_cores": avail,
    }
    cases: list[dict] = []

    name = f"{mesh_name}/dist_vmult_w1{sfx}"
    if select(name):
        cases.append(_case(
            name, op.n_dofs, op.n_dofs / t_serial, "dofs/s",
            {"best_seconds": t_serial, "repetitions": reps,
             "dofs_per_second": op.n_dofs / t_serial},
            dict(meta, workers=1, mode="serial",
                 predicted_seconds=model.time(op.n_dofs, 1)),
            ds,
        ))

    for workers in (2, 4):
        name = f"{mesh_name}/dist_vmult_w{workers}{sfx}"
        if not select(name):
            continue
        stats = partition_stats(forest, conn, workers)
        pool = WorkerPool(workers)
        pool.register("op", op)
        with pool:
            census = pool.census()
            pool.vmult("op", x)  # warm the per-worker plan caches
            t_best = min(
                _timed(lambda: pool.vmult("op", x)) for _ in range(reps)
            )
        msg_bytes = (census.bytes_total / max(census.n_messages, 1)
                     if census.n_messages else 0.0)
        predicted = model.time(
            op.n_dofs, workers,
            n_neighbors=stats.max_neighbors(),
            message_bytes=msg_bytes,
        )
        cases.append(_case(
            name, op.n_dofs, op.n_dofs / t_best, "dofs/s",
            {"best_seconds": t_best, "repetitions": reps,
             "dofs_per_second": op.n_dofs / t_best},
            dict(
                meta, workers=workers, mode="distributed",
                predicted_seconds=predicted,
                predicted_speedup=t_serial / predicted,
                measured_speedup=t_serial / t_best,
                n_messages=census.n_messages,
                ghost_bytes=census.bytes_total,
                max_neighbors=stats.max_neighbors(),
            ),
            ds,
        ))
    return cases


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


#: Declared benchmark suites: name -> runner(smoke, degree, select).
SUITES = {
    "ops": _suite_ops,
    "vmult": _suite_vmult,
    "ensemble": _suite_ensemble,
    "scaling": _suite_scaling,
}


def run_suite(suite: str, smoke: bool = False, degree: int = 3,
              case_filter: str | None = None,
              dtype: str = "float64") -> dict:
    """Run one declared suite and return the schema-versioned document.

    ``dtype`` selects the compute precision of the measured kernels
    (``float64``/``float32``); non-double cases carry an ``@<dtype>``
    name suffix and a per-case ``dtype`` field, so documents at
    different precisions merge and compare cleanly."""
    try:
        runner = SUITES[suite]
    except KeyError:
        raise ValueError(
            f"unknown suite {suite!r} (have: {', '.join(sorted(SUITES))})"
        )
    ds = str(np.dtype(dtype))
    select = _always if case_filter is None else (
        lambda name: case_filter in name
    )
    return {
        "schema": BENCH_SCHEMA,
        "suite": suite,
        "smoke": bool(smoke),
        "degree": degree,
        "dtype": ds,
        "fingerprint": machine_fingerprint(),
        "cases": runner(smoke, degree, select, ds),
    }


# ---------------------------------------------------------------------------
# schema migration
# ---------------------------------------------------------------------------

def migrate_bench_doc(doc: dict) -> dict:
    """Lift a ``repro/bench-vmult/1`` document onto the current schema,
    preserving the measured numbers.  Current-schema documents pass
    through unchanged."""
    schema = doc.get("schema")
    if schema == BENCH_SCHEMA:
        return doc
    if schema != _OLD_VMULT_SCHEMA:
        raise ValueError(f"cannot migrate benchmark schema {schema!r}")
    cases: list[dict] = []
    for c in doc.get("cases", []):
        meta = {"mesh": c["case"], "n_cells": c.get("n_cells"),
                "degree": c.get("degree")}
        for mode in ("legacy", "planned"):
            d = c[mode]
            m = dict(meta, mode=mode)
            cases.append(_case(
                f"{c['case']}/dg_laplace/{mode}",
                c["n_dofs"],
                d["dg_laplace_dofs_per_second"],
                "dofs/s",
                {
                    "best_seconds": d["dg_laplace_vmult_seconds"],
                    "dofs_per_second": d["dg_laplace_dofs_per_second"],
                    "alloc_peak_bytes": d.get("dg_laplace_alloc_peak_bytes"),
                    "alloc_net_blocks": d.get("dg_laplace_alloc_net_blocks"),
                },
                m,
            ))
            cases.append(_case(
                f"{c['case']}/vector_laplace/{mode}",
                c["n_dofs"],
                d["vector_laplace_dofs_per_second"],
                "dofs/s",
                {
                    "best_seconds": d["vector_laplace_vmult_seconds"],
                    "dofs_per_second": d["vector_laplace_dofs_per_second"],
                },
                m,
            ))
            cases.append(_case(
                f"{c['case']}/mg_setup/{mode}",
                c["n_dofs"],
                1.0 / d["mg_setup_seconds"],
                "setups/s",
                {"best_seconds": d["mg_setup_seconds"]},
                m,
            ))
    return {
        "schema": BENCH_SCHEMA,
        "suite": "vmult",
        "smoke": bool(doc.get("smoke", False)),
        "degree": doc.get("degree", 3),
        "fingerprint": {"migrated_from": _OLD_VMULT_SCHEMA},
        "cases": cases,
    }


def load_bench(path) -> dict:
    """Read a benchmark document, migrating old schemas transparently."""
    doc = json.loads(Path(path).read_text())
    return migrate_bench_doc(doc)


# ---------------------------------------------------------------------------
# regression comparison
# ---------------------------------------------------------------------------

def compare_bench(current: dict, baseline: dict,
                  max_regression: float = 0.15) -> dict:
    """Join two benchmark documents by case name and flag throughput
    regressions beyond ``max_regression`` (fractional drop).

    Cases missing from either side or measured at a different problem
    size are *skipped with a reason*, never silently compared.
    """
    current = migrate_bench_doc(current)
    baseline = migrate_bench_doc(baseline)

    def key(c: dict):
        # join by (name, dtype); pre-dtype baselines are all float64
        return (c["name"], c.get("dtype", "float64"))

    base_by_name = {key(c): c for c in baseline.get("cases", [])}
    regressions, improvements, ok, skipped = [], [], [], []
    seen = set()
    for cur in current.get("cases", []):
        name = cur["name"]
        seen.add(key(cur))
        base = base_by_name.get(key(cur))
        if base is None:
            skipped.append({"name": name, "reason": "not in baseline"})
            continue
        if base.get("n_dofs") != cur.get("n_dofs"):
            skipped.append({
                "name": name,
                "reason": f"n_dofs mismatch (baseline {base.get('n_dofs')}, "
                          f"current {cur.get('n_dofs')})",
            })
            continue
        b, c = base["throughput"], cur["throughput"]
        if b <= 0:
            skipped.append({"name": name, "reason": "non-positive baseline"})
            continue
        ratio = c / b
        entry = {"name": name, "baseline": b, "current": c, "ratio": ratio,
                 "units": cur.get("throughput_units", "")}
        if ratio < 1.0 - max_regression:
            regressions.append(entry)
        elif ratio > 1.0 + max_regression:
            improvements.append(entry)
        else:
            ok.append(entry)
    for (name, _dt), _case_ in base_by_name.items():
        if key(_case_) not in seen:
            skipped.append({"name": name, "reason": "not in current run"})
    return {
        "max_regression": max_regression,
        "regressions": regressions,
        "improvements": improvements,
        "unchanged": ok,
        "skipped": skipped,
        "ok": not regressions,
    }


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def render_bench(doc: dict) -> str:
    """Plain-text table of one benchmark document."""
    fp = doc.get("fingerprint", {})
    head = (f"suite {doc.get('suite')} (schema {doc.get('schema')}"
            + (", smoke" if doc.get("smoke") else "") + ")")
    sha = fp.get("git_sha")
    if sha:
        head += f" @ {sha[:12]}"
    lines = [
        head,
        f"{'case':<36s} {'DoF':>9s} {'best [s]':>11s} {'throughput':>14s}",
    ]
    for c in doc.get("cases", []):
        best = c.get("metrics", {}).get("best_seconds")
        best_s = f"{best:>11.4e}" if best is not None else f"{'-':>11s}"
        lines.append(
            f"{c['name']:<36s} {c['n_dofs']:>9d} {best_s} "
            f"{c['throughput']:>10.4g} {c.get('throughput_units', '')}"
        )
    return "\n".join(lines)


def render_compare(report: dict) -> str:
    """Plain-text view of a :func:`compare_bench` report."""
    lines = [
        f"regression threshold: {report['max_regression']:.0%} "
        f"({'PASS' if report['ok'] else 'FAIL'})"
    ]

    def rows(title, entries, mark):
        if not entries:
            return
        lines.append(f"{title}:")
        for e in entries:
            lines.append(
                f"  {mark} {e['name']:<36s} {e['baseline']:>10.4g} -> "
                f"{e['current']:>10.4g} {e.get('units', '')} "
                f"({e['ratio'] - 1.0:+.1%})"
            )

    rows("regressions", report["regressions"], "!")
    rows("improvements", report["improvements"], "+")
    rows("within threshold", report["unchanged"], "=")
    if report["skipped"]:
        lines.append("skipped:")
        for s in report["skipped"]:
            lines.append(f"  ? {s['name']}: {s['reason']}")
    return "\n".join(lines)
