"""Analytic arithmetic-operation counts of the sum-factorized kernels.

Section 5.1 / Figure 7: "The number of arithmetic operations follows a
slight modification of the data in Table 4 of [Kronbichler & Kormann
2019] ... confirmed to be accurate within a few percent by hardware
performance counters."  We compute the counts directly from the kernel
structure implemented in :mod:`repro.core.sum_factorization`, including
the even-odd reduction, so the roofline placement (Figure 7) uses the
same arithmetic the code executes.

Conventions: one fused multiply-add counts as 2 Flop; d = 3.
"""

from __future__ import annotations

from dataclasses import dataclass


def mults_1d(n_out: int, n_in: int, even_odd: bool = True) -> int:
    """Multiplications of one 1D kernel application to one line."""
    if even_odd:
        return 2 * ((n_out + 1) // 2) * ((n_in + 1) // 2)
    return n_out * n_in


def flops_apply_1d(n_out: int, n_in: int, n_lines: int, even_odd: bool = True) -> int:
    """Flops (mults + adds ~ 2x mults) of a full tensor sweep along one
    dimension: ``n_lines`` independent 1D applications."""
    return 2 * mults_1d(n_out, n_in, even_odd) * n_lines


@dataclass(frozen=True)
class OperatorFlops:
    """Per-cell and per-face Flop counts for one polynomial degree."""

    degree: int
    n_q: int
    cell: int
    inner_face: int
    boundary_face: int

    def matvec_total(self, n_cells: int, n_inner_faces: int, n_boundary_faces: int) -> int:
        return (
            self.cell * n_cells
            + self.inner_face * n_inner_faces
            + self.boundary_face * n_boundary_faces
        )


def laplace_flops(degree: int, n_q: int | None = None, even_odd: bool = True,
                  collocation: bool = False) -> OperatorFlops:
    """Flop counts of the SIP DG Laplacian evaluation (Eq. (7)).

    Cell part (per cell): gradients = 3 sweeps of shared interpolation +
    per-component derivative sweeps (the implementation's
    values_and_gradients layout: 8 tensor sweeps), quadrature-point work
    (3x3 symmetric matrix x vector: 9 FMA), integration (transpose, 9
    sweeps equivalent).  Face part: traces, tangential derivatives,
    metric applications, flux arithmetic for both sides.
    """
    k = degree
    n = k + 1
    nq = n_q or n
    n2 = n * n
    nq2 = nq * nq

    # -- cell -------------------------------------------------------------
    if collocation and nq == n:
        # change of basis (3 sweeps) + one derivative sweep per direction,
        # and the symmetric transpose structure on the way back
        fwd = 3 * flops_apply_1d(nq, n, n2, even_odd)  # transform
        fwd += 3 * flops_apply_1d(nq, nq, nq2, even_odd)  # collocation grads
        bwd = 3 * flops_apply_1d(nq, nq, nq2, even_odd)
        bwd += 3 * flops_apply_1d(n, nq, nq2, even_odd)
    else:
        # forward: ux (n2 lines n->nq), uxy (n*nq), vals (nq2), g0 (3
        # sweeps), g1 (2 sweeps), g2 (1 sweep) as in values_and_gradients
        fwd = 0
        fwd += flops_apply_1d(nq, n, n2, even_odd)  # ux
        fwd += flops_apply_1d(nq, n, n * nq, even_odd)  # uxy
        fwd += flops_apply_1d(nq, n, nq2, even_odd)  # vals (reused by g2 path)
        # g0: interp(y) + grad(x) + interp(z)
        fwd += flops_apply_1d(nq, n, n2, even_odd) + flops_apply_1d(nq, n, n * nq, even_odd) + flops_apply_1d(nq, n, nq2, even_odd)
        # g1: grad(y) on ux + interp(z)
        fwd += flops_apply_1d(nq, n, n * nq, even_odd) + flops_apply_1d(nq, n, nq2, even_odd)
        # g2: grad(z) on uxy
        fwd += flops_apply_1d(nq, n, nq2, even_odd)
        # integration: transpose of the gradient sweep structure (9 sweeps)
        bwd = 3 * (
            flops_apply_1d(n, nq, nq2, even_odd)
            + flops_apply_1d(n, nq, nq * n, even_odd)
            + flops_apply_1d(n, nq, n2, even_odd)
        )
    # quadrature-point work: symmetric 3x3 apply: 9 FMA = 18 Flop per point
    qwork = 18 * nq**3
    cell = fwd + qwork + bwd

    # -- interior face ------------------------------------------------------
    # per side: value trace (free at GL nodes), normal-derivative trace
    # (1 sweep over n2 lines), 2 tangential nodal derivative sweeps,
    # interpolation of val+3 gradient components to quadrature
    # (4 fields x 2 sweeps), per-point flux (J^{-T} 2x, dots, penalty
    # ~ 60 Flop/point), and the transposed integration of val+grad.
    per_side_eval = (
        2 * n * n2  # normal-derivative contraction (vector dot per line)
        + 2 * flops_apply_1d(n, n, n2, even_odd)  # tangential nodal derivs
        + 4 * (flops_apply_1d(nq, n, n, even_odd) + flops_apply_1d(nq, n, nq, even_odd))
    )
    flux = 60 * nq2
    per_side_int = per_side_eval  # transpose costs the same
    inner_face = 2 * (per_side_eval + per_side_int) + flux
    boundary_face = per_side_eval + per_side_int + 40 * nq2
    return OperatorFlops(degree=k, n_q=nq, cell=cell, inner_face=inner_face,
                         boundary_face=boundary_face)


def cg_laplace_flops(degree: int, n_q: int | None = None, even_odd: bool = True) -> OperatorFlops:
    """Continuous FE Laplacian: cell work only (no face terms); gather /
    scatter indirection is memory, not Flops."""
    lap = laplace_flops(degree, n_q, even_odd)
    return OperatorFlops(degree=degree, n_q=lap.n_q, cell=lap.cell,
                         inner_face=0, boundary_face=0)


def mass_flops(degree: int, n_q: int | None = None, even_odd: bool = True,
               n_components: int = 1) -> int:
    """Flops per cell of one mass mat-vec: forward value interpolation
    (3 tensor sweeps), pointwise JxW multiply, transposed integration."""
    n = degree + 1
    nq = n_q or n
    n2, nq2 = n * n, nq * nq
    fwd = (
        flops_apply_1d(nq, n, n2, even_odd)
        + flops_apply_1d(nq, n, n * nq, even_odd)
        + flops_apply_1d(nq, n, nq2, even_odd)
    )
    bwd = (
        flops_apply_1d(n, nq, nq2, even_odd)
        + flops_apply_1d(n, nq, nq * n, even_odd)
        + flops_apply_1d(n, nq, n2, even_odd)
    )
    return n_components * (fwd + nq**3 + bwd)


def inverse_mass_flops(degree: int, n_components: int = 1) -> int:
    """Collocation inverse mass per cell (needs n_q = k+1): two
    tensorized triads of square 1D sweeps plus a pointwise division."""
    n = degree + 1
    sweeps = 6 * flops_apply_1d(n, n, n * n, even_odd=False)
    return n_components * (sweeps + n**3)


def chebyshev_iteration_flops(degree: int, n_dofs_per_cell: int) -> int:
    """Vector-update Flops per smoother iteration and cell on top of the
    mat-vec: d = rho*rho_old*d + c*P(r); x += d; r -= A d -> ~6 Flop/DoF."""
    return 6 * n_dofs_per_cell
