"""Throughput measurement harness (Table 1's node-level metric).

Follows the paper's methodology: a series of repetitions of the same
operator application, reporting the *best* sample (Section 4: "All
experiments are based on a series of 20 repetitions, taking the
best-performing sample"), converted to processed unknowns per second
(DoF/s).

Alongside timing, :func:`measure_throughput` samples the *allocation
behavior* of one call via :mod:`tracemalloc` — peak newly allocated
bytes and the net number of surviving allocation blocks — so workspace
regressions (a plan layer silently falling back to fresh temporaries)
show up in the numbers, not just in the timings.  The allocation sample
runs on one extra call *after* the timed repetitions, so tracemalloc's
own overhead never pollutes the timing statistics.
"""

from __future__ import annotations

import gc
import time
import tracemalloc
from dataclasses import dataclass

import numpy as np


@dataclass
class ThroughputResult:
    name: str
    n_dofs: int
    best_seconds: float
    mean_seconds: float
    repetitions: int
    std_seconds: float = 0.0  # sample standard deviation across repetitions
    alloc_peak_bytes: int | None = None  # peak newly allocated bytes per call
    alloc_net_blocks: int | None = None  # net surviving allocation blocks per call

    @property
    def dofs_per_second(self) -> float:
        return self.n_dofs / self.best_seconds

    def __str__(self) -> str:
        s = (
            f"{self.name:<40s} {self.n_dofs:>10d} DoF  "
            f"{self.best_seconds * 1e3:8.2f} ms "
            f"(±{self.std_seconds * 1e3:.2f} ms)  "
            f"{self.dofs_per_second:12.3e} DoF/s"
        )
        if self.alloc_peak_bytes is not None:
            s += f"  alloc {self.alloc_peak_bytes / 1e6:7.2f} MB peak"
        return s


def measure_allocations(fn) -> tuple[int, int]:
    """(peak newly allocated bytes, net surviving blocks) of one ``fn()``.

    Peak is measured from a reset high-water mark, so it counts only
    memory allocated *during* the call; the net block count compares
    snapshots before/after and is 0 for a call that only writes into
    preexisting buffers (modulo the returned result itself)."""
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        tracemalloc.reset_peak()
        base, _ = tracemalloc.get_traced_memory()
        fn()
        _, peak = tracemalloc.get_traced_memory()
        after = tracemalloc.take_snapshot()
    finally:
        if not was_tracing:
            tracemalloc.stop()
    net_blocks = sum(s.count_diff for s in after.compare_to(before, "filename"))
    return max(0, peak - base), net_blocks


def measure_throughput(
    fn,
    n_dofs: int,
    name: str = "",
    repetitions: int = 20,
    warmup: int = 2,
    track_allocations: bool = True,
) -> ThroughputResult:
    """Time ``fn()`` ``repetitions`` times; best sample counts.

    The garbage collector is paused around the timed samples so a cycle
    collection landing inside one repetition cannot distort the best/mean
    statistics; the sample standard deviation is reported alongside as a
    noise indicator.  With ``track_allocations`` (default), one extra
    call after the timed block samples per-call allocation statistics
    under tracemalloc (see :func:`measure_allocations`)."""
    for _ in range(warmup):
        fn()
    samples = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repetitions):
            t0 = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - t0)
    finally:
        if gc_was_enabled:
            gc.enable()
    alloc_peak = alloc_blocks = None
    if track_allocations:
        alloc_peak, alloc_blocks = measure_allocations(fn)
    return ThroughputResult(
        name=name,
        n_dofs=n_dofs,
        best_seconds=min(samples),
        mean_seconds=float(np.mean(samples)),
        repetitions=repetitions,
        std_seconds=float(np.std(samples, ddof=1)) if len(samples) > 1 else 0.0,
        alloc_peak_bytes=alloc_peak,
        alloc_net_blocks=alloc_blocks,
    )


def measure_operator(op, name: str = "", repetitions: int = 20,
                     dtype=np.float64) -> ThroughputResult:
    """Throughput of ``op.vmult`` on a random vector."""
    rng = np.random.default_rng(0)
    x = rng.standard_normal(op.n_dofs).astype(dtype)
    return measure_throughput(
        lambda: op.vmult(x), op.n_dofs, name or type(op).__name__, repetitions
    )


def calibrate_local_machine(degree: int = 3, refinements: int = 2,
                            repetitions: int = 5):
    """Measure the DG-Laplacian mat-vec throughput of *this* machine and
    return a :class:`repro.parallel.machine.MachineModel` anchored to it,
    so the scaling model can also be evaluated in local units."""
    import dataclasses

    from ..core.dof_handler import DGDofHandler
    from ..core.operators import DGLaplaceOperator
    from ..mesh.connectivity import build_connectivity
    from ..mesh.generators import box
    from ..mesh.mapping import GeometryField
    from ..mesh.octree import Forest
    from ..parallel.machine import LOCAL_PYTHON

    mesh = box(subdivisions=(2, 1, 1), boundary_ids={0: 1})
    forest = Forest(mesh).refine_all(refinements)
    geo = GeometryField(forest, degree)
    conn = build_connectivity(forest)
    dof = DGDofHandler(forest, degree)
    op = DGLaplaceOperator(dof, geo, conn, dirichlet_ids=(1,))
    r = measure_operator(op, repetitions=repetitions)
    return dataclasses.replace(LOCAL_PYTHON, matvec_dofs_per_s_k3=r.dofs_per_second)
