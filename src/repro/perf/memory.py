"""Memory-transfer model of the matrix-free operator evaluation.

Figure 7's "ideal memory transfer" model (following Kronbichler &
Kormann 2019): a single main-memory transfer of every entry of the
source and destination vectors, the metric data ``D_e`` / ``D_f``, and a
few integers of element-neighbor metadata; all other accesses (the 1D
shape matrices, neighbor re-reads from the interleaved cell/face loop)
are served from cache.  The *measured* transfer on SuperMUC-NG is
reported 20-30% higher (MPI exchange and part of the neighbor access
exceed the caches); :func:`measured_transfer` applies that factor.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TransferModel:
    degree: int
    n_q: int
    bytes_per_cell: int

    def total_bytes(self, n_cells: int) -> int:
        return self.bytes_per_cell * n_cells

    def bytes_per_dof(self) -> float:
        return self.bytes_per_cell / (self.degree + 1) ** 3


def laplace_transfer(degree: int, n_q: int | None = None,
                     precision_bytes: int = 8,
                     n_components: int = 1) -> TransferModel:
    """Ideal bytes moved per cell for one DG Laplacian mat-vec:

    * source vector read + destination write (+ its read-for-update):
      3 x (k+1)^3 values per component,
    * cell metric block D_e: 6 symmetric entries + JxW per point is
      stored as the 3x3-symmetric ``laplace_d`` (6 doubles / q-point),
    * face metric data: normal (3) + J^{-T} column (3) + JxW (1) per face
      quadrature point, 6 faces shared between 2 cells -> 3 face-sheets
      per cell,
    * ~8 integers of connectivity metadata per cell.
    """
    k = degree
    n = k + 1
    nq = n_q or n
    vec = 3 * n**3 * n_components * precision_bytes
    cell_metric = 6 * nq**3 * precision_bytes
    face_metric = 3 * (7 * nq * nq) * precision_bytes
    metadata = 8 * 4
    return TransferModel(degree=k, n_q=nq,
                         bytes_per_cell=vec + cell_metric + face_metric + metadata)


def measured_transfer(model: TransferModel, excess: float = 1.25) -> TransferModel:
    """The paper reports actual transfers 20-30% above the ideal model."""
    return TransferModel(
        degree=model.degree,
        n_q=model.n_q,
        bytes_per_cell=int(model.bytes_per_cell * excess),
    )


def arithmetic_intensity(flops_per_cell: float, bytes_per_cell: float) -> float:
    return flops_per_cell / bytes_per_cell
