"""Fault-tolerant run harness: unified run configuration, divergence
recovery, the pressure-solver fallback chain, and auto-resume
checkpointing.

The three layers compose into runs that survive the failure modes
long-horizon production simulations actually hit:

* :class:`RunConfig` / :class:`RobustnessSettings` — one frozen,
  JSON-round-trippable object configures solver, simulation, CLI, and
  checkpoint layers;
* :func:`recoverable_step` / :class:`PressureFallbackChain` — a
  diverged step rolls back and retries with a smaller ``dt``; a failed
  pressure solve escalates mixed-precision MG -> double-precision MG ->
  Jacobi-CG with a raised iteration cap;
* :class:`CheckpointManager` — rotated, atomically written checkpoints
  with a ``latest`` pointer, resumable bit-identically
  (``repro lung --checkpoint-dir ... --resume latest``).
"""

from .checkpointing import CheckpointManager
from .config import RobustnessSettings, RunConfig
from .recovery import (
    FallbackTier,
    PressureFallbackChain,
    RecoveryEvent,
    StepFailure,
    recoverable_step,
    validate_scheme_state,
)

__all__ = [
    "CheckpointManager",
    "FallbackTier",
    "PressureFallbackChain",
    "RecoveryEvent",
    "RobustnessSettings",
    "RunConfig",
    "StepFailure",
    "recoverable_step",
    "validate_scheme_state",
]
