"""Automatic checkpointing with rotation, atomic writes, and a
``latest`` pointer for auto-resume.

Production deployments restart from checkpoints (``repro.ns.checkpoint``
holds the bit-identical state serialization); this module adds the
*policy* layer: write every N steps or every T simulated seconds, keep
the last K files, never leave a torn file behind (write to a temporary
name, then ``os.replace``), and maintain a ``latest`` pointer file so a
resuming process does not need to know checkpoint names.

File layout inside the checkpoint directory::

    ckpt-00000000.npz   oldest retained checkpoint
    ckpt-00000003.npz
    ckpt-00000004.npz   <- newest
    latest              text file containing "ckpt-00000004.npz"

Sequence numbers continue across resumed processes (the manager scans
the directory on construction), so a kill/resume cycle never overwrites
a checkpoint it might still need.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

from ..ns.checkpoint import load_lung_state, save_lung_state
from ..telemetry import TRACER
from .config import RobustnessSettings

_CKPT_RE = re.compile(r"-(\d{8})\.npz$")


class CheckpointManager:
    """Interval-policy checkpoint writer/reader for a lung simulation.

    Parameters
    ----------
    directory:
        Checkpoint directory (created if missing).
    every_steps:
        Write a checkpoint every N calls to :meth:`maybe_save`
        (0 disables the step policy).
    every_seconds:
        Write whenever at least this much *simulated* time has passed
        since the last write (0 disables the time policy).
    keep:
        Number of most recent checkpoints retained by rotation.
    """

    def __init__(
        self,
        directory: str | Path,
        every_steps: int = 0,
        every_seconds: float = 0.0,
        keep: int = 3,
        prefix: str = "ckpt",
    ) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.every_steps = int(every_steps or 0)
        self.every_seconds = float(every_seconds or 0.0)
        self.keep = int(keep)
        self.prefix = prefix
        self.n_writes = 0
        self._steps_since = 0
        self._last_t: float | None = None
        existing = self.checkpoints()
        self._seq = self._seq_of(existing[-1]) + 1 if existing else 0

    @classmethod
    def from_settings(cls, settings: RobustnessSettings) -> "CheckpointManager | None":
        """Build a manager from a :class:`RobustnessSettings`; ``None``
        when no checkpoint directory is configured."""
        if not settings.checkpoint_dir:
            return None
        return cls(
            settings.checkpoint_dir,
            every_steps=settings.checkpoint_every_steps,
            every_seconds=settings.checkpoint_every_seconds,
            keep=settings.checkpoint_keep,
        )

    # -- inspection ----------------------------------------------------
    @staticmethod
    def _seq_of(path: Path) -> int:
        m = _CKPT_RE.search(path.name)
        return int(m.group(1)) if m else -1

    def checkpoints(self) -> list[Path]:
        """Retained checkpoint files, oldest first."""
        return sorted(
            (p for p in self.directory.glob(f"{self.prefix}-*.npz")
             if _CKPT_RE.search(p.name)),
            key=self._seq_of,
        )

    def latest(self) -> Path | None:
        """The checkpoint the ``latest`` pointer names (falling back to
        the newest file when the pointer is missing or stale)."""
        pointer = self.directory / "latest"
        if pointer.exists():
            candidate = self.directory / pointer.read_text().strip()
            if candidate.exists():
                return candidate
        files = self.checkpoints()
        return files[-1] if files else None

    # -- writing -------------------------------------------------------
    def maybe_save(self, sim) -> Path | None:
        """Count one completed step and checkpoint if the interval
        policy (steps or simulated seconds) says it is due."""
        self._steps_since += 1
        t = float(sim.time)
        due = self.every_steps > 0 and self._steps_since >= self.every_steps
        if self.every_seconds > 0:
            if self._last_t is None:
                self._last_t = t  # baseline: first observed step
            elif t - self._last_t >= self.every_seconds * (1.0 - 1e-12):
                due = True
        return self.save(sim) if due else None

    def save(self, sim) -> Path:
        """Write one checkpoint atomically, advance the ``latest``
        pointer, and rotate old files."""
        name = f"{self.prefix}-{self._seq:08d}.npz"
        final = self.directory / name
        tmp = self.directory / f".tmp-{name}"
        written = save_lung_state(tmp, sim)
        os.replace(written, final)
        pointer_tmp = self.directory / ".tmp-latest"
        pointer_tmp.write_text(name + "\n")
        os.replace(pointer_tmp, self.directory / "latest")
        self._seq += 1
        self._steps_since = 0
        self._last_t = float(sim.time)
        self.n_writes += 1
        if TRACER.enabled:
            TRACER.incr("checkpoint.writes")
        self._rotate()
        return final

    def _rotate(self) -> None:
        files = self.checkpoints()
        for stale in files[: max(0, len(files) - self.keep)]:
            stale.unlink(missing_ok=True)

    # -- resuming ------------------------------------------------------
    def resume(self, sim, target: str | Path = "latest",
               config_drift: str = "warn") -> Path:
        """Restore ``sim`` from ``target`` ("latest" or an explicit
        path); returns the checkpoint path that was loaded.

        ``config_drift`` ("ignore" | "warn" | "raise") controls what
        happens when the checkpoint's stored :class:`RunConfig` differs
        from the simulation's."""
        path = self.latest() if str(target) == "latest" else Path(target)
        if path is None:
            raise FileNotFoundError(
                f"no checkpoint to resume from in {self.directory}"
            )
        if not Path(path).exists():
            raise FileNotFoundError(f"checkpoint {path} does not exist")
        load_lung_state(path, sim, config_drift=config_drift)
        if TRACER.enabled:
            TRACER.incr("checkpoint.loads")
        return Path(path)
