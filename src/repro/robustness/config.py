"""The unified run-facing configuration: one frozen :class:`RunConfig`
drives the solver, simulation, CLI, and checkpoint layers.

Production runs (Table 2, Section 5.3) take millions of dual-splitting
steps; their configuration used to be scattered over ~10 keyword
arguments of :class:`~repro.lung.simulation.LungVentilationSimulation`
plus per-subcommand argparse wiring.  ``RunConfig`` composes the solver
parameters (:class:`~repro.ns.solver.SolverSettings`), the
fault-tolerance policy (:class:`RobustnessSettings`), the ventilation
protocol, and the mesh/discretization parameters, and JSON round-trips
(``RunConfig.from_dict(c.to_dict()) == c``) so a checkpoint can carry
the exact configuration it was produced under.

This module imports nothing from the solver stack at module level (the
heavier settings classes are resolved lazily at construction time), so
every layer — time integration, solvers, simulation, CLI — can depend
on it without import cycles.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any

@dataclass(frozen=True)
class RobustnessSettings:
    """Fault-tolerance policy of a long-horizon run.

    *Step recovery*: after every dual-splitting step the new state
    (velocity, pressure, and the freshly cached convective evaluation)
    is validated for finiteness and bounded energy growth; a failed step
    is rolled back to the BDF history still held in memory, the step
    size is shrunk by ``dt_backoff``, and the step is retried up to
    ``max_step_retries`` times before a structured
    :class:`~repro.robustness.recovery.StepFailure` surfaces.

    *Solver fallback*: when enabled, a failed pressure solve escalates
    deterministically through mixed-precision multigrid -> full
    double-precision multigrid -> Jacobi-preconditioned CG with the
    iteration cap raised by ``fallback_max_iter_scale``.

    *Checkpointing*: ``checkpoint_dir`` plus an interval (in steps or
    simulated seconds) enables automatic rotated checkpoints with a
    ``latest`` pointer (see
    :class:`~repro.robustness.checkpointing.CheckpointManager`).
    """

    max_step_retries: int = 3
    dt_backoff: float = 0.5
    energy_growth_limit: float = 1.0e6  # per-step ||u||^2 factor; <= 0 disables
    enable_fallback: bool = True
    fallback_max_iter_scale: float = 4.0
    checkpoint_dir: str | None = None
    checkpoint_every_steps: int = 0  # 0 disables the step-interval policy
    checkpoint_every_seconds: float = 0.0  # simulated seconds; 0 disables
    checkpoint_keep: int = 3

    def __post_init__(self) -> None:
        if self.max_step_retries < 0:
            raise ValueError("max_step_retries must be >= 0")
        if not 0.0 < self.dt_backoff < 1.0:
            raise ValueError("dt_backoff must be in (0, 1)")
        if self.checkpoint_keep < 1:
            raise ValueError("checkpoint_keep must be >= 1")


@dataclass(frozen=True)
class RunConfig:
    """Complete description of a (lung) simulation run.

    ``solver``, ``ventilation``, and ``robustness`` default to the
    settings-class defaults when omitted; ``viscosity`` defaults to the
    kinematic viscosity of air.  The object is frozen — derive variants
    with :func:`dataclasses.replace`.
    """

    generations: int = 3
    degree: int = 2
    scale: float = 1.0
    refine_upper_generations: int = 0
    viscosity: float | None = None  # None -> AIR_KINEMATIC_VISCOSITY
    seed: int = 0
    #: storage/compute dtype of the forward solve ("float64" or
    #: "float32"); checkpoints and the outer pressure iteration stay in
    #: double precision either way (Section 3.4 mixed precision)
    compute_dtype: str = "float64"
    #: patient-variability multipliers on the morphometry-derived
    #: windkessel R and C — the per-member knobs ensemble runs sweep
    windkessel_resistance_scale: float = 1.0
    windkessel_compliance_scale: float = 1.0
    #: shared-memory worker processes for the pressure-Poisson mat-vec
    #: (>= 2 enables the pool; 0/1 run serial).  fp64 steps are bitwise
    #: identical either way, so checkpoints are interchangeable
    workers: int = 0
    #: record per-rank timeline events (pack/post/interior/wait/...) in
    #: the worker pool's shared-memory rings; off by default — the
    #: recording sites are allocation-free but still cost perf_counter
    #: calls.  Only meaningful with ``workers >= 2``
    trace_timeline: bool = False
    solver: Any = None  # SolverSettings
    ventilation: Any = None  # VentilationSettings
    robustness: RobustnessSettings | None = None

    def __post_init__(self) -> None:
        if self.compute_dtype not in ("float64", "float32"):
            raise ValueError(
                f"compute_dtype must be 'float64' or 'float32', "
                f"got {self.compute_dtype!r}"
            )
        # lazy imports keep this module free of solver-stack dependencies
        if self.solver is None:
            from ..ns.solver import SolverSettings

            object.__setattr__(self, "solver", SolverSettings())
        if self.ventilation is None:
            from ..lung.ventilator import VentilationSettings

            object.__setattr__(self, "ventilation", VentilationSettings())
        if self.robustness is None:
            object.__setattr__(self, "robustness", RobustnessSettings())
        if self.viscosity is None:
            from ..lung.morphometry import AIR_KINEMATIC_VISCOSITY

            object.__setattr__(self, "viscosity", AIR_KINEMATIC_VISCOSITY)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "generations": self.generations,
            "degree": self.degree,
            "scale": self.scale,
            "refine_upper_generations": self.refine_upper_generations,
            "viscosity": self.viscosity,
            "seed": self.seed,
            "compute_dtype": self.compute_dtype,
            "windkessel_resistance_scale": self.windkessel_resistance_scale,
            "windkessel_compliance_scale": self.windkessel_compliance_scale,
            "workers": self.workers,
            "trace_timeline": self.trace_timeline,
            "solver": dataclasses.asdict(self.solver),
            "ventilation": dataclasses.asdict(self.ventilation),
            "robustness": dataclasses.asdict(self.robustness),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunConfig":
        from ..lung.ventilator import VentilationSettings
        from ..ns.solver import SolverSettings

        scalar_keys = (
            "generations",
            "degree",
            "scale",
            "refine_upper_generations",
            "viscosity",
            "seed",
            "compute_dtype",
            "windkessel_resistance_scale",
            "windkessel_compliance_scale",
            "workers",
            "trace_timeline",
        )
        unknown = set(d) - set(scalar_keys) - {"solver", "ventilation", "robustness"}
        if unknown:
            raise ValueError(f"unknown RunConfig keys: {sorted(unknown)}")
        kwargs: dict = {k: d[k] for k in scalar_keys if k in d}
        if d.get("solver") is not None:
            kwargs["solver"] = SolverSettings(**d["solver"])
        if d.get("ventilation") is not None:
            kwargs["ventilation"] = VentilationSettings(**d["ventilation"])
        if d.get("robustness") is not None:
            kwargs["robustness"] = RobustnessSettings(**d["robustness"])
        return cls(**kwargs)

    def to_json(self, **dumps_kwargs) -> str:
        # non-finite floats (dt_max defaults to inf) serialize as the
        # Infinity token, which json.loads round-trips by default
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "RunConfig":
        return cls.from_dict(json.loads(text))

    # -- construction fronts -------------------------------------------
    @classmethod
    def from_args(cls, args) -> "RunConfig":
        """Build a config from the CLI ``lung`` argparse namespace.

        ``--config FILE`` (a :meth:`to_json` document) provides the
        base; explicitly passed flags override it.  Flags left at their
        ``None`` argparse default inherit the base values (the CLI's
        historical defaults: one generation, degree 2)."""
        if getattr(args, "config", None):
            with open(args.config) as f:
                base = cls.from_dict(json.load(f))
        else:
            base = cls(generations=1)
            # the lung subcommand's historical relaxed tolerance
            base = dataclasses.replace(
                base,
                solver=dataclasses.replace(base.solver, solver_tolerance=1e-3),
            )
        updates: dict = {}
        for attr in ("generations", "degree", "seed", "compute_dtype", "workers"):
            value = getattr(args, attr, None)
            if value is not None:
                updates[attr] = value
        # --trace-timeline carries the trace output path; the config
        # records only that recording is on
        if getattr(args, "trace_timeline", None):
            updates["trace_timeline"] = True
        solver = base.solver
        if getattr(args, "tolerance", None) is not None:
            solver = dataclasses.replace(solver, solver_tolerance=args.tolerance)
        rb_updates: dict = {}
        for attr, field_name in (
            ("checkpoint_dir", "checkpoint_dir"),
            ("checkpoint_every", "checkpoint_every_steps"),
            ("checkpoint_every_seconds", "checkpoint_every_seconds"),
            ("checkpoint_keep", "checkpoint_keep"),
            ("max_step_retries", "max_step_retries"),
        ):
            value = getattr(args, attr, None)
            if value is not None:
                rb_updates[field_name] = value
        robustness = (
            dataclasses.replace(base.robustness, **rb_updates)
            if rb_updates
            else base.robustness
        )
        return dataclasses.replace(base, solver=solver, robustness=robustness, **updates)
