"""Fault-tolerant time stepping: divergence detection with rollback and
retry, and the deterministic pressure-solver fallback chain.

The failure modes absorbed here are the ones long-horizon runs actually
hit (Fehn et al., arXiv:1806.03095; Franco et al., arXiv:1910.03032):

* a too-aggressive CFL-adaptive step diverges *recoverably* — the BDF
  history of the previous step is still in memory, so the step can be
  rolled back, the step size shrunk, and the step retried;
* the cheap mixed-precision multigrid V-cycle stalls or overflows on a
  hard right-hand side — a more conservative (and more expensive)
  preconditioner tier still converges.

Every recovery action is recorded as a :class:`RecoveryEvent` and, when
the global tracer is enabled, as ``recovery.*`` / ``fallback.*``
telemetry counters so ``repro report`` can show a run's fault history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..solvers.krylov import SolverResult, conjugate_gradient
from ..telemetry import TRACER
from ..telemetry.metrics import METRICS
from .config import RobustnessSettings

# module-level metric handles for the fault-tolerance activity
_RECOVERY_RETRIES = METRICS.counter(
    "repro_recovery_step_retries_total",
    "diverged time steps rolled back and retried, by validation reason",
    labels=("reason",),
)
_RECOVERY_FAILURES = METRICS.counter(
    "repro_recovery_step_failures_total",
    "time steps abandoned after the retry budget",
)
_FALLBACK_TIER = METRICS.counter(
    "repro_fallback_tier_total",
    "converged solves per preconditioner tier of a fallback chain",
    labels=("chain", "tier"),
)
_FALLBACK_ESCALATIONS = METRICS.counter(
    "repro_fallback_escalations_total",
    "solves that needed a tier beyond the primary preconditioner",
    labels=("chain",),
)
_FALLBACK_EXHAUSTED = METRICS.counter(
    "repro_fallback_exhausted_total",
    "solves where every tier of the chain failed",
    labels=("chain",),
)


@dataclass
class RecoveryEvent:
    """One recovery action taken during a run (the fault history)."""

    kind: str  # "step_retry" | "step_failure" | "fallback_escalation"
    t: float
    reason: str = ""
    dt: float = float("nan")
    attempt: int = 0
    detail: str = ""


class StepFailure(RuntimeError):
    """A time step could not be completed within the retry budget.

    Carries the structured context a driver needs to decide what to do
    next (checkpoint and abort, coarsen, alert): the last failure
    ``reason``, the simulated time ``t`` the step started from, the
    last attempted ``dt``, the number of ``attempts`` made, and the
    per-attempt :class:`RecoveryEvent` list."""

    def __init__(
        self,
        reason: str,
        t: float,
        dt: float,
        attempts: int,
        events: list[RecoveryEvent] | None = None,
    ) -> None:
        self.reason = reason
        self.t = t
        self.dt = dt
        self.attempts = attempts
        self.events = list(events or [])
        super().__init__(
            f"time step at t={t:.6e} failed after {attempts} attempt(s) "
            f"(last dt={dt:.3e}): {reason}"
        )


def validate_scheme_state(scheme, prev_energy: float,
                          settings: RobustnessSettings) -> str | None:
    """Check the post-step state of a dual-splitting scheme; returns a
    failure reason or ``None``.

    The freshly cached convective evaluation is validated alongside the
    new velocity and pressure: it feeds the *next* step's extrapolation,
    so a NaN there would silently poison the BDF history after the step
    itself looked fine."""
    u = scheme.u_history[0]
    if not np.isfinite(u).all():
        return "non_finite_velocity"
    p = scheme.p_history[0] if scheme.p_history else None
    if p is not None and not np.isfinite(p).all():
        return "non_finite_pressure"
    if scheme.conv_history and not np.isfinite(scheme.conv_history[0]).all():
        return "non_finite_convective"
    limit = settings.energy_growth_limit
    if limit > 0 and prev_energy > 0:
        energy = _state_energy(u)
        if energy > limit * prev_energy:
            return "energy_blowup"
    return None


def _state_energy(u: np.ndarray) -> float:
    """``||u||^2`` over the whole state (ensemble-stacked or flat)."""
    return float(u @ u) if u.ndim == 1 else float(np.vdot(u, u))


def recoverable_step(
    scheme,
    dt: float,
    settings: RobustnessSettings,
    events: list[RecoveryEvent] | None = None,
):
    """Advance ``scheme`` by one validated step with rollback/retry.

    On a failed validation the scheme is rolled back to its pre-step
    state (the BDF history arrays are never mutated in place, so a
    shallow snapshot suffices), ``dt`` is shrunk by the backoff factor,
    and the step is retried; after ``max_step_retries`` retries a
    :class:`StepFailure` surfaces with the pre-step state restored.
    Returns the :class:`~repro.timeint.dual_splitting.StepStatistics`
    of the successful attempt."""
    snapshot = scheme.snapshot_state()
    u0 = scheme.u_history[0] if scheme.u_history else None
    prev_energy = _state_energy(u0) if u0 is not None else 0.0
    dt_try = float(dt)
    reason = ""
    attempts = 0
    for attempt in range(settings.max_step_retries + 1):
        attempts = attempt + 1
        stats = scheme.step(dt_try)
        reason = validate_scheme_state(scheme, prev_energy, settings)
        if reason is None:
            return stats
        scheme.restore_state(snapshot)
        if TRACER.enabled:
            TRACER.incr(f"recovery.reasons.{reason}")
        if attempt == settings.max_step_retries:
            break  # budget exhausted: no retry follows this failure
        if TRACER.enabled:
            TRACER.incr("recovery.step_retries")
        if METRICS.enabled:
            _RECOVERY_RETRIES.labels(reason).inc()
        if events is not None:
            events.append(
                RecoveryEvent(
                    kind="step_retry",
                    t=scheme.t,
                    reason=reason,
                    dt=dt_try,
                    attempt=attempts,
                )
            )
        dt_try *= settings.dt_backoff
    if TRACER.enabled:
        TRACER.incr("recovery.step_failures")
    _RECOVERY_FAILURES.inc()
    last_dt = dt_try
    if events is not None:
        events.append(
            RecoveryEvent(
                kind="step_failure",
                t=scheme.t,
                reason=reason,
                dt=last_dt,
                attempt=attempts,
            )
        )
    raise StepFailure(reason, scheme.t, last_dt, attempts, events)


# ----------------------------------------------------------------------
@dataclass
class FallbackTier:
    """One preconditioner tier of a fallback chain.

    ``make_preconditioner`` is called lazily on first use (a
    double-precision multigrid hierarchy is only built when the cheap
    tier actually fails) and the result is cached by the chain."""

    name: str
    make_preconditioner: Callable[[], object]
    max_iter_scale: float = 1.0


class PressureFallbackChain:
    """Deterministic solver escalation for an SPD (pressure) solve.

    Tiers are tried in order; the first converged tier wins and is
    recorded (``tier_counts``, ``res.tier``, telemetry counters).  A
    tier that made finite partial progress warm-starts the next tier;
    a non-finite right-hand side short-circuits the chain, since no
    preconditioner can rescue a poisoned system.  If every tier fails,
    the last (non-converged) :class:`SolverResult` is returned — the
    step-level retry/backoff harness owns that failure."""

    def __init__(self, tiers: list[FallbackTier], name: str = "pressure") -> None:
        if not tiers:
            raise ValueError("a fallback chain needs at least one tier")
        self.name = name
        self.tiers = list(tiers)
        self.tier_counts: dict[str, int] = {t.name: 0 for t in self.tiers}
        self.escalations = 0
        self.events: list[RecoveryEvent] = []
        self._preconditioners: dict[str, object] = {}

    @property
    def tier_names(self) -> list[str]:
        return [t.name for t in self.tiers]

    def preconditioner(self, tier: FallbackTier):
        if tier.name not in self._preconditioners:
            self._preconditioners[tier.name] = tier.make_preconditioner()
        return self._preconditioners[tier.name]

    def solve(
        self,
        op,
        b: np.ndarray,
        tol: float,
        max_iter: int,
        x0: np.ndarray | None = None,
    ) -> SolverResult:
        x_start = x0
        last: SolverResult | None = None
        for i, tier in enumerate(self.tiers):
            # tier 0 keeps the chain's plain name so the primary solve
            # reports under the same telemetry labels as before
            label = self.name if i == 0 else f"{self.name}:{tier.name}"
            res = conjugate_gradient(
                op,
                b,
                self.preconditioner(tier),
                tol=tol,
                max_iter=max(1, int(round(max_iter * tier.max_iter_scale))),
                x0=x_start,
                name=label,
            )
            if res.converged:
                res.tier = tier.name
                self.tier_counts[tier.name] += 1
                if i > 0:
                    self.escalations += 1
                    self.events.append(
                        RecoveryEvent(
                            kind="fallback_escalation",
                            t=float("nan"),
                            reason=last.failure_reason or "" if last else "",
                            detail=tier.name,
                        )
                    )
                if TRACER.enabled:
                    TRACER.incr(f"fallback.{self.name}.tier.{tier.name}")
                    if i > 0:
                        TRACER.incr(f"fallback.{self.name}.escalations")
                if METRICS.enabled:
                    _FALLBACK_TIER.labels((self.name, tier.name)).inc()
                    if i > 0:
                        _FALLBACK_ESCALATIONS.labels(self.name).inc()
                return res
            last = res
            if res.failure_reason == "nan_residual" and not np.isfinite(b).all():
                break  # a poisoned right-hand side cannot be rescued
            # warm-start the next tier from finite partial progress
            x_start = res.x if np.isfinite(res.x).all() else x0
        if TRACER.enabled:
            TRACER.incr(f"fallback.{self.name}.exhausted")
        if METRICS.enabled:
            _FALLBACK_EXHAUSTED.labels(self.name).inc()
        last.tier = ""
        return last


# re-exported for call sites that only need the event type
__all__ = [
    "FallbackTier",
    "PressureFallbackChain",
    "RecoveryEvent",
    "StepFailure",
    "recoverable_step",
    "validate_scheme_state",
]
