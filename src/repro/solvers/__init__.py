"""Linear solvers: preconditioned CG, Chebyshev/Jacobi smoothing,
smoothed-aggregation AMG, multigrid transfers, and the hybrid
geometric-polynomial-algebraic multigrid preconditioner."""

from .krylov import SolverResult, conjugate_gradient, lanczos_max_eigenvalue
from .jacobi import JacobiPreconditioner
from .chebyshev import ChebyshevSmoother
from .amg import SmoothedAggregationAMG
from .assemble import assemble_cg_laplace
from .transfer import Transfer, dg_from_cg, h_transfer, p_transfer
from .multigrid import HybridMultigridPreconditioner, single_precision_operator

__all__ = [
    "SolverResult",
    "conjugate_gradient",
    "lanczos_max_eigenvalue",
    "JacobiPreconditioner",
    "ChebyshevSmoother",
    "SmoothedAggregationAMG",
    "assemble_cg_laplace",
    "Transfer",
    "dg_from_cg",
    "h_transfer",
    "p_transfer",
    "HybridMultigridPreconditioner",
    "single_precision_operator",
]
