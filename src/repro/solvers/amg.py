"""Smoothed-aggregation algebraic multigrid — the coarse-grid solver.

Substitutes hypre's BoomerAMG (Section 3.4): the hybrid multigrid's
coarsest geometric level (linear continuous elements on the unstructured
coarse mesh, several hundred thousand unknowns for the g = 11 lung) is
handed to an AMG solver run in double precision.  Matching the paper's
configuration, the default coarse solve applies **two V-cycles with a
single sweep of symmetric Gauss–Seidel smoothing**.

The implementation is classical smoothed aggregation (Vaněk et al.):
strength-filtered greedy aggregation, piecewise-constant tentative
prolongator smoothed by one damped-Jacobi step, Galerkin coarse
operators, and a dense direct solve on the coarsest level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla


def strength_graph(A: sp.csr_matrix, theta: float = 0.08) -> sp.csr_matrix:
    """Symmetric strength-of-connection filter:
    keep ``|a_ij| > theta * sqrt(a_ii a_jj)``."""
    d = np.asarray(A.diagonal())
    d = np.where(d > 0, d, 1.0)
    C = A.tocoo(copy=True)
    keep = np.abs(C.data) > theta * np.sqrt(d[C.row] * d[C.col])
    keep &= C.row != C.col
    return sp.csr_matrix(
        (C.data[keep], (C.row[keep], C.col[keep])), shape=A.shape
    )


def aggregate(S: sp.csr_matrix) -> np.ndarray:
    """Greedy aggregation on the strength graph; returns the aggregate
    index of every node (isolated nodes form singleton aggregates)."""
    n = S.shape[0]
    agg = -np.ones(n, dtype=np.int64)
    indptr, indices = S.indptr, S.indices
    next_agg = 0
    # pass 1: seed aggregates from fully unassigned neighborhoods
    for i in range(n):
        if agg[i] != -1:
            continue
        nbrs = indices[indptr[i] : indptr[i + 1]]
        if np.all(agg[nbrs] == -1):
            agg[i] = next_agg
            agg[nbrs] = next_agg
            next_agg += 1
    # pass 2: attach leftovers to a neighboring aggregate
    for i in range(n):
        if agg[i] != -1:
            continue
        nbrs = indices[indptr[i] : indptr[i + 1]]
        assigned = nbrs[agg[nbrs] != -1]
        if assigned.size:
            agg[i] = agg[assigned[0]]
        else:
            agg[i] = next_agg
            next_agg += 1
    return agg


def tentative_prolongator(agg: np.ndarray) -> sp.csr_matrix:
    """Piecewise-constant prolongator, columns normalized."""
    n = agg.size
    n_agg = int(agg.max()) + 1 if n else 0
    counts = np.bincount(agg, minlength=n_agg).astype(float)
    vals = 1.0 / np.sqrt(counts[agg])
    return sp.csr_matrix((vals, (np.arange(n), agg)), shape=(n, n_agg))


def estimate_spectral_radius(A: sp.csr_matrix, n_iter: int = 15, seed: int = 7) -> float:
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(A.shape[0])
    lam = 1.0
    for _ in range(n_iter):
        y = A @ x
        norm = np.linalg.norm(y)
        if norm == 0:
            return 1.0
        lam = float(x @ y / (x @ x))
        x = y / norm
    return abs(lam)


def symmetric_gauss_seidel(A: sp.csr_matrix, b: np.ndarray, x: np.ndarray) -> np.ndarray:
    """One symmetric Gauss-Seidel sweep (forward then backward), using
    scipy triangular solves on the splitting matrices."""
    L = sp.tril(A, format="csr")  # D + strictly lower
    U = sp.triu(A, format="csr")  # D + strictly upper
    # forward: (D+L) x_new = b - U_strict x
    x = spla.spsolve_triangular(L, b - (A - L) @ x, lower=True)
    # backward
    x = spla.spsolve_triangular(U.tocsr(), b - (A - U) @ x, lower=False)
    return x


@dataclass
class _Level:
    A: sp.csr_matrix
    P: sp.csr_matrix | None  # to coarser


class SmoothedAggregationAMG:
    """AMG hierarchy over an assembled sparse SPD matrix.

    ``vmult`` applies ``n_cycles`` V-cycles (default 2, the paper's coarse
    solver setting) as a preconditioner/approximate solve.
    """

    def __init__(
        self,
        A: sp.spmatrix,
        theta: float = 0.08,
        max_coarse: int = 200,
        max_levels: int = 12,
        n_cycles: int = 2,
        omega_factor: float = 4.0 / 3.0,
    ) -> None:
        A = sp.csr_matrix(A)
        if A.shape[0] != A.shape[1]:
            raise ValueError("matrix must be square")
        self.n_cycles = n_cycles
        self.levels: list[_Level] = []
        while A.shape[0] > max_coarse and len(self.levels) < max_levels - 1:
            S = strength_graph(A, theta)
            agg = aggregate(S)
            P0 = tentative_prolongator(agg)
            if P0.shape[1] >= A.shape[0]:  # aggregation stalled
                break
            dinv = 1.0 / np.maximum(np.asarray(A.diagonal()), 1e-300)
            DinvA = sp.diags(dinv) @ A
            rho = estimate_spectral_radius(DinvA)
            omega = omega_factor / max(rho, 1e-12)
            P = (sp.eye(A.shape[0], format="csr") - omega * DinvA) @ P0
            P = sp.csr_matrix(P)
            self.levels.append(_Level(A=A, P=P))
            A = sp.csr_matrix(P.T @ A @ P)
        self.levels.append(_Level(A=A, P=None))
        self._coarse_dense = np.asarray(A.todense())
        # regularize a singular coarsest matrix (pure-Neumann problems)
        w, _ = np.linalg.eigh(self._coarse_dense)
        if w.min() < 1e-12 * max(w.max(), 1.0):
            self._coarse_dense = self._coarse_dense + np.eye(A.shape[0]) * (
                1e-10 * max(w.max(), 1.0)
            )
        self._coarse_factor = np.linalg.cholesky(self._coarse_dense)

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    @property
    def n_dofs(self) -> int:
        return self.levels[0].A.shape[0]

    def _coarse_solve(self, b: np.ndarray) -> np.ndarray:
        L = self._coarse_factor
        return np.linalg.solve(L.T, np.linalg.solve(L, b))

    def _vcycle(self, level: int, b: np.ndarray, x: np.ndarray) -> np.ndarray:
        lev = self.levels[level]
        if lev.P is None:
            return self._coarse_solve(b)
        x = symmetric_gauss_seidel(lev.A, b, x)
        r = b - lev.A @ x
        bc = lev.P.T @ r
        xc = self._vcycle(level + 1, bc, np.zeros_like(bc))
        x = x + lev.P @ xc
        x = symmetric_gauss_seidel(lev.A, b, x)
        return x

    def vmult(self, b: np.ndarray) -> np.ndarray:
        if getattr(b, "ndim", 1) == 2:
            # ensemble-stacked (E, n): the sparse kernels and triangular
            # solves all take multiple right-hand sides column-wise
            bt = np.ascontiguousarray(np.asarray(b, dtype=np.float64).T)
            xt = np.zeros_like(bt)
            for _ in range(self.n_cycles):
                xt = self._vcycle(0, bt, xt)
            return np.ascontiguousarray(xt.T)
        x = np.zeros_like(b, dtype=np.float64)
        for _ in range(self.n_cycles):
            x = self._vcycle(0, np.asarray(b, dtype=np.float64), x)
        return x

    def solve(self, b: np.ndarray, tol: float = 1e-10, max_cycles: int = 100):
        """Stand-alone V-cycle iteration to the given relative residual."""
        A = self.levels[0].A
        x = np.zeros_like(b, dtype=np.float64)
        b_norm = np.linalg.norm(b)
        history = [float(b_norm)]
        for _ in range(max_cycles):
            x = self._vcycle(0, b, x)
            res = float(np.linalg.norm(b - A @ x))
            history.append(res)
            if res <= tol * b_norm:
                return x, history
        return x, history
