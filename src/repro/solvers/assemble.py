"""Sparse assembly of the continuous Laplacian — used only for the AMG
coarse level (the paper runs BoomerAMG on an assembled linear FE matrix;
all finer levels stay matrix-free)."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..core.dof_handler import CGDofHandler
from ..mesh.mapping import GeometryField


def gradient_tensors(kernel) -> np.ndarray:
    """B[a, Q, I] = d phi_I / d ref_a at quadrature point Q, built from
    the 1D shape matrices (Q and I flattened x-fastest)."""
    Ng = kernel.shape.interp
    Dg = kernel.shape.grad
    nq, n = Ng.shape
    out = np.empty((3, nq**3, n**3))
    for a in range(3):
        mz = Dg if a == 2 else Ng
        my = Dg if a == 1 else Ng
        mx = Dg if a == 0 else Ng
        B = np.einsum("ZI,YJ,XK->ZYXIJK", mz, my, mx).reshape(nq**3, n**3)
        out[a] = B
    return out


def assemble_cg_laplace(dof: CGDofHandler, geometry: GeometryField) -> sp.csr_matrix:
    """Assemble ``C^T A C`` for the continuous Laplacian on the masters."""
    kern = geometry.kernel
    cm = geometry.cell_metrics()
    B = gradient_tensors(kern)  # (3, Q, I)
    N = dof.n_cells
    nloc = kern.n_dofs_cell
    D = cm.laplace_d.reshape(N, 3, 3, -1)  # (c, a, b, Q)
    # local matrices: A_loc[c, I, J] = sum_{a,b,Q} B[a,Q,I] D[c,a,b,Q] B[b,Q,J]
    A_loc = np.einsum("aQI,cabQ,bQJ->cIJ", B, D, B, optimize=True)
    rows = np.repeat(dof.cell_to_global.reshape(N, nloc), nloc, axis=1).ravel()
    cols = np.tile(dof.cell_to_global.reshape(N, nloc), (1, nloc)).ravel()
    A_global = sp.csr_matrix(
        (A_loc.ravel(), (rows, cols)), shape=(dof.n_global, dof.n_global)
    )
    A = dof.Ct @ A_global @ dof.C
    A.sum_duplicates()
    return sp.csr_matrix(A)
