"""Chebyshev smoother with point-Jacobi inner preconditioning.

Section 3.4: "we select a Chebyshev smoother with point Jacobi as
preconditioner, using a polynomial degree of three with three
matrix-vector products for pre- and postsmoothing".  The eigenvalue
range is set from a CG-Lanczos estimate of the largest eigenvalue of
``D^{-1} A`` (the deal.II strategy); the smoothing interval is
``[lambda_max / smoothing_range, lambda_max * 1.2]``.

Chebyshev smoothing only needs matrix-vector products and vector
updates, making it the throughput-dominated kernel whose DoF/s are
reported in Figure 6 (left) — in single precision inside the V-cycle.
"""

from __future__ import annotations

import numpy as np

from ..telemetry import TRACER
from ..telemetry.metrics import METRICS
from .jacobi import JacobiPreconditioner
from .krylov import lanczos_max_eigenvalue

# smoothers are labeled by operator size: the MG hierarchy builds one
# smoother per level, and n_dofs identifies the level without coupling
# this module to the multigrid's level names
_CHEB_LAMBDA_MAX = METRICS.gauge(
    "repro_chebyshev_lambda_max",
    "upper end of the Chebyshev smoothing interval (eig_margin x the "
    "CG-Lanczos estimate of lambda_max(D^-1 A))",
    labels=("dofs",),
)
_CHEB_LAMBDA_MIN = METRICS.gauge(
    "repro_chebyshev_lambda_min",
    "lower end of the Chebyshev smoothing interval "
    "(lambda_max / smoothing_range)",
    labels=("dofs",),
)


def _iadd(x: np.ndarray, d: np.ndarray) -> np.ndarray:
    """``x += d`` when dtype-preserving, else the promoting ``x + d`` —
    bitwise identical to the allocating recurrence either way (a mixed
    float32/float64 pair must promote exactly as ``x + d`` would)."""
    if x.dtype == np.result_type(x.dtype, d.dtype):
        x += d
        return x
    return x + d


def _isub(x: np.ndarray, d: np.ndarray) -> np.ndarray:
    if x.dtype == np.result_type(x.dtype, d.dtype):
        x -= d
        return x
    return x - d


class ChebyshevSmoother:
    """Chebyshev-accelerated Jacobi iteration of fixed polynomial degree.

    Parameters
    ----------
    op:
        Operator with ``vmult`` and ``diagonal``.
    degree:
        Number of matrix-vector products per smoothing application
        (paper: 3).
    smoothing_range:
        Ratio between the largest and smallest eigenvalue targeted by the
        smoother; only the upper ``1/smoothing_range`` fraction of the
        spectrum is damped (multigrid handles the rest).
    eig_margin:
        Safety factor on the estimated lambda_max (deal.II uses 1.2).
    """

    def __init__(
        self,
        op,
        degree: int = 3,
        smoothing_range: float = 15.0,
        eig_margin: float = 1.2,
        lanczos_iterations: int = 12,
        jacobi: JacobiPreconditioner | None = None,
    ) -> None:
        if degree < 1:
            raise ValueError("smoother degree must be >= 1")
        self.op = op
        self.degree = degree
        # the Jacobi inverse diagonal follows the operator's compute
        # dtype: a float64 inv_diag inside a float32 V-cycle would
        # silently promote every smoothing sweep back to double
        self.jacobi = jacobi or JacobiPreconditioner(
            op, dtype=getattr(op, "dtype", np.float64)
        )
        lam_max = lanczos_max_eigenvalue(
            op, self.jacobi, n_iter=lanczos_iterations, n=self.jacobi.n_dofs
        )
        self.lambda_max = eig_margin * lam_max
        self.lambda_min = lam_max / smoothing_range
        self.theta = 0.5 * (self.lambda_max + self.lambda_min)
        self.delta = 0.5 * (self.lambda_max - self.lambda_min)
        self._buffers: dict = {}
        if METRICS.enabled:
            dofs = str(self.jacobi.n_dofs)
            _CHEB_LAMBDA_MAX.labels(dofs).set(self.lambda_max)
            _CHEB_LAMBDA_MIN.labels(dofs).set(self.lambda_min)

    def _jacobi_buffer(self, r: np.ndarray) -> np.ndarray:
        """Reusable output buffer for ``P.vmult(r, out=...)`` in the
        promoted result dtype (keyed by shape and dtype)."""
        dt = np.result_type(r.dtype, self.jacobi.inv_diag.dtype)
        key = (r.shape, dt.str)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(r.shape, dtype=dt)
            self._buffers[key] = buf
        return buf

    @property
    def n_dofs(self) -> int:
        return self.jacobi.n_dofs

    def smooth(self, b: np.ndarray, x: np.ndarray | None = None) -> np.ndarray:
        """Apply ``degree`` Chebyshev iterations to ``A x = b`` starting
        from ``x`` (zero if omitted); returns the smoothed iterate.

        The three-term recurrence updates ``x``, ``r``, and ``d`` in
        place (a caller-provided ``x`` is never mutated — the first
        update copies out of it), with a reusable buffer for the Jacobi
        product — the steady-state loop performs no vector allocations
        beyond the operator application itself, and stays bitwise
        identical to the allocating form of the recurrence.
        """
        op, P = self.op, self.jacobi
        if not TRACER.enabled:
            return self._smooth(op, P, b, x)
        TRACER.incr("chebyshev.applications")
        with TRACER.span("chebyshev"):
            # own vector-update work on top of the (self-annotating)
            # operator and Jacobi applications: ~6 Flop/DoF/iteration
            from ..perf.flops import chebyshev_iteration_flops

            n = b.size
            TRACER.annotate(
                flops=float(self.degree * chebyshev_iteration_flops(self.degree, n)),
                bytes=float(self.degree * 4 * b.dtype.itemsize * n),
                dofs=float(n),
            )
            return self._smooth(op, P, b, x)

    def _smooth(self, op, P, b: np.ndarray, x: np.ndarray | None) -> np.ndarray:
        theta, delta = self.theta, self.delta
        if x is None:
            x = np.zeros_like(b)
            r = b.copy()
            x_owned = True
        else:
            r = b - op.vmult(x)
            x_owned = False
        sigma = theta / delta
        rho_old = 1.0 / sigma
        d = P.vmult(r)
        d /= theta
        x = _iadd(x, d) if x_owned else x + d
        for _ in range(1, self.degree):
            rho = 1.0 / (2.0 * sigma - rho_old)
            r = _isub(r, op.vmult(d))
            # d <- (rho rho_old) d + (2 rho / delta) P r, without the two
            # temporaries (addition of identical summands is bitwise
            # insensitive to the in-place rewrite)
            d *= rho * rho_old
            z = P.vmult(r, out=self._jacobi_buffer(r))
            z *= 2.0 * rho / delta
            d += z
            x = _iadd(x, d)
            rho_old = rho
        return x

    def vmult(self, r: np.ndarray) -> np.ndarray:
        """Preconditioner interface: one smoothing pass from zero."""
        return self.smooth(r)

    def error_amplification(self, lam: float) -> float:
        """|Chebyshev error polynomial| at eigenvalue ``lam`` — used by
        tests to verify damping of the targeted spectrum."""
        t = (self.theta - lam) / self.delta
        t0 = self.theta / self.delta
        # Chebyshev polynomials via the stable recurrence (|t| may exceed 1)
        def cheb(k, v):
            a, b = 1.0, v
            if k == 0:
                return a
            for _ in range(k - 1):
                a, b = b, 2 * v * b - a
            return b

        return abs(cheb(self.degree, t) / cheb(self.degree, t0))
