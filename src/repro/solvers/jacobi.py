"""Point-Jacobi preconditioner computed matrix-free from the operator
diagonal — the inner preconditioner of the Chebyshev smoother
(Section 3.4, following Adams et al. 2003)."""

from __future__ import annotations

import numpy as np


class JacobiPreconditioner:
    """M^{-1} r = r / diag(A), with zero-diagonal protection."""

    def __init__(self, op, dtype=np.float64) -> None:
        diag = np.asarray(op.diagonal(), dtype=np.float64)
        if diag.size == 0:
            raise ValueError("empty operator diagonal")
        bad = np.abs(diag) < 1e-300
        if bad.any():
            diag = diag.copy()
            diag[bad] = 1.0
        self.inv_diag = (1.0 / diag).astype(dtype)

    @property
    def n_dofs(self) -> int:
        return self.inv_diag.size

    def vmult(self, r: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``out`` (optional) must have the promoted result dtype; the
        product is then written in place (bitwise identical to the
        allocating form)."""
        if out is None:
            return r * self.inv_diag
        return np.multiply(r, self.inv_diag, out=out)

    def to_precision(self, dtype) -> "JacobiPreconditioner":
        clone = object.__new__(JacobiPreconditioner)
        clone.inv_diag = self.inv_diag.astype(dtype)
        return clone
