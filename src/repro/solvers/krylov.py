"""Krylov solvers: (preconditioned) conjugate gradients.

The convergence criterion follows the paper: the norm of the
*unpreconditioned* residual relative to the right-hand side norm
(footnote 4 of the paper), with the common multigrid-analysis tolerance
``1e-10`` in the solver studies and the relaxed ``1e-3`` in the
application runs (enabled by time extrapolation of the initial guess).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..telemetry import TRACER
from ..telemetry.metrics import ITERATION_BUCKETS, METRICS, REDUCTION_BUCKETS

# module-level metric handles (a single attribute check while disabled)
_CG_SOLVES = METRICS.counter(
    "repro_cg_solves_total", "CG solves started, by call-site label",
    labels=("solve",),
)
_CG_ITERATIONS = METRICS.histogram(
    "repro_cg_iterations", "CG iterations per solve",
    buckets=ITERATION_BUCKETS, labels=("solve",),
)
_CG_FAILURE_REASON = METRICS.counter(
    "repro_cg_failure_reason_total",
    "CG outcomes per call site ('none' = converged); the per-label sum "
    "equals repro_cg_solves_total",
    labels=("solve", "reason"),
)
_CG_REDUCTION = METRICS.histogram(
    "repro_cg_residual_reduction",
    "geometric-mean residual reduction per CG iteration",
    buckets=REDUCTION_BUCKETS, labels=("solve",),
)
_CG_FINAL_RESIDUAL = METRICS.gauge(
    "repro_cg_last_relative_residual",
    "relative residual of the most recent CG solve",
    labels=("solve",),
)


@dataclass
class SolverResult:
    """Outcome of an iterative solve.

    A failed solve never raises out of the iteration: ``converged`` is
    False and ``failure_reason`` is one of

    * ``"nan_residual"`` — a non-finite residual (or right-hand side /
      preconditioner output) was encountered,
    * ``"max_iterations"`` — the iteration budget ran out,
    * ``"breakdown"`` — the operator turned out not to be SPD
      (``p^T A p <= 0``).

    Callers branch on the result; the fault-tolerant run harness
    (:mod:`repro.robustness`) uses the reason to pick a fallback tier.
    ``tier`` is stamped by the fallback chain with the name of the
    preconditioner tier that produced this result."""

    x: np.ndarray
    n_iterations: int
    converged: bool
    residuals: list[float] = field(default_factory=list)
    failure_reason: str | None = None
    tier: str = ""
    #: per-member iteration counts of an ensemble (batched) solve —
    #: members that converge early stop accumulating; None for flat solves
    member_iterations: list[int] | None = None

    @property
    def reduction_rate(self) -> float:
        """Geometric-mean residual reduction per iteration.

        A solve whose initial residual already met the tolerance (zero
        iterations) reports 0.0 — instant convergence; a solve that ran
        out of iterations without recording a second residual reports
        1.0 — no progress.  With at least one iteration the actual
        reduction is returned, including the one-step ``r1 / r0`` of a
        single-iteration solve."""
        if len(self.residuals) < 2 or self.residuals[0] == 0:
            return 0.0 if self.converged else 1.0
        return (self.residuals[-1] / self.residuals[0]) ** (1.0 / (len(self.residuals) - 1))


class IdentityPreconditioner:
    def vmult(self, r: np.ndarray) -> np.ndarray:
        return r


def conjugate_gradient(
    op,
    b: np.ndarray,
    preconditioner=None,
    tol: float = 1e-10,
    abs_tol: float = 0.0,
    max_iter: int = 1000,
    x0: np.ndarray | None = None,
    name: str = "",
    dtype=np.float64,
) -> SolverResult:
    """Solve ``A x = b`` for SPD ``A`` given by ``op.vmult``.

    ``preconditioner.vmult`` applies M^{-1} (e.g. a multigrid V-cycle run
    in single precision — the mixed-precision strategy of Section 3.4:
    the outer iteration and residuals stay in double precision).

    ``dtype`` is the storage dtype of the iteration vectors.  The default
    double precision matches the paper's outer pressure iteration; the
    well-conditioned viscous/penalty solves may pass ``float32`` to run
    end-to-end in single precision.  Scalar reductions (norms, ``r @ z``)
    always accumulate through Python floats, i.e. in double.

    ``name`` labels this solve in the telemetry span tree and counters
    (e.g. ``"pressure"``); unnamed solves report under plain ``cg``.
    """
    label = f"cg[{name}]" if name else "cg"
    with TRACER.span(label):
        if getattr(b, "ndim", 1) == 2:
            if b.shape[0] == 1:
                # E=1 runs the flat iteration so it stays bitwise
                # identical to an unbatched solve
                result = _pcg(
                    op, b[0], preconditioner, tol, abs_tol, max_iter,
                    None if x0 is None else np.asarray(x0)[0], dtype,
                )
                result.x = result.x[None]
                result.member_iterations = [result.n_iterations]
            else:
                result = _pcg_batched(
                    op, b, preconditioner, tol, abs_tol, max_iter, x0, dtype
                )
        else:
            result = _pcg(op, b, preconditioner, tol, abs_tol, max_iter, x0, dtype)
    # every solve records a failure_reason outcome ('none' on success),
    # so the per-call-site reason counters always sum to the solve count
    reason = result.failure_reason or "none"
    if TRACER.enabled:
        TRACER.incr(f"{label}.solves")
        TRACER.incr(f"{label}.iterations", result.n_iterations)
        TRACER.incr(f"{label}.failure_reason.{reason}")
        if result.residuals and result.residuals[0] > 0:
            TRACER.gauge(
                f"{label}.last_relative_residual",
                result.residuals[-1] / result.residuals[0],
            )
    if METRICS.enabled:
        site = name or "unnamed"
        _CG_SOLVES.labels(site).inc()
        _CG_ITERATIONS.labels(site).observe(result.n_iterations)
        _CG_FAILURE_REASON.labels((site, reason)).inc()
        _CG_REDUCTION.labels(site).observe(result.reduction_rate)
        if result.residuals and result.residuals[0] > 0:
            _CG_FINAL_RESIDUAL.labels(site).set(
                result.residuals[-1] / result.residuals[0]
            )
    return result


def _pcg(op, b, preconditioner, tol, abs_tol, max_iter, x0, dtype=np.float64) -> SolverResult:
    dtype = np.dtype(dtype)
    b = np.asarray(b, dtype=dtype)
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=dtype)
    r = b - op.vmult(x) if x0 is not None else b.copy()
    b_norm = float(np.linalg.norm(b))
    threshold = max(tol * b_norm, abs_tol)
    residuals = [float(np.linalg.norm(r))]
    if not np.isfinite(residuals[0]):
        # a poisoned right-hand side or initial guess: no iteration can
        # recover from this, report instead of looping to max_iter
        return SolverResult(x, 0, False, residuals, failure_reason="nan_residual")
    if residuals[0] <= threshold or b_norm == 0.0:
        return SolverResult(x, 0, True, residuals)
    M = preconditioner or IdentityPreconditioner()
    z = np.asarray(M.vmult(r), dtype=dtype)
    p = z.copy()
    rz = float(r @ z)
    for it in range(1, max_iter + 1):
        Ap = op.vmult(p)
        pAp = float(p @ Ap)
        if not np.isfinite(pAp):
            # NaN/inf from the operator or preconditioner (e.g. an
            # overflowed single-precision V-cycle): x is the last finite
            # iterate, the update that would poison it is not applied
            return SolverResult(
                x, it - 1, False, residuals, failure_reason="nan_residual"
            )
        if pAp <= 0:
            return SolverResult(
                x, it - 1, False, residuals, failure_reason="breakdown"
            )
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        res = float(np.linalg.norm(r))
        residuals.append(res)
        if not np.isfinite(res):
            return SolverResult(
                x, it, False, residuals, failure_reason="nan_residual"
            )
        if res <= threshold:
            return SolverResult(x, it, True, residuals)
        z = np.asarray(M.vmult(r), dtype=dtype)
        rz_new = float(r @ z)
        beta = rz_new / rz
        # p <- z + beta p without a temporary (IEEE addition commutes
        # bitwise, so this matches `z + beta * p` exactly)
        p *= beta
        p += z
        rz = rz_new
    return SolverResult(x, max_iter, False, residuals, failure_reason="max_iterations")


def _pcg_batched(
    op, b, preconditioner, tol, abs_tol, max_iter, x0, dtype=np.float64
) -> SolverResult:
    """Ensemble-stacked PCG: one lockstep iteration over ``(E, n)``
    states with per-member convergence masks.

    All members share every operator and preconditioner application (the
    fused ensemble vmult); per-member scalars (``alpha``, ``beta``) are
    masked so converged or failed members freeze in place without
    desynchronizing the batch.  ``residuals`` records the worst member
    per iteration; ``member_iterations`` counts each member's own
    iterations until convergence.
    """
    dtype = np.dtype(dtype)
    b = np.asarray(b, dtype=dtype)
    n_members = b.shape[0]
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=dtype)
    r = b - op.vmult(x) if x0 is not None else b.copy()
    b_norm = np.linalg.norm(b, axis=1)
    threshold = np.maximum(tol * b_norm, abs_tol)
    res = np.linalg.norm(r, axis=1)
    residuals = [float(res.max())]
    member_iterations = np.zeros(n_members, dtype=int)
    if not np.isfinite(res).all():
        return SolverResult(
            x, 0, False, residuals, failure_reason="nan_residual",
            member_iterations=member_iterations.tolist(),
        )
    active = (res > threshold) & (b_norm > 0.0)
    if not active.any():
        return SolverResult(
            x, 0, True, residuals,
            member_iterations=member_iterations.tolist(),
        )
    M = preconditioner or IdentityPreconditioner()
    z = np.asarray(M.vmult(r), dtype=dtype)
    p = z.copy()
    rz = (r * z).sum(axis=1)
    failure: str | None = None
    it = 0
    for it in range(1, max_iter + 1):
        Ap = op.vmult(p)
        pAp = (p * Ap).sum(axis=1)
        bad = active & ~np.isfinite(pAp)
        if bad.any():
            failure = "nan_residual"
            active = active & ~bad
        broke = active & (pAp <= 0)
        if broke.any():
            failure = "breakdown"
            active = active & ~broke
        if not active.any():
            break
        # masked update: converged/failed members get alpha = 0 and
        # freeze; guarded denominators keep the arithmetic finite
        denom = np.where(pAp != 0, pAp, 1.0)
        alpha = np.where(active, rz / denom, 0.0)
        x += alpha[:, None] * p
        r -= alpha[:, None] * Ap
        member_iterations[active] += 1
        res = np.linalg.norm(r, axis=1)
        residuals.append(float(res.max()))
        nan_members = active & ~np.isfinite(res)
        if nan_members.any():
            failure = "nan_residual"
            active = active & ~nan_members
        active = active & (res > threshold)
        if not active.any():
            break
        z = np.asarray(M.vmult(r), dtype=dtype)
        rz_new = (r * z).sum(axis=1)
        beta = np.where(active, rz_new / np.where(rz != 0, rz, 1.0), 0.0)
        p *= beta[:, None]
        p += np.where(active[:, None], z, z.dtype.type(0))
        rz = rz_new
    else:
        failure = failure or "max_iterations"
    converged = failure is None and not active.any()
    return SolverResult(
        x, it, converged, residuals, failure_reason=failure,
        member_iterations=member_iterations.tolist(),
    )


def lanczos_max_eigenvalue(op, preconditioner=None, n_iter: int = 12,
                           seed: int = 42, n: int | None = None) -> float:
    """Estimate the largest eigenvalue of ``M^{-1} A`` by the CG-Lanczos
    connection (the deal.II strategy for setting the Chebyshev smoother
    range).  ``n`` defaults to ``op.n_dofs``."""
    n = n or op.n_dofs
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(n)
    M = preconditioner or IdentityPreconditioner()
    x = np.zeros(n)
    r = b.copy()
    z = np.asarray(M.vmult(r))
    p = z.copy()
    rz = float(r @ z)
    alphas: list[float] = []
    betas: list[float] = []
    for _ in range(n_iter):
        Ap = op.vmult(p)
        pAp = float(p @ Ap)
        if pAp <= 0 or rz <= 0:
            break
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        z = np.asarray(M.vmult(r))
        rz_new = float(r @ z)
        if rz_new <= 1e-300:
            alphas.append(alpha)
            betas.append(0.0)
            break
        beta = rz_new / rz
        alphas.append(alpha)
        betas.append(beta)
        p = z + beta * p
        rz = rz_new
    if not alphas:
        return 1.0
    # tridiagonal Lanczos matrix from CG coefficients
    m = len(alphas)
    T = np.zeros((m, m))
    T[0, 0] = 1.0 / alphas[0]
    for i in range(1, m):
        T[i, i] = 1.0 / alphas[i] + betas[i - 1] / alphas[i - 1]
        off = np.sqrt(max(betas[i - 1], 0.0)) / alphas[i - 1]
        T[i, i - 1] = off
        T[i - 1, i] = off
    return float(np.linalg.eigvalsh(T).max())
