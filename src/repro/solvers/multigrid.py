"""The hybrid geometric–polynomial–algebraic multigrid preconditioner.

Implements Algorithm 1 / Figure 5 of the paper for the pressure Poisson
operator: starting from the symmetric interior penalty DG discretization
of degree ``k`` on the (possibly locally refined) forest,

1. transfer to the *continuous* auxiliary space of the same degree and
   mesh (c-transfer),
2. coarsen the polynomial degree by bisection down to 1 (p-levels),
3. coarsen the mesh by global coarsening down to the unstructured coarse
   mesh (h-levels),
4. solve the coarsest problem with algebraic multigrid (substituting
   BoomerAMG by :class:`~repro.solvers.amg.SmoothedAggregationAMG`) in
   double precision.

Every level except the AMG root is smoothed by a degree-3 Chebyshev
iteration with point-Jacobi preconditioning, and the whole V-cycle runs
in **single precision** while the outer conjugate gradient iterates in
double precision — the mixed-precision strategy of Section 3.4.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, fields, is_dataclass

import numpy as np

from ..core.dof_handler import CGDofHandler
from ..core.operators.laplace import CGLaplaceOperator, DGLaplaceOperator
from ..mesh.mapping import GeometryField
from ..mesh.octree import Forest
from ..telemetry import TRACER
from ..telemetry.metrics import METRICS, REDUCTION_BUCKETS
from .amg import SmoothedAggregationAMG
from .assemble import assemble_cg_laplace
from .chebyshev import ChebyshevSmoother
from .transfer import Transfer, dg_from_cg, h_transfer, p_transfer

# module-level metric handles (no-ops while the registry is disabled).
# The per-level diagnostics are what explains matrix-free multigrid
# behavior (Kronbichler & Kormann, arXiv:1711.03590): how much of the
# residual each level's smoother removes, and how far one full level
# visit (pre-smooth, coarse correction, post-smooth) gets.
_MG_VCYCLES = METRICS.counter(
    "repro_mg_vcycles_total", "multigrid V-cycles applied")
_MG_AMG_SOLVES = METRICS.counter(
    "repro_mg_amg_solves_total", "coarse-level AMG solves")
_MG_NONFINITE = METRICS.counter(
    "repro_mg_nonfinite_vcycles_total",
    "V-cycles that returned a non-finite correction "
    "(reduced-precision overflow)")
_MG_PRESMOOTH = METRICS.histogram(
    "repro_mg_presmooth_reduction",
    "residual reduction of one pre-smoothing application per level "
    "(smoother effectiveness)",
    buckets=REDUCTION_BUCKETS, labels=("level",),
)
_MG_LEVEL_REDUCTION = METRICS.histogram(
    "repro_mg_level_reduction",
    "residual reduction over one full level visit (pre-smooth, coarse "
    "correction, post-smooth)",
    buckets=REDUCTION_BUCKETS, labels=("level",),
)
_MG_LEVEL_DOFS = METRICS.gauge(
    "repro_mg_level_dofs", "DoF count per multigrid level",
    labels=("level",),
)


def _cast_arrays(obj, dtype, _seen=None):
    """Recursively cast floating ndarray attributes of dataclasses to
    ``dtype`` (non-float arrays — index sets — pass through)."""
    if isinstance(obj, np.ndarray):
        return obj.astype(dtype) if obj.dtype.kind == "f" and obj.dtype != dtype else obj
    if is_dataclass(obj) and not isinstance(obj, type):
        clone = copy.copy(obj)
        for f in fields(obj):
            object.__setattr__(clone, f.name, _cast_arrays(getattr(obj, f.name), dtype))
        return clone
    if isinstance(obj, list):
        return [_cast_arrays(v, dtype) for v in obj]
    return obj


#: array-valued operator attributes cast by :func:`operator_to_dtype`
_CASTABLE_ATTRS = (
    "cell_metrics", "face_metrics", "bdry_metrics", "tau", "tau_b", "jxw",
    "Sinv", "h_cell", "tau_div", "tau_cont", "_mass_weight",
)

#: nested operators a composite delegates to (cast recursively)
_SUB_OPERATORS = ("scalar", "mass", "laplace", "penalty")


def operator_to_dtype(op, dtype):
    """Shallow-clone an operator with its metric/factor data cast to
    ``dtype`` so NumPy keeps all kernel arithmetic in that precision.

    With ``dtype=float32`` this doubles the cells per 'SIMD' batch and
    halves the memory traffic, as in the paper; tabulated 1D shape
    factors are dtype-matched lazily by the kernels themselves (see
    :meth:`repro.core.sum_factorization.TensorProductKernel._mat`).
    Composite operators (vector Laplacian, Helmholtz, penalty step) have
    their nested operators cast recursively.  The clone shares the
    original's plan cache — scatter plans are dtype-agnostic, workspace
    buffers and work models are keyed by dtype."""
    dtype = np.dtype(dtype)
    if np.dtype(getattr(op, "dtype", None)) == dtype:
        return op
    clone = copy.copy(op)
    for name in _CASTABLE_ATTRS:
        if hasattr(clone, name):
            setattr(clone, name, _cast_arrays(getattr(op, name), dtype))
    for name in _SUB_OPERATORS:
        sub = getattr(clone, name, None)
        if sub is not None and hasattr(sub, "vmult"):
            setattr(clone, name, operator_to_dtype(sub, dtype))
    if hasattr(clone, "dof") and hasattr(clone.dof, "C"):
        dof_clone = copy.copy(clone.dof)
        dof_clone.C = clone.dof.C.astype(dtype)
        dof_clone.Ct = clone.dof.Ct.astype(dtype)
        clone.dof = dof_clone
    clone.dtype = dtype
    return clone


def single_precision_operator(op):
    """Backward-compatible alias: :func:`operator_to_dtype` at float32."""
    return operator_to_dtype(op, np.float32)


@dataclass
class MGLevel:
    """One multigrid level: its operator, smoother, and the transfer that
    connects it to the next *coarser* level."""

    name: str
    operator: object
    smoother: ChebyshevSmoother | None
    to_coarser: Transfer | None
    n_dofs: int


class HybridMultigridPreconditioner:
    """V-cycle preconditioner for a :class:`DGLaplaceOperator`.

    Parameters
    ----------
    dg_op:
        The fine-level operator (defines forest, degree, Dirichlet ids).
    smoother_degree:
        Chebyshev degree per pre/post smoothing (paper: 3).
    precision:
        dtype of the V-cycle (paper: single precision).
    coarse_amg_cycles:
        V-cycles of the SA-AMG coarse solver per visit (paper: 2).
    p_sequence:
        Optional explicit degree sequence; default bisection k, k/2, ..., 1.
    """

    def __init__(
        self,
        dg_op: DGLaplaceOperator,
        smoother_degree: int = 3,
        smoothing_range: float = 15.0,
        precision=np.float32,
        coarse_amg_cycles: int = 2,
        p_sequence: tuple[int, ...] | None = None,
    ) -> None:
        self.dg_op = dg_op
        self.precision = precision
        forest: Forest = dg_op.geo.forest
        degree = dg_op.dof.degree
        dirichlet = dg_op.dirichlet_ids
        conn = dg_op.conn

        if p_sequence is None:
            seq = [degree]
            while seq[-1] > 1:
                seq.append(max(1, seq[-1] // 2))
            p_sequence = tuple(seq)
        if p_sequence[0] != degree:
            raise ValueError("p_sequence must start at the DG degree")

        levels: list[MGLevel] = []
        # finest: the DG level itself
        dg_sp = single_precision_operator(dg_op) if precision == np.float32 else dg_op
        levels.append(
            MGLevel(
                name=f"DG(k={degree})",
                operator=dg_sp,
                smoother=ChebyshevSmoother(dg_sp, smoother_degree, smoothing_range),
                to_coarser=None,
                n_dofs=dg_op.n_dofs,
            )
        )
        # continuous level of the same degree
        cg_dofs: list[CGDofHandler] = []
        cg_ops: list[CGLaplaceOperator] = []
        for k in p_sequence:
            dof = CGDofHandler(forest, k, connectivity=conn, dirichlet_ids=dirichlet)
            if dof.n_dofs == 0:
                break  # everything constrained: stop p-coarsening here
            geo = dg_op.geo if k == degree else GeometryField(forest, k)
            cg_dofs.append(dof)
            cg_ops.append(CGLaplaceOperator(dof, geo))
        if not cg_dofs:
            raise ValueError(
                "the conforming auxiliary space has no unconstrained DoFs; "
                "the mesh is too coarse for the hybrid multigrid"
            )
        p_sequence = p_sequence[: len(cg_dofs)]
        levels[0].to_coarser = dg_from_cg(dg_op.dof, cg_dofs[0])
        for i, k in enumerate(p_sequence):
            op = cg_ops[i]
            op_sp = single_precision_operator(op) if precision == np.float32 else op
            levels.append(
                MGLevel(
                    name=f"CG(k={k})",
                    operator=op_sp,
                    smoother=ChebyshevSmoother(op_sp, smoother_degree, smoothing_range),
                    to_coarser=None,
                    n_dofs=op.n_dofs,
                )
            )
            if i + 1 < len(p_sequence):
                levels[-1].to_coarser = p_transfer(cg_dofs[i], cg_dofs[i + 1])

        # geometric levels by global coarsening at degree 1
        h_forest = forest
        h_dof = cg_dofs[-1]
        while h_forest.max_level > 0:
            coarser, cmap = h_forest.global_coarsening_level()
            if coarser.n_cells == h_forest.n_cells:
                break
            c_dof = CGDofHandler(coarser, 1, dirichlet_ids=dirichlet)
            if c_dof.n_dofs == 0:
                break  # a fully constrained level cannot host the AMG
            c_geo = GeometryField(coarser, 1)
            c_op = CGLaplaceOperator(c_dof, c_geo)
            levels[-1].to_coarser = h_transfer(h_dof, c_dof, cmap)
            op_sp = single_precision_operator(c_op) if precision == np.float32 else c_op
            levels.append(
                MGLevel(
                    name=f"CG(k=1, {coarser.n_cells} cells)",
                    operator=op_sp,
                    smoother=ChebyshevSmoother(op_sp, smoother_degree, smoothing_range),
                    to_coarser=None,
                    n_dofs=c_op.n_dofs,
                )
            )
            h_forest, h_dof = coarser, c_dof

        # coarse AMG solver (double precision, as in the paper)
        coarse_dof = h_dof
        coarse_geo = (
            dg_op.geo
            if coarse_dof.degree == degree and coarse_dof.forest is forest
            else GeometryField(coarse_dof.forest, coarse_dof.degree)
        )
        A_coarse = assemble_cg_laplace(coarse_dof, coarse_geo)
        self.amg = SmoothedAggregationAMG(A_coarse, n_cycles=coarse_amg_cycles)

        if precision == np.float32:
            for lev in levels:
                if lev.to_coarser is not None:
                    lev.to_coarser = lev.to_coarser.to_precision(np.float32)
        self.levels = levels  # fine -> coarse
        self.level_mults: list[int] = [0] * (len(levels) + 1)
        self.amg_calls = 0
        self.nonfinite_vcycles = 0
        if METRICS.enabled:
            for lev in levels:
                _MG_LEVEL_DOFS.labels(lev.name).set(lev.n_dofs)

    # ------------------------------------------------------------------
    @property
    def n_levels(self) -> int:
        """Number of levels in Algorithm-1 terms: the coarsest stored
        level is solved by AMG (level 0)."""
        return len(self.levels)

    def describe(self) -> str:
        lines = []
        for i, lev in enumerate(self.levels):
            label = lev.name
            if i == len(self.levels) - 1:
                label += f" + AMG({self.amg.n_levels} alg. levels)"
            lines.append(
                f"level {len(self.levels) - 1 - i}: {label:<36s} {lev.n_dofs:>12d} DoF"
            )
        return "\n".join(lines)

    def _vcycle(self, i: int, b: np.ndarray) -> np.ndarray:
        """Algorithm 1 on level index ``i`` of self.levels (0 = finest).

        The coarsest stored level is the linear FE space on the coarse
        mesh — exactly the space the AMG hierarchy was assembled on — so
        reaching it triggers the coarse solve instead of smoothing."""
        if i == len(self.levels) - 1:
            self.amg_calls += 1
            _MG_AMG_SOLVES.inc()
            with TRACER.span("amg_coarse"):
                TRACER.incr("mg.amg_solves")
                return self.amg.vmult(np.asarray(b, dtype=np.float64)).astype(b.dtype)
        lev = self.levels[i]
        # per-level numerics diagnostics: the residual after pre-smoothing
        # is computed anyway (it feeds the restriction), so smoother
        # effectiveness costs one extra norm; the reduction over the full
        # level visit needs one extra vmult and is therefore gated too
        sample = METRICS.enabled
        b_norm = float(np.linalg.norm(b)) if sample else 0.0
        with TRACER.span(f"level[{lev.name}]"):
            x = lev.smoother.smooth(b)  # pre-smoothing from zero initial guess
            self.level_mults[i] += lev.smoother.degree
            r = b - lev.operator.vmult(x)
            self.level_mults[i] += 1
            if sample and b_norm > 0:
                _MG_PRESMOOTH.labels(lev.name).observe(
                    float(np.linalg.norm(r)) / b_norm
                )
            bc = lev.to_coarser.restrict(r)
        xc = self._vcycle(i + 1, bc)
        with TRACER.span(f"level[{lev.name}]"):
            x = x + lev.to_coarser.prolongate(xc)
            x = lev.smoother.smooth(b, x)  # post-smoothing
            self.level_mults[i] += lev.smoother.degree + 1
            if sample and b_norm > 0:
                _MG_LEVEL_REDUCTION.labels(lev.name).observe(
                    float(np.linalg.norm(b - lev.operator.vmult(x))) / b_norm
                )
        return x

    def vmult(self, r: np.ndarray) -> np.ndarray:
        """One V-cycle in the configured (single) precision.

        A non-finite result (reduced-precision overflow on a mis-scaled
        residual) is counted but returned as-is: the outer CG detects
        the poisoned direction on its next residual and reports
        ``nan_residual``, which lets a fallback chain escalate to a
        more conservative tier."""
        with TRACER.span("mg_vcycle"):
            TRACER.incr("mg.vcycles")
            _MG_VCYCLES.inc()
            r_p = np.asarray(r, dtype=self.precision)
            x = self._vcycle(0, r_p)
            if not np.isfinite(x).all():
                self.nonfinite_vcycles += 1
                TRACER.incr("mg.nonfinite_vcycles")
                _MG_NONFINITE.inc()
            return np.asarray(x, dtype=np.float64)
