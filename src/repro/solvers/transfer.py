"""Multigrid level-transfer operators (Section 3.4, Figure 5).

Three kinds of transfers stack up in the hybrid multigrid:

* **DG -> CG** on the same mesh and degree: the conforming auxiliary
  space is a subspace of the DG space, so prolongation is the exact
  nodal embedding (gather through the constraint expansion).
* **p-transfer** between continuous spaces of degrees ``k_f > k_c`` on
  the same mesh (degree bisection).
* **h-transfer** between continuous spaces on consecutive
  global-coarsening forests (children interpolate from their parent's
  half-intervals).

All three reduce to one primitive: an interpolation matrix whose row for
a fine nodal point evaluates the coarse basis at that point.  Transfers
are materialized as scipy sparse matrices (they are the latency-, not
throughput-, critical part at Python scale) with ``restrict = P^T``,
which keeps the V-cycle variational.  Geometry consistency between
levels (the paper's "consistent interpolation between the geometric
levels") holds because every level samples the same analytic geometry.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..core.basis import LagrangeBasis1D
from ..core.dof_handler import CGDofHandler, DGDofHandler
from ..mesh.octree import CellId, Forest


class Transfer:
    """Wrapper of a sparse prolongation matrix P (fine x coarse)."""

    def __init__(self, P: sp.spmatrix) -> None:
        self.P = sp.csr_matrix(P)
        self.Pt = self.P.T.tocsr()

    def prolongate(self, xc: np.ndarray) -> np.ndarray:
        """Coarse -> fine; ensemble-stacked (E, n_c) maps row-wise."""
        if xc.ndim == 2:
            return (self.P @ xc.T).T
        return self.P @ xc

    def restrict(self, rf: np.ndarray) -> np.ndarray:
        """Fine -> coarse (P^T); ensemble-stacked input maps row-wise."""
        if rf.ndim == 2:
            return (self.Pt @ rf.T).T
        return self.Pt @ rf

    def to_precision(self, dtype) -> "Transfer":
        clone = object.__new__(Transfer)
        clone.P = self.P.astype(dtype)
        clone.Pt = self.Pt.astype(dtype)
        return clone

    @property
    def shape(self):
        return self.P.shape


def dg_from_cg(dg: DGDofHandler, cg: CGDofHandler) -> Transfer:
    """Exact embedding of the conforming space into the DG space."""
    if dg.degree != cg.degree or dg.forest is not cg.forest:
        if dg.degree != cg.degree or dg.n_cells != cg.n_cells:
            raise ValueError("DG and CG spaces must share mesh and degree")
    n_dg = dg.n_dofs
    cols = cg.cell_to_global.ravel()
    G = sp.csr_matrix(
        (np.ones(n_dg), (np.arange(n_dg), cols)), shape=(n_dg, cg.n_global)
    )
    return Transfer(G @ cg.C)


def _interpolation_rows(
    fine: CGDofHandler,
    coarse: CGDofHandler,
    cell_map,
) -> sp.csr_matrix:
    """P_nodal (fine global x coarse master): coarse basis evaluated at
    every fine nodal point; one providing cell per fine node.

    ``cell_map(fine_cell) -> (coarse_cell, offset (3,), scale)`` places
    the fine cell's reference cube inside the coarse cell's:
    ``x_coarse = offset + scale * x_fine``.
    """
    nf = fine.n1
    nc = coarse.n1
    fine_nodes = LagrangeBasis1D(fine.degree).nodes
    coarse_basis = LagrangeBasis1D(coarse.degree)
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    written = np.zeros(fine.n_global, dtype=bool)
    # cache of 1D weight matrices per (offset, scale) in each dimension
    wcache: dict[tuple[float, float], np.ndarray] = {}

    def weights_1d(offset: float, scale: float) -> np.ndarray:
        key = (round(offset * 2**20), round(scale * 2**20))
        W = wcache.get(key)
        if W is None:
            W = coarse_basis.values(offset + scale * fine_nodes)  # (nf, nc)
            wcache[key] = W
        return W

    for cf in range(fine.n_cells):
        cc, offset, scale = cell_map(cf)
        Wx = weights_1d(offset[0], scale)
        Wy = weights_1d(offset[1], scale)
        Wz = weights_1d(offset[2], scale)
        fine_ids = fine.cell_to_global[cf]  # (nf, nf, nf) z, y, x
        coarse_ids = coarse.cell_to_global[cc]  # (nc, nc, nc)
        need = ~written[fine_ids]
        if not need.any():
            continue
        # local interpolation tensor W[(zf,yf,xf),(zc,yc,xc)]
        W = np.einsum("zZ,yY,xX->zyxZYX", Wz, Wy, Wx).reshape(nf**3, nc**3)
        fflat = fine_ids.reshape(-1)
        sel = need.reshape(-1)
        Wsel = W[sel]
        nz = np.abs(Wsel) > 1e-14
        r_idx, c_idx = np.nonzero(nz)
        rows.append(fflat[sel][r_idx])
        cols.append(coarse_ids.reshape(-1)[c_idx])
        vals.append(Wsel[nz])
        written[fflat[sel]] = True
    P_nodal = sp.csr_matrix(
        (
            np.concatenate(vals) if vals else np.zeros(0),
            (
                np.concatenate(rows) if rows else np.zeros(0, dtype=int),
                np.concatenate(cols) if cols else np.zeros(0, dtype=int),
            ),
        ),
        shape=(fine.n_global, coarse.n_global),
    )
    return P_nodal


def _finalize(fine: CGDofHandler, coarse: CGDofHandler, P_nodal: sp.csr_matrix) -> Transfer:
    master_rows = np.nonzero(~fine.is_constrained)[0]
    P = P_nodal[master_rows] @ coarse.C
    return Transfer(P)


def p_transfer(fine: CGDofHandler, coarse: CGDofHandler) -> Transfer:
    """Degree-bisection transfer between spaces on the same forest."""
    if fine.n_cells != coarse.n_cells:
        raise ValueError("p-transfer requires the same mesh")
    if fine.degree < coarse.degree:
        raise ValueError("fine degree must exceed coarse degree")
    zero = np.zeros(3)
    P_nodal = _interpolation_rows(fine, coarse, lambda cf: (cf, zero, 1.0))
    return _finalize(fine, coarse, P_nodal)


def h_transfer(
    fine: CGDofHandler,
    coarse: CGDofHandler,
    coarsening_map: dict[CellId, list[CellId]],
) -> Transfer:
    """Global-coarsening transfer between consecutive forest levels.

    ``coarsening_map`` is the parent -> children dictionary returned by
    :meth:`repro.mesh.octree.Forest.global_coarsening_level`.
    """
    fine_forest: Forest = fine.forest
    coarse_forest: Forest = coarse.forest
    placement: dict[int, tuple[int, np.ndarray, float]] = {}
    for parent, children in coarsening_map.items():
        cc = coarse_forest.index_of(parent)
        if children == [parent]:
            cf = fine_forest.index_of(parent)
            placement[cf] = (cc, np.zeros(3), 1.0)
        else:
            for child in children:
                cf = fine_forest.index_of(child)
                ci = child.child_index()
                offset = 0.5 * np.array([ci & 1, (ci >> 1) & 1, (ci >> 2) & 1], float)
                placement[cf] = (cc, offset, 0.5)
    if len(placement) != fine.n_cells:
        raise ValueError("coarsening map does not cover the fine forest")
    P_nodal = _interpolation_rows(fine, coarse, lambda cf: placement[cf])
    return _finalize(fine, coarse, P_nodal)
