"""Solver telemetry: hierarchical tracing spans, per-step statistics
sinks, and run reports.

The solve stack (time integrator, Krylov/multigrid solvers, matrix-free
operators) reports into the process-global :data:`TRACER`, which is
disabled by default and costs one attribute check per call site when
off.  Enable it (``TRACER.enable()`` or ``repro lung --trace``) to
collect a hierarchical wall-time profile, vmult/iteration counters, and
per-sub-step timings; pair it with :class:`RunLogWriter` to stream a
schema-versioned JSONL record per time step that ``repro report`` can
aggregate into the paper's Table-2-style breakdown.
"""

from .report import (
    RunAggregate,
    aggregate_steps,
    render_breakdown,
    render_counters,
    render_span_tree,
)
from .sinks import SCHEMA, JsonlWriter, RunLogWriter, read_run_log, step_record
from .tracer import NULL_SPAN, SpanNode, Tracer

#: Process-global tracer the instrumented solve stack reports into.
TRACER = Tracer(enabled=False)

__all__ = [
    "JsonlWriter",
    "NULL_SPAN",
    "SCHEMA",
    "RunAggregate",
    "RunLogWriter",
    "SpanNode",
    "TRACER",
    "Tracer",
    "aggregate_steps",
    "read_run_log",
    "render_breakdown",
    "render_counters",
    "render_span_tree",
    "step_record",
]
