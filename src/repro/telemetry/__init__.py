"""Solver telemetry: hierarchical tracing spans, per-step statistics
sinks, and run reports.

The solve stack (time integrator, Krylov/multigrid solvers, matrix-free
operators) reports into the process-global :data:`TRACER`, which is
disabled by default and costs one attribute check per call site when
off.  Enable it (``TRACER.enable()`` or ``repro lung --trace``) to
collect a hierarchical wall-time profile, vmult/iteration counters,
per-sub-step timings, and the analytic work-model annotations behind
``repro roofline``; pair it with :class:`RunLogWriter` to stream a
schema-versioned JSONL record per time step that ``repro report``
aggregates into the paper's Table-2-style breakdown and ``repro
monitor`` tails while the run is still executing.
"""

from .dashboard import render_html_dashboard, write_html_dashboard
from .metrics import (
    METRICS,
    MetricRegistry,
    MetricsWriter,
    export_metrics,
    load_metrics,
    merge_snapshots,
    parse_prometheus,
    snapshot_doc,
    to_prometheus,
    write_prometheus,
)
from .monitor import monitor_file, monitor_once, summarize_run
from .report import (
    RunAggregate,
    aggregate_steps,
    render_breakdown,
    render_counters,
    render_robustness,
    render_span_tree,
)
from .sinks import SCHEMA, JsonlWriter, RunLogWriter, read_run_log, step_record
from .timeline import (
    TIMELINE_SCHEMA,
    TimelineRing,
    analyze_timeline,
    chrome_trace_doc,
    load_chrome_trace,
    merge_timeline,
    render_timeline,
    render_worker_phases,
    write_chrome_trace,
)
from .tracer import NULL_SPAN, SpanNode, Tracer

#: Process-global tracer the instrumented solve stack reports into.
TRACER = Tracer(enabled=False)

__all__ = [
    "JsonlWriter",
    "METRICS",
    "MetricRegistry",
    "MetricsWriter",
    "NULL_SPAN",
    "SCHEMA",
    "RunAggregate",
    "RunLogWriter",
    "SpanNode",
    "TIMELINE_SCHEMA",
    "TRACER",
    "Tracer",
    "TimelineRing",
    "aggregate_steps",
    "analyze_timeline",
    "chrome_trace_doc",
    "load_chrome_trace",
    "merge_timeline",
    "render_timeline",
    "render_worker_phases",
    "write_chrome_trace",
    "export_metrics",
    "load_metrics",
    "merge_snapshots",
    "parse_prometheus",
    "snapshot_doc",
    "to_prometheus",
    "write_prometheus",
    "monitor_file",
    "monitor_once",
    "read_run_log",
    "render_breakdown",
    "render_counters",
    "render_html_dashboard",
    "render_robustness",
    "render_span_tree",
    "step_record",
    "summarize_run",
    "write_html_dashboard",
]
