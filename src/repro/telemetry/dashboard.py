"""Self-contained HTML run dashboard (``repro report --html``).

Renders a JSONL run log — plus optional metric snapshot documents —
into a single HTML file with no external assets: stat tiles for the
headline numbers, inline-SVG sparklines for the per-step series (step
rate, realized CFL, pressure residual, solver iterations, step size,
recovery activity, and the ventilation series when present), the
robustness/fault history, and the metric catalog.

Design notes: single-series sparklines carry no legend (the card title
names the series); values and labels wear text colors, never the series
color; dark mode is a real second palette selected via
``prefers-color-scheme``, not an inverted light one.
"""

from __future__ import annotations

import html
import math
from pathlib import Path

from .metrics import METRICS, load_metrics, merge_snapshots
from .sinks import read_run_log

# series-1 blue and the neutral surfaces of the validated default
# palette (light / dark)
_CSS = """
:root {
  --surface: #fcfcfb;
  --card: #ffffff;
  --border: #e3e2de;
  --text: #0b0b0b;
  --text-2: #52514e;
  --muted: #73726e;
  --series: #2a78d6;
  --series-fill: rgba(42, 120, 214, 0.12);
  --bad: #c23b22;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19;
    --card: #232322;
    --border: #3a3937;
    --text: #ffffff;
    --text-2: #c3c2b7;
    --muted: #8e8d86;
    --series: #3987e5;
    --series-fill: rgba(57, 135, 229, 0.18);
    --bad: #e06a50;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px;
  background: var(--surface); color: var(--text);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; color: var(--text); }
.meta { color: var(--text-2); margin-bottom: 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  background: var(--card); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 130px;
}
.tile .v { font-size: 22px; font-weight: 600; }
.tile .k { color: var(--text-2); font-size: 12px; }
.cards { display: grid; gap: 12px;
  grid-template-columns: repeat(auto-fill, minmax(300px, 1fr)); }
.card {
  background: var(--card); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px;
}
.card .t { font-weight: 600; margin-bottom: 2px; }
.card .s { color: var(--text-2); font-size: 12px; margin-bottom: 6px; }
.card svg { width: 100%; height: 56px; display: block; }
.card .last { color: var(--text-2); font-size: 12px; margin-top: 4px; }
svg polyline { fill: none; stroke: var(--series); stroke-width: 2;
  stroke-linejoin: round; stroke-linecap: round; }
svg .fill { fill: var(--series-fill); stroke: none; }
table { border-collapse: collapse; width: 100%;
  background: var(--card); border: 1px solid var(--border);
  border-radius: 8px; font-size: 13px; }
th, td { text-align: left; padding: 6px 10px;
  border-bottom: 1px solid var(--border); vertical-align: top; }
th { color: var(--text-2); font-weight: 600; }
tr:last-child td { border-bottom: none; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
code { font-size: 12px; color: var(--text); }
.warn { color: var(--bad); }
.empty { color: var(--muted); }
"""


def _finite(values) -> list[float]:
    return [v for v in values if isinstance(v, (int, float)) and math.isfinite(v)]


def _fmt_num(v: float) -> str:
    if v is None or not math.isfinite(v):
        return "–"
    a = abs(v)
    if a != 0 and (a < 1e-3 or a >= 1e5):
        return f"{v:.3g}"
    if a >= 100 or v == int(v):
        return f"{v:.0f}" if v == int(v) else f"{v:.1f}"
    return f"{v:.4g}"


def _sparkline(values, *, width: int = 300, height: int = 56,
               log_scale: bool = False) -> str:
    """Inline-SVG sparkline: a 2px series line over a soft area fill.
    Returns an empty-state span when fewer than two finite points
    exist."""
    pts = [(i, v) for i, v in enumerate(values)
           if isinstance(v, (int, float)) and math.isfinite(v)
           and (not log_scale or v > 0)]
    if len(pts) < 2:
        return '<span class="empty">not enough data</span>'
    ys = [math.log10(v) if log_scale else v for _, v in pts]
    lo, hi = min(ys), max(ys)
    span = (hi - lo) or 1.0
    x0, x1 = pts[0][0], pts[-1][0]
    xspan = (x1 - x0) or 1
    pad = 4
    coords = []
    for (i, _), y in zip(pts, ys):
        px = pad + (i - x0) / xspan * (width - 2 * pad)
        py = pad + (hi - y) / span * (height - 2 * pad)
        coords.append(f"{px:.1f},{py:.1f}")
    line = " ".join(coords)
    base = height - pad
    area = (f"{coords[0].split(',')[0]},{base} " + line +
            f" {coords[-1].split(',')[0]},{base}")
    return (
        f'<svg viewBox="0 0 {width} {height}" preserveAspectRatio="none" '
        f'role="img">'
        f'<polygon class="fill" points="{area}"/>'
        f'<polyline points="{line}"/></svg>'
    )


def _series_card(title: str, subtitle: str, values, *,
                 unit: str = "", log_scale: bool = False) -> str:
    finite = _finite(values)
    last = (f"last {_fmt_num(finite[-1])}{unit} · "
            f"min {_fmt_num(min(finite))} · max {_fmt_num(max(finite))}"
            if finite else "no samples")
    return (
        '<div class="card">'
        f'<div class="t">{html.escape(title)}</div>'
        f'<div class="s">{html.escape(subtitle)}</div>'
        f"{_sparkline(values, log_scale=log_scale)}"
        f'<div class="last">{html.escape(last)}</div></div>'
    )


def _tile(label: str, value: str) -> str:
    return (
        f'<div class="tile"><div class="v">{html.escape(value)}</div>'
        f'<div class="k">{html.escape(label)}</div></div>'
    )


def _deltas(cumulative) -> list[float]:
    out, prev = [], 0.0
    for v in cumulative:
        v = float(v or 0.0)
        out.append(max(v - prev, 0.0))
        prev = v
    return out


def _robustness_rows(summary: dict | None) -> list[tuple[str, str]]:
    rows: list[tuple[str, str]] = []
    counters = (summary or {}).get("counters") or {}
    for name in sorted(counters):
        if name.startswith(("recovery.", "fallback.")):
            rows.append((name, str(counters[name])))
    return rows


def _catalog_table(metrics_doc: dict | None) -> str:
    """Metric catalog + current values from a snapshot document; falls
    back to the registered catalog when no snapshot was supplied."""
    if metrics_doc is None:
        entries = METRICS.catalog()
        for e in entries:
            e["samples"] = []
    else:
        entries = metrics_doc.get("metrics", [])
    if not entries:
        return '<p class="empty">no metrics recorded</p>'
    rows = []
    for m in entries:
        labels = ", ".join(m.get("labels", [])) or "–"
        samples = m.get("samples", [])
        if not samples:
            value = "–"
        elif m["type"] == "histogram":
            count = sum(s.get("count", 0) for s in samples)
            total = sum(s.get("sum", 0.0) for s in samples)
            mean = total / count if count else float("nan")
            value = f"n={count}, mean={_fmt_num(mean)}"
        elif len(samples) == 1:
            value = _fmt_num(samples[0].get("value", float("nan")))
        else:
            value = f"{len(samples)} series"
        rows.append(
            "<tr>"
            f"<td><code>{html.escape(m['name'])}</code></td>"
            f"<td>{html.escape(m['type'])}</td>"
            f"<td>{html.escape(labels)}</td>"
            f"<td>{html.escape(str(m.get('source', '') or '–'))}</td>"
            f'<td class="num">{html.escape(value)}</td>'
            f"<td>{html.escape(m.get('help', ''))}</td>"
            "</tr>"
        )
    return (
        "<table><thead><tr><th>metric</th><th>type</th><th>labels</th>"
        "<th>source</th><th>value</th><th>help</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _timeline_section(analysis: dict | None) -> str:
    """"Distributed timeline" section from a ``repro/timeline/1``
    analysis in the run-log summary (empty string when the run carried
    no worker timeline)."""
    if not analysis:
        return ""
    totals = analysis.get("totals") or {}
    rounds = analysis.get("rounds") or []
    overlap = totals.get("overlap_efficiency")
    imbalance = totals.get("imbalance")
    tiles = [
        _tile("ranks", str(analysis.get("n_ranks", 0))),
        _tile("exchange rounds", str(analysis.get("n_rounds", 0))),
        _tile("overlap efficiency",
              f"{overlap:.1%}" if isinstance(overlap, (int, float))
              and math.isfinite(overlap) else "–"),
        _tile("imbalance (max/mean)",
              f"{imbalance:.2f}" if isinstance(imbalance, (int, float))
              and math.isfinite(imbalance) else "–"),
        _tile("stall speedup bound",
              f"×{totals.get('stall_speedup_bound', 1.0):.2f}"),
    ]
    if analysis.get("dropped_events"):
        tiles.append(_tile("dropped events",
                           str(analysis["dropped_events"])))
    cards = [
        _series_card("Wait fraction", "wait / (interior + wait) per round "
                     "(0 = exchange fully hidden)",
                     [r.get("wait_fraction") for r in rounds]),
        _series_card("Load imbalance", "max/mean interior seconds per round",
                     [r.get("imbalance") for r in rounds]),
        _series_card("Round wall time", "per-round wall seconds (log scale)",
                     [r.get("wall_s") for r in rounds], unit=" s",
                     log_scale=True),
    ]
    return (
        "<h2>Distributed timeline</h2>"
        f'<div class="tiles">{"".join(tiles)}</div>'
        '<h2 style="margin-top:12px">Per-round series</h2>'
        f'<div class="cards">{"".join(cards)}</div>'
    )


def render_html_dashboard(
    header: dict,
    steps: list[dict],
    summary: dict | None,
    metrics_doc: dict | None = None,
    title: str = "repro run dashboard",
) -> str:
    """Render one self-contained HTML page from parsed run-log parts."""
    meta = {k: v for k, v in (header or {}).items()
            if k not in ("type", "schema")}
    meta_str = ", ".join(f"{k}={v}" for k, v in meta.items())

    walls = [s.get("wall_time_s") for s in steps]
    finite_walls = _finite(walls)
    total_wall = sum(finite_walls)
    rates = [1.0 / w if isinstance(w, (int, float)) and w and w > 0
             else float("nan") for w in walls]
    cfls = [s.get("cfl") for s in steps]
    finite_cfls = _finite(cfls)
    residuals = [s.get("pressure_residual") for s in steps]
    dts = [s.get("dt") for s in steps]
    p_iters = [(s.get("iterations") or {}).get("pressure") for s in steps]
    recovery = [s.get("recovery_events") for s in steps]
    has_recovery = any(isinstance(v, (int, float)) for v in recovery)
    inflow = [s.get("inflow_m3_s") for s in steps]
    tidal = [s.get("tidal_volume_ml") for s in steps]

    t_last = steps[-1].get("t") if steps else None
    tiles = [
        _tile("steps", str(len(steps))),
        _tile("sim time [s]", _fmt_num(t_last) if t_last is not None else "–"),
        _tile("wall time [s]", _fmt_num(total_wall)),
        _tile("steps / s",
              _fmt_num(len(finite_walls) / total_wall) if total_wall else "–"),
        _tile("mean CFL",
              _fmt_num(sum(finite_cfls) / len(finite_cfls))
              if finite_cfls else "–"),
    ]
    n_recovery = 0
    if has_recovery:
        n_recovery = int(max(_finite(recovery) or [0]))
        tiles.append(_tile("recovery events", str(n_recovery)))

    cards = [
        _series_card("Step rate", "completed steps per wall-clock second",
                     rates, unit=" /s"),
        _series_card("Realized CFL", "dt · k^1.5 · max|J⁻¹u| per step", cfls),
        _series_card("Pressure residual",
                     "final relative residual of the Poisson solve "
                     "(log scale)", residuals, log_scale=True),
        _series_card("Pressure iterations", "CG iterations per step", p_iters),
        _series_card("Step size", "dt per step [s]", dts, unit=" s"),
    ]
    if has_recovery:
        cards.append(_series_card(
            "Recovery activity", "new recovery events per step",
            _deltas([v or 0 for v in recovery])))
    if any(isinstance(v, (int, float)) for v in inflow):
        cards.append(_series_card(
            "Inlet flow", "tracheal inflow [m³/s]", inflow, unit=" m³/s"))
    if any(isinstance(v, (int, float)) for v in tidal):
        cards.append(_series_card(
            "Tidal volume", "volume stored in the compartments [ml]",
            tidal, unit=" ml"))

    timeline_section = _timeline_section((summary or {}).get("timeline"))

    rob_rows = _robustness_rows(summary)
    if rob_rows:
        robustness = (
            "<table><thead><tr><th>counter</th>"
            '<th class="num">count</th></tr></thead><tbody>'
            + "".join(
                f"<tr><td><code>{html.escape(k)}</code></td>"
                f'<td class="num">{html.escape(v)}</td></tr>'
                for k, v in rob_rows
            )
            + "</tbody></table>"
        )
    elif n_recovery:
        robustness = (f'<p class="warn">{n_recovery} recovery events '
                      "(no counter breakdown in this log — rerun with "
                      "--trace)</p>")
    else:
        robustness = '<p class="empty">no recovery activity recorded</p>'

    truncated = ("" if summary is not None else
                 '<p class="warn">no summary footer — the run is still in '
                 "flight or was truncated</p>")

    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{html.escape(title)}</title>
<style>{_CSS}</style>
</head>
<body>
<h1>{html.escape(title)}</h1>
<div class="meta">{html.escape(meta_str) or "no run metadata"}</div>
{truncated}
<div class="tiles">{''.join(tiles)}</div>
<h2>Per-step series</h2>
<div class="cards">{''.join(cards)}</div>
{timeline_section}
<h2>Robustness</h2>
{robustness}
<h2>Metric catalog</h2>
{_catalog_table(metrics_doc)}
</body>
</html>
"""


def write_html_dashboard(
    run_log, output, metrics_paths=(), title: str | None = None
) -> Path:
    """Render ``run_log`` (+ optional metric snapshot files, merged) to
    a self-contained HTML file at ``output``."""
    header, steps, summary = read_run_log(run_log, on_corrupt="warn")
    metrics_doc = None
    docs = [load_metrics(p) for p in metrics_paths]
    if docs:
        metrics_doc = docs[0] if len(docs) == 1 else merge_snapshots(docs)
    html_text = render_html_dashboard(
        header, steps, summary, metrics_doc,
        title=title or f"repro run — {Path(run_log).name}",
    )
    output = Path(output)
    output.write_text(html_text)
    return output
