"""Typed solver-health metric registry with Prometheus/JSONL exporters.

The numerics of a run (CG convergence shape, per-MG-level residual
reduction, Chebyshev eigenvalue estimates, divergence/energy health,
recovery activity) report into one process-global
:data:`METRICS` registry holding three metric types:

* :class:`Counter` — monotonic float totals (``*_total`` names),
* :class:`Gauge` — last-written values,
* :class:`Histogram` — fixed bucket edges, per-bucket counts plus
  sum/count (Prometheus ``le`` semantics: bucket ``i`` counts
  observations ``<= edges[i]``),

each also available as a *labeled family* whose children are keyed by
frozen label-value tuples (``family.labels(("pressure", "nan"))``).

The registry follows the same zero-allocation disabled fast-path
discipline as the :class:`~repro.telemetry.tracer.Tracer`: instrumented
modules create their metric handles **once at import time** (the
module-level handle pattern — ``scripts/check_metric_imports.py``
enforces it) and every recording entry point is a single attribute
check while the registry is disabled.  Call sites that would build
dynamic label values or f-strings guard on ``METRICS.enabled`` first.

Exporters:

* :func:`to_prometheus` / :func:`write_prometheus` — the Prometheus
  text exposition format (a ``.prom`` textfile for the node-exporter
  textfile collector), with :func:`parse_prometheus` as the matching
  reader so tests can round-trip what we emit;
* :func:`snapshot_doc` — a schema-versioned JSON document
  (``repro/metrics/1``), streamable as JSONL via
  :class:`MetricsWriter` (header first, then cumulative ``snapshot``
  records — the last line of a crashed worker is its final state);
* :func:`merge_snapshots` — the cross-process aggregator that merges
  per-worker snapshot documents: counters are summed, gauges take the
  last write (argument order), histogram buckets are merged
  element-wise.  The merge is associative, which is what allows a
  tree-shaped reduction over many workers.
"""

from __future__ import annotations

import json
import math
import re
import warnings
from bisect import bisect_left
from pathlib import Path

from .sinks import JsonlWriter

SCHEMA = "repro/metrics/1"

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: default bucket edges for residual-reduction-style ratios in (0, 1]
REDUCTION_BUCKETS = (1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)
#: default bucket edges for Krylov iteration counts
ITERATION_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0)


def _fmt(v: float) -> str:
    """Prometheus sample-value formatting: integers without a trailing
    ``.0`` so counters read naturally, everything else via ``repr``."""
    f = float(v)
    if math.isfinite(f) and f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


class _NullMetric:
    """Shared no-op child returned by families while metrics are
    disabled (mirrors the tracer's ``NULL_SPAN``)."""

    __slots__ = ()

    def inc(self, n: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_METRIC = _NullMetric()


class Counter:
    """Monotonic total.  ``inc`` is a no-op while the registry is
    disabled; negative increments are rejected."""

    __slots__ = ("_registry", "value")
    kind = "counter"

    def __init__(self, registry: "MetricRegistry") -> None:
        self._registry = registry
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        if n < 0:
            raise ValueError(f"counter increments must be >= 0, got {n}")
        self.value += n

    def _reset(self) -> None:
        self.value = 0.0

    def _samples(self, labels: tuple) -> list[dict]:
        return [{"labels": list(labels), "value": self.value}]


class Gauge:
    """Last-written value; unset gauges export no sample."""

    __slots__ = ("_registry", "value", "is_set")
    kind = "gauge"

    def __init__(self, registry: "MetricRegistry") -> None:
        self._registry = registry
        self.value = 0.0
        self.is_set = False

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        self.value = float(value)
        self.is_set = True

    def _reset(self) -> None:
        self.value = 0.0
        self.is_set = False

    def _samples(self, labels: tuple) -> list[dict]:
        if not self.is_set:
            return []
        return [{"labels": list(labels), "value": self.value}]


class Histogram:
    """Fixed-bucket histogram.  ``counts[i]`` holds observations with
    ``value <= edges[i]`` (exclusive of lower buckets); ``counts[-1]``
    is the overflow (``+Inf``) bucket.  NaN observations are dropped —
    a realized-CFL sample before the first velocity exists is NaN by
    design, not a signal."""

    __slots__ = ("_registry", "edges", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, registry: "MetricRegistry", edges: tuple[float, ...]) -> None:
        self._registry = registry
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        v = float(value)
        if math.isnan(v):
            return
        self.counts[bisect_left(self.edges, v)] += 1
        self.sum += v
        self.count += 1

    def _reset(self) -> None:
        self.counts = [0] * (len(self.edges) + 1)
        self.sum = 0.0
        self.count = 0

    def _samples(self, labels: tuple) -> list[dict]:
        return [
            {
                "labels": list(labels),
                "counts": list(self.counts),
                "sum": self.sum,
                "count": self.count,
            }
        ]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _validate_edges(edges) -> tuple[float, ...]:
    edges = tuple(float(e) for e in edges)
    if not edges:
        raise ValueError("a histogram needs at least one bucket edge")
    if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
        raise ValueError(f"bucket edges must be strictly increasing: {edges}")
    return edges


class _Family:
    """Labeled metric family: children keyed by frozen label tuples.

    ``labels`` returns the shared :data:`NULL_METRIC` while the
    registry is disabled, before touching (or even normalizing) the
    key, so the disabled path allocates nothing.  Call sites whose
    label values are built dynamically (f-strings, ``str(i)``) must
    guard on ``registry.enabled`` themselves.
    """

    __slots__ = ("_registry", "name", "kind", "label_names", "_make", "children")

    def __init__(self, registry, name, kind, label_names, make) -> None:
        self._registry = registry
        self.name = name
        self.kind = kind
        self.label_names = label_names
        self._make = make
        self.children: dict[tuple[str, ...], object] = {}

    def labels(self, values):
        """Child metric for one frozen label-value tuple (a bare string
        is accepted for single-label families)."""
        if not self._registry.enabled:
            return NULL_METRIC
        if isinstance(values, str):
            values = (values,)
        child = self.children.get(values)
        if child is None:
            values = tuple(str(v) for v in values)
            if len(values) != len(self.label_names):
                raise ValueError(
                    f"{self.name}: expected {len(self.label_names)} label "
                    f"value(s) {self.label_names}, got {values}"
                )
            child = self.children.get(values)
            if child is None:
                child = self.children[values] = self._make()
        return child

    def _reset(self) -> None:
        self.children.clear()

    def _samples(self, _labels: tuple = ()) -> list[dict]:
        out: list[dict] = []
        for key in sorted(self.children):
            out.extend(self.children[key]._samples(key))
        return out


class MetricRegistry:
    """Registry of named metrics and metric families.

    One process-global instance (:data:`METRICS`) is what the solve
    stack publishes into; independent instances can be created for
    tests.  Disabled by default — every recording path is then a
    single attribute check and allocates nothing.  Registration is
    idempotent (re-registering an identical metric returns the same
    handle) so module-level handles survive repeated imports; a
    conflicting re-registration raises.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._metrics: dict[str, dict] = {}  # name -> entry dict

    # -- lifecycle -------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero all recorded values but keep every registration (the
        module-level handles stay valid)."""
        for entry in self._metrics.values():
            entry["metric"]._reset()

    # -- registration ----------------------------------------------------
    def _register(self, name, kind, help, label_names, edges, source):
        if not _NAME_RE.match(name):
            raise ValueError(
                f"metric name {name!r} is not a valid Prometheus name"
            )
        label_names = tuple(str(n) for n in label_names or ())
        for ln in label_names:
            if not _NAME_RE.match(ln):
                raise ValueError(f"{name}: invalid label name {ln!r}")
        existing = self._metrics.get(name)
        if existing is not None:
            if (
                existing["kind"] != kind
                or existing["labels"] != label_names
                or existing.get("edges") != edges
            ):
                raise ValueError(
                    f"metric {name!r} already registered as a "
                    f"{existing['kind']} with labels {existing['labels']}"
                )
            return existing["metric"]
        if source is None:
            # registration happens at import/setup time, never in a hot
            # loop, so a frame inspection here is free in practice
            import sys

            frame = sys._getframe(2)
            source = frame.f_globals.get("__name__", "")
        make = (
            (lambda: Histogram(self, edges))
            if kind == "histogram"
            else (lambda: _KINDS[kind](self))
        )
        metric = _Family(self, name, kind, label_names, make) if label_names else make()
        entry = {
            "name": name,
            "kind": kind,
            "help": help,
            "labels": label_names,
            "metric": metric,
            "source": source,
        }
        if kind == "histogram":
            entry["edges"] = edges
        self._metrics[name] = entry
        return metric

    def counter(self, name, help="", labels=(), source=None):
        """Register (or look up) a counter; with ``labels`` a
        :class:`_Family` of counters."""
        return self._register(name, "counter", help, labels, None, source)

    def gauge(self, name, help="", labels=(), source=None):
        return self._register(name, "gauge", help, labels, None, source)

    def histogram(self, name, help="", buckets=REDUCTION_BUCKETS, labels=(),
                  source=None):
        edges = _validate_edges(buckets)
        return self._register(name, "histogram", help, labels, edges, source)

    # -- inspection ------------------------------------------------------
    def get(self, name: str):
        entry = self._metrics.get(name)
        return entry["metric"] if entry else None

    def catalog(self) -> list[dict]:
        """Registered-metric descriptions (name, type, labels, source,
        help) sorted by name — the basis of the README/dashboard metric
        catalog tables."""
        out = []
        for name in sorted(self._metrics):
            e = self._metrics[name]
            row = {
                "name": name,
                "type": e["kind"],
                "labels": list(e["labels"]),
                "source": e["source"],
                "help": e["help"],
            }
            if e["kind"] == "histogram":
                row["buckets"] = list(e["edges"])
            out.append(row)
        return out


#: Process-global metric registry the solve stack publishes into.
METRICS = MetricRegistry(enabled=False)


# ----------------------------------------------------------------------
# snapshot documents (schema repro/metrics/1)
# ----------------------------------------------------------------------
def _metric_dicts(registry: MetricRegistry) -> list[dict]:
    out = []
    for name in sorted(registry._metrics):
        e = registry._metrics[name]
        m = e["metric"]
        d = {
            "name": name,
            "type": e["kind"],
            "help": e["help"],
            "labels": list(e["labels"]),
            "source": e["source"],
            "samples": m._samples(()),
        }
        if e["kind"] == "histogram":
            d["buckets"] = list(e["edges"])
        out.append(d)
    return out


def snapshot_doc(registry: MetricRegistry, meta: dict | None = None) -> dict:
    """One schema-versioned JSON document of the registry's state."""
    return {
        "schema": SCHEMA,
        "meta": dict(meta or {}),
        "metrics": _metric_dicts(registry),
    }


def write_snapshot(registry: MetricRegistry, path, meta: dict | None = None) -> Path:
    """Write one JSON snapshot document (a per-worker metrics file)."""
    path = Path(path)
    with path.open("w") as f:
        json.dump(snapshot_doc(registry, meta), f, indent=2, allow_nan=True)
        f.write("\n")
    return path


class MetricsWriter(JsonlWriter):
    """Streaming JSONL metrics sink: a ``repro/metrics/1`` header, then
    cumulative ``snapshot`` records — the last parseable line of a
    crashed worker is that worker's final state."""

    def __init__(self, path, meta: dict | None = None) -> None:
        self.n_snapshots = 0
        super().__init__(path, SCHEMA, meta)

    def write_snapshot(self, registry: MetricRegistry, t: float | None = None) -> None:
        rec: dict = {
            "type": "snapshot",
            "seq": self.n_snapshots,
            "metrics": _metric_dicts(registry),
        }
        if t is not None:
            rec["t"] = t
        self._write(rec)
        self.n_snapshots += 1


def load_metrics(path) -> dict:
    """Read a metrics file — a single JSON snapshot document, a
    :class:`MetricsWriter` JSONL stream (the **last** parseable
    snapshot wins; corrupt mid-stream lines from crashed workers are
    skipped with a warning, matching the aggregation use case), or a
    ``.prom``/``.txt`` Prometheus textfile parsed back through
    :func:`parse_prometheus`."""
    path = Path(path)
    text = path.read_text()
    if path.suffix in (".prom", ".txt"):
        return parse_prometheus(text)
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and "schema" in doc and "type" not in doc:
        if doc.get("schema") != SCHEMA:
            raise ValueError(
                f"{path}: unsupported metrics schema {doc.get('schema')!r} "
                f"(expected {SCHEMA!r})"
            )
        doc.setdefault("meta", {})
        doc.setdefault("metrics", [])
        return doc
    # JSONL stream: header + snapshot records
    header: dict | None = None
    last: dict | None = None
    for line_no, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            warnings.warn(
                f"{path}:{line_no}: skipping corrupt metrics record ({e})",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        if rec.get("type") == "header":
            if rec.get("schema") != SCHEMA:
                raise ValueError(
                    f"{path}: unsupported metrics schema "
                    f"{rec.get('schema')!r} (expected {SCHEMA!r})"
                )
            header = rec
        elif rec.get("type") == "snapshot":
            last = rec
    if header is None:
        raise ValueError(f"{path}: no {SCHEMA!r} header or document found")
    meta = {k: v for k, v in header.items() if k not in ("type", "schema")}
    return {
        "schema": SCHEMA,
        "meta": meta,
        "metrics": list(last.get("metrics", [])) if last else [],
    }


# ----------------------------------------------------------------------
# cross-process aggregation
# ----------------------------------------------------------------------
def _sample_key(sample: dict) -> tuple[str, ...]:
    return tuple(sample.get("labels", ()))


def merge_snapshots(docs) -> dict:
    """Merge per-worker snapshot documents into one.

    Counters are summed per label tuple, gauges take the **last**
    write (argument order — pass workers in a stable order), histogram
    bucket counts are merged element-wise (bucket edges must agree).
    The operation is associative: merging pairwise in any grouping
    yields the same document, so many workers can be reduced in a
    tree.
    """
    docs = list(docs)
    merged: dict[str, dict] = {}
    for doc in docs:
        if doc.get("schema") != SCHEMA:
            raise ValueError(
                f"cannot merge metrics schema {doc.get('schema')!r} "
                f"(expected {SCHEMA!r})"
            )
        for m in doc.get("metrics", []):
            name = m["name"]
            tgt = merged.get(name)
            if tgt is None:
                tgt = merged[name] = {
                    "name": name,
                    "type": m["type"],
                    "help": m.get("help", ""),
                    "labels": list(m.get("labels", [])),
                    "source": m.get("source", ""),
                    "samples": {},
                }
                if m["type"] == "histogram":
                    tgt["buckets"] = list(m.get("buckets", []))
            else:
                if tgt["type"] != m["type"] or tgt["labels"] != list(
                    m.get("labels", [])
                ):
                    raise ValueError(
                        f"metric {name!r}: conflicting type/labels across "
                        "workers"
                    )
                if m["type"] == "histogram" and tgt["buckets"] != list(
                    m.get("buckets", [])
                ):
                    raise ValueError(
                        f"histogram {name!r}: bucket edges differ across "
                        "workers — cannot merge"
                    )
            for s in m.get("samples", []):
                key = _sample_key(s)
                cur = tgt["samples"].get(key)
                if m["type"] == "counter":
                    if cur is None:
                        tgt["samples"][key] = {
                            "labels": list(key),
                            "value": float(s["value"]),
                        }
                    else:
                        cur["value"] += float(s["value"])
                elif m["type"] == "gauge":
                    # last write wins (later documents supersede)
                    tgt["samples"][key] = {
                        "labels": list(key),
                        "value": float(s["value"]),
                    }
                else:  # histogram
                    counts = [int(c) for c in s["counts"]]
                    if cur is None:
                        tgt["samples"][key] = {
                            "labels": list(key),
                            "counts": counts,
                            "sum": float(s["sum"]),
                            "count": int(s["count"]),
                        }
                    else:
                        if len(cur["counts"]) != len(counts):
                            raise ValueError(
                                f"histogram {name!r}: bucket count mismatch"
                            )
                        cur["counts"] = [
                            a + b for a, b in zip(cur["counts"], counts)
                        ]
                        cur["sum"] += float(s["sum"])
                        cur["count"] += int(s["count"])
    metrics = []
    for name in sorted(merged):
        m = merged[name]
        m["samples"] = [m["samples"][k] for k in sorted(m["samples"])]
        metrics.append(m)
    return {
        "schema": SCHEMA,
        "meta": {"aggregated_workers": len(docs)},
        "metrics": metrics,
    }


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------
def _label_str(names, values, extra=()) -> str:
    pairs = [
        f'{n}="{_escape_label(str(v))}"' for n, v in zip(names, values)
    ]
    pairs.extend(f'{n}="{_escape_label(str(v))}"' for n, v in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def doc_to_prometheus(doc: dict) -> str:
    """Render a snapshot document in the Prometheus text format."""
    lines: list[str] = []
    for m in doc.get("metrics", []):
        name, kind = m["name"], m["type"]
        if m.get("help"):
            lines.append(f"# HELP {name} {_escape_help(m['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        label_names = m.get("labels", [])
        for s in m.get("samples", []):
            values = s.get("labels", [])
            if kind == "histogram":
                edges = m.get("buckets", [])
                cum = 0
                for edge, c in zip(edges, s["counts"]):
                    cum += c
                    lines.append(
                        f"{name}_bucket"
                        f"{_label_str(label_names, values, [('le', _fmt(edge))])}"
                        f" {cum}"
                    )
                cum += s["counts"][len(edges)]
                lines.append(
                    f"{name}_bucket"
                    f"{_label_str(label_names, values, [('le', '+Inf')])} {cum}"
                )
                lines.append(
                    f"{name}_sum{_label_str(label_names, values)} "
                    f"{_fmt(s['sum'])}"
                )
                lines.append(
                    f"{name}_count{_label_str(label_names, values)} "
                    f"{s['count']}"
                )
            else:
                lines.append(
                    f"{name}{_label_str(label_names, values)} "
                    f"{_fmt(s['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def to_prometheus(registry: MetricRegistry) -> str:
    return doc_to_prometheus(snapshot_doc(registry))


def write_prometheus(source, path) -> Path:
    """Write a ``.prom`` textfile from a registry or snapshot doc."""
    doc = source if isinstance(source, dict) else snapshot_doc(source)
    path = Path(path)
    path.write_text(doc_to_prometheus(doc))
    return path


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label(value: str) -> str:
    return (
        value.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")
    )


def parse_prometheus(text: str) -> dict:
    """Parse the Prometheus text format back into a snapshot-shaped
    document (the round-trip counterpart of :func:`doc_to_prometheus`).

    Histogram ``_bucket``/``_sum``/``_count`` series are regrouped
    under their base metric with the cumulative bucket counts
    de-accumulated, so ``parse_prometheus(to_prometheus(reg))`` equals
    ``snapshot_doc(reg)`` up to ``meta``/``source``/unset-gauge
    presence.
    """
    helps: dict[str, str] = {}
    types: dict[str, str] = {}
    samples: list[tuple[str, dict, float]] = []
    for line_no, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            name, _, help_text = rest.partition(" ")
            helps[name] = help_text.replace("\\n", "\n").replace("\\\\", "\\")
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE "):]
            name, _, kind = rest.partition(" ")
            types[name] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {line_no}: not a Prometheus sample: {line!r}")
        labels = {
            k: _unescape_label(v)
            for k, v in _LABEL_PAIR_RE.findall(m.group("labels") or "")
        }
        samples.append((m.group("name"), labels, float(m.group("value"))))

    metrics: dict[str, dict] = {}

    def _entry(name: str) -> dict:
        e = metrics.get(name)
        if e is None:
            e = metrics[name] = {
                "name": name,
                "type": types.get(name, "untyped"),
                "help": helps.get(name, ""),
                "labels": [],
                "samples": {},
            }
        return e

    hist_names = {n for n, k in types.items() if k == "histogram"}
    for sname, labels, value in samples:
        base, part = sname, "value"
        for suffix in ("_bucket", "_sum", "_count"):
            cand = sname[: -len(suffix)] if sname.endswith(suffix) else None
            if cand and cand in hist_names:
                base, part = cand, suffix[1:]
                break
        e = _entry(base)
        if e["type"] == "histogram":
            lbl = {k: v for k, v in labels.items() if k != "le"}
            key = tuple(sorted(lbl.items()))
            s = e["samples"].setdefault(
                key, {"labels": lbl, "cum": [], "sum": 0.0, "count": 0}
            )
            if part == "bucket":
                s["cum"].append((labels.get("le", "+Inf"), value))
            elif part == "sum":
                s["sum"] = value
            elif part == "count":
                s["count"] = int(value)
        else:
            key = tuple(sorted(labels.items()))
            e["samples"][key] = {"labels": labels, "value": value}

    out = []
    for name in sorted(metrics):
        e = metrics[name]
        rows = []
        edges: list[float] = []
        for key in sorted(e["samples"]):
            s = e["samples"][key]
            if e["type"] == "histogram":
                finite = [(float(le), c) for le, c in s["cum"] if le != "+Inf"]
                finite.sort()
                edges = [le for le, _ in finite]
                cum = [c for _, c in finite]
                cum.append(
                    next((c for le, c in s["cum"] if le == "+Inf"), s["count"])
                )
                counts = [
                    int(cum[i] - (cum[i - 1] if i else 0))
                    for i in range(len(cum))
                ]
                label_names = sorted(s["labels"])
                rows.append(
                    {
                        "labels": [s["labels"][k] for k in label_names],
                        "counts": counts,
                        "sum": s["sum"],
                        "count": s["count"],
                    }
                )
            else:
                label_names = sorted(s["labels"])
                rows.append(
                    {
                        "labels": [s["labels"][k] for k in label_names],
                        "value": s["value"],
                    }
                )
            e["labels"] = label_names
        d = {
            "name": name,
            "type": e["type"],
            "help": e["help"],
            "labels": e["labels"],
            "samples": rows,
        }
        if e["type"] == "histogram":
            d["buckets"] = edges
        out.append(d)
    return {"schema": SCHEMA, "meta": {}, "metrics": out}


# ----------------------------------------------------------------------
# exports and rendering
# ----------------------------------------------------------------------
def export_metrics(source, path, meta: dict | None = None) -> Path:
    """Write a registry's — or an already-merged snapshot document's —
    state to ``path``; the suffix picks the format — ``.prom``/``.txt``
    for the Prometheus textfile, anything else for the JSON snapshot
    document."""
    doc = source if isinstance(source, dict) else snapshot_doc(source)
    if meta:
        doc = {**doc, "meta": {**doc.get("meta", {}), **meta}}
    path = Path(path)
    if path.suffix in (".prom", ".txt"):
        return write_prometheus(doc, path)
    with path.open("w") as f:
        json.dump(doc, f, indent=2, allow_nan=True)
        f.write("\n")
    return path


def render_metrics_table(doc: dict) -> str:
    """Human-readable summary of a snapshot document."""
    lines = [f"{'metric':<44s} {'type':<10s} {'labels':<28s} {'value':>14s}"]
    for m in doc.get("metrics", []):
        label_names = m.get("labels", [])
        samples = m.get("samples", [])
        if not samples:
            lines.append(f"{m['name']:<44s} {m['type']:<10s} {'-':<28s} {'-':>14s}")
            continue
        for s in samples:
            lbl = (
                ",".join(f"{n}={v}" for n, v in zip(label_names, s["labels"]))
                or "-"
            )
            if m["type"] == "histogram":
                mean = s["sum"] / s["count"] if s["count"] else float("nan")
                val = f"n={s['count']} mean={mean:.4g}"
            else:
                val = f"{s['value']:.6g}"
            lines.append(
                f"{m['name']:<44s} {m['type']:<10s} {lbl:<28s} {val:>14s}"
            )
    return "\n".join(lines)
