"""Live monitoring of an in-flight run from its JSONL run log.

``repro monitor <run.jsonl>`` tails the log a running (or finished)
``repro lung`` simulation streams with ``--log-file``: step rate and
ETA, simulated time and time-step size, CFL, mean Krylov iterations per
solve, and the fault-tolerance activity (step retries, fallback-tier
escalations, checkpoints) of :mod:`repro.robustness`.

The reader tolerates a truncated final line (the writer flushes line by
line, so a log is a readable prefix at any instant) — that is what makes
monitoring an *in-flight* run safe.
"""

from __future__ import annotations

import math
import sys
import time
from pathlib import Path

from .report import aggregate_steps, render_robustness
from .sinks import read_run_log


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else float("nan")


def summarize_run(path, header: dict, steps: list[dict],
                  summary: dict | None) -> str:
    """One status block for the run log's current contents."""
    meta = ", ".join(
        f"{k}={v}" for k, v in header.items()
        if k not in ("type", "schema")
    )
    lines = [f"run log: {path}" + (f" ({meta})" if meta else "")]
    if not steps:
        lines.append("no step records yet")
        lines.append("status: " + ("finished" if summary is not None
                                   else "waiting for first step"))
        return "\n".join(lines)

    agg = aggregate_steps(steps)
    planned = header.get("steps")
    last = steps[-1]
    done = f"steps: {agg.n_steps}"
    if isinstance(planned, int) and planned > 0:
        done += f"/{planned} ({agg.n_steps / planned:.0%})"
    lines.append(
        f"{done}   sim t={agg.t_end:.5g}s   "
        f"dt={last.get('dt', float('nan')):.3e}s "
        f"(mean {agg.mean_dt:.3e}s)"
    )
    wall = agg.wall_per_step_s
    if wall > 0:
        rate = f"step rate: {1.0 / wall:.3g} steps/s ({wall:.3g} s/step)"
        if isinstance(planned, int) and planned > agg.n_steps:
            remaining = planned - agg.n_steps
            rate += f"   ETA: {remaining * wall:.3g} s ({remaining} steps left)"
        lines.append(rate)
    cfl = last.get("cfl")
    cfl_s = (f"{cfl:.3f}" if isinstance(cfl, (int, float))
             and not math.isnan(cfl) else "-")
    mean_cfl_s = ("-" if math.isnan(agg.mean_cfl) else f"{agg.mean_cfl:.3f}")
    iters = ", ".join(
        f"{k} {v:.1f}" for k, v in sorted(agg.mean_iterations.items())
    )
    lines.append(f"CFL: {cfl_s} (mean {mean_cfl_s})"
                 + (f"   iterations/solve: {iters}" if iters else ""))
    recovery = last.get("recovery_events")
    if recovery:
        lines.append(f"recovery events so far: {recovery}")
    worker_phases = last.get("worker_phases")
    if worker_phases:
        # cumulative per-rank phase seconds written by distributed runs:
        # render the pack/interior/wait breakdown per worker mid-flight
        from .timeline import render_worker_phases

        breakdown = render_worker_phases(worker_phases)
        if breakdown:
            lines.append(breakdown)
    if summary is not None:
        rb = render_robustness(summary.get("counters") or {})
        if rb:
            lines.append(rb)
    lines.append("status: " + ("finished" if summary is not None
                               else "running"))
    return "\n".join(lines)


def monitor_once(path) -> tuple[str, bool]:
    """Read the log once; returns ``(status_text, finished)``."""
    header, steps, summary = read_run_log(path)
    return summarize_run(path, header, steps, summary), summary is not None


def monitor_file(path, follow: bool = False, interval: float = 2.0,
                 stream=None, max_polls: int | None = None) -> int:
    """Print the run status; with ``follow``, repeat every ``interval``
    seconds until the summary footer appears (or ``max_polls`` reads).
    Returns 0 on success, 1 when the log cannot be read."""
    stream = stream or sys.stdout
    path = Path(path)
    polls = 0
    try:
        while True:
            try:
                text, finished = monitor_once(path)
            except (OSError, ValueError) as e:
                print(f"error: {e}", file=stream)
                return 1
            print(text, file=stream)
            polls += 1
            if finished or not follow:
                return 0
            if max_polls is not None and polls >= max_polls:
                return 0
            time.sleep(interval)
            print("", file=stream)
    except KeyboardInterrupt:
        # Ctrl-C while following is the normal way to stop watching a
        # long run: exit cleanly with one final status block instead of
        # unwinding with a traceback
        print("\ninterrupted -- final status:", file=stream)
        try:
            text, _ = monitor_once(path)
            print(text, file=stream)
        except (OSError, ValueError) as e:
            print(f"error: {e}", file=stream)
        return 0
