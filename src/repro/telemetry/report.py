"""Terminal reports over telemetry data.

Two views:

* :func:`render_breakdown` — the paper's Table-2-style wall-time
  breakdown of one run: seconds per time step and share of the step for
  every dual-splitting sub-step, plus mean Krylov iterations per solve.
* :func:`render_span_tree` — the raw hierarchical span profile of a
  :class:`~repro.telemetry.tracer.Tracer` (inclusive/exclusive seconds
  and call counts per nested region).

Both operate on plain dicts so they work equally on live
``StepStatistics`` objects and on records read back from a JSONL run
log by :func:`~repro.telemetry.sinks.read_run_log`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

# canonical sub-step display order (dual splitting, Eqs. (1)-(5))
SUBSTEP_ORDER = (
    "convective",
    "pressure_poisson",
    "projection",
    "helmholtz",
    "penalty",
    "convective_eval",
)
# sub-step -> iteration-count key in the step records
ITERATION_KEYS = {
    "pressure_poisson": "pressure",
    "helmholtz": "viscous",
    "penalty": "penalty",
}


@dataclass
class RunAggregate:
    """Per-run totals computed from step records."""

    n_steps: int = 0
    t_end: float = 0.0
    total_wall_s: float = 0.0
    mean_dt: float = 0.0
    mean_cfl: float = float("nan")
    substep_totals_s: dict[str, float] = field(default_factory=dict)
    mean_iterations: dict[str, float] = field(default_factory=dict)

    @property
    def wall_per_step_s(self) -> float:
        return self.total_wall_s / self.n_steps if self.n_steps else 0.0


def aggregate_steps(steps) -> RunAggregate:
    """Aggregate step records (dicts from a run log, or
    ``StepStatistics`` objects) into per-run totals."""
    agg = RunAggregate()
    cfls: list[float] = []
    iter_sums: dict[str, float] = {}
    for s in steps:
        if not isinstance(s, dict):  # live StepStatistics
            from .sinks import step_record

            s = step_record(s, agg.n_steps)
        agg.n_steps += 1
        agg.t_end = s.get("t", agg.t_end)
        agg.mean_dt += s.get("dt", 0.0)
        agg.total_wall_s += s.get("wall_time_s", 0.0)
        cfl = s.get("cfl")
        if cfl is not None and not math.isnan(cfl):
            cfls.append(cfl)
        for name, sec in (s.get("substeps_s") or {}).items():
            agg.substep_totals_s[name] = agg.substep_totals_s.get(name, 0.0) + sec
        for key, n in (s.get("iterations") or {}).items():
            iter_sums[key] = iter_sums.get(key, 0.0) + n
    if agg.n_steps:
        agg.mean_dt /= agg.n_steps
        agg.mean_iterations = {k: v / agg.n_steps for k, v in iter_sums.items()}
    if cfls:
        agg.mean_cfl = sum(cfls) / len(cfls)
    return agg


def _ordered_substeps(totals: dict[str, float]) -> list[str]:
    known = [n for n in SUBSTEP_ORDER if n in totals]
    return known + sorted(set(totals) - set(known))


def render_breakdown(agg: RunAggregate, title: str = "wall time per time step") -> str:
    """Table-2-style breakdown: time/step and share per sub-step."""
    lines = [
        f"{title} ({agg.n_steps} steps, t_end={agg.t_end:.5g}s, "
        f"mean dt={agg.mean_dt:.3e}s"
        + (f", mean CFL={agg.mean_cfl:.3f}" if not math.isnan(agg.mean_cfl) else "")
        + ")",
        f"{'sub-step':<20s} {'time/step [s]':>14s} {'share':>7s} {'iters/solve':>12s}",
    ]
    per_step = agg.wall_per_step_s
    accounted = 0.0
    for name in _ordered_substeps(agg.substep_totals_s):
        sec = agg.substep_totals_s[name] / max(agg.n_steps, 1)
        accounted += sec
        share = sec / per_step if per_step > 0 else 0.0
        iters = agg.mean_iterations.get(ITERATION_KEYS.get(name, ""), None)
        it_s = f"{iters:12.1f}" if iters is not None else f"{'-':>12s}"
        lines.append(f"{name:<20s} {sec:>14.4e} {share:>6.1%} {it_s}")
    if agg.substep_totals_s and per_step > 0:
        other = per_step - accounted
        lines.append(f"{'(unaccounted)':<20s} {other:>14.4e} {other / per_step:>6.1%}")
    lines.append(f"{'total step':<20s} {per_step:>14.4e} {'100.0%':>7s}")
    return "\n".join(lines)


def render_span_tree(tracer, min_seconds: float = 0.0) -> str:
    """Hierarchical span profile: inclusive/exclusive time and counts."""
    lines = [
        f"{'span':<44s} {'incl [s]':>10s} {'excl [s]':>10s} {'calls':>8s}"
    ]
    for child in tracer.root.children.values():
        for depth, node in child.walk():
            if node.total < min_seconds:
                continue
            label = "  " * depth + node.name
            lines.append(
                f"{label:<44s} {node.total:>10.4f} {node.exclusive:>10.4f} "
                f"{node.count:>8d}"
            )
    return "\n".join(lines)


#: counter-name prefixes that make up the robustness summary
ROBUSTNESS_PREFIXES = ("recovery.", "fallback.", "checkpoint.")


def render_robustness(counters: dict) -> str:
    """Summarize the fault-tolerance counters of a run (PR 3's recovery,
    pressure-fallback, and checkpoint subsystems) from a flat counter
    dict — live (``TRACER.counters``) or from a run-log summary.

    Returns an empty string when the run recorded none of them.
    """
    if not counters:
        return ""
    retries = counters.get("recovery.step_retries", 0)
    failures = counters.get("recovery.step_failures", 0)
    reasons = {
        k.removeprefix("recovery.reasons."): v
        for k, v in counters.items()
        if k.startswith("recovery.reasons.")
    }
    ckpt_writes = counters.get("checkpoint.writes", 0)
    ckpt_loads = counters.get("checkpoint.loads", 0)
    # fallback.<chain>.tier.<tier> / .escalations / .exhausted
    chains: dict[str, dict] = {}
    for k, v in counters.items():
        if not k.startswith("fallback."):
            continue
        rest = k.removeprefix("fallback.")
        if ".tier." in rest:
            chain, tier = rest.split(".tier.", 1)
            chains.setdefault(chain, {}).setdefault("tiers", {})[tier] = v
        elif rest.endswith(".escalations"):
            chains.setdefault(rest.removesuffix(".escalations"), {})[
                "escalations"
            ] = v
        elif rest.endswith(".exhausted"):
            chains.setdefault(rest.removesuffix(".exhausted"), {})[
                "exhausted"
            ] = v
    if not (retries or failures or reasons or ckpt_writes or ckpt_loads
            or chains):
        return ""
    lines = ["robustness:"]
    lines.append(
        f"  step retries: {retries}   step failures: {failures}"
    )
    for reason in sorted(reasons):
        lines.append(f"    retry reason {reason}: {reasons[reason]}")
    for chain in sorted(chains):
        info = chains[chain]
        tiers = info.get("tiers", {})
        tier_s = ", ".join(
            f"{t}={tiers[t]}" for t in sorted(tiers)
        ) or "none recorded"
        lines.append(
            f"  fallback[{chain}]: escalations={info.get('escalations', 0)} "
            f"exhausted={info.get('exhausted', 0)}  tiers: {tier_s}"
        )
    lines.append(
        f"  checkpoints: {ckpt_writes} written, {ckpt_loads} loaded"
    )
    return "\n".join(lines)


def render_counters(tracer) -> str:
    """Flat counter/gauge dump, sorted by name."""
    lines = []
    if tracer.counters:
        lines.append("counters:")
        for name in sorted(tracer.counters):
            lines.append(f"  {name:<42s} {tracer.counters[name]:>12d}")
    if tracer.gauges:
        lines.append("gauges:")
        for name in sorted(tracer.gauges):
            lines.append(f"  {name:<42s} {tracer.gauges[name]:>12.4e}")
    return "\n".join(lines)
