"""Structured run-log sinks.

The JSONL run log is the machine-readable record of a solver run — one
JSON object per line: a schema-versioned ``header`` first, one ``step``
record per time step, and an optional ``summary`` footer carrying the
tracer's counters/gauges and span tree.  ``repro report`` (and any
external tooling) consumes these files; the schema string is bumped on
breaking changes so readers can refuse logs they do not understand.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import IO

SCHEMA = "repro-runlog/1"


def step_record(stats, step_index: int, extra: dict | None = None) -> dict:
    """Flatten a :class:`~repro.timeint.dual_splitting.StepStatistics`
    into one JSON-serializable run-log record."""
    rec = {
        "type": "step",
        "step": step_index,
        "t": stats.t,
        "dt": stats.dt,
        "cfl": stats.cfl,
        "wall_time_s": stats.wall_time,
        "pressure_residual": getattr(stats, "pressure_residual", float("nan")),
        "iterations": {
            "pressure": stats.pressure_iterations,
            "viscous": stats.viscous_iterations,
            "penalty": stats.penalty_iterations,
        },
        "substeps_s": dict(stats.substep_seconds),
    }
    if extra:
        rec.update(extra)
    return rec


class JsonlWriter:
    """Generic streaming JSONL sink: a schema-versioned ``header``
    record first, then arbitrary records, flushed line by line so a
    crashed run leaves a readable prefix.  Usable as a context manager.
    Run logs and the verification rate tables both write through it."""

    def __init__(
        self, path: str | Path, schema: str, meta: dict | None = None
    ) -> None:
        self.path = Path(path)
        self._f: IO[str] | None = self.path.open("w")
        self._write({"type": "header", "schema": schema, **(meta or {})})

    def _write(self, rec: dict) -> None:
        if self._f is None:
            raise ValueError(f"run log {self.path} is already closed")
        json.dump(rec, self._f, allow_nan=True)
        self._f.write("\n")
        self._f.flush()

    def write_record(self, rec: dict) -> None:
        self._write(rec)

    def close(self) -> None:
        if self._f is not None:
            self._f.close()
            self._f = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RunLogWriter(JsonlWriter):
    """Streaming JSONL writer: header, then one record per time step,
    then a summary footer.  Usable as a context manager."""

    def __init__(self, path: str | Path, meta: dict | None = None) -> None:
        self.n_steps = 0
        super().__init__(path, SCHEMA, meta)

    def write_step(self, stats, extra: dict | None = None) -> dict:
        rec = step_record(stats, self.n_steps, extra)
        self._write(rec)
        self.n_steps += 1
        return rec

    def write_summary(self, tracer=None, extra: dict | None = None) -> None:
        rec: dict = {"type": "summary", "n_steps": self.n_steps}
        if tracer is not None:
            rec.update(tracer.snapshot())
        if extra:
            rec.update(extra)
        self._write(rec)


def read_run_log(path: str | Path, on_corrupt: str = "raise"):
    """Parse a JSONL run log; returns ``(header, steps, summary)`` where
    ``summary`` is ``None`` for truncated logs (e.g. a crashed run).

    A run killed mid-write leaves a partial final line; that line is
    skipped with a :class:`RuntimeWarning` instead of raising, so crash
    logs stay readable.  Malformed lines *before* the end of the file
    indicate corruption, not truncation: with the default
    ``on_corrupt="raise"`` they raise :class:`ValueError`; with
    ``on_corrupt="warn"`` they are skipped with a warning — the mode
    aggregation jobs use so one crashed worker's damaged log cannot
    abort the merge of all the others.
    """
    if on_corrupt not in ("raise", "warn"):
        raise ValueError(
            f"on_corrupt must be 'raise' or 'warn', got {on_corrupt!r}"
        )
    header: dict | None = None
    steps: list[dict] = []
    summary: dict | None = None
    with Path(path).open() as f:
        lines = f.readlines()
    last_line_no = len(lines)
    for line_no, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            if line_no == last_line_no:
                warnings.warn(
                    f"{path}:{line_no}: skipping truncated final record "
                    f"({e})",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            if on_corrupt == "warn":
                warnings.warn(
                    f"{path}:{line_no}: skipping corrupt record ({e})",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            raise ValueError(f"{path}:{line_no}: not valid JSON: {e}") from e
        kind = rec.get("type")
        if kind == "header":
            if rec.get("schema") != SCHEMA:
                raise ValueError(
                    f"{path}: unsupported run-log schema "
                    f"{rec.get('schema')!r} (expected {SCHEMA!r})"
                )
            header = rec
        elif kind == "step":
            steps.append(rec)
        elif kind == "summary":
            summary = rec
    if header is None:
        raise ValueError(f"{path}: no {SCHEMA!r} header record found")
    return header, steps, summary
