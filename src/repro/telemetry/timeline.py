"""Cross-process timeline tracing for the distributed runtime.

The shared-memory worker pool (:mod:`repro.parallel.runtime`) overlaps
ghost-face communication with interior cell work; the aggregated phase
counters prove the protocol runs, but not that the overlap *works*.
This module records what every rank did *when*: each worker writes
timestamped phase events (pack / post / interior / wait / cut /
accumulate, plus peer-tagged ``send``/``unpack`` detail events) into a
bounded ring buffer living in a shared-memory segment — allocation-free
on the hot path — and the master drains and merges the per-rank streams
into one monotonic global timeline using the master-clock offsets
measured by the pool's startup handshake.

On top of the merged stream:

* :func:`chrome_trace_doc` / :func:`write_chrome_trace` — the Chrome
  trace-event JSON format (load it in Perfetto or ``chrome://tracing``;
  one track per rank, flow arrows from each ghost *post* to the
  receiving rank's *unpack*),
* :func:`analyze_timeline` — per-round overlap/stall accounting: the
  wait fraction ``wait / (interior + wait)`` (0 = the exchange was
  fully hidden behind interior work), its complement
  ``overlap_efficiency``, load imbalance (max/mean interior seconds
  across ranks), and a critical-path estimate (the longest per-rank
  compute chain with all stalls removed — the round-time lower bound
  the current partition permits),
* :func:`render_timeline` — the terminal/report view of that analysis.

Timestamps are ``time.perf_counter`` seconds.  On Linux that clock is
``CLOCK_MONOTONIC``, which forked workers share with the master, so the
measured offsets are dominated by the handshake's pipe round-trip
(microseconds); the merge subtracts them anyway so the scheme survives
a transport whose clocks genuinely differ (MPI across hosts).
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np

#: Schema tag of the analysis document (``repro trace --json`` and the
#: ``timeline`` section of a run-log summary).
TIMELINE_SCHEMA = "repro/timeline/1"

#: Top-level protocol phases, in execution order.  These partition one
#: round's wall time on a rank (the completeness invariant the worker
#: asserts every round).
PHASES = ("pack", "post", "interior", "wait", "cut", "accumulate")

#: Peer-tagged detail events nested inside the top-level phases:
#: ``send`` (one per destination, inside ``pack``) and ``unpack`` (one
#: per source, inside ``cut``).  Flow arrows connect send -> unpack.
DETAIL_PHASES = ("send", "unpack")

#: All recordable event names; the ring stores the index into this.
PHASE_NAMES = PHASES + DETAIL_PHASES

PHASE_ID = {name: i for i, name in enumerate(PHASE_NAMES)}

#: One timeline event: protocol round, phase id, peer rank (-1 when the
#: event has no peer), start/end in ``perf_counter`` seconds.
EVENT_DTYPE = np.dtype(
    [
        ("round", np.int64),
        ("phase", np.int16),
        ("peer", np.int16),
        ("t0", np.float64),
        ("t1", np.float64),
    ]
)

_HEADER_BYTES = 16  # int64 write cursor + one reserved slot


class TimelineRing:
    """Bounded single-writer ring of timeline events over a raw buffer.

    The writer (one worker process) appends with :meth:`record`; the
    reader (the master) drains with :meth:`drain` while the writer is
    quiescent between rounds.  The write cursor only ever grows — on
    overflow the oldest events are overwritten and the reader reports
    them as dropped, so a stalled master can never block a worker.

    ``record`` is allocation-free: the field views are extracted once
    at construction and every call is five scalar stores plus a cursor
    bump, safe to leave in the mat-vec hot path.
    """

    def __init__(self, buf) -> None:
        nbytes = memoryview(buf).nbytes
        self.capacity = (nbytes - _HEADER_BYTES) // EVENT_DTYPE.itemsize
        if self.capacity < 1:
            raise ValueError("timeline buffer too small for one event")
        # np.ndarray(buffer=...) (not np.frombuffer) so the view does
        # not pin the mmap of a SharedMemory buffer against close()
        self._header = np.ndarray((2,), dtype=np.int64, buffer=buf)
        self._events = np.ndarray(
            (self.capacity,), dtype=EVENT_DTYPE, buffer=buf,
            offset=_HEADER_BYTES,
        )
        # pre-extracted field views keep record() allocation-free
        self._round = self._events["round"]
        self._phase = self._events["phase"]
        self._peer = self._events["peer"]
        self._t0 = self._events["t0"]
        self._t1 = self._events["t1"]

    @staticmethod
    def nbytes(capacity: int) -> int:
        """Buffer size needed for ``capacity`` events."""
        return _HEADER_BYTES + int(capacity) * EVENT_DTYPE.itemsize

    def clear(self) -> None:
        self._header[0] = 0

    @property
    def cursor(self) -> int:
        """Total events ever recorded (monotonic, not capped)."""
        return int(self._header[0])

    def record(self, rnd, phase, t0, t1, peer=-1) -> None:
        """Append one event (single writer; allocation-free)."""
        c = self._header[0]
        i = c % self.capacity
        self._round[i] = rnd
        self._phase[i] = phase
        self._peer[i] = peer
        self._t0[i] = t0
        self._t1[i] = t1
        self._header[0] = c + 1

    def drain(self, start: int) -> tuple[np.ndarray, int, int]:
        """Copy the events recorded since ``start``.

        Returns ``(events, cursor, dropped)``: a compact copy of the
        surviving events in record order, the new cursor to pass to the
        next drain, and how many events since ``start`` were already
        overwritten.  Call only while the writer is quiescent.
        """
        end = self.cursor
        n = end - start
        dropped = 0
        if n > self.capacity:
            dropped = n - self.capacity
            start = end - self.capacity
            n = self.capacity
        if n <= 0:
            return np.empty(0, dtype=EVENT_DTYPE), end, dropped
        lo = start % self.capacity
        hi = end % self.capacity
        if n == self.capacity or hi <= lo:
            out = np.concatenate([self._events[lo:], self._events[:hi]])
            out = out[:n].copy()
        else:
            out = self._events[lo:hi].copy()
        return out, end, dropped


# ----------------------------------------------------------------------
# merging per-rank streams
# ----------------------------------------------------------------------

def merge_timeline(rank_events: dict, offsets=None, rebase: bool = True) -> list[dict]:
    """Merge per-rank event arrays into one global timeline.

    ``rank_events`` maps rank -> list of :data:`EVENT_DTYPE` arrays (in
    drain order); ``offsets`` maps rank -> that rank's clock minus the
    master clock (the handshake estimate), subtracted so all events
    share the master clock.  With ``rebase`` the merged stream starts
    at t=0.  Returns plain dicts sorted by start time — the input every
    exporter/analyzer here consumes.
    """
    offsets = offsets or {}
    events: list[dict] = []
    for rank, chunks in rank_events.items():
        off = float(offsets.get(rank, 0.0))
        for chunk in chunks:
            for ev in chunk:
                events.append(
                    {
                        "rank": int(rank),
                        "round": int(ev["round"]),
                        "phase": PHASE_NAMES[int(ev["phase"])],
                        "peer": int(ev["peer"]),
                        "t0": float(ev["t0"]) - off,
                        "t1": float(ev["t1"]) - off,
                    }
                )
    events.sort(key=lambda e: (e["t0"], e["rank"], e["t1"]))
    if rebase and events:
        base = events[0]["t0"]
        for e in events:
            e["t0"] -= base
            e["t1"] -= base
    return events


# ----------------------------------------------------------------------
# Chrome trace-event export / import
# ----------------------------------------------------------------------

def chrome_trace_doc(events: list[dict], meta: dict | None = None) -> dict:
    """Render merged timeline events in the Chrome trace-event JSON
    format (the ``traceEvents`` array form Perfetto and
    ``chrome://tracing`` load directly).

    One thread track per rank, a complete (``ph="X"``) slice per event,
    and a flow arrow (``ph="s"`` -> ``ph="f"``) from every ghost
    ``send`` to the matching ``unpack`` on the receiving rank.  The
    exact start/end seconds ride along in each slice's ``args`` so
    :func:`load_chrome_trace` round-trips the timeline bit-exactly
    (the ``ts``/``dur`` microsecond fields are for the viewer).
    """
    ranks = sorted({e["rank"] for e in events})
    n_ranks = (max(ranks) + 1) if ranks else 0
    te: list[dict] = [
        {
            "ph": "M", "pid": 0, "tid": 0, "name": "process_name",
            "args": {"name": "repro worker pool"},
        }
    ]
    for r in ranks:
        te.append(
            {
                "ph": "M", "pid": 0, "tid": r, "name": "thread_name",
                "args": {"name": f"rank {r}"},
            }
        )
    unpacks = {
        (e["round"], e["peer"], e["rank"]): e
        for e in events
        if e["phase"] == "unpack" and e["peer"] >= 0
    }
    for e in events:
        args = {"round": e["round"], "t0_s": e["t0"], "t1_s": e["t1"]}
        if e["peer"] >= 0:
            args["peer"] = e["peer"]
        te.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": e["rank"],
                "name": e["phase"],
                "cat": "exchange" if e["phase"] in DETAIL_PHASES else "phase",
                "ts": e["t0"] * 1e6,
                "dur": max((e["t1"] - e["t0"]) * 1e6, 0.0),
                "args": args,
            }
        )
        if e["phase"] == "send" and e["peer"] >= 0:
            dst = unpacks.get((e["round"], e["rank"], e["peer"]))
            if dst is None:
                continue
            fid = (e["round"] * n_ranks + e["rank"]) * n_ranks + e["peer"]
            common = {"cat": "ghost", "name": "ghost", "pid": 0, "id": fid}
            te.append({"ph": "s", "tid": e["rank"], "ts": e["t1"] * 1e6, **common})
            te.append({"ph": "f", "bp": "e", "tid": dst["rank"],
                       "ts": dst["t0"] * 1e6, **common})
    doc = {
        "traceEvents": te,
        "displayTimeUnit": "ms",
        "metadata": {"schema": TIMELINE_SCHEMA, **(meta or {})},
    }
    return doc


def write_chrome_trace(path, events: list[dict], meta: dict | None = None) -> Path:
    path = Path(path)
    with path.open("w") as f:
        json.dump(chrome_trace_doc(events, meta), f)
        f.write("\n")
    return path


def load_chrome_trace(path) -> tuple[list[dict], dict]:
    """Read a Chrome trace written by :func:`write_chrome_trace` back
    into ``(events, metadata)`` — the bit-exact inverse (slice ``args``
    carry the full-precision seconds)."""
    with Path(path).open() as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(f"{path}: not a Chrome trace-event document")
    events = []
    for e in doc["traceEvents"]:
        if e.get("ph") != "X":
            continue
        args = e.get("args", {})
        t0 = args.get("t0_s", e.get("ts", 0.0) / 1e6)
        t1 = args.get("t1_s", (e.get("ts", 0.0) + e.get("dur", 0.0)) / 1e6)
        events.append(
            {
                "rank": int(e.get("tid", 0)),
                "round": int(args.get("round", -1)),
                "phase": e["name"],
                "peer": int(args.get("peer", -1)),
                "t0": float(t0),
                "t1": float(t1),
            }
        )
    events.sort(key=lambda ev: (ev["t0"], ev["rank"], ev["t1"]))
    return events, dict(doc.get("metadata", {}))


# ----------------------------------------------------------------------
# analysis: overlap efficiency, imbalance, critical path
# ----------------------------------------------------------------------

def _phase_seconds(events: list[dict]):
    """((round, rank) -> {phase: seconds}) over the top-level phases,
    plus per-rank detail-phase totals."""
    rounds: dict[tuple[int, int], dict] = {}
    detail: dict[int, dict] = {}
    for e in events:
        dur = e["t1"] - e["t0"]
        if e["phase"] in DETAIL_PHASES:
            d = detail.setdefault(e["rank"], {p: 0.0 for p in DETAIL_PHASES})
            d[e["phase"]] += dur
            continue
        rec = rounds.setdefault(
            (e["round"], e["rank"]),
            {"t0": e["t0"], "t1": e["t1"], "phases": {}},
        )
        rec["t0"] = min(rec["t0"], e["t0"])
        rec["t1"] = max(rec["t1"], e["t1"])
        rec["phases"][e["phase"]] = rec["phases"].get(e["phase"], 0.0) + dur
    return rounds, detail


def analyze_timeline(events: list[dict], rank_bytes: dict | None = None,
                     dropped_events: int = 0) -> dict:
    """Per-round overlap/stall accounting of a merged timeline.

    Per round (and aggregated over the solve):

    * ``wait_fraction`` — ``sum(wait) / sum(interior + wait)`` over the
      ranks: the share of the post-to-unpack window spent stalled on
      neighbors.  0 means the exchange was completely hidden behind
      interior work; 1 means no overlap happened at all.
    * ``overlap_efficiency`` — ``1 - wait_fraction``.
    * ``imbalance`` — max/mean interior seconds across ranks (1.0 =
      perfectly balanced partition).
    * ``critical_path_s`` — the longest per-rank compute chain with the
      wait removed, ``max_r(round_r - wait_r)``: the round-time lower
      bound the current partition permits.  Aggregated, the ratio
      ``wall_s / critical_path_s`` bounds the speedup available from
      eliminating stalls alone.

    ``rank_bytes`` (rank -> ``{"send": bytes, "recv": bytes}`` per
    round, e.g. :meth:`PartitionPlan.rank_exchange_bytes`) adds
    achieved exchange bandwidth per rank.  Returns a JSON-serializable
    ``repro/timeline/1`` document.
    """
    per_round_rank, detail = _phase_seconds(events)
    by_round: dict[int, dict] = {}
    for (rnd, rank), rec in per_round_rank.items():
        by_round.setdefault(rnd, {})[rank] = rec

    rounds = []
    tot_interior = tot_wait = tot_wall = tot_crit = 0.0
    phase_totals = {p: 0.0 for p in PHASES}
    rank_phase: dict[int, dict] = {}
    rank_rounds: dict[int, int] = {}
    for rnd in sorted(by_round):
        ranks = by_round[rnd]
        interior = {r: rec["phases"].get("interior", 0.0) for r, rec in ranks.items()}
        wait = {r: rec["phases"].get("wait", 0.0) for r, rec in ranks.items()}
        s_int = sum(interior.values())
        s_wait = sum(wait.values())
        wall = max(rec["t1"] for rec in ranks.values()) - min(
            rec["t0"] for rec in ranks.values()
        )
        crit = max(
            sum(rec["phases"].values()) - wait[r] for r, rec in ranks.items()
        )
        window = s_int + s_wait
        wait_frac = s_wait / window if window > 0 else 0.0
        mean_int = s_int / len(interior) if interior else 0.0
        imbalance = (
            max(interior.values()) / mean_int if mean_int > 0 else float("nan")
        )
        max_wait_rank = max(wait, key=wait.get) if wait else -1
        rounds.append(
            {
                "round": rnd,
                "n_ranks": len(ranks),
                "wall_s": wall,
                "wait_fraction": wait_frac,
                "overlap_efficiency": 1.0 - wait_frac,
                "imbalance": imbalance,
                "critical_path_s": crit,
                "max_wait_rank": int(max_wait_rank),
                "max_wait_s": wait.get(max_wait_rank, 0.0),
            }
        )
        tot_interior += s_int
        tot_wait += s_wait
        tot_wall += wall
        tot_crit += crit
        for r, rec in ranks.items():
            rp = rank_phase.setdefault(r, {p: 0.0 for p in PHASES})
            for p, sec in rec["phases"].items():
                rp[p] = rp.get(p, 0.0) + sec
            rank_rounds[r] = rank_rounds.get(r, 0) + 1
        for p in PHASES:
            phase_totals[p] += sum(
                rec["phases"].get(p, 0.0) for rec in ranks.values()
            )

    per_rank: dict[str, dict] = {}
    for r in sorted(rank_phase):
        info: dict = {
            "rounds": rank_rounds[r],
            "phase_seconds": {
                p: rank_phase[r].get(p, 0.0)
                for p in PHASES
                if rank_phase[r].get(p, 0.0) > 0.0 or p in PHASES
            },
        }
        d = detail.get(r)
        if d:
            info["detail_seconds"] = dict(d)
        if rank_bytes and (r in rank_bytes or str(r) in rank_bytes):
            rb = rank_bytes.get(r, rank_bytes.get(str(r), {}))
            per_round_bytes = float(rb.get("send", 0)) + float(rb.get("recv", 0))
            moved = per_round_bytes * rank_rounds[r]
            comm_s = (
                rank_phase[r].get("pack", 0.0)
                + rank_phase[r].get("post", 0.0)
                + rank_phase[r].get("wait", 0.0)
                + (d or {}).get("unpack", 0.0)
            )
            info["exchange_bytes_per_round"] = per_round_bytes
            info["exchange_bytes_total"] = moved
            info["exchange_seconds"] = comm_s
            info["achieved_gb_s"] = moved / comm_s / 1e9 if comm_s > 0 else 0.0
        per_rank[str(r)] = info

    window = tot_interior + tot_wait
    wait_frac = tot_wait / window if window > 0 else 0.0
    mean_int_rank = (
        tot_interior / len(rank_phase) if rank_phase else 0.0
    )
    imbalance = (
        max(rp.get("interior", 0.0) for rp in rank_phase.values()) / mean_int_rank
        if mean_int_rank > 0
        else float("nan")
    )
    return {
        "schema": TIMELINE_SCHEMA,
        "n_ranks": len(rank_phase),
        "n_rounds": len(rounds),
        "n_events": len(events),
        "dropped_events": int(dropped_events),
        "rounds": rounds,
        "totals": {
            "wall_s": tot_wall,
            "interior_s": tot_interior,
            "wait_s": tot_wait,
            "wait_fraction": wait_frac,
            "overlap_efficiency": 1.0 - wait_frac,
            "imbalance": imbalance,
            "critical_path_s": tot_crit,
            "stall_speedup_bound": (tot_wall / tot_crit) if tot_crit > 0 else 1.0,
            "phase_seconds": phase_totals,
            "per_rank": per_rank,
        },
    }


def render_timeline(analysis: dict, max_rounds: int = 5) -> str:
    """Terminal view of a timeline analysis document (the "Distributed
    timeline" section of ``repro report`` and ``repro trace``)."""
    t = analysis.get("totals", {})
    lines = [
        f"distributed timeline: {analysis.get('n_ranks', 0)} ranks, "
        f"{analysis.get('n_rounds', 0)} rounds, "
        f"{analysis.get('n_events', 0)} events"
        + (
            f" ({analysis['dropped_events']} dropped)"
            if analysis.get("dropped_events")
            else ""
        ),
        f"  overlap efficiency: {t.get('overlap_efficiency', float('nan')):.1%}"
        f" (wait fraction {t.get('wait_fraction', float('nan')):.1%})   "
        f"imbalance (max/mean interior): "
        + (
            f"{t['imbalance']:.2f}"
            if isinstance(t.get("imbalance"), (int, float))
            and math.isfinite(t.get("imbalance", float("nan")))
            else "-"
        ),
        f"  exchange wall {t.get('wall_s', 0.0):.4f} s, critical path "
        f"{t.get('critical_path_s', 0.0):.4f} s "
        f"(x{t.get('stall_speedup_bound', 1.0):.2f} bound from removing "
        f"stalls)",
    ]
    ph = t.get("phase_seconds") or {}
    if ph:
        lines.append(
            "  phase seconds: "
            + "  ".join(f"{p} {ph.get(p, 0.0):.4f}" for p in PHASES)
        )
    per_rank = t.get("per_rank") or {}
    for r in sorted(per_rank, key=int):
        info = per_rank[r]
        rp = info.get("phase_seconds", {})
        row = (
            f"  rank {r}: interior {rp.get('interior', 0.0):.4f} s  "
            f"wait {rp.get('wait', 0.0):.4f} s"
        )
        if "achieved_gb_s" in info:
            row += (
                f"  exchange {info['exchange_bytes_total'] / 1e6:.3f} MB "
                f"@ {info['achieved_gb_s']:.3f} GB/s"
            )
        lines.append(row)
    rounds = analysis.get("rounds") or []
    worst = sorted(rounds, key=lambda r: r.get("wait_fraction", 0.0),
                   reverse=True)[:max_rounds]
    if worst:
        lines.append(
            f"  worst rounds by wait fraction (of {len(rounds)}):"
        )
        lines.append(
            f"    {'round':>6s} {'wall [s]':>10s} {'wait':>7s} "
            f"{'overlap':>8s} {'imbal':>6s} {'stalled-on':>10s}"
        )
        for r in worst:
            imb = r.get("imbalance", float("nan"))
            imb_s = f"{imb:.2f}" if math.isfinite(imb) else "-"
            lines.append(
                f"    {r['round']:>6d} {r['wall_s']:>10.3e} "
                f"{r['wait_fraction']:>7.1%} "
                f"{r['overlap_efficiency']:>8.1%} {imb_s:>6s} "
                f"{('rank ' + str(r['max_wait_rank'])):>10s}"
            )
    return "\n".join(lines)


def render_worker_phases(worker_phases: dict) -> str:
    """Per-worker phase breakdown (percent of that worker's recorded
    round time) from cumulative phase-seconds totals — the view
    ``repro monitor`` shows for run logs carrying merged worker
    telemetry."""
    if not worker_phases:
        return ""
    lines = ["worker phases (% of per-rank round time):"]
    for rank in sorted(worker_phases, key=lambda k: int(k)):
        phases = worker_phases[rank]
        total = sum(phases.values())
        if total <= 0:
            continue
        parts = "  ".join(
            f"{p} {phases.get(p, 0.0) / total:.1%}"
            for p in PHASES
            if p in phases
        )
        lines.append(f"  rank {rank}: {parts}  (total {total:.3f} s)")
    return "\n".join(lines) if len(lines) > 1 else ""
