"""Zero-dependency hierarchical span tracer with counters and gauges.

The solve stack is instrumented with *spans* — named, nested timing
regions entered through a context manager::

    with TRACER.span("pressure_poisson"):
        ...

Each distinct (parent, name) pair accumulates inclusive wall time and a
call count into one :class:`SpanNode`; exclusive time (inclusive minus
the children's inclusive time) is derived at report time.  Flat *typed
counters* (monotonic integers, e.g. ``vmult.DGLaplaceOperator``) and
*gauges* (last-written floats) ride along in the same tracer.

Spans can additionally carry *work-model annotations* — analytic Flop,
byte-transfer, and DoF tallies attached by the instrumented kernel while
its span is open (:meth:`Tracer.annotate`).  The tallies describe only
the annotating region's **own** work (a parent never re-counts what its
instrumented children annotate), so achieved GFlop/s and GB/s are
computed against the node's *exclusive* time, and subtree sums attribute
work to enclosing sub-steps.  Like everything else here, annotation is a
single attribute check when the tracer is disabled and allocates
nothing.

The process-global tracer is **disabled by default** and every entry
point has a no-op fast path — a single attribute check — so the
instrumentation can stay in the hot paths permanently.  Enabling costs
one ``perf_counter`` pair plus a dict lookup per span, far below the
cost of any instrumented solver stage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class SpanNode:
    """Accumulated statistics of one named region under one parent."""

    name: str
    total: float = 0.0  # inclusive seconds across all visits
    count: int = 0
    children: dict[str, "SpanNode"] = field(default_factory=dict)
    # own-work annotations (this node only, children excluded)
    flops: float = 0.0
    bytes: float = 0.0
    dofs: float = 0.0

    @property
    def exclusive(self) -> float:
        """Inclusive time minus the time spent in child spans."""
        return self.total - sum(c.total for c in self.children.values())

    @property
    def has_work(self) -> bool:
        return self.flops != 0.0 or self.bytes != 0.0 or self.dofs != 0.0

    def add_work(self, flops: float = 0.0, bytes: float = 0.0,
                 dofs: float = 0.0) -> None:
        """Accumulate own-work tallies for one visit of this region."""
        self.flops += flops
        self.bytes += bytes
        self.dofs += dofs

    def subtree_work(self) -> tuple[float, float, float]:
        """(flops, bytes, dofs) summed over this node and its subtree."""
        f, b, d = self.flops, self.bytes, self.dofs
        for c in self.children.values():
            cf, cb, cd = c.subtree_work()
            f, b, d = f + cf, b + cb, d + cd
        return f, b, d

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "SpanNode"]]:
        """Depth-first (depth, node) pairs over the subtree, self first."""
        yield depth, self
        for c in self.children.values():
            yield from c.walk(depth + 1)

    @classmethod
    def from_dict(cls, name: str, d: dict) -> "SpanNode":
        """Rebuild a subtree from the :meth:`to_dict` representation
        (e.g. the ``spans`` section of a run-log summary)."""
        work = d.get("work") or {}
        node = cls(
            name,
            total=float(d.get("total_s", 0.0)),
            count=int(d.get("count", 0)),
            flops=float(work.get("flops", 0.0)),
            bytes=float(work.get("bytes", 0.0)),
            dofs=float(work.get("dofs", 0.0)),
        )
        for cname, cd in (d.get("children") or {}).items():
            node.children[cname] = cls.from_dict(cname, cd)
        return node

    def to_dict(self) -> dict:
        d: dict = {"total_s": self.total, "count": self.count}
        if self.has_work:
            d["work"] = {"flops": self.flops, "bytes": self.bytes,
                         "dofs": self.dofs}
        if self.children:
            d["children"] = {k: v.to_dict() for k, v in self.children.items()}
        return d


class _NullSpan:
    """Shared no-op span returned while the tracer is disabled."""

    __slots__ = ()
    elapsed = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """Live span: pushes its node on the tracer stack for the duration
    and accumulates elapsed time on exit (kept in ``self.elapsed`` so
    callers can also read the single-visit timing)."""

    __slots__ = ("_tracer", "_node", "_t0", "elapsed")

    def __init__(self, tracer: "Tracer", node: SpanNode) -> None:
        self._tracer = tracer
        self._node = node
        self.elapsed = 0.0

    def __enter__(self) -> "_Span":
        self._tracer._stack.append(self._node)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.elapsed = time.perf_counter() - self._t0
        self._node.total += self.elapsed
        self._node.count += 1
        self._tracer._stack.pop()
        return False


class Tracer:
    """Hierarchical span tracer plus flat counters and gauges.

    One process-global instance (:data:`repro.telemetry.TRACER`) is the
    registry the whole solve stack reports into; independent instances
    can be created for tests.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.root = SpanNode("root")
        self._stack: list[SpanNode] = [self.root]
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}

    # -- lifecycle -------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded spans, counters, and gauges (keeps the
        enabled flag)."""
        self.root = SpanNode("root")
        self._stack = [self.root]
        self.counters.clear()
        self.gauges.clear()

    # -- recording -------------------------------------------------------
    def span(self, name: str):
        """Context manager timing a named region nested under the
        currently open span; a shared no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, self._stack[-1].child(name))

    def annotate(self, flops: float = 0.0, bytes: float = 0.0,
                 dofs: float = 0.0) -> None:
        """Attach own-work tallies to the currently open span.

        Called by instrumented kernels *inside* their span; the tallies
        must cover only the caller's own work — instrumented children
        annotate their spans themselves.  A single attribute check (no
        allocation) when disabled.
        """
        if not self.enabled:
            return
        self._stack[-1].add_work(flops, bytes, dofs)

    def incr(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the named monotonic counter."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of a named gauge."""
        if not self.enabled:
            return
        self.gauges[name] = float(value)

    # -- inspection ------------------------------------------------------
    def find(self, *path: str) -> SpanNode | None:
        """Look up a span node by its name path from the root."""
        node = self.root
        for name in path:
            node = node.children.get(name)
            if node is None:
                return None
        return node

    def snapshot(self) -> dict:
        """JSON-serializable view of everything recorded so far."""
        return {
            "spans": {k: v.to_dict() for k, v in self.root.children.items()},
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }
