"""Time integration: variable-step BDF coefficients, CFL-adaptive step
control (Eq. (6)), and the dual splitting scheme (Eqs. (1)-(5))."""

from .bdf import BDFCoefficients, bdf_coefficients, constant_step_coefficients
from .cfl import CFLController
from .dual_splitting import DualSplittingScheme, SplittingOperators, StepStatistics

__all__ = [
    "BDFCoefficients",
    "bdf_coefficients",
    "constant_step_coefficients",
    "CFLController",
    "DualSplittingScheme",
    "SplittingOperators",
    "StepStatistics",
]
