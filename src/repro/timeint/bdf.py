"""Variable-step BDF and extrapolation coefficients.

The dual splitting scheme (Eqs. (1)-(5)) uses BDF time derivatives
``(gamma0 u^{n+1} - sum_i alpha_i u^{n-i}) / dt_n`` and explicit
extrapolation ``sum_i beta_i f(u^{n-i})`` of the convective term, both
of order J (paper: J = 2) with *variable step sizes* driven by the CFL
condition.  The coefficients are derived from Lagrange interpolation on
the non-uniform time grid, so the formal order is preserved under step
changes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BDFCoefficients:
    """gamma0, alpha[i] (history weights), beta[i] (extrapolation)."""

    gamma0: float
    alpha: np.ndarray
    beta: np.ndarray

    @property
    def order(self) -> int:
        return len(self.alpha)


def bdf_coefficients(order: int, dt_history: list[float]) -> BDFCoefficients:
    """Coefficients for the step from t_n to t_{n+1} = t_n + dt_history[0].

    ``dt_history[i]`` is the step size ``t_{n+1-i} - t_{n-i}``; only the
    first ``order`` entries are used.  For order J, the scheme needs J
    previous solutions.

    Derivation: let t_{n+1} = 0 and t_{n-i} = -(dt_0 + ... + dt_i) for
    i = 0..J-1.  The BDF derivative is the derivative at 0 of the
    polynomial interpolating (t_{n+1}, u^{n+1}) and the history points;
    gamma0 and alpha_i are the (dt_0-scaled) weights.  beta_i are the
    weights extrapolating the history to t_{n+1}.
    """
    if order < 1 or order > 3:
        raise ValueError("supported BDF orders: 1, 2, 3")
    if len(dt_history) < order:
        raise ValueError(f"need {order} step sizes, got {len(dt_history)}")
    dt = np.asarray(dt_history[:order], dtype=float)
    if np.any(dt <= 0):
        raise ValueError("step sizes must be positive")
    # node positions: t_{n+1} = 0, t_n = -dt0, t_{n-1} = -(dt0+dt1), ...
    nodes = np.concatenate([[0.0], -np.cumsum(dt)])
    m = order + 1
    # derivative weights of Lagrange basis at x = 0
    w_der = np.empty(m)
    for j in range(m):
        others = np.delete(nodes, j)
        denom = np.prod(nodes[j] - others)
        # d/dx prod (x - others) at 0 = sum_k prod_{l != k} (0 - others_l)
        s = 0.0
        for k_ in range(m - 1):
            rest = np.delete(others, k_)
            s += np.prod(-rest)
        w_der[j] = s / denom
    gamma0 = w_der[0] * dt[0]
    alpha = -w_der[1:] * dt[0]
    # extrapolation to 0 from history nodes only
    hist = nodes[1:]
    beta = np.empty(order)
    for j in range(order):
        others = np.delete(hist, j)
        beta[j] = np.prod(-others) / np.prod(hist[j] - others)
    return BDFCoefficients(gamma0=float(gamma0), alpha=alpha, beta=beta)


def constant_step_coefficients(order: int) -> BDFCoefficients:
    """Classical constant-dt coefficients (BDF2: gamma0 = 3/2,
    alpha = (2, -1/2), beta = (2, -1))."""
    return bdf_coefficients(order, [1.0] * order)
