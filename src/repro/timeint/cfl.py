"""Adaptive CFL time-step control (Eq. (6)).

``dt = CFL / k^{1.5} * min_e (h / |u_h|)_e``: the local ratio is
evaluated inside each element through the reference-space velocity
``J^{-1} u`` (whose magnitude is exactly ``|u_h| / h`` per direction on
deformed cells), the CFL number and polynomial degree are global.  The
step size adapts every step to the instantaneous velocity field in the
most critical element — this adaptivity is what makes the *number of
time steps per breathing cycle* depend on the tidal volume rather than
the period (Eq. (8)).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CFLController:
    cfl: float
    degree: int
    dt_min: float = 1e-12
    dt_max: float = float("inf")
    max_growth: float = 1.2

    def step_size(self, max_ref_velocity: float, dt_previous: float | None = None) -> float:
        """New step from ``max_q |J^{-1} u|`` (see
        :meth:`repro.core.operators.convective.ConvectiveOperator.max_reference_velocity`).

        Growth between consecutive steps is limited (`max_growth`) to
        keep the variable-step BDF coefficients well conditioned.
        """
        if max_ref_velocity <= 0:
            dt = self.dt_max
        else:
            dt = self.cfl / (self.degree**1.5) / max_ref_velocity
        if dt_previous is not None:
            dt = min(dt, self.max_growth * dt_previous)
        return float(min(max(dt, self.dt_min), self.dt_max))
