"""The high-order dual splitting scheme (Karniadakis et al. 1991),
Eqs. (1)-(5) of the paper, with variable-step BDF coefficients.

Each time step performs

1. **explicit convective step** — BDF history combination plus
   extrapolated convective term, inverted by the fast mass inverse;
2. **pressure Poisson step** — hybrid-multigrid-preconditioned CG
   (the dominant cost and the paper's central solver target);
3. **explicit projection step** — pressure-gradient correction;
4. **implicit viscous step** — Helmholtz solve, inverse-mass
   preconditioned CG;
5. **penalty step** — divergence/continuity penalty solve, inverse-mass
   preconditioned CG.

Initial pressure/velocity guesses for the iterative solves are
extrapolated from previous steps, which is what allows the relaxed
``1e-3`` tolerances of the application runs (Section 5.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..solvers.krylov import conjugate_gradient
from ..telemetry import TRACER
from .bdf import bdf_coefficients


@dataclass
class StepStatistics:
    """Per-time-step solver record: what the run log stores per step.

    ``wall_time`` is always measured (two clock reads per step);
    ``substep_seconds`` is filled from the tracing spans and stays empty
    while the global tracer is disabled.  ``cfl`` is the realized CFL
    number, stamped by the driving solver when it knows the velocity
    scale (NaN otherwise).  ``pressure_residual`` is the final relative
    residual of the pressure Poisson solve — the per-step convergence
    signal run dashboards plot."""

    dt: float
    t: float
    pressure_iterations: int
    viscous_iterations: int
    penalty_iterations: int
    cfl: float = float("nan")
    wall_time: float = 0.0
    pressure_residual: float = float("nan")
    substep_seconds: dict[str, float] = field(default_factory=dict)
    member_cfl: list[float] | None = None
    member_pressure_iterations: list[int] | None = None


@dataclass
class SplittingOperators:
    """Operator bundle the scheme drives (duck-typed, see ns.solver).

    ``pressure_neumann_rhs(t_new, u_history, t_history, coeffs, dt)``
    assembles the *consistent* pressure Neumann boundary term of the
    high-order dual splitting (Karniadakis et al. 1991; Fehn et al.
    2017): ``dp/dn = -n . (dg/dt + extrapolated [conv + nu curl(omega)])``
    on velocity-Dirichlet boundaries — without it the scheme degrades to
    first order in time.  ``pressure_dirichlet_rhs(t)`` supplies the weak
    Dirichlet data of the pressure Poisson operator (PEEP + dp at the
    trachea, windkessel pressures at the outlets)."""

    mass: object
    inverse_mass: object
    convective: object
    divergence: object
    gradient: object
    helmholtz: object
    penalty_step: object
    pressure_poisson: object
    pressure_preconditioner: object
    body_force: object | None = None  # callable(t) -> assembled vector
    pressure_neumann_rhs: object | None = None
    pressure_dirichlet_rhs: object | None = None


class DualSplittingScheme:
    def __init__(
        self,
        ops: SplittingOperators,
        order: int = 2,
        pressure_tol: float = 1e-6,
        viscous_tol: float = 1e-6,
        penalty_tol: float = 1e-6,
        pressure_has_dirichlet: bool = True,
        max_solver_iterations: int = 200,
        pressure_fallback=None,
        state_dtype=np.float64,
    ) -> None:
        """``pressure_fallback`` (optional) is a duck-typed escalation
        chain with ``solve(op, b, tol, max_iter, x0) -> SolverResult``
        (see :class:`repro.robustness.recovery.PressureFallbackChain`);
        when set, it owns the pressure Poisson solve instead of the
        plain preconditioned CG call.

        ``state_dtype`` is the storage dtype of the history fields and
        the viscous/penalty iteration vectors (pass ``float32`` with
        operators cast via
        :func:`repro.solvers.multigrid.operator_to_dtype` for the
        end-to-end single-precision forward path).  The outer pressure
        Poisson CG always iterates in double precision — the paper's
        mixed-precision split (Section 3.4) — and its solution is cast
        back to ``state_dtype`` for the projection step."""
        self.ops = ops
        self.order = order
        self.pressure_tol = pressure_tol
        self.viscous_tol = viscous_tol
        self.penalty_tol = penalty_tol
        self.pressure_has_dirichlet = pressure_has_dirichlet
        self.max_iter = max_solver_iterations
        self.pressure_fallback = pressure_fallback
        self.state_dtype = np.dtype(state_dtype)
        self.u_history: list[np.ndarray] = []
        self.conv_history: list[np.ndarray] = []
        self.p_history: list[np.ndarray] = []
        self.dt_history: list[float] = []
        self.t = 0.0
        self.statistics: list[StepStatistics] = []

    # ------------------------------------------------------------------
    def initialize(self, u0: np.ndarray, t0: float = 0.0) -> None:
        self.t = t0
        self.u_history = [np.array(u0, dtype=self.state_dtype)]
        self.conv_history = [self.ops.convective.apply(self.u_history[0], t0)]
        self.p_history = []
        self.dt_history = []
        self.statistics = []

    def _project_mean_free(self, v: np.ndarray) -> np.ndarray:
        """Remove the nullspace component for pure-Neumann pressure."""
        if v.ndim == 2:  # ensemble-stacked: project each member
            ones = np.ones_like(v[0])
            return v - ((v @ ones) / (ones @ ones))[:, None] * ones
        ones = np.ones_like(v)
        return v - (v @ ones) / (ones @ ones) * ones

    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Capture the rollback state of the scheme (O(history) shallow
        copies: ``step`` never mutates history arrays in place, it only
        prepends freshly allocated iterates)."""
        return {
            "t": self.t,
            "u": list(self.u_history),
            "conv": list(self.conv_history),
            "p": list(self.p_history),
            "dt": list(self.dt_history),
            "n_stats": len(self.statistics),
        }

    def restore_state(self, snapshot: dict) -> None:
        """Roll the scheme back to a :meth:`snapshot_state` capture
        (discarding the statistics of any failed steps since)."""
        self.t = snapshot["t"]
        self.u_history = list(snapshot["u"])
        self.conv_history = list(snapshot["conv"])
        self.p_history = list(snapshot["p"])
        self.dt_history = list(snapshot["dt"])
        del self.statistics[snapshot["n_stats"]:]

    # ------------------------------------------------------------------
    def step(self, dt: float) -> StepStatistics:
        ops = self.ops
        if dt <= 0:
            raise ValueError(f"time step must be positive, got {dt}")
        if self.dt_history and dt < 1e-8 * self.dt_history[0]:
            raise ValueError(
                f"step size {dt:.3e} is vanishing relative to the previous "
                f"{self.dt_history[0]:.3e}; the variable-step BDF "
                "coefficients would be ill-conditioned (check end-of-"
                "interval clipping for float accumulation)"
            )
        self.dt_history.insert(0, float(dt))
        order = min(self.order, len(self.u_history))
        coeffs = bdf_coefficients(order, self.dt_history)
        g0 = coeffs.gamma0
        t_new = self.t + dt

        t_step0 = time.perf_counter()
        with TRACER.span("step"):
            # -- 1. explicit convective step (Eq. (1)) -------------------
            with TRACER.span("convective") as sp_conv:
                acc = sum(
                    a * u for a, u in zip(coeffs.alpha, self.u_history[:order])
                )
                conv = sum(
                    b * c for b, c in zip(coeffs.beta, self.conv_history[:order])
                )
                rhs_extra = -conv
                if ops.body_force is not None:
                    rhs_extra = rhs_extra + ops.body_force(t_new)
                u_hat = (acc + dt * ops.inverse_mass.vmult(rhs_extra)) / g0

            # -- 2. pressure Poisson step (Eq. (2)) ----------------------
            with TRACER.span("pressure_poisson") as sp_p:
                b_p = -(g0 / dt) * ops.divergence.apply(
                    u_hat, t_new, interior_trace_everywhere=True
                )
                if ops.pressure_neumann_rhs is not None:
                    t_hist = [
                        self.t - (sum(self.dt_history[1 : i + 1]))
                        for i in range(order)
                    ]
                    b_p = b_p + ops.pressure_neumann_rhs(
                        t_new, self.u_history[:order], t_hist, coeffs, dt
                    )
                if ops.pressure_dirichlet_rhs is not None:
                    b_p = b_p + ops.pressure_dirichlet_rhs(t_new)
                if not self.pressure_has_dirichlet:
                    b_p = self._project_mean_free(b_p)
                if self.p_history:
                    if len(self.p_history) >= 2:
                        p_guess = 2.0 * self.p_history[0] - self.p_history[1]
                    else:
                        p_guess = self.p_history[0].copy()
                else:
                    p_guess = None
                if self.pressure_fallback is not None:
                    res_p = self.pressure_fallback.solve(
                        ops.pressure_poisson,
                        b_p,
                        tol=self.pressure_tol,
                        max_iter=self.max_iter,
                        x0=p_guess,
                    )
                else:
                    res_p = conjugate_gradient(
                        ops.pressure_poisson,
                        b_p,
                        ops.pressure_preconditioner,
                        tol=self.pressure_tol,
                        max_iter=self.max_iter,
                        x0=p_guess,
                        name="pressure",
                    )
                # the outer pressure iteration ran in double; the state
                # (and the projection step feeding off it) lives at the
                # configured compute dtype
                p_new = np.asarray(res_p.x, dtype=self.state_dtype)
                if not self.pressure_has_dirichlet:
                    p_new = self._project_mean_free(p_new)

            # -- 3. explicit projection step (Eq. (3)) -------------------
            with TRACER.span("projection") as sp_proj:
                grad_p = ops.gradient.apply(p_new, t_new)
                u_hathat = u_hat - (dt / g0) * ops.inverse_mass.vmult(grad_p)

            # -- 4. implicit viscous step (Eq. (4)) ----------------------
            with TRACER.span("helmholtz") as sp_visc:
                ops.helmholtz.set_time_factor(g0 / dt)
                b_v = (g0 / dt) * ops.mass.vmult(u_hathat)
                b_v = b_v + ops.helmholtz.boundary_rhs(t_new)
                res_v = conjugate_gradient(
                    ops.helmholtz,
                    b_v,
                    ops.inverse_mass,
                    tol=self.viscous_tol,
                    max_iter=self.max_iter,
                    x0=u_hathat,
                    name="viscous",
                    dtype=self.state_dtype,
                )
                u_visc = res_v.x

            # -- 5. penalty step (Eq. (5)) -------------------------------
            with TRACER.span("penalty") as sp_pen:
                ops.penalty_step.penalty.update_parameters(u_visc)
                ops.penalty_step.set_dt(dt)
                b_pen = ops.mass.vmult(u_visc)
                res_pen = conjugate_gradient(
                    ops.penalty_step,
                    b_pen,
                    ops.inverse_mass,
                    tol=self.penalty_tol,
                    max_iter=self.max_iter,
                    x0=u_visc,
                    name="penalty",
                    dtype=self.state_dtype,
                )
                u_new = res_pen.x

            # -- bookkeeping ---------------------------------------------
            self.t = t_new
            self.u_history.insert(0, u_new)
            # convective term of the *new* iterate, reused by the next
            # step's extrapolation — a real sub-step cost, timed on its own
            with TRACER.span("convective_eval") as sp_ceval:
                self.conv_history.insert(0, ops.convective.apply(u_new, t_new))
            self.p_history.insert(0, p_new)
            keep = self.order
            self.u_history = self.u_history[: keep + 1]
            self.conv_history = self.conv_history[: keep + 1]
            self.p_history = self.p_history[:2]
            self.dt_history = self.dt_history[: keep + 1]
        wall = time.perf_counter() - t_step0
        substeps = {}
        if TRACER.enabled:
            substeps = {
                "convective": sp_conv.elapsed,
                "pressure_poisson": sp_p.elapsed,
                "projection": sp_proj.elapsed,
                "helmholtz": sp_visc.elapsed,
                "penalty": sp_pen.elapsed,
                "convective_eval": sp_ceval.elapsed,
            }
        p_res = float("nan")
        if res_p.residuals and res_p.residuals[0] > 0:
            p_res = res_p.residuals[-1] / res_p.residuals[0]
        stats = StepStatistics(
            dt=dt,
            t=t_new,
            pressure_iterations=res_p.n_iterations,
            viscous_iterations=res_v.n_iterations,
            penalty_iterations=res_pen.n_iterations,
            wall_time=wall,
            pressure_residual=p_res,
            substep_seconds=substeps,
            member_pressure_iterations=getattr(res_p, "member_iterations", None),
        )
        self.statistics.append(stats)
        return stats

    @property
    def velocity(self) -> np.ndarray:
        return self.u_history[0]

    @property
    def pressure(self) -> np.ndarray | None:
        return self.p_history[0] if self.p_history else None
