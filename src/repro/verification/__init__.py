"""Verification subsystem: manufactured solutions, convergence-rate
gates, operator invariants, and golden-file regression snapshots.

The correctness-tooling layer next to the perf (execution plans) and
robustness (fault-tolerant stepping) layers: it turns the paper's
validation methodology — spatial order ``k + 1`` for the DG
discretization, temporal order 2 for the J=2 dual splitting — into
executable gates.  ``repro verify`` drives the refinement ladders from
the command line; the ``convergence``-marked tests drive them in CI.
"""

from .golden import (
    GOLDEN_SCHEMA,
    compare_golden,
    compute_golden_metrics,
    load_golden,
    write_golden,
)
from .invariants import (
    InvariantViolation,
    check_adjoint,
    check_nullspace,
    check_plan_equivalence,
    check_positive_semidefinite,
    check_symmetry,
    make_rng,
    random_curved_forest,
)
from .mms import (
    beltrami_temporal_gate,
    fd_negative_laplacian,
    navier_stokes_body_force,
    ns_temporal_ladder,
    poisson_spatial_ladder,
    resolve_body_force,
    womersley_temporal_ladder,
)
from .rates import (
    ConvergenceFailure,
    RefinementStudy,
    assert_rate,
    fit_rate,
    pairwise_rates,
)
from .report import RATE_SCHEMA, rate_table_doc, render_rate_table, write_rate_log

__all__ = [
    "ConvergenceFailure",
    "GOLDEN_SCHEMA",
    "InvariantViolation",
    "RATE_SCHEMA",
    "RefinementStudy",
    "assert_rate",
    "beltrami_temporal_gate",
    "check_adjoint",
    "check_nullspace",
    "check_plan_equivalence",
    "check_positive_semidefinite",
    "check_symmetry",
    "compare_golden",
    "compute_golden_metrics",
    "fd_negative_laplacian",
    "fit_rate",
    "load_golden",
    "make_rng",
    "navier_stokes_body_force",
    "ns_temporal_ladder",
    "pairwise_rates",
    "poisson_spatial_ladder",
    "random_curved_forest",
    "rate_table_doc",
    "render_rate_table",
    "resolve_body_force",
    "womersley_temporal_ladder",
    "write_golden",
    "write_rate_log",
]
