"""Golden-file regression snapshots.

Small, fast, deterministic cases — Poisson L2 errors on two meshes and a
short Beltrami run's error/divergence/iteration statistics — whose
values are committed to the repository with per-metric tolerances.  A
behavioral change anywhere in the operator or splitting stack moves one
of these numbers; an *intentional* change regenerates the file with
``repro verify --update-golden`` (see TESTING.md).

Each metric entry carries its own ``rtol``/``atol`` so noisy quantities
(iteration counts near a tolerance threshold) get slack while sharp
ones (discretization errors) stay tight.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

GOLDEN_SCHEMA = "repro-golden/1"


def compute_golden_metrics() -> dict:
    """Run the committed small cases and return ``name -> metric`` with
    per-metric comparison tolerances."""
    from ..mesh.generators import box
    from ..mesh.octree import Forest
    from ..ns import (
        BeltramiFlow,
        BoundaryConditions,
        IncompressibleNavierStokesSolver,
        SolverSettings,
        VelocityDirichlet,
    )
    from .mms import poisson_spatial_ladder

    metrics: dict = {}
    study = poisson_spatial_ladder(degree=2, levels=(1, 2))
    for level, err in zip(study.meta["levels"], study.errors):
        metrics[f"poisson_k2_l{level}_error_l2"] = {"value": err, "rtol": 1e-4}

    nu = 0.05
    mesh = box(subdivisions=(1, 1, 1), boundary_ids={i: 1 for i in range(6)})
    forest = Forest(mesh).refine_all(1)
    flow = BeltramiFlow(nu)
    bcs = BoundaryConditions(
        {1: VelocityDirichlet(lambda x, y, z, t: flow.velocity(x, y, z, t))}
    )
    solver = IncompressibleNavierStokesSolver(
        forest, 2, nu, bcs, SolverSettings(solver_tolerance=1e-8)
    )
    solver.initialize(flow.velocity)
    stats = [solver.step(0.01) for _ in range(5)]
    metrics["beltrami_k2_error_l2"] = {
        "value": solver.velocity_error_l2(flow.velocity, solver.scheme.t),
        "rtol": 1e-3,
    }
    metrics["beltrami_k2_max_divergence"] = {
        "value": solver.max_divergence(),
        "rtol": 5e-2,  # controlled, not driven, by the penalty step
    }
    metrics["beltrami_k2_pressure_iterations"] = {
        "value": [s.pressure_iterations for s in stats],
        "atol": 2,
    }
    metrics["beltrami_k2_viscous_iterations"] = {
        "value": [s.viscous_iterations for s in stats],
        "atol": 2,
    }
    metrics["beltrami_k2_penalty_iterations"] = {
        "value": [s.penalty_iterations for s in stats],
        "atol": 2,
    }
    return metrics


def _mismatch(name: str, got, want, rtol: float, atol: float) -> str | None:
    got = np.asarray(got, dtype=float)
    want = np.asarray(want, dtype=float)
    if got.shape != want.shape:
        return f"{name}: shape {got.shape} != golden {want.shape}"
    if not np.allclose(got, want, rtol=rtol, atol=atol):
        return (
            f"{name}: {np.array2string(got, precision=8)} deviates from "
            f"golden {np.array2string(want, precision=8)} "
            f"(rtol={rtol:g}, atol={atol:g})"
        )
    return None


def compare_golden(computed: dict, golden_doc: dict) -> list[str]:
    """Compare freshly computed metrics against a loaded golden document;
    returns a list of human-readable mismatches (empty = pass)."""
    if golden_doc.get("schema") != GOLDEN_SCHEMA:
        return [
            f"unsupported golden schema {golden_doc.get('schema')!r} "
            f"(expected {GOLDEN_SCHEMA!r})"
        ]
    golden = golden_doc.get("metrics", {})
    problems = []
    for name in sorted(set(golden) | set(computed)):
        if name not in computed:
            problems.append(f"{name}: in golden file but not computed")
            continue
        if name not in golden:
            problems.append(
                f"{name}: computed but missing from the golden file "
                "(regenerate with --update-golden)"
            )
            continue
        entry = golden[name]
        p = _mismatch(
            name,
            computed[name]["value"],
            entry["value"],
            rtol=float(entry.get("rtol", 0.0)),
            atol=float(entry.get("atol", 0.0)),
        )
        if p:
            problems.append(p)
    return problems


def load_golden(path: str | Path) -> dict:
    with Path(path).open() as f:
        return json.load(f)


def write_golden(path: str | Path, metrics: dict) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {"schema": GOLDEN_SCHEMA, "metrics": metrics}
    with path.open("w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    return path
