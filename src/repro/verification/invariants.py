"""Property-based operator invariants over randomized inputs.

Structural identities every matrix-free operator must satisfy regardless
of mesh, degree, or execution path: symmetry of the SIP Laplace and mass
forms, the negative-transpose pairing of divergence and gradient, the
constant null space of Neumann operators, positive semidefiniteness of
the stabilization penalties, and bitwise-level agreement between the
planned hot path and the legacy reference execution.  Each check draws
its probe vectors from a caller-supplied seeded RNG so a failure
reproduces deterministically, and raises :class:`InvariantViolation`
(an ``AssertionError``) carrying the measured defect.
"""

from __future__ import annotations

import numpy as np

from ..mesh.generators import bifurcation, box, cylinder
from ..mesh.octree import Forest


class InvariantViolation(AssertionError):
    """An operator identity failed beyond its tolerance."""


def make_rng(seed: int) -> np.random.Generator:
    """The one seeded-RNG constructor the verification suite uses."""
    return np.random.default_rng(seed)


def random_curved_forest(rng: np.random.Generator, max_kinds: int = 3) -> Forest:
    """A randomized deformed mesh: tapered smooth cylinder, bifurcation
    with a randomized opening angle, or a locally refined (hanging-node)
    box — the geometries where operator bugs actually hide."""
    kind = int(rng.integers(0, max_kinds))
    if kind == 0:
        taper = float(rng.uniform(0.6, 1.0))
        return Forest(cylinder(n_axial=2, smooth=True, taper_radius=taper))
    if kind == 1:
        angle = float(rng.uniform(40.0, 80.0))
        return Forest(bifurcation(opening_angle_deg=angle))
    forest = Forest(box(subdivisions=(2, 1, 1), boundary_ids={0: 1, 1: 2}))
    pick = int(rng.integers(0, forest.n_cells))
    return forest.refine([forest.leaves[pick]]).balance()


def _probe(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.standard_normal(n)


def check_symmetry(op, rng, n_trials: int = 3, rtol: float = 1e-9) -> float:
    """``x' A y == y' A x`` for random probes; returns the worst
    relative defect."""
    worst = 0.0
    for _ in range(n_trials):
        x = _probe(rng, op.n_dofs)
        y = _probe(rng, op.n_dofs)
        a = x @ op.vmult(y)
        b = y @ op.vmult(x)
        scale = max(abs(a), abs(b), 1e-30)
        worst = max(worst, abs(a - b) / scale)
    if worst > rtol:
        raise InvariantViolation(
            f"{type(op).__name__}: symmetry defect {worst:.3e} > {rtol:.1e}"
        )
    return worst


def check_adjoint(
    apply_a, apply_b, n_a: int, n_b: int, rng,
    sign: float = -1.0, n_trials: int = 3, rtol: float = 1e-9,
    label: str = "adjoint",
) -> float:
    """``y' A x == sign * x' B y`` with ``A: R^n_a -> R^n_b`` and
    ``B: R^n_b -> R^n_a`` — e.g. the divergence being the negative
    transpose of the gradient under homogeneous data."""
    worst = 0.0
    for _ in range(n_trials):
        x = _probe(rng, n_a)
        y = _probe(rng, n_b)
        a = y @ apply_a(x)
        b = sign * (x @ apply_b(y))
        scale = max(abs(a), abs(b), 1e-30)
        worst = max(worst, abs(a - b) / scale)
    if worst > rtol:
        raise InvariantViolation(
            f"{label}: adjoint defect {worst:.3e} > {rtol:.1e}"
        )
    return worst


def check_nullspace(op, vector: np.ndarray, atol: float = 1e-9) -> float:
    """``A v ~ 0`` relative to the operator scale on a random probe
    (e.g. the constant mode of a pure-Neumann Laplacian)."""
    defect = float(np.abs(op.vmult(vector)).max())
    scale = max(float(np.abs(vector).max()), 1e-30)
    if defect > atol * scale:
        raise InvariantViolation(
            f"{type(op).__name__}: null-space defect {defect:.3e} > "
            f"{atol:.1e} * {scale:.3e}"
        )
    return defect


def check_positive_semidefinite(
    op, rng, n_trials: int = 4, tol: float = 1e-10
) -> float:
    """``x' A x >= 0`` for random probes (penalty/stabilization forms);
    returns the most negative normalized Rayleigh quotient seen."""
    worst = 0.0
    for _ in range(n_trials):
        x = _probe(rng, op.n_dofs)
        q = x @ op.vmult(x)
        norm = x @ x
        worst = min(worst, q / norm)
    if worst < -tol:
        raise InvariantViolation(
            f"{type(op).__name__}: negative Rayleigh quotient {worst:.3e}"
        )
    return worst


def check_plan_equivalence(
    op,
    rng,
    apply=None,
    n_trials: int = 2,
    rtol: float = 1e-12,
    atol: float = 1e-11,
    n_in: int | None = None,
) -> float:
    """The planned hot path must match the legacy reference execution
    (``plan_execution(use_plans=False)``) on the same random input.
    ``apply`` defaults to ``op.vmult``; pass e.g. ``lambda op, x:
    op.apply(x, t)`` for operators with an inhomogeneous entry point.
    ``n_in`` overrides the probe size for rectangular operators whose
    input space differs from ``op.n_dofs`` (e.g. the divergence, which
    maps velocity to pressure).
    """
    from ..core.plans import plan_execution

    apply = apply or (lambda o, x: o.vmult(x))
    worst = 0.0
    # a per-operator override would shadow the scoped policy: lift it
    # for the duration of the check and put it back afterwards
    had_override = "use_plans" in op.__dict__
    saved = op.__dict__.pop("use_plans", None)
    try:
        for _ in range(n_trials):
            x = _probe(rng, op.n_dofs if n_in is None else n_in)
            with plan_execution(True):
                planned = apply(op, x)
            with plan_execution(False):
                reference = apply(op, x)
            scale = max(float(np.abs(reference).max()), 1e-30)
            worst = max(worst,
                        float(np.abs(planned - reference).max()) / scale)
    finally:
        if had_override:
            op.__dict__["use_plans"] = saved
    if worst > max(rtol, atol):
        raise InvariantViolation(
            f"{type(op).__name__}: planned vs reference defect {worst:.3e}"
        )
    return worst
