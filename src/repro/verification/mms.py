"""Method-of-manufactured-solutions (MMS) drivers.

Takes any smooth velocity/pressure field, derives the forcing that makes
it an exact solution — through the solution object's own ``body_force``
hook when it has one, otherwise by a generic central-finite-difference
evaluation of the Navier-Stokes residual — and runs mesh or time-step
refinement ladders whose errors feed the rate gates of
:mod:`repro.verification.rates`.

The two ladders the paper's verification rests on:

* :func:`poisson_spatial_ladder` — the DG Laplace/Poisson problem under
  uniform mesh refinement, expected L2 order ``k + 1``;
* :func:`ns_temporal_ladder` — the dual splitting scheme on an unsteady
  analytic flow under time-step refinement, expected order 2 (J = 2).
"""

from __future__ import annotations

import numpy as np

from ..core.dof_handler import DGDofHandler
from ..core.operators import DGLaplaceOperator, InverseMassOperator
from ..mesh.connectivity import build_connectivity
from ..mesh.generators import box, cylinder
from ..mesh.mapping import GeometryField
from ..mesh.octree import Forest
from ..ns.bc import BoundaryConditions, VelocityDirichlet
from ..ns.solver import IncompressibleNavierStokesSolver, SolverSettings
from ..solvers import HybridMultigridPreconditioner, conjugate_gradient
from ..telemetry import TRACER
from .rates import RefinementStudy

#: default finite-difference steps: first derivatives are accurate to
#: ~1e-10 at 1e-5, second derivatives to ~1e-8 at 1e-4 (truncation and
#: round-off balanced) — both far below any discretization error a
#: ladder resolves
FD_STEP_FIRST = 1e-5
FD_STEP_SECOND = 1e-4


def _shifted(coords, j, h):
    args = list(coords)
    args[j] = coords[j] + h
    return args


def fd_negative_laplacian(fn, h: float = FD_STEP_SECOND):
    """``f = -lap u`` of a scalar field ``u(x, y, z)`` by central
    second differences — the Poisson manufactured right-hand side."""

    def rhs(x, y, z):
        coords = (np.asarray(x, float), np.asarray(y, float), np.asarray(z, float))
        u0 = fn(*coords)
        lap = np.zeros_like(u0)
        for j in range(3):
            lap = lap + (
                fn(*_shifted(coords, j, +h)) - 2.0 * u0 + fn(*_shifted(coords, j, -h))
            )
        return -lap / h**2

    return rhs


def navier_stokes_body_force(
    solution,
    nu: float,
    h_first: float = FD_STEP_FIRST,
    h_second: float = FD_STEP_SECOND,
):
    """Finite-difference Navier-Stokes residual of a manufactured field:

    ``f = du/dt + (u . grad) u - nu lap u + grad p``

    for ``solution.velocity(x, y, z, t) -> (3, ...)`` and (optional)
    ``solution.pressure(x, y, z, t)``.  For a field that already solves
    the equations (e.g. Beltrami flow) this returns numerical noise at
    the finite-difference truncation level, so it is always safe to use
    as the fallback when no analytic ``body_force`` hook exists.
    """
    vel = solution.velocity
    pres = getattr(solution, "pressure", None)

    def force(x, y, z, t):
        coords = (np.asarray(x, float), np.asarray(y, float), np.asarray(z, float))
        u0 = np.asarray(vel(*coords, t))
        f = (
            np.asarray(vel(*coords, t + h_first)) - np.asarray(vel(*coords, t - h_first))
        ) / (2.0 * h_first)
        lap = np.zeros_like(u0)
        for j in range(3):
            dj = (
                np.asarray(vel(*_shifted(coords, j, +h_first), t))
                - np.asarray(vel(*_shifted(coords, j, -h_first), t))
            ) / (2.0 * h_first)
            f = f + u0[j] * dj  # convective term u_j d_j u_i
            lap = lap + (
                np.asarray(vel(*_shifted(coords, j, +h_second), t))
                - 2.0 * u0
                + np.asarray(vel(*_shifted(coords, j, -h_second), t))
            ) / h_second**2
        f = f - nu * lap
        if pres is not None:
            for j in range(3):
                f[j] = f[j] + (
                    np.asarray(pres(*_shifted(coords, j, +h_first), t))
                    - np.asarray(pres(*_shifted(coords, j, -h_first), t))
                ) / (2.0 * h_first)
        return f

    return force


def resolve_body_force(solution, nu: float, body_force="auto"):
    """The MMS forcing policy: ``"auto"`` prefers the solution's own
    ``body_force`` hook and falls back to the finite-difference residual;
    ``"none"`` forces an unforced run (for fields known to solve the
    homogeneous equations exactly); a callable passes through."""
    if callable(body_force):
        return body_force
    if body_force == "none":
        return None
    if body_force != "auto":
        raise ValueError(f"unknown body_force policy {body_force!r}")
    hook = getattr(solution, "body_force", None)
    if hook is not None:
        return hook
    return navier_stokes_body_force(solution, nu)


# ----------------------------------------------------------------------
def _default_poisson_exact(x, y, z):
    return np.sin(np.pi * x) * np.sin(np.pi * y) * np.sin(np.pi * z)


def _l2_error_scalar(dof, geo, u_flat, exact) -> float:
    cm = geo.cell_metrics()
    uq = geo.kernel.values(dof.cell_view(u_flat))
    eq = exact(cm.points[:, 0], cm.points[:, 1], cm.points[:, 2])
    return float(np.sqrt(np.sum((uq - eq) ** 2 * cm.jxw)))


def poisson_spatial_ladder(
    degree: int = 2,
    levels=(1, 2, 3),
    exact=None,
    rhs=None,
    operator_cls=None,
    preconditioner: str = "multigrid",
    solver_tol: float = 1e-11,
    max_iter: int = 4000,
) -> RefinementStudy:
    """DG Poisson mesh-refinement ladder on the unit cube.

    ``rhs=None`` derives the source from ``exact`` by the
    finite-difference Laplacian (the MMS path); ``operator_cls`` lets a
    test inject a deliberately broken operator and watch the rate gate
    catch it.  Expected L2 order: ``degree + 1``.
    """
    exact = exact or _default_poisson_exact
    rhs = rhs or fd_negative_laplacian(exact)
    operator_cls = operator_cls or DGLaplaceOperator
    mesh = box(subdivisions=(1, 1, 1), boundary_ids={i: 1 for i in range(6)})
    sizes, errors, n_dofs = [], [], []
    with TRACER.span(f"verify.poisson_k{degree}"):
        for level in levels:
            forest = Forest(mesh).refine_all(level)
            geo = GeometryField(forest, degree)
            conn = build_connectivity(forest)
            dof = DGDofHandler(forest, degree)
            op = operator_cls(dof, geo, conn, dirichlet_ids=(1,))
            b = op.assemble_rhs(f=rhs, dirichlet=lambda x, y, z: exact(x, y, z))
            if preconditioner == "multigrid":
                pre = HybridMultigridPreconditioner(op)
            elif preconditioner == "inverse_mass":
                pre = InverseMassOperator(dof, geo)
            else:
                raise ValueError(f"unknown preconditioner {preconditioner!r}")
            res = conjugate_gradient(
                op, b, pre, tol=solver_tol, max_iter=max_iter, name="verify"
            )
            sizes.append(0.5**level)
            errors.append(_l2_error_scalar(dof, geo, res.x, exact))
            n_dofs.append(dof.n_dofs)
    return RefinementStudy(
        name=f"poisson_dg_k{degree}",
        parameter="h",
        sizes=sizes,
        errors=errors,
        expected_rate=degree + 1,
        meta={"degree": degree, "levels": list(levels), "n_dofs": n_dofs},
    )


# ----------------------------------------------------------------------
def ns_temporal_ladder(
    solution,
    nu: float,
    degree: int = 4,
    level: int = 1,
    t_end: float = 0.4,
    steps=(16, 32, 64),
    solver_tol: float = 1e-10,
    body_force="auto",
    name: str | None = None,
    settings: SolverSettings | None = None,
) -> RefinementStudy:
    """Time-step refinement ladder of the dual splitting scheme on the
    unit cube with exact-solution Dirichlet boundaries.

    Expected order 2 for the J=2 scheme.  At a fixed mesh the measured
    error is ``O(dt^2) + O(h^s) + O(dt h^s)`` — the mixed term enters
    through the discrete vorticity in the rotational pressure boundary
    condition — so a clean fit needs the temporal signal to dominate
    both floors.  That constrains the *flow*, not just the ladder: it
    must be strongly time-dependent (large ``nu d^2`` decay or pulsatile
    forcing) yet have a low enough velocity scale that the coarsest dt
    respects the explicit-convection CFL bound
    ``dt <= 0.4 / (k^1.5 max|u|)``.  :func:`beltrami_temporal_gate` is
    the calibrated configuration; see TESTING.md before changing it.
    """
    force = resolve_body_force(solution, nu, body_force)
    mesh = box(subdivisions=(1, 1, 1), boundary_ids={i: 1 for i in range(6)})
    forest = Forest(mesh).refine_all(level)
    bcs = BoundaryConditions(
        {1: VelocityDirichlet(lambda x, y, z, t: solution.velocity(x, y, z, t))}
    )
    settings = settings or SolverSettings(solver_tolerance=solver_tol)
    sizes, errors = [], []
    max_cfl = 0.0
    label = name or f"{type(solution).__name__.lower()}_dt"
    with TRACER.span(f"verify.{label}"):
        for n in steps:
            solver = IncompressibleNavierStokesSolver(
                forest, degree, nu, bcs, settings, body_force=force
            )
            solver.initialize(solution.velocity)
            dt = t_end / n
            for _ in range(n):
                st = solver.step(dt)
                max_cfl = max(max_cfl, st.cfl)
            sizes.append(dt)
            errors.append(
                solver.velocity_error_l2(solution.velocity, solver.scheme.t)
            )
    return RefinementStudy(
        name=label,
        parameter="dt",
        sizes=sizes,
        errors=errors,
        expected_rate=2.0,
        # max_cfl well above the adaptive controller's 0.4 target means
        # the coarsest rung risks the explicit-convection stability
        # limit — check it before trusting a noisy ladder
        meta={"degree": degree, "level": level, "t_end": t_end,
              "steps": list(steps), "max_cfl": max_cfl},
    )


def beltrami_temporal_gate(steps=(16, 32, 64)) -> RefinementStudy:
    """The calibrated Beltrami dt-refinement gate (convergence tier).

    A small-amplitude (``a = pi/8``, so ``max|u| ~ 0.55`` and the CFL
    bound allows ``dt = 0.025`` at degree 4) but rapidly decaying
    (``nu = 1``, decay rate ``nu d^2 ~ 2.5``) Beltrami flow: the dt^2
    error is orders of magnitude above the spatial floor across the
    whole ladder.  Measured pairwise rates ~[2.9, 2.5], approaching 2
    from above (the coarser points carry a startup transient from the
    lower-order BDF bootstrap, which only helps the one-sided gate).
    """
    from ..ns.analytic import BeltramiFlow

    return ns_temporal_ladder(
        BeltramiFlow(nu=1.0, a=np.pi / 8, d=np.pi / 2),
        nu=1.0,
        degree=4,
        level=1,
        t_end=0.4,
        steps=steps,
        solver_tol=1e-10,
        name="beltrami_dt_gate",
    )


def womersley_temporal_ladder(
    flow=None,
    degree: int = 3,
    n_axial: int = 2,
    t_end: float = 0.25,
    steps=(3, 6, 12),
    solver_tol: float = 1e-8,
) -> RefinementStudy:
    """Temporal ladder for the pulsatile Womersley pipe flow — the
    lung-relevant oscillatory case — on the curved cylinder mesh.

    All boundaries carry exact velocity Dirichlet data (pure-Neumann
    pressure, handled by the scheme's mean-free projection); the
    oscillating pressure gradient enters as the analytic body force.
    """
    from ..ns.analytic import WomersleyPipeFlow

    if flow is None:
        flow = WomersleyPipeFlow(
            radius=0.5, nu=0.05, omega=2.0 * np.pi, amplitude=1.0
        )
    mesh = cylinder(
        radius=flow.radius, length=2.0 * flow.radius, n_axial=n_axial,
        inlet_id=1, outlet_id=2,
    )
    forest = Forest(mesh)
    g = lambda x, y, z, t: flow.velocity(x, y, z, t)
    bcs = BoundaryConditions({bid: VelocityDirichlet(g) for bid in (0, 1, 2)})
    # pure-Neumann pressure: the conforming auxiliary space of the
    # hybrid multigrid assumes a Dirichlet-pinned operator, so use the
    # Jacobi-preconditioned pressure solve
    settings = SolverSettings(solver_tolerance=solver_tol, use_multigrid=False)
    sizes, errors = [], []
    with TRACER.span("verify.womersley_dt"):
        for n in steps:
            solver = IncompressibleNavierStokesSolver(
                forest, degree, flow.nu, bcs, settings,
                body_force=flow.body_force,
            )
            solver.initialize(flow.velocity)
            dt = t_end / n
            for _ in range(n):
                solver.step(dt)
            sizes.append(dt)
            errors.append(solver.velocity_error_l2(flow.velocity, solver.scheme.t))
    return RefinementStudy(
        name="womersley_dt",
        parameter="dt",
        sizes=sizes,
        errors=errors,
        expected_rate=2.0,
        meta={"degree": degree, "alpha": flow.alpha, "t_end": t_end,
              "steps": list(steps)},
    )
