"""Convergence-rate fitting and assertion gates.

A refinement study collects errors along a ladder of mesh sizes ``h``
(or time steps ``dt``) and fits the observed order of accuracy by least
squares on the log-log data, ``log e = rate * log h + c``.  The fitted
rate is what the paper's verification tables report (spatial order
``k + 1`` for the DG discretization, temporal order 2 for the J=2 dual
splitting scheme) and what :func:`assert_rate` gates against — a silent
order-degrading regression in any operator or sub-step shows up as a
fitted rate below the expected order minus the tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class ConvergenceFailure(AssertionError):
    """A fitted convergence rate missed its expected order."""


def fit_rate(sizes, errors) -> float:
    """Least-squares slope of ``log(error)`` against ``log(size)``.

    ``sizes`` are the refinement parameters (mesh size ``h`` or time
    step ``dt``); a positive slope means the error decreases under
    refinement at that order.
    """
    sizes = np.asarray(sizes, dtype=float)
    errors = np.asarray(errors, dtype=float)
    if sizes.shape != errors.shape or sizes.size < 2:
        raise ValueError("need at least two (size, error) pairs to fit a rate")
    if np.any(sizes <= 0):
        raise ValueError("refinement sizes must be positive")
    if np.any(errors <= 0):
        # an exactly-zero error (solution in the discrete space) carries
        # no rate information; report infinity rather than fitting logs
        return float("inf")
    slope, _ = np.polyfit(np.log(sizes), np.log(errors), 1)
    return float(slope)


def pairwise_rates(sizes, errors) -> list[float]:
    """Observed order between each pair of consecutive ladder rungs."""
    sizes = np.asarray(sizes, dtype=float)
    errors = np.asarray(errors, dtype=float)
    out = []
    for i in range(len(sizes) - 1):
        out.append(
            float(
                np.log(errors[i] / errors[i + 1])
                / np.log(sizes[i] / sizes[i + 1])
            )
        )
    return out


@dataclass
class RefinementStudy:
    """One fitted refinement ladder: the unit of the verification report.

    ``parameter`` names the refinement variable (``"h"`` or ``"dt"``),
    ``expected_rate`` the theoretical order the gate checks against.
    """

    name: str
    parameter: str
    sizes: list[float]
    errors: list[float]
    expected_rate: float
    meta: dict = field(default_factory=dict)

    @property
    def fitted_rate(self) -> float:
        return fit_rate(self.sizes, self.errors)

    @property
    def pairwise(self) -> list[float]:
        return pairwise_rates(self.sizes, self.errors)

    def passed(self, tolerance: float = 0.4) -> bool:
        return self.fitted_rate >= self.expected_rate - tolerance

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "parameter": self.parameter,
            "sizes": [float(s) for s in self.sizes],
            "errors": [float(e) for e in self.errors],
            "expected_rate": float(self.expected_rate),
            "fitted_rate": self.fitted_rate,
            "pairwise_rates": self.pairwise,
            **({"meta": self.meta} if self.meta else {}),
        }


def assert_rate(study: RefinementStudy, tolerance: float = 0.4) -> float:
    """Gate: the fitted rate must reach ``expected_rate - tolerance``.

    Returns the fitted rate; raises :class:`ConvergenceFailure` (an
    ``AssertionError``, so plain pytest reporting applies) otherwise.
    """
    rate = study.fitted_rate
    if rate < study.expected_rate - tolerance:
        pairs = ", ".join(f"{r:.2f}" for r in study.pairwise)
        raise ConvergenceFailure(
            f"{study.name}: fitted {study.parameter}-rate {rate:.2f} below "
            f"expected {study.expected_rate:.2f} - {tolerance:.2f} "
            f"(pairwise rates: {pairs}; errors: "
            + ", ".join(f"{e:.3e}" for e in study.errors)
            + ")"
        )
    return rate
