"""Rate-table reporting: JSON documents, Markdown tables, JSONL logs.

The verification driver's output surface — ``repro verify`` renders the
Markdown table to the terminal, emits the JSON document with ``--json``,
and streams a schema-versioned JSONL record per study through the
telemetry :class:`~repro.telemetry.sinks.JsonlWriter` with
``--log-file`` (the artifact the nightly CI job uploads).
"""

from __future__ import annotations

from pathlib import Path

from ..telemetry import JsonlWriter
from .rates import RefinementStudy

RATE_SCHEMA = "repro-ratetable/1"


def rate_table_doc(
    studies: list[RefinementStudy],
    tolerance: float = 0.4,
    meta: dict | None = None,
) -> dict:
    """The machine-readable verification report."""
    entries = []
    for s in studies:
        d = s.to_dict()
        d["passed"] = s.passed(tolerance)
        entries.append(d)
    return {
        "schema": RATE_SCHEMA,
        "tolerance": tolerance,
        "all_passed": all(e["passed"] for e in entries),
        "studies": entries,
        **(meta or {}),
    }


def render_rate_table(
    studies: list[RefinementStudy], tolerance: float = 0.4
) -> str:
    """GitHub-flavored Markdown: one summary table plus a per-study
    error ladder."""
    lines = [
        "| study | parameter | expected | fitted | status |",
        "|---|---|---:|---:|---|",
    ]
    for s in studies:
        status = "pass" if s.passed(tolerance) else "**FAIL**"
        lines.append(
            f"| {s.name} | {s.parameter} | {s.expected_rate:.2f} "
            f"| {s.fitted_rate:.2f} | {status} |"
        )
    for s in studies:
        lines.append("")
        lines.append(f"### {s.name}")
        lines.append("")
        lines.append(f"| {s.parameter} | L2 error | observed rate |")
        lines.append("|---:|---:|---:|")
        pw = ["-"] + [f"{r:.2f}" for r in s.pairwise]
        for size, err, rate in zip(s.sizes, s.errors, pw):
            lines.append(f"| {size:.4e} | {err:.4e} | {rate} |")
    return "\n".join(lines)


def write_rate_log(
    path: str | Path,
    studies: list[RefinementStudy],
    tolerance: float = 0.4,
    meta: dict | None = None,
) -> Path:
    """Stream the report as JSONL: header, one ``study`` record each,
    and a ``summary`` footer — the same sink discipline as the run log."""
    with JsonlWriter(path, RATE_SCHEMA, meta) as w:
        for s in studies:
            d = s.to_dict()
            d["passed"] = s.passed(tolerance)
            w.write_record({"type": "study", **d})
        w.write_record({
            "type": "summary",
            "n_studies": len(studies),
            "tolerance": tolerance,
            "all_passed": all(s.passed(tolerance) for s in studies),
        })
    return Path(path)
