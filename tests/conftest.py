"""Shared pytest configuration: test tiers and the seeded RNG fixture.

Tiers (see TESTING.md):

* ``tier1`` — the fast default gate.  Auto-applied to every test that is
  not marked ``convergence`` or ``nightly``, so a plain ``pytest`` (or
  ``pytest -m tier1``) runs exactly the seed suite plus any new fast
  tests.
* ``convergence`` — refinement-ladder rate gates (minutes).  Skipped by
  default; enable with ``--run-convergence`` or by selecting them
  explicitly (``pytest -m convergence``).
* ``nightly`` — the long verification runs CI schedules overnight.
  Skipped by default; enable with ``--run-nightly`` or ``-m nightly``.
* ``parallel`` — multi-worker-process tests (real fork + shared-memory
  pools; seconds each).  Skipped by default; enable with
  ``--run-parallel`` or ``-m parallel``.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

_OPTIONAL_TIERS = ("convergence", "nightly", "parallel")


def pytest_addoption(parser):
    for tier in _OPTIONAL_TIERS:
        parser.addoption(
            f"--run-{tier}",
            action="store_true",
            default=False,
            help=f"run tests marked '{tier}' (skipped by default)",
        )


def _tier_enabled(config, tier: str) -> bool:
    """A tier runs when its flag is passed or when the user's ``-m``
    expression mentions it (so ``pytest -m convergence`` just works)."""
    if config.getoption(f"--run-{tier}"):
        return True
    return tier in (config.getoption("-m") or "")


def pytest_collection_modifyitems(config, items):
    skips = {
        tier: pytest.mark.skip(
            reason=f"{tier} tier: pass --run-{tier} (or -m {tier}) to run"
        )
        for tier in _OPTIONAL_TIERS
        if not _tier_enabled(config, tier)
    }
    for item in items:
        # match actual markers, not item.keywords: keywords also contain
        # package/module names, and tests/parallel/ would otherwise put
        # every test in its directory into the 'parallel' tier
        tiers = [
            t for t in _OPTIONAL_TIERS
            if item.get_closest_marker(t) is not None
        ]
        if not tiers:
            item.add_marker(pytest.mark.tier1)
        for t in tiers:
            if t in skips:
                item.add_marker(skips[t])


@pytest.fixture
def rng(request) -> np.random.Generator:
    """Seeded per-test RNG: the seed is derived from the test's node id,
    so every test gets a distinct but fully reproducible stream and
    reordering tests never changes any test's random data."""
    seed = zlib.crc32(request.node.nodeid.encode())
    return np.random.default_rng(seed)
