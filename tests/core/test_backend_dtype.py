"""Tests of the array-backend shim and the compute-dtype policy
(:mod:`repro.core.backend`)."""

import numpy as np
import pytest

from repro.core import backend
from repro.core.backend import (
    DEFAULT_DTYPE,
    active_backend,
    available_backends,
    compute_dtype_scope,
    default_dtype,
    get_backend,
    kernel_dtype,
    precision_bytes,
    register_backend,
    resolve_dtype,
    set_compute_dtype,
    use_backend,
    xp,
)


class TestBackendRegistry:
    def test_numpy_is_default(self):
        assert active_backend().name == "numpy"
        assert xp() is np
        assert "numpy" in available_backends()

    def test_get_unknown_backend_raises(self):
        with pytest.raises(KeyError):
            get_backend("no-such-backend")

    def test_register_and_activate(self):
        # a fake "accelerator" backend that is numpy with a marker name;
        # registration only needs an xp-namespace module
        register_backend("fake-xp", np)
        try:
            use_backend("fake-xp")
            assert active_backend().name == "fake-xp"
            assert xp() is np
        finally:
            use_backend("numpy")
            backend._REGISTRY.pop("fake-xp", None)
        assert active_backend().name == "numpy"

    def test_asarray_is_identity_for_numpy(self):
        b = get_backend("numpy")
        a = np.arange(3.0)
        assert b.asarray(a) is a
        assert b.asarray(a, dtype=np.float32).dtype == np.float32


class TestDtypePolicy:
    def test_default_is_double(self):
        assert default_dtype() == np.dtype(np.float64)
        assert DEFAULT_DTYPE == np.dtype(np.float64)

    def test_resolve_rejects_unsupported(self):
        with pytest.raises(ValueError):
            resolve_dtype(np.float16)
        with pytest.raises(ValueError):
            resolve_dtype("int32")

    def test_resolve_accepts_spellings(self):
        assert resolve_dtype("float32") == np.dtype(np.float32)
        assert resolve_dtype(np.float64) == np.dtype(np.float64)
        assert resolve_dtype(None) == default_dtype()

    def test_set_compute_dtype_and_scope(self):
        prev = set_compute_dtype(np.float32)
        try:
            assert default_dtype() == np.dtype(np.float32)
            assert resolve_dtype(None) == np.dtype(np.float32)
        finally:
            set_compute_dtype(prev)
        assert default_dtype() == np.dtype(np.float64)
        with compute_dtype_scope("float32"):
            assert default_dtype() == np.dtype(np.float32)
        assert default_dtype() == np.dtype(np.float64)

    def test_kernel_dtype(self):
        assert kernel_dtype(np.dtype(np.float32)) == np.dtype(np.float32)
        assert kernel_dtype(np.dtype(np.float64)) == np.dtype(np.float64)
        # integer/other inputs compute in double
        assert kernel_dtype(np.dtype(np.int64)) == np.dtype(np.float64)

    def test_precision_bytes(self):
        assert precision_bytes(np.float32) == 4
        assert precision_bytes(np.float64) == 8
        assert precision_bytes() == np.dtype(default_dtype()).itemsize


class TestDtypeDefaults:
    def test_dof_handler_zeros_follow_compute_dtype(self):
        from repro.core.dof_handler import DGDofHandler
        from repro.mesh.generators import unit_cube
        from repro.mesh.octree import Forest

        dof = DGDofHandler(Forest(unit_cube()), 2)
        assert dof.zeros().dtype == np.float64
        assert dof.zeros(dtype=np.float32).dtype == np.float32
        with compute_dtype_scope("float32"):
            assert dof.zeros().dtype == np.float32

    def test_shape_matrices_for_dtype(self):
        from repro.core.basis import shape_matrices, shape_matrices_for_dtype

        sm64 = shape_matrices_for_dtype(3)
        # float64 returns the cached original, no copy
        assert sm64 is shape_matrices_for_dtype(3, dtype=np.float64)
        assert sm64.interp.dtype == np.float64
        sm32 = shape_matrices_for_dtype(3, dtype=np.float32)
        assert sm32.interp.dtype == np.float32
        assert sm32.grad.dtype == np.float32
        # cast once, cached: repeated calls return the same object
        assert shape_matrices_for_dtype(3, dtype=np.float32) is sm32
        # tabulated in double, cast after: values match to fp32 eps
        np.testing.assert_allclose(sm32.interp, sm64.interp, rtol=1e-6)

    def test_even_odd_preserves_float32(self):
        from repro.core.basis import shape_matrices
        from repro.core.even_odd import EvenOddMatrix

        M = shape_matrices(3, 4).interp
        eo = EvenOddMatrix(M, "even")
        v32 = np.random.default_rng(0).standard_normal(4).astype(np.float32)
        out = eo.matvec(v32)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, M @ v32.astype(np.float64), rtol=1e-5)

    def test_workspace_allocates_at_requested_dtype(self):
        from repro.core.plans import Workspace

        ws = Workspace()
        assert ws.take("a", (4, 4)).dtype == np.float64
        assert ws.take("b", (4, 4), dtype=np.float32).dtype == np.float32
        assert ws.zeros("c", (2,), dtype=np.float32).dtype == np.float32


class TestRunConfigDtype:
    def test_roundtrip_and_validation(self):
        from repro.robustness import RunConfig

        cfg = RunConfig(generations=1, compute_dtype="float32")
        assert RunConfig.from_dict(cfg.to_dict()) == cfg
        assert RunConfig().compute_dtype == "float64"
        with pytest.raises(ValueError):
            RunConfig(compute_dtype="float16")
