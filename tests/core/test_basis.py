"""Tests of 1D Lagrange bases and transfer/shape matrices."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.basis import (
    LagrangeBasis1D,
    change_of_basis_matrix,
    embedding_matrix,
    mass_matrix_1d,
    shape_matrices,
    subinterval_matrix,
)
from repro.core.quadrature import gauss


class TestLagrangeValues:
    @pytest.mark.parametrize("k", range(1, 8))
    def test_kronecker_delta_at_nodes(self, k):
        basis = LagrangeBasis1D(k)
        V = basis.values(basis.nodes)
        assert np.allclose(V, np.eye(k + 1), atol=1e-12)

    @pytest.mark.parametrize("k", range(1, 8))
    def test_partition_of_unity(self, k):
        basis = LagrangeBasis1D(k)
        x = np.linspace(0, 1, 17)
        assert np.allclose(basis.values(x).sum(axis=1), 1.0, atol=1e-11)

    @pytest.mark.parametrize("k", range(1, 7))
    def test_reproduces_polynomials(self, k):
        basis = LagrangeBasis1D(k)
        x = np.linspace(0.05, 0.95, 13)
        for p in range(k + 1):
            coeffs = basis.nodes**p
            assert np.allclose(basis.values(x) @ coeffs, x**p, atol=1e-11)

    def test_degree_zero(self):
        basis = LagrangeBasis1D(0)
        assert np.allclose(basis.values([0.2, 0.8]), 1.0)


class TestLagrangeDerivatives:
    @pytest.mark.parametrize("k", range(1, 7))
    def test_derivative_of_polynomials(self, k):
        basis = LagrangeBasis1D(k)
        x = np.linspace(0.0, 1.0, 11)  # includes nodes and non-nodes
        for p in range(1, k + 1):
            coeffs = basis.nodes**p
            exact = p * x ** (p - 1)
            assert np.allclose(basis.derivatives(x) @ coeffs, exact, atol=1e-9)

    @pytest.mark.parametrize("k", range(1, 7))
    def test_derivative_sums_to_zero(self, k):
        # derivative of the partition of unity
        basis = LagrangeBasis1D(k)
        x = np.linspace(0, 1, 9)
        assert np.allclose(basis.derivatives(x).sum(axis=1), 0.0, atol=1e-9)

    def test_at_node_matches_near_node(self):
        basis = LagrangeBasis1D(4)
        node = basis.nodes[2]
        d_at = basis.derivatives(np.array([node]))
        d_near = basis.derivatives(np.array([node + 1e-9]))
        assert np.allclose(d_at, d_near, atol=1e-5)


class TestShapeMatrices:
    @pytest.mark.parametrize("k", range(1, 6))
    def test_face_values_pick_endpoints(self, k):
        sm = shape_matrices(k)
        # Gauss-Lobatto basis: node 0 at x=0, node k at x=1
        e0 = np.zeros(k + 1)
        e0[0] = 1
        ek = np.zeros(k + 1)
        ek[-1] = 1
        assert np.allclose(sm.face_value[0], e0, atol=1e-12)
        assert np.allclose(sm.face_value[1], ek, atol=1e-12)

    @pytest.mark.parametrize("k", range(1, 6))
    def test_mass_matrix_spd_and_exact(self, k):
        M = mass_matrix_1d(k)
        assert np.allclose(M, M.T)
        assert np.all(np.linalg.eigvalsh(M) > 0)
        # integral of the constant 1: sum of all entries = |[0,1]| = 1
        assert np.isclose(M.sum(), 1.0)

    def test_gauss_nodes_variant(self):
        sm = shape_matrices(3, 4, nodes="gauss")
        # collocation: interp matrix is the identity
        assert np.allclose(sm.interp, np.eye(4), atol=1e-12)

    def test_unknown_node_family_raises(self):
        with pytest.raises(ValueError):
            shape_matrices(2, 3, nodes="chebyshev")


class TestChangeOfBasis:
    @pytest.mark.parametrize("k", range(1, 6))
    def test_roundtrip_identity(self, k):
        """Nodal -> collocation -> evaluate == direct evaluation."""
        S = change_of_basis_matrix(k)
        sm_gl = shape_matrices(k, k + 1)
        sm_co = shape_matrices(k, k + 1, nodes="gauss")
        # evaluating collocation coefficients at Gauss points is identity
        rng = np.random.default_rng(0)
        u = rng.standard_normal(k + 1)
        assert np.allclose(sm_gl.interp @ u, sm_co.interp @ (S @ u), atol=1e-11)

    @pytest.mark.parametrize("k", range(1, 6))
    def test_invertible(self, k):
        S = change_of_basis_matrix(k)
        assert np.linalg.cond(S) < 1e6


class TestTransferMatrices:
    @pytest.mark.parametrize("kc,kf", [(1, 2), (1, 3), (2, 4), (3, 6)])
    def test_embedding_preserves_polynomials(self, kc, kf):
        E = embedding_matrix(kc, kf)
        coarse = LagrangeBasis1D(kc)
        fine = LagrangeBasis1D(kf)
        x = np.linspace(0, 1, 7)
        for p in range(kc + 1):
            uc = coarse.nodes**p
            uf = E @ uc
            assert np.allclose(fine.values(x) @ uf, x**p, atol=1e-10)

    def test_embedding_wrong_order_raises(self):
        with pytest.raises(ValueError):
            embedding_matrix(3, 2)

    @pytest.mark.parametrize("k", range(1, 5))
    @pytest.mark.parametrize("child", [0, 1])
    def test_subinterval_preserves_polynomials(self, k, child):
        E = subinterval_matrix(k, child)
        basis = LagrangeBasis1D(k)
        xi = np.linspace(0, 1, 9)  # child-local coordinate
        x_global = 0.5 * xi + 0.5 * child
        for p in range(k + 1):
            u_parent = basis.nodes**p
            u_child = E @ u_parent
            assert np.allclose(basis.values(xi) @ u_child, x_global**p, atol=1e-10)

    def test_subinterval_bad_child_raises(self):
        with pytest.raises(ValueError):
            subinterval_matrix(2, 2)


@settings(deadline=None, max_examples=25)
@given(
    k=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_interpolation_exactness_property(k, seed):
    """Interpolating any polynomial of degree <= k at the nodes and
    re-evaluating anywhere reproduces it (fundamental Lagrange property)."""
    rng = np.random.default_rng(seed)
    coeffs = rng.standard_normal(k + 1)
    poly = np.polynomial.Polynomial(coeffs)
    basis = LagrangeBasis1D(k)
    u = poly(basis.nodes)
    x = rng.uniform(0, 1, size=8)
    assert np.allclose(basis.values(x) @ u, poly(x), atol=1e-8 * max(1, abs(coeffs).max()))
