"""Tests of the change-of-basis (collocation) cell-kernel fast path."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sum_factorization import TensorProductKernel


class TestCollocationPath:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_matches_standard_path(self, k):
        rng = np.random.default_rng(k)
        u = rng.standard_normal((3, k + 1, k + 1, k + 1))
        std = TensorProductKernel(k)
        col = TensorProductKernel(k, use_collocation=True)
        assert np.allclose(std.values(u), col.values(u), atol=1e-12)
        assert np.allclose(std.gradients(u), col.gradients(u), atol=1e-11)
        v_s, g_s = std.values_and_gradients(u)
        v_c, g_c = col.values_and_gradients(u)
        assert np.allclose(v_s, v_c, atol=1e-12)
        assert np.allclose(g_s, g_c, atol=1e-11)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_integrate_gradients_adjoint(self, k):
        rng = np.random.default_rng(10 + k)
        col = TensorProductKernel(k, use_collocation=True)
        u = rng.standard_normal((2, k + 1, k + 1, k + 1))
        q = rng.standard_normal((2, 3) + (k + 1,) * 3)
        lhs = np.sum(col.integrate_gradients(q) * u)
        rhs = np.sum(q * col.gradients(u))
        assert np.isclose(lhs, rhs, rtol=1e-11)

    def test_requires_square_quadrature(self):
        with pytest.raises(ValueError, match="n_q == degree"):
            TensorProductKernel(3, n_q_points=5, use_collocation=True)

    def test_operator_with_collocation_geometry(self):
        """A DG Laplacian built on a collocation-kernel geometry gives the
        same operator action (the paper runs this path in production)."""
        from repro.core.dof_handler import DGDofHandler
        from repro.core.operators import DGLaplaceOperator
        from repro.mesh.connectivity import build_connectivity
        from repro.mesh.generators import box
        from repro.mesh.mapping import GeometryField
        from repro.mesh.octree import Forest

        forest = Forest(box(subdivisions=(2, 1, 1), boundary_ids={0: 1}))
        conn = build_connectivity(forest)
        dof = DGDofHandler(forest, 3)
        geo_std = GeometryField(forest, 3)
        geo_col = GeometryField(forest, 3, use_collocation=True)
        op_std = DGLaplaceOperator(dof, geo_std, conn, dirichlet_ids=(1,))
        op_col = DGLaplaceOperator(dof, geo_col, conn, dirichlet_ids=(1,))
        x = np.random.default_rng(0).standard_normal(dof.n_dofs)
        assert np.allclose(op_std.vmult(x), op_col.vmult(x), atol=1e-10)


@settings(deadline=None, max_examples=20)
@given(k=st.integers(1, 4), seed=st.integers(0, 999))
def test_collocation_property(k, seed):
    rng = np.random.default_rng(seed)
    u = rng.standard_normal((2, k + 1, k + 1, k + 1))
    std = TensorProductKernel(k)
    col = TensorProductKernel(k, use_collocation=True)
    assert np.allclose(std.gradients(u), col.gradients(u), atol=1e-10)
