"""Poisson solves on curved (transfinite-cylinder) geometry — exercises
the high-order metric terms end to end, the boundary-fitted capability
Section 2.3 emphasizes."""

import numpy as np

from repro.core.dof_handler import DGDofHandler
from repro.core.operators import DGLaplaceOperator, InverseMassOperator
from repro.mesh.connectivity import build_connectivity
from repro.mesh.generators import cylinder
from repro.mesh.mapping import GeometryField
from repro.mesh.octree import Forest
from repro.solvers import conjugate_gradient


def solve_on_cylinder(levels: int, degree: int):
    """Manufactured axisymmetric solution u = (R^2 - r^2)/4 on the smooth
    cylinder: -lap(u) = 1 with u = 0 on the lateral surface and the exact
    Neumann data on the end caps (zero, since du/dz = 0)."""
    R = 1.0
    mesh = cylinder(radius=R, length=2.0, n_axial=2, smooth=True,
                    inlet_id=2, outlet_id=2)
    # re-tag: lateral wall keeps id 0 -> make IT the Dirichlet boundary
    forest = Forest(mesh).refine_all(levels)
    geo = GeometryField(forest, degree)
    conn = build_connectivity(forest)
    dof = DGDofHandler(forest, degree)
    op = DGLaplaceOperator(dof, geo, conn, dirichlet_ids=(0,))
    b = op.assemble_rhs(
        f=lambda x, y, z: np.ones_like(x),
        dirichlet=lambda x, y, z: 0.0 * x,
        neumann=lambda x, y, z: 0.0 * x,  # end caps: du/dn = 0
    )
    res = conjugate_gradient(op, b, InverseMassOperator(dof, geo),
                             tol=1e-11, max_iter=4000)
    assert res.converged
    cm = geo.cell_metrics()
    r2 = cm.points[:, 0] ** 2 + cm.points[:, 1] ** 2
    exact = (R * R - r2) / 4.0
    uq = geo.kernel.values(dof.cell_view(res.x))
    err = float(np.sqrt(np.sum((uq - exact) ** 2 * cm.jxw)))
    return err


class TestCurvedPoisson:
    def test_convergence_under_refinement(self):
        """The curved-boundary solution converges under h-refinement —
        only possible if the transfinite geometry and its metric terms are
        consistently resolved at high order."""
        e0 = solve_on_cylinder(0, degree=2)
        e1 = solve_on_cylinder(1, degree=2)
        rate = np.log2(e0 / e1)
        assert e1 < e0
        # the solution is quadratic, so the error is purely the geometric
        # approximation of the circle; preasymptotic order ~1.2 on these
        # coarse meshes — require robust first-order-plus convergence
        assert rate > 1.0

    def test_degree_beats_h_for_smooth_solution(self):
        e_k2 = solve_on_cylinder(0, degree=2)
        e_k4 = solve_on_cylinder(0, degree=4)
        assert e_k4 < 0.2 * e_k2
