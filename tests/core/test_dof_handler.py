"""Direct tests of the DG/CG dof handlers and constraint machinery."""

import numpy as np
import pytest

from repro.core.dof_handler import CGDofHandler, DGDofHandler
from repro.mesh.generators import box, cylinder
from repro.mesh.octree import Forest


class TestDGDofHandler:
    def test_counts(self):
        forest = Forest(box(subdivisions=(2, 1, 1)))
        dof = DGDofHandler(forest, 3, n_components=3)
        assert dof.dofs_per_cell == 3 * 64
        assert dof.n_dofs == 2 * 3 * 64

    def test_views_are_views(self):
        """cell_view and flat reshape without copying: writes through the
        view land in the flat vector (the zero-cost gather/scatter of DG)."""
        forest = Forest(box())
        dof = DGDofHandler(forest, 2)
        v = dof.zeros()
        cells = dof.cell_view(v)
        cells[0, 1, 1, 1] = 7.0
        assert 7.0 in v
        assert np.shares_memory(v, cells)
        assert np.shares_memory(dof.flat(cells), v)


class TestCGNumbering:
    def test_shared_nodes_counted_once(self):
        """On a 2x1x1 box of degree k the shared face nodes unify:
        n_global = (2k+1)(k+1)^2."""
        forest = Forest(box(subdivisions=(2, 1, 1)))
        for k in (1, 2, 3):
            dof = CGDofHandler(forest, k)
            assert dof.n_global == (2 * k + 1) * (k + 1) ** 2

    def test_cylinder_cross_section_sharing(self):
        """The 12-cell disc shares the inner lattice between blocks; the
        global count matches vertices+edges+faces counting via Euler:
        simply require strictly fewer than cell-local dofs."""
        forest = Forest(cylinder(n_axial=2, smooth=False))
        dof = CGDofHandler(forest, 2)
        assert dof.n_global < forest.n_cells * 27
        # continuity: expanding a random master vector gives equal values
        # at all shared positions (checked by construction of expand)
        x = np.random.default_rng(0).standard_normal(dof.n_dofs)
        cells = dof.gather_cells(x)
        assert cells.shape == (forest.n_cells, 3, 3, 3)

    def test_gather_scatter_adjoint(self):
        forest = Forest(box(subdivisions=(2, 1, 1))).refine_all(1)
        dof = CGDofHandler(forest, 2)
        rng = np.random.default_rng(1)
        x = rng.standard_normal(dof.n_dofs)
        cells = rng.standard_normal((forest.n_cells, 3, 3, 3))
        lhs = np.sum(dof.gather_cells(x) * cells)
        rhs = x @ dof.scatter_add_cells(cells)
        assert np.isclose(lhs, rhs, rtol=1e-12)

    def test_degree_zero_rejected(self):
        with pytest.raises(ValueError):
            CGDofHandler(Forest(box()), 0)


class TestHangingConstraints:
    def make(self, degree=2):
        f = Forest(box(subdivisions=(2, 1, 1)))
        f = f.refine([f.leaves[0]]).balance()
        return CGDofHandler(f, degree)

    def test_constraint_rows_partition_of_unity(self):
        """Interpolating the constant: every constrained dof's weights sum
        to one (no Dirichlet constraints here)."""
        dof = self.make()
        assert dof.constraints  # hanging faces exist
        for slave, entries in dof.constraints.items():
            assert np.isclose(sum(w for _, w in entries), 1.0, atol=1e-12)

    def test_masters_are_unconstrained(self):
        dof = self.make()
        for slave, entries in dof.constraints.items():
            assert dof.is_constrained[slave]
            for master, _ in entries:
                assert not dof.is_constrained[master]

    def test_expansion_matrix_shape_and_identity_part(self):
        dof = self.make()
        assert dof.C.shape == (dof.n_global, dof.n_dofs)
        # master rows carry exactly one unit entry
        masters = np.nonzero(~dof.is_constrained)[0]
        sub = dof.C[masters]
        assert np.allclose(sub.sum(axis=1), 1.0)
        assert sub.nnz == len(masters)

    def test_dirichlet_rows_empty(self):
        f = Forest(box(subdivisions=(2, 1, 1), boundary_ids={0: 1}))
        dof = CGDofHandler(f, 2, dirichlet_ids=(1,))
        # some nodes constrained to zero: their C rows are empty
        zero_rows = [g for g, e in dof.constraints.items() if not e]
        assert zero_rows
        row_sums = np.asarray(np.abs(dof.C[zero_rows]).sum(axis=1)).ravel()
        assert np.allclose(row_sums, 0.0)

    def test_nodal_points_roundtrip(self):
        dof = self.make()
        pts = dof.nodal_points()
        assert pts.shape == (dof.n_global, 3)
        assert pts.min() >= -1e-12 and pts.max() <= 2 + 1e-12
