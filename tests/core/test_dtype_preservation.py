"""Property tests of the single-precision compute path.

Every matrix-free operator must return its input dtype from
``vmult``/``apply`` — a silent float64 promotion anywhere in the chain
erases the memory-bandwidth win the fp32 path exists for.  Beyond the
dtype contract these tests check

* fp32 results agree with the fp64 reference within single-precision
  roundoff on a curved (bifurcation) mesh with mixed face orientations
  and randomized input, and
* the planned DG-Laplace vmult allocates measurably fewer transient
  bytes at fp32 than at fp64 (tracemalloc high-water mark), i.e. the
  kernels do not secretly stage double-precision temporaries.

fp32 operators are built with :func:`repro.solvers.multigrid.operator_to_dtype`
— the same cast the NS solver and the benchmarks use — so the clones
exercised here share metrics provenance with production code.
"""

import numpy as np
import pytest

from repro.core.dof_handler import CGDofHandler, DGDofHandler
from repro.core.operators import (
    CGLaplaceOperator,
    ConvectiveOperator,
    DGLaplaceOperator,
    DivergenceContinuityPenalty,
    DivergenceOperator,
    GradientOperator,
    HelmholtzOperator,
    InverseMassOperator,
    MassOperator,
    PenaltyStepOperator,
    VectorDGLaplace,
)
from repro.mesh.connectivity import build_connectivity
from repro.mesh.generators import bifurcation
from repro.mesh.mapping import GeometryField
from repro.mesh.octree import Forest
from repro.ns.bc import BoundaryConditions, PressureDirichlet
from repro.solvers.multigrid import operator_to_dtype

#: fp32-vs-fp64 normwise agreement on the curved mesh.  Measured errors
#: sit around 1e-7 for every operator (a few ulps of single precision);
#: 1e-5 leaves ~100x headroom for unlucky cancellation in the SIP face
#: penalty while still catching any accidental fp32 truncation of the
#: metric terms.
FP32_RTOL = 1e-5


@pytest.fixture(scope="module")
def setup():
    """Operators on the curved bifurcation mesh (mixed orientations)."""
    forest = Forest(bifurcation())
    k = 2
    geo = GeometryField(forest, k)
    geo_over = GeometryField(forest, k, n_q_points=k + 2)
    conn = build_connectivity(forest)
    dof_s = DGDofHandler(forest, k)
    dof_u = DGDofHandler(forest, k, n_components=3)
    dof_p = DGDofHandler(forest, k - 1)
    bcs = BoundaryConditions({1: PressureDirichlet(0.0)})

    scalar = DGLaplaceOperator(dof_s, geo, conn, dirichlet_ids=(1,))
    ops = {
        "dg_laplace": scalar,
        "mass": MassOperator(dof_u, geo),
        "inverse_mass": InverseMassOperator(dof_u, geo),
        "vector_laplace": VectorDGLaplace(scalar, dof_u),
        "penalty": DivergenceContinuityPenalty(dof_u, geo, conn),
    }
    ops["helmholtz"] = HelmholtzOperator(ops["mass"], ops["vector_laplace"], nu=1e-2)
    ops["penalty_step"] = PenaltyStepOperator(ops["mass"], ops["penalty"])
    ops["divergence"] = DivergenceOperator(dof_u, dof_p, geo, conn, bcs)
    ops["gradient"] = GradientOperator(dof_u, dof_p, geo, conn, bcs)
    ops["convective"] = ConvectiveOperator(dof_u, geo_over, conn, bcs)

    cg_dof = CGDofHandler(forest, k)
    ops["cg_laplace"] = CGLaplaceOperator(cg_dof, geo)
    return forest, dof_s, dof_u, dof_p, ops


def _input_vector(op, name, dtype):
    rng = np.random.default_rng(7)
    if name in ("divergence",):
        n = op.dof_u.n_dofs
    elif name in ("gradient",):
        n = op.dof_p.n_dofs
    else:
        n = op.n_dofs
    return rng.standard_normal(n).astype(dtype)


def _apply(op, name, x):
    if name in ("divergence", "gradient", "convective"):
        return op.apply(x)
    return op.vmult(x)


ALL_OPS = [
    "dg_laplace",
    "cg_laplace",
    "mass",
    "inverse_mass",
    "vector_laplace",
    "helmholtz",
    "penalty",
    "penalty_step",
    "divergence",
    "gradient",
    "convective",
]


class TestDtypePreserved:
    """vmult/apply return the input dtype — no hidden upcast."""

    @pytest.mark.parametrize("name", ALL_OPS)
    def test_float64_stays_float64(self, setup, name):
        op = setup[4][name]
        x = _input_vector(op, name, np.float64)
        assert _apply(op, name, x).dtype == np.float64

    @pytest.mark.parametrize("name", ALL_OPS)
    def test_float32_stays_float32(self, setup, name):
        op32 = operator_to_dtype(setup[4][name], np.float32)
        x = _input_vector(op32, name, np.float32)
        assert _apply(op32, name, x).dtype == np.float32

    @pytest.mark.parametrize("use_plans", [False, True],
                             ids=["legacy", "planned"])
    def test_dg_laplace_both_execution_modes(self, setup, use_plans):
        from repro.core.plans import plan_execution

        op32 = operator_to_dtype(setup[4]["dg_laplace"], np.float32)
        x = _input_vector(op32, "dg_laplace", np.float32)
        with plan_execution(use_plans):
            assert op32.vmult(x).dtype == np.float32


class TestFp32MatchesFp64:
    """Single-precision results track the double reference to fp32
    roundoff on the randomized curved mesh."""

    @pytest.mark.parametrize("name", ALL_OPS)
    def test_agreement(self, setup, name):
        op = setup[4][name]
        op32 = operator_to_dtype(op, np.float32)
        x64 = _input_vector(op, name, np.float64)
        y64 = np.asarray(_apply(op, name, x64), dtype=np.float64)
        y32 = np.asarray(_apply(op32, name, x64.astype(np.float32)),
                         dtype=np.float64)
        scale = np.linalg.norm(y64)
        if scale == 0.0:
            assert np.linalg.norm(y32) < 1e-5
        else:
            assert np.linalg.norm(y32 - y64) / scale < FP32_RTOL


class TestNoDoubleTemporaries:
    """tracemalloc check on the representative kernel: a warm planned
    DG-Laplace vmult at fp32 must allocate well under the fp64 peak —
    if any hot temporary were secretly staged in double, the fp32 peak
    would match the fp64 one instead of halving."""

    def test_fp32_peak_allocation_is_smaller(self, setup):
        from repro.perf.measure import measure_allocations

        op64 = setup[4]["dg_laplace"]
        op32 = operator_to_dtype(op64, np.float32)
        x64 = _input_vector(op64, "dg_laplace", np.float64)
        x32 = x64.astype(np.float32)
        # warm both plan caches/workspaces so we measure steady state
        op64.vmult(x64)
        op32.vmult(x32)
        peak64, _ = measure_allocations(lambda: op64.vmult(x64))
        peak32, _ = measure_allocations(lambda: op32.vmult(x32))
        assert peak64 > 0
        assert peak32 <= 0.75 * peak64, (
            f"fp32 vmult peak {peak32}B vs fp64 {peak64}B — "
            "hidden double-precision temporaries?"
        )
