"""Tests of the ensemble leading axis through the matrix-free operator
stack: E=1 must ride the unbatched bitstream exactly, and E>1 members
must be independent (each row of a batched apply equals the same flat
apply), at both compute precisions."""

import numpy as np
import pytest

from repro.mesh.generators import box
from repro.mesh.octree import Forest
from repro.ns import (
    BeltramiFlow,
    BoundaryConditions,
    IncompressibleNavierStokesSolver,
    SolverSettings,
    VelocityDirichlet,
)
from repro.solvers.multigrid import operator_to_dtype


@pytest.fixture(scope="module")
def solver():
    mesh = box(subdivisions=(1, 1, 1), boundary_ids={i: 1 for i in range(6)})
    forest = Forest(mesh).refine_all(1)
    flow = BeltramiFlow(0.05)
    bcs = BoundaryConditions(
        {1: VelocityDirichlet(lambda x, y, z, t: flow.velocity(x, y, z, t))}
    )
    s = IncompressibleNavierStokesSolver(
        forest, 2, 0.05, bcs, SolverSettings(solver_tolerance=1e-8)
    )
    s.initialize(flow.velocity)
    return s


def _ops(solver):
    """(name, operator, input size) for every linear vmult in the stack."""
    return [
        ("mass", solver.mass_u, solver.dof_u.n_dofs),
        ("inverse_mass", solver.inv_mass_u, solver.dof_u.n_dofs),
        ("vector_laplace", solver.vector_laplace, solver.dof_u.n_dofs),
        ("helmholtz", solver.helmholtz, solver.dof_u.n_dofs),
        ("penalty", solver.penalty, solver.dof_u.n_dofs),
        ("penalty_step", solver.penalty_step, solver.dof_u.n_dofs),
        ("divergence", solver.divergence, solver.dof_u.n_dofs),
        ("gradient", solver.gradient, solver.dof_p.n_dofs),
        ("pressure_poisson", solver.pressure_poisson, solver.dof_p.n_dofs),
    ]


class TestE1Bitwise:
    """A single-member batch reproduces the flat bitstream exactly."""

    def test_all_operators(self, solver):
        rng = np.random.default_rng(0)
        for name, op, n in _ops(solver):
            x = rng.standard_normal(n)
            flat = op.vmult(x)
            batched = op.vmult(x[None])
            assert batched.shape == (1,) + flat.shape, name
            assert np.array_equal(batched[0], flat), name

    def test_convective_apply(self, solver):
        rng = np.random.default_rng(1)
        u = rng.standard_normal(solver.dof_u.n_dofs)
        flat = solver.convective.apply(u, t=0.1)
        batched = solver.convective.apply(u[None], t=0.1)
        assert np.array_equal(batched[0], flat)

    def test_max_reference_velocity(self, solver):
        rng = np.random.default_rng(2)
        u = rng.standard_normal(solver.dof_u.n_dofs)
        flat = solver.convective.max_reference_velocity(u)
        batched = solver.convective.max_reference_velocity(u[None])
        assert batched.shape == (1,)
        assert batched[0] == flat

    def test_flow_rate_and_divergence(self, solver):
        rng = np.random.default_rng(3)
        u = rng.standard_normal(solver.dof_u.n_dofs)
        assert solver._flow_rate_of(u[None], 1)[0] == \
            solver._flow_rate_of(u, 1)


class TestMemberIndependence:
    """Rows of a batched apply match the same member applied flat: no
    cross-member coupling anywhere in the stack."""

    E = 3

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_all_operators(self, solver, dtype):
        rng = np.random.default_rng(4)
        rtol = 1e-12 if dtype == "float64" else 1e-4
        for name, op, n in _ops(solver):
            opd = operator_to_dtype(op, dtype)
            X = rng.standard_normal((self.E, n)).astype(dtype)
            batched = opd.vmult(X)
            for e in range(self.E):
                ref = opd.vmult(X[e])
                scale = max(np.abs(ref).max(), 1e-30)
                np.testing.assert_allclose(
                    batched[e], ref, rtol=rtol, atol=rtol * scale,
                    err_msg=f"{name} member {e} @ {dtype}",
                )

    def test_convective_members(self, solver):
        rng = np.random.default_rng(5)
        U = rng.standard_normal((self.E, solver.dof_u.n_dofs))
        batched = solver.convective.apply(U, t=0.0)
        for e in range(self.E):
            ref = solver.convective.apply(U[e], t=0.0)
            scale = np.abs(ref).max()
            np.testing.assert_allclose(batched[e], ref,
                                       rtol=1e-12, atol=1e-12 * scale)

    def test_permuting_members_permutes_results(self, solver):
        rng = np.random.default_rng(6)
        op = solver.vector_laplace
        X = rng.standard_normal((self.E, solver.dof_u.n_dofs))
        perm = [2, 0, 1]
        y = op.vmult(X)
        y_perm = op.vmult(X[perm])
        np.testing.assert_allclose(y_perm, y[perm], rtol=1e-13,
                                   atol=1e-13 * np.abs(y).max())


@pytest.fixture(scope="module")
def laplace_op():
    from repro.core.dof_handler import DGDofHandler
    from repro.core.operators import DGLaplaceOperator
    from repro.mesh.connectivity import build_connectivity
    from repro.mesh.mapping import GeometryField

    # two boundary face directions carry the Dirichlet id, so the
    # assembly sees more than one boundary batch
    forest = Forest(box(subdivisions=(2, 1, 1), boundary_ids={0: 1, 1: 1})
                    ).refine_all(1)
    geo = GeometryField(forest, 2)
    conn = build_connectivity(forest)
    dof = DGDofHandler(forest, 2)
    return DGLaplaceOperator(dof, geo, conn, dirichlet_ids=(1,))


class TestEnsembleAssembleRhs:
    """Boundary callables returning (E, F, a, b) data drive an
    ensemble-stacked right-hand side; member-independent volume data is
    broadcast."""

    def test_member_rows_match_flat_assembly(self, laplace_op):
        op = laplace_op
        coeffs = (1.0, -0.5, 2.0)

        def stacked_dirichlet(x, y, z):
            return np.stack([c * x + 0.1 * y for c in coeffs])

        rhs = op.assemble_rhs(f=lambda x, y, z: x * y + z,
                              dirichlet=stacked_dirichlet)
        assert rhs.shape == (len(coeffs), op.n_dofs)
        for e, c in enumerate(coeffs):
            flat = op.assemble_rhs(
                f=lambda x, y, z: x * y + z,
                dirichlet=lambda x, y, z, _c=c: _c * x + 0.1 * y,
            )
            np.testing.assert_allclose(rhs[e], flat, rtol=1e-13,
                                       atol=1e-13 * np.abs(flat).max())

    def test_e1_stacked_boundary_data_is_bitwise(self, laplace_op):
        op = laplace_op
        rhs1 = op.assemble_rhs(
            dirichlet=lambda x, y, z: np.stack([2.0 * x - z]))
        flat = op.assemble_rhs(dirichlet=lambda x, y, z: 2.0 * x - z)
        assert rhs1.shape == (1, op.n_dofs)
        assert np.array_equal(rhs1[0], flat)

    def test_inconsistent_ensemble_sizes_rejected(self, laplace_op):
        op = laplace_op
        sizes = iter([2, 3])

        def bad(x, y, z):
            return np.stack([x] * next(sizes))

        with pytest.raises(ValueError, match="inconsistent ensemble"):
            op.assemble_rhs(dirichlet=bad)
