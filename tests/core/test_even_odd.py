"""Tests of the even-odd decomposition of 1D kernel matrices."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.basis import shape_matrices
from repro.core.even_odd import EvenOddMatrix


def random_symmetric_matrix(m, n, sign, seed):
    rng = np.random.default_rng(seed)
    M = rng.standard_normal((m, n))
    return 0.5 * (M + sign * M[::-1, ::-1])


class TestConstruction:
    @pytest.mark.parametrize("k", range(1, 7))
    def test_interp_matrices_are_even(self, k):
        sm = shape_matrices(k)
        EvenOddMatrix(sm.interp, "even")  # must not raise

    @pytest.mark.parametrize("k", range(1, 7))
    def test_grad_matrices_are_odd(self, k):
        sm = shape_matrices(k)
        EvenOddMatrix(sm.grad, "odd")

    def test_wrong_kind_raises(self):
        sm = shape_matrices(3)
        with pytest.raises(ValueError):
            EvenOddMatrix(sm.interp, "odd")

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            EvenOddMatrix(np.eye(3), "mixed")

    def test_non_2d_raises(self):
        with pytest.raises(ValueError):
            EvenOddMatrix(np.zeros(3), "even")


@pytest.mark.parametrize("m,n", [(2, 2), (3, 3), (4, 4), (5, 5), (3, 4), (4, 3), (5, 2), (2, 5), (6, 5)])
@pytest.mark.parametrize("sign,kind", [(1.0, "even"), (-1.0, "odd")])
class TestCorrectness:
    def test_matvec_matches_dense(self, m, n, sign, kind):
        M = random_symmetric_matrix(m, n, sign, seed=m * 10 + n)
        eo = EvenOddMatrix(M, kind)
        rng = np.random.default_rng(0)
        v = rng.standard_normal((7, n))
        assert np.allclose(eo.matvec(v), v @ M.T, atol=1e-12)

    def test_apply_along_tensor_dims(self, m, n, sign, kind):
        from repro.core.sum_factorization import apply_1d

        M = random_symmetric_matrix(m, n, sign, seed=3)
        eo = EvenOddMatrix(M, kind)
        rng = np.random.default_rng(1)
        u = rng.standard_normal((2, n, n, n))
        for dim in range(3):
            assert np.allclose(eo.apply(u, dim), apply_1d(M, u, dim), atol=1e-12)


class TestFlopReduction:
    @pytest.mark.parametrize("n", [4, 6, 8, 10])
    def test_even_sizes_halve_mults(self, n):
        M = random_symmetric_matrix(n, n, 1.0, seed=n)
        eo = EvenOddMatrix(M, "even")
        assert eo.mults_per_vector() == eo.mults_dense() // 2

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_odd_sizes_near_half(self, n):
        M = random_symmetric_matrix(n, n, 1.0, seed=n)
        eo = EvenOddMatrix(M, "even")
        # 2*ceil(n/2)^2 vs n^2: slightly above half for odd n
        assert eo.mults_per_vector() < eo.mults_dense()
        assert eo.mults_per_vector() == 2 * ((n + 1) // 2) ** 2


@settings(deadline=None, max_examples=40)
@given(
    m=st.integers(min_value=1, max_value=9),
    n=st.integers(min_value=1, max_value=9),
    sign=st.sampled_from([1.0, -1.0]),
    seed=st.integers(min_value=0, max_value=999),
)
def test_matvec_property(m, n, sign, seed):
    kind = "even" if sign > 0 else "odd"
    M = random_symmetric_matrix(m, n, sign, seed)
    eo = EvenOddMatrix(M, kind)
    rng = np.random.default_rng(seed + 1)
    v = rng.standard_normal((3, n))
    assert np.allclose(eo.matvec(v), v @ M.T, atol=1e-11)
