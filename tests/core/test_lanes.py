"""Tests of the SIMD-lane abstraction (Section 3.2 analogue)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.lanes import (
    LANES_DP,
    LANES_SP,
    LaneBatch,
    batch_cells,
    n_lane_batches,
    simd_fill_statistics,
    unbatch_cells,
)


class TestLaneBatch:
    def test_arithmetic_operators(self):
        a = LaneBatch(np.arange(8.0), 8)
        b = LaneBatch(np.ones(8), 8)
        assert np.allclose((a + b).data, np.arange(8.0) + 1)
        assert np.allclose((a - b).data, np.arange(8.0) - 1)
        assert np.allclose((a * 2.0).data, 2 * np.arange(8.0))
        assert np.allclose((a / 2.0).data, np.arange(8.0) / 2)
        assert np.allclose((-a).data, -np.arange(8.0))
        assert np.allclose((1.0 + a).data, 1 + np.arange(8.0))
        assert np.allclose((2.0 - a).data, 2 - np.arange(8.0))
        assert np.allclose((8.0 / (a + 1)).data, 8.0 / (np.arange(8.0) + 1))

    def test_sqrt_abs(self):
        a = LaneBatch(np.array([-4.0, 9.0, -16.0, 1.0]), 4)
        assert np.allclose(a.abs().data, [4, 9, 16, 1])
        assert np.allclose(a.abs().sqrt().data, [2, 3, 4, 1])

    def test_fill_fraction(self):
        b = LaneBatch(np.zeros(8), 5)
        assert b.fill_fraction == 5 / 8

    def test_invalid_fill_raises(self):
        with pytest.raises(ValueError):
            LaneBatch(np.zeros(4), 0)
        with pytest.raises(ValueError):
            LaneBatch(np.zeros(4), 5)

    def test_broadcast(self):
        b = LaneBatch.broadcast(3.5, lanes=4)
        assert b.lanes == 4 and np.allclose(b.data, 3.5)

    def test_gather_scatter_roundtrip(self):
        src = np.arange(20.0)
        idx = np.array([3, 7, 11, 2])
        b = LaneBatch.gather(src, idx)
        assert b.n_filled == 4
        assert np.allclose(b.data[:4], src[idx])
        target = np.zeros(20)
        b.scatter(target, idx)
        assert np.allclose(target[idx], src[idx])

    def test_scatter_add_accumulates(self):
        target = np.ones(10)
        b = LaneBatch.gather(np.arange(10.0), np.array([2, 2]))
        # duplicate indices must accumulate (np.add.at semantics)
        b.scatter_add(target, np.array([5, 5]))
        assert np.isclose(target[5], 1 + 2 + 2)


class TestBatching:
    def test_n_lane_batches(self):
        assert n_lane_batches(16, 8) == 2
        assert n_lane_batches(17, 8) == 3
        assert n_lane_batches(1, 8) == 1

    @given(n=st.integers(min_value=1, max_value=40))
    @settings(deadline=None, max_examples=20)
    def test_batch_unbatch_roundtrip(self, n):
        data = np.random.default_rng(n).standard_normal((n, 3))
        batches = batch_cells(data, lanes=8)
        assert len(batches) == n_lane_batches(n, 8)
        back = unbatch_cells(batches)
        assert np.allclose(back, data)

    def test_last_batch_padded_with_copy(self):
        data = np.arange(10.0)[:, None]
        batches = batch_cells(data, lanes=8)
        last = batches[-1]
        assert last.n_filled == 2
        assert np.allclose(last.data[2:], data[9])  # padding = last cell

    def test_fill_statistics(self):
        assert simd_fill_statistics([], 8) == 1.0
        assert np.isclose(simd_fill_statistics([8, 8], 8), 1.0)
        # the partially-filled-lane overhead of mixed-orientation faces
        assert np.isclose(simd_fill_statistics([8, 2], 8), 10 / 16)

    def test_lane_widths(self):
        assert LANES_SP == 2 * LANES_DP  # SP doubles cells per register
