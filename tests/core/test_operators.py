"""Tests of the matrix-free mass and Laplace operators."""

import numpy as np
import pytest

from repro.core.dof_handler import CGDofHandler, DGDofHandler
from repro.core.operators import (
    CGLaplaceOperator,
    DGLaplaceOperator,
    InverseMassOperator,
    MassOperator,
)
from repro.mesh.connectivity import build_connectivity
from repro.mesh.generators import box, bifurcation, cylinder, unit_cube
from repro.mesh.mapping import GeometryField
from repro.mesh.octree import Forest


def make_setup(forest, degree, dirichlet=()):
    geo = GeometryField(forest, degree)
    conn = build_connectivity(forest)
    dof = DGDofHandler(forest, degree)
    op = DGLaplaceOperator(dof, geo, conn, dirichlet_ids=dirichlet)
    return dof, geo, conn, op


def operator_matrix(op):
    n = op.n_dofs
    A = np.empty((n, n))
    for j in range(n):
        e = np.zeros(n)
        e[j] = 1.0
        A[:, j] = op.vmult(e)
    return A


class TestMassOperator:
    @pytest.mark.parametrize("degree", [1, 2, 3])
    def test_integral_of_one(self, degree):
        forest = Forest(box(upper=(2, 1, 1), subdivisions=(2, 1, 1)))
        geo = GeometryField(forest, degree)
        dof = DGDofHandler(forest, degree)
        M = MassOperator(dof, geo)
        ones = np.ones(dof.n_dofs)
        assert np.isclose(ones @ M.vmult(ones), 2.0)

    def test_symmetry(self):
        forest = Forest(unit_cube()).refine_all(1)
        geo = GeometryField(forest, 2)
        dof = DGDofHandler(forest, 2)
        M = MassOperator(dof, geo)
        rng = np.random.default_rng(0)
        x, y = rng.standard_normal((2, dof.n_dofs))
        assert np.isclose(x @ M.vmult(y), y @ M.vmult(x), rtol=1e-12)

    def test_diagonal_matches_matrix(self):
        forest = Forest(unit_cube())
        geo = GeometryField(forest, 2)
        dof = DGDofHandler(forest, 2)
        M = MassOperator(dof, geo)
        A = operator_matrix(M)
        assert np.allclose(M.diagonal(), np.diag(A), rtol=1e-10)

    @pytest.mark.parametrize("degree", [1, 2, 3])
    def test_inverse_roundtrip(self, degree):
        # deformed mesh via the smooth cylinder
        forest = Forest(cylinder(n_axial=2, smooth=True))
        geo = GeometryField(forest, degree)
        dof = DGDofHandler(forest, degree)
        M = MassOperator(dof, geo)
        Minv = InverseMassOperator(dof, geo)
        rng = np.random.default_rng(1)
        x = rng.standard_normal(dof.n_dofs)
        assert np.allclose(Minv.vmult(M.vmult(x)), x, atol=1e-9)
        assert np.allclose(M.vmult(Minv.vmult(x)), x, atol=1e-9)

    def test_vector_valued(self):
        forest = Forest(unit_cube())
        geo = GeometryField(forest, 2)
        dof = DGDofHandler(forest, 2, n_components=3)
        M = MassOperator(dof, geo)
        ones = np.ones(dof.n_dofs)
        assert np.isclose(ones @ M.vmult(ones), 3.0)  # 3 components x volume 1


class TestDGLaplaceBasics:
    def test_constant_in_kernel_with_neumann(self):
        """With pure Neumann boundaries the constant is in the kernel —
        exercises cell terms and all conforming face terms."""
        forest = Forest(box(subdivisions=(2, 2, 1)))
        dof, _, _, op = make_setup(forest, 2)
        ones = np.ones(dof.n_dofs)
        assert np.abs(op.vmult(ones)).max() < 1e-10

    def test_constant_in_kernel_on_hanging_mesh(self):
        """The same on a 2:1 locally refined mesh — validates sub-face
        interpolation and hanging-face flux assembly."""
        f = Forest(box(subdivisions=(2, 1, 1)))
        f = f.refine([f.leaves[0]]).balance()
        dof, _, conn, op = make_setup(f, 3)
        assert conn.n_hanging_faces > 0
        ones = np.ones(dof.n_dofs)
        assert np.abs(op.vmult(ones)).max() < 1e-9

    def test_constant_in_kernel_on_bifurcation(self):
        """Mixed orientations at tube junctions must also cancel."""
        mesh = bifurcation()
        forest = Forest(mesh)
        dof, _, conn, op = make_setup(forest, 2)
        assert conn.mixed_orientation_fraction() > 0
        ones = np.ones(dof.n_dofs)
        assert np.abs(op.vmult(ones)).max() < 1e-9

    @pytest.mark.parametrize("dirichlet", [(), (1, 2)])
    def test_symmetry(self, dirichlet):
        forest = Forest(box(subdivisions=(2, 1, 1), boundary_ids={0: 1, 1: 2}))
        dof, _, _, op = make_setup(forest, 2, dirichlet)
        rng = np.random.default_rng(3)
        x, y = rng.standard_normal((2, dof.n_dofs))
        assert np.isclose(x @ op.vmult(y), y @ op.vmult(x), rtol=1e-10)

    def test_positive_definite_with_dirichlet(self):
        forest = Forest(unit_cube(2), )
        mesh = box(subdivisions=(2, 2, 2), boundary_ids={0: 1})
        forest = Forest(mesh)
        dof, _, _, op = make_setup(forest, 2, dirichlet=(1,))
        A = operator_matrix(op)
        eigs = np.linalg.eigvalsh(0.5 * (A + A.T))
        assert eigs.min() > 0

    def test_semidefinite_with_neumann(self):
        forest = Forest(unit_cube(2))
        dof, _, _, op = make_setup(forest, 2)
        A = operator_matrix(op)
        eigs = np.linalg.eigvalsh(0.5 * (A + A.T))
        assert eigs.min() > -1e-10
        # exactly one zero eigenvalue (the constant)
        assert np.sum(np.abs(eigs) < 1e-8) == 1

    def test_diagonal_matches_matrix(self):
        mesh = box(subdivisions=(2, 1, 1), boundary_ids={0: 1})
        forest = Forest(mesh)
        dof, _, _, op = make_setup(forest, 2, dirichlet=(1,))
        A = operator_matrix(op)
        assert np.allclose(op.diagonal(), np.diag(A), rtol=1e-9)

    def test_diagonal_matches_matrix_hanging(self):
        f = Forest(box(subdivisions=(2, 1, 1), boundary_ids={0: 1}))
        f = f.refine([f.leaves[0]]).balance()
        dof, _, _, op = make_setup(f, 2, dirichlet=(1,))
        A = operator_matrix(op)
        assert np.allclose(op.diagonal(), np.diag(A), rtol=1e-9)


def solve_cg(op, b, tol=1e-11, maxiter=2000, M=None):
    x = np.zeros_like(b)
    r = b.copy()
    z = r if M is None else M(r)
    p = z.copy()
    rz = r @ z
    b_norm = np.linalg.norm(b)
    for _ in range(maxiter):
        Ap = op.vmult(p)
        alpha = rz / (p @ Ap)
        x += alpha * p
        r -= alpha * Ap
        if np.linalg.norm(r) < tol * b_norm:
            break
        z = r if M is None else M(r)
        rz_new = r @ z
        p = z + (rz_new / rz) * p
        rz = rz_new
    return x


class TestDGPoissonConvergence:
    def solve_error(self, levels, degree):
        """Manufactured u = sin(pi x) sin(pi y) sin(pi z) on the unit cube
        with Dirichlet boundaries; returns the L2 error."""
        mesh = box(subdivisions=(1, 1, 1), boundary_ids={i: 1 for i in range(6)})
        forest = Forest(mesh).refine_all(levels)
        geo = GeometryField(forest, degree)
        conn = build_connectivity(forest)
        dof = DGDofHandler(forest, degree)
        op = DGLaplaceOperator(dof, geo, conn, dirichlet_ids=(1,))
        exact = lambda x, y, z: np.sin(np.pi * x) * np.sin(np.pi * y) * np.sin(np.pi * z)
        rhs_f = lambda x, y, z: 3 * np.pi**2 * exact(x, y, z)
        b = op.assemble_rhs(f=rhs_f, dirichlet=lambda x, y, z: 0.0 * x)
        Minv = InverseMassOperator(dof, geo)
        u = solve_cg(op, b, M=Minv.vmult)
        # L2 error by quadrature
        cm = geo.cell_metrics()
        uq = geo.kernel.values(dof.cell_view(u))
        eq = exact(cm.points[:, 0], cm.points[:, 1], cm.points[:, 2])
        return float(np.sqrt(np.sum((uq - eq) ** 2 * cm.jxw)))

    @pytest.mark.parametrize("degree,expected_rate", [(1, 2.0), (2, 3.0), (3, 4.0)])
    def test_hp_convergence_rates(self, degree, expected_rate):
        e1 = self.solve_error(1, degree)
        e2 = self.solve_error(2, degree)
        rate = np.log2(e1 / e2)
        assert rate > expected_rate - 0.4, f"rate {rate} too low for k={degree}"

    def test_convergence_on_hanging_mesh(self):
        """Locally refined mesh still converges (reduced but positive)."""
        mesh = box(subdivisions=(1, 1, 1), boundary_ids={i: 1 for i in range(6)})
        degree = 2
        errors = []
        for levels in (1, 2):
            forest = Forest(mesh).refine_all(levels)
            forest = forest.refine(forest.leaves[: forest.n_cells // 2]).balance()
            geo = GeometryField(forest, degree)
            conn = build_connectivity(forest)
            dof = DGDofHandler(forest, degree)
            op = DGLaplaceOperator(dof, geo, conn, dirichlet_ids=(1,))
            exact = lambda x, y, z: np.sin(np.pi * x) * np.sin(np.pi * y) * np.sin(np.pi * z)
            b = op.assemble_rhs(
                f=lambda x, y, z: 3 * np.pi**2 * exact(x, y, z),
                dirichlet=lambda x, y, z: 0.0 * x,
            )
            Minv = InverseMassOperator(dof, geo)
            u = solve_cg(op, b, M=Minv.vmult)
            cm = geo.cell_metrics()
            uq = geo.kernel.values(dof.cell_view(u))
            eq = exact(cm.points[:, 0], cm.points[:, 1], cm.points[:, 2])
            errors.append(float(np.sqrt(np.sum((uq - eq) ** 2 * cm.jxw))))
        assert errors[1] < 0.25 * errors[0]


class TestCGLaplace:
    def test_constant_in_kernel_neumann(self):
        forest = Forest(box(subdivisions=(2, 2, 1)))
        dof = CGDofHandler(forest, 2)
        geo = GeometryField(forest, 2)
        op = CGLaplaceOperator(dof, geo)
        ones = np.ones(dof.n_dofs)
        assert np.abs(op.vmult(ones)).max() < 1e-10

    def test_constant_in_kernel_hanging(self):
        f = Forest(box(subdivisions=(2, 1, 1)))
        f = f.refine([f.leaves[0]]).balance()
        dof = CGDofHandler(f, 2)
        geo = GeometryField(f, 2)
        op = CGLaplaceOperator(dof, geo)
        # the expansion of the constant master vector must be constant
        assert np.allclose(dof.expand(np.ones(dof.n_dofs)), 1.0)
        assert np.abs(op.vmult(np.ones(dof.n_dofs))).max() < 1e-10

    def test_dof_count_conforming(self):
        forest = Forest(unit_cube()).refine_all(1)
        dof = CGDofHandler(forest, 2)
        assert dof.n_dofs == 5**3  # 2 cells/dim x degree 2 = 5 nodes/dim

    def test_spd_with_dirichlet(self):
        mesh = box(subdivisions=(2, 1, 1), boundary_ids={0: 1})
        forest = Forest(mesh)
        dof = CGDofHandler(forest, 2, dirichlet_ids=(1,))
        geo = GeometryField(forest, 2)
        op = CGLaplaceOperator(dof, geo)
        A = operator_matrix(op)
        assert np.allclose(A, A.T, atol=1e-11)
        assert np.linalg.eigvalsh(A).min() > 0

    def test_poisson_convergence(self):
        mesh = box(subdivisions=(1, 1, 1), boundary_ids={i: 1 for i in range(6)})
        degree = 2
        errors = []
        exact = lambda x, y, z: np.sin(np.pi * x) * np.sin(np.pi * y) * np.sin(np.pi * z)
        for levels in (1, 2):
            forest = Forest(mesh).refine_all(levels)
            dof = CGDofHandler(forest, degree, dirichlet_ids=(1,))
            geo = GeometryField(forest, degree)
            op = CGLaplaceOperator(dof, geo)
            # rhs: project f into the master space
            cm = geo.cell_metrics()
            fq = 3 * np.pi**2 * exact(cm.points[:, 0], cm.points[:, 1], cm.points[:, 2])
            b = dof.scatter_add_cells(geo.kernel.integrate_values(fq * cm.jxw))
            u = solve_cg(op, b)
            uq = geo.kernel.values(dof.gather_cells(u))
            eq = exact(cm.points[:, 0], cm.points[:, 1], cm.points[:, 2])
            errors.append(float(np.sqrt(np.sum((uq - eq) ** 2 * cm.jxw))))
        rate = np.log2(errors[0] / errors[1])
        assert rate > 2.6

    def test_hanging_constraints_continuity(self):
        """Expanded fields are continuous across the hanging face: evaluate
        from both sides at shared physical points."""
        f = Forest(box(subdivisions=(2, 1, 1)))
        f = f.refine([f.leaves[0]]).balance()
        dof = CGDofHandler(f, 2)
        rng = np.random.default_rng(5)
        x = rng.standard_normal(dof.n_dofs)
        cells = dof.gather_cells(x)
        geo = GeometryField(f, 2)
        # compare values at the face quadrature points of the hanging batches
        conn = dof.connectivity
        from repro.core.operators.base import FaceKernels

        fk = FaceKernels(geo.kernel)
        for batch in conn.interior:
            if not batch.is_hanging:
                continue
            vm, _ = fk.eval_side(cells[batch.cells_m], batch.face_m)
            vp, _ = fk.eval_side(
                cells[batch.cells_p], batch.face_p, batch.orientation, batch.subface
            )
            assert np.allclose(vm, vp, atol=1e-10)
