"""Tests of the execution-plan layer (:mod:`repro.core.plans`) and of the
planned operator paths against their legacy references.

The legacy execution — ``np.add.at`` scatters, per-call einsum path
searches, fresh temporaries, and the unit-vector diagonal — stays
available via ``plan_execution(use_plans=False)`` and serves as the
reference for every equivalence assertion here, on meshes with hanging
faces and with non-identity face orientations (the bifurcation
junction).
"""

import numpy as np
import pytest

from repro.core.dof_handler import CGDofHandler, DGDofHandler
from repro.core.operators import (
    CGLaplaceOperator,
    DGLaplaceOperator,
    MassOperator,
    VectorDGLaplace,
)
from repro.core.plans import (
    _PATH_CACHE,
    POLICY,
    FlatScatterPlan,
    ScatterPlan,
    Workspace,
    contract,
    plan_execution,
)
from repro.mesh.connectivity import build_connectivity
from repro.mesh.generators import bifurcation, box
from repro.mesh.mapping import GeometryField
from repro.mesh.octree import Forest
from repro.solvers import single_precision_operator


@pytest.fixture(scope="module")
def hanging_forest():
    """Box forest with one extra-refined cell: real hanging faces."""
    f = Forest(box(subdivisions=(2, 1, 1), boundary_ids={0: 1})).refine_all(1)
    return f.refine([f.leaves[0]]).balance()


@pytest.fixture(scope="module")
def bifurcation_mesh():
    """Tube junction: non-identity face orientations."""
    return Forest(bifurcation())


def make_dg_laplace(forest, degree, dirichlet=(1,)):
    geo = GeometryField(forest, degree)
    conn = build_connectivity(forest)
    dof = DGDofHandler(forest, degree)
    return dof, conn, DGLaplaceOperator(dof, geo, conn, dirichlet_ids=dirichlet)


class TestScatterPlan:
    def test_unique_indices_match_add_at(self):
        rng = np.random.default_rng(0)
        idx = rng.permutation(50)[:20]
        contrib = rng.standard_normal((20, 3, 3))
        ref = rng.standard_normal((50, 3, 3))
        out = ref.copy()
        np.add.at(ref, idx, contrib)
        plan = ScatterPlan(idx, 50)
        assert plan.is_unique
        plan.add(out, contrib)
        assert np.array_equal(out, ref)

    def test_duplicate_indices_match_add_at(self):
        rng = np.random.default_rng(1)
        idx = rng.integers(0, 12, size=200)
        contrib = rng.standard_normal((200, 2, 2))
        ref = np.zeros((12, 2, 2))
        out = np.zeros((12, 2, 2))
        np.add.at(ref, idx, contrib)
        plan = ScatterPlan(idx, 12)
        assert not plan.is_unique
        plan.add(out, contrib)
        # reduceat folds duplicates before the indexed add: same sums up
        # to floating-point association
        np.testing.assert_allclose(out, ref, rtol=1e-14, atol=1e-14)

    def test_empty_plan_is_noop(self):
        out = np.ones((4, 2))
        ScatterPlan(np.array([], dtype=np.intp), 4).add(out, np.zeros((0, 2)))
        assert np.array_equal(out, np.ones((4, 2)))

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            ScatterPlan(np.array([0, 5]), 5)
        with pytest.raises(ValueError):
            ScatterPlan(np.array([-1, 0]), 5)

    @pytest.mark.parametrize("mesh_fixture", ["hanging_forest", "bifurcation_mesh"])
    def test_mesh_face_batches_match_add_at(self, mesh_fixture, request):
        """The real per-batch index sets (hanging faces, rotated faces)
        scatter identically to ``np.add.at``."""
        forest = request.getfixturevalue(mesh_fixture)
        _, conn, _ = make_dg_laplace(forest, 2)
        if mesh_fixture == "hanging_forest":
            assert conn.n_hanging_faces > 0
        else:
            assert conn.mixed_orientation_fraction() > 0
        rng = np.random.default_rng(2)
        n_cells = forest.n_cells
        for batch in conn.interior:
            for cells in (batch.cells_m, batch.cells_p):
                contrib = rng.standard_normal((len(cells), 3, 3, 3))
                ref = np.zeros((n_cells, 3, 3, 3))
                out = np.zeros((n_cells, 3, 3, 3))
                np.add.at(ref, cells, contrib)
                ScatterPlan(cells, n_cells).add(out, contrib)
                np.testing.assert_allclose(out, ref, rtol=1e-14, atol=0)


class TestFlatScatterPlan:
    def test_matches_add_at(self):
        rng = np.random.default_rng(3)
        idx = rng.integers(0, 30, size=(8, 27))  # CG-style: heavy duplication
        vals = rng.standard_normal((8, 27))
        ref = np.zeros(30)
        np.add.at(ref, idx.ravel(), vals.ravel())
        plan = FlatScatterPlan(idx, 30)
        np.testing.assert_allclose(plan.scatter(vals), ref, rtol=1e-14)
        out = np.ones(30)
        plan.scatter_add(out, vals)
        np.testing.assert_allclose(out, 1.0 + ref, rtol=1e-14)

    def test_preserves_float32(self):
        """Unlike ``np.bincount``, the plan keeps float32 contributions in
        float32 — the float32 multigrid levels depend on this."""
        rng = np.random.default_rng(4)
        idx = rng.integers(0, 10, size=40)
        vals = rng.standard_normal(40).astype(np.float32)
        out = FlatScatterPlan(idx, 10).scatter(vals)
        assert out.dtype == np.float32

    def test_empty(self):
        plan = FlatScatterPlan(np.array([], dtype=np.intp), 5)
        assert np.array_equal(plan.scatter(np.array([])), np.zeros(5))


class TestContract:
    @pytest.mark.parametrize("subscripts,shapes", [
        ("cijzyx,cjzyx->cizyx", [(4, 3, 3, 2, 2, 2), (4, 3, 2, 2, 2)]),
        ("fiab,fiab->fab", [(5, 3, 4, 4), (5, 3, 4, 4)]),
        ("fijab,fiab->fjab", [(5, 3, 3, 4, 4), (5, 3, 4, 4)]),
        ("fab,abxy->fxy", [(5, 4, 4), (4, 4, 3, 3)]),
        ("czyx,zZ,yY,xX->cZYX", [(4, 3, 3, 3), (3, 3), (3, 3), (3, 3)]),
    ])
    def test_matches_einsum(self, subscripts, shapes):
        rng = np.random.default_rng(5)
        ops = [rng.standard_normal(s) for s in shapes]
        ref = np.einsum(subscripts, *ops, optimize=True)
        np.testing.assert_allclose(contract(subscripts, *ops), ref,
                                   rtol=1e-13, atol=1e-14)
        key = (subscripts, tuple(s for s in map(tuple, shapes)))
        assert key in _PATH_CACHE  # plan decided once, cached

    def test_out_parameter(self):
        rng = np.random.default_rng(6)
        a = rng.standard_normal((4, 3, 2, 2))
        b = rng.standard_normal((4, 3, 2, 2))
        out = np.empty((4, 2, 2))
        res = contract("fiab,fiab->fab", a, b, out=out)
        assert res is out
        np.testing.assert_allclose(out, np.einsum("fiab,fiab->fab", a, b))

    def test_small_contraction_goes_direct(self):
        """Length-3 metric contractions must use the direct C loop
        (strategy ``False``), not a tensordot path."""
        a = np.ones((4, 3, 3, 2, 2, 2))
        b = np.ones((4, 3, 2, 2, 2))
        contract("cijzyx,cjzyx->cizyx", a, b)
        assert _PATH_CACHE[("cijzyx,cjzyx->cizyx", (a.shape, b.shape))] is False

    def test_float32_reuses_shape_keyed_plan(self):
        a64 = np.ones((3, 3, 2, 2))
        b64 = np.ones((3, 3, 2, 2))
        r64 = contract("fiab,fiab->fab", a64, b64)
        r32 = contract("fiab,fiab->fab", a64.astype(np.float32),
                       b64.astype(np.float32))
        assert r32.dtype == np.float32
        np.testing.assert_allclose(r32, r64, rtol=1e-6)


class TestWorkspace:
    def test_take_reuses_buffer(self):
        ws = Workspace()
        a = ws.take("t", (4, 4))
        b = ws.take("t", (4, 4))
        assert a is b
        assert ws.n_buffers == 1

    def test_keys_separate_by_tag_shape_dtype(self):
        ws = Workspace()
        a = ws.take("t", (4,))
        b = ws.take("u", (4,))
        c = ws.take("t", (5,))
        d = ws.take("t", (4,), np.float32)
        assert len({id(x) for x in (a, b, c, d)}) == 4
        assert ws.n_buffers == 4
        assert ws.nbytes == 4 * 8 + 4 * 8 + 5 * 8 + 4 * 4

    def test_zeros(self):
        ws = Workspace()
        a = ws.take("t", (3,))
        a[:] = 7.0
        z = ws.zeros("t", (3,))
        assert z is a
        assert np.array_equal(z, np.zeros(3))


class TestPlannedVmultEquivalence:
    """Planned execution == legacy execution to machine precision."""

    def check(self, op, n, seed=0, rtol=1e-13):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n)
        with plan_execution(True):
            y_planned = op.vmult(x)
            y_planned2 = op.vmult(x)  # second call: warm workspace buffers
        with plan_execution(False):
            y_legacy = op.vmult(x)
        scale = np.abs(y_legacy).max()
        np.testing.assert_allclose(y_planned, y_legacy, rtol=rtol,
                                   atol=rtol * scale)
        assert np.array_equal(y_planned, y_planned2)  # deterministic reuse

    @pytest.mark.parametrize("degree", [1, 2, 3])
    def test_dg_laplace_hanging(self, hanging_forest, degree):
        _, conn, op = make_dg_laplace(hanging_forest, degree)
        assert conn.n_hanging_faces > 0
        self.check(op, op.n_dofs)

    @pytest.mark.parametrize("degree", [1, 2])
    def test_dg_laplace_bifurcation(self, bifurcation_mesh, degree):
        _, conn, op = make_dg_laplace(bifurcation_mesh, degree)
        assert conn.mixed_orientation_fraction() > 0
        self.check(op, op.n_dofs)

    def test_dg_laplace_float32_clone(self, hanging_forest):
        _, _, op = make_dg_laplace(hanging_forest, 2)
        sp = single_precision_operator(op)
        rng = np.random.default_rng(7)
        x = rng.standard_normal(sp.n_dofs).astype(np.float32)
        with plan_execution(True):
            y_planned = sp.vmult(x)
        with plan_execution(False):
            y_legacy = sp.vmult(x)
        assert y_planned.dtype == y_legacy.dtype
        scale = np.abs(y_legacy).max()
        np.testing.assert_allclose(y_planned, y_legacy, rtol=2e-5,
                                   atol=2e-5 * scale)

    def test_cg_laplace(self, hanging_forest):
        geo = GeometryField(hanging_forest, 2)
        conn = build_connectivity(hanging_forest)
        dof = CGDofHandler(hanging_forest, 2, conn, dirichlet_ids=(1,))
        op = CGLaplaceOperator(dof, geo)
        self.check(op, op.n_dofs)

    def test_mass(self, bifurcation_mesh):
        geo = GeometryField(bifurcation_mesh, 2)
        dof = DGDofHandler(bifurcation_mesh, 2)
        op = MassOperator(dof, geo)
        self.check(op, op.n_dofs)

    def test_vector_laplace(self, hanging_forest):
        _, _, scalar = make_dg_laplace(hanging_forest, 2)
        dof_v = DGDofHandler(hanging_forest, 2, n_components=3)
        op = VectorDGLaplace(scalar, dof_v)
        rng = np.random.default_rng(8)
        x = rng.standard_normal(op.n_dofs)
        with plan_execution(True):
            y_planned = op.vmult(x)
        with plan_execution(False):
            y_legacy = op.vmult(x)
        scale = np.abs(y_legacy).max()
        np.testing.assert_allclose(y_planned, y_legacy, rtol=1e-13,
                                   atol=1e-13 * scale)

    def test_assemble_rhs(self, hanging_forest):
        _, _, op = make_dg_laplace(hanging_forest, 2)

        def run():
            return op.assemble_rhs(
                f=lambda x, y, z: x * y + z,
                dirichlet=lambda x, y, z: x - z,
            )

        with plan_execution(True):
            b_planned = run()
        with plan_execution(False):
            b_legacy = run()
        np.testing.assert_allclose(b_planned, b_legacy, rtol=1e-13,
                                   atol=1e-15)


class TestExecutionPolicy:
    """The process-wide policy knob and its deprecated per-op override."""

    def test_plan_execution_scopes_and_restores(self, hanging_forest):
        _, _, op = make_dg_laplace(hanging_forest, 1)
        assert POLICY.use_plans  # planned is the default
        with plan_execution(False):
            assert not POLICY.use_plans
            assert not op.use_plans  # operators read the policy
            with plan_execution(True):
                assert op.use_plans
            assert not op.use_plans
        assert POLICY.use_plans

    def test_deprecated_setter_warns_and_overrides(self, hanging_forest):
        _, _, op = make_dg_laplace(hanging_forest, 1)
        with pytest.deprecated_call():
            op.use_plans = False
        # the instance override wins over the global policy...
        with plan_execution(True):
            assert not op.use_plans
        # ...and deleting it reverts to reading the policy
        del op.use_plans
        assert op.use_plans


class TestFastDiagonal:
    """Closed-form ``diagonal()`` == unit-vector ``diagonal_reference()``."""

    @pytest.mark.parametrize("degree", [1, 2, 3])
    def test_hanging(self, hanging_forest, degree):
        _, conn, op = make_dg_laplace(hanging_forest, degree)
        assert conn.n_hanging_faces > 0
        fast = op.diagonal()
        ref = op.diagonal_reference()
        np.testing.assert_allclose(fast, ref, rtol=1e-12,
                                   atol=1e-12 * np.abs(ref).max())

    @pytest.mark.parametrize("degree", [1, 2])
    def test_bifurcation(self, bifurcation_mesh, degree):
        _, conn, op = make_dg_laplace(bifurcation_mesh, degree)
        assert conn.mixed_orientation_fraction() > 0
        fast = op.diagonal()
        ref = op.diagonal_reference()
        np.testing.assert_allclose(fast, ref, rtol=1e-12,
                                   atol=1e-12 * np.abs(ref).max())

    def test_float32_clone(self, hanging_forest):
        _, _, op = make_dg_laplace(hanging_forest, 2)
        sp = single_precision_operator(op)
        fast = sp.diagonal()
        ref = sp.diagonal_reference()
        np.testing.assert_allclose(fast, ref, rtol=2e-4,
                                   atol=2e-4 * np.abs(ref).max())

    def test_legacy_toggle_uses_reference(self, hanging_forest):
        _, _, op = make_dg_laplace(hanging_forest, 1)
        with plan_execution(False):
            np.testing.assert_array_equal(op.diagonal(),
                                          op.diagonal_reference())
