"""Tests of the 1D quadrature rules."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.quadrature import gauss, gauss_lobatto, tensor_points, tensor_weights


class TestGauss:
    @pytest.mark.parametrize("n", range(1, 12))
    def test_weights_sum_to_one(self, n):
        assert np.isclose(gauss(n).weights.sum(), 1.0)

    @pytest.mark.parametrize("n", range(1, 12))
    def test_points_inside_unit_interval(self, n):
        pts = gauss(n).points
        assert np.all(pts > 0.0) and np.all(pts < 1.0)
        assert np.all(np.diff(pts) > 0)

    @pytest.mark.parametrize("n", range(1, 10))
    def test_exactness_degree(self, n):
        # exact for all monomials up to degree 2n-1
        rule = gauss(n)
        for p in range(2 * n):
            exact = 1.0 / (p + 1)
            assert np.isclose(rule.integrate(lambda x: x**p), exact, rtol=1e-12)

    def test_not_exact_beyond_order(self):
        rule = gauss(2)
        p = 4  # 2n = 4 is one past the exactness limit 2n-1 = 3
        assert not np.isclose(rule.integrate(lambda x: x**p), 1.0 / (p + 1), rtol=1e-10)

    def test_invalid_count_raises(self):
        with pytest.raises(ValueError):
            gauss(0)

    def test_symmetry(self):
        rule = gauss(7)
        assert np.allclose(rule.points + rule.points[::-1], 1.0)
        assert np.allclose(rule.weights, rule.weights[::-1])


class TestGaussLobatto:
    @pytest.mark.parametrize("n", range(2, 12))
    def test_includes_endpoints(self, n):
        pts = gauss_lobatto(n).points
        assert pts[0] == pytest.approx(0.0, abs=1e-14)
        assert pts[-1] == pytest.approx(1.0, abs=1e-14)

    @pytest.mark.parametrize("n", range(2, 12))
    def test_weights_sum_to_one(self, n):
        assert np.isclose(gauss_lobatto(n).weights.sum(), 1.0)

    @pytest.mark.parametrize("n", range(2, 10))
    def test_exactness_degree(self, n):
        rule = gauss_lobatto(n)
        for p in range(2 * n - 2):
            assert np.isclose(rule.integrate(lambda x: x**p), 1.0 / (p + 1), rtol=1e-11)

    def test_symmetry(self):
        rule = gauss_lobatto(6)
        assert np.allclose(rule.points + rule.points[::-1], 1.0)
        assert np.allclose(rule.weights, rule.weights[::-1])

    def test_known_gl3(self):
        # 3-point rule on [0,1]: points 0, 1/2, 1 with weights 1/6, 4/6, 1/6
        rule = gauss_lobatto(3)
        assert np.allclose(rule.points, [0.0, 0.5, 1.0])
        assert np.allclose(rule.weights, [1 / 6, 4 / 6, 1 / 6])

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            gauss_lobatto(1)


class TestTensorProducts:
    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_weights_sum_to_one(self, dim):
        rule = gauss(3)
        assert np.isclose(tensor_weights(rule, dim).sum(), 1.0)

    def test_points_ordering_x_fastest(self):
        rule = gauss(2)
        pts = tensor_points(rule, 3)
        n = rule.n_points
        # consecutive flat indices vary the x coordinate first
        assert pts[0, 0] != pts[1, 0]
        assert pts[0, 1] == pts[1, 1] and pts[0, 2] == pts[1, 2]
        # index n flips y
        assert pts[0, 1] != pts[n, 1]

    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=3))
    def test_tensor_integrates_separable_polynomial(self, n, dim):
        rule = gauss(n)
        pts, w = tensor_points(rule, dim), tensor_weights(rule, dim)
        p = min(2 * n - 1, 4)
        vals = np.prod(pts**p, axis=1)
        assert np.isclose(np.dot(w, vals), (1.0 / (p + 1)) ** dim, rtol=1e-10)
